(* Corollary 2 demo: on graphs with O(n log n) cover time — Erdős–Rényi
   G(n, c log n / n) and random d-regular expanders — spanning trees can be
   sampled in polylog rounds via the load-balanced doubling walk.

   Run with:  dune exec examples/expander_trees.exe *)

module Graph = Cc_graph.Graph
module Gen = Cc_graph.Gen
module Tree = Cc_graph.Tree
module Net = Cc_clique.Net
module Prng = Cc_util.Prng
module Doubling = Cc_doubling.Doubling

let sample_and_report name g prng =
  let n = Graph.n g in
  let net = Net.create ~n in
  let tree, tau = Doubling.sample_tree net prng g ~tau0:(2 * n) in
  Printf.printf
    "%-24s n=%4d m=%5d: tree in %7.0f rounds (walk length %6d, log^3 n = %5.0f)\n"
    name n (Graph.num_edges g) (Net.rounds net) tau
    (Float.log2 (float_of_int n) ** 3.0);
  assert (Tree.is_spanning_tree g tree)

let () =
  let prng = Prng.create ~seed:7 in
  Printf.printf
    "Corollary 2: spanning trees on small-cover-time graphs via doubling\n\n";
  List.iter
    (fun n ->
      let c = 2.5 in
      let p = Float.min 1.0 (c *. Float.log (float_of_int n) /. float_of_int n) in
      let er = Gen.erdos_renyi_connected prng ~n ~p in
      sample_and_report (Printf.sprintf "ER(%d, %.1f ln n/n)" n c) er prng;
      let reg = Gen.random_regular prng ~n ~d:6 in
      sample_and_report (Printf.sprintf "6-regular(%d)" n) reg prng)
    [ 32; 64; 128 ];
  Printf.printf
    "\nContrast: the worst-case lollipop needs a Theta(n^3)-length walk,\n\
     which is why the main sampler (Theorem 2) exists. See\n\
     examples/worst_case.exe.\n"
