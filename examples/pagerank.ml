(* PageRank estimation from polylog-length walks — the application that
   motivates the short-walk regime of Theorem 1 (Section 1.1 / Bahmani,
   Chakrabarti & Xin).

   Every vertex builds many short random walks by doubling; stopping each
   walk at a Geometric(epsilon) time gives samples of the PageRank
   distribution with restart probability epsilon.

   Run with:  dune exec examples/pagerank.exe *)

module Graph = Cc_graph.Graph
module Gen = Cc_graph.Gen
module Net = Cc_clique.Net
module Prng = Cc_util.Prng
module Doubling = Cc_doubling.Doubling

let () =
  let prng = Prng.create ~seed:11 in
  let n = 48 in
  (* A graph with clear rank structure: a barbell — two dense communities
     joined by a bridge. The bridge endpoints get elevated PageRank. *)
  let g = Gen.barbell (n / 2) in
  let epsilon = 0.15 in
  let exact = Doubling.pagerank_exact g ~epsilon in
  let net = Net.create ~n in
  let estimate = Doubling.pagerank net prng g ~walks_per_node:48 ~epsilon in
  let l1 =
    Array.fold_left ( +. ) 0.0
      (Array.mapi (fun i x -> Float.abs (x -. exact.(i))) estimate)
  in
  Printf.printf "barbell n=%d, epsilon=%.2f\n" n epsilon;
  Printf.printf "rounds used by the doubling walks: %.0f\n" (Net.rounds net);
  Printf.printf "L1 error of the estimate: %.4f\n\n" l1;
  Printf.printf "%6s %12s %12s\n" "vertex" "exact" "estimated";
  (* Show the bridge endpoints and a few community vertices. *)
  List.iter
    (fun v ->
      Printf.printf "%6d %12.5f %12.5f\n" v exact.(v) estimate.(v))
    [ 0; 1; (n / 2) - 1; n / 2; n - 2; n - 1 ];
  Printf.printf
    "\n(the bridge endpoints %d and %d should carry the highest mass)\n"
    ((n / 2) - 1) (n / 2)
