(* Graph sparsification from random spanning trees — the application the
   paper's introduction cites (expanders via random spanning trees,
   Goyal-Rademacher-Vempala; the framework of Fung et al.).

   The union of t independent uniform spanning trees, reweighted by inverse
   leverage, is an unbiased and increasingly accurate spectral approximation
   of the graph using only t(n-1) of its edges.

   Run with:  dune exec examples/sparsify.exe *)

module Graph = Cc_graph.Graph
module Gen = Cc_graph.Gen
module Sparsifier = Cc_apps.Sparsifier
module Prng = Cc_util.Prng
module Table = Cc_util.Table

let () =
  let prng = Prng.create ~seed:31 in
  let n = 32 in
  let g = Gen.complete n in
  Printf.printf "sparsifying K%d (%d edges) by unions of random spanning trees\n\n"
    n (Graph.num_edges g);
  let table =
    Table.create
      ~title:"reweighted tree unions: quadratic-form ratios x^T L_H x / x^T L_G x"
      ~columns:
        [ "trees"; "edges kept"; "fraction"; "cut ratio range"; "Rayleigh range" ]
  in
  List.iter
    (fun t ->
      let h =
        Sparsifier.union prng
          (fun g prng -> Cc_walks.Wilson.sample_tree g prng)
          g ~trees:t ~reweight:true
      in
      let q = Sparsifier.evaluate prng g h ~probes:300 in
      Table.add_row table
        [
          Table.cell_int t;
          Table.cell_int q.Sparsifier.edges_kept;
          Printf.sprintf "%.2f" q.Sparsifier.edge_fraction;
          Printf.sprintf "[%.2f, %.2f]" q.Sparsifier.cut_ratio_min q.Sparsifier.cut_ratio_max;
          Printf.sprintf "[%.2f, %.2f]" q.Sparsifier.rayleigh_min q.Sparsifier.rayleigh_max;
        ])
    [ 1; 2; 4; 8; 16 ];
  Table.print table;
  print_endline
    "\nBoth ranges tighten around 1.0 as trees are added — a spectral\n\
     sparsifier built from exactly the primitive the paper's distributed\n\
     sampler provides. In a Congested Clique deployment, t trees cost t\n\
     independent runs of the Theorem 2 sampler."
