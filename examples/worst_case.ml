(* The worst-case story of the paper, end to end, on the lollipop graph:

   1. The Aldous-Broder walk needs Theta(mn) steps to cover a lollipop —
      measured here directly.
   2. A step-by-step distributed walk therefore needs ~cover-time rounds.
   3. The doubling algorithm (Theorem 1) compresses the walk but its rounds
      still scale with tau/n — linear-ish for tau = Theta(n^3).
   4. The sublinear sampler (Theorem 2) replaces the long walk with
      O(sqrt n) phases of matrix-multiplication work and wins asymptotically.

   Run with:  dune exec examples/worst_case.exe *)

module Graph = Cc_graph.Graph
module Gen = Cc_graph.Gen
module Net = Cc_clique.Net
module Prng = Cc_util.Prng
module Walk = Cc_walks.Walk
module Table = Cc_util.Table

let () =
  let prng = Prng.create ~seed:99 in
  let table =
    Table.create ~title:"lollipop: cover time vs sampler rounds"
      ~columns:
        [ "n"; "m"; "mean cover (steps)"; "naive rounds"; "doubling rounds";
          "sublinear rounds" ]
  in
  List.iter
    (fun n ->
      let g = Gen.lollipop ~clique:(n / 2) ~tail:(n - (n / 2)) in
      let cover = Walk.mean_cover_time g prng ~trials:10 in
      (* Step-by-step distributed Aldous-Broder: one round per step. *)
      let naive_rounds = cover in
      (* Doubling-based sampling (Corollary 1). *)
      let net_d = Net.create ~n in
      let _, _ = Cc_doubling.Doubling.sample_tree net_d prng g ~tau0:n in
      (* The sublinear sampler (Theorem 2). *)
      let net_s = Net.create ~n in
      let r = Cc_sampler.Sampler.sample net_s prng g in
      Table.add_row table
        [
          string_of_int n;
          string_of_int (Graph.num_edges g);
          Printf.sprintf "%.0f" cover;
          Printf.sprintf "%.0f" naive_rounds;
          Printf.sprintf "%.0f" (Net.rounds net_d);
          Printf.sprintf "%.0f" r.Cc_sampler.Sampler.rounds;
        ])
    [ 16; 32; 64 ];
  Table.print table;
  print_newline ();
  print_endline
    "The cover time (and with it the naive and doubling costs) grows like\n\
     n^3/8 on the lollipop, while the sublinear sampler's rounds grow like\n\
     n^(1/2+alpha) polylog(n) — the gap widens rapidly with n (bench E3\n\
     fits the exponents over a larger ladder).";
