(* Uniformity demonstration: compare the empirical tree distribution of
   three samplers — sequential Aldous-Broder, Wilson, and the paper's
   distributed sublinear-round sampler — against the exact uniform
   distribution over all spanning trees (enumerated and counted by the
   Matrix-Tree theorem).

   Run with:  dune exec examples/uniformity.exe *)

module Graph = Cc_graph.Graph
module Gen = Cc_graph.Gen
module Tree = Cc_graph.Tree
module Net = Cc_clique.Net
module Prng = Cc_util.Prng
module Dist = Cc_util.Dist
module Stats = Cc_util.Stats
module Table = Cc_util.Table

let () =
  (* C4 plus a chord: 8 spanning trees, small enough to print in full. *)
  let g =
    Graph.of_unweighted_edges ~n:4 [ (0, 1); (1, 2); (2, 3); (3, 0); (0, 2) ]
  in
  let trees, lookup = Tree.index g in
  let support = Array.length trees in
  Printf.printf "graph: C4 + chord; Matrix-Tree count = %.0f, enumerated = %d\n\n"
    (Tree.count g) support;

  let trials = 20_000 in
  let prng = Prng.create ~seed:123 in
  let run name sampler =
    let counts = Array.make support 0 in
    for _ = 1 to trials do
      let t = sampler () in
      counts.(lookup t) <- counts.(lookup t) + 1
    done;
    (name, counts, Dist.tv_counts ~counts (Dist.uniform support))
  in
  let net = Net.create ~n:4 in
  let results =
    [
      run "Aldous-Broder" (fun () -> Cc_walks.Aldous_broder.sample_tree g prng);
      run "Wilson" (fun () -> Cc_walks.Wilson.sample_tree g prng);
      run "CC sublinear sampler" (fun () ->
          (Cc_sampler.Sampler.sample net prng g).Cc_sampler.Sampler.tree);
    ]
  in
  let table =
    Table.create ~title:"tree frequencies (expected 1/8 = 0.1250 each)"
      ~columns:
        ("tree" :: List.map (fun (name, _, _) -> name) results)
  in
  Array.iteri
    (fun i t ->
      let edges =
        String.concat " " (List.map (fun (u, v) -> Printf.sprintf "%d%d" u v) (Tree.edges t))
      in
      Table.add_row table
        (edges
        :: List.map
             (fun (_, counts, _) ->
               Printf.sprintf "%.4f" (float_of_int counts.(i) /. float_of_int trials))
             results))
    trees;
  Table.print table;
  let floor = Stats.tv_noise_floor ~samples:trials ~support in
  Printf.printf "\nTV distance to uniform (sampling noise floor ~ %.4f):\n" floor;
  List.iter (fun (name, _, tv) -> Printf.printf "  %-22s %.4f\n" name tv) results
