(* Quickstart: sample a uniform spanning tree of a small graph with the
   sublinear-round Congested Clique sampler and inspect the cost ledger.

   Run with:  dune exec examples/quickstart.exe *)

module Graph = Cc_graph.Graph
module Gen = Cc_graph.Gen
module Tree = Cc_graph.Tree
module Net = Cc_clique.Net
module Prng = Cc_util.Prng
module Sampler = Cc_sampler.Sampler

let () =
  (* A 24-vertex lollipop: a 12-clique with a 12-vertex tail — the shape
     whose Theta(mn) cover time motivates the paper. *)
  let g = Gen.lollipop ~clique:12 ~tail:12 in
  let n = Graph.n g in
  Printf.printf "graph: lollipop, %d vertices, %d edges\n" n (Graph.num_edges g);

  (* The clique simulator meters every message the algorithm sends. *)
  let net = Net.create ~n in
  let prng = Prng.create ~seed:2025 in
  let result = Sampler.sample net prng g in

  Printf.printf "sampled a spanning tree in %d phases, %.0f rounds\n"
    result.Sampler.phases result.Sampler.rounds;
  Printf.printf "underlying random walk length: %d steps\n" result.Sampler.walk_total;
  Printf.printf "tree is valid: %b\n"
    (Tree.is_spanning_tree g result.Sampler.tree);
  Printf.printf "\ntree edges:\n";
  List.iter
    (fun (u, v) -> Printf.printf "  %d -- %d\n" u v)
    (Tree.edges result.Sampler.tree);

  Printf.printf "\nround ledger (who spent what):\n%!";
  Format.printf "%a@." Net.pp_ledger net;

  (* Cross-check against the two classical sequential samplers. *)
  let ab_tree, ab_steps = Cc_walks.Aldous_broder.sample g prng ~start:0 in
  let w_tree, w_steps = Cc_walks.Wilson.sample g prng ~root:0 in
  Printf.printf "baselines: Aldous-Broder walked %d steps, Wilson %d steps\n"
    ab_steps w_steps;
  Printf.printf "baseline trees valid: %b / %b\n"
    (Tree.is_spanning_tree g ab_tree)
    (Tree.is_spanning_tree g w_tree)
