(* Section 3.5 end to end: how much fixed-point precision does the sampler
   actually need?

   The paper proves that O(log^2 n)-bit entries suffice for 1/n^c total
   variation error. Here we sweep the fractional-bit budget and measure the
   empirical TV distance of the sampled tree distribution from uniform on a
   graph small enough to enumerate: with very few bits the midpoint
   distributions are visibly distorted; a few dozen bits are already
   indistinguishable from exact arithmetic.

   Run with:  dune exec examples/precision.exe *)

module Gen = Cc_graph.Gen
module Tree = Cc_graph.Tree
module Net = Cc_clique.Net
module Prng = Cc_util.Prng
module Dist = Cc_util.Dist
module Stats = Cc_util.Stats
module Sampler = Cc_sampler.Sampler
module Table = Cc_util.Table

let () =
  let g = Gen.complete 4 in
  let trees, lookup = Tree.index g in
  let support = Array.length trees in
  let trials = 6000 in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "K4 (%d trees), %d samples per row; noise floor ~ %.4f" support
           trials
           (Stats.tv_noise_floor ~samples:trials ~support))
      ~columns:[ "fractional bits"; "TV to uniform" ]
  in
  let run bits label =
    let config = { Sampler.default_config with bits } in
    let counts = Array.make support 0 in
    let net = Net.create ~n:4 in
    let prng = Prng.create ~seed:5 in
    match
      for _ = 1 to trials do
        let r = Sampler.sample ~config net prng g in
        counts.(lookup r.Sampler.tree) <- counts.(lookup r.Sampler.tree) + 1
      done
    with
    | () ->
        Table.add_row table
          [ label;
            Table.cell_float ~decimals:4 (Dist.tv_counts ~counts (Dist.uniform support)) ]
    | exception Failure _ ->
        (* Too few bits: the truncated powers collapsed to zero (Lemma 3's
           budget is blown by orders of magnitude). *)
        Table.add_row table [ label; "degenerate (walk law collapsed)" ]
  in
  List.iter (fun b -> run (Some b) (string_of_int b)) [ 4; 6; 8; 12; 20; 40 ];
  run None "exact (IEEE double)";
  Table.print table;
  print_endline
    "\nBelow ~8 bits the truncated matrix powers collapse entirely (Lemma 3's\n\
     budget is blown by orders of magnitude and whole rows round to zero);\n\
     from ~8 bits the sampler works and by ~12 bits the tree distribution\n\
     sits at the sampling-noise floor — comfortably under the paper's\n\
     O(log^2 n)-bit prescription."
