(* Benchmark harness: regenerates every quantitative claim of the paper.

   The paper (PODC 2025) is a theory contribution with no experimental
   tables; its "evaluation" is the set of claimed round complexities and two
   worked figures. Each experiment below measures the corresponding claim on
   the Congested Clique simulator and prints a table; EXPERIMENTS.md records
   the paper-vs-measured comparison.

     E1  Theorem 1 / Lemma 5: doubling-walk rounds, two regimes
     E2  Lemma 4: receiver load under k-wise hashing vs the unbalanced BCX
     E3  Theorem 2: sublinear sampler rounds vs n (worst-case lollipop)
     E4  Corollaries 1-2: trees on ER / regular expanders in few rounds
     E5  Theorems 3-5: TV distance of sampled trees to the exact distribution
     E6  Lemma 3: fixed-point matrix powers, subtractive error vs budget
     E7  Corollaries 3-4: shortcut/Schur powering error decay
     E8  Figure 2: the worked Schur/shortcut example, checked entrywise
     E9  Cover-time premises per graph family
     E10 Section 1.1: PageRank from polylog walks
     F1  Figure 1: the midpoint request/multiset/matching pipeline, narrated
     F2  fault injection: recovery overhead vs message-drop probability
     D1  determinism: same-seed runs produce byte-identical recorder digests
     P1  strong scaling: the same dense workload at 1/2/4/N domains
     Q1  audit plane: samples-to-verdict per sampler + biased-fixture power
     S1  ccserve: plan-cache throughput, cold vs warm, 1 vs 4 clients

   Usage:
     dune exec bench/main.exe                 -- all experiments
     dune exec bench/main.exe -- -e E3        -- one experiment
     dune exec bench/main.exe -- --fast       -- smaller ladders
     dune exec bench/main.exe -- --micro      -- bechamel microbenchmarks too
     dune exec bench/main.exe -- --domains N  -- run on an N-domain engine
     dune exec bench/main.exe -- --json F     -- also write the rows to F
                                                (see Report; schema cc-bench/3) *)

module Graph = Cc_graph.Graph
module Gen = Cc_graph.Gen
module Tree = Cc_graph.Tree
module Walk = Cc_walks.Walk
module Net = Cc_clique.Net
module Fault = Cc_clique.Fault
module Matmul = Cc_clique.Matmul
module Mat = Cc_linalg.Mat
module Fixed = Cc_linalg.Fixed
module Prng = Cc_util.Prng
module Dist = Cc_util.Dist
module Stats = Cc_util.Stats
module Table = Cc_util.Table
module Schur = Cc_schur.Schur
module Shortcut = Cc_schur.Shortcut
module Doubling = Cc_doubling.Doubling
module Sampler = Cc_sampler.Sampler
module Phase_walk = Cc_sampler.Phase_walk
module Placement = Cc_matching.Placement
module Audit = Cc_audit.Audit
module Serve = Cc_serve.Server
module Serve_protocol = Cc_serve.Protocol

let fast = ref false
let selected : string list ref = ref []
let micro = ref false

let wants id = !selected = [] || List.mem id !selected

let section id title =
  Report.set_title ~id ~title;
  Printf.printf "\n======================================================\n";
  Printf.printf "%s — %s\n" id title;
  Printf.printf "======================================================\n%!"

(* ---------------------------------------------------------------- E1 --- *)

let e1 () =
  section "E1" "Theorem 1: doubling-walk rounds across both regimes";
  let ns = if !fast then [ 64 ] else [ 64; 128; 256 ] in
  let table =
    Table.create
      ~title:
        "rounds vs tau (bound: O(log tau) for tau = O(n/log n); \
         O((tau/n) log tau log n) above)"
      ~columns:[ "n"; "tau"; "regime"; "rounds"; "bound"; "rounds/bound" ]
  in
  List.iter
    (fun n ->
      let prng = Prng.create ~seed:1 in
      let g = Gen.cycle n in
      let taus =
        List.filter (fun t -> t <= 16 * n) [ 4; 16; 64; 256; 1024; 4096 ]
      in
      List.iter
        (fun tau ->
          let net = Net.create ~n in
          let r = Doubling.run net prng g ~tau ~scheme:(Doubling.default_scheme ~n) in
          Report.observe_net ~id:"E1" net;
          let log_n = Float.log2 (float_of_int n) in
          let log_tau = Float.max 1.0 (Float.log2 (float_of_int tau)) in
          let low_regime = float_of_int tau < float_of_int n /. log_n in
          let bound =
            if low_regime then log_tau
            else float_of_int tau /. float_of_int n *. log_tau *. log_n
          in
          Report.record ~id:"E1"
            ~params:
              [
                ("n", Report.int n);
                ("tau", Report.int tau);
                ( "regime",
                  Report.str (if low_regime then "log tau" else "tau/n polylog")
                );
              ]
            ~bound r.Doubling.rounds;
          Table.add_row table
            [
              Table.cell_int n;
              Table.cell_int tau;
              (if low_regime then "log tau" else "tau/n polylog");
              Table.cell_float ~decimals:0 r.Doubling.rounds;
              Table.cell_float ~decimals:1 bound;
              Table.cell_float ~decimals:2 (r.Doubling.rounds /. bound);
            ])
        taus)
    ns;
  Table.print table;
  print_endline
    "Expected shape: rounds/bound roughly constant within each regime, with\n\
     the crossover near tau = n / log n."

(* ---------------------------------------------------------------- E2 --- *)

let e2 () =
  section "E2" "Lemma 4: receiver load, k-wise hashing vs unbalanced BCX";
  let n = if !fast then 32 else 64 in
  let tau = 4 * n in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "star graph, n=%d, tau=%d: max tuples received per machine, per iteration"
           n tau)
      ~columns:
        [ "iteration"; "k"; "load-balanced"; "unbalanced"; "Lemma 4 bound (c=1)" ]
  in
  let g = Gen.star n in
  let run scheme seed =
    let net = Net.create ~n in
    let prng = Prng.create ~seed in
    let r = (Doubling.run net prng g ~tau ~scheme).Doubling.max_tuples_received in
    Report.observe_net ~id:"E2" net;
    r
  in
  let lb = run (Doubling.default_scheme ~n) 2 in
  let ub = run Doubling.Unbalanced 2 in
  let rec pow2 e = if e = 0 then 1 else 2 * pow2 (e - 1) in
  let iterations = Array.length lb in
  let k0 =
    (* initial k = next power of two >= tau *)
    let rec go p = if p >= tau then p else go (2 * p) in
    go 1
  in
  ignore pow2;
  Array.iteri
    (fun i load_lb ->
      let k = k0 / (1 lsl i) in
      Report.record ~id:"E2"
        ~params:
          [
            ("n", Report.int n);
            ("iteration", Report.int (i + 1));
            ("k", Report.int k);
          ]
        ~bound:(Doubling.lemma4_bound ~n ~k ~c:1.0)
        ~extra:[ ("unbalanced", Report.int ub.(i)) ]
        (float_of_int load_lb);
      Table.add_row table
        [
          Table.cell_int (i + 1);
          Table.cell_int k;
          Table.cell_int load_lb;
          Table.cell_int ub.(i);
          Table.cell_float ~decimals:0 (Doubling.lemma4_bound ~n ~k ~c:1.0);
        ])
    lb;
  ignore iterations;
  Table.print table;
  print_endline
    "Expected shape: the unbalanced scheme funnels ~half of all walks into\n\
     the star center (load ~ k*n/2 early on) while hashing keeps every\n\
     machine under the 16ck log n bound."

(* ---------------------------------------------------------------- E3 --- *)

let e3 () =
  section "E3" "Theorem 2: sublinear sampler rounds vs n (lollipop worst case)";
  let ns = if !fast then [ 16; 24; 32; 48 ] else [ 16; 24; 32; 48; 64; 96; 128 ] in
  let table =
    Table.create
      ~title:
        "lollipop(n): measured rounds of the full sampler vs the naive\n\
         step-by-step distributed Aldous-Broder (1 round per walk step)"
      ~columns:
        [ "n"; "phases"; "rounds"; "naive rounds"; "speedup";
          "rounds/(n^0.658 log^2 n)" ]
  in
  let xs = ref [] and ys = ref [] and naives = ref [] in
  List.iter
    (fun n ->
      let g = Gen.lollipop ~clique:(n / 2) ~tail:(n - (n / 2)) in
      let prng = Prng.create ~seed:3 in
      let net = Net.create ~n in
      let r = Sampler.sample net prng g in
      Report.observe_net ~id:"E3" net;
      let naive = Walk.mean_cover_time g prng ~trials:(if n <= 48 then 20 else 5) in
      let nf = float_of_int n in
      let normal = (nf ** 0.658) *. (Float.log2 nf ** 2.0) in
      xs := nf :: !xs;
      ys := r.Sampler.rounds :: !ys;
      naives := naive :: !naives;
      Report.record ~id:"E3"
        ~params:[ ("n", Report.int n); ("family", Report.str "lollipop") ]
        ~bound:normal
        ~extra:
          [
            ("phases", Report.int r.Sampler.phases);
            ("naive_rounds", Report.flt naive);
          ]
        r.Sampler.rounds;
      Table.add_row table
        [
          Table.cell_int n;
          Table.cell_int r.Sampler.phases;
          Table.cell_float ~decimals:0 r.Sampler.rounds;
          Table.cell_float ~decimals:0 naive;
          Table.cell_float ~decimals:2 (naive /. r.Sampler.rounds);
          Table.cell_float ~decimals:2 (r.Sampler.rounds /. normal);
        ])
    ns;
  Table.print table;
  let xs = Array.of_list (List.rev !xs) in
  let ys = Array.of_list (List.rev !ys) in
  let exp_meas, _ = Stats.fit_power xs ys in
  let exp_norm, _ =
    Stats.fit_power xs
      (Array.mapi (fun i y -> y /. (Float.log2 xs.(i) ** 2.0)) ys)
  in
  let exp_naive, _ = Stats.fit_power xs (Array.of_list (List.rev !naives)) in
  Report.record ~id:"E3"
    ~params:[ ("metric", Report.str "fitted exponent, rounds/log^2 n") ]
    ~bound:0.658 exp_norm;
  Report.record ~id:"E3"
    ~params:[ ("metric", Report.str "fitted exponent, naive cover rounds") ]
    ~extra:[ ("raw_sampler_exponent", Report.flt exp_meas) ]
    exp_naive;
  Printf.printf
    "fitted exponents: sampler rounds ~ n^%.2f raw, ~ n^%.2f after dividing\n\
     out log^2 n (paper: n^0.658 polylog); naive cover-time rounds ~ n^%.2f\n\
     (paper: n^3/8 for the lollipop).\n"
    exp_meas exp_norm exp_naive;
  print_endline
    "Expected shape: sampler exponent far below the naive exponent; the\n\
     crossover (speedup > 1) appears by n ~ 32 and widens."

(* ---------------------------------------------------------------- E4 --- *)

let e4 () =
  section "E4" "Corollaries 1-2: trees on small-cover-time graphs via doubling";
  let ns = if !fast then [ 32; 64 ] else [ 32; 64; 128; 256 ] in
  let table =
    Table.create
      ~title:
        "rounds to sample one spanning tree via doubling (Corollary 1);\n\
         polylog target: rounds / log^3 n bounded"
      ~columns:
        [ "family"; "n"; "walk length"; "rounds"; "log^3 n"; "rounds/log^3 n" ]
  in
  let families =
    [ ("ER(3 ln n / n)", `Er); ("6-regular", `Reg) ]
  in
  List.iter
    (fun (name, fam) ->
      List.iter
        (fun n ->
          let prng = Prng.create ~seed:4 in
          let g =
            match fam with
            | `Er ->
                let p = Float.min 1.0 (3.0 *. Float.log (float_of_int n) /. float_of_int n) in
                Gen.erdos_renyi_connected prng ~n ~p
            | `Reg -> Gen.random_regular prng ~n ~d:6
          in
          let net = Net.create ~n in
          let _, walk_len = Doubling.sample_tree net prng g ~tau0:(2 * n) in
          Report.observe_net ~id:"E4" net;
          let l3 = Float.log2 (float_of_int n) ** 3.0 in
          Report.record ~id:"E4"
            ~params:[ ("family", Report.str name); ("n", Report.int n) ]
            ~bound:l3
            ~extra:[ ("walk_length", Report.int walk_len) ]
            (Net.rounds net);
          Table.add_row table
            [
              name;
              Table.cell_int n;
              Table.cell_int walk_len;
              Table.cell_float ~decimals:0 (Net.rounds net);
              Table.cell_float ~decimals:0 l3;
              Table.cell_float ~decimals:2 (Net.rounds net /. l3);
            ])
        ns)
    families;
  Table.print table;
  print_endline
    "Expected shape: rounds/log^3 n stays bounded (constant-ish) as n grows\n\
     — Corollary 2's polylog round complexity, driven by the O(n log n)\n\
     cover time of these families."

(* ---------------------------------------------------------------- E5 --- *)

let e5 () =
  section "E5" "Theorems 3-5: TV distance of sampled trees to the exact law";
  let trials = if !fast then 3000 else 8000 in
  let graphs =
    [
      ("K4", Gen.complete 4);
      ("C4+chord",
       Graph.of_unweighted_edges ~n:4 [ (0, 1); (1, 2); (2, 3); (3, 0); (0, 2) ]);
      ("grid 2x3", Gen.grid ~rows:2 ~cols:3);
      ("K5 - edge",
       Graph.of_unweighted_edges ~n:5
         (List.filter (fun (u, v) -> not (u = 0 && v = 1))
            (List.concat_map (fun u -> List.init (4 - u) (fun k -> (u, u + k + 1)))
               [ 0; 1; 2; 3 ])));
    ]
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "empirical TV distance to the exact spanning-tree distribution \
            (%d samples; floor = 3x CLT noise)"
           trials)
      ~columns:[ "graph"; "#trees"; "sampler"; "TV"; "noise floor" ]
  in
  let samplers =
    [
      ("CC sampler", fun net prng g -> (Sampler.sample net prng g).Sampler.tree);
      ("CC magical",
       fun net prng g ->
         (Sampler.sample
            ~config:{ Sampler.default_config with matching = Phase_walk.Magical }
            net prng g).Sampler.tree);
      ("CC 40-bit",
       fun net prng g ->
         (Sampler.sample
            ~config:{ Sampler.default_config with bits = Some 40 }
            net prng g).Sampler.tree);
      ("Aldous-Broder", fun _ prng g -> Cc_walks.Aldous_broder.sample_tree g prng);
      ("Wilson", fun _ prng g -> Cc_walks.Wilson.sample_tree g prng);
    ]
  in
  List.iter
    (fun (gname, g) ->
      let n = Graph.n g in
      let trees, lookup = Tree.index g in
      let target = Tree.weighted_distribution g trees in
      let support = Array.length trees in
      List.iter
        (fun (sname, sampler) ->
          let prng = Prng.create ~seed:5 in
          let net = Net.create ~n in
          let counts = Array.make support 0 in
          for _ = 1 to trials do
            let t = sampler net prng g in
            counts.(lookup t) <- counts.(lookup t) + 1
          done;
          let tv = Dist.tv_counts ~counts target in
          Report.observe_net ~id:"E5" net;
          let floor = 3.0 *. Stats.tv_noise_floor ~samples:trials ~support in
          Report.record ~id:"E5"
            ~params:
              [
                ("graph", Report.str gname);
                ("sampler", Report.str sname);
                ("trials", Report.int trials);
                ("support", Report.int support);
              ]
            ~bound:floor tv;
          Table.add_row table
            [
              gname;
              Table.cell_int support;
              sname;
              Table.cell_float ~decimals:4 tv;
              Table.cell_float ~decimals:4 floor;
            ])
        samplers)
    graphs;
  Table.print table;
  print_endline
    "Expected shape: every sampler's TV sits at the sampling-noise floor —\n\
     the distributed pipeline (multiset compression + matching resampling +\n\
     Schur phases) is statistically indistinguishable from the exact\n\
     uniform law, matching the 1/n^c TV guarantee of Theorem 5.\n\
     (The paper's distinguishing power at these sample sizes is ~the floor.)"

(* ---------------------------------------------------------------- E6 --- *)

let e6 () =
  section "E6" "Lemma 3: subtractive error of truncated matrix powers";
  let n = if !fast then 12 else 24 in
  let prng = Prng.create ~seed:6 in
  let g = Gen.erdos_renyi_connected prng ~n ~p:0.35 in
  let p = Graph.transition_matrix g in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "ER graph n=%d: max subtractive error of round-after-squaring \
            powers vs the Lemma 3 budget"
           n)
      ~columns:[ "bits"; "k"; "measured error"; "Lemma 3 budget"; "one-sided?" ]
  in
  List.iter
    (fun bits ->
      List.iter
        (fun k ->
          let exact = Mat.power p k in
          let approx = Fixed.rounded_power ~bits p k in
          let err = Mat.max_subtractive_error ~exact ~approx in
          let overshoot = Mat.max_subtractive_error ~exact:approx ~approx:exact in
          Report.record ~id:"E6"
            ~params:[ ("bits", Report.int bits); ("k", Report.int k) ]
            ~bound:(Fixed.lemma3_error_bound ~n ~k ~bits)
            ~extra:
              [ ("one_sided", Cc_obs.Json.Bool (overshoot <= 1e-12)) ]
            err;
          Table.add_row table
            [
              Table.cell_int bits;
              Table.cell_int k;
              Table.cell_sci err;
              Table.cell_sci (Fixed.lemma3_error_bound ~n ~k ~bits);
              (if overshoot <= 1e-12 then "yes" else "NO");
            ])
        [ 2; 8; 64; 512 ])
    [ 16; 24; 40 ];
  Table.print table;
  Printf.printf
    "bits sufficient for beta = 1e-6 at k = 512 per Lemma 3's recurrence: %d\n"
    (Fixed.lemma3_bits ~n ~k:512 ~beta:1e-6);
  print_endline
    "Expected shape: measured error always below the budget and always\n\
     one-sided (truncation under-approximates); error grows with k and\n\
     shrinks by ~2^-bits."

(* ---------------------------------------------------------------- E7 --- *)

let e7 () =
  section "E7" "Corollaries 3-4: shortcut/Schur powering error decay";
  let n = if !fast then 12 else 16 in
  let prng = Prng.create ~seed:7 in
  let g = Gen.random_connected prng ~n ~extra_edges:n in
  let s = Prng.subset prng ~size:(n / 2) (Array.init n (fun i -> i)) in
  Array.sort compare s;
  let in_s = Schur.members ~n ~s in
  let q_exact = Shortcut.exact g ~in_s in
  let schur_exact = Schur.transition_exact g ~s in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "random graph n=%d, |S|=%d: entrywise error of k-step powering" n
           (n / 2))
      ~columns:[ "k"; "shortcut max err"; "schur max err" ]
  in
  List.iter
    (fun k ->
      let q = Shortcut.approx g ~in_s ~k in
      let sc = Schur.approx g ~s ~k in
      Report.record ~id:"E7"
        ~params:[ ("n", Report.int n); ("k", Report.int k) ]
        ~extra:[ ("schur_max_err", Report.flt (Mat.max_abs_diff sc schur_exact)) ]
        (Mat.max_abs_diff q q_exact);
      Table.add_row table
        [
          Table.cell_int k;
          Table.cell_sci (Mat.max_abs_diff q q_exact);
          Table.cell_sci (Mat.max_abs_diff sc schur_exact);
        ])
    [ 4; 16; 64; 256; 1024; 4096 ];
  Table.print table;
  print_endline
    "Expected shape: geometric decay with k as the auxiliary chain absorbs\n\
     — choosing k = O(n^3 log(1/delta)) reaches any inverse-polynomial\n\
     target, which is what the sampler's later phases rely on."

(* ---------------------------------------------------------------- E8 --- *)

let e8 () =
  section "E8" "Figure 2: the worked Schur/shortcut example";
  let g = Gen.figure2 () in
  let s = [| 0; 1; 3 |] in
  let in_s = Schur.members ~n:4 ~s in
  let schur_t = Schur.transition_exact g ~s in
  let q = Shortcut.exact g ~in_s in
  Format.printf "graph: star A-C, B-C, D-C (A=0,B=1,C=2,D=3), S = {A,B,D}@.@.";
  Format.printf "SCHUR(G,S) transitions (paper: uniform 1/2 off-diagonal):@.%a@."
    Mat.pp schur_t;
  Format.printf "SHORTCUT(G,S) transitions (paper: all mass on C):@.%a@." Mat.pp q;
  let ok = ref true in
  for i = 0 to 2 do
    for j = 0 to 2 do
      let expected = if i = j then 0.0 else 0.5 in
      if Float.abs (Mat.get schur_t i j -. expected) > 1e-9 then ok := false
    done
  done;
  for u = 0 to 3 do
    for v = 0 to 3 do
      let expected = if v = 2 then 1.0 else 0.0 in
      if Float.abs (Mat.get q u v -. expected) > 1e-9 then ok := false
    done
  done;
  Report.record ~id:"E8"
    ~params:[ ("check", Report.str "Figure 2 entrywise match") ]
    ~bound:1.0
    (if !ok then 1.0 else 0.0);
  Printf.printf "entrywise match with Figure 2: %s\n" (if !ok then "PASS" else "FAIL")

(* ---------------------------------------------------------------- E9 --- *)

let e9 () =
  section "E9" "Cover-time premises per graph family";
  let ns = if !fast then [ 16; 32 ] else [ 16; 32; 64 ] in
  let trials = if !fast then 10 else 30 in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "mean cover time (%d trials) normalized by the claimed bound" trials)
      ~columns:
        [ "family"; "claimed"; "n"; "mean cover"; "cover/claim"; "lazy gap";
          "mean hitting" ]
  in
  let families =
    [
      ("path", "n^2", (fun _ n -> Gen.path n), fun n -> float_of_int (n * n));
      ("complete", "n ln n",
       (fun _ n -> Gen.complete n),
       fun n -> float_of_int n *. Float.log (float_of_int n));
      ("lollipop", "n^3/8",
       (fun _ n -> Gen.lollipop ~clique:(n / 2) ~tail:(n - (n / 2))),
       fun n -> float_of_int (n * n * n) /. 8.0);
      ("ER(3 ln n/n)", "n ln n",
       (fun prng n ->
         let p = Float.min 1.0 (3.0 *. Float.log (float_of_int n) /. float_of_int n) in
         Gen.erdos_renyi_connected prng ~n ~p),
       fun n -> float_of_int n *. Float.log (float_of_int n));
      ("6-regular", "n ln n",
       (fun prng n -> Gen.random_regular prng ~n ~d:6),
       fun n -> float_of_int n *. Float.log (float_of_int n));
    ]
  in
  List.iter
    (fun (name, claim, make, bound) ->
      List.iter
        (fun n ->
          let prng = Prng.create ~seed:9 in
          let g = make prng n in
          let cover = Walk.mean_cover_time g prng ~trials in
          Report.record ~id:"E9"
            ~params:
              [
                ("family", Report.str name);
                ("claimed", Report.str claim);
                ("n", Report.int n);
              ]
            ~bound:(bound n) cover;
          Table.add_row table
            [
              name; claim; Table.cell_int n;
              Table.cell_float ~decimals:0 cover;
              Table.cell_float ~decimals:2 (cover /. bound n);
              Table.cell_float ~decimals:4 (Cc_graph.Spectral.gap ~iters:2000 g);
              Table.cell_float ~decimals:0 (Cc_walks.Hitting.mean_hitting_time g);
            ])
        ns)
    families;
  Table.print table;
  print_endline
    "Expected shape: cover/claim roughly constant per family — the Theta(mn)\n\
     worst case (lollipop) motivating Theorem 2, and the O(n log n) families\n\
     that make Corollary 2's polylog sampling possible. The lazy spectral\n\
     gap explains the split: constant-ish for expanders, polynomially small\n\
     for paths/lollipops; mean hitting time is Wilson's runtime scale."

(* --------------------------------------------------------------- E10 --- *)

let e10 () =
  section "E10" "PageRank from polylog-length doubling walks";
  let n = if !fast then 32 else 64 in
  let prng = Prng.create ~seed:10 in
  let g =
    Gen.erdos_renyi_connected prng ~n
      ~p:(Float.min 1.0 (4.0 *. Float.log (float_of_int n) /. float_of_int n))
  in
  let epsilon = 0.15 in
  let exact = Doubling.pagerank_exact g ~epsilon in
  let table =
    Table.create
      ~title:
        (Printf.sprintf "ER graph n=%d, epsilon=%.2f: estimate accuracy vs budget"
           n epsilon)
      ~columns:[ "walks/vertex"; "rounds"; "L1 error"; "max abs error" ]
  in
  List.iter
    (fun walks ->
      let net = Net.create ~n in
      let est = Doubling.pagerank net prng g ~walks_per_node:walks ~epsilon in
      Report.observe_net ~id:"E10" net;
      let l1 =
        Array.fold_left ( +. ) 0.0
          (Array.mapi (fun i x -> Float.abs (x -. exact.(i))) est)
      in
      let linf =
        Array.fold_left Float.max 0.0
          (Array.mapi (fun i x -> Float.abs (x -. exact.(i))) est)
      in
      Report.record ~id:"E10"
        ~params:[ ("n", Report.int n); ("walks_per_vertex", Report.int walks) ]
        ~extra:
          [
            ("rounds", Report.flt (Net.rounds net));
            ("max_abs_error", Report.flt linf);
          ]
        l1;
      Table.add_row table
        [
          Table.cell_int walks;
          Table.cell_float ~decimals:0 (Net.rounds net);
          Table.cell_float ~decimals:4 l1;
          Table.cell_float ~decimals:5 linf;
        ])
    [ 8; 32; 128 ];
  Table.print table;
  print_endline
    "Expected shape: L1 error shrinks like 1/sqrt(walks); rounds grow\n\
     mildly (walk length is O(log n / epsilon), built in O(log) iterations)."

(* ---------------------------------------------------------------- F1 --- *)

let f1 () =
  section "F1" "Figure 1: midpoint request / multiset / matching pipeline";
  (* Mirror the figure: a partial walk over vertices {1,2,3} of K4 whose
     consecutive pairs repeat, one level of midpoint filling narrated. *)
  let g = Gen.complete 4 in
  let p = Graph.transition_matrix g in
  let powers = Mat.power_table p ~max_exp:2 in
  let walk = [| 1; 3; 2; 1; 2; 1; 3 |] in
  let gap_exp = 2 in
  Printf.printf "partial walk W_i (entries %d apart): %s\n" (1 lsl gap_exp)
    (String.concat " " (Array.to_list (Array.map string_of_int walk)));
  (* Count (start,end) pairs as machine M does. *)
  let pairs = Hashtbl.create 8 in
  for i = 0 to Array.length walk - 2 do
    let key = (walk.(i), walk.(i + 1)) in
    Hashtbl.replace pairs key (1 + Option.value ~default:0 (Hashtbl.find_opt pairs key))
  done;
  Printf.printf "\ndistinct (start,end) pairs and counts sent to machines M_pq:\n";
  Hashtbl.iter (fun (p', q) c -> Printf.printf "  M_(%d,%d): %d midpoints\n" p' q c) pairs;
  let prng = Prng.create ~seed:11 in
  (* Per-pair machines sample midpoint sequences from Formula 1. *)
  let sampled =
    Hashtbl.fold
      (fun (p', q) c acc ->
        let w = Cc_walks.Topdown.midpoint_weights powers ~gap_exp ~a:p' ~b:q in
        let mids = List.init c (fun _ -> Dist.sample_weights w prng) in
        ((p', q), mids) :: acc)
      pairs []
  in
  Printf.printf "\nsampled midpoint sequences Pi_pq (kept at the pair machines):\n";
  List.iter
    (fun ((p', q), mids) ->
      Printf.printf "  Pi_(%d,%d) = %s\n" p' q
        (String.concat " " (List.map string_of_int mids)))
    sampled;
  (* The leader only receives the multiset. *)
  let multiset = List.concat_map snd sampled in
  let tally = Hashtbl.create 8 in
  List.iter
    (fun v -> Hashtbl.replace tally v (1 + Option.value ~default:0 (Hashtbl.find_opt tally v)))
    multiset;
  Printf.printf "\nmultiset received by leader M (positions forgotten): { ";
  Hashtbl.iter (fun v c -> Printf.printf "%d x%d  " v c) tally;
  Printf.printf "}\n";
  (* Leader resamples the placement as a weighted perfect matching. *)
  let positions =
    Array.init (Array.length walk - 1) (fun i -> (walk.(i), walk.(i + 1)))
  in
  let identities = Array.of_list multiset in
  let instance =
    Placement.build ~identities ~positions ~weight:(fun ~v ~p:p' ~q ->
        Mat.get powers.(gap_exp - 1) p' v *. Mat.get powers.(gap_exp - 1) v q)
  in
  let sigma = Placement.sample_exact prng instance in
  let filled = Array.make ((2 * Array.length walk) - 1) 0 in
  Array.iteri (fun i v -> filled.(2 * i) <- v) walk;
  Array.iteri (fun j inst -> filled.((2 * j) + 1) <- identities.(inst)) sigma;
  Printf.printf
    "\nW_i+1 after matching-based placement (midpoints re-sampled into slots):\n  %s\n"
    (String.concat " " (Array.to_list (Array.map string_of_int filled)));
  Report.record ~id:"F1"
    ~params:[ ("check", Report.str "Figure 1 pipeline, filled walk length") ]
    ~bound:(float_of_int ((2 * Array.length walk) - 1))
    (float_of_int (Array.length filled));
  print_endline
    "\n(The placement is drawn proportional to the product of Formula 1\n\
     weights — Theorem 3 shows this reproduces the true conditional law of\n\
     the midpoints given the multiset.)"

(* ---------------------------------------------------------------- F2 --- *)

let f2 () =
  section "F2" "fault injection: recovery overhead vs message-drop probability";
  let n = if !fast then 32 else 64 in
  let tau = 4 * n in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "doubling walks on cycle(%d), tau = %d, under seeded message \
            drops:\nextra rounds bought by ack + retransmission (fault seed \
            fixed, so\nevery row heals the same walk)"
           n tau)
      ~columns:
        [ "drop prob"; "rounds"; "overhead"; "overhead %"; "retransmits";
          "dropped"; "health" ]
  in
  List.iter
    (fun drop_prob ->
      let g = Gen.cycle n in
      let prng = Prng.create ~seed:11 in
      let net = Net.create ~n in
      let net =
        if drop_prob > 0.0 then
          Net.with_faults (Fault.create (Fault.spec ~drop_prob ~seed:7 ())) net
        else net
      in
      let r =
        Doubling.run net prng g ~tau ~scheme:(Doubling.default_scheme ~n)
      in
      let total = Net.rounds net in
      let overhead = Net.overhead_rounds net in
      Report.observe_net ~id:"F2" net;
      Report.record ~id:"F2"
        ~params:[ ("n", Report.int n); ("drop_prob", Report.flt drop_prob) ]
        ~bound:total
        ~extra:
          [
            ("retransmits", Report.int (Net.retransmits net));
            ("dropped", Report.int (Net.dropped net));
            ( "health",
              Report.str (Format.asprintf "%a" Fault.pp_health r.Doubling.health)
            );
          ]
        overhead;
      Table.add_row table
        [
          Table.cell_float ~decimals:2 drop_prob;
          Table.cell_float ~decimals:0 total;
          Table.cell_float ~decimals:0 overhead;
          Table.cell_float ~decimals:1 (100.0 *. overhead /. total);
          Table.cell_int (Net.retransmits net);
          Table.cell_int (Net.dropped net);
          Format.asprintf "%a" Fault.pp_health r.Doubling.health;
        ])
    [ 0.0; 0.02; 0.05; 0.1; 0.2 ];
  Table.print table;
  print_endline
    "Expected shape: retransmits scale linearly with the drop rate (each\n\
     dropped packet costs one retry wave w.h.p.), so the overhead stays a\n\
     modest fraction of the fault-free rounds until drops are frequent\n\
     enough to trigger second-wave retries and their exponential backoff."

(* ---------------------------------------------------------------- F3 --- *)

(* Transport overhead and recovery cost: the same doubling workload on the
   in-process transport and on the multi-process one — fault-free, under
   wire-level drops/corruption, and with a worker SIGKILLed mid-run by the
   fault schedule. Wall-clock rows carry no bound, so the ccprof diff gate
   stays hardware-independent; the health column is the correctness signal
   (every faulted mode must end recovered, never degraded), and the
   cross-transport CI job pins the digests. *)

let f3 () =
  section "F3" "multi-process transport: overhead and recovery cost";
  let n = if !fast then 16 else 32 in
  let tau = 4 * n in
  let module Transport = Cc_transport.Transport in
  let module Supervisor = Cc_transport.Supervisor in
  let module CP = Cc_obs.Critical_path in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "doubling walks on cycle(%d), tau = %d, same seed per mode:\n\
            in-process vs supervised worker processes (4 workers), with\n\
            wire faults and a real mid-run SIGKILL"
           n tau)
      ~columns:
        [ "mode"; "rounds"; "wall (s)"; "respawns"; "reroutes"; "retries";
          "recovery (ms)"; "events"; "worker.*"; "cp cover %"; "cp top";
          "health" ]
  in
  List.iter
    (fun (mode_name, mode) ->
      (* Isolate the merged worker.<shard>.* namespace per mode (the
         registry is process-global; nothing else reads it back). *)
      Cc_obs.Metrics.reset ();
      let g = Gen.cycle n in
      let prng = Prng.create ~seed:13 in
      let net = Net.create ~n in
      (* Distributed trace per mode: the collector must be live before the
         transport spawns (span-id bases ride in Hello), and the root [run]
         span closes only after shutdown's final flush — the same wiring as
         the binaries' --trace-out. Observability-only: the rounds column
         is the proof it doesn't perturb the run. *)
      let tracer = Cc_obs.Trace.create () in
      Cc_obs.Trace.install tracer;
      Cc_obs.Trace.open_span tracer "run";
      let net =
        match mode with
        | `Kill ->
            (* Model-level crash schedule: machine 3 crashes at round 2; the
               transport turns that into a SIGKILL of its owning worker. *)
            Net.with_faults
              (Fault.create (Fault.spec ~crashes:[ (3, 2.0) ] ~seed:7 ()))
              net
        | _ -> net
      in
      let tr =
        match mode with
        | `Inproc -> Transport.inproc ()
        | `Mpproc | `Kill -> Transport.mpproc ~machines:n ()
        | `Drop ->
            Transport.mpproc
              ~config:
                {
                  Supervisor.default_config with
                  wire_drop_prob = 0.05;
                  wire_corrupt_prob = 0.02;
                  wire_seed = 13;
                }
              ~machines:n ()
      in
      Net.set_transport net tr;
      let t0 = Unix.gettimeofday () in
      let r = Doubling.run net prng g ~tau ~scheme:(Doubling.default_scheme ~n) in
      tr.Transport.sync ();
      let wall = Unix.gettimeofday () -. t0 in
      let health = tr.Transport.health () in
      let snap = tr.Transport.snapshot () in
      tr.Transport.shutdown ();
      Cc_obs.Trace.close_span tracer;
      Cc_obs.Trace.uninstall ();
      let cp_cover, cp_top =
        match CP.compute tracer with
        | None -> (0.0, "-")
        | Some c ->
            ( (if c.CP.total_s > 0.0 then
                 100.0 *. c.CP.covered_s /. c.CP.total_s
               else 100.0),
              match c.CP.rows with
              | r :: _ ->
                  Printf.sprintf "%s %.0f%%" r.CP.phase (100.0 *. r.CP.share)
              | [] -> "-" )
      in
      Report.observe_net ~id:"F3" net;
      let zero =
        {
          Supervisor.books = 0; kills = 0; respawns = 0; reroutes = 0;
          wire_drops = 0; wire_corrupts = 0; wire_retries = 0; syncs = 0;
          recovery_s = 0.0;
        }
      in
      let s = Option.value ~default:zero snap in
      (* Journal length after shutdown includes the worker_stop records;
         the merged-metric count shows the telemetry plane end to end. *)
      let journal_events =
        match tr.Transport.journal () with
        | Some j -> Cc_obs.Journal.length j
        | None -> 0
      in
      let worker_merged =
        List.length
          (List.filter
             (fun (name, _) -> String.starts_with ~prefix:"worker." name)
             (Cc_obs.Metrics.snapshot ()))
      in
      Report.record ~id:"F3"
        ~params:[ ("n", Report.int n); ("mode", Report.str mode_name) ]
        ~extra:
          [
            ("rounds", Report.flt r.Doubling.rounds);
            ("health", Report.str (Transport.health_summary health));
            ("books", Report.int s.Supervisor.books);
            ("kills", Report.int s.Supervisor.kills);
            ("respawns", Report.int s.Supervisor.respawns);
            ("reroutes", Report.int s.Supervisor.reroutes);
            ("wire_drops", Report.int s.Supervisor.wire_drops);
            ("wire_corrupts", Report.int s.Supervisor.wire_corrupts);
            ("wire_retries", Report.int s.Supervisor.wire_retries);
            ("syncs", Report.int s.Supervisor.syncs);
            ("recovery_s", Report.flt s.Supervisor.recovery_s);
            ("journal_events", Report.int journal_events);
            ("worker_metrics", Report.int worker_merged);
            ("cp_cover", Report.flt cp_cover);
            ("cp_top_phase", Report.str cp_top);
          ]
        wall;
      Table.add_row table
        [
          mode_name;
          Table.cell_float ~decimals:0 r.Doubling.rounds;
          Table.cell_float ~decimals:3 wall;
          Table.cell_int s.Supervisor.respawns;
          Table.cell_int s.Supervisor.reroutes;
          Table.cell_int s.Supervisor.wire_retries;
          Table.cell_float ~decimals:1 (1000.0 *. s.Supervisor.recovery_s);
          Table.cell_int journal_events;
          Table.cell_int worker_merged;
          Table.cell_float ~decimals:1 cp_cover;
          cp_top;
          Transport.health_summary health;
        ])
    [
      ("inproc", `Inproc);
      ("mpproc", `Mpproc);
      ("mpproc+drop", `Drop);
      ("mpproc+kill", `Kill);
    ];
  Table.print table;
  print_endline
    "Expected shape: rounds depend only on the model fault schedule, never\n\
     on the transport (the kill row's extra rounds are the model's own\n\
     crash recovery); mpproc pays a constant wall-clock factor for\n\
     serialization + syncs; the drop mode heals through retransmission\n\
     alone (no respawns); the kill mode shows one kill healed by a respawn.\n\
     Any 'degraded' in the health column is a supervision regression."

(* ---------------------------------------------------------------- D1 --- *)

(* The replay workflow (ccreplay, CI determinism job) relies on the event
   stream being a pure function of the seed. D1 pins that: two sampler runs
   with identical seeds must produce byte-identical recorder digests and a
   clean invariant report; the reported measurement is 1.0 iff both hold,
   gated against bound = 1.0 so any nondeterminism regression trips the
   ccprof diff gate. *)

let d1 () =
  section "D1" "determinism: same seed twice -> identical recorder digests";
  let n = if !fast then 16 else 32 in
  let seed = 42 in
  let run () =
    let prng = Prng.create ~seed in
    let g = Gen.build prng Gen.Lollipop ~n in
    let net = Net.create ~n:(Graph.n g) in
    let recorder = Cc_obs.Recorder.create ~machines:(Graph.n g) () in
    let inv = Cc_obs.Invariant.create ~machines:(Graph.n g) () in
    ignore (Net.attach_recorder net recorder);
    ignore (Net.attach_invariant net inv);
    ignore (Sampler.sample net prng g);
    let violations =
      Cc_obs.Invariant.count inv + List.length (Net.ledger_violations net inv)
    in
    (Cc_obs.Recorder.digest_hex recorder, Cc_obs.Recorder.total recorder,
     violations, net)
  in
  let d_a, total_a, viol_a, net = run () in
  let d_b, total_b, viol_b, _ = run () in
  let identical = String.equal d_a d_b && total_a = total_b in
  let clean = viol_a = 0 && viol_b = 0 in
  Report.observe_net ~id:"D1" net;
  Report.record ~id:"D1"
    ~params:[ ("n", Report.int n); ("seed", Report.int seed) ]
    ~bound:1.0
    ~extra:
      [
        ("digest_a", Report.str d_a);
        ("digest_b", Report.str d_b);
        ("records", Report.int total_a);
        ("violations", Report.int (viol_a + viol_b));
      ]
    (if identical && clean then 1.0 else 0.0);
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "two sampler runs, lollipop(%d), seed %d: recorder digests" n seed)
      ~columns:[ "run"; "records"; "digest"; "violations" ]
  in
  Table.add_row table
    [ "A"; string_of_int total_a; d_a; string_of_int viol_a ];
  Table.add_row table
    [ "B"; string_of_int total_b; d_b; string_of_int viol_b ];
  Table.print table;
  Printf.printf "identical digests: %b, invariants clean: %b\n" identical clean;
  if not (identical && clean) then
    print_endline
      "DETERMINISM REGRESSION: same-seed runs diverged (or violated an \
       invariant); use ccreplay diff on recorded logs to find the first \
       divergent event."

(* --------------------------------------------------------------- E11 --- *)

let e11 () =
  section "E11"
    "related work: CONGEST baselines vs the Congested Clique algorithms";
  let ns = if !fast then [ 16; 32 ] else [ 16; 32; 64 ] in
  let table =
    Table.create
      ~title:
        "rounds to sample one spanning tree of lollipop(n), per model:\n\
         CONGEST step-by-step (cover-time rounds), CONGEST Das Sarma et al.\n\
         (stitched short walks, ~sqrt(L D)), clique doubling (Theorem 1),\n\
         clique sublinear (Theorem 2)"
      ~columns:
        [ "n"; "D"; "CONGEST naive"; "CONGEST stitched"; "clique doubling";
          "clique sublinear" ]
  in
  List.iter
    (fun n ->
      let g = Gen.lollipop ~clique:(n / 2) ~tail:(n - (n / 2)) in
      let prng = Prng.create ~seed:11 in
      let cnet = Cc_congest.Cnet.create g in
      let naive = Cc_congest.Congest_walk.step_by_step cnet prng in
      let cnet2 = Cc_congest.Cnet.create g in
      let lambda =
        Cc_congest.Congest_walk.auto_lambda cnet2
          ~walk_estimate:(max 16 (naive.Cc_congest.Congest_walk.walk_length / 2))
      in
      let stitched =
        Cc_congest.Congest_walk.das_sarma cnet2 prng ~lambda ~eta:4
      in
      let net_d = Net.create ~n in
      ignore (Doubling.sample_tree net_d prng g ~tau0:n);
      let net_s = Net.create ~n in
      let r = Sampler.sample net_s prng g in
      Report.observe_net ~id:"E11" net_d;
      Report.observe_net ~id:"E11" net_s;
      Report.record ~id:"E11"
        ~params:[ ("n", Report.int n) ]
        ~extra:
          [
            ("congest_naive", Report.flt naive.Cc_congest.Congest_walk.rounds);
            ( "congest_stitched",
              Report.flt stitched.Cc_congest.Congest_walk.rounds );
            ("clique_doubling", Report.flt (Net.rounds net_d));
          ]
        r.Sampler.rounds;
      Table.add_row table
        [
          Table.cell_int n;
          Table.cell_int (Cc_congest.Cnet.depth cnet);
          Table.cell_float ~decimals:0 naive.Cc_congest.Congest_walk.rounds;
          Table.cell_float ~decimals:0 stitched.Cc_congest.Congest_walk.rounds;
          Table.cell_float ~decimals:0 (Net.rounds net_d);
          Table.cell_float ~decimals:0 r.Sampler.rounds;
        ])
    ns;
  Table.print table;
  print_endline
    "Expected shape: the stitched CONGEST walk beats the naive one by\n\
     ~sqrt(L/D); both CONGEST baselines blow up with the n^3-scale cover\n\
     time, while the clique sublinear sampler's n^(0.5+alpha) polylog\n\
     growth pulls away — the all-to-all bandwidth is what the paper buys."

(* ---------------------------------------------------------------- A1 --- *)

let a1 () =
  section "A1" "ablation: sparsifier quality vs number of sampled trees";
  let n = if !fast then 16 else 24 in
  let prng = Prng.create ~seed:21 in
  let g = Gen.complete n in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "K%d: reweighted tree-union sparsifier (trees from the CC sampler)" n)
      ~columns:[ "trees"; "edges kept"; "cut ratio range"; "Rayleigh range" ]
  in
  let net = Net.create ~n in
  let sampler g prng = (Sampler.sample net prng g).Sampler.tree in
  List.iter
    (fun t ->
      let h = Cc_apps.Sparsifier.union prng sampler g ~trees:t ~reweight:true in
      let q = Cc_apps.Sparsifier.evaluate prng g h ~probes:200 in
      Report.record ~id:"A1"
        ~params:[ ("n", Report.int n); ("trees", Report.int t) ]
        ~extra:
          [
            ("cut_ratio_min", Report.flt q.Cc_apps.Sparsifier.cut_ratio_min);
            ("cut_ratio_max", Report.flt q.Cc_apps.Sparsifier.cut_ratio_max);
            ("rayleigh_min", Report.flt q.Cc_apps.Sparsifier.rayleigh_min);
            ("rayleigh_max", Report.flt q.Cc_apps.Sparsifier.rayleigh_max);
          ]
        (float_of_int q.Cc_apps.Sparsifier.edges_kept);
      Table.add_row table
        [
          Table.cell_int t;
          Table.cell_int q.Cc_apps.Sparsifier.edges_kept;
          Printf.sprintf "[%.2f, %.2f]" q.Cc_apps.Sparsifier.cut_ratio_min
            q.Cc_apps.Sparsifier.cut_ratio_max;
          Printf.sprintf "[%.2f, %.2f]" q.Cc_apps.Sparsifier.rayleigh_min
            q.Cc_apps.Sparsifier.rayleigh_max;
        ])
    [ 1; 4; 16 ];
  Report.observe_net ~id:"A1" net;
  Table.print table;
  print_endline
    "Expected shape: both ranges tighten toward [1,1] as trees accumulate —\n\
     the sparsification application from the paper's introduction, driven\n\
     end-to-end by the distributed sampler."

(* ---------------------------------------------------------------- A2 --- *)

let a2 () =
  section "A2" "ablation: all six tree samplers, time + marginal accuracy";
  let n = if !fast then 10 else 14 in
  let trials = if !fast then 300 else 800 in
  let prng = Prng.create ~seed:22 in
  let g = Gen.random_connected prng ~n ~extra_edges:n in
  let net = Net.create ~n in
  let samplers =
    [
      ("Aldous-Broder", fun g -> Cc_walks.Aldous_broder.sample_tree g (Prng.split prng));
      ("Wilson", fun g -> Cc_walks.Wilson.sample_tree g (Prng.split prng));
      ("up-down MCMC", fun g -> Cc_walks.Updown.sample_tree g (Prng.split prng));
      ("determinantal", fun g -> Cc_walks.Determinantal.sample_tree g (Prng.split prng));
      ("sequential phased", fun g -> Cc_sampler.Sequential.sample_tree g (Prng.split prng));
      ("CC distributed", fun g -> (Sampler.sample net (Prng.split prng) g).Sampler.tree);
    ]
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "random graph n=%d, m=%d: %d samples per sampler; gap = l-inf \
            distance of empirical edge marginals to exact leverage scores"
           n (Graph.num_edges g) trials)
      ~columns:[ "sampler"; "time/sample"; "max marginal gap"; "4-sigma tol" ]
  in
  let tol =
    (4.0 *. Stats.binomial_confidence ~n:trials ~p:0.5) +. 0.01
  in
  List.iter
    (fun (name, sampler) ->
      let t0 = Unix.gettimeofday () in
      let gap = Cc_walks.Determinantal.max_marginal_gap g ~trials sampler in
      let dt = (Unix.gettimeofday () -. t0) /. float_of_int trials in
      Report.record ~id:"A2"
        ~params:[ ("sampler", Report.str name); ("trials", Report.int trials) ]
        ~bound:tol
        ~extra:[ ("time_per_sample_s", Report.flt dt) ]
        gap;
      let time_cell =
        if dt > 1.0 then Printf.sprintf "%.2f s" dt
        else if dt > 1e-3 then Printf.sprintf "%.2f ms" (dt *. 1e3)
        else Printf.sprintf "%.0f us" (dt *. 1e6)
      in
      Table.add_row table
        [ name; time_cell; Table.cell_float ~decimals:4 gap;
          Table.cell_float ~decimals:4 tol ])
    samplers;
  Table.print table;
  print_endline
    "Expected shape: every sampler\'s marginal gap is within the statistical\n\
     tolerance — six independent implementations (four exact sequential, the\n\
     phased Schur reference, and the full distributed pipeline) agree on a\n\
     graph whose tree count is far beyond enumeration."

(* ---------------------------------------------------------------- A3 --- *)

let a3 () =
  section "A3" "ablation: sampler configurations (matching, Schur, bits, alpha)";
  let n = if !fast then 24 else 32 in
  (* Barbell rather than lollipop: its cliques make the chain aperiodic, so
     the non-lazy configuration is directly comparable (on bipartite-tailed
     graphs the non-lazy walk materializes the full Theta(n^3) target at the
     leader, which is the documented reason lazy_walk defaults to true). *)
  let g = Gen.barbell (n / 2) in
  let configs =
    [
      ("default (exact-solve Schur)", Sampler.default_config);
      ("magical matching", { Sampler.default_config with matching = Phase_walk.Magical });
      ("powering Schur", { Sampler.default_config with schur = Sampler.Powering { k = None } });
      ("40-bit fixed point", { Sampler.default_config with bits = Some 40 });
      ("non-lazy walk", { Sampler.default_config with lazy_walk = false });
      ("alpha = 1/3",
       { Sampler.default_config with backend = Matmul.charged ~alpha:(1.0 /. 3.0) () });
      ("semiring matmul (n^1/3)",
       { Sampler.default_config with backend = Matmul.Routed_semiring });
      ("routed matmul (naive n)",
       { Sampler.default_config with backend = Matmul.Routed_broadcast });
    ]
  in
  let table =
    Table.create
      ~title:(Printf.sprintf "barbell n=%d: one sample per configuration" n)
      ~columns:[ "configuration"; "phases"; "rounds"; "walk"; "time" ]
  in
  List.iter
    (fun (name, config) ->
      let net = Net.create ~n in
      let prng = Prng.create ~seed:23 in
      let t0 = Unix.gettimeofday () in
      let r = Sampler.sample ~config net prng g in
      Report.observe_net ~id:"A3" net;
      Report.record ~id:"A3"
        ~params:[ ("configuration", Report.str name); ("n", Report.int n) ]
        ~extra:
          [
            ("phases", Report.int r.Sampler.phases);
            ("walk_length", Report.int r.Sampler.walk_total);
            ("wall_s", Report.flt (Unix.gettimeofday () -. t0));
          ]
        r.Sampler.rounds;
      Table.add_row table
        [
          name;
          Table.cell_int r.Sampler.phases;
          Table.cell_float ~decimals:0 r.Sampler.rounds;
          Table.cell_int r.Sampler.walk_total;
          Printf.sprintf "%.2f s" (Unix.gettimeofday () -. t0);
        ])
    configs;
  Table.print table;
  print_endline
    "Expected shape: identical tree law across configurations (verified\n\
     statistically in E5/test suite); rounds rise with alpha and explode\n\
     with the routed (naive) matmul backend — quantifying how much the\n\
     fast-matmul black box and the paper\'s design choices buy."

(* ---------------------------------------------------------------- A4 --- *)

let a4 () =
  section "A4" "round-budget breakdown of one full sampler run";
  let n = if !fast then 32 else 64 in
  let g = Gen.lollipop ~clique:(n / 2) ~tail:(n - (n / 2)) in
  let net = Net.create ~n in
  let prng = Prng.create ~seed:24 in
  let r = Sampler.sample net prng g in
  Report.observe_net ~id:"A4" net;
  Printf.printf "lollipop n=%d: %d phases, %.0f rounds total\n" n
    r.Sampler.phases r.Sampler.rounds;
  List.iter
    (fun (label, rounds, _, _) ->
      Report.record ~id:"A4"
        ~params:[ ("n", Report.int n); ("primitive", Report.str label) ]
        ~bound:r.Sampler.rounds rounds)
    (Net.ledger net);
  Table.print (Net.ledger_table net);
  Format.printf "%a" Net.pp_profile net;
  print_endline
    "Expected shape: the Schur/shortcut powering and the per-phase matrix\n\
     power tables dominate (the paper's \"matrix multiplication time per\n\
     phase\"); the walk machinery itself — binary-search checks, midpoint\n\
     traffic, multiset gathers — costs polylog per phase."

(* ---------------------------------------------------------------- P1 --- *)

(* Strong scaling of the engine-instrumented dense kernels: the same
   workload (repeated squarings + a multi-RHS solve) at 1/2/4/N domains.
   Wall-clock rows carry no bound, so they never produce ratios — the
   ccprof diff gate stays hardware-independent — but the run fails loudly
   if any domain count changes a single bit of the results. *)

let p1 () =
  section "P1" "strong scaling: dense kernels at 1/2/4/N domains";
  let dim = if !fast then 160 else 288 in
  let reps = if !fast then 3 else 5 in
  let prng = Prng.create ~seed:31 in
  let a =
    Mat.normalize_rows
      (Mat.init ~rows:dim ~cols:dim (fun _ _ -> 0.01 +. Prng.float prng 1.0))
  in
  let workload () =
    let m = ref a in
    for _ = 1 to reps do
      m := Mat.mul !m a
    done;
    let x = Cc_linalg.Solve.solve_mat (Mat.add a (Mat.identity dim)) a in
    (!m, x)
  in
  let counts =
    List.sort_uniq compare [ 1; 2; 4; Cc_engine.default_domains () ]
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "%d reps of a %dx%d matmul + one %d-RHS solve; best of 2 runs \
            per domain count"
           reps dim dim dim)
      ~columns:
        [ "domains"; "wall (s)"; "speedup"; "efficiency"; "bit-identical" ]
  in
  let reference = ref None in
  let t1 = ref Float.nan in
  let last_speedup = ref 1.0 in
  List.iter
    (fun d ->
      let engine = Cc_engine.create ~domains:d () in
      let time_one () =
        let t0 = Unix.gettimeofday () in
        let r = Cc_engine.with_engine engine workload in
        (Unix.gettimeofday () -. t0, r)
      in
      let dt_a, result = time_one () in
      let dt_b, _ = time_one () in
      Cc_engine.shutdown engine;
      let dt = Float.min dt_a dt_b in
      let identical =
        match !reference with
        | None ->
            reference := Some result;
            true
        | Some (m0, x0) ->
            let m, x = result in
            Mat.max_abs_diff m0 m = 0.0 && Mat.max_abs_diff x0 x = 0.0
      in
      if d = 1 then t1 := dt;
      let speedup = !t1 /. dt in
      if d = List.fold_left max 1 counts then last_speedup := speedup;
      let efficiency = speedup /. float_of_int d in
      Report.record ~id:"P1"
        ~params:[ ("domains", Report.int d); ("dim", Report.int dim) ]
        ~extra:
          [
            ("speedup", Report.flt speedup);
            ("efficiency", Report.flt efficiency);
            ("bit_identical", Cc_obs.Json.Bool identical);
          ]
        dt;
      if not identical then
        print_endline
          "DETERMINISM REGRESSION: parallel result differs from domains=1";
      Table.add_row table
        [
          Table.cell_int d;
          Table.cell_float ~decimals:3 dt;
          Table.cell_float ~decimals:2 speedup;
          Table.cell_float ~decimals:2 efficiency;
          (if identical then "yes" else "NO");
        ])
    counts;
  Report.set_speedup !last_speedup;
  Table.print table;
  print_endline
    "Expected shape: on a machine with >= 4 cores the 4-domain row reaches\n\
     >= 1.5x speedup; on fewer cores the extra domains only add dispatch\n\
     overhead (speedup ~= 1). The bit-identical column must always be yes —\n\
     parallelism changes the schedule, never the arithmetic."

(* ---------------------------------------------------------------- Q1 --- *)

(* Statistical-quality plane (lib/audit): how many samples each sampler needs
   before the online auditor's gates pass AND the exact-distribution TV drops
   under a fixed threshold — and, dually, how fast the deliberately biased
   negative fixture is rejected. Everything here is seeded, so the quality
   columns (cc-bench/4) are deterministic inputs to the ccprof baseline
   gate. *)

let q1 () =
  section "Q1" "audit plane: samples to statistical verdict per sampler";
  let batch = 25 in
  let max_trials = if !fast then 800 else 2400 in
  let tv_pass = 0.1 in
  let graphs = [ ("K4", Gen.complete 4); ("cycle6", Gen.cycle 6) ] in
  let samplers =
    [
      ("Wilson", fun _ prng g -> Cc_walks.Wilson.sample_tree g prng);
      ("Aldous-Broder", fun _ prng g -> Cc_walks.Aldous_broder.sample_tree g prng);
      ("Sequential", fun _ prng g -> Cc_sampler.Sequential.sample_tree g prng);
      ("CC sampler", fun net prng g -> (Sampler.sample net prng g).Sampler.tree);
    ]
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "samples until the audit verdict settles (batches of %d, budget \
            %d; pass additionally needs exact-distribution TV <= %.2f)"
           batch max_trials tv_pass)
      ~columns:
        [ "graph"; "sampler"; "samples"; "max|z|"; "TV(exact)"; "ESS"; "verdict" ]
  in
  let quality_of aud =
    Report.quality
      [
        ("tv", Audit.tv_edges aud);
        ("kl", Audit.kl_edges aud);
        ("max_z", Audit.max_z aud);
        ("ess", Audit.ess aud);
      ]
  in
  (* Drive [draw] in batches until [settled] holds or the budget runs out;
     returns the trial count at the decision point. *)
  let run_batches aud draw settled =
    let trials = ref 0 in
    let decided = ref false in
    while (not !decided) && !trials < max_trials do
      for _ = 1 to batch do
        Audit.observe aud (draw ())
      done;
      trials := !trials + batch;
      decided := settled aud !trials
    done;
    !trials
  in
  let row ~gname ~sname ~trials ~decided aud =
    let tv = match Audit.small_tv aud with Some tv -> tv | None -> Float.nan in
    Report.record ~id:"Q1"
      ~params:
        [
          ("graph", Report.str gname);
          ("sampler", Report.str sname);
          ("batch", Report.int batch);
        ]
      ~bound:(float_of_int max_trials)
      ~extra:[ quality_of aud ]
      (float_of_int trials);
    Table.add_row table
      [
        gname;
        sname;
        Table.cell_int trials;
        Table.cell_float ~decimals:2 (Audit.max_z aud);
        Table.cell_float ~decimals:4 tv;
        Table.cell_float ~decimals:0 (Audit.ess aud);
        decided;
      ]
  in
  List.iter
    (fun (gname, g) ->
      let n = Graph.n g in
      List.iter
        (fun (sname, sampler) ->
          let aud = Audit.create g in
          let prng = Prng.create ~seed:11 in
          let net = Net.create ~n in
          let trials =
            run_batches aud
              (fun () -> sampler net prng g)
              (fun aud trials ->
                trials >= 50
                && (Audit.verdict aud).Audit.pass
                && match Audit.small_tv aud with
                   | Some tv -> tv <= tv_pass
                   | None -> true)
          in
          Report.observe_net ~id:"Q1" net;
          let decided =
            if
              (Audit.verdict aud).Audit.pass
              && match Audit.small_tv aud with
                 | Some tv -> tv <= tv_pass
                 | None -> true
            then "pass"
            else "BUDGET"
          in
          row ~gname ~sname ~trials ~decided aud)
        samplers)
    graphs;
  (* Negative control: the biased Wilson fixture must be rejected well inside
     the same budget — this is the row that proves the gates have power. *)
  let g = Gen.cycle 6 in
  let aud = Audit.create g in
  let prng = Prng.create ~seed:11 in
  let trials =
    run_batches aud
      (fun () -> Cc_walks.Wilson.sample_biased g prng)
      (fun aud _ -> not (Audit.verdict aud).Audit.pass)
  in
  let decided =
    if not (Audit.verdict aud).Audit.pass then "REJECTED" else "missed!"
  in
  row ~gname:"cycle6" ~sname:"Wilson biased" ~trials ~decided aud;
  Table.print table;
  print_endline
    "Expected shape: every honest sampler passes within a few hundred\n\
     samples (samples/budget well under 1), while the biased fixture is\n\
     REJECTED almost immediately — the Bonferroni z-gate sees its ~p^4\n\
     marginal long before the exact-TV criterion would settle."

(* ---------------------------------------------------------------- S1 --- *)

(* Drives a real ccserve core over a real Unix-domain socket, in-process:
   the bench process plays both the server (cooperative [Serve.step]) and
   the clients (nonblocking fds writing Protocol request lines), so the
   measurement needs no forked binary and no sleeps.

   Cold and warm phases request the SAME seed list, so both draw identical
   walks (the prepare/draw determinism contract); the only difference is
   that cold requests hit a fresh server — paying [Sampler.prepare], the
   memo-cold Schur/shortcut compute, and server start/stop — while warm
   requests are plan-cache + memo hits that pay only the draw. Different
   seeds would make the walk-length variance swamp the cached compute. *)
let s1 () =
  section "S1" "ccserve: plan-cache throughput, cold vs warm, 1 vs 4 clients";
  let n = 32 in
  let g = Gen.build (Prng.create ~seed:1) Gen.Complete ~n in
  let sock_counter = ref 0 in
  let fresh_server () =
    incr sock_counter;
    let sock =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "cc-bench-s1-%d-%d.sock" (Unix.getpid ()) !sock_counter)
    in
    Serve.create { (Serve.default_config ~sock) with cache_cap = 4 }
  in
  let shutdown srv =
    Serve.request_stop srv;
    while Serve.step srv do () done
  in
  (* Connect [clients] sockets, send one k=1 request per element of [seeds]
     on each, and pump [Serve.step] against nonblocking reads until every
     done line has arrived. Any server-side error fails the experiment. *)
  let run_requests srv ~clients ~seeds =
    let per_client = List.length seeds in
    let fds =
      List.init clients (fun _ ->
          let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          Unix.connect fd (Unix.ADDR_UNIX (Serve.sock_path srv));
          Unix.set_nonblock fd;
          (fd, Buffer.create 4096))
    in
    List.iter
      (fun (fd, _) ->
        let buf = Buffer.create 4096 in
        List.iter
          (fun seed ->
            Buffer.add_string buf
              (Serve_protocol.request_line ~graph:g ~k:1 ~seed
                 ~meth:Serve_protocol.Cc ()))
          seeds;
        let s = Buffer.contents buf in
        let off = ref 0 in
        while !off < String.length s do
          match Unix.write_substring fd s !off (String.length s - !off) with
          | w -> off := !off + w
          | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
              ignore (Serve.step srv)
        done)
      fds;
    let target = clients * per_client in
    let done_seen = ref 0 in
    let chunk = Bytes.create 65536 in
    let steps = ref 0 in
    while !done_seen < target do
      incr steps;
      if !steps > 5_000_000 then failwith "S1: server stalled";
      ignore (Serve.step srv);
      List.iter
        (fun (fd, rbuf) ->
          (try
             let reading = ref true in
             while !reading do
               match Unix.read fd chunk 0 (Bytes.length chunk) with
               | 0 -> reading := false
               | len -> Buffer.add_subbytes rbuf chunk 0 len
             done
           with Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ());
          let s = Buffer.contents rbuf in
          match String.rindex_opt s '\n' with
          | None -> ()
          | Some last ->
              Buffer.clear rbuf;
              Buffer.add_substring rbuf s (last + 1)
                (String.length s - last - 1);
              String.split_on_char '\n' (String.sub s 0 last)
              |> List.iter (fun line ->
                     if line <> "" then
                       match Serve_protocol.parse_response line with
                       | Ok (Serve_protocol.Done _) -> incr done_seen
                       | Ok (Serve_protocol.Tree _) -> ()
                       | Ok (Serve_protocol.Error e) ->
                           failwith ("S1: server error: " ^ e.message)
                       | Error msg -> failwith ("S1: bad response: " ^ msg)))
        fds
    done;
    List.iter (fun (fd, _) -> Unix.close fd) fds
  in
  let reps = if !fast then 3 else 5 in
  let seeds = List.init reps (fun i -> 1 + i) in
  (* cold: fresh server (empty plan cache, cold memo) for every request *)
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun s ->
      let srv = fresh_server () in
      run_requests srv ~clients:1 ~seeds:[ s ];
      shutdown srv)
    seeds;
  let cold_wall = Unix.gettimeofday () -. t0 in
  let cold_tps = float_of_int reps /. cold_wall in
  (* warm: prime with one pass over the same seeds, then measure a second
     pass — identical walks, but every request is a cache + memo hit *)
  let warm ~clients =
    let srv = fresh_server () in
    run_requests srv ~clients:1 ~seeds;
    let t0 = Unix.gettimeofday () in
    run_requests srv ~clients ~seeds;
    let wall = Unix.gettimeofday () -. t0 in
    let hits, misses, _ = Serve.cache_stats srv in
    shutdown srv;
    (float_of_int (clients * reps) /. wall, wall, hits, misses)
  in
  let warm1_tps, warm1_wall, h1, m1 = warm ~clients:1 in
  let warm4_tps, warm4_wall, h4, m4 = warm ~clients:4 in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "complete graph n=%d, k=1 per request, served over a Unix socket" n)
      ~columns:
        [ "phase"; "clients"; "requests"; "wall (s)"; "trees/s"; "hit/miss" ]
  in
  let row ~phase ~clients ~requests ~wall ~hits ~misses tps =
    Report.record ~id:"S1"
      ~params:
        [
          ("phase", Report.str phase);
          ("clients", Report.int clients);
          ("n", Report.int n);
          ("requests", Report.int requests);
        ]
      ~extra:
        [
          ("wall_s", Report.flt wall);
          ("cache_hits", Report.int hits);
          ("cache_misses", Report.int misses);
        ]
      tps;
    Table.add_row table
      [
        phase;
        Table.cell_int clients;
        Table.cell_int requests;
        Table.cell_float ~decimals:3 wall;
        Table.cell_float ~decimals:1 tps;
        Printf.sprintf "%d/%d" hits misses;
      ]
  in
  row ~phase:"cold" ~clients:1 ~requests:reps ~wall:cold_wall ~hits:0
    ~misses:reps cold_tps;
  row ~phase:"warm" ~clients:1 ~requests:reps ~wall:warm1_wall ~hits:h1
    ~misses:m1 warm1_tps;
  row ~phase:"warm" ~clients:4 ~requests:(4 * reps) ~wall:warm4_wall ~hits:h4
    ~misses:m4 warm4_tps;
  (* hardware-independent gate row for ccprof diff: 1.0 iff warm beat cold *)
  Report.record ~id:"S1"
    ~params:[ ("phase", Report.str "gate"); ("n", Report.int n) ]
    ~bound:1.0
    ~extra:[ ("speedup", Report.flt (warm1_tps /. cold_tps)) ]
    (if warm1_tps > cold_tps then 1.0 else 0.0);
  Table.print table;
  Printf.printf "warm/cold speedup (1 client): %.1fx\n" (warm1_tps /. cold_tps);
  if warm1_tps <= cold_tps then
    failwith
      "S1 REGRESSION: warm-cache throughput did not beat cold — plan reuse \
       is no longer skipping preparation";
  print_endline
    "Expected shape: warm requests reuse the cached factorization and only\n\
     pay the draw, so warm trees/s sits well above cold (which pays\n\
     Sampler.prepare per request); 4 concurrent clients see round-robin\n\
     fairness, not a 4x collapse."

(* ------------------------------------------------- bechamel microbench --- *)

let microbench () =
  section "MICRO" "bechamel microbenchmarks of the core kernels";
  let open Bechamel in
  let prng = Prng.create ~seed:12 in
  let m64 =
    Mat.normalize_rows
      (Mat.init ~rows:64 ~cols:64 (fun _ _ -> Prng.float prng 1.0 +. 0.01))
  in
  let g32 = Gen.lollipop ~clique:16 ~tail:16 in
  let er32 = Gen.erdos_renyi_connected prng ~n:32 ~p:0.3 in
  let weights10 =
    Array.init 10 (fun _ -> Array.init 10 (fun _ -> 0.1 +. Prng.float prng 1.0))
  in
  let tests =
    [
      Test.make ~name:"mat-mul-64" (Staged.stage (fun () -> ignore (Mat.mul m64 m64)));
      Test.make ~name:"lu-inverse-64"
        (Staged.stage (fun () -> ignore (Cc_linalg.Solve.inverse m64)));
      Test.make ~name:"ryser-permanent-10"
        (Staged.stage (fun () -> ignore (Cc_matching.Permanent.ryser weights10)));
      Test.make ~name:"matching-exact-8"
        (Staged.stage (fun () ->
             ignore
               (Cc_matching.Sampler.exact prng
                  (Array.init 8 (fun _ -> Array.init 8 (fun _ -> 0.1 +. Prng.float prng 1.0))))));
      Test.make ~name:"aldous-broder-lollipop-32"
        (Staged.stage (fun () -> ignore (Cc_walks.Aldous_broder.sample_tree g32 prng)));
      Test.make ~name:"wilson-lollipop-32"
        (Staged.stage (fun () -> ignore (Cc_walks.Wilson.sample_tree g32 prng)));
      Test.make ~name:"cc-sampler-lollipop-32"
        (Staged.stage (fun () ->
             let net = Net.create ~n:32 in
             ignore (Sampler.sample net prng g32)));
      Test.make ~name:"doubling-tau256-er-32"
        (Staged.stage (fun () ->
             let net = Net.create ~n:32 in
             ignore
               (Doubling.run net prng er32 ~tau:256
                  ~scheme:(Doubling.default_scheme ~n:32))));
      Test.make ~name:"schur-exact-er-32"
        (Staged.stage (fun () ->
             ignore (Schur.transition_exact er32 ~s:(Array.init 16 (fun i -> 2 * i)))));
    ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 10) () in
  let table =
    Table.create ~title:"wall-clock per call (OLS estimate)"
      ~columns:[ "kernel"; "time" ]
  in
  List.iter
    (fun test ->
      List.iter
        (fun (name, raw) ->
          let est = Analyze.one ols instance raw in
          let nanos =
            match Analyze.OLS.estimates est with
            | Some [ e ] -> e
            | _ -> Float.nan
          in
          let cell =
            if Float.is_nan nanos then "n/a"
            else if nanos > 1e9 then Printf.sprintf "%.2f s" (nanos /. 1e9)
            else if nanos > 1e6 then Printf.sprintf "%.2f ms" (nanos /. 1e6)
            else if nanos > 1e3 then Printf.sprintf "%.2f us" (nanos /. 1e3)
            else Printf.sprintf "%.0f ns" nanos
          in
          Report.record ~id:"MICRO"
            ~params:[ ("kernel", Report.str name) ]
            nanos;
          Table.add_row table [ name; cell ])
        (Hashtbl.fold (fun k v acc -> (k, v) :: acc) (Benchmark.all cfg [ instance ] test) []))
    (List.map (fun t -> Test.make_grouped ~name:"k" [ t ]) tests);
  Table.print table

(* ------------------------------------------------------------- driver --- *)

let () =
  (* Must run before argv parsing: the mpproc transport of F3 re-execs this
     binary as a shard worker. *)
  Cc_transport.Worker.maybe_run_as_worker ();
  let rec parse = function
    | [] -> ()
    | "--fast" :: rest ->
        fast := true;
        parse rest
    | "--micro" :: rest ->
        micro := true;
        parse rest
    | "-e" :: id :: rest ->
        selected := String.uppercase_ascii id :: !selected;
        parse rest
    | "--json" :: file :: rest ->
        Report.enable file;
        parse rest
    | "--domains" :: v :: rest ->
        (match Cc_engine.parse_domains v with
        | Ok d -> Cc_engine.set_default (Cc_engine.create ~domains:d ())
        | Error msg -> failwith ("--domains: " ^ msg));
        parse rest
    | arg :: _ -> failwith ("unknown argument: " ^ arg)
  in
  parse (List.tl (Array.to_list Sys.argv));
  Printf.printf
    "Congested Clique spanning-tree sampling — benchmark harness\n\
     (paper: Pemmaraju, Roy, Sobel, PODC 2025; see EXPERIMENTS.md)\n";
  let run_exp id f =
    if wants id then begin
      let t0 = Unix.gettimeofday () in
      f ();
      Report.finish_experiment ~id ~wall_s:(Unix.gettimeofday () -. t0)
    end
  in
  run_exp "E1" e1;
  run_exp "E2" e2;
  run_exp "E3" e3;
  run_exp "E4" e4;
  run_exp "E5" e5;
  run_exp "E6" e6;
  run_exp "E7" e7;
  run_exp "E8" e8;
  run_exp "E9" e9;
  run_exp "E10" e10;
  run_exp "E11" e11;
  run_exp "F1" f1;
  run_exp "F2" f2;
  run_exp "F3" f3;
  run_exp "D1" d1;
  run_exp "A1" a1;
  run_exp "A2" a2;
  run_exp "A3" a3;
  run_exp "A4" a4;
  run_exp "P1" p1;
  run_exp "Q1" q1;
  run_exp "S1" s1;
  if !micro || List.mem "MICRO" !selected then begin
    let t0 = Unix.gettimeofday () in
    microbench ();
    Report.finish_experiment ~id:"MICRO"
      ~wall_s:(Unix.gettimeofday () -. t0)
  end;
  Report.write ~fast:!fast
