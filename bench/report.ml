(* Machine-readable mirror of the benchmark tables.

   When the harness runs with [--json FILE], every experiment appends
   records here — one per table row, each carrying the experiment id, the
   row's parameters, the measured value, the paper bound it is compared
   against (when one exists), and their ratio — and the driver stamps each
   experiment with its wall-clock time. Without [--json] every call is a
   no-op, so the printed tables are byte-identical either way.

   Schema cc-bench/3 adds a top-level [engine] object: the domain count the
   run executed with plus the strong-scaling speedup measured by P1 (null
   when P1 did not run). Wall-clock rows carry no [bound], so they never
   produce ratios and the ccprof diff gate stays hardware-independent.

   Schema cc-bench/4 adds per-record statistical-quality columns: rows may
   carry a flat numeric "quality" object (audit-plane TV / KL / max-z / ESS,
   written by Q1 via [quality]) that Benchdata aggregates and ccprof summary
   renders. *)

module Json = Cc_obs.Json

let path : string option ref = ref None
let enable p = path := Some p
let enabled () = !path <> None

(* (id, title, wall seconds) in run order; records in reverse order. *)
let experiments : (string * string * float) list ref = ref []
let titles : (string, string) Hashtbl.t = Hashtbl.create 16
let records : Json.t list ref = ref []

(* Measured strong-scaling speedup at the largest domain count (set by the
   P1 experiment); written into the cc-bench/3 [engine] object. *)
let speedup : float option ref = ref None
let set_speedup s = speedup := Some s

(* id -> (max per-primitive machine load, worst imbalance) over every net the
   experiment showed us via [observe_net]. *)
let loads : (string, int * float) Hashtbl.t = Hashtbl.create 16

(* [reset] clears all accumulated rows so a second [write] in the same
   process starts from a clean slate instead of duplicating them. *)
let reset () =
  experiments := [];
  records := [];
  speedup := None;
  Hashtbl.reset titles;
  Hashtbl.reset loads

let set_title ~id ~title = Hashtbl.replace titles id title

(* [observe_net ~id net] folds a finished net's load profile into the
   experiment's cc-bench/2 fields. Experiments call it once per net they
   build; a no-op without [--json]. *)
let observe_net ~id net =
  if enabled () then begin
    let p = Cc_clique.Net.load_profile net in
    let prev_load, prev_imb =
      Option.value ~default:(0, 0.0) (Hashtbl.find_opt loads id)
    in
    Hashtbl.replace loads id
      ( max prev_load p.Cc_clique.Net.max_load,
        Float.max prev_imb p.Cc_clique.Net.imbalance )
  end

let finish_experiment ~id ~wall_s =
  if enabled () then
    let title = Option.value ~default:"" (Hashtbl.find_opt titles id) in
    experiments := (id, title, wall_s) :: !experiments

(* [record ~id ~params ?bound ?extra measured] appends one data point.
   [params] are (name, value) pairs identifying the row; [extra] carries
   auxiliary measurements (counters, secondary errors) verbatim. *)
let record ~id ~params ?bound ?(extra = []) measured =
  if enabled () then begin
    let base =
      [
        ("experiment", Json.String id);
        ("params", Json.Obj params);
        ("measured", Json.float_opt measured);
      ]
    in
    let bound_fields =
      match bound with
      | None -> []
      | Some b ->
          [
            ("bound", Json.float_opt b);
            ( "ratio",
              if b = 0.0 then Json.Null else Json.float_opt (measured /. b) );
          ]
    in
    records := Json.Obj (base @ bound_fields @ extra) :: !records
  end

let str s = Json.String s
let int i = Json.Int i
let flt x = Json.float_opt x

(* [quality kvs] packages audit-plane measurements as the cc-bench/4
   "quality" extra for [record]: [~extra:[quality [("tv", tv); ...]]]. *)
let quality kvs =
  ("quality", Json.Obj (List.map (fun (k, x) -> (k, Json.float_opt x)) kvs))

(* Every [--json] run also appends one env-fingerprinted line to the bench
   trajectory (default bench/HISTORY/history.jsonl, overridable or disabled
   — set to empty — via CC_BENCH_HISTORY): timestamp, host, OCaml version,
   domain count, transport, and per-experiment wall plus mean paper-bound
   ratio. [ccprof history] renders the trends. Strictly best-effort: an
   unwritable path never fails the bench run. *)
let append_history ~fast =
  let file =
    match Sys.getenv_opt "CC_BENCH_HISTORY" with
    | Some "" -> None
    | Some p -> Some p
    | None -> Some (Filename.concat "bench/HISTORY" "history.jsonl")
  in
  match file with
  | None -> ()
  | Some file -> (
      let ratios : (string, float * int) Hashtbl.t = Hashtbl.create 8 in
      List.iter
        (fun r ->
          match r with
          | Json.Obj fields -> (
              match
                ( List.assoc_opt "experiment" fields,
                  List.assoc_opt "ratio" fields )
              with
              | Some (Json.String id), Some (Json.Float x) ->
                  let s, n =
                    Option.value ~default:(0.0, 0)
                      (Hashtbl.find_opt ratios id)
                  in
                  Hashtbl.replace ratios id (s +. x, n + 1)
              | _ -> ())
          | _ -> ())
        !records;
      let line =
        Json.Obj
          [
            ("ts", flt (Unix.gettimeofday ()));
            ( "host",
              str (try Unix.gethostname () with Unix.Unix_error _ -> "?") );
            ("ocaml", str Sys.ocaml_version);
            ("domains", int (Cc_engine.domains (Cc_engine.get ())));
            ( "transport",
              str
                (match Sys.getenv_opt "CC_TRANSPORT" with
                | Some s when s <> "" -> s
                | _ -> "inproc") );
            ("fast", Json.Bool fast);
            ( "experiments",
              Json.List
                (List.rev_map
                   (fun (id, _title, wall_s) ->
                     Json.Obj
                       ([ ("id", str id); ("wall_s", flt wall_s) ]
                       @
                       match Hashtbl.find_opt ratios id with
                       | Some (s, n) when n > 0 ->
                           [ ("mean_ratio", flt (s /. float_of_int n)) ]
                       | _ -> []))
                   !experiments) );
          ]
      in
      try
        let dir = Filename.dirname file in
        (if dir <> "." && not (Sys.file_exists dir) then
           try Unix.mkdir dir 0o755 with Unix.Unix_error _ -> ());
        let oc = open_out_gen [ Open_append; Open_creat ] 0o644 file in
        output_string oc (Json.to_string line);
        output_char oc '\n';
        close_out oc
      with Sys_error _ | Unix.Unix_error _ -> ())

let write ~fast =
  match !path with
  | None -> ()
  | Some file ->
      let doc =
        Json.Obj
          [
            ("schema", Json.String "cc-bench/4");
            ("fast", Json.Bool fast);
            ( "engine",
              Json.Obj
                [
                  ( "domains",
                    Json.Int (Cc_engine.domains (Cc_engine.get ())) );
                  ( "speedup",
                    match !speedup with
                    | None -> Json.Null
                    | Some s -> Json.float_opt s );
                ] );
            ( "experiments",
              Json.List
                (List.rev_map
                   (fun (id, title, wall_s) ->
                     let load_fields =
                       match Hashtbl.find_opt loads id with
                       | None -> []
                       | Some (max_load, imbalance) ->
                           [
                             ("max_load", Json.Int max_load);
                             ("imbalance", Json.float_opt imbalance);
                           ]
                     in
                     Json.Obj
                       ([
                          ("id", Json.String id);
                          ("title", Json.String title);
                          ("wall_s", Json.float_opt wall_s);
                        ]
                       @ load_fields))
                   !experiments) );
            ("records", Json.List (List.rev !records));
            ("metrics", Cc_obs.Metrics.to_json ());
          ]
      in
      let oc = open_out file in
      output_string oc (Json.to_string_pretty doc);
      output_char oc '\n';
      close_out oc;
      append_history ~fast;
      reset ()
