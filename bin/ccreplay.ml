(* ccreplay — record, validate, diff, and visualize Net flight-recorder
   logs (see Cc_obs.Recorder / Cc_obs.Invariant and DESIGN.md §9):

     record -o FILE        run a seeded workload with the recorder and the
                           invariant monitor attached; write the JSONL log
     check FILE            reload a log, verify its digest chain, re-run
                           the online invariant checkers
     diff A B              compare two logs to the first divergent event
     timeline FILE         ASCII per-round timeline of a recorded run

   Exit codes match ccprof: 0 ok; 1 divergence / failed validation;
   2 unreadable or malformed input. *)

module Graph = Cc_graph.Graph
module Gen = Cc_graph.Gen
module Net = Cc_clique.Net
module Fault = Cc_clique.Fault
module Prng = Cc_util.Prng
module Sampler = Cc_sampler.Sampler
module Doubling = Cc_doubling.Doubling
module Recorder = Cc_obs.Recorder
module Invariant = Cc_obs.Invariant
module Transport = Cc_transport.Transport
open Cmdliner

let exit_divergence = 1
let exit_bad_input = 2

let fail_usage msg =
  prerr_endline ("ccreplay: " ^ msg);
  exit exit_bad_input

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg ->
      Printf.eprintf "ccreplay: %s\n" msg;
      exit exit_bad_input
  | s -> s

let load path =
  match Recorder.of_jsonl (read_file path) with
  | Ok l -> l
  | Error msg ->
      Printf.eprintf "ccreplay: %s: %s\n" path msg;
      exit exit_bad_input

let print_violations vs =
  List.iter
    (fun v -> Format.printf "  %a@." Invariant.pp_violation v)
    vs

(* --- record --- *)

let record_cmd =
  let algo_t =
    let doc = "Workload: sample (Theorem 2 sampler) or doubling." in
    Arg.(value & opt string "sample" & info [ "algo" ] ~doc)
  in
  let family_t =
    let doc = "Graph family (as in cctree -f)." in
    Arg.(value & opt string "lollipop" & info [ "f"; "family" ] ~doc)
  in
  let size_t =
    Arg.(
      value & opt int 32
      & info [ "n"; "size" ] ~doc:"Number of vertices for the family.")
  in
  let seed_t =
    let doc = "PRNG seed (the log is deterministic given the seed)." in
    Arg.(value & opt int 1 & info [ "seed" ] ~doc)
  in
  let drop_t =
    let doc = "Per-message drop probability in [0, 1) (fault injection)." in
    Arg.(value & opt float 0.0 & info [ "drop-prob" ] ~doc ~docv:"P")
  in
  let fault_seed_t =
    Arg.(value & opt int 0 & info [ "fault-seed" ] ~doc:"Fault-schedule seed.")
  in
  let out_t =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~doc:"Write the recorder JSONL to $(docv)."
          ~docv:"FILE")
  in
  let domains_t =
    let doc =
      "Number of OCaml domains for local computation. The recorded log and \
       its digest are bit-identical for any value — that is the property \
       the determinism CI job checks with $(b,ccreplay diff)."
    in
    let install spec =
      let chosen =
        match spec with
        | Some s -> (
            match Cc_engine.parse_domains s with
            | Ok d -> Some d
            | Error e -> fail_usage ("--domains: " ^ e))
        | None -> (
            match Sys.getenv_opt Cc_engine.env_var with
            | None -> None
            | Some s -> (
                match Cc_engine.parse_domains s with
                | Ok _ -> None
                | Error e -> fail_usage (Cc_engine.env_var ^ ": " ^ e)))
      in
      match chosen with
      | None -> ()
      | Some d ->
          let e = Cc_engine.create ~domains:d () in
          Cc_engine.set_default e;
          at_exit (fun () -> Cc_engine.shutdown e)
    in
    Term.(
      const install
      $ Arg.(
          value & opt (some string) None & info [ "domains" ] ~doc ~docv:"N"))
  in
  let transport_t =
    let doc =
      "Execution transport for the recorded run: $(b,inproc) or \
       $(b,mpproc). The recorded log and its digest are bit-identical on \
       both — that is the cross-transport determinism contract the CI job \
       checks with $(b,ccreplay diff)."
    in
    let resolve spec =
      match spec with
      | Some s -> (
          match Transport.kind_of_string s with
          | Ok k -> k
          | Error e -> fail_usage ("--transport: " ^ e))
      | None -> (
          match Transport.kind_from_env () with
          | Ok (Some k) -> k
          | Ok None -> Transport.Inproc
          | Error e -> fail_usage e)
    in
    Term.(
      const resolve
      $ Arg.(
          value & opt (some string) None & info [ "transport" ] ~doc ~docv:"T"))
  in
  let no_telemetry_t =
    let doc =
      "Disable worker telemetry on the mpproc transport. The recorded log \
       and its digest are bit-identical with telemetry on and off — the \
       zero-perturbation contract CI checks with $(b,ccreplay diff)."
    in
    Arg.(value & flag & info [ "no-telemetry" ] ~doc)
  in
  let health_log_t =
    let doc =
      "Write the transport's supervision-event journal as JSON lines to \
       $(docv) after the run (empty on inproc) — readable by \
       $(b,ccprof events)."
    in
    Arg.(
      value & opt (some string) None & info [ "health-log" ] ~doc ~docv:"FILE")
  in
  let trace_out_t =
    let doc =
      "Write the distributed trace artifact (JSON lines, readable by \
       $(b,ccprof timeline) and $(b,ccprof critical-path)) to $(docv). \
       Installs a trace collector and wraps the recorded run — transport \
       shutdown included — in a root $(i,run) span; on mpproc with \
       telemetry on, worker span trees merge in as per-shard process \
       lanes. The recorded log and its digest are bit-identical with and \
       without it — the zero-perturbation contract CI enforces."
    in
    Arg.(
      value & opt (some string) None & info [ "trace-out" ] ~doc ~docv:"FILE")
  in
  let audit_t =
    let doc =
      "Attach the statistical auditor to the recorded workload and write \
       the JSONL audit artifact to $(docv) (readable by $(b,ccprof audit)); \
       the verdict summary goes to stderr. Zero-perturbation: the recorded \
       log and its digest are byte-identical with and without this flag — \
       part of the contract CI checks with $(b,ccreplay diff)."
    in
    Arg.(value & opt (some string) None & info [ "audit" ] ~doc ~docv:"FILE")
  in
  let run () algo family size seed drop_prob fault_seed out transport
      no_telemetry health_log trace_out audit =
    let prng = Prng.create ~seed in
    let g =
      match Gen.family_of_string family with
      | fam -> Gen.build prng fam ~n:size
      | exception _ ->
          Printf.eprintf "ccreplay: unknown graph family %S\n" family;
          exit exit_bad_input
    in
    let n = Graph.n g in
    let net = Net.create ~n in
    let net =
      if drop_prob > 0.0 then
        Net.with_faults
          (Fault.create (Fault.spec ~drop_prob ~seed:fault_seed ()))
          net
      else net
    in
    let recorder = Recorder.create ~machines:n () in
    let inv = Invariant.create ~machines:n () in
    ignore (Net.attach_recorder net recorder);
    ignore (Net.attach_invariant net inv);
    (* The distributed-trace collector must be live before the transport
       spawns: span-id bases ride in the workers' Hello frames. The root
       [run] span is closed only after shutdown's final flush, so the
       artifact's critical path tiles the whole recorded run. *)
    let tracer =
      match trace_out with
      | None -> None
      | Some _ ->
          let t = Cc_obs.Trace.create () in
          Cc_obs.Trace.install t;
          Cc_obs.Trace.open_span t "run";
          Some t
    in
    let tr =
      match transport with
      | Transport.Inproc -> None
      | Transport.Mpproc ->
          let config =
            {
              Cc_transport.Supervisor.default_config with
              telemetry = not no_telemetry;
            }
          in
          let tr = Transport.mpproc ~config ~machines:n () in
          Net.set_transport net tr;
          Some tr
    in
    let auditor =
      match audit with
      | None -> None
      | Some path ->
          let a = Cc_audit.Audit.create g in
          Cc_audit.Audit.install a;
          Some (path, a)
    in
    (match String.lowercase_ascii algo with
    | "sample" -> ignore (Sampler.sample net prng g)
    | "doubling" ->
        ignore (Doubling.sample_tree net prng g ~tau0:n)
    | a ->
        Printf.eprintf "ccreplay: unknown workload %S\n" a;
        exit exit_bad_input);
    (* The audit trailer goes to stderr for the same reason the transport
       trailer does: stdout and the log must stay byte-identical. *)
    (match auditor with
    | None -> ()
    | Some (path, a) ->
        Cc_audit.Audit.uninstall ();
        let oc = open_out path in
        output_string oc (Cc_audit.Audit.to_jsonl a);
        close_out oc;
        let v = Cc_audit.Audit.verdict a in
        Printf.eprintf "# audit: %s after %d tree(s) -> %s\n"
          (if v.Cc_audit.Audit.pass then "PASS" else "FAIL")
          v.Cc_audit.Audit.at_trials path);
    (* Transport health and the journal trailer go to stderr: stdout (and
       the log itself) must be byte-identical across transports. *)
    (match tr with
    | None -> ()
    | Some tr ->
        tr.Transport.sync ();
        Printf.eprintf "# transport: %s (%s)\n" tr.Transport.name
          (Transport.health_summary (tr.Transport.health ()));
        tr.Transport.shutdown ();
        match tr.Transport.journal () with
        | None -> ()
        | Some j ->
            let module J = Cc_obs.Journal in
            Printf.eprintf
              "# journal: %d event(s)%s, %s\n" (J.length j)
              (if J.dropped j > 0 then
                 Printf.sprintf " (+%d dropped)" (J.dropped j)
               else "")
              (if J.is_clean j then "clean (worker start/stop only)"
               else "recovery events present");
            (match health_log with
            | None -> ()
            | Some path ->
                let oc = open_out path in
                output_string oc (J.to_jsonl j);
                close_out oc));
    (match (tr, health_log) with
    | None, Some path ->
        (* Inproc: no supervision happens; write the file empty so scripted
           pipelines need not special-case the transport. *)
        close_out (open_out path)
    | _ -> ());
    (match (tracer, trace_out) with
    | Some t, Some path ->
        Cc_obs.Trace.close_span t;
        Cc_obs.Trace.uninstall ();
        let oc = open_out path in
        output_string oc (Cc_obs.Trace.to_jsonl t);
        close_out oc
    | _ -> ());
    let lv = Net.ledger_violations net inv in
    let oc = open_out out in
    output_string oc (Recorder.to_jsonl recorder);
    close_out oc;
    Printf.printf "%s: %d events, %.0f rounds, digest %s\n" out
      (Recorder.total recorder) (Net.rounds net)
      (Recorder.digest_hex recorder);
    let vs = Invariant.violations inv @ lv in
    if vs <> [] then begin
      Printf.printf "%d invariant violation(s):\n" (List.length vs);
      print_violations vs;
      exit exit_divergence
    end
  in
  let info =
    Cmd.info "record"
      ~doc:
        "Run a seeded workload with the flight recorder and invariant \
         monitor attached; write the event log as JSON lines."
  in
  Cmd.v info
    Term.(
      const run $ domains_t $ algo_t $ family_t $ size_t $ seed_t $ drop_t
      $ fault_seed_t $ out_t $ transport_t $ no_telemetry_t $ health_log_t
      $ trace_out_t $ audit_t)

(* --- check --- *)

let check_cmd =
  let file_t =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")
  in
  let run file =
    let l = load file in
    let failures = ref 0 in
    (match Recorder.verify l with
    | Ok digest -> Printf.printf "%s: digest %s verified\n" file digest
    | Error msg ->
        Printf.printf "%s: %s\n" file msg;
        incr failures);
    let records = Recorder.records l.Recorder.log in
    (match
       Invariant.check_log ~machines:(Recorder.machines l.Recorder.log) records
     with
    | [] ->
        Printf.printf "%s: %d records, no invariant violations\n" file
          (List.length records)
    | vs ->
        Printf.printf "%s: %d invariant violation(s):\n" file (List.length vs);
        print_violations vs;
        failures := !failures + List.length vs);
    if !failures > 0 then exit exit_divergence
  in
  let info =
    Cmd.info "check"
      ~doc:
        "Validate a saved log: re-fold the digest chain against the trailer \
         and re-run the online invariant checkers."
  in
  Cmd.v info Term.(const run $ file_t)

(* --- diff --- *)

let diff_cmd =
  let a_t = Arg.(required & pos 0 (some file) None & info [] ~docv:"A") in
  let b_t = Arg.(required & pos 1 (some file) None & info [] ~docv:"B") in
  let run a_file b_file =
    let a = (load a_file).Recorder.log and b = (load b_file).Recorder.log in
    match Recorder.diff a b with
    | None ->
        Printf.printf "identical: %d records, digest %s\n" (Recorder.total a)
          (Recorder.digest_hex a)
    | Some d ->
        if d.Recorder.seq < 0 then
          Printf.printf "header divergence: %s = %s vs %s\n" d.Recorder.field
            d.Recorder.a d.Recorder.b
        else
          Printf.printf
            "first divergent event: seq %d, field %s: %s vs %s\n"
            d.Recorder.seq d.Recorder.field d.Recorder.a d.Recorder.b;
        exit exit_divergence
  in
  let info =
    Cmd.info "diff"
      ~doc:
        "Compare two recorded logs event by event; exit 1 naming the first \
         divergent event."
  in
  Cmd.v info Term.(const run $ a_t $ b_t)

(* --- timeline --- *)

let timeline_cmd =
  let file_t =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")
  in
  let width_t =
    Arg.(
      value & opt int 64
      & info [ "width" ] ~doc:"Buckets across the run's round interval.")
  in
  let run file width =
    let l = load file in
    print_string (Recorder.timeline ~width l.Recorder.log)
  in
  let info =
    Cmd.info "timeline"
      ~doc:
        "Render an ASCII per-round timeline of a recorded run: one lane per \
         ledger label, bucketed over the round clock."
  in
  Cmd.v info Term.(const run $ file_t $ width_t)

let main =
  let doc = "Record, validate, diff, and visualize Net flight-recorder logs." in
  let info = Cmd.info "ccreplay" ~version:"1.0.0" ~doc in
  Cmd.group info [ record_cmd; check_cmd; diff_cmd; timeline_cmd ]

let () =
  (* Worker entrypoint first: when re-exec'd by the Mpproc supervisor this
     process is a shard worker, not a CLI. *)
  Cc_transport.Worker.maybe_run_as_worker ();
  exit (Cmd.eval main)
