(* ccserve — sampling-as-a-service daemon.

   Serves spanning-tree sampling over a Unix-domain socket speaking the
   newline-delimited JSON protocol of Cc_serve.Protocol: clients submit
   {"graph": ..., "k": N, "seed": s, "method": ...} lines and stream back
   tree responses. Prepared plans (the graph-only half of the sampler
   pipeline) are cached by canonical graph fingerprint, so repeated
   requests for the same graph skip preprocessing and pay only the walk +
   matching phases. [cctree sample --connect SOCK] is the bundled client. *)

module Net = Cc_clique.Net
module Transport = Cc_transport.Transport
module Server = Cc_serve.Server
open Cmdliner

let setup_logs verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (if verbose then Some Logs.Debug else Some Logs.Warning)

let exit_usage = 2

let fail_usage msg =
  prerr_endline ("ccserve: " ^ msg);
  exit exit_usage

let domains_t =
  let doc =
    "Number of OCaml domains for local per-machine computation. Defaults to \
     $(b,CC_DOMAINS) when set, else the runtime's recommended domain count. \
     Responses are bit-identical for any value."
  in
  let install spec =
    let chosen =
      match spec with
      | Some s -> (
          match Cc_engine.parse_domains s with
          | Ok d -> Some d
          | Error e -> fail_usage ("--domains: " ^ e))
      | None -> (
          match Sys.getenv_opt Cc_engine.env_var with
          | None -> None
          | Some s -> (
              match Cc_engine.parse_domains s with
              | Ok _ -> None
              | Error e -> fail_usage (Cc_engine.env_var ^ ": " ^ e)))
    in
    match chosen with
    | None -> ()
    | Some d ->
        let e = Cc_engine.create ~domains:d () in
        Cc_engine.set_default e;
        at_exit (fun () -> Cc_engine.shutdown e)
  in
  Term.(
    const install
    $ Arg.(value & opt (some string) None & info [ "domains" ] ~doc ~docv:"N"))

let transport_kind_t =
  let doc =
    "Execution transport for each request's clique: $(b,inproc) \
     (single-process simulator) or $(b,mpproc) (supervised OS worker \
     processes, spawned per request). Defaults to $(b,CC_TRANSPORT) when \
     set, else inproc. Recorder digests are identical on both."
  in
  let resolve spec =
    match spec with
    | Some s -> (
        match Transport.kind_of_string s with
        | Ok k -> k
        | Error e -> fail_usage ("--transport: " ^ e))
    | None -> (
        match Transport.kind_from_env () with
        | Ok (Some k) -> k
        | Ok None -> Transport.Inproc
        | Error e -> fail_usage e)
  in
  Term.(
    const resolve
    $ Arg.(
        value & opt (some string) None & info [ "transport" ] ~doc ~docv:"T"))

let sock_t =
  let doc = "Unix-domain socket path to serve on." in
  Arg.(
    value
    & opt string "/tmp/ccserve.sock"
    & info [ "sock" ] ~doc ~docv:"PATH")

let cache_cap_t =
  let doc = "Plan-cache capacity (prepared graphs retained, LRU)." in
  Arg.(value & opt int 8 & info [ "cache-cap" ] ~doc ~docv:"N")

let max_requests_t =
  let doc =
    "Drain and exit after $(docv) completed requests (tests and CI; the \
     default is to serve until SIGTERM/SIGINT)."
  in
  Arg.(value & opt (some int) None & info [ "max-requests" ] ~doc ~docv:"N")

let metrics_json_t =
  let doc =
    "Write the metrics registry (server.requests, server.cache.*, queue \
     depth, request latency histogram) as JSON to $(docv) at exit — \
     readable by $(b,ccprof summary)."
  in
  Arg.(
    value & opt (some string) None & info [ "metrics-json" ] ~doc ~docv:"FILE")

let health_log_t =
  let doc =
    "Write the server lifecycle journal (start, accepts, requests, \
     completions, drain) as JSON lines to $(docv) at exit — readable by \
     $(b,ccprof events)."
  in
  Arg.(
    value & opt (some string) None & info [ "health-log" ] ~doc ~docv:"FILE")

let verbose_t =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Enable debug logging.")

let run () verbose sock cache_cap max_requests transport metrics_json
    health_log =
  setup_logs verbose;
  if cache_cap < 1 then fail_usage "--cache-cap must be >= 1";
  let journal = Cc_obs.Journal.create () in
  let on_net =
    match transport with
    | Transport.Inproc -> None
    | Transport.Mpproc ->
        Some
          (fun net ->
            let tr = Transport.mpproc ~machines:(Net.n net) () in
            Net.set_transport net tr;
            fun () -> tr.Transport.shutdown ())
  in
  let config =
    { Server.sock; cache_cap; max_requests; journal = Some journal; on_net }
  in
  let srv = try Server.create config with Failure m -> fail_usage m in
  List.iter
    (fun s ->
      Sys.set_signal s (Sys.Signal_handle (fun _ -> Server.request_stop srv)))
    [ Sys.sigterm; Sys.sigint ];
  let finish () =
    (match metrics_json with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc (Cc_obs.Json.to_string (Cc_obs.Metrics.to_json ()));
        output_char oc '\n';
        close_out oc);
    match health_log with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc (Cc_obs.Journal.to_jsonl journal);
        close_out oc
  in
  Fun.protect ~finally:finish (fun () -> Server.run srv)

let main =
  let doc = "Spanning-tree sampling as a service (plan-caching daemon)." in
  let info = Cmd.info "ccserve" ~version:"1.0.0" ~doc in
  Cmd.v info
    Term.(
      const run $ domains_t $ verbose_t $ sock_t $ cache_cap_t
      $ max_requests_t $ transport_kind_t $ metrics_json_t $ health_log_t)

let () =
  (* Worker entrypoint first: when re-exec'd by the Mpproc supervisor this
     process is a shard worker, not a CLI. *)
  Cc_transport.Worker.maybe_run_as_worker ();
  exit (Cmd.eval main)
