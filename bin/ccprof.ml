(* ccprof — offline analyzer for the observability artifacts the repo's
   tools write:

     summary FILE          per-experiment table of a cc-bench/* JSON run
     diff BASELINE NEW     regression gate on measured/bound ratios
     heatmap FILE          render a profile JSONL (cctree --profile FILE)
     trace FILE            top spans/events of a trace JSONL

   Exit codes: 0 ok; 1 diff found a regression (unless --warn-only);
   2 unreadable or malformed input. *)

module Json = Cc_obs.Json
module Benchdata = Cc_obs.Benchdata
module Profile = Cc_obs.Profile
module Table = Cc_util.Table
open Cmdliner

let exit_regression = 1
let exit_bad_input = 2

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg ->
      Printf.eprintf "ccprof: %s\n" msg;
      exit exit_bad_input
  | s -> s

let load_doc path =
  match Benchdata.load path with
  | Ok doc -> doc
  | Error msg ->
      Printf.eprintf "ccprof: %s: %s\n" path msg;
      exit exit_bad_input

let opt_f decimals = function
  | None -> "-"
  | Some x -> Printf.sprintf "%.*f" decimals x

let opt_i = function None -> "-" | Some i -> string_of_int i

(* --- summary --- *)

let summary_doc path doc =
  let aggs = Benchdata.aggregate doc in
  let table =
    Table.create
      ~title:
        (Printf.sprintf "%s — %s%s" path doc.Benchdata.schema
           (if doc.Benchdata.fast then " (fast)" else ""))
      ~columns:
        [ "experiment"; "rows"; "mean ratio"; "worst ratio"; "wall s";
          "max load"; "imbalance" ]
  in
  List.iter
    (fun a ->
      let e = a.Benchdata.exp in
      Table.add_row table
        [
          e.Benchdata.id;
          Table.cell_int a.Benchdata.rows;
          opt_f 3 a.Benchdata.mean_ratio;
          opt_f 3 a.Benchdata.worst_ratio;
          opt_f 2 e.Benchdata.wall_s;
          opt_i e.Benchdata.max_load;
          opt_f 2 e.Benchdata.imbalance;
        ])
    aggs;
  Table.print table;
  (match doc.Benchdata.engine with
  | None -> ()
  | Some e ->
      Printf.printf "engine: %d domain(s)%s\n" e.Benchdata.domains
        (match e.Benchdata.speedup with
        | None -> ""
        | Some s -> Printf.sprintf ", strong-scaling speedup %.2fx" s));
  Printf.printf
    "%d experiments, %d records (ratio = measured / paper bound; imbalance \
     = hottest machine / balanced ideal)\n"
    (List.length aggs)
    (List.length doc.Benchdata.records)

let summary_cmd =
  let file_t =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")
  in
  let run file = summary_doc file (load_doc file) in
  let info =
    Cmd.info "summary" ~doc:"Summarize one cc-bench/* JSON run per experiment."
  in
  Cmd.v info Term.(const run $ file_t)

(* --- diff --- *)

let diff_cmd =
  let old_t =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"BASELINE")
  in
  let new_t = Arg.(required & pos 1 (some file) None & info [] ~docv:"NEW") in
  let threshold_t =
    let doc =
      "Relative worsening of an experiment's mean measured/bound ratio that \
       counts as a regression."
    in
    Arg.(value & opt float 0.10 & info [ "threshold" ] ~doc ~docv:"FRAC")
  in
  let warn_only_t =
    let doc = "Report regressions but exit 0 anyway." in
    Arg.(value & flag & info [ "warn-only" ] ~doc)
  in
  let run old_file new_file threshold warn_only =
    let baseline = load_doc old_file and current = load_doc new_file in
    let d = Benchdata.diff ~threshold ~baseline current in
    let table =
      Table.create
        ~title:
          (Printf.sprintf "%s -> %s (threshold %.0f%%)" old_file new_file
             (100.0 *. threshold))
        ~columns:[ "experiment"; "old ratio"; "new ratio"; "change"; "verdict" ]
    in
    let row verdict (delta : Benchdata.delta) =
      Table.add_row table
        [
          delta.Benchdata.id;
          Printf.sprintf "%.3f" delta.Benchdata.old_ratio;
          Printf.sprintf "%.3f" delta.Benchdata.new_ratio;
          Printf.sprintf "%+.1f%%" (100.0 *. delta.Benchdata.change);
          verdict;
        ]
    in
    List.iter (row "REGRESSION") d.Benchdata.regressions;
    List.iter (row "improved") d.Benchdata.improvements;
    List.iter (row "ok") d.Benchdata.unchanged;
    Table.print table;
    List.iter
      (fun id -> Printf.printf "only in %s: %s\n" old_file id)
      d.Benchdata.only_old;
    List.iter
      (fun id -> Printf.printf "only in %s: %s\n" new_file id)
      d.Benchdata.only_new;
    match d.Benchdata.regressions with
    | [] -> print_endline "no regressions"
    | regs ->
        Printf.printf "%d regression(s) beyond %.0f%%%s\n" (List.length regs)
          (100.0 *. threshold)
          (if warn_only then " (warn-only)" else "");
        if not warn_only then exit exit_regression
  in
  let info =
    Cmd.info "diff"
      ~doc:
        "Compare two cc-bench/* runs; nonzero exit when an experiment's \
         measured/bound ratio worsened beyond the threshold."
  in
  Cmd.v info Term.(const run $ old_t $ new_t $ threshold_t $ warn_only_t)

(* --- heatmap --- *)

let heatmap_cmd =
  let file_t =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")
  in
  let width_t =
    Arg.(
      value & opt int 64
      & info [ "width" ] ~doc:"Maximum heatmap columns before bucketing.")
  in
  let run file width =
    match Profile.of_jsonl (read_file file) with
    | Error msg ->
        Printf.eprintf "ccprof: %s: %s\n" file msg;
        exit exit_bad_input
    | Ok p -> print_string (Profile.render ~max_width:width p)
  in
  let info =
    Cmd.info "heatmap"
      ~doc:"Render the congestion heatmap of a profile JSONL export."
  in
  Cmd.v info Term.(const run $ file_t $ width_t)

(* --- trace --- *)

let trace_cmd =
  let file_t =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")
  in
  let top_t =
    Arg.(value & opt int 15 & info [ "top" ] ~doc:"Rows to show per table.")
  in
  let run file top =
    let lines =
      String.split_on_char '\n' (read_file file)
      |> List.filter (fun l -> l <> "")
    in
    let parsed =
      List.filter_map
        (fun l -> match Json.of_string l with Ok v -> Some v | Error _ -> None)
        lines
    in
    let typed ty =
      List.filter
        (fun v ->
          Option.bind (Json.member "type" v) Json.to_string_opt = Some ty)
        parsed
    in
    let fnum key v =
      Option.value ~default:0.0 (Option.bind (Json.member key v) Json.to_float_opt)
    in
    let str key v =
      Option.value ~default:"" (Option.bind (Json.member key v) Json.to_string_opt)
    in
    let take n xs = List.filteri (fun i _ -> i < n) xs in
    let spans =
      List.sort (fun a b -> compare (fnum "rounds" b) (fnum "rounds" a)) (typed "span")
    in
    let span_table =
      Table.create
        ~title:(Printf.sprintf "%s — top spans by rounds" file)
        ~columns:[ "span"; "depth"; "rounds"; "words"; "peak load"; "wall s" ]
    in
    List.iter
      (fun v ->
        Table.add_row span_table
          [
            str "name" v;
            Printf.sprintf "%.0f" (fnum "depth" v);
            Printf.sprintf "%.1f" (fnum "rounds" v);
            Printf.sprintf "%.0f" (fnum "words" v);
            Printf.sprintf "%.0f" (fnum "max_load" v);
            Printf.sprintf "%.4f" (fnum "wall_s" v);
          ])
      (take top spans);
    Table.print span_table;
    let events =
      List.sort
        (fun a b -> compare (fnum "max_load" b) (fnum "max_load" a))
        (typed "event")
    in
    let event_table =
      Table.create
        ~title:(Printf.sprintf "%s — top net events by per-machine load" file)
        ~columns:[ "kind"; "label"; "rounds"; "words"; "max load" ]
    in
    List.iter
      (fun v ->
        Table.add_row event_table
          [
            str "kind" v;
            str "label" v;
            Printf.sprintf "%.1f" (fnum "rounds" v);
            Printf.sprintf "%.0f" (fnum "words" v);
            Printf.sprintf "%.0f" (fnum "max_load" v);
          ])
      (take top events);
    Table.print event_table;
    Printf.printf "%d spans, %d events\n" (List.length spans)
      (List.length events)
  in
  let info =
    Cmd.info "trace"
      ~doc:"Show the hottest spans and net events of a trace JSONL export."
  in
  Cmd.v info Term.(const run $ file_t $ top_t)

let main =
  let doc = "Analyze cc-bench runs, load profiles, and traces offline." in
  let info = Cmd.info "ccprof" ~version:"1.0.0" ~doc in
  Cmd.group info [ summary_cmd; diff_cmd; heatmap_cmd; trace_cmd ]

let () = exit (Cmd.eval main)
