(* ccprof — offline analyzer for the observability artifacts the repo's
   tools write:

     summary FILE          per-experiment table of a cc-bench/* JSON run,
                           or the instrument table of a metrics JSON dump
                           (cctree --metrics-json FILE)
     diff BASELINE NEW     regression gate on measured/bound ratios
     heatmap FILE          render a profile JSONL (cctree --profile FILE)
     trace FILE            top spans/events of a trace JSONL
     events FILE           render a supervision-event journal JSONL
                           (cctree/ccreplay --health-log FILE)
     watch SOCK            live terminal view of a running mpproc
                           supervisor (cctree --stats-sock SOCK)
     timeline FILE         merged Chrome/Perfetto JSON from a distributed
                           trace artifact (--trace-out), one process lane
                           per shard, optionally annotated with a health log
     critical-path FILE    longest dependent chain across all lanes with
                           per-phase self-time/rounds attribution
     history FILE          per-experiment trend deltas over an appended
                           bench trajectory (bench/HISTORY)
     audit FILE            statistical audit verdicts (cctree --audit /
                           ccreplay record --audit): gate table, worst-edge
                           ranking, convergence sparklines

   Exit codes: 0 ok; 1 diff found a regression (unless --warn-only),
   events --assert-clean saw a recovery event, critical-path --budget
   saw a phase share exceeded, or audit saw a statistical breach;
   2 unreadable or malformed input. *)

module Json = Cc_obs.Json
module Benchdata = Cc_obs.Benchdata
module Profile = Cc_obs.Profile
module Metrics = Cc_obs.Metrics
module Journal = Cc_obs.Journal
module Trace = Cc_obs.Trace
module Critical_path = Cc_obs.Critical_path
module Table = Cc_util.Table
open Cmdliner

let exit_regression = 1
let exit_bad_input = 2

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg ->
      Printf.eprintf "ccprof: %s\n" msg;
      exit exit_bad_input
  | s -> s

let load_doc path =
  match Benchdata.load path with
  | Ok doc -> doc
  | Error msg ->
      Printf.eprintf "ccprof: %s: %s\n" path msg;
      exit exit_bad_input

let opt_f decimals = function
  | None -> "-"
  | Some x -> Printf.sprintf "%.*f" decimals x

let opt_i = function None -> "-" | Some i -> string_of_int i

(* --- summary --- *)

let summary_doc path doc =
  let aggs = Benchdata.aggregate doc in
  let table =
    Table.create
      ~title:
        (Printf.sprintf "%s — %s%s" path doc.Benchdata.schema
           (if doc.Benchdata.fast then " (fast)" else ""))
      ~columns:
        [ "experiment"; "rows"; "mean ratio"; "worst ratio"; "wall s";
          "max load"; "imbalance"; "quality" ]
  in
  List.iter
    (fun a ->
      let e = a.Benchdata.exp in
      Table.add_row table
        [
          e.Benchdata.id;
          Table.cell_int a.Benchdata.rows;
          opt_f 3 a.Benchdata.mean_ratio;
          opt_f 3 a.Benchdata.worst_ratio;
          opt_f 2 e.Benchdata.wall_s;
          opt_i e.Benchdata.max_load;
          opt_f 2 e.Benchdata.imbalance;
          (match a.Benchdata.quality with
          | [] -> "-"
          | q ->
              String.concat " "
                (List.map (fun (k, x) -> Printf.sprintf "%s=%.3g" k x) q));
        ])
    aggs;
  Table.print table;
  (match doc.Benchdata.engine with
  | None -> ()
  | Some e ->
      Printf.printf "engine: %d domain(s)%s\n" e.Benchdata.domains
        (match e.Benchdata.speedup with
        | None -> ""
        | Some s -> Printf.sprintf ", strong-scaling speedup %.2fx" s));
  Printf.printf
    "%d experiments, %d records (ratio = measured / paper bound; imbalance \
     = hottest machine / balanced ideal)\n"
    (List.length aggs)
    (List.length doc.Benchdata.records)

(* A metrics dump (cctree --metrics-json) is a JSON object keyed by
   instrument name whose every value parses as a Metrics.value; anything
   else falls through to the cc-bench reader. *)
let metrics_of_json = function
  | Json.Obj ((_ :: _) as kvs) ->
      let rec go acc = function
        | [] -> Some (List.rev acc)
        | (k, v) :: rest -> (
            match Metrics.value_of_json v with
            | Ok mv -> go ((k, mv) :: acc) rest
            | Error _ -> None)
      in
      go [] kvs
  | _ -> None

let summary_metrics path instruments =
  let table =
    Table.create
      ~title:(Printf.sprintf "%s — metrics registry" path)
      ~columns:
        [ "instrument"; "kind"; "count"; "value/mean"; "min"; "max"; "p50";
          "p95"; "p99" ]
  in
  List.iter
    (fun (name, v) ->
      let row =
        match v with
        | Metrics.Counter n ->
            [ name; "counter"; "-"; string_of_int n; "-"; "-"; "-"; "-"; "-" ]
        | Metrics.Gauge x ->
            [ name; "gauge"; "-"; Printf.sprintf "%.3f" x; "-"; "-"; "-";
              "-"; "-" ]
        | Metrics.Histogram h ->
            let mean =
              if h.Metrics.count > 0 then
                h.Metrics.sum /. float_of_int h.Metrics.count
              else Float.nan
            in
            [ name; "histogram";
              Table.cell_int h.Metrics.count;
              Printf.sprintf "%.3f" mean;
              Printf.sprintf "%.3f" h.Metrics.min;
              Printf.sprintf "%.3f" h.Metrics.max;
              Printf.sprintf "%.3f" h.Metrics.p50;
              Printf.sprintf "%.3f" h.Metrics.p95;
              Printf.sprintf "%.3f" h.Metrics.p99;
            ]
      in
      Table.add_row table row)
    instruments;
  Table.print table;
  let workers =
    List.length
      (List.filter
         (fun (name, _) -> String.starts_with ~prefix:"worker." name)
         instruments)
  in
  Printf.printf "%d instrument(s), %d under the merged worker.* namespace\n"
    (List.length instruments)
    workers

let summary_cmd =
  let file_t =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")
  in
  let run file =
    let sniffed =
      match Json.of_string (read_file file) with
      | Ok j -> metrics_of_json j
      | Error _ -> None
    in
    match sniffed with
    | Some instruments -> summary_metrics file instruments
    | None -> summary_doc file (load_doc file)
  in
  let info =
    Cmd.info "summary"
      ~doc:
        "Summarize one cc-bench/* JSON run per experiment, or render the \
         instrument table of a metrics JSON dump (cctree --metrics-json)."
  in
  Cmd.v info Term.(const run $ file_t)

(* --- diff --- *)

let diff_cmd =
  let old_t =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"BASELINE")
  in
  let new_t = Arg.(required & pos 1 (some file) None & info [] ~docv:"NEW") in
  let threshold_t =
    let doc =
      "Relative worsening of an experiment's mean measured/bound ratio that \
       counts as a regression."
    in
    Arg.(value & opt float 0.10 & info [ "threshold" ] ~doc ~docv:"FRAC")
  in
  let warn_only_t =
    let doc = "Report regressions but exit 0 anyway." in
    Arg.(value & flag & info [ "warn-only" ] ~doc)
  in
  let run old_file new_file threshold warn_only =
    let baseline = load_doc old_file and current = load_doc new_file in
    let d = Benchdata.diff ~threshold ~baseline current in
    let table =
      Table.create
        ~title:
          (Printf.sprintf "%s -> %s (threshold %.0f%%)" old_file new_file
             (100.0 *. threshold))
        ~columns:[ "experiment"; "old ratio"; "new ratio"; "change"; "verdict" ]
    in
    let row verdict (delta : Benchdata.delta) =
      Table.add_row table
        [
          delta.Benchdata.id;
          Printf.sprintf "%.3f" delta.Benchdata.old_ratio;
          Printf.sprintf "%.3f" delta.Benchdata.new_ratio;
          Printf.sprintf "%+.1f%%" (100.0 *. delta.Benchdata.change);
          verdict;
        ]
    in
    List.iter (row "REGRESSION") d.Benchdata.regressions;
    List.iter (row "improved") d.Benchdata.improvements;
    List.iter (row "ok") d.Benchdata.unchanged;
    Table.print table;
    List.iter
      (fun id -> Printf.printf "only in %s: %s\n" old_file id)
      d.Benchdata.only_old;
    List.iter
      (fun id -> Printf.printf "only in %s: %s\n" new_file id)
      d.Benchdata.only_new;
    match d.Benchdata.regressions with
    | [] -> print_endline "no regressions"
    | regs ->
        Printf.printf "%d regression(s) beyond %.0f%%%s\n" (List.length regs)
          (100.0 *. threshold)
          (if warn_only then " (warn-only)" else "");
        if not warn_only then exit exit_regression
  in
  let info =
    Cmd.info "diff"
      ~doc:
        "Compare two cc-bench/* runs; nonzero exit when an experiment's \
         measured/bound ratio worsened beyond the threshold."
  in
  Cmd.v info Term.(const run $ old_t $ new_t $ threshold_t $ warn_only_t)

(* --- heatmap --- *)

let heatmap_cmd =
  let file_t =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")
  in
  let width_t =
    Arg.(
      value & opt int 64
      & info [ "width" ] ~doc:"Maximum heatmap columns before bucketing.")
  in
  let run file width =
    match Profile.of_jsonl (read_file file) with
    | Error msg ->
        Printf.eprintf "ccprof: %s: %s\n" file msg;
        exit exit_bad_input
    | Ok p -> print_string (Profile.render ~max_width:width p)
  in
  let info =
    Cmd.info "heatmap"
      ~doc:"Render the congestion heatmap of a profile JSONL export."
  in
  Cmd.v info Term.(const run $ file_t $ width_t)

(* --- trace --- *)

let trace_cmd =
  let file_t =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")
  in
  let top_t =
    Arg.(value & opt int 15 & info [ "top" ] ~doc:"Rows to show per table.")
  in
  let run file top =
    let lines =
      String.split_on_char '\n' (read_file file)
      |> List.filter (fun l -> l <> "")
    in
    let parsed =
      List.filter_map
        (fun l -> match Json.of_string l with Ok v -> Some v | Error _ -> None)
        lines
    in
    let typed ty =
      List.filter
        (fun v ->
          Option.bind (Json.member "type" v) Json.to_string_opt = Some ty)
        parsed
    in
    let fnum key v =
      Option.value ~default:0.0 (Option.bind (Json.member key v) Json.to_float_opt)
    in
    let str key v =
      Option.value ~default:"" (Option.bind (Json.member key v) Json.to_string_opt)
    in
    let take n xs = List.filteri (fun i _ -> i < n) xs in
    let spans =
      List.sort (fun a b -> compare (fnum "rounds" b) (fnum "rounds" a)) (typed "span")
    in
    let span_table =
      Table.create
        ~title:(Printf.sprintf "%s — top spans by rounds" file)
        ~columns:[ "span"; "depth"; "rounds"; "words"; "peak load"; "wall s" ]
    in
    List.iter
      (fun v ->
        Table.add_row span_table
          [
            str "name" v;
            Printf.sprintf "%.0f" (fnum "depth" v);
            Printf.sprintf "%.1f" (fnum "rounds" v);
            Printf.sprintf "%.0f" (fnum "words" v);
            Printf.sprintf "%.0f" (fnum "max_load" v);
            Printf.sprintf "%.4f" (fnum "wall_s" v);
          ])
      (take top spans);
    Table.print span_table;
    let events =
      List.sort
        (fun a b -> compare (fnum "max_load" b) (fnum "max_load" a))
        (typed "event")
    in
    let event_table =
      Table.create
        ~title:(Printf.sprintf "%s — top net events by per-machine load" file)
        ~columns:[ "kind"; "label"; "rounds"; "words"; "max load" ]
    in
    List.iter
      (fun v ->
        Table.add_row event_table
          [
            str "kind" v;
            str "label" v;
            Printf.sprintf "%.1f" (fnum "rounds" v);
            Printf.sprintf "%.0f" (fnum "words" v);
            Printf.sprintf "%.0f" (fnum "max_load" v);
          ])
      (take top events);
    Table.print event_table;
    Printf.printf "%d spans, %d events\n" (List.length spans)
      (List.length events)
  in
  let info =
    Cmd.info "trace"
      ~doc:"Show the hottest spans and net events of a trace JSONL export."
  in
  Cmd.v info Term.(const run $ file_t $ top_t)

(* --- timeline --- *)

let load_trace file =
  match Trace.of_jsonl (read_file file) with
  | Error msg ->
      Printf.eprintf "ccprof: %s: %s\n" file msg;
      exit exit_bad_input
  | Ok tr -> tr

let timeline_cmd =
  let file_t =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")
  in
  let health_t =
    let doc =
      "Merge a supervision-event journal (cctree/ccreplay --health-log) into \
       the supervisor lane as instant events, so respawns and reroutes show \
       up on the timeline next to the spans they interrupted."
    in
    Arg.(value & opt (some file) None & info [ "health-log" ] ~doc ~docv:"FILE")
  in
  let out_t =
    let doc = "Write the Chrome JSON to $(docv) instead of stdout." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc ~docv:"FILE")
  in
  let run file health out =
    let tr = load_trace file in
    (match health with
    | None -> ()
    | Some h -> (
        match Journal.of_jsonl (read_file h) with
        | Error msg ->
            Printf.eprintf "ccprof: %s: %s\n" h msg;
            exit exit_bad_input
        | Ok events ->
            (* Journal stamps are seconds since supervisor creation; the
               artifact's are seconds since trace origin. Both clocks start
               within the same process a few microseconds apart, so plotting
               them on one axis is aligned to well under a heartbeat. *)
            List.iter
              (fun (e : Journal.event) ->
                Trace.add_remote_event tr ~pid:Trace.local_pid
                  {
                    Trace.ts = e.Journal.t_s;
                    span_id = None;
                    kind = "journal";
                    label =
                      (if e.Journal.cause = "" then e.Journal.kind
                       else e.Journal.kind ^ ": " ^ e.Journal.cause);
                    rounds = 0.0;
                    messages = 0;
                    words = 0;
                    max_load = 0;
                    round_clock = e.Journal.round;
                  })
              events));
    let json = Trace.to_chrome_json tr in
    match out with
    | None -> print_endline json
    | Some path -> (
        try
          let oc = open_out path in
          output_string oc json;
          output_char oc '\n';
          close_out oc
        with Sys_error msg ->
          Printf.eprintf "ccprof: %s\n" msg;
          exit exit_bad_input)
  in
  let info =
    Cmd.info "timeline"
      ~doc:
        "Convert a distributed trace artifact (--trace-out) into one merged \
         Chrome/Perfetto JSON timeline: the supervisor plus one process lane \
         per worker shard, clock-rebased, optionally annotated with the \
         supervision journal."
  in
  Cmd.v info Term.(const run $ file_t $ health_t $ out_t)

(* --- critical-path --- *)

let critical_path_cmd =
  let file_t =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")
  in
  let budget_t =
    let doc =
      "Fail (exit 1) when phase $(i,NAME)'s share of the critical path \
       exceeds $(i,FRAC) (a fraction in (0,1]). Repeatable; summed over \
       lanes."
    in
    Arg.(value & opt_all string [] & info [ "budget" ] ~doc ~docv:"NAME=FRAC")
  in
  let warn_only_t =
    let doc = "Report budget breaches but exit 0 anyway." in
    Arg.(value & flag & info [ "warn-only" ] ~doc)
  in
  let parse_budget s =
    match String.index_opt s '=' with
    | None -> None
    | Some i -> (
        let name = String.sub s 0 i in
        let frac = String.sub s (i + 1) (String.length s - i - 1) in
        match float_of_string_opt frac with
        | Some f when name <> "" && f > 0.0 && f <= 1.0 -> Some (name, f)
        | _ -> None)
  in
  let run file budgets warn_only =
    let budgets =
      List.map
        (fun s ->
          match parse_budget s with
          | Some b -> b
          | None ->
              Printf.eprintf
                "ccprof: bad --budget %S (want NAME=FRAC with FRAC in (0,1])\n"
                s;
              exit exit_bad_input)
        budgets
    in
    let tr = load_trace file in
    match Critical_path.compute tr with
    | None ->
        Printf.eprintf "ccprof: %s: no completed spans\n" file;
        exit exit_bad_input
    | Some cp ->
        let table =
          Table.create
            ~title:(Printf.sprintf "%s — critical-path attribution" file)
            ~columns:[ "phase"; "process"; "self s"; "rounds"; "% of run" ]
        in
        List.iter
          (fun (r : Critical_path.row) ->
            Table.add_row table
              [
                r.Critical_path.phase;
                r.Critical_path.process;
                Printf.sprintf "%.4f" r.Critical_path.self_s;
                Printf.sprintf "%.1f" r.Critical_path.rounds;
                Printf.sprintf "%.1f" (100.0 *. r.Critical_path.share);
              ])
          cp.Critical_path.rows;
        Table.print table;
        Printf.printf
          "end-to-end %.4f s; chain %.4f s over %d segment(s) (%.1f%% \
           covered, %.4f s gaps)\n"
          cp.Critical_path.total_s cp.Critical_path.covered_s
          (List.length cp.Critical_path.chain)
          (if cp.Critical_path.total_s > 0.0 then
             100.0 *. cp.Critical_path.covered_s /. cp.Critical_path.total_s
           else 100.0)
          cp.Critical_path.gap_s;
        let breaches =
          List.filter_map
            (fun (name, frac) ->
              let s = Critical_path.share cp.Critical_path.rows ~phase:name in
              if s > frac then Some (name, frac, s) else None)
            budgets
        in
        List.iter
          (fun (name, frac, s) ->
            Printf.printf "BUDGET BREACH: %s holds %.1f%% of the critical \
                           path (budget %.1f%%)\n"
              name (100.0 *. s) (100.0 *. frac))
          breaches;
        if breaches <> [] && not warn_only then exit exit_regression
  in
  let info =
    Cmd.info "critical-path"
      ~doc:
        "Extract the longest dependent chain from a distributed trace \
         artifact (--trace-out) and attribute it per phase and per process \
         lane; --budget gates a phase's share of the run."
  in
  Cmd.v info Term.(const run $ file_t $ budget_t $ warn_only_t)

(* --- events --- *)

let clean_kind k = String.equal k "worker_start" || String.equal k "worker_stop"

let events_cmd =
  let file_t =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")
  in
  let assert_clean_t =
    let doc =
      "Exit 1 if the journal holds any event other than worker_start / \
       worker_stop — the clean-run gate CI applies to deterministic jobs."
    in
    Arg.(value & flag & info [ "assert-clean" ] ~doc)
  in
  let json_t =
    let doc = "Print the events as a JSON array instead of a table." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let run file assert_clean json =
    match Journal.of_jsonl (read_file file) with
    | Error msg ->
        Printf.eprintf "ccprof: %s: %s\n" file msg;
        exit exit_bad_input
    | Ok events ->
        if json then
          print_endline
            (Json.to_string
               (Json.List (List.map Journal.event_to_json events)))
        else begin
          let table =
            Table.create
              ~title:(Printf.sprintf "%s — supervision events" file)
              ~columns:
                [ "seq"; "t s"; "round"; "kind"; "worker"; "shard"; "attempt";
                  "budget"; "cause" ]
          in
          List.iter
            (fun (e : Journal.event) ->
              Table.add_row table
                [
                  Table.cell_int e.Journal.seq;
                  Printf.sprintf "%.3f" e.Journal.t_s;
                  Printf.sprintf "%.0f" e.Journal.round;
                  e.Journal.kind;
                  opt_i e.Journal.worker;
                  opt_i e.Journal.shard;
                  opt_i e.Journal.attempt;
                  opt_i e.Journal.budget;
                  e.Journal.cause;
                ])
            events;
          Table.print table
        end;
        let recovery =
          List.filter (fun e -> not (clean_kind e.Journal.kind)) events
        in
        if not json then
          Printf.printf "%d event(s), %d recovery event(s) — %s\n"
            (List.length events) (List.length recovery)
            (if recovery = [] then "clean run" else "recovery happened");
        if assert_clean && recovery <> [] then begin
          let e = List.hd recovery in
          Printf.eprintf
            "ccprof: journal not clean: seq %d is %S (worker %s, cause %S)\n"
            e.Journal.seq e.Journal.kind (opt_i e.Journal.worker)
            e.Journal.cause;
          exit exit_regression
        end
  in
  let info =
    Cmd.info "events"
      ~doc:
        "Render a supervision-event journal (cctree/ccreplay --health-log); \
         with --assert-clean, exit 1 unless the run needed no recovery; \
         --json emits the raw events instead of the table."
  in
  Cmd.v info Term.(const run $ file_t $ assert_clean_t $ json_t)

(* --- watch --- *)

let spark_levels = [| "▁"; "▂"; "▃"; "▄"; "▅"; "▆"; "▇"; "█" |]

(* Render [xs] (oldest first) against the window maximum; all-zero (or
   empty) windows render flat. *)
let sparkline xs =
  let hi = List.fold_left Float.max 0.0 xs in
  String.concat ""
    (List.map
       (fun x ->
         if hi <= 0.0 || x <= 0.0 then spark_levels.(0)
         else
           spark_levels.(min
                           (Array.length spark_levels - 1)
                           (int_of_float (x /. hi *. 7.99)))
       )
       xs)

let watch_cmd =
  let sock_t =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SOCK")
  in
  let once_t =
    let doc = "Print one snapshot and exit (no screen clearing)." in
    Arg.(value & flag & info [ "once" ] ~doc)
  in
  let interval_t =
    let doc = "Seconds between polls." in
    Arg.(value & opt float 1.0 & info [ "interval" ] ~doc ~docv:"S")
  in
  let count_t =
    let doc = "Stop after $(docv) snapshots (0 = until the endpoint goes away)." in
    Arg.(value & opt int 0 & info [ "count" ] ~doc ~docv:"N")
  in
  let json_t =
    let doc =
      "Print one raw snapshot JSON object per line per poll instead of \
       rendering the terminal view (for piping into other tools). Exit \
       codes are unchanged."
    in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let fetch sock =
    match
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect fd (Unix.ADDR_UNIX sock);
          let buf = Buffer.create 4096 in
          let chunk = Bytes.create 4096 in
          let rec drain () =
            let k = Unix.read fd chunk 0 (Bytes.length chunk) in
            if k > 0 then begin
              Buffer.add_subbytes buf chunk 0 k;
              drain ()
            end
          in
          drain ();
          Buffer.contents buf)
    with
    | s -> Some s
    | exception (Unix.Unix_error _ | Sys_error _) -> None
  in
  let jint ?(default = 0) key v =
    match Json.member key v with
    | Some (Json.Int i) -> i
    | Some (Json.Float f) -> int_of_float f
    | _ -> default
  in
  let jnum key v =
    Option.bind (Json.member key v) Json.to_float_opt
  in
  let jstr key v =
    Option.value ~default:""
      (Option.bind (Json.member key v) Json.to_string_opt)
  in
  let jlist key v =
    Option.value ~default:[]
      (Option.bind (Json.member key v) Json.to_list_opt)
  in
  (* Per-worker rolling windows for the sparklines, newest last. *)
  let push tbl wid x =
    let window = 24 in
    let xs = match Hashtbl.find_opt tbl wid with Some l -> l | None -> [] in
    let xs = xs @ [ x ] in
    let xs =
      if List.length xs > window then
        List.filteri (fun i _ -> i >= List.length xs - window) xs
      else xs
    in
    Hashtbl.replace tbl wid xs;
    xs
  in
  let render ~clear rtt_hist q_hist snap =
    if clear then print_string "\027[2J\027[H";
    Printf.printf "ccprof watch — %s | machines %d | rounds %.0f\n"
      (jstr "health" snap) (jint "machines" snap)
      (Option.value ~default:0.0 (jnum "rounds" snap));
    (match Json.member "counters" snap with
    | None -> ()
    | Some c ->
        Printf.printf
          "books %d  syncs %d  kills %d  respawns %d  reroutes %d  \
           wire drops/corrupts/retries %d/%d/%d\n"
          (jint "books" c) (jint "syncs" c) (jint "kills" c)
          (jint "respawns" c) (jint "reroutes" c) (jint "wire_drops" c)
          (jint "wire_corrupts" c) (jint "wire_retries" c));
    (* queue depth per worker = pending frames summed over owned shards *)
    let queue_of = Hashtbl.create 8 in
    List.iter
      (fun sh ->
        let owner = jint "owner" sh in
        let pending = jint "pending" sh in
        Hashtbl.replace queue_of owner
          (pending
          + Option.value ~default:0 (Hashtbl.find_opt queue_of owner)))
      (jlist "shards" snap);
    let table =
      Table.create ~title:"workers"
        ~columns:
          [ "wid"; "alive"; "pid"; "respawns"; "rtt ms"; "rtt"; "queue";
            "shards" ]
    in
    List.iter
      (fun w ->
        let wid = jint "wid" w in
        let rtt = jnum "rtt_ms" w in
        let rtts =
          match rtt with
          | Some x when Float.is_finite x -> push rtt_hist wid x
          | _ -> Option.value ~default:[] (Hashtbl.find_opt rtt_hist wid)
        in
        let q =
          float_of_int
            (Option.value ~default:0 (Hashtbl.find_opt queue_of wid))
        in
        let qs = push q_hist wid q in
        let alive =
          match Json.member "alive" w with
          | Some (Json.Bool b) -> b
          | _ -> false
        in
        Table.add_row table
          [
            Table.cell_int wid;
            (if alive then "up" else "DOWN");
            (match Json.member "pid" w with
            | Some (Json.Int p) -> string_of_int p
            | _ -> "-");
            Table.cell_int (jint "respawns_used" w);
            (match rtt with
            | Some x when Float.is_finite x -> Printf.sprintf "%.2f" x
            | _ -> "-");
            sparkline rtts;
            sparkline qs;
            String.concat ","
              (List.map
                 (fun s -> match s with Json.Int i -> string_of_int i | _ -> "?")
                 (jlist "shards" w));
          ])
      (jlist "workers" snap);
    Table.print table;
    (match jlist "events" snap with
    | [] -> ()
    | evs ->
        print_endline "recent events:";
        List.iter
          (fun ev ->
            match Journal.event_of_json ev with
            | Error _ -> ()
            | Ok e ->
                Printf.printf "  [%d] t=%.3f round=%.0f %s%s%s\n"
                  e.Journal.seq e.Journal.t_s e.Journal.round e.Journal.kind
                  (match e.Journal.worker with
                  | Some w -> Printf.sprintf " worker=%d" w
                  | None -> "")
                  (if e.Journal.cause = "" then ""
                   else Printf.sprintf " (%s)" e.Journal.cause))
          evs);
    flush stdout
  in
  let run sock once interval count json =
    if interval <= 0.0 then begin
      Printf.eprintf "ccprof: --interval must be positive\n";
      exit exit_bad_input
    end;
    let rtt_hist = Hashtbl.create 8 and q_hist = Hashtbl.create 8 in
    let budget = if once then 1 else count in
    let seen = ref 0 in
    let rec loop () =
      (match fetch sock with
      | None ->
          if !seen = 0 then begin
            Printf.eprintf
              "ccprof: cannot connect to %s (is a supervisor running with \
               --stats-sock?)\n"
              sock;
            exit exit_bad_input
          end
          else begin
            if not json then
              Printf.printf "endpoint %s gone — supervisor exited\n" sock;
            exit 0
          end
      | Some body -> (
          match Json.of_string (String.trim body) with
          | Error msg ->
              Printf.eprintf "ccprof: %s: malformed snapshot: %s\n" sock msg;
              exit exit_bad_input
          | Ok snap ->
              incr seen;
              if json then begin
                print_endline (Json.to_string snap);
                flush stdout
              end
              else render ~clear:(not once && !seen > 1) rtt_hist q_hist snap));
      if budget = 0 || !seen < budget then begin
        Unix.sleepf interval;
        loop ()
      end
    in
    loop ()
  in
  let info =
    Cmd.info "watch"
      ~doc:
        "Live terminal view of a running mpproc supervisor: poll the stats \
         socket (cctree --stats-sock) for worker liveness, RTT and queue \
         sparklines, and recent supervision events; --json streams the raw \
         snapshots instead."
  in
  Cmd.v info Term.(const run $ sock_t $ once_t $ interval_t $ count_t $ json_t)

(* --- history --- *)

let history_cmd =
  (* [string], not [file]: an absent history file means "no runs recorded
     yet" — a normal state for a fresh checkout, not a usage error. *)
  let file_t =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE")
  in
  let run file =
    if not (Sys.file_exists file) then begin
      Printf.printf "%s: no history\n" file;
      exit 0
    end;
    let lines =
      String.split_on_char '\n' (read_file file)
      |> List.filter (fun l -> String.trim l <> "")
    in
    if lines = [] then begin
      Printf.printf "%s: no history\n" file;
      exit 0
    end;
    let runs =
      List.mapi
        (fun i l ->
          match Json.of_string l with
          | Ok v -> v
          | Error msg ->
              Printf.eprintf "ccprof: %s: line %d: %s\n" file (i + 1) msg;
              exit exit_bad_input)
        lines
    in
    (* Shape gate: every line must be a history line, not just any JSON —
       feeding some other artifact is a usage error, not an empty trend. *)
    List.iteri
      (fun i v ->
        match Json.member "experiments" v with
        | Some (Json.List _) -> ()
        | _ ->
            Printf.eprintf
              "ccprof: %s: line %d: not a bench history line (missing \
               \"experiments\" list)\n"
              file (i + 1);
            exit exit_bad_input)
      runs;
    let jstr key v =
      Option.value ~default:"?"
        (Option.bind (Json.member key v) Json.to_string_opt)
    in
    let jint key v =
      match Json.member key v with Some (Json.Int i) -> i | _ -> 0
    in
    let jnum key v =
      Option.bind (Json.member key v) Json.to_float_opt
    in
    let jlist key v =
      Option.value ~default:[]
        (Option.bind (Json.member key v) Json.to_list_opt)
    in
    (* (experiment id, (wall_s, mean_ratio) per run in file order) *)
    let order = ref [] in
    let series : (string, (float * float option) list) Hashtbl.t =
      Hashtbl.create 8
    in
    List.iter
      (fun run ->
        List.iter
          (fun e ->
            let id = jstr "id" e in
            match jnum "wall_s" e with
            | None -> ()
            | Some wall ->
                let prev =
                  match Hashtbl.find_opt series id with
                  | Some l -> l
                  | None ->
                      order := id :: !order;
                      []
                in
                Hashtbl.replace series id
                  (prev @ [ (wall, jnum "mean_ratio" e) ]))
          (jlist "experiments" run))
      runs;
    let last = List.nth runs (List.length runs - 1) in
    Printf.printf
      "%s — %d run(s); last: host %s, ocaml %s, %d domain(s), transport %s%s\n"
      file (List.length runs) (jstr "host" last) (jstr "ocaml" last)
      (jint "domains" last) (jstr "transport" last)
      (match Json.member "fast" last with
      | Some (Json.Bool true) -> ", fast"
      | _ -> "");
    let table =
      Table.create ~title:"per-experiment trend (wall-clock)"
        ~columns:
          [ "experiment"; "runs"; "first s"; "last s"; "delta %"; "trend";
            "last ratio" ]
    in
    List.iter
      (fun id ->
        let xs = Hashtbl.find series id in
        let walls = List.map fst xs in
        let first = List.hd walls in
        let last_w = List.nth walls (List.length walls - 1) in
        let delta =
          if first > 0.0 then 100.0 *. (last_w -. first) /. first else 0.0
        in
        let ratio =
          match List.nth xs (List.length xs - 1) with
          | _, Some r -> Printf.sprintf "%.3f" r
          | _, None -> "-"
        in
        Table.add_row table
          [
            id;
            Table.cell_int (List.length xs);
            Printf.sprintf "%.4f" first;
            Printf.sprintf "%.4f" last_w;
            Printf.sprintf "%+.1f" delta;
            sparkline walls;
            ratio;
          ])
      (List.rev !order);
    Table.print table
  in
  let info =
    Cmd.info "history"
      ~doc:
        "Show per-experiment wall-clock trends over an appended bench \
         trajectory (bench/HISTORY/history.jsonl, one env-fingerprinted \
         JSON object per --json bench run)."
  in
  Cmd.v info Term.(const run $ file_t)

(* --- audit --- *)

let audit_cmd =
  let module Audit = Cc_audit.Audit in
  let file_t =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")
  in
  let warn_only_t =
    let doc = "Report statistical breaches but exit 0 anyway." in
    Arg.(value & flag & info [ "warn-only" ] ~doc)
  in
  let assert_t =
    let doc =
      "Additionally fail (exit 1) when the artifact is inconclusive: no \
       verdict line, or zero audited trees. The strict form the CI \
       statistical gate uses."
    in
    Arg.(value & flag & info [ "assert" ] ~doc)
  in
  let top_t =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~doc:"Worst edges (by |z|) to rank." ~docv:"K")
  in
  let run file warn_only assert_ top =
    match Audit.of_jsonl (read_file file) with
    | Error msg ->
        Printf.eprintf "ccprof: %s: %s\n" file msg;
        exit exit_bad_input
    | Ok r ->
        Printf.printf
          "%s — audit of %d tree(s) on n=%d, m=%d (alpha %g); ESS %.1f, \
           edge-marginal TV %.4f, KL %.5f\n"
          file r.Audit.r_trials r.Audit.r_n r.Audit.r_m r.Audit.r_alpha
          r.Audit.r_ess r.Audit.r_tv_edges r.Audit.r_kl_edges;
        if r.Audit.r_invalid > 0 || r.Audit.r_skipped > 0 then
          Printf.printf "invalid trees %d, skipped (graph mismatch) %d\n"
            r.Audit.r_invalid r.Audit.r_skipped;
        (match r.Audit.r_verdict with
        | None -> ()
        | Some v ->
            let table =
              Table.create
                ~title:
                  (Printf.sprintf "gates — verdict %s at %d tree(s)"
                     (if v.Audit.pass then "PASS" else "FAIL")
                     v.Audit.at_trials)
                ~columns:
                  [ "gate"; "statistic"; "threshold"; "verdict"; "detail" ]
            in
            List.iter
              (fun (g : Audit.gate) ->
                Table.add_row table
                  [
                    g.Audit.gate;
                    Printf.sprintf "%.3f" g.Audit.statistic;
                    Printf.sprintf "%.3f" g.Audit.threshold;
                    (if not g.Audit.applied then "abstained"
                     else if g.Audit.breached then "BREACH"
                     else "ok");
                    g.Audit.detail;
                  ])
              v.Audit.gates;
            Table.print table);
        (match r.Audit.r_small with
        | None -> ()
        | Some s ->
            Printf.printf
              "exact distribution: support %d (observed %d, foreign %d), \
               TV %.4f, KL %.5f, chi2 %.2f\n"
              s.Audit.support s.Audit.observed_support s.Audit.foreign
              s.Audit.r_small_tv s.Audit.r_small_kl s.Audit.r_small_chi2);
        let worst =
          List.sort
            (fun (a : Audit.edge_stat) b ->
              compare (Float.abs b.Audit.z) (Float.abs a.Audit.z))
            (List.filter (fun (e : Audit.edge_stat) -> not e.Audit.bridge)
               r.Audit.r_edges)
        in
        if worst <> [] then begin
          let table =
            Table.create ~title:"worst edges by |z|"
              ~columns:[ "edge"; "leverage"; "empirical"; "count"; "z" ]
          in
          List.iteri
            (fun i (e : Audit.edge_stat) ->
              if i < top then
                Table.add_row table
                  [
                    Printf.sprintf "%d-%d" e.Audit.u e.Audit.v;
                    Printf.sprintf "%.4f" e.Audit.leverage;
                    (if r.Audit.r_trials > 0 then
                       Printf.sprintf "%.4f"
                         (float_of_int e.Audit.count
                         /. float_of_int r.Audit.r_trials)
                     else "-");
                    Table.cell_int e.Audit.count;
                    Printf.sprintf "%+.2f" e.Audit.z;
                  ])
            worst;
          Table.print table
        end;
        (match r.Audit.r_snapshots with
        | [] -> ()
        | snaps ->
            let line name f =
              let xs = List.map f snaps in
              if List.exists (fun x -> Float.is_finite x && x > 0.0) xs then
                Printf.printf "%-10s %s (at %d..%d trees)\n" name
                  (sparkline xs)
                  (List.hd snaps).Audit.at
                  (List.nth snaps (List.length snaps - 1)).Audit.at
            in
            line "max |z|" (fun s -> s.Audit.s_max_z);
            line "edge TV" (fun s -> s.Audit.s_tv);
            (match (List.hd snaps).Audit.s_small_tv with
            | Some _ ->
                line "exact TV" (fun s ->
                    Option.value ~default:Float.nan s.Audit.s_small_tv)
            | None -> ()));
        let inconclusive =
          r.Audit.r_verdict = None || r.Audit.r_trials = 0
        in
        let breach =
          match r.Audit.r_verdict with
          | Some v -> not v.Audit.pass
          | None -> false
        in
        if breach then begin
          Printf.printf "STATISTICAL BREACH: the sampler failed the audit%s\n"
            (if warn_only then " (warn-only)" else "");
          if not warn_only then exit exit_regression
        end;
        if assert_ && inconclusive then begin
          Printf.eprintf
            "ccprof: %s: inconclusive audit (%s)\n" file
            (if r.Audit.r_trials = 0 then "zero audited trees"
             else "no verdict line");
          exit exit_regression
        end
  in
  let info =
    Cmd.info "audit"
      ~doc:
        "Render a statistical audit artifact (cctree --audit FILE / ccreplay \
         record --audit FILE): gate verdicts against the exact \
         leverage-score oracle, worst-edge ranking, convergence sparklines. \
         Exit 1 on a statistical breach unless --warn-only; --assert also \
         fails inconclusive artifacts."
  in
  Cmd.v info Term.(const run $ file_t $ warn_only_t $ assert_t $ top_t)

let main =
  let doc = "Analyze cc-bench runs, load profiles, and traces offline." in
  let info = Cmd.info "ccprof" ~version:"1.0.0" ~doc in
  Cmd.group info
    [
      summary_cmd; diff_cmd; heatmap_cmd; trace_cmd; timeline_cmd;
      critical_path_cmd; history_cmd; events_cmd; watch_cmd; audit_cmd;
    ]

let () = exit (Cmd.eval main)
