(* cctree — command-line driver for the Congested Clique spanning-tree
   sampler and its substrates.

   Subcommands:
     sample    sample spanning trees with the sublinear-round algorithm
     doubling  sample via the load-balanced doubling walk (Corollaries 1-2)
     walk      run/inspect random walks and cover times
     schur     print SCHUR(G,S) and SHORTCUT(G,S) transition matrices
     count     count spanning trees (Matrix-Tree)
     pagerank  estimate PageRank from doubling walks

   Graphs come either from a named family (-f family -n size) or from a file
   in the line format of Graph.of_string ("n <count>" then "e u v [w]"). *)

module Graph = Cc_graph.Graph
module Gen = Cc_graph.Gen
module Tree = Cc_graph.Tree
module Net = Cc_clique.Net
module Fault = Cc_clique.Fault
module Prng = Cc_util.Prng
module Sampler = Cc_sampler.Sampler
module Doubling = Cc_doubling.Doubling
module Transport = Cc_transport.Transport
open Cmdliner

let setup_logs verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (if verbose then Some Logs.Debug else Some Logs.Warning)

(* Invalid flag or environment values exit with the conventional usage code
   2 and a one-line message — not cmdliner's 124, and never a traceback. *)
let exit_usage = 2

let fail_usage msg =
  prerr_endline ("cctree: " ^ msg);
  exit exit_usage

(* --- common options --- *)

let seed_t =
  let doc = "PRNG seed (runs are deterministic given the seed)." in
  Arg.(value & opt int 1 & info [ "seed" ] ~doc)

(* Evaluating the term installs the requested engine as the process default;
   without --domains the lazy default (CC_DOMAINS, else the runtime's
   recommendation) stands. Results are bit-identical for any domain count.
   Validation is by hand (the flag is a plain string): empty or non-numeric
   values — on the flag or in CC_DOMAINS — get the one-line error and exit
   code 2. *)
let domains_t =
  let doc =
    "Number of OCaml domains for local per-machine computation (including \
     the main domain). Defaults to $(b,CC_DOMAINS) when set, else the \
     runtime's recommended domain count. Output is bit-identical for any \
     value."
  in
  let install spec =
    let chosen =
      match spec with
      | Some s -> (
          match Cc_engine.parse_domains s with
          | Ok d -> Some d
          | Error e -> fail_usage ("--domains: " ^ e))
      | None -> (
          (* No flag: the engine's lazy default will consult CC_DOMAINS, so
             surface a bad value now, as a usage error rather than a
             mid-run Invalid_argument. *)
          match Sys.getenv_opt Cc_engine.env_var with
          | None -> None
          | Some s -> (
              match Cc_engine.parse_domains s with
              | Ok _ -> None
              | Error e -> fail_usage (Cc_engine.env_var ^ ": " ^ e)))
    in
    match chosen with
    | None -> ()
    | Some d ->
        let e = Cc_engine.create ~domains:d () in
        Cc_engine.set_default e;
        at_exit (fun () -> Cc_engine.shutdown e)
  in
  Term.(
    const install
    $ Arg.(
        value & opt (some string) None & info [ "domains" ] ~doc ~docv:"N"))

(* --- transport selection (shared by sample / doubling) --- *)

let transport_kind_t =
  let doc =
    "Execution transport: $(b,inproc) (single-process simulator) or \
     $(b,mpproc) (machines sharded across supervised OS worker processes \
     with heartbeats, retransmission, and respawn-or-reroute recovery). \
     Defaults to $(b,CC_TRANSPORT) when set, else inproc. Ledger and \
     recorder digests are identical on both."
  in
  let resolve spec =
    match spec with
    | Some s -> (
        match Transport.kind_of_string s with
        | Ok k -> k
        | Error e -> fail_usage ("--transport: " ^ e))
    | None -> (
        match Transport.kind_from_env () with
        | Ok (Some k) -> k
        | Ok None -> Transport.Inproc
        | Error e -> fail_usage e)
  in
  Term.(
    const resolve
    $ Arg.(
        value & opt (some string) None & info [ "transport" ] ~doc ~docv:"T"))

(* Telemetry-plane options riding along with --transport. *)
type topts = {
  no_telemetry : bool;
  stats_sock : string option;
  health_log : string option;
}

let topts_t =
  let no_telemetry_t =
    let doc =
      "Disable worker telemetry on the mpproc transport (no registry/GC/span \
       reports on Status heartbeats, no worker.<shard>.* merge). \
       Zero-perturbation either way: ledger, rounds, and recorder digests \
       are identical on and off."
    in
    Arg.(value & flag & info [ "no-telemetry" ] ~doc)
  in
  let stats_sock_t =
    let doc =
      "Serve a live JSON status snapshot (workers, shards, counters, recent \
       supervision events) on a Unix-domain socket at $(docv) — the endpoint \
       $(b,ccprof watch) polls. Mpproc only; an unusable path is ignored."
    in
    Arg.(
      value & opt (some string) None & info [ "stats-sock" ] ~doc ~docv:"PATH")
  in
  let health_log_t =
    let doc =
      "Write the supervision-event journal (worker start/stop, kills, \
       heartbeat timeouts, respawns, installs, reroutes, degrades) as JSON \
       lines to $(docv) after the run — readable by $(b,ccprof events). On \
       inproc the file is written empty (no supervision happens)."
    in
    Arg.(
      value & opt (some string) None & info [ "health-log" ] ~doc ~docv:"FILE")
  in
  let combine no_telemetry stats_sock health_log =
    { no_telemetry; stats_sock; health_log }
  in
  Term.(const combine $ no_telemetry_t $ stats_sock_t $ health_log_t)

let write_health_log topts journal =
  match topts.health_log with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      (match journal with
      | Some j -> output_string oc (Cc_obs.Journal.to_jsonl j)
      | None -> ());
      close_out oc

(* Run [f] with the requested transport installed on [net]; at end of run,
   sync the workers, report health, and shut the pool down. Returns [true]
   when the transport degraded (no live workers left) — the transport-level
   Unrecoverable, mapped to the same exit code. *)
let with_transport kind topts net f =
  match kind with
  | Transport.Inproc ->
      f ();
      write_health_log topts None;
      false
  | Transport.Mpproc ->
      let config =
        {
          Cc_transport.Supervisor.default_config with
          telemetry = not topts.no_telemetry;
          stats_sock = topts.stats_sock;
        }
      in
      let tr = Transport.mpproc ~config ~machines:(Net.n net) () in
      Net.set_transport net tr;
      Fun.protect
        ~finally:(fun () ->
          tr.Transport.shutdown ();
          (* After shutdown so the journal holds the worker_stop records
             and the final telemetry flush has run. *)
          write_health_log topts (tr.Transport.journal ()))
        (fun () ->
          f ();
          tr.Transport.sync ();
          let h = tr.Transport.health () in
          Format.printf "# transport: %s (%s)@." tr.Transport.name
            (Transport.health_summary h);
          match h with
          | Cc_transport.Supervisor.Degraded _ -> true
          | Cc_transport.Supervisor.All_healthy
          | Cc_transport.Supervisor.Recovered _ ->
              false)

let verbose_t =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Enable debug logging.")

let weights_t =
  let doc =
    "Reweight each edge with a uniform integer weight in [1, $(docv)] \
     (footnote 1's bounded-integer-weight extension)."
  in
  Arg.(value & opt (some int) None & info [ "weights" ] ~doc ~docv:"W")

let family_t =
  let doc =
    "Graph family: path, cycle, complete, star, grid, btree, lollipop, \
     barbell, er:<p>, erlog:<c>, regular:<d>."
  in
  Arg.(value & opt (some string) None & info [ "f"; "family" ] ~doc)

let size_t =
  let doc = "Number of vertices for a generated family." in
  Arg.(value & opt int 16 & info [ "n"; "size" ] ~doc)

let file_t =
  let doc = "Read the graph from $(docv) instead of generating one." in
  Arg.(value & opt (some file) None & info [ "g"; "graph" ] ~doc ~docv:"FILE")

(* --- fault-injection options (shared by sample / doubling) --- *)

let prob_conv =
  let parse s =
    match float_of_string_opt s with
    | Some p when p >= 0.0 && p < 1.0 -> Ok p
    | Some _ -> Error (`Msg "probability must be in [0, 1)")
    | None -> Error (`Msg (Printf.sprintf "invalid probability %S" s))
  in
  Arg.conv (parse, Format.pp_print_float)

let crash_conv =
  let parse s =
    let fail () =
      Error
        (`Msg (Printf.sprintf "invalid crash spec %S (expected 'M' or 'M@R')" s))
    in
    match String.index_opt s '@' with
    | Some i -> (
        match
          ( int_of_string_opt (String.sub s 0 i),
            float_of_string_opt
              (String.sub s (i + 1) (String.length s - i - 1)) )
        with
        | Some m, Some r when m >= 0 && r >= 0.0 -> Ok (m, r)
        | _ -> fail ())
    | None -> (
        match int_of_string_opt s with
        | Some m when m >= 0 -> Ok (m, 0.0)
        | _ -> fail ())
  in
  let print ppf (m, r) = Format.fprintf ppf "%d@%g" m r in
  Arg.conv (parse, print)

let faults_t =
  let drop_t =
    let doc = "Per-message drop probability in [0, 1)." in
    Arg.(value & opt prob_conv 0.0 & info [ "drop-prob" ] ~doc ~docv:"P")
  in
  let corrupt_t =
    let doc = "Per-message payload-corruption probability in [0, 1)." in
    Arg.(value & opt prob_conv 0.0 & info [ "corrupt-prob" ] ~doc ~docv:"P")
  in
  let straggle_t =
    let doc = "Per-primitive straggler probability in [0, 1)." in
    Arg.(value & opt prob_conv 0.0 & info [ "straggle-prob" ] ~doc ~docv:"P")
  in
  let crash_t =
    let doc =
      "Crash machine $(docv) permanently ('M@R' = machine M at round R; a \
       bare 'M' crashes at round 0). Repeatable."
    in
    Arg.(value & opt_all crash_conv [] & info [ "crash" ] ~doc ~docv:"M@R")
  in
  let fault_seed_t =
    let doc =
      "Seed of the fault schedule; the same --seed/--fault-seed pair \
       reproduces the run bit-for-bit, faults included."
    in
    Arg.(value & opt int 0 & info [ "fault-seed" ] ~doc)
  in
  let max_retries_t =
    let doc = "Retransmission budget per packet before it is declared lost." in
    Arg.(value & opt int 8 & info [ "max-retries" ] ~doc)
  in
  let combine drop_prob corrupt_prob straggle_prob crashes seed max_retries =
    if
      drop_prob = 0.0 && corrupt_prob = 0.0 && straggle_prob = 0.0
      && crashes = []
    then None
    else
      Some
        (Fault.create
           (Fault.spec ~drop_prob ~corrupt_prob ~straggle_prob ~max_retries
              ~crashes ~seed ()))
  in
  Term.(
    const combine $ drop_t $ corrupt_t $ straggle_t $ crash_t $ fault_seed_t
    $ max_retries_t)

let arm_faults faults net =
  match faults with Some f -> Net.with_faults f net | None -> net

let print_fault_summary faults net =
  if faults <> None then Format.printf "# %a@." Net.pp_fault_summary net

(* --- observability options (shared by sample / doubling / pagerank) --- *)

type obs = {
  trace_file : string option;
  trace_out : string option;  (* distributed trace artifact (JSONL) path *)
  trace_tree : bool;
  metrics : bool;
  metrics_json : string option;  (* registry JSON dump path *)
  profile : string option;  (* "-" = print heatmap; otherwise JSONL path *)
  record : string option;  (* flight-recorder JSONL path *)
}

let obs_t =
  let trace_t =
    let doc =
      "Write a Chrome trace_event JSON of the run to $(docv) (load in \
       chrome://tracing or Perfetto): one complete event per span, one \
       instant event per metered Net primitive. A $(docv) ending in .jsonl \
       gets the JSON-lines export instead (readable by ccprof trace)."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~doc ~docv:"FILE")
  in
  let trace_out_t =
    let doc =
      "Write the distributed trace artifact (JSON lines, readable by \
       $(b,ccprof timeline) and $(b,ccprof critical-path)) to $(docv). \
       Installs a trace collector and wraps the whole run — transport \
       lifecycle included — in a root $(i,run) span; on the mpproc \
       transport with telemetry on, worker span trees arrive on heartbeats \
       and land in the artifact as clock-rebased per-shard process lanes."
    in
    Arg.(
      value & opt (some string) None & info [ "trace-out" ] ~doc ~docv:"FILE")
  in
  let tree_t =
    let doc =
      "Print the span tree (wall clock, allocation, rounds/messages/words \
       per span) after the run."
    in
    Arg.(value & flag & info [ "trace-tree" ] ~doc)
  in
  let metrics_t =
    let doc =
      "Print the metrics registry (counters/gauges/histograms; histograms \
       with p50/p95/p99). On the mpproc transport with telemetry on this \
       includes the merged worker.<shard>.* namespace."
    in
    Arg.(value & flag & info [ "metrics" ] ~doc)
  in
  let metrics_json_t =
    let doc =
      "Write the metrics registry as a JSON object keyed by instrument name \
       to $(docv) — readable by $(b,ccprof summary)."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-json" ] ~doc ~docv:"FILE")
  in
  let profile_t =
    let doc =
      "Report the per-machine load profile: without $(docv) (or with '-') \
       print the machine x label congestion heatmap; with a $(docv) write \
       the profile as JSON lines for ccprof."
    in
    Arg.(
      value
      & opt ~vopt:(Some "-") (some string) None
      & info [ "profile" ] ~doc ~docv:"FILE")
  in
  let record_t =
    let doc =
      "Attach the flight recorder and the online invariant monitor to the \
       run and write the recorded event log (JSON lines with a chain \
       digest) to $(docv) — replayable with ccreplay check/diff/timeline. \
       Invariant violations are reported on stderr."
    in
    Arg.(value & opt (some string) None & info [ "record" ] ~doc ~docv:"FILE")
  in
  let combine trace_file trace_out trace_tree metrics metrics_json profile
      record =
    { trace_file; trace_out; trace_tree; metrics; metrics_json; profile;
      record }
  in
  Term.(
    const combine $ trace_t $ trace_out_t $ tree_t $ metrics_t
    $ metrics_json_t $ profile_t $ record_t)

(* Run [f] with a trace collector installed when requested, then write the
   requested exports — including [net]'s load profile. Observability never
   perturbs the run: spans, events, and the profile only observe the booked
   costs. *)
let with_obs obs net f =
  let tr =
    if obs.trace_file <> None || obs.trace_out <> None || obs.trace_tree then
      Some (Cc_obs.Trace.create ())
    else None
  in
  (match tr with Some t -> Cc_obs.Trace.install t | None -> ());
  let recording =
    match obs.record with
    | None -> None
    | Some path ->
        let r = Cc_obs.Recorder.create ~machines:(Net.n net) () in
        let inv = Cc_obs.Invariant.create ~machines:(Net.n net) () in
        ignore (Net.attach_recorder net r);
        ignore (Net.attach_invariant net inv);
        Some (path, r, inv)
  in
  let finish () =
    Cc_obs.Trace.uninstall ();
    (match tr with
    | None -> ()
    | Some t ->
        (match obs.trace_file with
        | Some path ->
            let oc = open_out path in
            output_string oc
              (if Filename.check_suffix path ".jsonl" then
                 Cc_obs.Trace.to_jsonl t
               else Cc_obs.Trace.to_chrome_json t);
            close_out oc
        | None -> ());
        (match obs.trace_out with
        | Some path ->
            let oc = open_out path in
            output_string oc (Cc_obs.Trace.to_jsonl t);
            close_out oc
        | None -> ());
        if obs.trace_tree then Format.printf "%a@?" Cc_obs.Trace.pp_tree t);
    if obs.metrics then Format.printf "%a@?" Cc_obs.Metrics.pp ();
    (match obs.metrics_json with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc (Cc_obs.Json.to_string (Cc_obs.Metrics.to_json ()));
        output_char oc '\n';
        close_out oc);
    (match recording with
    | None -> ()
    | Some (path, r, inv) ->
        let oc = open_out path in
        output_string oc (Cc_obs.Recorder.to_jsonl r);
        close_out oc;
        let vs =
          Cc_obs.Invariant.violations inv @ Net.ledger_violations net inv
        in
        Format.eprintf "# recorded %d events -> %s (digest %s)@."
          (Cc_obs.Recorder.total r) path
          (Cc_obs.Recorder.digest_hex r);
        if vs <> [] then begin
          Format.eprintf "# %d invariant violation(s):@." (List.length vs);
          List.iter
            (fun v -> Format.eprintf "#   %a@." Cc_obs.Invariant.pp_violation v)
            vs
        end);
    match obs.profile with
    | None -> ()
    | Some "-" -> Format.printf "%a@?" Net.pp_profile net
    | Some path ->
        let oc = open_out path in
        output_string oc (Cc_obs.Profile.to_jsonl (Net.obs_profile net));
        close_out oc
  in
  (* The artifact gets a root [run] span covering everything — including
     transport shutdown, whose final status poll flushes the last worker
     trees — so the critical-path chain can tile end-to-end wall. *)
  let f =
    if obs.trace_out <> None then fun () -> Cc_obs.Trace.with_span "run" f
    else f
  in
  Fun.protect ~finally:finish f

(* Exit code for a run whose health degraded to [Unrecoverable]: the tree is
   still exact (sequential fallback), but the distributed pipeline gave up. *)
let exit_unrecoverable = 3

let exit_for_health = function
  | Fault.Unrecoverable _ -> true
  | Fault.Healthy | Fault.Healed _ -> false

let load_graph ?weights ~family ~size ~file ~prng () =
  let g =
    match (file, family) with
    | Some path, _ ->
        let ic = open_in path in
        let len = in_channel_length ic in
        let s = really_input_string ic len in
        close_in ic;
        Graph.of_string s
    | None, Some fam -> Gen.build prng (Gen.family_of_string fam) ~n:size
    | None, None -> Gen.build prng Gen.Lollipop ~n:size
  in
  match weights with
  | None -> g
  | Some w -> Gen.random_weights prng g ~max_weight:w

let print_tree tree =
  List.iter (fun (u, v) -> Printf.printf "%d %d\n" u v) (Tree.edges tree)

(* --- audit summary (stderr, so stdout stays byte-identical) --- *)

let print_audit_summary a =
  let module Audit = Cc_audit.Audit in
  let v = Audit.verdict a in
  Format.eprintf "# audit: %s after %d tree(s); max |z| %.2f (threshold %.2f)%s@."
    (if v.Audit.pass then "PASS" else "FAIL")
    v.Audit.at_trials (Audit.max_z a) (Audit.z_threshold a)
    (match Audit.small_tv a with
    | Some tv -> Printf.sprintf "; exact-distribution TV %.4f" tv
    | None -> "");
  List.iter
    (fun g ->
      if g.Audit.applied && g.Audit.breached then
        Format.eprintf "# audit breach: %s (%.3f > %.3f) — %s@." g.Audit.gate
          g.Audit.statistic g.Audit.threshold g.Audit.detail)
    v.Audit.gates

(* --- client mode: forward the request to a running ccserve --- *)

let run_connect ~sock ~g ~k ~seed ~method_ =
  let meth =
    match String.lowercase_ascii method_ with
    | "cc" -> Cc_serve.Protocol.Cc
    | "sequential" -> Cc_serve.Protocol.Sequential
    | "doubling" -> Cc_serve.Protocol.Doubling
    | m -> fail_usage ("--connect supports cc|sequential|doubling, got " ^ m)
  in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (match Unix.connect fd (Unix.ADDR_UNIX sock) with
  | () -> ()
  | exception Unix.Unix_error (e, _, _) ->
      fail_usage (Printf.sprintf "--connect %s: %s" sock (Unix.error_message e)));
  let req = Cc_serve.Protocol.request_line ~graph:g ~k ~seed ~meth () in
  let off = ref 0 in
  while !off < String.length req do
    off := !off + Unix.write_substring fd req !off (String.length req - !off)
  done;
  (* The header field carries the exact bytes a one-shot run would print,
     so stdout below is byte-identical to [cctree sample --count k]. *)
  let ic = Unix.in_channel_of_descr fd in
  let rec loop () =
    match input_line ic with
    | exception End_of_file ->
        prerr_endline "cctree: server closed the connection mid-request";
        exit exit_unrecoverable
    | line -> (
        match Cc_serve.Protocol.parse_response line with
        | Ok (Cc_serve.Protocol.Tree { header; edges; _ }) ->
            print_string header;
            List.iter (fun (u, v) -> Printf.printf "%d %d\n" u v) edges;
            loop ()
        | Ok (Cc_serve.Protocol.Done { cache_hit; digest; rounds; _ }) ->
            Format.eprintf "# server: cache %s, digest %s, rounds %.0f@."
              (if cache_hit then "hit" else "miss")
              digest rounds
        | Ok (Cc_serve.Protocol.Error { message; _ }) ->
            prerr_endline ("cctree: server error: " ^ message);
            exit exit_unrecoverable
        | Error m ->
            prerr_endline ("cctree: bad server response: " ^ m);
            exit exit_unrecoverable)
  in
  loop ();
  close_in ic

(* --- sample --- *)

let sample_cmd =
  let trials_t =
    Arg.(value & opt int 1 & info [ "trials" ] ~doc:"Number of trees to sample.")
  in
  let ledger_t =
    Arg.(value & flag & info [ "ledger" ] ~doc:"Print the per-label round ledger.")
  in
  let alpha_t =
    Arg.(
      value
      & opt float Cc_clique.Matmul.default_alpha
      & info [ "alpha" ] ~doc:"Matrix-multiplication exponent for the charged backend.")
  in
  let bits_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "bits" ] ~doc:"Fixed-point fractional bits (Section 3.5); default exact.")
  in
  let method_t =
    let doc =
      "Sampler: cc (the Theorem 2 distributed sampler), sequential (the \
       Section 1.2 phased reference), ab (Aldous-Broder), wilson, updown \
       (basis-exchange MCMC), determinantal (leverage-score chain rule), \
       biased (a deliberately wrong rejection sampler — the negative fixture \
       the audit plane must reject)."
    in
    Arg.(value & opt string "cc" & info [ "method" ] ~doc)
  in
  let count_t =
    let doc =
      "Sample $(docv) trees in one process reusing one prepared plan \
       (prepare once, draw $(docv) times). Unlike --trials, tree $(i,i) \
       draws from the $(i,i)-th sequential split of the master seed, so \
       its bytes are independent of $(docv) — and identical to what a \
       ccserve request with the same seed streams back. Methods: cc, \
       sequential, doubling."
    in
    Arg.(value & opt int 0 & info [ "count" ] ~doc ~docv:"K")
  in
  let connect_t =
    let doc =
      "Client mode: send the request to the ccserve daemon at socket \
       $(docv) instead of sampling locally, and print the streamed trees \
       (stdout is byte-identical to a local --count run; the server's \
       cache verdict and recorder digest go to stderr)."
    in
    Arg.(
      value & opt (some string) None & info [ "connect" ] ~doc ~docv:"SOCK")
  in
  let audit_t =
    let doc =
      "Attach the statistical auditor: accumulate per-edge inclusion counts \
       across the sampled trees and compare them against the exact \
       leverage-score marginals (plus the full tree distribution on small \
       instances). With a $(docv), write the JSONL audit artifact there \
       (readable by $(b,ccprof audit)); with '-' (the default value) only \
       the verdict summary is printed, on stderr. Zero-perturbation: the \
       sampled trees, stdout, and recorder digests are byte-identical with \
       and without this flag."
    in
    Arg.(
      value
      & opt ~vopt:(Some "-") (some string) None
      & info [ "audit" ] ~doc ~docv:"FILE")
  in
  let run () seed verbose family size file weights trials ledger alpha bits
      method_ count connect audit faults obs transport topts =
    setup_logs verbose;
    let prng = Prng.create ~seed in
    let g = load_graph ?weights ~family ~size ~file ~prng () in
    let n = Graph.n g in
    match connect with
    | Some sock ->
        run_connect ~sock ~g
          ~k:(if count > 0 then count else trials)
          ~seed ~method_
    | None ->
    let auditor =
      match audit with
      | None -> None
      | Some spec ->
          let a = Cc_audit.Audit.create g in
          Cc_audit.Audit.install a;
          Some (spec, a)
    in
    let net = arm_faults faults (Net.create ~n) in
    let config =
      {
        Sampler.default_config with
        backend = Cc_clique.Matmul.charged ~alpha ();
        bits;
      }
    in
    let unrecoverable = ref false in
    (* Observability wraps the transport so the metrics dump (--metrics /
       --metrics-json) sees the final telemetry flush merged at shutdown. *)
    let degraded =
      with_obs obs net (fun () ->
    with_transport transport topts net (fun () ->
    (if count > 0 then
      (* Prepare once, draw [count] times. Tree t draws from the t-th
         sequential split of the master stream, so its bytes don't depend
         on count — and match what a ccserve request with the same seed
         streams back. *)
      match String.lowercase_ascii method_ with
      | "cc" ->
          let plan = Sampler.prepare ~config g in
          for t = 1 to count do
            let p = Prng.split prng in
            let r = Sampler.draw plan net p in
            Printf.printf "# tree %d: %d phases, %.0f rounds, walk length %d\n"
              t r.Sampler.phases r.Sampler.rounds r.Sampler.walk_total;
            if faults <> None then
              Format.printf "# health: %a@." Fault.pp_health r.Sampler.health;
            if exit_for_health r.Sampler.health then unrecoverable := true;
            print_tree r.Sampler.tree
          done
      | "sequential" ->
          let plan = Cc_sampler.Sequential.prepare g in
          for t = 1 to count do
            let p = Prng.split prng in
            let r = Cc_sampler.Sequential.draw plan p in
            Printf.printf "# tree %d: %d phases, walk length %d\n" t
              r.Cc_sampler.Sequential.phases
              r.Cc_sampler.Sequential.walk_total;
            print_tree r.Cc_sampler.Sequential.tree
          done
      | "doubling" ->
          let plan = Doubling.prepare g ~tau0:n in
          for t = 1 to count do
            let p = Prng.split prng in
            let tree, steps = Doubling.draw plan net p in
            Printf.printf "# tree %d: %d walk steps\n" t steps;
            print_tree tree
          done
      | m -> fail_usage ("--count supports cc|sequential|doubling, got " ^ m)
    else
    for t = 1 to trials do
      (match String.lowercase_ascii method_ with
      | "cc" ->
          let r = Sampler.sample ~config net prng g in
          Printf.printf "# tree %d: %d phases, %.0f rounds, walk length %d\n" t
            r.Sampler.phases r.Sampler.rounds r.Sampler.walk_total;
          if faults <> None then
            Format.printf "# health: %a@." Fault.pp_health r.Sampler.health;
          if exit_for_health r.Sampler.health then unrecoverable := true;
          print_tree r.Sampler.tree
      | "sequential" ->
          let r = Cc_sampler.Sequential.sample g prng in
          Printf.printf "# tree %d: %d phases, walk length %d\n" t
            r.Cc_sampler.Sequential.phases r.Cc_sampler.Sequential.walk_total;
          print_tree r.Cc_sampler.Sequential.tree
      | "ab" ->
          let tree, steps = Cc_walks.Aldous_broder.sample g prng ~start:0 in
          Printf.printf "# tree %d: %d walk steps\n" t steps;
          print_tree tree
      | "wilson" ->
          let tree, steps = Cc_walks.Wilson.sample g prng ~root:0 in
          Printf.printf "# tree %d: %d walk steps\n" t steps;
          print_tree tree
      | "updown" ->
          Printf.printf "# tree %d: %d chain steps\n" t
            (Cc_walks.Updown.default_steps g);
          print_tree (Cc_walks.Updown.sample_tree g prng)
      | "determinantal" ->
          Printf.printf "# tree %d (exact, leverage-score chain rule)\n" t;
          print_tree (Cc_walks.Determinantal.sample_tree g prng)
      | "biased" ->
          Printf.printf "# tree %d (biased fixture; see --audit)\n" t;
          print_tree (Cc_walks.Wilson.sample_biased g prng)
      | m -> failwith ("unknown method: " ^ m))
    done);
    print_fault_summary faults net;
    if ledger then Format.printf "%a@." Net.pp_ledger net))
    in
    (match auditor with
    | None -> ()
    | Some (spec, a) ->
        Cc_audit.Audit.uninstall ();
        if spec <> "-" then begin
          let oc = open_out spec in
          output_string oc (Cc_audit.Audit.to_jsonl a);
          close_out oc
        end;
        print_audit_summary a);
    if !unrecoverable || degraded then exit exit_unrecoverable
  in
  let info =
    Cmd.info "sample"
      ~doc:"Sample spanning trees (Theorem 2 sampler by default; see --method)."
  in
  Cmd.v info
    Term.(
      const run $ domains_t $ seed_t $ verbose_t $ family_t $ size_t $ file_t
      $ weights_t $ trials_t $ ledger_t $ alpha_t $ bits_t $ method_t
      $ count_t $ connect_t $ audit_t $ faults_t $ obs_t $ transport_kind_t
      $ topts_t)

(* --- doubling --- *)

let doubling_cmd =
  let tau_t =
    Arg.(value & opt int 0 & info [ "tau" ] ~doc:"Walk length (0 = sample a tree instead).")
  in
  let run () seed family size file tau faults obs transport topts =
    let prng = Prng.create ~seed in
    let g = load_graph ~family ~size ~file ~prng () in
    let n = Graph.n g in
    let net = arm_faults faults (Net.create ~n) in
    let unrecoverable = ref false in
    let degraded =
      with_obs obs net (fun () ->
    with_transport transport topts net (fun () ->
    if tau > 0 then begin
      let r = Doubling.run net prng g ~tau ~scheme:(Doubling.default_scheme ~n) in
      Printf.printf "# %d iterations, %.0f rounds; walk from vertex 0:\n"
        r.Doubling.iterations r.Doubling.rounds;
      if faults <> None then
        Format.printf "# health: %a@." Fault.pp_health r.Doubling.health;
      if exit_for_health r.Doubling.health then unrecoverable := true;
      Array.iter (fun v -> Printf.printf "%d " v) r.Doubling.walks.(0);
      print_newline ()
    end
    else begin
      let tree, walk_len = Doubling.sample_tree net prng g ~tau0:n in
      Printf.printf "# tree via doubling: %.0f rounds, walk length %d\n"
        (Net.rounds net) walk_len;
      print_tree tree
    end;
    print_fault_summary faults net))
    in
    if !unrecoverable || degraded then exit exit_unrecoverable
  in
  let info =
    Cmd.info "doubling"
      ~doc:"Load-balanced doubling walks and Corollary 1-2 tree sampling."
  in
  Cmd.v info
    Term.(
      const run $ domains_t $ seed_t $ family_t $ size_t $ file_t $ tau_t
      $ faults_t $ obs_t $ transport_kind_t $ topts_t)

(* --- walk --- *)

let walk_cmd =
  let len_t = Arg.(value & opt int 0 & info [ "len" ] ~doc:"Walk length (0 = measure cover time).") in
  let trials_t = Arg.(value & opt int 20 & info [ "trials" ] ~doc:"Cover-time trials.") in
  let run seed family size file len trials =
    let prng = Prng.create ~seed in
    let g = load_graph ~family ~size ~file ~prng () in
    if len > 0 then begin
      let w = Cc_walks.Walk.walk g prng ~start:0 ~len in
      Array.iter (fun v -> Printf.printf "%d " v) w;
      print_newline ()
    end
    else
      Printf.printf "mean cover time over %d trials: %.1f steps (n=%d, m=%d)\n"
        trials
        (Cc_walks.Walk.mean_cover_time g prng ~trials)
        (Graph.n g) (Graph.num_edges g)
  in
  let info = Cmd.info "walk" ~doc:"Random walks and cover times." in
  Cmd.v info Term.(const run $ seed_t $ family_t $ size_t $ file_t $ len_t $ trials_t)

(* --- schur --- *)

let schur_cmd =
  let s_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "subset" ] ~doc:"Comma-separated vertex subset S (default: even vertices).")
  in
  let run () seed family size file s_spec =
    let prng = Prng.create ~seed in
    let g = load_graph ~family ~size ~file ~prng () in
    let n = Graph.n g in
    let s =
      match s_spec with
      | Some spec ->
          Array.of_list (List.map int_of_string (String.split_on_char ',' spec))
      | None -> Array.of_list (List.filter (fun v -> v mod 2 = 0) (List.init n (fun v -> v)))
    in
    Array.sort compare s;
    let in_s = Cc_schur.Schur.members ~n ~s in
    Format.printf "S = [%s]@."
      (String.concat "; " (List.map string_of_int (Array.to_list s)));
    Format.printf "@.SCHUR(G,S) transition matrix (rows/cols in S order):@.%a@."
      Cc_linalg.Mat.pp
      (Cc_schur.Schur.transition_exact g ~s);
    Format.printf "@.SHORTCUT(G,S) transition matrix (n x n):@.%a@."
      Cc_linalg.Mat.pp
      (Cc_schur.Shortcut.exact g ~in_s)
  in
  let info = Cmd.info "schur" ~doc:"Print SCHUR(G,S) and SHORTCUT(G,S)." in
  Cmd.v info
    Term.(const run $ domains_t $ seed_t $ family_t $ size_t $ file_t $ s_t)

(* --- count --- *)

let count_cmd =
  let run () seed family size file =
    let prng = Prng.create ~seed in
    let g = load_graph ~family ~size ~file ~prng () in
    let log_count = Tree.log_count g in
    Printf.printf "spanning trees: %.6g (log = %.4f)\n" (Float.exp log_count) log_count
  in
  let info = Cmd.info "count" ~doc:"Count spanning trees via the Matrix-Tree theorem." in
  Cmd.v info Term.(const run $ domains_t $ seed_t $ family_t $ size_t $ file_t)

(* --- pagerank --- *)

let pagerank_cmd =
  let eps_t = Arg.(value & opt float 0.15 & info [ "epsilon" ] ~doc:"Restart probability.") in
  let walks_t = Arg.(value & opt int 32 & info [ "walks" ] ~doc:"Walks per vertex.") in
  let run () seed family size file epsilon walks obs =
    let prng = Prng.create ~seed in
    let g = load_graph ~family ~size ~file ~prng () in
    let n = Graph.n g in
    let net = Net.create ~n in
    with_obs obs net (fun () ->
    let est = Doubling.pagerank net prng g ~walks_per_node:walks ~epsilon in
    let exact = Doubling.pagerank_exact g ~epsilon in
    Printf.printf "# rounds: %.0f\n# vertex estimate exact\n" (Net.rounds net);
    Array.iteri (fun v x -> Printf.printf "%d %.6f %.6f\n" v x exact.(v)) est)
  in
  let info = Cmd.info "pagerank" ~doc:"PageRank from doubling walks vs power iteration." in
  Cmd.v info
    Term.(
      const run $ domains_t $ seed_t $ family_t $ size_t $ file_t $ eps_t
      $ walks_t $ obs_t)

(* --- congest --- *)

let congest_cmd =
  let run seed family size file =
    let prng = Prng.create ~seed in
    let g = load_graph ~family ~size ~file ~prng () in
    let cnet = Cc_congest.Cnet.create g in
    let naive = Cc_congest.Congest_walk.step_by_step cnet prng in
    let cnet2 = Cc_congest.Cnet.create g in
    let lambda =
      Cc_congest.Congest_walk.auto_lambda cnet2
        ~walk_estimate:(max 16 naive.Cc_congest.Congest_walk.walk_length)
    in
    let st = Cc_congest.Congest_walk.das_sarma cnet2 prng ~lambda ~eta:4 in
    Printf.printf
      "CONGEST (D = %d):\n  step-by-step: %.0f rounds (walk %d)\n  \
       das-sarma stitched (lambda=%d): %.0f rounds (walk %d, %d stitches)\n"
      (Cc_congest.Cnet.depth cnet)
      naive.Cc_congest.Congest_walk.rounds naive.Cc_congest.Congest_walk.walk_length
      lambda st.Cc_congest.Congest_walk.rounds st.Cc_congest.Congest_walk.walk_length
      st.Cc_congest.Congest_walk.stitches
  in
  let info =
    Cmd.info "congest"
      ~doc:"Compare the CONGEST-model walk baselines (related work)."
  in
  Cmd.v info Term.(const run $ seed_t $ family_t $ size_t $ file_t)

(* --- sparsify --- *)

let sparsify_cmd =
  let trees_t =
    Arg.(value & opt int 4 & info [ "trees" ] ~doc:"Number of spanning trees to union.")
  in
  let run seed family size file trees =
    let prng = Prng.create ~seed in
    let g = load_graph ~family ~size ~file ~prng () in
    let h =
      Cc_apps.Sparsifier.union prng
        (fun g prng -> Cc_walks.Wilson.sample_tree g prng)
        g ~trees ~reweight:true
    in
    let q = Cc_apps.Sparsifier.evaluate prng g h ~probes:300 in
    Printf.printf
      "# %d trees: kept %d/%d edges; cut ratios [%.3f, %.3f]; Rayleigh [%.3f, %.3f]\n"
      trees q.Cc_apps.Sparsifier.edges_kept (Graph.num_edges g)
      q.Cc_apps.Sparsifier.cut_ratio_min q.Cc_apps.Sparsifier.cut_ratio_max
      q.Cc_apps.Sparsifier.rayleigh_min q.Cc_apps.Sparsifier.rayleigh_max;
    print_string (Graph.to_string h)
  in
  let info =
    Cmd.info "sparsify" ~doc:"Sparsify by a reweighted union of random spanning trees."
  in
  Cmd.v info Term.(const run $ seed_t $ family_t $ size_t $ file_t $ trees_t)

let main =
  let doc = "Spanning-tree sampling in the Congested Clique (PODC 2025 reproduction)." in
  let info = Cmd.info "cctree" ~version:"1.0.0" ~doc in
  Cmd.group info
    [ sample_cmd; doubling_cmd; walk_cmd; schur_cmd; count_cmd; pagerank_cmd;
      sparsify_cmd; congest_cmd ]

let () =
  (* Worker entrypoint first: when re-exec'd by the Mpproc supervisor this
     process is a shard worker, not a CLI. *)
  Cc_transport.Worker.maybe_run_as_worker ();
  exit (Cmd.eval main)
