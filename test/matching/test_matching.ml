(* Tests for Cc_matching: Ryser permanents, the exact JVV sampler, the MCMC
   swap chain, and the class-compressed placement sampler. *)

module Permanent = Cc_matching.Permanent
module Sampler = Cc_matching.Sampler
module Placement = Cc_matching.Placement
module Prng = Cc_util.Prng
module Dist = Cc_util.Dist

let check_float ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let random_weights prng k =
  Array.init k (fun _ -> Array.init k (fun _ -> 0.1 +. Prng.float prng 2.0))

(* Brute-force permanent for cross-checking Ryser. *)
let permanent_brute w =
  let k = Array.length w in
  let acc = ref 0.0 in
  let rec go j used prod =
    if j = k then acc := !acc +. prod
    else
      for i = 0 to k - 1 do
        if not used.(i) then begin
          used.(i) <- true;
          go (j + 1) used (prod *. w.(i).(j));
          used.(i) <- false
        end
      done
  in
  go 0 (Array.make k false) 1.0;
  !acc

(* --- Permanent --- *)

let test_ryser_known_values () =
  check_float "1x1" 7.0 (Permanent.ryser [| [| 7.0 |] |]);
  check_float "2x2" 10.0 (Permanent.ryser [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |]);
  (* All-ones k x k has permanent k!. *)
  let ones k = Array.make_matrix k k 1.0 in
  check_float "3x3 ones" 6.0 (Permanent.ryser (ones 3));
  check_float "5x5 ones" 120.0 (Permanent.ryser (ones 5));
  (* Identity has permanent 1. *)
  let eye k = Array.init k (fun i -> Array.init k (fun j -> if i = j then 1.0 else 0.0)) in
  check_float "identity" 1.0 (Permanent.ryser (eye 6))

let test_ryser_matches_brute_force () =
  let prng = Prng.create ~seed:1 in
  for k = 1 to 6 do
    let w = random_weights prng k in
    check_float ~eps:1e-8
      (Printf.sprintf "k=%d" k)
      (permanent_brute w) (Permanent.ryser w)
  done

let test_minor () =
  let w = [| [| 1.0; 2.0; 3.0 |]; [| 4.0; 5.0; 6.0 |]; [| 7.0; 8.0; 9.0 |] |] in
  let m = Permanent.minor w ~skip_row:1 ~skip_col:0 in
  Alcotest.(check bool) "minor" true (m = [| [| 2.0; 3.0 |]; [| 8.0; 9.0 |] |])

let test_matching_weight () =
  let w = [| [| 2.0; 3.0 |]; [| 5.0; 7.0 |] |] in
  check_float "identity matching" 14.0 (Permanent.matching_weight w [| 0; 1 |]);
  check_float "swap matching" 15.0 (Permanent.matching_weight w [| 1; 0 |])

(* --- samplers vs exact distribution --- *)

let empirical_tv_against_exact sampler w trials seed =
  let assignments, probs = Sampler.exact_distribution w in
  let index = Hashtbl.create 64 in
  List.iteri (fun i a -> Hashtbl.add index a i) assignments;
  let counts = Array.make (List.length assignments) 0 in
  let prng = Prng.create ~seed in
  for _ = 1 to trials do
    let sigma = sampler prng w in
    let i = Hashtbl.find index sigma in
    counts.(i) <- counts.(i) + 1
  done;
  Dist.tv_counts ~counts (Dist.of_weights probs)

let test_exact_sampler_distribution () =
  let prng = Prng.create ~seed:2 in
  let w = random_weights prng 4 in
  let tv = empirical_tv_against_exact Sampler.exact w 30_000 3 in
  Alcotest.(check bool) (Printf.sprintf "tv %.4f" tv) true (tv < 0.03)

let test_exact_sampler_skewed_weights () =
  (* Strongly skewed weights: the diagonal matching dominates. *)
  let k = 4 in
  let w =
    Array.init k (fun i ->
        Array.init k (fun j -> if i = j then 100.0 else 0.01))
  in
  let prng = Prng.create ~seed:4 in
  let diag = Array.init k (fun j -> j) in
  let hits = ref 0 in
  for _ = 1 to 200 do
    if Sampler.exact prng w = diag then incr hits
  done;
  Alcotest.(check bool) "diagonal dominates" true (!hits > 190)

let test_mcmc_distribution () =
  let prng = Prng.create ~seed:5 in
  let w = random_weights prng 4 in
  let tv =
    empirical_tv_against_exact
      (fun prng w -> Sampler.mcmc prng w ~steps:2000)
      w 30_000 6
  in
  Alcotest.(check bool) (Printf.sprintf "mcmc tv %.4f" tv) true (tv < 0.05)

let test_mcmc_zero_steps_is_uniform_start () =
  (* steps = 0 returns the random initial permutation — a sanity check that
     the chain starts uniform, not degenerate. *)
  let prng = Prng.create ~seed:7 in
  let w = [| [| 1.0; 1.0 |]; [| 1.0; 1.0 |] |] in
  let seen = Hashtbl.create 4 in
  for _ = 1 to 100 do
    Hashtbl.replace seen (Sampler.mcmc prng w ~steps:0) ()
  done;
  Alcotest.(check int) "both permutations appear" 2 (Hashtbl.length seen)

let test_auto_dispatch () =
  let prng = Prng.create ~seed:8 in
  let small = random_weights prng 3 in
  let sigma = Sampler.sample prng small in
  Alcotest.(check int) "valid permutation (small)" 3
    (List.length (List.sort_uniq compare (Array.to_list sigma)));
  let large = random_weights prng 16 in
  let sigma = Sampler.sample prng large in
  Alcotest.(check int) "valid permutation (large)" 16
    (List.length (List.sort_uniq compare (Array.to_list sigma)))

let test_exact_rejects_bad_weights () =
  Alcotest.check_raises "negative weight"
    (Invalid_argument "Matching.Sampler: weights must be nonnegative")
    (fun () -> ignore (Sampler.exact (Prng.create ~seed:9) [| [| -1.0 |] |]));
  (* All-zero (infeasible) instances are rejected at sampling time. *)
  Alcotest.check_raises "infeasible"
    (Invalid_argument "Dist.sample_weights: all weights are zero")
    (fun () -> ignore (Sampler.exact (Prng.create ~seed:9) [| [| 0.0 |] |]))

let test_exact_handles_sparse_support () =
  (* Zero weights restrict the support: only two matchings are feasible and
     their odds are 2:3. *)
  let w = [| [| 2.0; 0.0; 1.0 |]; [| 0.0; 1.0; 0.0 |]; [| 3.0; 0.0; 2.0 |] |] in
  (* Feasible: (0,1,2) with weight 2*1*2=4 and (2,1,0) with weight 3*1*1=3. *)
  let prng = Prng.create ~seed:21 in
  let counts = Hashtbl.create 4 in
  let trials = 20_000 in
  for _ = 1 to trials do
    let sigma = Sampler.exact prng w in
    Hashtbl.replace counts sigma
      (1 + Option.value ~default:0 (Hashtbl.find_opt counts sigma))
  done;
  Alcotest.(check int) "two feasible matchings" 2 (Hashtbl.length counts);
  let c1 = Hashtbl.find counts [| 0; 1; 2 |] in
  let freq = float_of_int c1 /. float_of_int trials in
  Alcotest.(check bool)
    (Printf.sprintf "P(id matching) %.3f ~ 4/7" freq)
    true
    (Float.abs (freq -. (4.0 /. 7.0)) < 0.02)

let test_mcmc_sparse_support_with_init () =
  let w = [| [| 2.0; 0.0; 1.0 |]; [| 0.0; 1.0; 0.0 |]; [| 3.0; 0.0; 2.0 |] |] in
  let prng = Prng.create ~seed:22 in
  let hits = ref 0 in
  let trials = 10_000 in
  for _ = 1 to trials do
    let sigma = Sampler.mcmc ~init:[| 0; 1; 2 |] prng w ~steps:50 in
    if sigma = [| 0; 1; 2 |] then incr hits
  done;
  let freq = float_of_int !hits /. float_of_int trials in
  Alcotest.(check bool)
    (Printf.sprintf "P(id matching) %.3f ~ 4/7" freq)
    true
    (Float.abs (freq -. (4.0 /. 7.0)) < 0.03)

(* --- Placement --- *)

let figure_instance () =
  (* Mirrors Figure 1: identities with repeats, positions with repeated
     (p,q) pairs. *)
  Placement.build
    ~identities:[| 4; 5; 4; 5; 6 |]
    ~positions:[| (1, 3); (3, 2); (2, 1); (1, 2); (1, 3) |]
    ~weight:(fun ~v ~p ~q ->
      (* Any positive deterministic function of (v,p,q). *)
      1.0 /. float_of_int ((v * 7) + (p * 3) + q + 1))

let test_placement_build () =
  let t = figure_instance () in
  Alcotest.(check int) "square" 5 (Array.length t.Placement.weights);
  Alcotest.(check bool) "dp_states modest" true (Placement.dp_states t <= 3 * 3 * 2 * 2)

let test_placement_exact_is_valid_matching () =
  let prng = Prng.create ~seed:10 in
  let t = figure_instance () in
  for _ = 1 to 50 do
    let sigma = Placement.sample_exact prng t in
    Alcotest.(check int) "permutation" 5
      (List.length (List.sort_uniq compare (Array.to_list sigma)))
  done

let test_placement_matches_generic_exact () =
  (* The class-compressed sampler must induce the same distribution over
     (identity at position) profiles as the generic exact sampler. Compare
     via the profile histogram (identities are interchangeable, so compare
     the observable: which identity sits at each position). *)
  let t = figure_instance () in
  let profile sigma =
    Array.map (fun i -> t.Placement.identities.(i)) sigma
  in
  let histo sampler trials seed =
    let prng = Prng.create ~seed in
    let h = Hashtbl.create 64 in
    for _ = 1 to trials do
      let p = profile (sampler prng) in
      Hashtbl.replace h p (1 + Option.value ~default:0 (Hashtbl.find_opt h p))
    done;
    h
  in
  let trials = 20_000 in
  let h1 = histo (fun prng -> Placement.sample_exact prng t) trials 11 in
  let h2 = histo (fun prng -> Sampler.exact prng t.Placement.weights) trials 12 in
  let keys =
    List.sort_uniq compare
      (Hashtbl.fold (fun k _ acc -> k :: acc) h1 []
      @ Hashtbl.fold (fun k _ acc -> k :: acc) h2 [])
  in
  let tv =
    0.5
    *. List.fold_left
         (fun acc k ->
           let c1 = float_of_int (Option.value ~default:0 (Hashtbl.find_opt h1 k)) in
           let c2 = float_of_int (Option.value ~default:0 (Hashtbl.find_opt h2 k)) in
           acc +. Float.abs ((c1 -. c2) /. float_of_int trials))
         0.0 keys
  in
  Alcotest.(check bool) (Printf.sprintf "profile tv %.4f" tv) true (tv < 0.05)

let test_placement_large_instance () =
  (* 60 instances over 3 identities and 3 position classes: far beyond
     Ryser's reach, easy for the DP. *)
  let prng = Prng.create ~seed:13 in
  let k = 60 in
  let identities = Array.init k (fun i -> i mod 3) in
  let positions = Array.init k (fun i -> ((i / 3) mod 3, 9)) in
  let t =
    Placement.build ~identities ~positions ~weight:(fun ~v ~p ~q ->
        float_of_int (1 + v + p + (q mod 2)))
  in
  let sigma = Placement.sample_exact ~max_states:2_000_000 prng t in
  Alcotest.(check int) "permutation" k
    (List.length (List.sort_uniq compare (Array.to_list sigma)))

let test_placement_sample_fallback () =
  (* Make classes all distinct so dp_states = 2^k: must fall back to MCMC and
     still return a valid matching. *)
  let prng = Prng.create ~seed:14 in
  let k = 24 in
  let identities = Array.init k (fun i -> i) in
  let positions = Array.init k (fun i -> (i, i + 1)) in
  let t =
    Placement.build ~identities ~positions ~weight:(fun ~v ~p ~q ->
        1.0 +. (float_of_int ((v + p + q) mod 5) /. 10.0))
  in
  let sigma = Placement.sample prng t in
  Alcotest.(check int) "fallback valid" k
    (List.length (List.sort_uniq compare (Array.to_list sigma)))

let test_placement_dp_with_zero_weights () =
  (* Class-compressed DP on a sparse-support instance must match the exact
     distribution over identity profiles. Two identities, two position
     classes, identity 1 forbidden at the first class: feasible tables are
     constrained. *)
  let identities = [| 0; 0; 1; 1 |] in
  let positions = [| (0, 9); (0, 9); (1, 9); (1, 9) |] in
  let weight ~v ~p ~q =
    ignore q;
    if v = 1 && p = 0 then 0.0 else float_of_int (1 + v + (2 * p))
  in
  let t = Placement.build ~identities ~positions ~weight in
  (* Identity-1 instances can only sit at class (1,9): exactly one feasible
     profile: [0;0;1;1]. *)
  let prng = Prng.create ~seed:41 in
  for _ = 1 to 50 do
    let sigma = Placement.sample_exact prng t in
    let profile = Array.map (fun i -> identities.(i)) sigma in
    Alcotest.(check bool) "forced profile" true (profile = [| 0; 0; 1; 1 |])
  done

let test_placement_dp_sparse_distribution () =
  (* A sparse instance with two feasible profiles; compare DP frequencies
     with the brute-force law. Identities: one 0, one 1; positions classes
     (0,9) and (1,9); weight matrix [ [2; 1]; [0; 3] ]: profiles
     (0 at class0, 1 at class1): 2*3 = 6; (0 at class1, 1 at class0):
     infeasible (w(1,class0) = 0). So again forced... make both feasible:
     weights [ [2; 1]; [4; 3] ]: profile A = 2*3 = 6, profile B = 1*4 = 4. *)
  let identities = [| 0; 1 |] in
  let positions = [| (0, 9); (1, 9) |] in
  let weight ~v ~p ~q =
    ignore q;
    match (v, p) with
    | 0, 0 -> 2.0
    | 0, 1 -> 1.0
    | 1, 0 -> 4.0
    | _ -> 3.0
  in
  let t = Placement.build ~identities ~positions ~weight in
  let prng = Prng.create ~seed:42 in
  let trials = 20_000 in
  let a = ref 0 in
  for _ = 1 to trials do
    let sigma = Placement.sample_exact prng t in
    if sigma.(0) = 0 then incr a
  done;
  let freq = float_of_int !a /. float_of_int trials in
  Alcotest.(check bool)
    (Printf.sprintf "P(profile A) %.3f ~ 0.6" freq)
    true
    (Float.abs (freq -. 0.6) < 0.015)

(* --- qcheck --- *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"ryser matches brute force" ~count:50
      (make Gen.(pair (int_range 1 5) (int_range 0 100_000)))
      (fun (k, seed) ->
        let prng = Prng.create ~seed in
        let w = random_weights prng k in
        Float.abs (Permanent.ryser w -. permanent_brute w) < 1e-7);
    Test.make ~name:"exact sampler returns permutations" ~count:100
      (make Gen.(pair (int_range 1 7) (int_range 0 100_000)))
      (fun (k, seed) ->
        let prng = Prng.create ~seed in
        let w = random_weights prng k in
        let sigma = Sampler.exact prng w in
        List.length (List.sort_uniq compare (Array.to_list sigma)) = k);
    Test.make ~name:"mcmc preserves permutation invariant" ~count:100
      (make Gen.(pair (int_range 2 10) (int_range 0 100_000)))
      (fun (k, seed) ->
        let prng = Prng.create ~seed in
        let w = random_weights prng k in
        let sigma = Sampler.mcmc prng w ~steps:200 in
        List.length (List.sort_uniq compare (Array.to_list sigma)) = k);
    Test.make ~name:"placement exact returns permutations" ~count:50
      (make Gen.(pair (int_range 2 12) (int_range 0 100_000)))
      (fun (k, seed) ->
        let prng = Prng.create ~seed in
        let identities = Array.init k (fun i -> i mod 3) in
        let positions = Array.init k (fun i -> (i mod 2, 7)) in
        let t =
          Placement.build ~identities ~positions ~weight:(fun ~v ~p ~q ->
              0.5 +. float_of_int ((v + (2 * p) + q) mod 7))
        in
        let sigma = Placement.sample_exact prng t in
        List.length (List.sort_uniq compare (Array.to_list sigma)) = k);
  ]

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest qcheck_tests in
  Alcotest.run "cc_matching"
    [
      ( "permanent",
        [
          Alcotest.test_case "known values" `Quick test_ryser_known_values;
          Alcotest.test_case "matches brute force" `Quick test_ryser_matches_brute_force;
          Alcotest.test_case "minor" `Quick test_minor;
          Alcotest.test_case "matching weight" `Quick test_matching_weight;
        ] );
      ( "samplers",
        [
          Alcotest.test_case "exact distribution" `Slow test_exact_sampler_distribution;
          Alcotest.test_case "skewed weights" `Quick test_exact_sampler_skewed_weights;
          Alcotest.test_case "mcmc distribution" `Slow test_mcmc_distribution;
          Alcotest.test_case "mcmc start" `Quick test_mcmc_zero_steps_is_uniform_start;
          Alcotest.test_case "auto dispatch" `Quick test_auto_dispatch;
          Alcotest.test_case "rejects bad weights" `Quick test_exact_rejects_bad_weights;
          Alcotest.test_case "sparse support exact" `Slow test_exact_handles_sparse_support;
          Alcotest.test_case "sparse support mcmc" `Slow test_mcmc_sparse_support_with_init;
        ] );
      ( "placement",
        [
          Alcotest.test_case "build" `Quick test_placement_build;
          Alcotest.test_case "valid matchings" `Quick test_placement_exact_is_valid_matching;
          Alcotest.test_case "matches generic exact" `Slow test_placement_matches_generic_exact;
          Alcotest.test_case "large instance" `Quick test_placement_large_instance;
          Alcotest.test_case "fallback to mcmc" `Quick test_placement_sample_fallback;
          Alcotest.test_case "zero-weight DP" `Quick test_placement_dp_with_zero_weights;
          Alcotest.test_case "sparse DP law" `Slow test_placement_dp_sparse_distribution;
        ] );
      ("properties", qsuite);
    ]
