(* Tests for Cc_apps: tree-union sparsifiers. *)

module Graph = Cc_graph.Graph
module Gen = Cc_graph.Gen
module Tree = Cc_graph.Tree
module Sparsifier = Cc_apps.Sparsifier
module Prng = Cc_util.Prng

let wilson g prng = Cc_walks.Wilson.sample_tree g prng

let test_union_is_connected_subgraph () =
  let prng = Prng.create ~seed:1 in
  let g = Gen.complete 12 in
  let h = Sparsifier.union prng wilson g ~trees:3 ~reweight:false in
  Alcotest.(check int) "same vertex count" 12 (Graph.n h);
  Alcotest.(check bool) "connected" true (Graph.is_connected h);
  List.iter
    (fun (u, v, _) ->
      Alcotest.(check bool) "subgraph of g" true (Graph.has_edge g u v))
    (Graph.edges h);
  (* At most 3(n-1) edges; at least n-1. *)
  Alcotest.(check bool) "edge count range" true
    (Graph.num_edges h >= 11 && Graph.num_edges h <= 33)

let test_single_tree_union_is_a_tree () =
  let prng = Prng.create ~seed:2 in
  let g = Gen.complete 8 in
  let h = Sparsifier.union prng wilson g ~trees:1 ~reweight:false in
  Alcotest.(check int) "n-1 edges" 7 (Graph.num_edges h)

let test_reweighted_union_unbiased () =
  (* E[L_H] = L_G for the reweighted estimator: average many unions and check
     edge weights converge to the originals. *)
  let prng = Prng.create ~seed:3 in
  let g = Gen.complete 6 in
  let trials = 400 in
  let acc = Hashtbl.create 32 in
  List.iter (fun (u, v, _) -> Hashtbl.add acc (u, v) 0.0) (Graph.edges g);
  for _ = 1 to trials do
    let h = Sparsifier.union prng wilson g ~trees:2 ~reweight:true in
    List.iter
      (fun (u, v, w) -> Hashtbl.replace acc (u, v) (w +. Hashtbl.find acc (u, v)))
      (Graph.edges h)
  done;
  List.iter
    (fun (u, v, w) ->
      let mean = Hashtbl.find acc (u, v) /. float_of_int trials in
      if Float.abs (mean -. w) > 0.25 then
        Alcotest.failf "edge (%d,%d): mean weight %.3f far from %.3f" u v mean w)
    (Graph.edges g)

let test_quality_improves_with_more_trees () =
  let prng = Prng.create ~seed:4 in
  let g = Gen.complete 16 in
  let spread t =
    let h = Sparsifier.union prng wilson g ~trees:t ~reweight:true in
    let q = Sparsifier.evaluate prng g h ~probes:200 in
    q.Sparsifier.rayleigh_max -. q.Sparsifier.rayleigh_min
  in
  let s2 = spread 2 and s16 = spread 16 in
  Alcotest.(check bool)
    (Printf.sprintf "spread shrinks: %.3f -> %.3f" s2 s16)
    true (s16 < s2)

let test_evaluate_self_is_exact () =
  let prng = Prng.create ~seed:5 in
  let g = Gen.grid ~rows:3 ~cols:4 in
  let q = Sparsifier.evaluate prng g g ~probes:50 in
  Alcotest.(check (float 1e-9)) "cut min" 1.0 q.Sparsifier.cut_ratio_min;
  Alcotest.(check (float 1e-9)) "cut max" 1.0 q.Sparsifier.cut_ratio_max;
  Alcotest.(check (float 1e-9)) "rayleigh min" 1.0 q.Sparsifier.rayleigh_min;
  Alcotest.(check int) "edges kept" (Graph.num_edges g) q.Sparsifier.edges_kept

let test_evaluate_rejects_mismatched () =
  let prng = Prng.create ~seed:6 in
  Alcotest.check_raises "vertex sets"
    (Invalid_argument "Sparsifier.evaluate: vertex sets differ") (fun () ->
      ignore (Sparsifier.evaluate prng (Gen.cycle 4) (Gen.cycle 5) ~probes:5))

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"unions are connected spanning subgraphs" ~count:30
      (make Gen.(pair (int_range 5 12) (int_range 0 10_000)))
      (fun (n, seed) ->
        let prng = Prng.create ~seed in
        let g = Cc_graph.Gen.random_connected prng ~n ~extra_edges:n in
        let h = Sparsifier.union prng wilson g ~trees:2 ~reweight:false in
        Graph.is_connected h
        && List.for_all (fun (u, v, _) -> Graph.has_edge g u v) (Graph.edges h));
    Test.make ~name:"cut ratios bracket 1 for reweighted unions" ~count:20
      (make Gen.(pair (int_range 6 12) (int_range 0 10_000)))
      (fun (n, seed) ->
        let prng = Prng.create ~seed in
        let g = Cc_graph.Gen.complete n in
        let h = Sparsifier.union prng wilson g ~trees:4 ~reweight:true in
        let q = Sparsifier.evaluate prng g h ~probes:50 in
        q.Sparsifier.cut_ratio_min <= 1.0 +. 1e-9
        && q.Sparsifier.cut_ratio_max >= 1.0 -. 1e-9);
  ]

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest qcheck_tests in
  Alcotest.run "cc_apps"
    [
      ( "sparsifier",
        [
          Alcotest.test_case "union structure" `Quick test_union_is_connected_subgraph;
          Alcotest.test_case "single tree" `Quick test_single_tree_union_is_a_tree;
          Alcotest.test_case "unbiased reweighting" `Slow test_reweighted_union_unbiased;
          Alcotest.test_case "quality vs trees" `Slow test_quality_improves_with_more_trees;
          Alcotest.test_case "self evaluation" `Quick test_evaluate_self_is_exact;
          Alcotest.test_case "input validation" `Quick test_evaluate_rejects_mismatched;
        ] );
      ("properties", qsuite);
    ]
