(* Tests for Cc_schur: the Schur complement graph (Definition 1) and the
   shortcut graph (Definition 2), exact and via the paper's powering route
   (Corollaries 3-4), the Figure 2 worked example, and the Algorithm 4
   first-visit-edge resampling. *)

module Graph = Cc_graph.Graph
module Gen = Cc_graph.Gen
module Walk = Cc_walks.Walk
module Schur = Cc_schur.Schur
module Shortcut = Cc_schur.Shortcut
module Mat = Cc_linalg.Mat
module Net = Cc_clique.Net
module Matmul = Cc_clique.Matmul
module Prng = Cc_util.Prng
module Dist = Cc_util.Dist

let check_float ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* --- Figure 2 (bench E8's assertion, as a unit test) --- *)

let test_figure2_schur () =
  (* S = {A=0, B=1, D=3}: the Schur walk is uniform over the other two
     S-vertices. *)
  let g = Gen.figure2 () in
  let s = [| 0; 1; 3 |] in
  let t = Schur.transition_exact g ~s in
  for i = 0 to 2 do
    check_float ~eps:1e-9 "diag" 0.0 (Mat.get t i i);
    for j = 0 to 2 do
      if i <> j then check_float ~eps:1e-9 "uniform" 0.5 (Mat.get t i j)
    done
  done

let test_figure2_shortcut () =
  (* Every walk enters S through hub C=2: Q[u, C] = 1 for all u. *)
  let g = Gen.figure2 () in
  let in_s = [| true; true; false; true |] in
  let q = Shortcut.exact g ~in_s in
  for u = 0 to 3 do
    check_float ~eps:1e-9 (Printf.sprintf "Q[%d,C]" u) 1.0 (Mat.get q u 2);
    for v = 0 to 3 do
      if v <> 2 then check_float ~eps:1e-9 "zero elsewhere" 0.0 (Mat.get q u v)
    done
  done

(* --- Schur complement structure --- *)

let test_schur_is_stochastic () =
  let prng = Prng.create ~seed:1 in
  let g = Gen.random_connected prng ~n:10 ~extra_edges:8 in
  let s = [| 0; 2; 5; 7; 9 |] in
  let t = Schur.transition_exact g ~s in
  Alcotest.(check bool) "stochastic" true (Mat.is_row_stochastic ~tol:1e-7 t)

let test_schur_keep_all_is_identity () =
  let g = Gen.cycle 6 in
  let s = Array.init 6 (fun i -> i) in
  let t = Schur.transition_exact g ~s in
  Alcotest.(check bool) "same transition" true
    (Mat.equal ~tol:1e-9 t (Graph.transition_matrix g))

let test_schur_path_elimination () =
  (* Path 0-1-2 with S = {0,2}: eliminating the middle vertex yields a single
     edge; the Schur walk goes deterministically to the other endpoint. *)
  let g = Gen.path 3 in
  let t = Schur.transition_exact g ~s:[| 0; 2 |] in
  check_float "0->2" 1.0 (Mat.get t 0 1);
  check_float "2->0" 1.0 (Mat.get t 1 0)

let test_schur_graph_weights_path () =
  (* Series resistors: eliminating the middle of a path of two unit edges
     gives a single edge of weight 1/2 (conductances in series). *)
  let g = Gen.path 3 in
  let sg = Schur.graph_exact g ~s:[| 0; 2 |] in
  Alcotest.(check int) "one edge" 1 (Graph.num_edges sg);
  check_float ~eps:1e-9 "weight 1/2" 0.5 (Graph.edge_weight sg 0 1)

(* The central semantic property: a transition of the walk on SCHUR(G,S)
   from u has the law of the first vertex in S \ {u} that a walk on G from u
   visits (the paper's implicit definition of the matrix S, which has no
   self-loops — so the filtered G-walk collapses consecutive duplicates). *)
let schur_walk_equivalence ~seed ~n ~extra ~s_size ~steps ~trials =
  let prng = Prng.create ~seed in
  let g = Gen.random_connected prng ~n ~extra_edges:extra in
  let s = Prng.subset prng ~size:s_size (Array.init n (fun i -> i)) in
  Array.sort compare s;
  let sg = Schur.graph_exact g ~s in
  let pos_of = Hashtbl.create s_size in
  Array.iteri (fun i v -> Hashtbl.add pos_of v i) s;
  let in_s = Schur.members ~n ~s in
  (* Compare the distribution of the position after [steps] S-transitions. *)
  let counts_schur = Array.make s_size 0 in
  let counts_filtered = Array.make s_size 0 in
  for _ = 1 to trials do
    (* Walk directly on the Schur graph. *)
    let v = ref 0 in
    for _ = 1 to steps do
      v := Walk.step sg prng !v
    done;
    counts_schur.(!v) <- counts_schur.(!v) + 1;
    (* Walk on G; one Schur transition = first arrival at an S vertex
       different from the current S position. *)
    let u = ref s.(0) in
    for _ = 1 to steps do
      let from = !u in
      let c = ref from in
      let continue = ref true in
      while !continue do
        c := Walk.step g prng !c;
        if in_s.(!c) && !c <> from then continue := false
      done;
      u := !c
    done;
    counts_filtered.(Hashtbl.find pos_of !u) <- counts_filtered.(Hashtbl.find pos_of !u) + 1
  done;
  Dist.tv (Dist.empirical counts_schur) (Dist.empirical counts_filtered)

let test_schur_walk_equivalence () =
  let tv = schur_walk_equivalence ~seed:2 ~n:9 ~extra:6 ~s_size:4 ~steps:3 ~trials:20_000 in
  Alcotest.(check bool) (Printf.sprintf "walk tv %.4f" tv) true (tv < 0.025)

let test_schur_quotient_property_graphs () =
  (* Eliminating in two stages equals eliminating at once, at the graph
     level: SCHUR(SCHUR(G, S1), S2-relabeled) = SCHUR(G, S2). *)
  let prng = Prng.create ~seed:40 in
  let g = Gen.random_connected prng ~n:10 ~extra_edges:8 in
  let s1 = [| 0; 2; 3; 5; 7; 9 |] in
  let s2 = [| 0; 3; 7; 9 |] in
  let direct = Schur.transition_exact g ~s:s2 in
  let stage1 = Schur.graph_exact g ~s:s1 in
  (* Positions of s2's vertices inside s1's ordering. *)
  let pos v =
    let rec go i = if s1.(i) = v then i else go (i + 1) in
    go 0
  in
  let staged = Schur.transition_exact stage1 ~s:(Array.map pos s2) in
  Alcotest.(check bool) "quotient property" true
    (Mat.max_abs_diff direct staged < 1e-7)

let test_schur_weighted_graph () =
  (* The Schur machinery must respect edge weights end to end. *)
  let g = Graph.of_edges ~n:4 [ (0, 1, 2.0); (1, 2, 1.0); (2, 3, 3.0); (3, 0, 1.0) ] in
  let t = Schur.transition_exact g ~s:[| 0; 2 |] in
  Alcotest.(check bool) "stochastic" true (Mat.is_row_stochastic ~tol:1e-9 t);
  (* Both S-vertices always reach the other one first (the only S vertex
     besides themselves). *)
  Alcotest.(check (float 1e-9)) "forced transition" 1.0 (Mat.get t 0 1)

(* --- Shortcut structure --- *)

let test_shortcut_rows_stochastic () =
  let prng = Prng.create ~seed:3 in
  let g = Gen.random_connected prng ~n:8 ~extra_edges:6 in
  let in_s = Array.init 8 (fun i -> i mod 2 = 0) in
  let q = Shortcut.exact g ~in_s in
  Alcotest.(check bool) "rows sum to 1" true (Mat.is_row_stochastic ~tol:1e-7 q)

let test_shortcut_empirical () =
  (* Monte-Carlo the definition: from u, record the vertex visited just
     before the first S-visit; compare with Q's row. *)
  let prng = Prng.create ~seed:4 in
  let g = Gen.random_connected prng ~n:8 ~extra_edges:5 in
  let in_s = [| false; true; false; true; false; false; true; false |] in
  let q = Shortcut.exact g ~in_s in
  let u = 0 in
  let counts = Array.make 8 0 in
  let trials = 30_000 in
  for _ = 1 to trials do
    let prev = ref u and current = ref u and stop = ref false in
    while not !stop do
      let next = Walk.step g prng !current in
      prev := !current;
      current := next;
      if in_s.(next) then stop := true
    done;
    counts.(!prev) <- counts.(!prev) + 1
  done;
  let tv = Dist.tv_counts ~counts (Dist.of_weights (Mat.row q u)) in
  Alcotest.(check bool) (Printf.sprintf "empirical tv %.4f" tv) true (tv < 0.015)

let test_shortcut_approx_converges () =
  let prng = Prng.create ~seed:5 in
  let g = Gen.random_connected prng ~n:8 ~extra_edges:5 in
  let in_s = Array.init 8 (fun i -> i < 3) in
  let exact = Shortcut.exact g ~in_s in
  let errs =
    List.map
      (fun k ->
        Mat.max_subtractive_error ~exact ~approx:(Shortcut.approx g ~in_s ~k))
      [ 4; 16; 64; 256 ]
  in
  (* Error decreases and becomes tiny; also one-sided (under-approximation)
     by construction of the absorbing chain. *)
  let rec decreasing = function
    | a :: (b :: _ as rest) -> a >= b -. 1e-12 && decreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "error decreasing" true (decreasing errs);
  Alcotest.(check bool)
    (Printf.sprintf "final error %.3e small" (List.nth errs 3))
    true
    (List.nth errs 3 < 1e-6)

let test_shortcut_approx_books_rounds () =
  let prng = Prng.create ~seed:6 in
  let g = Gen.random_connected prng ~n:8 ~extra_edges:4 in
  let in_s = Array.init 8 (fun i -> i < 4) in
  let net = Net.create ~n:8 in
  ignore (Shortcut.approx ~net:(net, Matmul.charged ()) g ~in_s ~k:64);
  Alcotest.(check bool) "rounds booked" true (Net.rounds net > 0.0)

let test_schur_approx_matches_exact () =
  let prng = Prng.create ~seed:7 in
  let g = Gen.random_connected prng ~n:9 ~extra_edges:6 in
  let s = [| 1; 3; 4; 8 |] in
  let exact = Schur.transition_exact g ~s in
  let approx = Schur.approx g ~s ~k:4096 in
  let err = Mat.max_abs_diff exact approx in
  Alcotest.(check bool) (Printf.sprintf "max err %.3e" err) true (err < 1e-6)

let test_schur_approx_with_rounding () =
  let prng = Prng.create ~seed:8 in
  let g = Gen.random_connected prng ~n:8 ~extra_edges:5 in
  let s = [| 0; 2; 6 |] in
  let exact = Schur.transition_exact g ~s in
  let approx = Schur.approx ~bits:40 g ~s ~k:1024 in
  let err = Mat.max_abs_diff exact approx in
  Alcotest.(check bool) (Printf.sprintf "rounded err %.3e" err) true (err < 1e-4)

(* --- Algorithm 4: first-visit edge resampling --- *)

let test_first_visit_weights_empirical () =
  (* Ground truth by simulation: walk from w_prev on G until first visit to
     S \ {w_prev}; given that vertex is [target], histogram the predecessor.
     Compare against the Algorithm 4 weights Q[prev,u]/deg_S(u) restricted to
     neighbors of target. *)
  let prng = Prng.create ~seed:9 in
  let g = Gen.random_connected prng ~n:8 ~extra_edges:6 in
  let in_s = [| true; false; true; false; true; false; false; true |] in
  let prev = 0 in
  (* Pick target: an S vertex != prev. *)
  let target = 4 in
  let q = Shortcut.exact g ~in_s in
  let weights = Shortcut.first_visit_weights g q ~in_s ~prev ~target in
  let expected =
    Dist.of_weights (Array.map snd weights)
  in
  let nbr_index = Hashtbl.create 8 in
  Array.iteri (fun i (u, _) -> Hashtbl.add nbr_index u i) weights;
  let counts = Array.make (Array.length weights) 0 in
  let hits = ref 0 in
  let trials = 200_000 in
  for _ = 1 to trials do
    (* Walk until first visit to an S vertex other than prev. *)
    let p = ref prev and c = ref prev and stop = ref false in
    while not !stop do
      let next = Walk.step g prng !c in
      p := !c;
      c := next;
      if in_s.(next) && next <> prev then stop := true
    done;
    if !c = target then begin
      incr hits;
      let i = Hashtbl.find nbr_index !p in
      counts.(i) <- counts.(i) + 1
    end
  done;
  Alcotest.(check bool) "enough conditioning hits" true (!hits > 5000);
  let tv = Dist.tv_counts ~counts expected in
  Alcotest.(check bool) (Printf.sprintf "algorithm 4 tv %.4f" tv) true (tv < 0.02)

(* --- qcheck --- *)

let qcheck_tests =
  let open QCheck in
  let params = make Gen.(pair (int_range 5 10) (int_range 0 10_000)) in
  [
    Test.make ~name:"schur transition is stochastic" ~count:50 params
      (fun (n, seed) ->
        let prng = Prng.create ~seed in
        let g = Cc_graph.Gen.random_connected prng ~n ~extra_edges:n in
        let size = max 2 (n / 2) in
        let s = Prng.subset prng ~size (Array.init n (fun i -> i)) in
        Array.sort compare s;
        Mat.is_row_stochastic ~tol:1e-6 (Schur.transition_exact g ~s));
    Test.make ~name:"schur graph is connected when G is" ~count:50 params
      (fun (n, seed) ->
        let prng = Prng.create ~seed in
        let g = Cc_graph.Gen.random_connected prng ~n ~extra_edges:n in
        let size = max 2 (n / 2) in
        let s = Prng.subset prng ~size (Array.init n (fun i -> i)) in
        Array.sort compare s;
        Graph.is_connected (Schur.graph_exact g ~s));
    Test.make ~name:"shortcut rows are stochastic" ~count:50 params
      (fun (n, seed) ->
        let prng = Prng.create ~seed in
        let g = Cc_graph.Gen.random_connected prng ~n ~extra_edges:n in
        let in_s = Array.init n (fun i -> i mod 2 = 0) in
        Mat.is_row_stochastic ~tol:1e-6 (Shortcut.exact g ~in_s));
    Test.make ~name:"shortcut approx underapproximates exact" ~count:30 params
      (fun (n, seed) ->
        let prng = Prng.create ~seed in
        let g = Cc_graph.Gen.random_connected prng ~n ~extra_edges:2 in
        let in_s = Array.init n (fun i -> i < max 1 (n / 3)) in
        let exact = Shortcut.exact g ~in_s in
        let approx = Shortcut.approx g ~in_s ~k:32 in
        (* approx <= exact entrywise up to numeric dust *)
        Mat.max_subtractive_error ~exact:approx ~approx:exact < 1e-9);
    Test.make ~name:"schur via shortcut matches block elimination" ~count:20
      params (fun (n, seed) ->
        let prng = Prng.create ~seed in
        let g = Cc_graph.Gen.random_connected prng ~n ~extra_edges:n in
        let size = max 2 (n / 2) in
        let s = Prng.subset prng ~size (Array.init n (fun i -> i)) in
        Array.sort compare s;
        let exact = Schur.transition_exact g ~s in
        let via = Schur.transition_via_shortcut g (Shortcut.exact g ~in_s:(Schur.members ~n ~s)) ~s in
        Mat.max_abs_diff exact via < 1e-7);
  ]

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest qcheck_tests in
  Alcotest.run "cc_schur"
    [
      ( "figure2",
        [
          Alcotest.test_case "schur transitions" `Quick test_figure2_schur;
          Alcotest.test_case "shortcut transitions" `Quick test_figure2_shortcut;
        ] );
      ( "schur",
        [
          Alcotest.test_case "stochastic" `Quick test_schur_is_stochastic;
          Alcotest.test_case "keep all" `Quick test_schur_keep_all_is_identity;
          Alcotest.test_case "path elimination" `Quick test_schur_path_elimination;
          Alcotest.test_case "series weights" `Quick test_schur_graph_weights_path;
          Alcotest.test_case "walk equivalence" `Slow test_schur_walk_equivalence;
          Alcotest.test_case "quotient property (graphs)" `Quick test_schur_quotient_property_graphs;
          Alcotest.test_case "weighted Schur" `Quick test_schur_weighted_graph;
        ] );
      ( "shortcut",
        [
          Alcotest.test_case "stochastic" `Quick test_shortcut_rows_stochastic;
          Alcotest.test_case "empirical law" `Slow test_shortcut_empirical;
          Alcotest.test_case "powering converges" `Quick test_shortcut_approx_converges;
          Alcotest.test_case "books rounds" `Quick test_shortcut_approx_books_rounds;
          Alcotest.test_case "schur approx" `Quick test_schur_approx_matches_exact;
          Alcotest.test_case "schur approx rounded" `Quick test_schur_approx_with_rounding;
        ] );
      ( "algorithm4",
        [ Alcotest.test_case "first-visit edge law" `Slow test_first_visit_weights_empirical ] );
      ("properties", qsuite);
    ]
