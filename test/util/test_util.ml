(* Tests for Cc_util: PRNG determinism, k-wise hashing, distributions,
   statistics, table rendering. *)

module Prng = Cc_util.Prng
module Kwise_hash = Cc_util.Kwise_hash
module Dist = Cc_util.Dist
module Stats = Cc_util.Stats
module Table = Cc_util.Table

let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let check_float ?(eps = 1e-9) msg expected actual =
  if not (feq ~eps expected actual) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* --- Prng --- *)

let test_prng_deterministic () =
  let a = Prng.create ~seed:42 and b = Prng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Prng.int a 1000) (Prng.int b 1000)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  let xa = List.init 20 (fun _ -> Prng.int a 1_000_000) in
  let xb = List.init 20 (fun _ -> Prng.int b 1_000_000) in
  Alcotest.(check bool) "different seeds differ" true (xa <> xb)

let test_prng_split_independent () =
  let parent = Prng.create ~seed:7 in
  let child1 = Prng.split parent in
  let child2 = Prng.split parent in
  let x1 = List.init 20 (fun _ -> Prng.int child1 1_000_000) in
  let x2 = List.init 20 (fun _ -> Prng.int child2 1_000_000) in
  Alcotest.(check bool) "split streams differ" true (x1 <> x2)

let test_prng_int_range () =
  let prng = Prng.create ~seed:3 in
  for _ = 1 to 1000 do
    let x = Prng.int prng 7 in
    if x < 0 || x >= 7 then Alcotest.fail "Prng.int out of range"
  done

let test_prng_shuffle_is_permutation () =
  let prng = Prng.create ~seed:11 in
  let arr = Array.init 50 (fun i -> i) in
  Prng.shuffle prng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check bool) "permutation" true (sorted = Array.init 50 (fun i -> i))

let test_prng_subset () =
  let prng = Prng.create ~seed:13 in
  let arr = Array.init 30 (fun i -> i) in
  let sub = Prng.subset prng ~size:10 arr in
  Alcotest.(check int) "size" 10 (Array.length sub);
  let module IS = Set.Make (Int) in
  Alcotest.(check int) "distinct" 10 (IS.cardinal (IS.of_list (Array.to_list sub)))

let test_prng_bits () =
  let prng = Prng.create ~seed:17 in
  for _ = 1 to 200 do
    let x = Prng.bits prng ~width:10 in
    if x < 0 || x >= 1024 then Alcotest.fail "bits out of range"
  done

(* Splitting is deterministic: two parents seeded identically yield, split
   for split, children with identical streams — the property the simulator
   relies on to give every machine a reproducible private stream. *)
let test_prng_split_deterministic () =
  let a = Prng.create ~seed:23 and b = Prng.create ~seed:23 in
  for round = 1 to 5 do
    let ca = Prng.split a and cb = Prng.split b in
    let xa = List.init 50 (fun _ -> Prng.int ca 1_000_000) in
    let xb = List.init 50 (fun _ -> Prng.int cb 1_000_000) in
    Alcotest.(check (list int))
      (Printf.sprintf "split %d reproducible" round)
      xa xb
  done

let test_prng_split_child_differs_from_parent () =
  let parent = Prng.create ~seed:29 in
  let child = Prng.split parent in
  let xp = List.init 50 (fun _ -> Prng.int parent 1_000_000) in
  let xc = List.init 50 (fun _ -> Prng.int child 1_000_000) in
  Alcotest.(check bool) "child stream is not the parent's" true (xp <> xc)

(* A split must not disturb the parent's own stream relative to a twin that
   also split once: the draws after the split stay aligned. *)
let test_prng_parent_stream_after_split () =
  let a = Prng.create ~seed:31 and b = Prng.create ~seed:31 in
  ignore (Prng.split a);
  ignore (Prng.split b);
  for _ = 1 to 100 do
    Alcotest.(check int) "parents stay in lockstep" (Prng.int a 1000)
      (Prng.int b 1000)
  done

(* [streams] must split in index order off the parent — the engine's
   determinism contract keys per-machine draws to that order. *)
let test_prng_streams_match_manual_splits () =
  let a = Prng.create ~seed:37 and b = Prng.create ~seed:37 in
  let via_helper = Prng.streams a 8 in
  let manual = Array.init 8 (fun _ -> Prng.split b) in
  Array.iteri
    (fun i s ->
      let xs = List.init 20 (fun _ -> Prng.int s 1_000_000) in
      let ys = List.init 20 (fun _ -> Prng.int manual.(i) 1_000_000) in
      Alcotest.(check (list int))
        (Printf.sprintf "stream %d matches manual split" i)
        ys xs)
    via_helper

(* --- Kwise_hash --- *)

let test_hash_in_range () =
  let prng = Prng.create ~seed:5 in
  let h = Kwise_hash.create prng ~independence:8 ~domain:10_000 ~range:64 in
  for x = 0 to 999 do
    let v = Kwise_hash.apply h x in
    if v < 0 || v >= 64 then Alcotest.fail "hash out of range"
  done

let test_hash_deterministic () =
  let prng = Prng.create ~seed:5 in
  let h = Kwise_hash.create prng ~independence:8 ~domain:10_000 ~range:64 in
  Alcotest.(check int) "same input same output" (Kwise_hash.apply h 123)
    (Kwise_hash.apply h 123)

let test_hash_roughly_uniform () =
  (* Chi-square against uniform over 16 buckets with 16k inputs: statistic
     should be far below a catastrophic threshold. *)
  let prng = Prng.create ~seed:23 in
  let h = Kwise_hash.create prng ~independence:16 ~domain:100_000 ~range:16 in
  let counts = Array.make 16 0 in
  for x = 0 to 16_383 do
    let b = Kwise_hash.apply h x in
    counts.(b) <- counts.(b) + 1
  done;
  let stat = Dist.chi_square_stat ~counts (Dist.uniform 16) in
  (* 15 dof; mean 15, generous bound. *)
  Alcotest.(check bool)
    (Printf.sprintf "chi-square %.1f reasonable" stat)
    true (stat < 60.0)

let test_hash_description_bits () =
  let prng = Prng.create ~seed:5 in
  let h = Kwise_hash.create prng ~independence:10 ~domain:100 ~range:10 in
  Alcotest.(check int) "t * 31 bits" 310 (Kwise_hash.description_bits h)

let test_hash_rejects_bad_arguments () =
  let prng = Prng.create ~seed:5 in
  let expect_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s accepted" name
  in
  expect_invalid "range = 0" (fun () ->
      Kwise_hash.create prng ~independence:4 ~domain:100 ~range:0);
  expect_invalid "range < 0" (fun () ->
      Kwise_hash.create prng ~independence:4 ~domain:100 ~range:(-3));
  expect_invalid "independence = 0" (fun () ->
      Kwise_hash.create prng ~independence:0 ~domain:100 ~range:10);
  expect_invalid "domain = 0" (fun () ->
      Kwise_hash.create prng ~independence:4 ~domain:0 ~range:10);
  expect_invalid "domain >= field" (fun () ->
      Kwise_hash.create prng ~independence:4 ~domain:Kwise_hash.field_prime
        ~range:10);
  (* range > domain is explicitly allowed. *)
  ignore (Kwise_hash.create prng ~independence:4 ~domain:100 ~range:1_000)

let test_hash_pairwise_collision_rate () =
  (* For a pairwise-independent family, Pr[h(x) = h(y)] = 1/range. *)
  let prng = Prng.create ~seed:29 in
  let range = 32 in
  let trials = 3000 in
  let collisions = ref 0 in
  for t = 0 to trials - 1 do
    let h = Kwise_hash.create prng ~independence:2 ~domain:10_000 ~range in
    if Kwise_hash.apply h (2 * t) = Kwise_hash.apply h ((2 * t) + 1) then
      incr collisions
  done;
  let rate = float_of_int !collisions /. float_of_int trials in
  let expected = 1.0 /. float_of_int range in
  Alcotest.(check bool)
    (Printf.sprintf "collision rate %.4f close to %.4f" rate expected)
    true
    (Float.abs (rate -. expected) < 4.0 *. sqrt (expected /. float_of_int trials) +. 0.01)

(* --- Dist --- *)

let test_dist_normalization () =
  let d = Dist.of_weights [| 1.0; 3.0; 4.0 |] in
  check_float "p0" 0.125 (Dist.prob d 0);
  check_float "p1" 0.375 (Dist.prob d 1);
  check_float "p2" 0.5 (Dist.prob d 2)

let test_dist_sample_frequencies () =
  let prng = Prng.create ~seed:101 in
  let d = Dist.of_weights [| 1.0; 2.0; 7.0 |] in
  let counts = Array.make 3 0 in
  let trials = 50_000 in
  for _ = 1 to trials do
    let i = Dist.sample d prng in
    counts.(i) <- counts.(i) + 1
  done;
  let tv = Dist.tv_counts ~counts d in
  Alcotest.(check bool) (Printf.sprintf "tv %.4f small" tv) true (tv < 0.01)

let test_dist_sample_weights_matches () =
  let prng = Prng.create ~seed:103 in
  let w = [| 5.0; 1.0; 4.0 |] in
  let counts = Array.make 3 0 in
  let trials = 50_000 in
  for _ = 1 to trials do
    let i = Dist.sample_weights w prng in
    counts.(i) <- counts.(i) + 1
  done;
  let tv = Dist.tv_counts ~counts (Dist.of_weights w) in
  Alcotest.(check bool) (Printf.sprintf "tv %.4f small" tv) true (tv < 0.01)

let test_alias_matches_cdf () =
  let prng = Prng.create ~seed:107 in
  let d = Dist.of_weights [| 0.1; 0.2; 0.3; 0.4; 1.0; 2.0 |] in
  let a = Dist.alias_of d in
  let counts = Array.make 6 0 in
  let trials = 60_000 in
  for _ = 1 to trials do
    let i = Dist.alias_sample a prng in
    counts.(i) <- counts.(i) + 1
  done;
  let tv = Dist.tv_counts ~counts d in
  Alcotest.(check bool) (Printf.sprintf "alias tv %.4f small" tv) true (tv < 0.01)

let test_tv_distance () =
  let a = Dist.of_weights [| 1.0; 1.0 |] in
  let b = Dist.of_weights [| 1.0; 3.0 |] in
  check_float "tv" 0.25 (Dist.tv a b);
  check_float "tv self" 0.0 (Dist.tv a a)

let test_point_dist () =
  let d = Dist.point ~support_size:4 2 in
  check_float "mass" 1.0 (Dist.prob d 2);
  check_float "elsewhere" 0.0 (Dist.prob d 0)

let test_kl_properties () =
  let a = Dist.of_weights [| 1.0; 1.0 |] in
  check_float "kl self" 0.0 (Dist.kl a a);
  let b = Dist.point ~support_size:2 0 in
  Alcotest.(check bool) "kl infinite" true (Dist.kl a b = infinity)

(* The zero-mass contract, both degenerate directions: a-mass where b has
   none is +infinity (never NaN); b-mass where a has none contributes 0. *)
let test_kl_zero_mass () =
  let point = Dist.point ~support_size:3 1 in
  let broad = Dist.of_weights [| 1.0; 2.0; 1.0 |] in
  Alcotest.(check bool) "broad || point = inf" true
    (Dist.kl broad point = infinity);
  Alcotest.(check bool) "no NaN in the infinite direction" false
    (Float.is_nan (Dist.kl broad point));
  check_float ~eps:1e-12 "point || broad = -ln q1"
    (-.Float.log 0.5) (Dist.kl point broad);
  check_float "point || point self" 0.0 (Dist.kl point point);
  Alcotest.check_raises "support mismatch"
    (Invalid_argument "Dist: support sizes differ") (fun () ->
      ignore (Dist.kl point (Dist.uniform 4)))

let test_dist_rejects_bad_weights () =
  Alcotest.check_raises "negative" (Invalid_argument "Dist: weights must be finite and nonnegative")
    (fun () -> ignore (Dist.of_weights [| 1.0; -1.0 |]));
  Alcotest.check_raises "all zero" (Invalid_argument "Dist.of_weights: all weights are zero")
    (fun () -> ignore (Dist.of_weights [| 0.0; 0.0 |]))

(* --- Stats --- *)

let test_stats_summary () =
  let s = Stats.summarize [| 1.0; 2.0; 3.0; 4.0 |] in
  check_float "mean" 2.5 s.Stats.mean;
  check_float "median" 2.5 s.Stats.median;
  check_float "min" 1.0 s.Stats.min;
  check_float "max" 4.0 s.Stats.max

let test_linear_fit () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  let ys = [| 3.0; 5.0; 7.0; 9.0 |] in
  let slope, intercept = Stats.linear_fit xs ys in
  check_float "slope" 2.0 slope;
  check_float "intercept" 1.0 intercept

let test_fit_power () =
  let xs = [| 2.0; 4.0; 8.0; 16.0; 32.0 |] in
  let ys = Array.map (fun x -> 3.0 *. (x ** 1.5)) xs in
  let e, c = Stats.fit_power xs ys in
  check_float ~eps:1e-6 "exponent" 1.5 e;
  check_float ~eps:1e-6 "coefficient" 3.0 c

let test_quantile () =
  let xs = [| 5.0; 1.0; 3.0 |] in
  check_float "q0" 1.0 (Stats.quantile 0.0 xs);
  check_float "q50" 3.0 (Stats.quantile 0.5 xs);
  check_float "q100" 5.0 (Stats.quantile 1.0 xs)

let test_r_squared_perfect () =
  let xs = [| 1.0; 2.0; 3.0 |] and ys = [| 2.0; 4.0; 6.0 |] in
  let fit = Stats.linear_fit xs ys in
  check_float "r2" 1.0 (Stats.r_squared xs ys fit)

let test_stats_spread () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  (* Sample (n-1) convention. *)
  check_float ~eps:1e-12 "variance" (5.0 /. 3.0) (Stats.variance xs);
  check_float ~eps:1e-12 "stddev" (sqrt (5.0 /. 3.0)) (Stats.stddev xs);
  check_float "single point variance" 0.0 (Stats.variance [| 7.0 |]);
  let s = Stats.summarize xs in
  check_float ~eps:1e-12 "summary stddev agrees" (Stats.stddev xs) s.Stats.stddev;
  Alcotest.(check int) "count" 4 s.Stats.count

let test_stats_errors () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Stats.linear_fit: length mismatch") (fun () ->
      ignore (Stats.linear_fit [| 1.0; 2.0 |] [| 1.0 |]));
  Alcotest.check_raises "too few points"
    (Invalid_argument "Stats.linear_fit: need at least two points") (fun () ->
      ignore (Stats.linear_fit [| 1.0 |] [| 1.0 |]));
  Alcotest.check_raises "quantile out of range"
    (Invalid_argument "Stats.quantile: q out of range") (fun () ->
      ignore (Stats.quantile 1.5 [| 1.0 |]))

let test_stats_empty_inputs () =
  (* Every summary function rejects [||] by raising, never by returning
     NaN (see stats.mli, "Edge cases"). *)
  Alcotest.check_raises "mean" (Invalid_argument "Stats.mean: empty input")
    (fun () -> ignore (Stats.mean [||]));
  Alcotest.check_raises "variance"
    (Invalid_argument "Stats.variance: empty input") (fun () ->
      ignore (Stats.variance [||]));
  Alcotest.check_raises "stddev" (Invalid_argument "Stats.stddev: empty input")
    (fun () -> ignore (Stats.stddev [||]));
  Alcotest.check_raises "quantile"
    (Invalid_argument "Stats.quantile: empty input") (fun () ->
      ignore (Stats.quantile 0.5 [||]));
  Alcotest.check_raises "summarize"
    (Invalid_argument "Stats.summarize: empty input") (fun () ->
      ignore (Stats.summarize [||]))

let test_stats_singleton () =
  let x = 7.25 in
  check_float "mean" x (Stats.mean [| x |]);
  check_float "variance" 0.0 (Stats.variance [| x |]);
  check_float "stddev" 0.0 (Stats.stddev [| x |]);
  check_float "q0" x (Stats.quantile 0.0 [| x |]);
  check_float "q50" x (Stats.quantile 0.5 [| x |]);
  check_float "q100" x (Stats.quantile 1.0 [| x |]);
  let s = Stats.summarize [| x |] in
  Alcotest.(check int) "count" 1 s.Stats.count;
  check_float "summary mean" x s.Stats.mean;
  check_float "summary stddev" 0.0 s.Stats.stddev;
  check_float "summary min" x s.Stats.min;
  check_float "summary max" x s.Stats.max;
  check_float "summary median" x s.Stats.median

(* --- Table --- *)

let test_table_render () =
  let t = Table.create ~title:"demo" ~columns:[ "a"; "bb" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_row t [ "333"; "4" ];
  let s = Table.render t in
  Alcotest.(check bool) "contains title" true
    (String.length s > 0 && String.sub s 0 4 = "demo");
  Alcotest.(check bool) "contains cell" true
    (contains_substring s "333")

and test_table_row_mismatch () =
  let t = Table.create ~title:"demo" ~columns:[ "a"; "b" ] in
  Alcotest.check_raises "bad row"
    (Invalid_argument "Table.add_row: cell count does not match columns")
    (fun () -> Table.add_row t [ "1" ])

let test_table_csv () =
  let t = Table.create ~title:"t" ~columns:[ "x" ] in
  Table.add_row t [ "a,b" ];
  let csv = Table.to_csv t in
  Alcotest.(check bool) "escaped" true (contains_substring csv "\"a,b\"")

(* Every border and row line of a rendered table must have the same width
   regardless of how ragged the cell contents are. *)
let test_table_alignment () =
  let t = Table.create ~title:"ragged" ~columns:[ "id"; "value"; "note" ] in
  Table.add_row t [ "1"; "3.14159"; "short" ];
  Table.add_row t [ "1024"; "0"; "a considerably longer annotation" ];
  Table.add_row t [ ""; "-7"; "x" ];
  let lines =
    Table.render t |> String.split_on_char '\n'
    |> List.filter (fun l -> l <> "")
  in
  (match lines with
  | title :: body ->
      Alcotest.(check string) "title line" "ragged" title;
      let widths = List.map String.length body in
      (match widths with
      | w :: rest ->
          List.iter (Alcotest.(check int) "uniform line width" w) rest
      | [] -> Alcotest.fail "no body lines");
      List.iter
        (fun l ->
          Alcotest.(check bool) "framed" true (l.[0] = '+' || l.[0] = '|'))
        body
  | [] -> Alcotest.fail "empty render");
  (* 3 border lines + header + 3 rows after the title. *)
  Alcotest.(check int) "line count" 8 (List.length lines)

let test_table_cell_formats () =
  Alcotest.(check string) "int" "42" (Table.cell_int 42);
  Alcotest.(check string) "negative int" "-7" (Table.cell_int (-7));
  Alcotest.(check string) "float default decimals" "3.142"
    (Table.cell_float 3.14159);
  Alcotest.(check string) "float custom decimals" "3.1"
    (Table.cell_float ~decimals:1 3.14159);
  Alcotest.(check string) "float zero decimals" "3"
    (Table.cell_float ~decimals:0 3.14159);
  Alcotest.(check string) "sci" "5.000e-01" (Table.cell_sci 0.5);
  Alcotest.(check string) "sci large" "1.230e+06" (Table.cell_sci 1.23e6)

(* --- qcheck properties --- *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"dist: probabilities sum to 1"
      (list_of_size (Gen.int_range 1 30) (float_range 0.001 100.0))
      (fun ws ->
        let d = Dist.of_weights (Array.of_list ws) in
        feq ~eps:1e-9 1.0 (Array.fold_left ( +. ) 0.0 (Dist.probs d)));
    Test.make ~name:"dist: tv is symmetric and in [0,1]"
      (pair
         (list_of_size (Gen.return 8) (float_range 0.001 10.0))
         (list_of_size (Gen.return 8) (float_range 0.001 10.0)))
      (fun (wa, wb) ->
        let a = Dist.of_weights (Array.of_list wa) in
        let b = Dist.of_weights (Array.of_list wb) in
        let t1 = Dist.tv a b and t2 = Dist.tv b a in
        feq ~eps:1e-12 t1 t2 && t1 >= 0.0 && t1 <= 1.0 +. 1e-12);
    Test.make ~name:"stats: fit_power recovers planted exponent"
      (pair (float_range 0.2 3.0) (float_range 0.5 10.0))
      (fun (e, c) ->
        let xs = [| 2.0; 4.0; 8.0; 16.0 |] in
        let ys = Array.map (fun x -> c *. (x ** e)) xs in
        let e', c' = Stats.fit_power xs ys in
        feq ~eps:1e-6 e e' && feq ~eps:(1e-6 *. c) c c');
    Test.make ~name:"prng: subset has no duplicates"
      (int_range 1 40)
      (fun size ->
        let prng = Prng.create ~seed:size in
        let arr = Array.init 40 (fun i -> i) in
        let sub = Prng.subset prng ~size arr in
        let module IS = Set.Make (Int) in
        IS.cardinal (IS.of_list (Array.to_list sub)) = size);
    Test.make ~name:"hash: always lands in range"
      (pair (int_range 2 100) (int_range 0 9_999))
      (fun (range, x) ->
        let prng = Prng.create ~seed:(range + x) in
        let h = Kwise_hash.create prng ~independence:4 ~domain:10_000 ~range in
        let v = Kwise_hash.apply h x in
        v >= 0 && v < range);
  ]

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest qcheck_tests in
  Alcotest.run "cc_util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "split independence" `Quick test_prng_split_independent;
          Alcotest.test_case "int range" `Quick test_prng_int_range;
          Alcotest.test_case "shuffle permutes" `Quick test_prng_shuffle_is_permutation;
          Alcotest.test_case "subset distinct" `Quick test_prng_subset;
          Alcotest.test_case "bits width" `Quick test_prng_bits;
          Alcotest.test_case "split determinism" `Quick
            test_prng_split_deterministic;
          Alcotest.test_case "split child differs" `Quick
            test_prng_split_child_differs_from_parent;
          Alcotest.test_case "parent stream after split" `Quick
            test_prng_parent_stream_after_split;
          Alcotest.test_case "streams match manual splits" `Quick
            test_prng_streams_match_manual_splits;
        ] );
      ( "kwise_hash",
        [
          Alcotest.test_case "range" `Quick test_hash_in_range;
          Alcotest.test_case "deterministic" `Quick test_hash_deterministic;
          Alcotest.test_case "uniformity" `Quick test_hash_roughly_uniform;
          Alcotest.test_case "description bits" `Quick test_hash_description_bits;
          Alcotest.test_case "pairwise collisions" `Slow test_hash_pairwise_collision_rate;
          Alcotest.test_case "rejects bad arguments" `Quick
            test_hash_rejects_bad_arguments;
        ] );
      ( "dist",
        [
          Alcotest.test_case "normalization" `Quick test_dist_normalization;
          Alcotest.test_case "sample frequencies" `Slow test_dist_sample_frequencies;
          Alcotest.test_case "sample_weights" `Slow test_dist_sample_weights_matches;
          Alcotest.test_case "alias method" `Slow test_alias_matches_cdf;
          Alcotest.test_case "tv distance" `Quick test_tv_distance;
          Alcotest.test_case "point mass" `Quick test_point_dist;
          Alcotest.test_case "kl zero mass" `Quick test_kl_zero_mass;
          Alcotest.test_case "kl" `Quick test_kl_properties;
          Alcotest.test_case "rejects bad weights" `Quick test_dist_rejects_bad_weights;
        ] );
      ( "stats",
        [
          Alcotest.test_case "summary" `Quick test_stats_summary;
          Alcotest.test_case "linear fit" `Quick test_linear_fit;
          Alcotest.test_case "power fit" `Quick test_fit_power;
          Alcotest.test_case "quantile" `Quick test_quantile;
          Alcotest.test_case "r squared" `Quick test_r_squared_perfect;
          Alcotest.test_case "spread" `Quick test_stats_spread;
          Alcotest.test_case "error cases" `Quick test_stats_errors;
          Alcotest.test_case "empty inputs raise" `Quick
            test_stats_empty_inputs;
          Alcotest.test_case "singleton semantics" `Quick test_stats_singleton;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "row mismatch" `Quick test_table_row_mismatch;
          Alcotest.test_case "csv escaping" `Quick test_table_csv;
          Alcotest.test_case "alignment" `Quick test_table_alignment;
          Alcotest.test_case "cell formats" `Quick test_table_cell_formats;
        ] );
      ("properties", qsuite);
    ]
