(* Tests for Cc_graph: graph structure, generators, Laplacians/transition
   matrices, Matrix-Tree counting, and spanning tree enumeration. *)

module Graph = Cc_graph.Graph
module Gen = Cc_graph.Gen
module Tree = Cc_graph.Tree
module Mat = Cc_linalg.Mat
module Prng = Cc_util.Prng
module Dist = Cc_util.Dist

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let check_float ?(eps = 1e-9) msg expected actual =
  if not (feq ~eps expected actual) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* --- Graph structure --- *)

let test_basic_structure () =
  let g = Graph.of_unweighted_edges ~n:4 [ (0, 1); (1, 2); (2, 3); (3, 0) ] in
  Alcotest.(check int) "n" 4 (Graph.n g);
  Alcotest.(check int) "m" 4 (Graph.num_edges g);
  Alcotest.(check int) "deg" 2 (Graph.degree g 1);
  Alcotest.(check bool) "edge" true (Graph.has_edge g 0 3);
  Alcotest.(check bool) "no edge" false (Graph.has_edge g 0 2);
  Alcotest.(check bool) "connected" true (Graph.is_connected g)

let test_rejects_malformed () =
  let open Alcotest in
  check_raises "self loop" (Invalid_argument "Graph.of_edges: self-loop")
    (fun () -> ignore (Graph.of_unweighted_edges ~n:3 [ (1, 1) ]));
  check_raises "duplicate" (Invalid_argument "Graph.of_edges: duplicate edge")
    (fun () -> ignore (Graph.of_unweighted_edges ~n:3 [ (0, 1); (1, 0) ]));
  check_raises "range" (Invalid_argument "Graph.of_edges: endpoint out of range")
    (fun () -> ignore (Graph.of_unweighted_edges ~n:3 [ (0, 5) ]));
  check_raises "weight"
    (Invalid_argument "Graph.of_edges: weight must be positive and finite")
    (fun () -> ignore (Graph.of_edges ~n:3 [ (0, 1, -2.0) ]))

let test_weighted_degree () =
  let g = Graph.of_edges ~n:3 [ (0, 1, 2.0); (0, 2, 3.0) ] in
  check_float "wdeg 0" 5.0 (Graph.weighted_degree g 0);
  check_float "wdeg 1" 2.0 (Graph.weighted_degree g 1);
  Alcotest.(check int) "unweighted deg" 2 (Graph.degree g 0)

let test_deg_in () =
  let g = Graph.of_unweighted_edges ~n:5 [ (0, 1); (0, 2); (0, 3); (0, 4) ] in
  let members = [| false; true; true; false; false |] in
  Alcotest.(check int) "deg_S of center" 2 (Graph.deg_in g 0 ~members);
  Alcotest.(check int) "deg_S of leaf" 0 (Graph.deg_in g 1 ~members)

let test_disconnected () =
  let g = Graph.of_unweighted_edges ~n:4 [ (0, 1); (2, 3) ] in
  Alcotest.(check bool) "disconnected" false (Graph.is_connected g)

let test_serialization_roundtrip () =
  let g = Graph.of_edges ~n:5 [ (0, 1, 2.5); (1, 2, 1.0); (3, 4, 0.125) ] in
  let g' = Graph.of_string (Graph.to_string g) in
  Alcotest.(check int) "n" (Graph.n g) (Graph.n g');
  Alcotest.(check bool) "edges equal" true (Graph.edges g = Graph.edges g')

let test_fingerprint_permutation_invariant () =
  let edges = [ (0, 1, 2.5); (1, 2, 1.0); (3, 4, 0.125); (0, 4, 7.0) ] in
  let g = Graph.of_edges ~n:5 edges in
  let g_rev = Graph.of_edges ~n:5 (List.rev edges) in
  let g_flip =
    Graph.of_edges ~n:5 (List.map (fun (u, v, w) -> (v, u, w)) edges)
  in
  let fp = Graph.fingerprint g in
  Alcotest.(check string) "reversed edge list" fp (Graph.fingerprint g_rev);
  Alcotest.(check string) "flipped endpoints" fp (Graph.fingerprint g_flip);
  Alcotest.(check bool) "format" true
    (String.length fp = 22 && String.sub fp 0 6 = "fnv64:");
  (* Round-tripping through the wire format preserves identity. *)
  Alcotest.(check string) "serialization roundtrip" fp
    (Graph.fingerprint (Graph.of_string (Graph.to_string g)))

let test_fingerprint_sensitivity () =
  let g = Graph.of_edges ~n:5 [ (0, 1, 2.5); (1, 2, 1.0); (3, 4, 0.125) ] in
  let fp = Graph.fingerprint g in
  let bumped =
    Graph.of_edges ~n:5 [ (0, 1, 2.5 +. 1e-12); (1, 2, 1.0); (3, 4, 0.125) ]
  in
  Alcotest.(check bool) "weight change" true (fp <> Graph.fingerprint bumped);
  let rewired = Graph.of_edges ~n:5 [ (0, 1, 2.5); (1, 2, 1.0); (2, 4, 0.125) ] in
  Alcotest.(check bool) "topology change" true (fp <> Graph.fingerprint rewired);
  let padded = Graph.of_edges ~n:6 [ (0, 1, 2.5); (1, 2, 1.0); (3, 4, 0.125) ] in
  Alcotest.(check bool) "vertex-count change" true
    (fp <> Graph.fingerprint padded)

(* --- Matrices --- *)

let test_transition_matrix_stochastic () =
  let prng = Prng.create ~seed:1 in
  let g = Gen.random_connected prng ~n:12 ~extra_edges:8 in
  Alcotest.(check bool) "stochastic" true
    (Mat.is_row_stochastic (Graph.transition_matrix g))

let test_transition_weighted () =
  let g = Graph.of_edges ~n:3 [ (0, 1, 1.0); (0, 2, 3.0) ] in
  let p = Graph.transition_matrix g in
  check_float "p01" 0.25 (Mat.get p 0 1);
  check_float "p02" 0.75 (Mat.get p 0 2);
  check_float "p10" 1.0 (Mat.get p 1 0)

let test_laplacian_row_sums () =
  let prng = Prng.create ~seed:2 in
  let g = Gen.random_connected prng ~n:10 ~extra_edges:5 in
  let l = Graph.laplacian g in
  Array.iter (fun s -> check_float "row sum" 0.0 s) (Mat.row_sums l);
  Alcotest.(check bool) "symmetric" true (Mat.is_symmetric l)

let test_laplacian_roundtrip () =
  let g = Graph.of_edges ~n:4 [ (0, 1, 2.0); (1, 2, 0.5); (2, 3, 1.0); (0, 3, 4.0) ] in
  let g' = Graph.of_laplacian (Graph.laplacian g) in
  Alcotest.(check bool) "edges preserved" true (Graph.edges g = Graph.edges g')

let test_effective_resistance_path () =
  (* Series circuit: unit resistors in a path add up. *)
  let g = Gen.path 5 in
  check_float ~eps:1e-7 "R(0,4)" 4.0 (Graph.effective_resistance g 0 4);
  check_float ~eps:1e-7 "R(1,2)" 1.0 (Graph.effective_resistance g 1 2)

let test_effective_resistance_parallel () =
  (* Two parallel unit-weight paths of length 2 between 0 and 3: R = 1. *)
  let g = Graph.of_unweighted_edges ~n:4 [ (0, 1); (1, 3); (0, 2); (2, 3) ] in
  check_float ~eps:1e-7 "R parallel" 1.0 (Graph.effective_resistance g 0 3)

let test_effective_resistance_weighted_series () =
  (* Resistance of edge (u,v) with weight w is 1/w; a weighted path adds the
     reciprocals. *)
  let g = Graph.of_edges ~n:4 [ (0, 1, 2.0); (1, 2, 4.0); (2, 3, 0.5) ] in
  check_float ~eps:1e-7 "R(0,3)" (0.5 +. 0.25 +. 2.0)
    (Graph.effective_resistance g 0 3);
  check_float ~eps:1e-7 "R(1,2)" 0.25 (Graph.effective_resistance g 1 2)

let test_effective_resistance_cycle () =
  (* Adjacent vertices of an unweighted n-cycle: 1 ohm in parallel with the
     other n-1 edges in series, so R = (n-1)/n. *)
  List.iter
    (fun n ->
      let g = Gen.cycle n in
      check_float ~eps:1e-7
        (Printf.sprintf "C%d adjacent" n)
        (float_of_int (n - 1) /. float_of_int n)
        (Graph.effective_resistance g 0 1))
    [ 3; 5; 8 ]

(* Foster's theorem: on any connected graph, sum_e w_e * R_eff(e) = n - 1.
   This is the identity that makes the audit plane's leverage oracle sum to
   the tree size, so pin it both on closed-form families and at random. *)
let foster_sum g =
  List.fold_left
    (fun acc (u, v, w) -> acc +. (w *. Graph.effective_resistance g u v))
    0.0 (Graph.edges g)

let test_foster_closed_forms () =
  List.iter
    (fun (name, g) ->
      check_float ~eps:1e-6 name
        (float_of_int (Graph.n g - 1))
        (foster_sum g))
    [
      ("path", Gen.path 6);
      ("cycle", Gen.cycle 7);
      ("complete", Gen.complete 6);
      ("grid", Gen.grid ~rows:2 ~cols:4);
      ( "weighted",
        Graph.of_edges ~n:4
          [ (0, 1, 2.5); (1, 2, 0.25); (2, 3, 3.0); (0, 3, 1.0); (0, 2, 0.5) ]
      );
    ]

(* --- Generators --- *)

let test_generator_shapes () =
  Alcotest.(check int) "path edges" 9 (Graph.num_edges (Gen.path 10));
  Alcotest.(check int) "cycle edges" 10 (Graph.num_edges (Gen.cycle 10));
  Alcotest.(check int) "complete edges" 45 (Graph.num_edges (Gen.complete 10));
  Alcotest.(check int) "star edges" 9 (Graph.num_edges (Gen.star 10));
  Alcotest.(check int) "grid edges" 12 (Graph.num_edges (Gen.grid ~rows:3 ~cols:3));
  Alcotest.(check int) "btree edges" 9 (Graph.num_edges (Gen.binary_tree 10))

let test_lollipop_shape () =
  let g = Gen.lollipop ~clique:5 ~tail:4 in
  Alcotest.(check int) "n" 9 (Graph.n g);
  Alcotest.(check int) "m" (10 + 4) (Graph.num_edges g);
  Alcotest.(check bool) "connected" true (Graph.is_connected g);
  Alcotest.(check int) "tail end degree" 1 (Graph.degree g 8)

let test_barbell_shape () =
  let g = Gen.barbell 4 in
  Alcotest.(check int) "n" 8 (Graph.n g);
  Alcotest.(check int) "m" 13 (Graph.num_edges g);
  Alcotest.(check bool) "connected" true (Graph.is_connected g)

let test_random_regular () =
  let prng = Prng.create ~seed:3 in
  let g = Gen.random_regular prng ~n:20 ~d:4 in
  Alcotest.(check bool) "connected" true (Graph.is_connected g);
  for v = 0 to 19 do
    Alcotest.(check int) "degree" 4 (Graph.degree g v)
  done

let test_er_connected () =
  let prng = Prng.create ~seed:4 in
  let g = Gen.erdos_renyi_connected prng ~n:30 ~p:0.3 in
  Alcotest.(check bool) "connected" true (Graph.is_connected g)

let test_random_weights_bounds () =
  let prng = Prng.create ~seed:5 in
  let g = Gen.random_weights prng (Gen.cycle 10) ~max_weight:7 in
  List.iter
    (fun (_, _, w) ->
      if w < 1.0 || w > 7.0 || Float.rem w 1.0 <> 0.0 then
        Alcotest.failf "weight %g out of bounds" w)
    (Graph.edges g)

let test_family_roundtrip () =
  List.iter
    (fun f ->
      let s = Gen.family_to_string f in
      Alcotest.(check string) "roundtrip" s
        (Gen.family_to_string (Gen.family_of_string s)))
    [ Gen.Path; Gen.Cycle; Gen.Complete; Gen.Lollipop; Gen.Erdos_renyi 0.25;
      Gen.Er_log 2.0; Gen.Regular 4 ]

let test_figure2_shape () =
  let g = Gen.figure2 () in
  Alcotest.(check int) "n" 4 (Graph.n g);
  Alcotest.(check int) "m" 3 (Graph.num_edges g);
  Alcotest.(check int) "hub degree" 3 (Graph.degree g 2)

let test_of_string_errors () =
  let open Alcotest in
  check_raises "empty" (Invalid_argument "Graph.of_string: empty input")
    (fun () -> ignore (Graph.of_string "  \n  "));
  check_raises "bad header"
    (Invalid_argument "Graph.of_string: expected 'n <count>' header") (fun () ->
      ignore (Graph.of_string "vertices 4\ne 0 1"));
  check_raises "bad edge" (Invalid_argument "Graph.of_string: bad edge line")
    (fun () -> ignore (Graph.of_string "n 4\nedge 0 1"))

let test_of_string_comments_and_unweighted () =
  let g = Graph.of_string "# a comment\nn 3\ne 0 1\ne 1 2 2.5\n" in
  Alcotest.(check int) "n" 3 (Graph.n g);
  Alcotest.(check (float 1e-9)) "default weight" 1.0 (Graph.edge_weight g 0 1);
  Alcotest.(check (float 1e-9)) "explicit weight" 2.5 (Graph.edge_weight g 1 2)

let test_build_all_families () =
  let prng = Prng.create ~seed:77 in
  List.iter
    (fun fam ->
      let g = Gen.build prng fam ~n:16 in
      Alcotest.(check bool)
        (Gen.family_to_string fam ^ " connected")
        true (Graph.is_connected g))
    [ Gen.Path; Gen.Cycle; Gen.Complete; Gen.Star; Gen.Grid; Gen.Binary_tree;
      Gen.Lollipop; Gen.Barbell; Gen.Erdos_renyi 0.4; Gen.Er_log 3.0;
      Gen.Regular 4 ]

(* --- Spanning trees --- *)

let test_matrix_tree_known_counts () =
  (* Cayley: K_n has n^(n-2) trees; cycle has n; path has 1. *)
  check_float ~eps:1e-6 "K4" 16.0 (Tree.count (Gen.complete 4));
  check_float ~eps:1e-6 "K5" 125.0 (Tree.count (Gen.complete 5));
  check_float ~eps:1e-6 "C6" 6.0 (Tree.count (Gen.cycle 6));
  check_float ~eps:1e-6 "path" 1.0 (Tree.count (Gen.path 7))

let test_matrix_tree_disconnected () =
  let g = Graph.of_unweighted_edges ~n:4 [ (0, 1); (2, 3) ] in
  check_float "disconnected" 0.0 (Tree.count g)

let test_enumerate_matches_matrix_tree () =
  List.iter
    (fun g ->
      let trees = Tree.enumerate g in
      List.iter
        (fun t ->
          if not (Tree.is_spanning_tree g t) then
            Alcotest.fail "enumerated non-tree")
        trees;
      check_float ~eps:1e-6 "count matches"
        (Tree.count g)
        (float_of_int (List.length trees)))
    [ Gen.complete 4; Gen.cycle 5; Gen.grid ~rows:2 ~cols:3;
      Graph.of_unweighted_edges ~n:4 [ (0, 1); (1, 2); (2, 3); (3, 0); (0, 2) ] ]

let test_enumerate_weighted_count () =
  (* Weighted Matrix-Tree: count = sum over trees of weight products. *)
  let g = Graph.of_edges ~n:3 [ (0, 1, 2.0); (1, 2, 3.0); (0, 2, 5.0) ] in
  let trees = Tree.enumerate g in
  let total =
    List.fold_left (fun acc t -> acc +. Tree.weight g t) 0.0 trees
  in
  check_float ~eps:1e-9 "weighted count" total (Tree.count g);
  check_float ~eps:1e-9 "value" 31.0 total

let test_tree_validation () =
  let g = Gen.cycle 4 in
  let good = Tree.of_edges ~n:4 [ (0, 1); (1, 2); (2, 3) ] in
  let cycle = Tree.of_edges ~n:4 [ (0, 1); (1, 2); (2, 3) ] in
  Alcotest.(check bool) "valid tree" true (Tree.is_spanning_tree g good);
  Alcotest.(check bool) "same edges equal" true (Tree.equal good cycle);
  let not_spanning = Tree.of_edges ~n:4 [ (0, 1); (1, 2) ] in
  Alcotest.(check bool) "too few edges" false (Tree.is_spanning_tree g not_spanning);
  let with_cycle = Tree.of_edges ~n:4 [ (0, 1); (1, 2); (0, 2) ] in
  Alcotest.(check bool) "cyclic" false (Tree.is_spanning_tree g with_cycle);
  let foreign = Tree.of_edges ~n:4 [ (0, 2); (1, 3); (0, 1) ] in
  Alcotest.(check bool) "edges not in graph" false (Tree.is_spanning_tree g foreign)

let test_tree_index () =
  let g = Gen.complete 4 in
  let trees, lookup = Tree.index g in
  Alcotest.(check int) "16 trees" 16 (Array.length trees);
  Array.iteri
    (fun i t -> Alcotest.(check int) "self lookup" i (lookup t))
    trees;
  let d = Tree.weighted_distribution g trees in
  check_float "uniform on unweighted" (1.0 /. 16.0) (Dist.prob d 0)

let test_tree_mem () =
  let t = Tree.of_edges ~n:4 [ (2, 1); (0, 3) ] in
  Alcotest.(check bool) "mem normalized" true (Tree.mem t 1 2);
  Alcotest.(check bool) "mem reversed" true (Tree.mem t 2 1);
  Alcotest.(check bool) "not mem" false (Tree.mem t 0 1)

(* --- spectral --- *)

let test_spectral_complete_graph () =
  (* K_n: lambda_2 = -1/(n-1) for the walk matrix. *)
  let n = 8 in
  let l2 = Cc_graph.Spectral.second_eigenvalue (Gen.complete n) in
  check_float ~eps:1e-6 "K8 lambda2" (-1.0 /. float_of_int (n - 1)) l2

let test_spectral_cycle () =
  (* C_n: lambda_2 = cos(2 pi / n); lambda_n = -1 when n even (bipartite). *)
  let n = 8 in
  let g = Gen.cycle n in
  check_float ~eps:1e-6 "C8 lambda2"
    (Float.cos (2.0 *. Float.pi /. float_of_int n))
    (Cc_graph.Spectral.second_eigenvalue g);
  check_float ~eps:1e-6 "C8 lambda_min" (-1.0)
    (Cc_graph.Spectral.smallest_eigenvalue g)

let test_spectral_gap_ordering () =
  (* Expanders have much larger lazy gaps than paths. *)
  let prng = Prng.create ~seed:88 in
  let expander = Gen.random_regular prng ~n:32 ~d:6 in
  let path = Gen.path 32 in
  let ge = Cc_graph.Spectral.gap expander in
  let gp = Cc_graph.Spectral.gap path in
  Alcotest.(check bool)
    (Printf.sprintf "expander gap %.4f >> path gap %.4f" ge gp)
    true
    (ge > 10.0 *. gp)

let test_mixing_time_bound_positive () =
  let g = Gen.complete 6 in
  let t = Cc_graph.Spectral.mixing_time_bound g ~eps:0.01 in
  Alcotest.(check bool) "finite positive" true (Float.is_finite t && t > 0.0)

(* --- qcheck properties --- *)

let qcheck_tests =
  let open QCheck in
  let params = make Gen.(pair (int_range 4 12) (int_range 0 10_000)) in
  [
    Test.make ~name:"random_connected is connected" ~count:100 params
      (fun (n, seed) ->
        let prng = Prng.create ~seed in
        Graph.is_connected (Cc_graph.Gen.random_connected prng ~n ~extra_edges:(n / 2)));
    Test.make ~name:"fingerprint is edge-order invariant" ~count:100 params
      (fun (n, seed) ->
        let prng = Prng.create ~seed in
        let g =
          Cc_graph.Gen.random_weights prng
            (Cc_graph.Gen.random_connected prng ~n ~extra_edges:n)
            ~max_weight:8
        in
        let edges = Array.of_list (Graph.edges g) in
        (* Fisher–Yates shuffle driven by the test prng. *)
        for i = Array.length edges - 1 downto 1 do
          let j = Prng.int prng (i + 1) in
          let tmp = edges.(i) in
          edges.(i) <- edges.(j);
          edges.(j) <- tmp
        done;
        let g' = Graph.of_edges ~n (Array.to_list edges) in
        String.equal (Graph.fingerprint g) (Graph.fingerprint g'));
    Test.make ~name:"laplacian rows sum to zero" ~count:100 params
      (fun (n, seed) ->
        let prng = Prng.create ~seed in
        let g = Cc_graph.Gen.random_connected prng ~n ~extra_edges:n in
        Array.for_all (fun s -> Float.abs s < 1e-9)
          (Mat.row_sums (Graph.laplacian g)));
    Test.make ~name:"transition matrix is stochastic" ~count:100 params
      (fun (n, seed) ->
        let prng = Prng.create ~seed in
        let g = Cc_graph.Gen.random_connected prng ~n ~extra_edges:n in
        Mat.is_row_stochastic (Graph.transition_matrix g));
    Test.make ~name:"matrix-tree count >= 1 on connected graphs" ~count:100
      params (fun (n, seed) ->
        let prng = Prng.create ~seed in
        let g = Cc_graph.Gen.random_connected prng ~n ~extra_edges:2 in
        Tree.count g >= 0.999);
    Test.make ~name:"aldous-broder style first-visit edges of any walk form a forest"
      ~count:100 params (fun (n, seed) ->
        (* The tree machinery accepts partial walks too: first-visit edges of
           any prefix always form an acyclic edge set. *)
        let prng = Prng.create ~seed in
        let g = Cc_graph.Gen.random_connected prng ~n ~extra_edges:3 in
        let steps = 3 * n in
        let current = ref 0 in
        let seen = Hashtbl.create 16 in
        Hashtbl.add seen 0 ();
        let edges = ref [] in
        for _ = 1 to steps do
          let nbrs = Graph.neighbors g !current in
          let next, _ = nbrs.(Prng.int prng (Array.length nbrs)) in
          if not (Hashtbl.mem seen next) then begin
            Hashtbl.add seen next ();
            edges := (!current, next) :: !edges
          end;
          current := next
        done;
        (* Forest check: union-find never finds a cycle. *)
        let parent = Array.init n (fun i -> i) in
        let rec find i = if parent.(i) = i then i else (parent.(i) <- find parent.(i); parent.(i)) in
        List.for_all
          (fun (u, v) ->
            let ru = find u and rv = find v in
            if ru = rv then false else (parent.(ru) <- rv; true))
          !edges);
    Test.make ~name:"spectral: lambda_2 in (-1, 1) and gap in (0, 1]" ~count:25
      params (fun (n, seed) ->
        let prng = Prng.create ~seed in
        let g = Cc_graph.Gen.random_connected prng ~n ~extra_edges:n in
        let l2 = Cc_graph.Spectral.second_eigenvalue ~iters:2000 g in
        let gp = Cc_graph.Spectral.gap ~iters:2000 g in
        l2 < 1.0 -. 1e-9 && l2 > -1.0 -. 1e-9 && gp > 0.0 && gp <= 1.0);
    Test.make ~name:"effective resistance <= shortest path length" ~count:50
      params (fun (n, seed) ->
        let prng = Prng.create ~seed in
        let g = Cc_graph.Gen.random_connected prng ~n ~extra_edges:n in
        (* Rayleigh: resistance between path endpoints is at most its length. *)
        Graph.effective_resistance g 0 (n - 1) <= float_of_int n +. 1e-6);
    Test.make ~name:"Foster's theorem on random weighted graphs" ~count:50
      params (fun (n, seed) ->
        let prng = Prng.create ~seed in
        let g =
          Cc_graph.Gen.random_weights prng
            (Cc_graph.Gen.random_connected prng ~n ~extra_edges:n)
            ~max_weight:8
        in
        Float.abs (foster_sum g -. float_of_int (n - 1)) < 1e-6);
  ]

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest qcheck_tests in
  Alcotest.run "cc_graph"
    [
      ( "structure",
        [
          Alcotest.test_case "basics" `Quick test_basic_structure;
          Alcotest.test_case "rejects malformed" `Quick test_rejects_malformed;
          Alcotest.test_case "weighted degree" `Quick test_weighted_degree;
          Alcotest.test_case "deg_in" `Quick test_deg_in;
          Alcotest.test_case "disconnected" `Quick test_disconnected;
          Alcotest.test_case "serialization" `Quick test_serialization_roundtrip;
          Alcotest.test_case "fingerprint invariance" `Quick
            test_fingerprint_permutation_invariant;
          Alcotest.test_case "fingerprint sensitivity" `Quick
            test_fingerprint_sensitivity;
        ] );
      ( "matrices",
        [
          Alcotest.test_case "transition stochastic" `Quick test_transition_matrix_stochastic;
          Alcotest.test_case "weighted transition" `Quick test_transition_weighted;
          Alcotest.test_case "laplacian rows" `Quick test_laplacian_row_sums;
          Alcotest.test_case "laplacian roundtrip" `Quick test_laplacian_roundtrip;
          Alcotest.test_case "resistance series" `Quick test_effective_resistance_path;
          Alcotest.test_case "resistance parallel" `Quick test_effective_resistance_parallel;
          Alcotest.test_case "resistance weighted series" `Quick
            test_effective_resistance_weighted_series;
          Alcotest.test_case "resistance cycle" `Quick test_effective_resistance_cycle;
          Alcotest.test_case "Foster closed forms" `Quick test_foster_closed_forms;
        ] );
      ( "generators",
        [
          Alcotest.test_case "shapes" `Quick test_generator_shapes;
          Alcotest.test_case "lollipop" `Quick test_lollipop_shape;
          Alcotest.test_case "barbell" `Quick test_barbell_shape;
          Alcotest.test_case "random regular" `Quick test_random_regular;
          Alcotest.test_case "er connected" `Quick test_er_connected;
          Alcotest.test_case "random weights" `Quick test_random_weights_bounds;
          Alcotest.test_case "family parsing" `Quick test_family_roundtrip;
          Alcotest.test_case "figure 2 graph" `Quick test_figure2_shape;
          Alcotest.test_case "of_string errors" `Quick test_of_string_errors;
          Alcotest.test_case "of_string format" `Quick test_of_string_comments_and_unweighted;
          Alcotest.test_case "all families build" `Quick test_build_all_families;
        ] );
      ( "trees",
        [
          Alcotest.test_case "matrix-tree counts" `Quick test_matrix_tree_known_counts;
          Alcotest.test_case "matrix-tree disconnected" `Quick test_matrix_tree_disconnected;
          Alcotest.test_case "enumerate = matrix-tree" `Quick test_enumerate_matches_matrix_tree;
          Alcotest.test_case "weighted enumeration" `Quick test_enumerate_weighted_count;
          Alcotest.test_case "validation" `Quick test_tree_validation;
          Alcotest.test_case "index" `Quick test_tree_index;
          Alcotest.test_case "membership" `Quick test_tree_mem;
        ] );
      ( "spectral",
        [
          Alcotest.test_case "complete graph" `Quick test_spectral_complete_graph;
          Alcotest.test_case "cycle" `Quick test_spectral_cycle;
          Alcotest.test_case "gap ordering" `Quick test_spectral_gap_ordering;
          Alcotest.test_case "mixing bound" `Quick test_mixing_time_bound_positive;
        ] );
      ("properties", qsuite);
    ]
