(* Tests for Cc_engine, the deterministic multicore backend (DESIGN.md §10).

   The suite checks the scheduler contract directly (coverage, ordering,
   exception selection, pool lifecycle) and then the property the whole
   design exists for: algorithm output and flight-recorder digests are
   bit-identical whether a workload runs on the sequential engine or on a
   multi-domain pool. *)

module Prng = Cc_util.Prng
module Graph = Cc_graph.Graph
module Gen = Cc_graph.Gen
module Tree = Cc_graph.Tree
module Net = Cc_clique.Net
module Sampler = Cc_sampler.Sampler
module Doubling = Cc_doubling.Doubling
module Recorder = Cc_obs.Recorder
module Mat = Cc_linalg.Mat

(* One shared pool for the whole suite: spawning domains per test case (and
   per QCheck iteration) would dominate the runtime. *)
let pool = Cc_engine.create ~domains:4 ()
let () = at_exit (fun () -> Cc_engine.shutdown pool)

(* --- construction and lifecycle --- *)

let test_create_one_is_sequential () =
  let e = Cc_engine.create ~domains:1 () in
  Alcotest.(check int) "domains" 1 (Cc_engine.domains e);
  Alcotest.(check bool) "not parallel" false (Cc_engine.is_parallel e);
  (* shutdown of the sequential engine is a no-op *)
  Cc_engine.shutdown e;
  Cc_engine.shutdown e

let test_create_rejects_nonpositive () =
  let expect_invalid d =
    match Cc_engine.create ~domains:d () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "domains:%d accepted" d
  in
  expect_invalid 0;
  expect_invalid (-1)

let test_parse_domains () =
  (match Cc_engine.parse_domains "4" with
  | Ok 4 -> ()
  | _ -> Alcotest.fail "parse 4");
  List.iter
    (fun s ->
      match Cc_engine.parse_domains s with
      | Error _ -> ()
      | Ok d -> Alcotest.failf "parse %S accepted as %d" s d)
    [ "0"; "-2"; "abc"; "" ]

let test_shutdown_idempotent_and_degrades_inline () =
  let e = Cc_engine.create ~domains:3 () in
  Alcotest.(check bool) "parallel before" true (Cc_engine.is_parallel e);
  Cc_engine.shutdown e;
  Cc_engine.shutdown e;
  Alcotest.(check bool) "not parallel after" false (Cc_engine.is_parallel e);
  (* a shut-down pool must still compute correct results, inline *)
  let a = Cc_engine.parallel_map e 100 (fun i -> 3 * i) in
  Alcotest.(check (array int)) "inline results" (Array.init 100 (fun i -> 3 * i)) a

let test_with_engine_restores_default () =
  let before = Cc_engine.get () in
  let inside =
    Cc_engine.with_engine pool (fun () -> Cc_engine.domains (Cc_engine.get ()))
  in
  Alcotest.(check int) "inside" (Cc_engine.domains pool) inside;
  Alcotest.(check bool) "restored" true (Cc_engine.get () == before);
  (* restored on exception too *)
  (try
     Cc_engine.with_engine pool (fun () -> raise Exit)
   with Exit -> ());
  Alcotest.(check bool) "restored after raise" true (Cc_engine.get () == before)

(* --- loop semantics --- *)

let test_parallel_for_covers_each_index_once () =
  let n = 1024 in
  let hits = Array.make n 0 in
  Cc_engine.parallel_for pool ~lo:0 ~hi:n (fun i -> hits.(i) <- hits.(i) + 1);
  Alcotest.(check (array int)) "each index once" (Array.make n 1) hits;
  (* explicit chunk sizes, including ones that do not divide the range *)
  List.iter
    (fun chunk ->
      let hits = Array.make n 0 in
      Cc_engine.parallel_for ~chunk pool ~lo:0 ~hi:n (fun i ->
          hits.(i) <- hits.(i) + 1);
      Alcotest.(check (array int))
        (Printf.sprintf "chunk %d" chunk)
        (Array.make n 1) hits)
    [ 1; 7; 1000; 5000 ]

let test_parallel_map_index_order () =
  let n = 501 in
  let expect = Array.init n (fun i -> (i * i) + 7) in
  Alcotest.(check (array int))
    "pool" expect
    (Cc_engine.parallel_map pool n (fun i -> (i * i) + 7));
  Alcotest.(check (array int))
    "sequential" expect
    (Cc_engine.parallel_map Cc_engine.sequential n (fun i -> (i * i) + 7));
  Alcotest.(check (array int))
    "empty" [||]
    (Cc_engine.parallel_map pool 0 (fun i -> i))

let test_exception_propagates_smallest_index_wins () =
  (* chunk:1 makes every index its own chunk, so the deterministic-selection
     rule pins which of the two failures must surface. *)
  let boom i = Failure (Printf.sprintf "boom-%d" i) in
  (match
     Cc_engine.parallel_for ~chunk:1 pool ~lo:0 ~hi:64 (fun i ->
         if i = 17 || i = 41 then raise (boom i))
   with
  | exception Failure msg -> Alcotest.(check string) "smallest" "boom-17" msg
  | () -> Alcotest.fail "no exception propagated");
  (* the pool survives a failed region *)
  let a = Cc_engine.parallel_map pool 64 (fun i -> i + 1) in
  Alcotest.(check (array int)) "pool reusable" (Array.init 64 (fun i -> i + 1)) a

(* --- determinism across domain counts --- *)

let build_graph ~seed ~n =
  Gen.build (Prng.create ~seed) (Gen.family_of_string "lollipop") ~n

(* Mirror of the [ccreplay record --algo sample] workload: run the Theorem 2
   sampler with the flight recorder attached and return the sampled tree
   plus the digest of the recorded event stream. *)
let sampler_run engine ~seed ~n =
  Cc_engine.with_engine engine (fun () ->
      let prng = Prng.create ~seed in
      let g = build_graph ~seed:(seed + 1) ~n in
      let net = Net.create ~n:(Graph.n g) in
      let recorder = Recorder.create ~machines:(Graph.n g) () in
      ignore (Net.attach_recorder net recorder);
      let r = Sampler.sample net prng g in
      (List.sort compare (Tree.edges r.Sampler.tree), Recorder.digest_hex recorder))

let test_sampler_identical_across_domains () =
  let seq = sampler_run Cc_engine.sequential ~seed:11 ~n:24 in
  let par = sampler_run pool ~seed:11 ~n:24 in
  Alcotest.(check (list (pair int int))) "tree" (fst seq) (fst par);
  Alcotest.(check string) "recorder digest" (snd seq) (snd par)

let doubling_run engine ~seed ~n =
  Cc_engine.with_engine engine (fun () ->
      let prng = Prng.create ~seed in
      let g = build_graph ~seed:(seed + 1) ~n in
      let net = Net.create ~n:(Graph.n g) in
      let tree, steps = Doubling.sample_tree net prng g ~tau0:(Graph.n g) in
      (List.sort compare (Tree.edges tree), steps))

let test_doubling_identical_across_domains () =
  let seq = doubling_run Cc_engine.sequential ~seed:7 ~n:20 in
  let par = doubling_run pool ~seed:7 ~n:20 in
  Alcotest.(check (list (pair int int))) "tree" (fst seq) (fst par);
  Alcotest.(check int) "steps" (snd seq) (snd par)

(* A 40x40 product is above [Mat.par_threshold] (40^3 > 2^15), so the pool
   run really takes the parallel path in [Mat.mul]. *)
let mat_run engine ~seed =
  Cc_engine.with_engine engine (fun () ->
      let prng = Prng.create ~seed in
      let dim = 40 in
      let a =
        Mat.init ~rows:dim ~cols:dim (fun _ _ -> Prng.float prng 1.0)
      in
      Mat.mul a a)

let test_mat_mul_bit_identical () =
  let seq = mat_run Cc_engine.sequential ~seed:3 in
  let par = mat_run pool ~seed:3 in
  Alcotest.(check (float 0.0)) "max abs diff" 0.0 (Mat.max_abs_diff seq par)

let qcheck_tests =
  [
    QCheck.Test.make ~count:8
      ~name:"engine: doubling trees identical at 1 vs 4 domains"
      QCheck.(int_range 1 10_000)
      (fun seed ->
        doubling_run Cc_engine.sequential ~seed ~n:16
        = doubling_run pool ~seed ~n:16);
    QCheck.Test.make ~count:8
      ~name:"engine: Mat.mul bit-identical at 1 vs 4 domains"
      QCheck.(int_range 1 10_000)
      (fun seed ->
        Mat.max_abs_diff (mat_run Cc_engine.sequential ~seed) (mat_run pool ~seed)
        = 0.0);
  ]

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest qcheck_tests in
  Alcotest.run "cc_engine"
    [
      ( "lifecycle",
        [
          Alcotest.test_case "domains=1 is sequential" `Quick
            test_create_one_is_sequential;
          Alcotest.test_case "rejects domains < 1" `Quick
            test_create_rejects_nonpositive;
          Alcotest.test_case "parse_domains" `Quick test_parse_domains;
          Alcotest.test_case "shutdown idempotent, degrades inline" `Quick
            test_shutdown_idempotent_and_degrades_inline;
          Alcotest.test_case "with_engine restores default" `Quick
            test_with_engine_restores_default;
        ] );
      ( "loops",
        [
          Alcotest.test_case "parallel_for covers each index once" `Quick
            test_parallel_for_covers_each_index_once;
          Alcotest.test_case "parallel_map index order" `Quick
            test_parallel_map_index_order;
          Alcotest.test_case "exception: smallest chunk index wins" `Quick
            test_exception_propagates_smallest_index_wins;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "sampler output and digest" `Quick
            test_sampler_identical_across_domains;
          Alcotest.test_case "doubling tree and steps" `Quick
            test_doubling_identical_across_domains;
          Alcotest.test_case "Mat.mul bit-identical" `Quick
            test_mat_mul_bit_identical;
        ] );
      ("properties", qsuite);
    ]
