(* Tests for Cc_congest: the CONGEST simulator and the two walk baselines
   (step-by-step and Das Sarma et al. stitching). *)

module Graph = Cc_graph.Graph
module Gen = Cc_graph.Gen
module Tree = Cc_graph.Tree
module Cnet = Cc_congest.Cnet
module Congest_walk = Cc_congest.Congest_walk
module Prng = Cc_util.Prng
module Dist = Cc_util.Dist
module Stats = Cc_util.Stats

(* --- Cnet --- *)

let test_exchange_adjacency () =
  let net = Cnet.create (Gen.path 4) in
  Cnet.exchange net ~label:"t" [ { Cnet.src = 0; dst = 1; words = 1 } ];
  Alcotest.(check (float 1e-9)) "1 round" 1.0 (Cnet.rounds net);
  Alcotest.check_raises "non-adjacent"
    (Invalid_argument "Cnet.exchange: endpoints not adjacent") (fun () ->
      Cnet.exchange net ~label:"t" [ { Cnet.src = 0; dst = 3; words = 1 } ])

let test_exchange_congestion () =
  (* Two packets over the same directed edge serialize. *)
  let net = Cnet.create (Gen.star 5) in
  Cnet.exchange net ~label:"t"
    [
      { Cnet.src = 1; dst = 0; words = 2 };
      { Cnet.src = 1; dst = 0; words = 3 };
      { Cnet.src = 2; dst = 0; words = 1 };
    ];
  Alcotest.(check (float 1e-9)) "max directed edge load" 5.0 (Cnet.rounds net)

let test_depth () =
  Alcotest.(check int) "path depth" 7 (Cnet.depth (Cnet.create (Gen.path 8)));
  Alcotest.(check int) "star depth" 1 (Cnet.depth (Cnet.create (Gen.star 8)));
  Alcotest.(check int) "clique depth" 1 (Cnet.depth (Cnet.create (Gen.complete 8)))

let test_token_route_cost () =
  let net = Cnet.create (Gen.path 8) in
  (* 0..7 path rooted at 0: routing 3 -> 6 over the tree costs
     (dist 3) + (dist 6) = 9 hops. *)
  let r = Cnet.token_route net ~label:"t" ~src:3 ~dst:6 ~words:1 in
  Alcotest.(check (float 1e-9)) "hops" 9.0 r;
  Alcotest.(check (float 1e-9)) "self is free" 0.0
    (Cnet.token_route net ~label:"t" ~src:3 ~dst:3 ~words:5)

let test_reset_and_ledger () =
  let net = Cnet.create (Gen.cycle 5) in
  Cnet.charge net ~label:"a" 3.0;
  Cnet.charge net ~label:"b" 1.0;
  Alcotest.(check int) "two labels" 2 (List.length (Cnet.ledger net));
  Cnet.reset net;
  Alcotest.(check (float 1e-9)) "reset" 0.0 (Cnet.rounds net);
  (* Like Net.reset, the per-label entries are dropped, not just the total. *)
  Alcotest.(check int) "per-label ledger empty" 0 (List.length (Cnet.ledger net));
  Cnet.charge net ~label:"c" 2.0;
  Alcotest.(check (list (pair string (float 1e-9)))) "usable after reset"
    [ ("c", 2.0) ] (Cnet.ledger net)

(* --- baselines --- *)

let test_step_by_step_tree_and_cost () =
  let prng = Prng.create ~seed:1 in
  let g = Gen.lollipop ~clique:5 ~tail:4 in
  let net = Cnet.create g in
  let r = Congest_walk.step_by_step net prng in
  Alcotest.(check bool) "valid tree" true (Tree.is_spanning_tree g r.Congest_walk.tree);
  (* One round per walk step, exactly. *)
  Alcotest.(check (float 1e-9)) "rounds = steps"
    (float_of_int r.Congest_walk.walk_length)
    r.Congest_walk.rounds

let test_das_sarma_tree_valid () =
  let prng = Prng.create ~seed:2 in
  let g = Gen.lollipop ~clique:6 ~tail:6 in
  let net = Cnet.create g in
  let r = Congest_walk.das_sarma net prng ~lambda:16 ~eta:4 in
  Alcotest.(check bool) "valid tree" true (Tree.is_spanning_tree g r.Congest_walk.tree);
  Alcotest.(check bool) "stitched" true (r.Congest_walk.stitches > 0)

let test_das_sarma_beats_step_by_step_on_lollipop () =
  let g = Gen.lollipop ~clique:16 ~tail:16 in
  let trials = 3 in
  let total_step = ref 0.0 and total_ds = ref 0.0 in
  for seed = 1 to trials do
    let prng = Prng.create ~seed in
    let net = Cnet.create g in
    total_step := !total_step +. (Congest_walk.step_by_step net prng).Congest_walk.rounds;
    let net2 = Cnet.create g in
    let lambda = Congest_walk.auto_lambda net2 ~walk_estimate:(32 * 32 * 32 / 8) in
    total_ds :=
      !total_ds +. (Congest_walk.das_sarma net2 prng ~lambda ~eta:4).Congest_walk.rounds
  done;
  Alcotest.(check bool)
    (Printf.sprintf "das sarma %.0f < step %.0f" !total_ds !total_step)
    true
    (!total_ds < !total_step)

let test_das_sarma_uniform_k4 () =
  (* The stitched walk is still a faithful Aldous-Broder run. *)
  let g = Gen.complete 4 in
  let trees, lookup = Tree.index g in
  let counts = Array.make (Array.length trees) 0 in
  let prng = Prng.create ~seed:3 in
  let trials = 12_000 in
  for _ = 1 to trials do
    let net = Cnet.create g in
    let r = Congest_walk.das_sarma net prng ~lambda:4 ~eta:2 in
    counts.(lookup r.Congest_walk.tree) <- counts.(lookup r.Congest_walk.tree) + 1
  done;
  let tv = Dist.tv_counts ~counts (Dist.uniform 16) in
  let floor = 3.0 *. Stats.tv_noise_floor ~samples:trials ~support:16 +. 0.01 in
  Alcotest.(check bool) (Printf.sprintf "tv %.4f < %.4f" tv floor) true (tv < floor)

let test_auto_lambda () =
  let net = Cnet.create (Gen.path 10) in
  (* depth 9, estimate 100: sqrt(900) = 30. *)
  Alcotest.(check int) "balanced" 30 (Congest_walk.auto_lambda net ~walk_estimate:100)

(* --- qcheck --- *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"both baselines yield spanning trees" ~count:20
      (make Gen.(pair (int_range 4 10) (int_range 0 10_000)))
      (fun (n, seed) ->
        let prng = Prng.create ~seed in
        let g = Cc_graph.Gen.random_connected prng ~n ~extra_edges:3 in
        let net = Cnet.create g in
        let r1 = Congest_walk.step_by_step net prng in
        let r2 = Congest_walk.das_sarma net prng ~lambda:8 ~eta:2 in
        Tree.is_spanning_tree g r1.Congest_walk.tree
        && Tree.is_spanning_tree g r2.Congest_walk.tree);
    Test.make ~name:"exchange rounds equal max directed-edge load" ~count:100
      (make Gen.(pair (int_range 3 8) (list_size (int_range 1 20) (int_range 0 6))))
      (fun (n, raw) ->
        let g = Cc_graph.Gen.cycle n in
        let net = Cnet.create g in
        let packets =
          List.map
            (fun r ->
              let src = r mod n in
              let dst = (src + 1) mod n in
              { Cnet.src; dst; words = 1 + (r mod 3) })
            raw
        in
        Cnet.exchange net ~label:"t" packets;
        let load = Hashtbl.create 16 in
        List.iter
          (fun { Cnet.src; dst; words } ->
            Hashtbl.replace load (src, dst)
              (words + Option.value ~default:0 (Hashtbl.find_opt load (src, dst))))
          packets;
        let expected = Hashtbl.fold (fun _ w acc -> max w acc) load 0 in
        Float.abs (Cnet.rounds net -. Float.of_int expected) < 1e-9);
  ]

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest qcheck_tests in
  Alcotest.run "cc_congest"
    [
      ( "cnet",
        [
          Alcotest.test_case "adjacency" `Quick test_exchange_adjacency;
          Alcotest.test_case "congestion" `Quick test_exchange_congestion;
          Alcotest.test_case "depth" `Quick test_depth;
          Alcotest.test_case "token route" `Quick test_token_route_cost;
          Alcotest.test_case "reset/ledger" `Quick test_reset_and_ledger;
        ] );
      ( "baselines",
        [
          Alcotest.test_case "step-by-step" `Quick test_step_by_step_tree_and_cost;
          Alcotest.test_case "das sarma valid" `Quick test_das_sarma_tree_valid;
          Alcotest.test_case "das sarma wins" `Slow test_das_sarma_beats_step_by_step_on_lollipop;
          Alcotest.test_case "das sarma uniform" `Slow test_das_sarma_uniform_k4;
          Alcotest.test_case "auto lambda" `Quick test_auto_lambda;
        ] );
      ("properties", qsuite);
    ]
