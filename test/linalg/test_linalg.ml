(* Tests for Cc_linalg: matrix algebra, LU solves, determinants, Schur
   complements, and the Lemma 3 fixed-point rounding machinery. *)

module Mat = Cc_linalg.Mat
module Solve = Cc_linalg.Solve
module Fixed = Cc_linalg.Fixed
module Prng = Cc_util.Prng

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let check_float ?(eps = 1e-9) msg expected actual =
  if not (feq ~eps expected actual) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let random_matrix prng ~rows ~cols =
  Mat.init ~rows ~cols (fun _ _ -> Prng.float prng 2.0 -. 1.0)

let random_stochastic prng n =
  Mat.normalize_rows (Mat.init ~rows:n ~cols:n (fun _ _ -> Prng.float prng 1.0 +. 0.01))

(* --- Mat --- *)

let test_identity_mul () =
  let prng = Prng.create ~seed:1 in
  let a = random_matrix prng ~rows:5 ~cols:5 in
  let i = Mat.identity 5 in
  Alcotest.(check bool) "I*A = A" true (Mat.equal (Mat.mul i a) a);
  Alcotest.(check bool) "A*I = A" true (Mat.equal (Mat.mul a i) a)

let test_mul_known () =
  let a = Mat.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let b = Mat.of_arrays [| [| 5.0; 6.0 |]; [| 7.0; 8.0 |] |] in
  let c = Mat.mul a b in
  check_float "c00" 19.0 (Mat.get c 0 0);
  check_float "c01" 22.0 (Mat.get c 0 1);
  check_float "c10" 43.0 (Mat.get c 1 0);
  check_float "c11" 50.0 (Mat.get c 1 1)

let test_transpose_involution () =
  let prng = Prng.create ~seed:2 in
  let a = random_matrix prng ~rows:4 ~cols:7 in
  Alcotest.(check bool) "(A^T)^T = A" true (Mat.equal (Mat.transpose (Mat.transpose a)) a)

let test_power_matches_repeated_mul () =
  let prng = Prng.create ~seed:3 in
  let a = random_stochastic prng 5 in
  let direct = Mat.mul (Mat.mul a a) (Mat.mul a a) in
  Alcotest.(check bool) "A^4" true (Mat.equal ~tol:1e-9 (Mat.power a 4) direct)

let test_power_zero_and_one () =
  let prng = Prng.create ~seed:4 in
  let a = random_stochastic prng 4 in
  Alcotest.(check bool) "A^0 = I" true (Mat.equal (Mat.power a 0) (Mat.identity 4));
  Alcotest.(check bool) "A^1 = A" true (Mat.equal (Mat.power a 1) a)

let test_power_table () =
  let prng = Prng.create ~seed:5 in
  let a = random_stochastic prng 4 in
  let table = Mat.power_table a ~max_exp:4 in
  Alcotest.(check int) "table length" 5 (Array.length table);
  Array.iteri
    (fun i m ->
      Alcotest.(check bool)
        (Printf.sprintf "table entry 2^%d" i)
        true
        (Mat.equal ~tol:1e-8 m (Mat.power a (1 lsl i))))
    table

let test_mul_vec () =
  let a = Mat.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let y = Mat.mul_vec a [| 1.0; 1.0 |] in
  check_float "y0" 3.0 y.(0);
  check_float "y1" 7.0 y.(1);
  let z = Mat.vec_mul [| 1.0; 1.0 |] a in
  check_float "z0" 4.0 z.(0);
  check_float "z1" 6.0 z.(1)

let test_submatrix () =
  let a = Mat.init ~rows:4 ~cols:4 (fun i j -> float_of_int ((10 * i) + j)) in
  let s = Mat.submatrix a ~row_idx:[| 3; 1 |] ~col_idx:[| 0; 2 |] in
  check_float "s00" 30.0 (Mat.get s 0 0);
  check_float "s01" 32.0 (Mat.get s 0 1);
  check_float "s10" 10.0 (Mat.get s 1 0);
  check_float "s11" 12.0 (Mat.get s 1 1)

let test_row_stochastic_checks () =
  let prng = Prng.create ~seed:6 in
  let a = random_stochastic prng 6 in
  Alcotest.(check bool) "stochastic" true (Mat.is_row_stochastic a);
  let b = Mat.copy a in
  Mat.set b 0 0 (Mat.get b 0 0 +. 0.5);
  Alcotest.(check bool) "broken" false (Mat.is_row_stochastic b)

let test_max_subtractive_error () =
  let exact = Mat.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let approx = Mat.of_arrays [| [| 0.9; 2.0 |]; [| 3.2; 3.5 |] |] in
  (* Largest under-approximation: 4.0 - 3.5 = 0.5; the over-approximation at
     (1,0) must not count. *)
  check_float "subtractive" 0.5 (Mat.max_subtractive_error ~exact ~approx)

(* --- Solve --- *)

let test_solve_known_system () =
  let a = Mat.of_arrays [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] in
  let x = Solve.solve a [| 5.0; 10.0 |] in
  check_float "x0" 1.0 x.(0);
  check_float "x1" 3.0 x.(1)

let test_inverse () =
  let prng = Prng.create ~seed:7 in
  let a = Mat.add (random_matrix prng ~rows:6 ~cols:6) (Mat.scale 6.0 (Mat.identity 6)) in
  let inv = Solve.inverse a in
  Alcotest.(check bool) "A * A^-1 = I" true
    (Mat.equal ~tol:1e-8 (Mat.mul a inv) (Mat.identity 6))

let test_determinant_known () =
  let a = Mat.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  check_float "det" (-2.0) (Solve.determinant a);
  check_float "det I" 1.0 (Solve.determinant (Mat.identity 5))

let test_determinant_singular () =
  let a = Mat.of_arrays [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  check_float "det singular" 0.0 (Solve.determinant a)

let test_determinant_product_rule () =
  let prng = Prng.create ~seed:8 in
  let a = Mat.add (random_matrix prng ~rows:4 ~cols:4) (Mat.scale 2.0 (Mat.identity 4)) in
  let b = Mat.add (random_matrix prng ~rows:4 ~cols:4) (Mat.scale 2.0 (Mat.identity 4)) in
  check_float ~eps:1e-6 "det(AB) = det A det B"
    (Solve.determinant a *. Solve.determinant b)
    (Solve.determinant (Mat.mul a b))

let test_log_determinant_sign () =
  let a = Mat.of_arrays [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  let sign, logdet = Solve.log_determinant a in
  Alcotest.(check int) "sign" (-1) sign;
  check_float "log |det|" 0.0 logdet

let test_singular_solve_raises () =
  let a = Mat.of_arrays [| [| 1.0; 1.0 |]; [| 1.0; 1.0 |] |] in
  Alcotest.check_raises "singular" (Failure "Solve.lu_solve: singular matrix")
    (fun () -> ignore (Solve.solve a [| 1.0; 2.0 |]))

(* --- Schur complement (matrix level) --- *)

let test_schur_block_identity () =
  (* For M = [[A, B], [C, D]] with S = last block indexes,
     SCHUR(M,S) = D - C A^{-1} B. 2x2 blocks chosen by hand. *)
  let m =
    Mat.of_arrays
      [|
        [| 4.0; 0.0; 1.0; 0.0 |];
        [| 0.0; 4.0; 0.0; 1.0 |];
        [| 1.0; 0.0; 3.0; 1.0 |];
        [| 0.0; 1.0; 1.0; 3.0 |];
      |]
  in
  let s = Solve.schur_complement m ~keep:[| 2; 3 |] in
  (* D - C A^{-1} B = [[3,1],[1,3]] - (1/4) I = [[2.75, 1], [1, 2.75]] *)
  check_float "s00" 2.75 (Mat.get s 0 0);
  check_float "s01" 1.0 (Mat.get s 0 1);
  check_float "s11" 2.75 (Mat.get s 1 1)

let test_schur_full_keep_is_identity_op () =
  let prng = Prng.create ~seed:9 in
  let m = random_matrix prng ~rows:4 ~cols:4 in
  let s = Solve.schur_complement m ~keep:[| 0; 1; 2; 3 |] in
  Alcotest.(check bool) "keep all = same" true (Mat.equal s m)

let test_schur_quotient_property () =
  (* Schur complements compose: eliminating {0} then {1} equals eliminating
     {0,1} (quotient property). *)
  let prng = Prng.create ~seed:10 in
  let m = Mat.add (random_matrix prng ~rows:5 ~cols:5) (Mat.scale 5.0 (Mat.identity 5)) in
  let direct = Solve.schur_complement m ~keep:[| 2; 3; 4 |] in
  let step1 = Solve.schur_complement m ~keep:[| 1; 2; 3; 4 |] in
  let step2 = Solve.schur_complement step1 ~keep:[| 1; 2; 3 |] in
  Alcotest.(check bool) "quotient property" true (Mat.equal ~tol:1e-8 direct step2)

let test_schur_determinant_identity () =
  (* det M = det(M_EE) * det(SCHUR(M, S)). *)
  let prng = Prng.create ~seed:11 in
  let m = Mat.add (random_matrix prng ~rows:5 ~cols:5) (Mat.scale 5.0 (Mat.identity 5)) in
  let keep = [| 2; 3; 4 |] in
  let elim = [| 0; 1 |] in
  let m_ee = Mat.submatrix m ~row_idx:elim ~col_idx:elim in
  let schur = Solve.schur_complement m ~keep in
  check_float ~eps:1e-6 "det factorization" (Solve.determinant m)
    (Solve.determinant m_ee *. Solve.determinant schur)

(* --- Fixed --- *)

let test_round_down_basic () =
  check_float "1/3 at 2 bits" 0.25 (Fixed.round_down ~bits:2 (1.0 /. 3.0));
  check_float "exact dyadic" 0.5 (Fixed.round_down ~bits:4 0.5);
  check_float "zero" 0.0 (Fixed.round_down ~bits:8 0.0)

let test_round_down_subtractive () =
  let prng = Prng.create ~seed:12 in
  for _ = 1 to 1000 do
    let x = Prng.float prng 1.0 in
    let r = Fixed.round_down ~bits:10 x in
    if r > x || x -. r >= Float.pow 2.0 (-10.0) then
      Alcotest.failf "round_down not subtractive at %.17g -> %.17g" x r
  done

let test_rounded_power_error_within_lemma3 () =
  let prng = Prng.create ~seed:13 in
  let n = 8 in
  let m = random_stochastic prng n in
  let bits = 20 in
  List.iter
    (fun k ->
      let exact = Mat.power m k in
      let approx = Fixed.rounded_power ~bits m k in
      let err = Mat.max_subtractive_error ~exact ~approx in
      let bound = Fixed.lemma3_error_bound ~n ~k ~bits in
      if err > bound then
        Alcotest.failf "k=%d: error %.3e exceeds Lemma 3 bound %.3e" k err bound;
      (* One-sided: approx never exceeds exact by more than float dust. *)
      let over = Mat.max_subtractive_error ~exact:approx ~approx:exact in
      if over > 1e-12 then Alcotest.failf "k=%d: approximation overshoots" k)
    [ 1; 2; 4; 8; 16 ]

let test_lemma3_bits_sufficient () =
  let n = 16 and k = 64 and beta = 1e-6 in
  let bits = Fixed.lemma3_bits ~n ~k ~beta in
  let bound = Fixed.lemma3_error_bound ~n ~k ~bits in
  Alcotest.(check bool)
    (Printf.sprintf "bits=%d gives bound %.3e <= beta" bits bound)
    true (bound <= beta)

let test_rounded_power_rejects_non_power_of_two () =
  let m = Mat.identity 2 in
  Alcotest.check_raises "k=3"
    (Invalid_argument "Fixed.rounded_power: k must be a positive power of two")
    (fun () -> ignore (Fixed.rounded_power ~bits:10 m 3))

(* --- qcheck properties --- *)

let qcheck_tests =
  let open QCheck in
  let dim = Gen.int_range 2 7 in
  let seeded = make Gen.(pair dim (int_range 0 10_000)) in
  [
    Test.make ~name:"mul is associative" ~count:50 seeded (fun (n, seed) ->
        let prng = Prng.create ~seed in
        let a = random_matrix prng ~rows:n ~cols:n in
        let b = random_matrix prng ~rows:n ~cols:n in
        let c = random_matrix prng ~rows:n ~cols:n in
        Mat.equal ~tol:1e-8 (Mat.mul (Mat.mul a b) c) (Mat.mul a (Mat.mul b c)));
    Test.make ~name:"transpose reverses products" ~count:50 seeded
      (fun (n, seed) ->
        let prng = Prng.create ~seed in
        let a = random_matrix prng ~rows:n ~cols:n in
        let b = random_matrix prng ~rows:n ~cols:n in
        Mat.equal ~tol:1e-9
          (Mat.transpose (Mat.mul a b))
          (Mat.mul (Mat.transpose b) (Mat.transpose a)));
    Test.make ~name:"stochastic matrices are closed under product" ~count:50
      seeded (fun (n, seed) ->
        let prng = Prng.create ~seed in
        let a = random_stochastic prng n and b = random_stochastic prng n in
        Mat.is_row_stochastic ~tol:1e-7 (Mat.mul a b));
    Test.make ~name:"solve then multiply recovers rhs" ~count:50 seeded
      (fun (n, seed) ->
        let prng = Prng.create ~seed in
        let a =
          Mat.add (random_matrix prng ~rows:n ~cols:n)
            (Mat.scale (2.0 *. float_of_int n) (Mat.identity n))
        in
        let b = Array.init n (fun _ -> Prng.float prng 1.0) in
        let x = Solve.solve a b in
        let back = Mat.mul_vec a x in
        Array.for_all2 (fun u v -> Float.abs (u -. v) < 1e-7) back b);
    Test.make ~name:"rounded_power stays within Lemma 3 budget" ~count:30
      (make Gen.(pair (int_range 3 8) (int_range 0 10_000)))
      (fun (n, seed) ->
        let prng = Prng.create ~seed in
        let m = random_stochastic prng n in
        let bits = 24 and k = 8 in
        let err =
          Mat.max_subtractive_error ~exact:(Mat.power m k)
            ~approx:(Fixed.rounded_power ~bits m k)
        in
        err <= Fixed.lemma3_error_bound ~n ~k ~bits);
  ]

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest qcheck_tests in
  Alcotest.run "cc_linalg"
    [
      ( "mat",
        [
          Alcotest.test_case "identity mul" `Quick test_identity_mul;
          Alcotest.test_case "known product" `Quick test_mul_known;
          Alcotest.test_case "transpose involution" `Quick test_transpose_involution;
          Alcotest.test_case "power" `Quick test_power_matches_repeated_mul;
          Alcotest.test_case "power 0/1" `Quick test_power_zero_and_one;
          Alcotest.test_case "power table" `Quick test_power_table;
          Alcotest.test_case "mat-vec" `Quick test_mul_vec;
          Alcotest.test_case "submatrix" `Quick test_submatrix;
          Alcotest.test_case "stochastic checks" `Quick test_row_stochastic_checks;
          Alcotest.test_case "subtractive error" `Quick test_max_subtractive_error;
        ] );
      ( "solve",
        [
          Alcotest.test_case "known system" `Quick test_solve_known_system;
          Alcotest.test_case "inverse" `Quick test_inverse;
          Alcotest.test_case "determinant" `Quick test_determinant_known;
          Alcotest.test_case "singular determinant" `Quick test_determinant_singular;
          Alcotest.test_case "det product rule" `Quick test_determinant_product_rule;
          Alcotest.test_case "logdet sign" `Quick test_log_determinant_sign;
          Alcotest.test_case "singular solve raises" `Quick test_singular_solve_raises;
        ] );
      ( "schur",
        [
          Alcotest.test_case "block identity" `Quick test_schur_block_identity;
          Alcotest.test_case "keep all" `Quick test_schur_full_keep_is_identity_op;
          Alcotest.test_case "quotient property" `Quick test_schur_quotient_property;
          Alcotest.test_case "determinant identity" `Quick test_schur_determinant_identity;
        ] );
      ( "fixed",
        [
          Alcotest.test_case "round_down basic" `Quick test_round_down_basic;
          Alcotest.test_case "round_down subtractive" `Quick test_round_down_subtractive;
          Alcotest.test_case "Lemma 3 error budget" `Quick test_rounded_power_error_within_lemma3;
          Alcotest.test_case "Lemma 3 bits" `Quick test_lemma3_bits_sufficient;
          Alcotest.test_case "rejects k=3" `Quick test_rounded_power_rejects_non_power_of_two;
        ] );
      ("properties", qsuite);
    ]
