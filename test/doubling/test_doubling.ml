(* Tests for Cc_doubling: the load-balanced doubling algorithm (Section 4),
   its unbalanced BCX baseline, Corollary 1-2 tree sampling, and the PageRank
   application. *)

module Graph = Cc_graph.Graph
module Gen = Cc_graph.Gen
module Tree = Cc_graph.Tree
module Walk = Cc_walks.Walk
module Doubling = Cc_doubling.Doubling
module Net = Cc_clique.Net
module Fault = Cc_clique.Fault
module Prng = Cc_util.Prng
module Dist = Cc_util.Dist
module Stats = Cc_util.Stats

let scheme_lb n = Doubling.default_scheme ~n

let run_walks ?(seed = 1) ?(scheme_of = scheme_lb) g tau =
  let n = Graph.n g in
  let net = Net.create ~n in
  let prng = Prng.create ~seed in
  Doubling.run net prng g ~tau ~scheme:(scheme_of n)

(* --- structural validity --- *)

let test_walks_are_valid () =
  let g = Gen.cycle 12 in
  let r = run_walks g 16 in
  Alcotest.(check int) "one walk per vertex" 12 (Array.length r.Doubling.walks);
  Array.iteri
    (fun v w ->
      Alcotest.(check int) "length 17" 17 (Array.length w);
      Alcotest.(check int) "starts at v" v w.(0);
      for i = 1 to Array.length w - 1 do
        if not (Graph.has_edge g w.(i - 1) w.(i)) then
          Alcotest.failf "vertex %d step %d invalid" v i
      done)
    r.Doubling.walks

let test_tau_not_power_of_two () =
  let g = Gen.cycle 8 in
  let r = run_walks g 11 in
  (* Rounded up to 16. *)
  Array.iter
    (fun w -> Alcotest.(check int) "length 17" 17 (Array.length w))
    r.Doubling.walks

let test_iterations_logarithmic () =
  let g = Gen.cycle 8 in
  let r = run_walks g 64 in
  Alcotest.(check int) "log2 64 iterations" 6 r.Doubling.iterations

let test_unbalanced_walks_also_valid () =
  let g = Gen.star 10 in
  let r = run_walks ~scheme_of:(fun _ -> Doubling.Unbalanced) g 8 in
  Array.iteri
    (fun v w ->
      Alcotest.(check int) "starts at v" v w.(0);
      for i = 1 to Array.length w - 1 do
        if not (Graph.has_edge g w.(i - 1) w.(i)) then
          Alcotest.failf "vertex %d step %d invalid" v i
      done)
    r.Doubling.walks

(* --- distributional correctness --- *)

let test_endpoint_distribution () =
  (* Each vertex's walk is a true random walk: endpoint law = P^tau row.
     Walks from different vertices are correlated, but each is marginally
     correct — histogram over independent runs. *)
  let g = Gen.complete 5 in
  let tau = 8 in
  let exact = Walk.endpoint_distribution g ~start:0 ~len:tau in
  let counts = Array.make 5 0 in
  let trials = 6000 in
  let n = Graph.n g in
  let net = Net.create ~n in
  let prng = Prng.create ~seed:3 in
  for _ = 1 to trials do
    let r = Doubling.run net prng g ~tau ~scheme:(scheme_lb n) in
    let w = r.Doubling.walks.(0) in
    counts.(w.(tau)) <- counts.(w.(tau)) + 1
  done;
  let tv = Dist.tv_counts ~counts exact in
  Alcotest.(check bool) (Printf.sprintf "endpoint tv %.4f" tv) true (tv < 0.03)

let test_interior_marginal () =
  let g = Gen.cycle 6 in
  let tau = 8 and probe = 5 in
  let exact = Walk.endpoint_distribution g ~start:2 ~len:probe in
  let counts = Array.make 6 0 in
  let trials = 6000 in
  let net = Net.create ~n:6 in
  let prng = Prng.create ~seed:4 in
  for _ = 1 to trials do
    let r = Doubling.run net prng g ~tau ~scheme:(scheme_lb 6) in
    let w = r.Doubling.walks.(2) in
    counts.(w.(probe)) <- counts.(w.(probe)) + 1
  done;
  let tv = Dist.tv_counts ~counts exact in
  Alcotest.(check bool) (Printf.sprintf "interior tv %.4f" tv) true (tv < 0.03)

let test_walks_share_randomness_but_each_is_valid () =
  (* The index-based merge makes walks from different vertices share suffixes
     (the paper notes they are not independent); check that sharing actually
     happens — two walks ending at a common vertex mid-way continue
     identically — while every walk stays individually valid. *)
  let g = Gen.complete 6 in
  let net = Net.create ~n:6 in
  let prng = Prng.create ~seed:40 in
  let r = Doubling.run net prng g ~tau:16 ~scheme:(scheme_lb 6) in
  let shared = ref false in
  let w = r.Doubling.walks in
  for a = 0 to 5 do
    for b = a + 1 to 5 do
      for i = 1 to 15 do
        if w.(a).(i) = w.(b).(i) && w.(a).(i + 1) = w.(b).(i + 1) then
          shared := true
      done
    done
  done;
  Alcotest.(check bool) "some suffix sharing occurs" true !shared

let test_doubling_deterministic_given_seed () =
  let g = Gen.cycle 7 in
  let run seed =
    let net = Net.create ~n:7 in
    (Doubling.run net (Prng.create ~seed) g ~tau:8 ~scheme:(scheme_lb 7)).Doubling.walks
  in
  Alcotest.(check bool) "same seed, same walks" true (run 9 = run 9);
  Alcotest.(check bool) "different seeds differ" true (run 9 <> run 10)

(* --- fault tolerance --- *)

let check_walks_valid g tau r =
  Array.iteri
    (fun v w ->
      Alcotest.(check int) "length" (tau + 1) (Array.length w);
      Alcotest.(check int) "starts at v" v w.(0);
      for i = 1 to Array.length w - 1 do
        if not (Graph.has_edge g w.(i - 1) w.(i)) then
          Alcotest.failf "vertex %d step %d invalid under faults" v i
      done)
    r.Doubling.walks

let run_faulty ?(seed = 1) spec g tau =
  let n = Graph.n g in
  let net = Net.with_faults (Fault.create spec) (Net.create ~n) in
  let prng = Prng.create ~seed in
  (Doubling.run net prng g ~tau ~scheme:(scheme_lb n), net)

let test_faulty_drops_heal () =
  let g = Gen.cycle 12 in
  let r, net = run_faulty (Fault.spec ~drop_prob:0.1 ~seed:3 ()) g 16 in
  check_walks_valid g 16 r;
  (match r.Doubling.health with
  | Fault.Healed { retransmits; _ } ->
      Alcotest.(check bool) "retransmits counted" true (retransmits > 0)
  | h -> Alcotest.failf "expected Healed, got %a" Fault.pp_health h);
  let labels = List.map (fun (l, _, _, _) -> l) (Net.ledger net) in
  Alcotest.(check bool) "retry labels in ledger" true
    (List.exists
       (fun l -> String.length l > 6 && Filename.check_suffix l ":retry")
       labels);
  Alcotest.(check bool) "overhead metered" true (Net.overhead_rounds net > 0.0)

let test_faulty_walks_match_fault_free () =
  (* The fault stream must not perturb the algorithm's randomness: healed
     walks are bit-identical to the fault-free run at the same seed. *)
  let g = Gen.cycle 12 in
  let clean = run_walks ~seed:4 g 16 in
  let healed, _ = run_faulty ~seed:4 (Fault.spec ~drop_prob:0.1 ~seed:5 ()) g 16 in
  Alcotest.(check bool) "identical walks" true
    (clean.Doubling.walks = healed.Doubling.walks)

let test_noncoordinator_crash_recovers () =
  (* Any single non-coordinator crash must yield a correct (recovered or
     gracefully degraded) result; an exception is the only failure mode. *)
  let g = Gen.cycle 10 in
  for victim = 1 to 9 do
    let spec = Fault.spec ~crashes:[ (victim, 2.0) ] ~seed:victim () in
    let r, _ = run_faulty ~seed:8 spec g 16 in
    check_walks_valid g 16 r;
    match r.Doubling.health with
    | Fault.Healthy -> ()  (* crash fired after the last iteration *)
    | Fault.Healed { reroutes; _ } ->
        Alcotest.(check bool)
          (Printf.sprintf "victim %d rerouted" victim)
          true (reroutes > 0)
    | Fault.Unrecoverable _ as h ->
        Alcotest.failf "single non-coordinator crash degraded: %a"
          Fault.pp_health h
  done

let test_coordinator_crash_degrades_structurally () =
  let g = Gen.cycle 10 in
  let spec = Fault.spec ~crashes:[ (0, 1.0) ] () in
  let r, net = run_faulty ~seed:2 spec g 16 in
  (* Never an exception: valid fallback walks + structured failure. *)
  check_walks_valid g 16 r;
  (match r.Doubling.health with
  | Fault.Unrecoverable { crashed; _ } ->
      Alcotest.(check (list int)) "names the crash" [ 0 ] crashed
  | h -> Alcotest.failf "expected Unrecoverable, got %a" Fault.pp_health h);
  Alcotest.(check bool) "fallback metered as overhead" true
    (Net.overhead_rounds net > 0.0)

let test_fault_seed_determinism () =
  let g = Gen.cycle 12 in
  let go () =
    let r, net =
      run_faulty ~seed:4
        (Fault.spec ~drop_prob:0.1 ~corrupt_prob:0.02 ~seed:9 ())
        g 16
    in
    (r.Doubling.walks, r.Doubling.health, Net.ledger net, Net.retransmits net)
  in
  Alcotest.(check bool) "bit-identical reruns" true (go () = go ())

(* --- load balancing (Lemma 4) --- *)

let test_load_balanced_beats_unbalanced_on_star () =
  (* On a star, half of all walks end at the center: the unbalanced scheme
     funnels ~k*n/2 tuples into one machine while hashing spreads them. *)
  let n = 24 in
  let g = Gen.star n in
  let tau = 32 in
  let r_lb = run_walks ~seed:5 g tau in
  let r_ub = run_walks ~seed:5 ~scheme_of:(fun _ -> Doubling.Unbalanced) g tau in
  let max_lb = Array.fold_left max 0 r_lb.Doubling.max_tuples_received in
  let max_ub = Array.fold_left max 0 r_ub.Doubling.max_tuples_received in
  Alcotest.(check bool)
    (Printf.sprintf "lb %d < ub %d" max_lb max_ub)
    true
    (max_lb * 2 < max_ub);
  Alcotest.(check bool) "fewer rounds too" true
    (r_lb.Doubling.rounds <= r_ub.Doubling.rounds)

let test_lemma4_bound_holds () =
  let n = 32 in
  let g = Gen.star n in
  let r = run_walks ~seed:6 g 64 in
  (* First iteration has the largest k = tau. *)
  let bound = Doubling.lemma4_bound ~n ~k:64 ~c:1.0 in
  Array.iter
    (fun load ->
      if float_of_int load > bound then
        Alcotest.failf "load %d exceeds Lemma 4 bound %.0f" load bound)
    r.Doubling.max_tuples_received

(* --- Corollary 1-2: spanning trees --- *)

let test_sample_tree_valid () =
  let g = Gen.lollipop ~clique:5 ~tail:4 in
  let net = Net.create ~n:9 in
  let prng = Prng.create ~seed:7 in
  for _ = 1 to 10 do
    let tree, tau = Doubling.sample_tree net prng g ~tau0:8 in
    Alcotest.(check bool) "valid" true (Tree.is_spanning_tree g tree);
    Alcotest.(check bool) "tau grew enough" true (tau >= 8)
  done

let test_sample_tree_uniform_k4 () =
  let g = Gen.complete 4 in
  let trees, lookup = Tree.index g in
  let counts = Array.make (Array.length trees) 0 in
  let net = Net.create ~n:4 in
  let prng = Prng.create ~seed:8 in
  let trials = 20_000 in
  for _ = 1 to trials do
    let tree, _ = Doubling.sample_tree net prng g ~tau0:8 in
    counts.(lookup tree) <- counts.(lookup tree) + 1
  done;
  let tv = Dist.tv_counts ~counts (Dist.uniform 16) in
  let floor = 3.0 *. Stats.tv_noise_floor ~samples:trials ~support:16 in
  Alcotest.(check bool) (Printf.sprintf "tv %.4f < %.4f" tv floor) true (tv < floor)

let test_er_tree_rounds_within_theorem1_bound () =
  (* Corollary 1-2 regime: the rounds spent sampling a tree on an ER graph
     stay within a constant factor of the Theorem 1 bound
     O((tau/n) log tau log n) for the total walk length tau actually used.
     (The asymptotic win over the tau-round step-by-step baseline appears
     only once n >> log tau * log n; here we verify the bound's shape.) *)
  let prng = Prng.create ~seed:9 in
  let n = 64 in
  let g = Gen.erdos_renyi_connected prng ~n ~p:(4.0 *. Float.log (float_of_int n) /. float_of_int n) in
  let net = Net.create ~n in
  let tree, tau = Doubling.sample_tree net prng g ~tau0:(4 * n) in
  Alcotest.(check bool) "valid" true (Tree.is_spanning_tree g tree);
  let tau_f = float_of_int (max tau n) in
  let bound =
    8.0 *. (tau_f /. float_of_int n) *. Float.log2 tau_f *. Float.log2 (float_of_int n)
    +. 100.0
  in
  Alcotest.(check bool)
    (Printf.sprintf "rounds %.0f within bound %.0f (tau=%d)" (Net.rounds net) bound tau)
    true
    (Net.rounds net < bound)

(* --- PageRank application --- *)

let test_pagerank_close_to_power_iteration () =
  let prng = Prng.create ~seed:10 in
  let n = 24 in
  let g = Gen.erdos_renyi_connected prng ~n ~p:0.3 in
  let net = Net.create ~n in
  let estimate = Doubling.pagerank net prng g ~walks_per_node:64 ~epsilon:0.2 in
  let exact = Doubling.pagerank_exact g ~epsilon:0.2 in
  let l1 =
    Array.fold_left ( +. ) 0.0
      (Array.mapi (fun i x -> Float.abs (x -. exact.(i))) estimate)
  in
  Alcotest.(check bool) (Printf.sprintf "L1 error %.4f" l1) true (l1 < 0.15)

let test_pagerank_exact_is_distribution () =
  let g = Gen.star 8 in
  let pi = Doubling.pagerank_exact g ~epsilon:0.15 in
  let total = Array.fold_left ( +. ) 0.0 pi in
  Alcotest.(check (float 1e-9)) "sums to 1" 1.0 total;
  (* Star center accumulates the most mass. *)
  Array.iteri
    (fun i x -> if i > 0 && x >= pi.(0) then Alcotest.fail "leaf beats center")
    pi

(* --- qcheck --- *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"doubling walks are valid on random graphs" ~count:25
      (make Gen.(pair (int_range 4 12) (int_range 0 10_000)))
      (fun (n, seed) ->
        let prng = Prng.create ~seed in
        let g = Cc_graph.Gen.random_connected prng ~n ~extra_edges:n in
        let net = Net.create ~n in
        let r = Doubling.run net prng g ~tau:8 ~scheme:(scheme_lb n) in
        Array.for_all
          (fun w ->
            let ok = ref (Array.length w = 9) in
            for i = 1 to Array.length w - 1 do
              if not (Graph.has_edge g w.(i - 1) w.(i)) then ok := false
            done;
            !ok)
          r.Doubling.walks);
    Test.make ~name:"doubling trees are spanning trees" ~count:25
      (make Gen.(pair (int_range 4 10) (int_range 0 10_000)))
      (fun (n, seed) ->
        let prng = Prng.create ~seed in
        let g = Cc_graph.Gen.random_connected prng ~n ~extra_edges:2 in
        let net = Net.create ~n in
        let tree, _ = Doubling.sample_tree net prng g ~tau0:4 in
        Tree.is_spanning_tree g tree);
    Test.make ~name:"iterations = log2 (next_pow2 tau)" ~count:25
      (make Gen.(pair (int_range 1 200) (int_range 0 1000)))
      (fun (tau, seed) ->
        let prng = Prng.create ~seed in
        let g = Cc_graph.Gen.cycle 6 in
        let net = Net.create ~n:6 in
        let r = Doubling.run net prng g ~tau ~scheme:(scheme_lb 6) in
        let rec lg p e = if p >= tau then e else lg (2 * p) (e + 1) in
        r.Doubling.iterations = lg 1 0);
  ]

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest qcheck_tests in
  Alcotest.run "cc_doubling"
    [
      ( "structure",
        [
          Alcotest.test_case "valid walks" `Quick test_walks_are_valid;
          Alcotest.test_case "tau rounding" `Quick test_tau_not_power_of_two;
          Alcotest.test_case "iterations" `Quick test_iterations_logarithmic;
          Alcotest.test_case "unbalanced valid" `Quick test_unbalanced_walks_also_valid;
          Alcotest.test_case "suffix sharing" `Quick test_walks_share_randomness_but_each_is_valid;
          Alcotest.test_case "determinism" `Quick test_doubling_deterministic_given_seed;
        ] );
      ( "faults",
        [
          Alcotest.test_case "drops heal" `Quick test_faulty_drops_heal;
          Alcotest.test_case "healed = fault-free walks" `Quick test_faulty_walks_match_fault_free;
          Alcotest.test_case "non-coordinator crash" `Quick test_noncoordinator_crash_recovers;
          Alcotest.test_case "coordinator crash degrades" `Quick test_coordinator_crash_degrades_structurally;
          Alcotest.test_case "fault-seed determinism" `Quick test_fault_seed_determinism;
        ] );
      ( "distribution",
        [
          Alcotest.test_case "endpoint law" `Slow test_endpoint_distribution;
          Alcotest.test_case "interior law" `Slow test_interior_marginal;
        ] );
      ( "load_balancing",
        [
          Alcotest.test_case "star hotspot" `Quick test_load_balanced_beats_unbalanced_on_star;
          Alcotest.test_case "Lemma 4 bound" `Quick test_lemma4_bound_holds;
        ] );
      ( "trees",
        [
          Alcotest.test_case "valid trees" `Quick test_sample_tree_valid;
          Alcotest.test_case "uniform on K4" `Slow test_sample_tree_uniform_k4;
          Alcotest.test_case "ER rounds" `Quick test_er_tree_rounds_within_theorem1_bound;
        ] );
      ( "pagerank",
        [
          Alcotest.test_case "matches power iteration" `Slow test_pagerank_close_to_power_iteration;
          Alcotest.test_case "exact is distribution" `Quick test_pagerank_exact_is_distribution;
        ] );
      ("properties", qsuite);
    ]
