(* Unit and process-level tests of the multi-process transport: wire framing
   and codec, shard state machine, the worker protocol (over a real fork),
   supervision (real SIGKILLs, wire-level fault injection, degradation), and
   the cross-transport determinism contract at the Net level. *)

module Wire = Cc_transport.Wire
module Shard = Cc_transport.Shard
module Worker = Cc_transport.Worker
module Supervisor = Cc_transport.Supervisor
module Transport = Cc_transport.Transport
module Net = Cc_clique.Net
module Fault = Cc_clique.Fault

let book ?(sent = [||]) ?(recv = [||]) ?(rounds = 1.0) ?(label = "x") () =
  {
    Wire.kind = "exchange";
    label;
    rounds;
    messages = 3;
    words = 12;
    max_load = 7;
    sent;
    recv;
  }

let check_book msg (a : Wire.book) (b : Wire.book) =
  Alcotest.(check string) (msg ^ " kind") a.kind b.kind;
  Alcotest.(check string) (msg ^ " label") a.label b.label;
  Alcotest.(check bool)
    (msg ^ " rounds bit-exact") true
    (Int64.equal (Int64.bits_of_float a.rounds) (Int64.bits_of_float b.rounds));
  Alcotest.(check int) (msg ^ " messages") a.messages b.messages;
  Alcotest.(check int) (msg ^ " words") a.words b.words;
  Alcotest.(check int) (msg ^ " max_load") a.max_load b.max_load;
  Alcotest.(check (array int)) (msg ^ " sent") a.sent b.sent;
  Alcotest.(check (array int)) (msg ^ " recv") a.recv b.recv

(* --- wire codec --- *)

let roundtrip m =
  match Wire.decode (Wire.encode m) with
  | Ok m' -> m'
  | Error e -> Alcotest.failf "decode failed: %s" e

let test_codec_roundtrip () =
  (match
     roundtrip (Wire.Hello { worker = 3; telemetry = false; span_base = -1 })
   with
  | Wire.Hello { worker; telemetry; span_base } ->
      Alcotest.(check int) "worker" 3 worker;
      Alcotest.(check bool) "telemetry flag" false telemetry;
      Alcotest.(check int) "span base off" (-1) span_base
  | _ -> Alcotest.fail "wrong variant");
  (match
     roundtrip
       (Wire.Hello { worker = 0; telemetry = true; span_base = 1 lsl 30 })
   with
  | Wire.Hello { span_base; _ } ->
      Alcotest.(check int) "span base" (1 lsl 30) span_base
  | _ -> Alcotest.fail "wrong variant");
  (* A hello without the flags (older peer) defaults to telemetry on and
     tracing off. *)
  (match Wire.decode "{\"t\":\"hello\",\"worker\":1}" with
  | Ok (Wire.Hello { telemetry; span_base; _ }) ->
      Alcotest.(check bool) "telemetry default" true telemetry;
      Alcotest.(check int) "span base default" (-1) span_base
  | _ -> Alcotest.fail "bare hello must decode");
  (* A fractional round count that needs all 17 significant digits: the wire
     must round-trip the exact bits (the digest folds them). *)
  let b =
    book ~rounds:(1.0 /. 3.0) ~sent:[| 1; 0; 5 |] ~recv:[| 0; 2; 0 |] ()
  in
  (match roundtrip (Wire.Book { shard = 1; seq = 42; book = b }) with
  | Wire.Book { shard; seq; book = b' } ->
      Alcotest.(check int) "shard" 1 shard;
      Alcotest.(check int) "seq" 42 seq;
      check_book "book" b b'
  | _ -> Alcotest.fail "wrong variant");
  (* Empty slices (analytic charges) stay empty. *)
  (match roundtrip (Wire.Book { shard = 0; seq = 1; book = book () }) with
  | Wire.Book { book = b'; _ } ->
      Alcotest.(check int) "empty sent" 0 (Array.length b'.sent)
  | _ -> Alcotest.fail "wrong variant");
  let st =
    {
      Wire.shard = 2;
      lo = 4;
      hi = 8;
      applied = 17;
      digest = 0xdeadbeef01234567L;
      sent = [| 1; 2; 3; 4 |];
      recv = [| 4; 3; 2; 1 |];
    }
  in
  (match roundtrip (Wire.Install st) with
  | Wire.Install st' ->
      Alcotest.(check int) "applied" st.applied st'.Wire.applied;
      Alcotest.(check bool) "digest" true (Int64.equal st.digest st'.Wire.digest);
      Alcotest.(check (array int)) "sent" st.sent st'.Wire.sent
  | _ -> Alcotest.fail "wrong variant");
  (match
     roundtrip
       (Wire.Status { shards = [ (0, 5, 123L); (1, 9, -1L) ]; tele = None })
   with
  | Wire.Status { shards; tele } ->
      Alcotest.(check int) "shards" 2 (List.length shards);
      Alcotest.(check bool) "no telemetry attached" true (tele = None);
      Alcotest.(check bool) "negative digest survives" true
        (List.exists (fun (_, _, d) -> Int64.equal d (-1L)) shards)
  | _ -> Alcotest.fail "wrong variant");
  (* A status carrying a telemetry report round-trips it. *)
  let tele_report =
    {
      Cc_obs.Telemetry.gc =
        {
          minor_words = 12.5;
          major_words = 3.0;
          heap_words = 4096;
          minor_collections = 2;
          major_collections = 1;
          compactions = 0;
        };
      registry = [ ("wire.frames_in", Cc_obs.Metrics.Counter 7) ];
      spans = [ { name = "serve"; calls = 1; wall_s = 0.25 } ];
      shards =
        [ { shard = 0; books = 5; gaps = 1; bytes_in = 640; installs = 1 } ];
      ts = 0x1.5p20;
      trees = [];
      events = [];
    }
  in
  (match
     roundtrip
       (Wire.Status { shards = [ (0, 5, 123L) ]; tele = Some tele_report })
   with
  | Wire.Status { tele = Some r; _ } ->
      Alcotest.(check int) "tele heap words" 4096
        r.Cc_obs.Telemetry.gc.heap_words;
      Alcotest.(check int) "tele registry" 1
        (List.length r.Cc_obs.Telemetry.registry);
      Alcotest.(check int) "tele shard books" 5
        (List.hd r.Cc_obs.Telemetry.shards).Cc_obs.Telemetry.books;
      (* The report stamp rides as a hex float — exact bits survive. *)
      Alcotest.(check bool) "tele ts exact" true
        (r.Cc_obs.Telemetry.ts = 0x1.5p20)
  | _ -> Alcotest.fail "telemetry lost in transit");
  (match roundtrip Wire.Status_req with
  | Wire.Status_req -> ()
  | _ -> Alcotest.fail "wrong variant");
  match roundtrip Wire.Shutdown with
  | Wire.Shutdown -> ()
  | _ -> Alcotest.fail "wrong variant"

let test_decode_rejects_garbage () =
  Alcotest.(check bool) "not json" true (Result.is_error (Wire.decode "np"));
  Alcotest.(check bool)
    "unknown tag" true
    (Result.is_error (Wire.decode "{\"t\":\"gremlin\"}"));
  Alcotest.(check bool)
    "missing field" true
    (Result.is_error (Wire.decode "{\"t\":\"hello\"}"))

(* --- framing over a real socket pair --- *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let test_frame_roundtrip () =
  with_socketpair (fun a b ->
      Wire.write_frame a "hello frame";
      Wire.write_frame a "";
      (match Wire.read_frame b with
      | Ok p -> Alcotest.(check string) "payload" "hello frame" p
      | Error _ -> Alcotest.fail "read failed");
      match Wire.read_frame b with
      | Ok p -> Alcotest.(check string) "empty payload" "" p
      | Error _ -> Alcotest.fail "empty read failed")

let test_corrupted_frame_detected_and_resynced () =
  with_socketpair (fun a b ->
      Wire.write_frame_corrupted a "the bytes arrive flipped";
      Wire.write_frame a "clean follower";
      (match Wire.read_frame b with
      | Error (Wire.Bad_frame _) -> ()
      | Ok _ -> Alcotest.fail "corruption not detected"
      | Error _ -> Alcotest.fail "wrong error");
      (* The length prefix was intact, so the stream resyncs on its own. *)
      match Wire.read_frame b with
      | Ok p -> Alcotest.(check string) "resynced" "clean follower" p
      | Error _ -> Alcotest.fail "stream lost sync")

let test_read_timeout_and_eof () =
  with_socketpair (fun a b ->
      (match Wire.read_frame ~deadline:(Unix.gettimeofday () +. 0.05) b with
      | Error Wire.Timeout -> ()
      | _ -> Alcotest.fail "expected timeout");
      Unix.close a;
      match Wire.read_frame b with
      | Error Wire.Eof -> ()
      | _ -> Alcotest.fail "expected eof")

(* --- shard state machine --- *)

let test_shard_apply_and_gap () =
  let s = Shard.create ~id:0 ~lo:2 ~hi:5 in
  let d0 = s.Shard.digest in
  (match Shard.apply s ~seq:1 (book ~sent:[| 1; 2; 3 |] ~recv:[| 0; 0; 9 |] ())
   with
  | Shard.Applied -> ()
  | Shard.Gap -> Alcotest.fail "seq 1 must apply");
  Alcotest.(check int) "applied" 1 s.Shard.applied;
  Alcotest.(check (array int)) "sent" [| 1; 2; 3 |] s.Shard.sent;
  Alcotest.(check bool) "digest moved" false (Int64.equal d0 s.Shard.digest);
  (* A gap (lost predecessor) is ignored: counters and digest untouched. *)
  let d1 = s.Shard.digest in
  (match Shard.apply s ~seq:3 (book ()) with
  | Shard.Gap -> ()
  | Shard.Applied -> Alcotest.fail "seq 3 must be a gap");
  Alcotest.(check int) "applied unchanged" 1 s.Shard.applied;
  Alcotest.(check bool) "digest unchanged" true (Int64.equal d1 s.Shard.digest);
  (* Replays (seq <= applied) are gaps too. *)
  match Shard.apply s ~seq:1 (book ()) with
  | Shard.Gap -> ()
  | Shard.Applied -> Alcotest.fail "replay must be ignored"

let test_shard_digest_is_order_sensitive () =
  let seq_digest books =
    let s = Shard.create ~id:0 ~lo:0 ~hi:2 in
    List.iteri
      (fun i b -> ignore (Shard.apply s ~seq:(i + 1) b))
      books;
    s.Shard.digest
  in
  let a = book ~label:"a" () and b = book ~label:"b" () in
  Alcotest.(check bool)
    "same books, same digest" true
    (Int64.equal (seq_digest [ a; b ]) (seq_digest [ a; b ]));
  Alcotest.(check bool)
    "order matters" false
    (Int64.equal (seq_digest [ a; b ]) (seq_digest [ b; a ]))

let test_shard_state_roundtrip () =
  let s = Shard.create ~id:3 ~lo:1 ~hi:4 in
  ignore (Shard.apply s ~seq:1 (book ~sent:[| 7; 8; 9 |] ()));
  ignore (Shard.apply s ~seq:2 (book ~rounds:2.5 ()));
  let s' = Shard.of_state (Shard.to_state s) in
  Alcotest.(check int) "applied" s.Shard.applied s'.Shard.applied;
  Alcotest.(check bool)
    "digest" true
    (Int64.equal s.Shard.digest s'.Shard.digest);
  Alcotest.(check (array int)) "sent" s.Shard.sent s'.Shard.sent;
  (* A restored shard continues the same digest chain. *)
  let b3 = book ~label:"post-restore" () in
  ignore (Shard.apply s ~seq:3 b3);
  ignore (Shard.apply s' ~seq:3 b3);
  Alcotest.(check bool)
    "chain continues" true
    (Int64.equal s.Shard.digest s'.Shard.digest)

(* --- worker protocol, over a real fork --- *)

let expect_status fd =
  match Wire.read_frame ~deadline:(Unix.gettimeofday () +. 5.0) fd with
  | Ok p -> (
      match Wire.decode p with
      | Ok (Wire.Status { shards; _ }) -> shards
      | _ -> Alcotest.fail "expected a status reply")
  | Error _ -> Alcotest.fail "no status reply"

let test_worker_protocol () =
  let parent_fd, child_fd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.fork () with
  | 0 ->
      Unix.close parent_fd;
      (try Worker.serve ~input:child_fd ~output:child_fd
       with _ -> ());
      Stdlib.exit 0
  | pid ->
      Unix.close child_fd;
      let send m = Wire.write_frame parent_fd (Wire.encode m) in
      Fun.protect
        ~finally:(fun () ->
          (try Unix.close parent_fd with Unix.Unix_error _ -> ());
          ignore (Unix.waitpid [] pid))
        (fun () ->
          let mirror = Shard.create ~id:0 ~lo:0 ~hi:3 in
          send (Wire.Hello { worker = 0; telemetry = true; span_base = -1 });
          send (Wire.Install (Shard.to_state mirror));
          let b1 = book ~sent:[| 1; 2; 3 |] ~recv:[| 3; 2; 1 |] () in
          let b2 = book ~label:"second" ~rounds:(4.0 /. 7.0) () in
          let b3 = book ~label:"third" () in
          ignore (Shard.apply mirror ~seq:1 b1);
          send (Wire.Book { shard = 0; seq = 1; book = b1 });
          (* Simulate a lost frame: skip seq 2, send seq 3. The worker must
             ignore the gap... *)
          send (Wire.Book { shard = 0; seq = 3; book = b3 });
          send Wire.Status_req;
          (match expect_status parent_fd with
          | [ (0, applied, digest) ] ->
              Alcotest.(check int) "gap ignored" 1 applied;
              Alcotest.(check bool)
                "digest matches mirror" true
                (Int64.equal digest mirror.Shard.digest)
          | _ -> Alcotest.fail "unexpected status shape");
          (* ...and catch up when the parent retransmits in order. *)
          ignore (Shard.apply mirror ~seq:2 b2);
          ignore (Shard.apply mirror ~seq:3 b3);
          send (Wire.Book { shard = 0; seq = 2; book = b2 });
          send (Wire.Book { shard = 0; seq = 3; book = b3 });
          (* A corrupted frame in the middle must be skipped, not desync. *)
          Wire.write_frame_corrupted parent_fd
            (Wire.encode (Wire.Book { shard = 0; seq = 4; book = b1 }));
          send Wire.Status_req;
          (match expect_status parent_fd with
          | [ (0, applied, digest) ] ->
              Alcotest.(check int) "caught up" 3 applied;
              Alcotest.(check bool)
                "digests agree" true
                (Int64.equal digest mirror.Shard.digest)
          | _ -> Alcotest.fail "unexpected status shape");
          send Wire.Shutdown)

(* --- supervisor --- *)

let quick_config =
  { Supervisor.default_config with status_timeout = 1.0; sync_every = 64 }

let emit_books sup k =
  for i = 1 to k do
    let n = Supervisor.machines sup in
    let sent = Array.init n (fun j -> (i + j) mod 5) in
    let recv = Array.init n (fun j -> (i * j) mod 3) in
    Supervisor.emit sup (book ~sent ~recv ~label:(Printf.sprintf "l%d" (i mod 4)) ())
  done

let test_supervisor_happy_path () =
  let sup = Supervisor.create ~config:quick_config ~machines:10 () in
  Alcotest.(check int) "workers" 4 (Supervisor.workers_alive sup);
  emit_books sup 25;
  Supervisor.sync sup;
  (match Supervisor.health sup with
  | Supervisor.All_healthy -> ()
  | h -> Alcotest.failf "expected healthy, got %a" Supervisor.pp_health h);
  let s = Supervisor.snapshot sup in
  Alcotest.(check int) "books" 25 s.Supervisor.books;
  Alcotest.(check bool) "synced" true (s.Supervisor.syncs > 0);
  (* every machine maps to some live worker slot *)
  for m = 0 to 9 do
    ignore (Supervisor.owner_of sup m)
  done;
  Supervisor.shutdown sup;
  Supervisor.shutdown sup;
  (* idempotent *)
  Alcotest.(check int) "all reaped" 0 (Supervisor.workers_alive sup)

let test_supervisor_survives_sigkill () =
  let sup = Supervisor.create ~config:quick_config ~machines:8 () in
  emit_books sup 10;
  (* A real crash-stop, out of band: SIGKILL one worker directly. *)
  (match Supervisor.pids sup with
  | pid :: _ -> Unix.kill pid Sys.sigkill
  | [] -> Alcotest.fail "no workers");
  emit_books sup 10;
  Supervisor.sync sup;
  (match Supervisor.health sup with
  | Supervisor.Recovered r ->
      Alcotest.(check bool) "respawned" true (r.respawns >= 1)
  | h -> Alcotest.failf "expected recovered, got %a" Supervisor.pp_health h);
  Alcotest.(check int) "pool restored" 4 (Supervisor.workers_alive sup);
  Supervisor.shutdown sup

let test_supervisor_crash_machines () =
  let sup = Supervisor.create ~config:quick_config ~machines:8 () in
  emit_books sup 5;
  Supervisor.crash_machines sup [ 3 ];
  emit_books sup 5;
  Supervisor.sync sup;
  (match Supervisor.health sup with
  | Supervisor.Recovered _ -> ()
  | h -> Alcotest.failf "expected recovered, got %a" Supervisor.pp_health h);
  let s = Supervisor.snapshot sup in
  Alcotest.(check int) "one kill" 1 s.Supervisor.kills;
  Alcotest.(check bool) "recovery timed" true (s.Supervisor.recovery_s >= 0.0);
  Supervisor.shutdown sup

let test_supervisor_heals_wire_faults () =
  let config =
    {
      quick_config with
      Supervisor.wire_drop_prob = 0.3;
      wire_corrupt_prob = 0.15;
      wire_seed = 5;
      sync_every = 8;
    }
  in
  let sup = Supervisor.create ~config ~machines:6 () in
  emit_books sup 60;
  Supervisor.sync sup;
  let s = Supervisor.snapshot sup in
  Alcotest.(check bool) "frames dropped" true (s.Supervisor.wire_drops > 0);
  Alcotest.(check bool)
    "frames corrupted" true
    (s.Supervisor.wire_corrupts > 0);
  Alcotest.(check bool)
    "losses retransmitted" true
    (s.Supervisor.wire_retries > 0);
  (* Retransmission healed everything: digests agreed at the final sync, so
     health is Recovered (not Degraded, and nothing was respawned). *)
  (match Supervisor.health sup with
  | Supervisor.Recovered r ->
      Alcotest.(check int) "no respawns needed" 0 r.respawns
  | h -> Alcotest.failf "expected recovered, got %a" Supervisor.pp_health h);
  Supervisor.shutdown sup

let test_supervisor_degrades_when_unrecoverable () =
  let config =
    { quick_config with Supervisor.workers = 1; max_respawns = 0 }
  in
  let sup = Supervisor.create ~config ~machines:4 () in
  emit_books sup 3;
  (* The only worker dies and the respawn budget is zero: no reroute target
     exists, so the supervisor must degrade — and the run must continue. *)
  Supervisor.crash_machines sup [ 0 ];
  (match Supervisor.health sup with
  | Supervisor.Degraded _ -> ()
  | h -> Alcotest.failf "expected degraded, got %a" Supervisor.pp_health h);
  emit_books sup 3;
  (* emit after degrade is a safe no-op *)
  Supervisor.sync sup;
  Alcotest.(check int) "no workers" 0 (Supervisor.workers_alive sup);
  Supervisor.shutdown sup

(* --- telemetry plane + supervision journal --- *)

let counter_value name =
  match Cc_obs.Metrics.get name with
  | Some (Cc_obs.Metrics.Counter c) -> Some c
  | _ -> None

let journal_kind_count sup kind =
  Cc_obs.Journal.events (Supervisor.journal sup)
  |> List.filter (fun (e : Cc_obs.Journal.event) -> e.kind = kind)
  |> List.length

let test_clean_run_counters_and_journal () =
  Cc_obs.Metrics.reset ();
  let sup = Supervisor.create ~config:quick_config ~machines:8 () in
  emit_books sup 20;
  Supervisor.sync sup;
  let s = Supervisor.snapshot sup in
  Alcotest.(check int) "zero kills" 0 s.Supervisor.kills;
  Alcotest.(check int) "zero respawns" 0 s.Supervisor.respawns;
  Alcotest.(check int) "zero reroutes" 0 s.Supervisor.reroutes;
  Supervisor.shutdown sup;
  let j = Supervisor.journal sup in
  Alcotest.(check bool) "clean journal" true (Cc_obs.Journal.is_clean j);
  Alcotest.(check int) "4 worker starts" 4 (journal_kind_count sup "worker_start");
  Alcotest.(check int) "4 worker stops" 4 (journal_kind_count sup "worker_stop");
  (* The JSONL export round-trips. *)
  match Cc_obs.Journal.of_jsonl (Cc_obs.Journal.to_jsonl j) with
  | Ok evs ->
      Alcotest.(check int) "roundtrip size" (Cc_obs.Journal.length j)
        (List.length evs)
  | Error e -> Alcotest.failf "journal roundtrip: %s" e

(* Merged worker counters must be monotone across a SIGKILL+respawn and must
   never double-count: with a sync (= telemetry report) before the kill and
   one after, every shard's merged [wire.books] equals its mirror's applied
   count exactly — epoch 1 committed at the install, epoch 2 reported by the
   respawned worker. *)
let test_telemetry_survives_sigkill_without_double_count () =
  Cc_obs.Metrics.reset ();
  let sup = Supervisor.create ~config:quick_config ~machines:8 () in
  emit_books sup 10;
  Supervisor.sync sup;
  Supervisor.crash_machines sup [ 0 ];
  emit_books sup 10;
  Supervisor.sync sup;
  let s = Supervisor.snapshot sup in
  Alcotest.(check int) "one kill" 1 s.Supervisor.kills;
  Alcotest.(check bool) "healed" true (s.Supervisor.respawns >= 1);
  for shard = 0 to 3 do
    match counter_value (Printf.sprintf "worker.%d.wire.books" shard) with
    | Some books ->
        Alcotest.(check int)
          (Printf.sprintf "shard %d books = applied, no double count" shard)
          20 books
    | None -> Alcotest.failf "worker.%d.wire.books missing" shard
  done;
  (* Journal events mirror the parent counters one for one. *)
  Alcotest.(check int) "kill events" s.Supervisor.kills
    (journal_kind_count sup "kill");
  Alcotest.(check int) "respawn events" s.Supervisor.respawns
    (journal_kind_count sup "respawn");
  Alcotest.(check int) "reroute events" s.Supervisor.reroutes
    (journal_kind_count sup "reroute");
  Alcotest.(check bool) "journal not clean" false
    (Cc_obs.Journal.is_clean (Supervisor.journal sup));
  Supervisor.shutdown sup;
  (* The shutdown flush must not re-add the already-merged epochs. *)
  for shard = 0 to 3 do
    Alcotest.(check (option int))
      (Printf.sprintf "shard %d stable across final flush" shard)
      (Some 20)
      (counter_value (Printf.sprintf "worker.%d.wire.books" shard))
  done

let test_telemetry_off_leaves_registry_clean () =
  Cc_obs.Metrics.reset ();
  let config = { quick_config with Supervisor.telemetry = false } in
  let sup = Supervisor.create ~config ~machines:6 () in
  emit_books sup 15;
  Supervisor.sync sup;
  Supervisor.shutdown sup;
  let leaked =
    Cc_obs.Metrics.snapshot ()
    |> List.filter (fun (name, _) ->
           String.length name >= 7 && String.sub name 0 7 = "worker.")
  in
  Alcotest.(check int) "no worker.* keys" 0 (List.length leaked)

let test_stats_socket_serves_snapshot () =
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "cc-stats-%d.sock" (Unix.getpid ()))
  in
  let config = { quick_config with Supervisor.stats_sock = Some path } in
  let sup = Supervisor.create ~config ~machines:6 () in
  Fun.protect
    ~finally:(fun () ->
      Supervisor.shutdown sup;
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () ->
      emit_books sup 3;
      let client = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect client (Unix.ADDR_UNIX path);
      (* The pending connection is served from the next emit/sync tick. *)
      emit_books sup 1;
      let buf = Buffer.create 1024 in
      let chunk = Bytes.create 4096 in
      let rec slurp () =
        match Unix.read client chunk 0 4096 with
        | 0 -> ()
        | k ->
            Buffer.add_subbytes buf chunk 0 k;
            slurp ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> slurp ()
      in
      slurp ();
      Unix.close client;
      match Cc_obs.Json.of_string (String.trim (Buffer.contents buf)) with
      | Error e -> Alcotest.failf "stats snapshot not JSON: %s" e
      | Ok v ->
          (match Cc_obs.Json.member "machines" v with
          | Some (Cc_obs.Json.Int 6) -> ()
          | _ -> Alcotest.fail "machines field wrong");
          (match
             Option.bind
               (Cc_obs.Json.member "workers" v)
               Cc_obs.Json.to_list_opt
           with
          | Some ws -> Alcotest.(check int) "4 workers listed" 4 (List.length ws)
          | None -> Alcotest.fail "workers field missing");
          (match
             Option.bind (Cc_obs.Json.member "events" v)
               Cc_obs.Json.to_list_opt
           with
          | Some evs ->
              Alcotest.(check bool) "start events present" true
                (List.length evs > 0)
          | None -> Alcotest.fail "events field missing"))

(* --- Net-level cross-transport determinism --- *)

let run_workload ?faults net =
  let n = Net.n net in
  ignore faults;
  for i = 0 to 19 do
    Net.exchange net ~label:"shuffle"
      [
        { Net.src = i mod n; dst = (i + 1) mod n; words = 3 + i };
        { Net.src = (i + 2) mod n; dst = i mod n; words = 2 };
      ];
    if i mod 3 = 0 then Net.broadcast net ~label:"seed" ~src:(i mod n) ~words:5;
    (* An analytic charge with fractional rounds: exercises the lossless
       float path end to end. *)
    Net.charge net ~label:"matmul" (Float.of_int (i + 1) /. 7.0)
  done

let record_run transport ~faulty =
  let n = 9 in
  let net = Net.create ~n in
  let net =
    if faulty then
      Net.with_faults
        (Fault.create (Fault.spec ~drop_prob:0.2 ~crashes:[ (4, 10.0) ] ~seed:3 ()))
        net
    else net
  in
  let r = Cc_obs.Recorder.create ~machines:n () in
  ignore (Net.attach_recorder net r);
  let tr =
    match transport with
    | `Inproc -> None
    | `Mpproc ->
        let tr = Transport.mpproc ~machines:n () in
        Net.set_transport net tr;
        Some tr
    | `Mpproc_no_telemetry ->
        let config =
          { Supervisor.default_config with telemetry = false }
        in
        let tr = Transport.mpproc ~config ~machines:n () in
        Net.set_transport net tr;
        Some tr
  in
  (if faulty then
     for i = 0 to 19 do
       ignore
         (Net.reliable_exchange net ~label:"rx"
            [ { Net.src = i mod n; dst = (i + 3) mod n; words = 4 } ])
     done
   else run_workload net);
  let health =
    Option.map
      (fun tr ->
        tr.Transport.sync ();
        let h = tr.Transport.health () in
        tr.Transport.shutdown ();
        h)
      tr
  in
  ( Cc_obs.Recorder.digest_hex r,
    Net.ledger net,
    Net.rounds net,
    health )

let test_cross_transport_determinism () =
  let d_in, l_in, r_in, _ = record_run `Inproc ~faulty:false in
  let d_mp, l_mp, r_mp, health = record_run `Mpproc ~faulty:false in
  Alcotest.(check string) "chain digest" d_in d_mp;
  Alcotest.(check bool) "ledger" true (l_in = l_mp);
  Alcotest.(check (float 0.0)) "rounds" r_in r_mp;
  match health with
  | Some Supervisor.All_healthy -> ()
  | Some h -> Alcotest.failf "expected healthy, got %a" Supervisor.pp_health h
  | None -> Alcotest.fail "no transport health"

let test_cross_transport_determinism_with_faults () =
  (* Same seeds, faults included — and the model's crash schedule SIGKILLs
     the machine's worker on the Mpproc side, whose recovery must not
     perturb the ledger. *)
  let d_in, l_in, r_in, _ = record_run `Inproc ~faulty:true in
  let d_mp, l_mp, r_mp, health = record_run `Mpproc ~faulty:true in
  Alcotest.(check string) "chain digest" d_in d_mp;
  Alcotest.(check bool) "ledger" true (l_in = l_mp);
  Alcotest.(check (float 0.0)) "rounds" r_in r_mp;
  match health with
  | Some (Supervisor.Recovered r) ->
      Alcotest.(check bool) "worker was killed and healed" true
        (r.respawns + r.reroutes >= 1)
  | Some h ->
      Alcotest.failf "expected recovered, got %a" Supervisor.pp_health h
  | None -> Alcotest.fail "no transport health"

(* Zero-perturbation: telemetry on vs off must not move a single digest bit,
   on either transport, faults included. *)
let test_telemetry_zero_perturbation () =
  let d_on, l_on, r_on, _ = record_run `Mpproc ~faulty:true in
  let d_off, l_off, r_off, _ = record_run `Mpproc_no_telemetry ~faulty:true in
  let d_in, _, _, _ = record_run `Inproc ~faulty:true in
  Alcotest.(check string) "digest on = off" d_on d_off;
  Alcotest.(check string) "digest mpproc = inproc" d_on d_in;
  Alcotest.(check bool) "ledger" true (l_on = l_off);
  Alcotest.(check (float 0.0)) "rounds" r_on r_off

(* Distributed tracing: with a parent collector installed, worker span trees
   ride Status heartbeats plus the final pre-shutdown flush and land as
   per-shard process lanes, ids drawn from the parent-assigned disjoint
   namespaces. *)
let test_remote_trees_become_lanes () =
  Cc_obs.Metrics.reset ();
  let tr = Cc_obs.Trace.create () in
  Cc_obs.Trace.install tr;
  Fun.protect ~finally:Cc_obs.Trace.uninstall (fun () ->
      let sup = Supervisor.create ~config:quick_config ~machines:8 () in
      emit_books sup 40;
      Supervisor.sync sup;
      Supervisor.shutdown sup);
  let shard_lanes =
    Cc_obs.Trace.lanes tr
    |> List.filter (fun (pid, _, _, _) -> pid <> Cc_obs.Trace.local_pid)
  in
  Alcotest.(check int) "one lane per shard" 4 (List.length shard_lanes);
  let ids : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let spans = ref 0 in
  List.iter
    (fun (pid, pname, roots, _) ->
      Alcotest.(check bool) "lane pid above supervisor's" true
        (pid > Cc_obs.Trace.local_pid);
      Alcotest.(check bool) "lane named after its shard" true
        (String.length pname >= 5 && String.sub pname 0 5 = "shard");
      let rec walk (sp : Cc_obs.Trace.span) =
        incr spans;
        Alcotest.(check bool) "remote id outside the parent namespace" true
          (sp.Cc_obs.Trace.id >= 1 lsl 30);
        Alcotest.(check bool) "span id globally unique" false
          (Hashtbl.mem ids sp.Cc_obs.Trace.id);
        Hashtbl.replace ids sp.Cc_obs.Trace.id ();
        List.iter walk sp.Cc_obs.Trace.children
      in
      List.iter walk roots)
    shard_lanes;
  Alcotest.(check bool) "worker spans shipped" true (!spans > 0)

(* Tracing must be invisible to the computation: a parent collector changes
   the Hello handshake (span bases) and adds tree payloads to every Status,
   yet the digest must not move a bit. *)
let test_tracing_zero_perturbation () =
  let d_plain, l_plain, r_plain, _ = record_run `Mpproc ~faulty:true in
  let tr = Cc_obs.Trace.create () in
  Cc_obs.Trace.install tr;
  let d_traced, l_traced, r_traced, _ =
    Fun.protect ~finally:Cc_obs.Trace.uninstall (fun () ->
        record_run `Mpproc ~faulty:true)
  in
  Alcotest.(check string) "digest traced = untraced" d_plain d_traced;
  Alcotest.(check bool) "ledger" true (l_plain = l_traced);
  Alcotest.(check (float 0.0)) "rounds" r_plain r_traced;
  Alcotest.(check bool) "and the trace did capture remote lanes" true
    (List.exists
       (fun (pid, _, _, _) -> pid <> Cc_obs.Trace.local_pid)
       (Cc_obs.Trace.lanes tr))

let test_transport_kind_parsing () =
  Alcotest.(check bool)
    "inproc" true
    (Transport.kind_of_string " Inproc " = Ok Transport.Inproc);
  Alcotest.(check bool)
    "mpproc" true
    (Transport.kind_of_string "MPPROC" = Ok Transport.Mpproc);
  Alcotest.(check bool)
    "empty rejected" true
    (Result.is_error (Transport.kind_of_string "   "));
  Alcotest.(check bool)
    "unknown rejected" true
    (Result.is_error (Transport.kind_of_string "tcp"))

let () =
  (* Worker entrypoint first: the supervisor re-execs this binary. *)
  Worker.maybe_run_as_worker ();
  Alcotest.run "cc_transport"
    [
      ( "wire",
        [
          Alcotest.test_case "codec roundtrip" `Quick test_codec_roundtrip;
          Alcotest.test_case "garbage rejected" `Quick
            test_decode_rejects_garbage;
          Alcotest.test_case "frame roundtrip" `Quick test_frame_roundtrip;
          Alcotest.test_case "corruption detected + resync" `Quick
            test_corrupted_frame_detected_and_resynced;
          Alcotest.test_case "timeout and eof" `Quick test_read_timeout_and_eof;
        ] );
      ( "shard",
        [
          Alcotest.test_case "apply and gap" `Quick test_shard_apply_and_gap;
          Alcotest.test_case "digest order-sensitive" `Quick
            test_shard_digest_is_order_sensitive;
          Alcotest.test_case "state roundtrip" `Quick test_shard_state_roundtrip;
        ] );
      ( "worker",
        [ Alcotest.test_case "protocol over fork" `Quick test_worker_protocol ] );
      ( "supervisor",
        [
          Alcotest.test_case "happy path" `Quick test_supervisor_happy_path;
          Alcotest.test_case "survives SIGKILL" `Quick
            test_supervisor_survives_sigkill;
          Alcotest.test_case "crash_machines" `Quick
            test_supervisor_crash_machines;
          Alcotest.test_case "heals wire faults" `Quick
            test_supervisor_heals_wire_faults;
          Alcotest.test_case "degrades when unrecoverable" `Quick
            test_supervisor_degrades_when_unrecoverable;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "clean-run counters and journal" `Quick
            test_clean_run_counters_and_journal;
          Alcotest.test_case "sigkill merge without double count" `Quick
            test_telemetry_survives_sigkill_without_double_count;
          Alcotest.test_case "telemetry off leaves registry clean" `Quick
            test_telemetry_off_leaves_registry_clean;
          Alcotest.test_case "stats socket snapshot" `Quick
            test_stats_socket_serves_snapshot;
          Alcotest.test_case "zero perturbation" `Quick
            test_telemetry_zero_perturbation;
        ] );
      ( "tracing",
        [
          Alcotest.test_case "remote trees become lanes" `Quick
            test_remote_trees_become_lanes;
          Alcotest.test_case "tracing zero perturbation" `Quick
            test_tracing_zero_perturbation;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "kind parsing" `Quick test_transport_kind_parsing;
          Alcotest.test_case "cross-transport digests" `Quick
            test_cross_transport_determinism;
          Alcotest.test_case "cross-transport with faults" `Quick
            test_cross_transport_determinism_with_faults;
        ] );
    ]
