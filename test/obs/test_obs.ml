(* Tests for the observability layer: tracing determinism under an injected
   clock, net-cost attribution, the zero-perturbation invariant, exporters,
   and the metrics registry. *)

module Trace = Cc_obs.Trace
module Metrics = Cc_obs.Metrics
module Json = Cc_obs.Json
module Net = Cc_clique.Net
module Prng = Cc_util.Prng
module Gen = Cc_graph.Gen
module Sampler = Cc_sampler.Sampler

let contains_substring ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* A deterministic clock: each call advances by one "second". *)
let counter_clock () =
  let t = ref (-1.0) in
  fun () ->
    t := !t +. 1.0;
    !t

(* --- Trace: span tree shape and determinism --------------------------- *)

let test_span_tree_shape () =
  let t = Trace.create ~clock:(counter_clock ()) () in
  Trace.with_trace t (fun () ->
      Trace.with_span "outer" (fun () ->
          Trace.with_span "inner-a" (fun () -> ());
          Trace.with_span "inner-b" ~args:[ ("k", "3") ] (fun () -> ()));
      Trace.with_span "second" (fun () -> ()));
  let roots = Trace.roots t in
  Alcotest.(check int) "two roots" 2 (List.length roots);
  let outer = List.hd roots in
  Alcotest.(check string) "root name" "outer" outer.Trace.name;
  Alcotest.(check int) "root depth" 0 outer.Trace.depth;
  let kids = outer.Trace.children in
  Alcotest.(check (list string))
    "children in start order" [ "inner-a"; "inner-b" ]
    (List.map (fun (s : Trace.span) -> s.Trace.name) kids);
  List.iter
    (fun (s : Trace.span) -> Alcotest.(check int) "child depth" 1 s.Trace.depth)
    kids;
  let b = List.nth kids 1 in
  Alcotest.(check (list (pair string string)))
    "args recorded" [ ("k", "3") ] b.Trace.args

let test_injected_clock_is_deterministic () =
  let run () =
    let t = Trace.create ~clock:(counter_clock ()) () in
    Trace.with_trace t (fun () ->
        Trace.with_span "a" (fun () -> Trace.with_span "b" (fun () -> ())));
    t
  in
  let t1 = run () and t2 = run () in
  let stamps t =
    let rec flat (s : Trace.span) =
      (s.Trace.name, s.Trace.start_ts, s.Trace.stop_ts)
      :: List.concat_map flat s.Trace.children
    in
    List.concat_map flat (Trace.roots t)
  in
  Alcotest.(check (list (triple string (float 0.0) (float 0.0))))
    "identical timestamps" (stamps t1) (stamps t2);
  (* With a +1/call counter clock the layout is fully pinned down. *)
  match stamps t1 with
  | [ ("a", a0, a1); ("b", b0, b1) ] ->
      Alcotest.(check bool) "nesting order" true (a0 < b0 && b1 <= a1)
  | other -> Alcotest.failf "unexpected span list (%d spans)" (List.length other)

let test_with_span_closes_on_exception () =
  let t = Trace.create ~clock:(counter_clock ()) () in
  (try
     Trace.with_trace t (fun () ->
         Trace.with_span "outer" (fun () ->
             Trace.with_span "boom" (fun () -> failwith "boom")))
   with Failure _ -> ());
  match Trace.roots t with
  | [ outer ] ->
      Alcotest.(check string) "outer recorded" "outer" outer.Trace.name;
      Alcotest.(check (list string))
        "raising child recorded" [ "boom" ]
        (List.map (fun (s : Trace.span) -> s.Trace.name) outer.Trace.children);
      List.iter
        (fun (s : Trace.span) ->
          Alcotest.(check bool) "span closed" true (s.Trace.stop_ts >= s.Trace.start_ts))
        (outer :: outer.Trace.children)
  | roots -> Alcotest.failf "expected one root, got %d" (List.length roots)

let test_disabled_is_transparent () =
  Trace.uninstall ();
  Alcotest.(check bool) "disabled" false (Trace.enabled ());
  let r = Trace.with_span "ghost" (fun () -> 41 + 1) in
  Alcotest.(check int) "with_span = f () when off" 42 r;
  Trace.instant "ghost-event";
  Trace.net_event ~kind:"charge" ~label:"x" ~rounds:1.0 ~messages:0 ~words:0
    ~round_clock:1.0;
  Alcotest.(check (option reject)) "still no collector" None (Trace.current ())

(* --- Net attribution --------------------------------------------------- *)

let test_net_events_attributed_to_open_spans () =
  let t = Trace.create ~clock:(counter_clock ()) () in
  let net = Net.create ~n:4 in
  Trace.with_trace t (fun () ->
      Trace.with_span "phase" (fun () ->
          Net.broadcast net ~label:"b" ~src:0 ~words:3;
          Trace.with_span "sub" (fun () ->
              Net.all_to_all net ~label:"a2a" ~words_each:2)));
  match Trace.roots t with
  | [ phase ] ->
      let sub = List.hd phase.Trace.children in
      Alcotest.(check (float 1e-9))
        "root rounds = Net.rounds" (Net.rounds net) phase.Trace.net_rounds;
      Alcotest.(check int) "root words = Net.words" (Net.words net)
        phase.Trace.net_words;
      Alcotest.(check int) "root messages = Net.messages" (Net.messages net)
        phase.Trace.net_messages;
      Alcotest.(check bool) "child sees only its share" true
        (sub.Trace.net_rounds < phase.Trace.net_rounds);
      Alcotest.(check (float 1e-9))
        "total_rounds sums roots" (Net.rounds net) (Trace.total_rounds t)
  | roots -> Alcotest.failf "expected one root, got %d" (List.length roots)

let test_event_timeline_and_kinds () =
  let t = Trace.create ~clock:(counter_clock ()) () in
  let net = Net.create ~n:4 in
  Trace.with_trace t (fun () ->
      Trace.with_span "s" (fun () ->
          Net.broadcast net ~label:"b" ~src:1 ~words:2;
          Net.charge net ~label:"c" 2.5));
  let evs = Trace.events t in
  Alcotest.(check (list string))
    "kinds in order" [ "broadcast"; "charge" ]
    (List.map (fun (e : Trace.event) -> e.Trace.kind) evs);
  let last = List.nth evs 1 in
  Alcotest.(check string) "label" "c" last.Trace.label;
  Alcotest.(check (float 1e-9)) "round clock" (Net.rounds net)
    last.Trace.round_clock

let test_set_sink_receives_events () =
  let net = Net.create ~n:4 in
  let seen = ref [] in
  Net.set_sink net (Some (fun (e : Net.event) -> seen := e :: !seen));
  Net.broadcast net ~label:"b" ~src:0 ~words:5;
  Net.charge net ~label:"c" 1.0;
  Net.set_sink net None;
  Net.charge net ~label:"after" 1.0;
  let evs = List.rev !seen in
  Alcotest.(check (list string))
    "sink saw both, none after detach" [ "broadcast"; "charge" ]
    (List.map (fun (e : Net.event) -> Net.kind_name e.Net.kind) evs);
  let b = List.hd evs in
  (* A broadcast of w words delivers w to each of the n-1 receivers. *)
  Alcotest.(check int) "words carried" (5 * (Net.n net - 1)) b.Net.words;
  Alcotest.(check string) "label carried" "b" b.Net.label

let test_sampler_root_span_matches_ledger () =
  let g = Gen.complete 6 in
  let t = Trace.create ~clock:(counter_clock ()) () in
  let net = Net.create ~n:6 in
  let r =
    Trace.with_trace t (fun () -> Sampler.sample net (Prng.create ~seed:11) g)
  in
  Alcotest.(check (float 1e-6))
    "trace accounts for every booked round" (Net.rounds net)
    (Trace.total_rounds t);
  Alcotest.(check (float 1e-6)) "result agrees" r.Sampler.rounds (Net.rounds net)

let test_tracing_does_not_perturb_run () =
  let run traced =
    let g = Gen.complete 8 in
    let net = Net.create ~n:8 in
    let sample () = Sampler.sample net (Prng.create ~seed:3) g in
    let _r =
      if traced then
        Trace.with_trace (Trace.create ~clock:(counter_clock ()) ()) sample
      else sample ()
    in
    Format.asprintf "%a" Net.pp_ledger net
  in
  Alcotest.(check string) "ledger bit-identical under tracing" (run false)
    (run true)

(* --- Exporters --------------------------------------------------------- *)

let traced_net_run () =
  let t = Trace.create ~clock:(counter_clock ()) () in
  let net = Net.create ~n:4 in
  Trace.with_trace t (fun () ->
      Trace.with_span "outer" ~args:[ ("n", "4") ] (fun () ->
          Net.broadcast net ~label:"b\"x" ~src:0 ~words:1;
          Trace.with_span "inner" (fun () -> Net.charge net ~label:"c" 1.0)));
  t

let test_chrome_export () =
  let t = traced_net_run () in
  let s = Trace.to_chrome_json t in
  Alcotest.(check bool) "traceEvents" true
    (contains_substring ~needle:"\"traceEvents\"" s);
  Alcotest.(check bool) "complete events" true
    (contains_substring ~needle:"\"ph\": \"X\"" s
    || contains_substring ~needle:"\"ph\":\"X\"" s);
  Alcotest.(check bool) "span name present" true
    (contains_substring ~needle:"outer" s);
  Alcotest.(check bool) "label quote escaped" true
    (contains_substring ~needle:"b\\\"x" s);
  Alcotest.(check bool) "no raw newline inside strings" true
    (not (contains_substring ~needle:"b\"x" s))

let test_jsonl_export () =
  let t = traced_net_run () in
  let lines =
    String.split_on_char '\n' (Trace.to_jsonl t)
    |> List.filter (fun l -> l <> "")
  in
  (* 2 spans + 2 net events, one object per line. *)
  Alcotest.(check int) "one object per record" 4 (List.length lines);
  List.iter
    (fun l ->
      Alcotest.(check bool) "line is an object" true
        (String.length l >= 2 && l.[0] = '{' && l.[String.length l - 1] = '}'))
    lines

let test_pp_tree () =
  let t = traced_net_run () in
  let s = Format.asprintf "%a" Trace.pp_tree t in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " rendered") true
        (contains_substring ~needle s))
    [ "outer"; "inner"; "rounds" ]

(* --- Json -------------------------------------------------------------- *)

let test_json_serialization () =
  let v =
    Json.Obj
      [
        ("a", Json.Int 1);
        ("b", Json.List [ Json.Bool true; Json.Null ]);
        ("s", Json.String "q\"uote\nline");
        ("nan", Json.float_opt Float.nan);
        ("inf", Json.float_opt Float.infinity);
        ("f", Json.float_opt 0.5);
      ]
  in
  let s = Json.to_string v in
  Alcotest.(check string) "compact form"
    "{\"a\":1,\"b\":[true,null],\"s\":\"q\\\"uote\\nline\",\"nan\":null,\"inf\":null,\"f\":0.5}"
    s;
  let pretty = Json.to_string_pretty v in
  Alcotest.(check bool) "pretty is indented" true
    (contains_substring ~needle:"\n  " pretty)

(* --- Metrics ----------------------------------------------------------- *)

let test_metrics_counters_gauges_histograms () =
  Metrics.reset ();
  Metrics.incr "c";
  Metrics.incr ~by:4 "c";
  Metrics.set_gauge "g" 1.5;
  Metrics.set_gauge "g" 2.5;
  Metrics.observe "h" 1.0;
  Metrics.observe "h" 3.0;
  (match Metrics.get "c" with
  | Some (Metrics.Counter 5) -> ()
  | _ -> Alcotest.fail "counter c <> 5");
  (match Metrics.get "g" with
  | Some (Metrics.Gauge x) -> Alcotest.(check (float 0.0)) "gauge" 2.5 x
  | _ -> Alcotest.fail "gauge g missing");
  (match Metrics.get "h" with
  | Some (Metrics.Histogram h) ->
      Alcotest.(check int) "count" 2 h.Metrics.count;
      Alcotest.(check (float 0.0)) "sum" 4.0 h.Metrics.sum;
      Alcotest.(check (float 0.0)) "min" 1.0 h.Metrics.min;
      Alcotest.(check (float 0.0)) "max" 3.0 h.Metrics.max
  | _ -> Alcotest.fail "histogram h missing");
  Alcotest.(check (list string))
    "snapshot sorted" [ "c"; "g"; "h" ]
    (List.map fst (Metrics.snapshot ()));
  Metrics.reset ();
  Alcotest.(check (option reject)) "reset clears" None (Metrics.get "c")

let test_metrics_kind_conflict () =
  Metrics.reset ();
  Metrics.incr "x";
  Alcotest.check_raises "gauge on a counter name"
    (Invalid_argument "Metrics: \"x\" is already bound to another instrument kind")
    (fun () -> Metrics.set_gauge "x" 1.0);
  Alcotest.check_raises "histogram on a counter name"
    (Invalid_argument "Metrics: \"x\" is already bound to another instrument kind")
    (fun () -> Metrics.observe "x" 1.0);
  Metrics.reset ()

let test_metrics_json () =
  Metrics.reset ();
  Metrics.incr ~by:2 "runs";
  Metrics.observe "err" 0.5;
  let s = Json.to_string (Metrics.to_json ()) in
  Alcotest.(check bool) "counter exported" true
    (contains_substring ~needle:"\"runs\":{\"type\":\"counter\",\"value\":2}" s);
  Alcotest.(check bool) "histogram exported" true
    (contains_substring ~needle:"\"err\"" s && contains_substring ~needle:"\"count\"" s);
  Metrics.reset ()

let () =
  Alcotest.run "cc_obs"
    [
      ( "trace",
        [
          Alcotest.test_case "span tree shape" `Quick test_span_tree_shape;
          Alcotest.test_case "injected clock determinism" `Quick
            test_injected_clock_is_deterministic;
          Alcotest.test_case "spans close on exception" `Quick
            test_with_span_closes_on_exception;
          Alcotest.test_case "disabled tracing is transparent" `Quick
            test_disabled_is_transparent;
        ] );
      ( "net",
        [
          Alcotest.test_case "span attribution matches Net totals" `Quick
            test_net_events_attributed_to_open_spans;
          Alcotest.test_case "event timeline kinds and clock" `Quick
            test_event_timeline_and_kinds;
          Alcotest.test_case "set_sink delivers and detaches" `Quick
            test_set_sink_receives_events;
          Alcotest.test_case "sampler root spans sum to Net.rounds" `Quick
            test_sampler_root_span_matches_ledger;
          Alcotest.test_case "tracing does not perturb the ledger" `Quick
            test_tracing_does_not_perturb_run;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome trace_event" `Quick test_chrome_export;
          Alcotest.test_case "jsonl" `Quick test_jsonl_export;
          Alcotest.test_case "span tree pretty-printer" `Quick test_pp_tree;
        ] );
      ( "json",
        [ Alcotest.test_case "serialization and escaping" `Quick test_json_serialization ] );
      ( "metrics",
        [
          Alcotest.test_case "counters, gauges, histograms" `Quick
            test_metrics_counters_gauges_histograms;
          Alcotest.test_case "kind conflicts raise" `Quick
            test_metrics_kind_conflict;
          Alcotest.test_case "json export" `Quick test_metrics_json;
        ] );
    ]
