(* Tests for the observability layer: tracing determinism under an injected
   clock, net-cost attribution, the zero-perturbation invariant, exporters,
   and the metrics registry. *)

module Trace = Cc_obs.Trace
module Metrics = Cc_obs.Metrics
module Json = Cc_obs.Json
module Profile = Cc_obs.Profile
module Benchdata = Cc_obs.Benchdata
module Net = Cc_clique.Net
module Prng = Cc_util.Prng
module Gen = Cc_graph.Gen
module Graph = Cc_graph.Graph
module Sampler = Cc_sampler.Sampler
module Doubling = Cc_doubling.Doubling
module Recorder = Cc_obs.Recorder
module Invariant = Cc_obs.Invariant

let contains_substring ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* A deterministic clock: each call advances by one "second". *)
let counter_clock () =
  let t = ref (-1.0) in
  fun () ->
    t := !t +. 1.0;
    !t

(* A hand-built completed span — what a transport worker would ship. *)
let mkspan ?(id = 7) ?(name = "w") ?(args = []) ?(depth = 0) ~start ~stop
    ?(rounds = 2.5) ?(children = []) () =
  {
    Trace.id;
    name;
    args;
    depth;
    start_ts = start;
    stop_ts = stop;
    alloc_words = 0.0;
    net_rounds = rounds;
    net_messages = 3;
    net_words = 9;
    net_max_load = 4;
    children;
  }

(* --- Trace: span tree shape and determinism --------------------------- *)

let test_span_tree_shape () =
  let t = Trace.create ~clock:(counter_clock ()) () in
  Trace.with_trace t (fun () ->
      Trace.with_span "outer" (fun () ->
          Trace.with_span "inner-a" (fun () -> ());
          Trace.with_span "inner-b" ~args:[ ("k", "3") ] (fun () -> ()));
      Trace.with_span "second" (fun () -> ()));
  let roots = Trace.roots t in
  Alcotest.(check int) "two roots" 2 (List.length roots);
  let outer = List.hd roots in
  Alcotest.(check string) "root name" "outer" outer.Trace.name;
  Alcotest.(check int) "root depth" 0 outer.Trace.depth;
  let kids = outer.Trace.children in
  Alcotest.(check (list string))
    "children in start order" [ "inner-a"; "inner-b" ]
    (List.map (fun (s : Trace.span) -> s.Trace.name) kids);
  List.iter
    (fun (s : Trace.span) -> Alcotest.(check int) "child depth" 1 s.Trace.depth)
    kids;
  let b = List.nth kids 1 in
  Alcotest.(check (list (pair string string)))
    "args recorded" [ ("k", "3") ] b.Trace.args

let test_injected_clock_is_deterministic () =
  let run () =
    let t = Trace.create ~clock:(counter_clock ()) () in
    Trace.with_trace t (fun () ->
        Trace.with_span "a" (fun () -> Trace.with_span "b" (fun () -> ())));
    t
  in
  let t1 = run () and t2 = run () in
  let stamps t =
    let rec flat (s : Trace.span) =
      (s.Trace.name, s.Trace.start_ts, s.Trace.stop_ts)
      :: List.concat_map flat s.Trace.children
    in
    List.concat_map flat (Trace.roots t)
  in
  Alcotest.(check (list (triple string (float 0.0) (float 0.0))))
    "identical timestamps" (stamps t1) (stamps t2);
  (* With a +1/call counter clock the layout is fully pinned down. *)
  match stamps t1 with
  | [ ("a", a0, a1); ("b", b0, b1) ] ->
      Alcotest.(check bool) "nesting order" true (a0 < b0 && b1 <= a1)
  | other -> Alcotest.failf "unexpected span list (%d spans)" (List.length other)

let test_with_span_closes_on_exception () =
  let t = Trace.create ~clock:(counter_clock ()) () in
  (try
     Trace.with_trace t (fun () ->
         Trace.with_span "outer" (fun () ->
             Trace.with_span "boom" (fun () -> failwith "boom")))
   with Failure _ -> ());
  match Trace.roots t with
  | [ outer ] ->
      Alcotest.(check string) "outer recorded" "outer" outer.Trace.name;
      Alcotest.(check (list string))
        "raising child recorded" [ "boom" ]
        (List.map (fun (s : Trace.span) -> s.Trace.name) outer.Trace.children);
      List.iter
        (fun (s : Trace.span) ->
          Alcotest.(check bool) "span closed" true (s.Trace.stop_ts >= s.Trace.start_ts))
        (outer :: outer.Trace.children)
  | roots -> Alcotest.failf "expected one root, got %d" (List.length roots)

let test_disabled_is_transparent () =
  Trace.uninstall ();
  Alcotest.(check bool) "disabled" false (Trace.enabled ());
  let r = Trace.with_span "ghost" (fun () -> 41 + 1) in
  Alcotest.(check int) "with_span = f () when off" 42 r;
  Trace.instant "ghost-event";
  Trace.net_event ~kind:"charge" ~label:"x" ~rounds:1.0 ~messages:0 ~words:0
    ~round_clock:1.0 ();
  Alcotest.(check (option reject)) "still no collector" None (Trace.current ())

(* --- Trace: distributed reconstruction --------------------------------- *)

let test_trace_drain_exactly_once () =
  let base = 1 lsl 30 in
  let t = Trace.create ~clock:(counter_clock ()) ~first_id:base () in
  Trace.with_trace t (fun () ->
      Trace.with_span "a" (fun () ->
          Trace.net_event ~kind:"exchange" ~label:"x" ~rounds:1.0 ~messages:2
            ~words:4 ~round_clock:1.0 ());
      Trace.with_span "b" (fun () -> ()));
  (match Trace.drain_roots t with
  | [ a; b ] ->
      Alcotest.(check int) "parent-assigned id base" base a.Trace.id;
      Alcotest.(check bool) "ids ascend from base" true (b.Trace.id > base)
  | l -> Alcotest.failf "expected 2 roots, got %d" (List.length l));
  Alcotest.(check int) "second drain empty" 0
    (List.length (Trace.drain_roots t));
  Alcotest.(check int) "events drained once" 1
    (List.length (Trace.drain_events t));
  Alcotest.(check int) "events gone" 0 (List.length (Trace.drain_events t));
  (* A span still open at drain time stays and completes later — the
     heartbeat-shipping contract. *)
  Trace.open_span t "late";
  Alcotest.(check int) "open span survives the drain" 0
    (List.length (Trace.drain_roots t));
  Trace.close_span t;
  Alcotest.(check int) "and ships on the next one" 1
    (List.length (Trace.drain_roots t))

let test_trace_lanes_and_rebase () =
  let t = Trace.create ~clock:(counter_clock ()) () in
  Trace.with_trace t (fun () -> Trace.with_span "local" (fun () -> ()));
  let base = 1 lsl 30 in
  let w =
    mkspan ~id:base ~start:10.0 ~stop:12.0
      ~children:[ mkspan ~id:(base + 1) ~depth:1 ~start:10.5 ~stop:11.0 () ]
      ()
  in
  (* The supervisor rebases into its own clock before delivery. *)
  Trace.add_remote_span t ~pid:2 ~process:"shard 0"
    (Trace.rebase_span ~offset:(-10.0) w);
  Trace.add_remote_event t ~pid:2
    (Trace.rebase_event ~offset:(-10.0)
       {
         Trace.ts = 10.25;
         span_id = Some base;
         kind = "exchange";
         label = "x";
         rounds = 1.0;
         messages = 2;
         words = 4;
         max_load = 3;
         round_clock = 7.0;
       });
  match Trace.lanes t with
  | [ (p1, n1, local_roots, _); (2, "shard 0", [ w' ], [ ev' ]) ] ->
      Alcotest.(check int) "local lane first" Trace.local_pid p1;
      Alcotest.(check string) "local lane name" "main" n1;
      Alcotest.(check (list string))
        "local roots intact" [ "local" ]
        (List.map (fun (s : Trace.span) -> s.Trace.name) local_roots);
      Alcotest.(check (float 0.0)) "root rebased" 0.0 w'.Trace.start_ts;
      Alcotest.(check (float 0.0)) "subtree rebased" 0.5
        (List.hd w'.Trace.children).Trace.start_ts;
      Alcotest.(check (float 0.0)) "event rebased" 0.25 ev'.Trace.ts;
      Alcotest.(check int) "remote ids preserved" base w'.Trace.id
  | lanes -> Alcotest.failf "expected 2 lanes, got %d" (List.length lanes)

let test_trace_span_codec_exact () =
  (* The wire codec must round-trip exact float bits: timestamps serialize
     as hex floats precisely because the pretty emitters quantize. *)
  let start = 0x1.123456789abcdp20 and stop = 0x1.123456789abcep20 in
  let sp =
    mkspan ~id:3 ~name:"worker.books"
      ~args:[ ("shard", "1"); ("books", "17") ]
      ~start ~stop
      ~children:[ mkspan ~id:4 ~depth:1 ~start ~stop () ]
      ()
  in
  (match Trace.span_of_json (Trace.span_to_json sp) with
  | Error e -> Alcotest.failf "span roundtrip: %s" e
  | Ok sp' ->
      Alcotest.(check bool) "start bits exact" true (sp'.Trace.start_ts = start);
      Alcotest.(check bool) "stop bits exact" true (sp'.Trace.stop_ts = stop);
      Alcotest.(check (list (pair string string)))
        "args" sp.Trace.args sp'.Trace.args;
      Alcotest.(check int) "children ride along" 1
        (List.length sp'.Trace.children));
  let ev =
    {
      Trace.ts = start;
      span_id = Some 3;
      kind = "broadcast";
      label = "b";
      rounds = 1.5;
      messages = 4;
      words = 8;
      max_load = 2;
      round_clock = 9.0;
    }
  in
  match Trace.event_of_json (Trace.event_to_json ev) with
  | Error e -> Alcotest.failf "event roundtrip: %s" e
  | Ok ev' ->
      Alcotest.(check bool) "event ts exact" true (ev'.Trace.ts = start);
      Alcotest.(check (option int)) "span id" (Some 3) ev'.Trace.span_id

let test_trace_of_jsonl_roundtrip () =
  let t = Trace.create ~clock:(counter_clock ()) () in
  Trace.with_trace t (fun () ->
      Trace.with_span "run" (fun () ->
          Trace.with_span "inner" ~args:[ ("k", "v") ] (fun () -> ());
          Trace.net_event ~kind:"exchange" ~label:"x" ~rounds:1.0 ~messages:2
            ~words:4 ~round_clock:1.0 ()));
  Trace.add_remote_span t ~pid:2 ~process:"shard 0"
    (mkspan ~id:(1 lsl 30) ~start:0.5 ~stop:1.5 ());
  let artifact = Trace.to_jsonl t in
  (match Trace.of_jsonl artifact with
  | Error e -> Alcotest.failf "of_jsonl: %s" e
  | Ok t' ->
      let shape tr =
        List.map
          (fun (pid, name, roots, evs) ->
            ( pid,
              name,
              List.map
                (fun (s : Trace.span) ->
                  ( s.Trace.name,
                    List.length s.Trace.children,
                    s.Trace.stop_ts -. s.Trace.start_ts ))
                roots,
              List.length evs ))
          (Trace.lanes tr)
      in
      Alcotest.(check bool) "lanes, trees, walls survive" true
        (shape t = shape t');
      (* reconstructed ids stay unique and the chrome export still works *)
      (match Json.of_string (Trace.to_chrome_json t') with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "chrome after reload: %s" e));
  match Trace.of_jsonl "{\"type\":\"span\"}\nnot json\n" with
  | Error e ->
      Alcotest.(check bool) "error names the line" true
        (contains_substring ~needle:"line 1" e)
  | Ok _ -> Alcotest.fail "garbage must not reload"

(* --- Net attribution --------------------------------------------------- *)

let test_net_events_attributed_to_open_spans () =
  let t = Trace.create ~clock:(counter_clock ()) () in
  let net = Net.create ~n:4 in
  Trace.with_trace t (fun () ->
      Trace.with_span "phase" (fun () ->
          Net.broadcast net ~label:"b" ~src:0 ~words:3;
          Trace.with_span "sub" (fun () ->
              Net.all_to_all net ~label:"a2a" ~words_each:2)));
  match Trace.roots t with
  | [ phase ] ->
      let sub = List.hd phase.Trace.children in
      Alcotest.(check (float 1e-9))
        "root rounds = Net.rounds" (Net.rounds net) phase.Trace.net_rounds;
      Alcotest.(check int) "root words = Net.words" (Net.words net)
        phase.Trace.net_words;
      Alcotest.(check int) "root messages = Net.messages" (Net.messages net)
        phase.Trace.net_messages;
      Alcotest.(check bool) "child sees only its share" true
        (sub.Trace.net_rounds < phase.Trace.net_rounds);
      Alcotest.(check (float 1e-9))
        "total_rounds sums roots" (Net.rounds net) (Trace.total_rounds t)
  | roots -> Alcotest.failf "expected one root, got %d" (List.length roots)

let test_event_timeline_and_kinds () =
  let t = Trace.create ~clock:(counter_clock ()) () in
  let net = Net.create ~n:4 in
  Trace.with_trace t (fun () ->
      Trace.with_span "s" (fun () ->
          Net.broadcast net ~label:"b" ~src:1 ~words:2;
          Net.charge net ~label:"c" 2.5));
  let evs = Trace.events t in
  Alcotest.(check (list string))
    "kinds in order" [ "broadcast"; "charge" ]
    (List.map (fun (e : Trace.event) -> e.Trace.kind) evs);
  let last = List.nth evs 1 in
  Alcotest.(check string) "label" "c" last.Trace.label;
  Alcotest.(check (float 1e-9)) "round clock" (Net.rounds net)
    last.Trace.round_clock

let test_set_sink_receives_events () =
  let net = Net.create ~n:4 in
  let seen = ref [] in
  Net.set_sink net (Some (fun (e : Net.event) -> seen := e :: !seen));
  Net.broadcast net ~label:"b" ~src:0 ~words:5;
  Net.charge net ~label:"c" 1.0;
  Net.set_sink net None;
  Net.charge net ~label:"after" 1.0;
  let evs = List.rev !seen in
  Alcotest.(check (list string))
    "sink saw both, none after detach" [ "broadcast"; "charge" ]
    (List.map (fun (e : Net.event) -> Net.kind_name e.Net.kind) evs);
  let b = List.hd evs in
  (* A broadcast of w words delivers w to each of the n-1 receivers. *)
  Alcotest.(check int) "words carried" (5 * (Net.n net - 1)) b.Net.words;
  Alcotest.(check string) "label carried" "b" b.Net.label

let test_sampler_root_span_matches_ledger () =
  let g = Gen.complete 6 in
  let t = Trace.create ~clock:(counter_clock ()) () in
  let net = Net.create ~n:6 in
  let r =
    Trace.with_trace t (fun () -> Sampler.sample net (Prng.create ~seed:11) g)
  in
  Alcotest.(check (float 1e-6))
    "trace accounts for every booked round" (Net.rounds net)
    (Trace.total_rounds t);
  Alcotest.(check (float 1e-6)) "result agrees" r.Sampler.rounds (Net.rounds net)

let test_tracing_does_not_perturb_run () =
  let run traced =
    let g = Gen.complete 8 in
    let net = Net.create ~n:8 in
    let sample () = Sampler.sample net (Prng.create ~seed:3) g in
    let _r =
      if traced then
        Trace.with_trace (Trace.create ~clock:(counter_clock ()) ()) sample
      else sample ()
    in
    Format.asprintf "%a" Net.pp_ledger net
  in
  Alcotest.(check string) "ledger bit-identical under tracing" (run false)
    (run true)

(* --- Exporters --------------------------------------------------------- *)

let traced_net_run () =
  let t = Trace.create ~clock:(counter_clock ()) () in
  let net = Net.create ~n:4 in
  Trace.with_trace t (fun () ->
      Trace.with_span "outer" ~args:[ ("n", "4") ] (fun () ->
          Net.broadcast net ~label:"b\"x" ~src:0 ~words:1;
          Trace.with_span "inner" (fun () -> Net.charge net ~label:"c" 1.0)));
  t

let test_chrome_export () =
  let t = traced_net_run () in
  let s = Trace.to_chrome_json t in
  Alcotest.(check bool) "traceEvents" true
    (contains_substring ~needle:"\"traceEvents\"" s);
  Alcotest.(check bool) "complete events" true
    (contains_substring ~needle:"\"ph\": \"X\"" s
    || contains_substring ~needle:"\"ph\":\"X\"" s);
  Alcotest.(check bool) "span name present" true
    (contains_substring ~needle:"outer" s);
  Alcotest.(check bool) "label quote escaped" true
    (contains_substring ~needle:"b\\\"x" s);
  Alcotest.(check bool) "no raw newline inside strings" true
    (not (contains_substring ~needle:"b\"x" s))

let test_jsonl_export () =
  let t = traced_net_run () in
  let lines =
    String.split_on_char '\n' (Trace.to_jsonl t)
    |> List.filter (fun l -> l <> "")
  in
  (* 1 process-lane header + 2 spans + 2 net events, one object per line. *)
  Alcotest.(check int) "one object per record" 5 (List.length lines);
  Alcotest.(check bool) "lane header first" true
    (contains_substring ~needle:{|"type":"process"|} (List.hd lines)
    || contains_substring ~needle:{|"type": "process"|} (List.hd lines));
  List.iter
    (fun l ->
      Alcotest.(check bool) "line is an object" true
        (String.length l >= 2 && l.[0] = '{' && l.[String.length l - 1] = '}'))
    lines

let test_pp_tree () =
  let t = traced_net_run () in
  let s = Format.asprintf "%a" Trace.pp_tree t in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " rendered") true
        (contains_substring ~needle s))
    [ "outer"; "inner"; "rounds" ]

let test_event_overflow_keeps_span_totals () =
  (* Beyond [max_events] the timeline drops events (counted in
     [dropped_events]) but span cost attribution must stay exact. *)
  let t = Trace.create ~clock:(counter_clock ()) ~max_events:5 () in
  let net = Net.create ~n:4 in
  let bookings = 12 in
  Trace.with_trace t (fun () ->
      Trace.with_span "run" (fun () ->
          for _ = 1 to bookings do
            Net.charge net ~label:"c" 1.5
          done));
  Alcotest.(check int) "timeline capped" 5 (List.length (Trace.events t));
  Alcotest.(check int) "dropped counted" (bookings - 5) (Trace.dropped_events t);
  (match Trace.roots t with
  | [ run ] ->
      Alcotest.(check (float 1e-9))
        "span rounds include dropped events" (Net.rounds net)
        run.Trace.net_rounds
  | roots -> Alcotest.failf "expected one root, got %d" (List.length roots));
  Alcotest.(check (float 1e-9)) "round totals still equal Net.rounds"
    (Net.rounds net) (Trace.total_rounds t);
  (* The drop is surfaced in the rendered tree too. *)
  Alcotest.(check bool) "pp_tree reports the drop" true
    (contains_substring ~needle:"7 timeline events dropped"
       (Format.asprintf "%a" Trace.pp_tree t))

let test_span_tracks_max_load () =
  let t = Trace.create ~clock:(counter_clock ()) () in
  let net = Net.create ~n:4 in
  Trace.with_trace t (fun () ->
      Trace.with_span "outer" (fun () ->
          Net.exchange net ~label:"x" [ { Net.src = 0; dst = 1; words = 9 } ];
          Trace.with_span "inner" (fun () ->
              Net.exchange net ~label:"y" [ { Net.src = 2; dst = 3; words = 4 } ])));
  match Trace.roots t with
  | [ outer ] ->
      let inner = List.hd outer.Trace.children in
      Alcotest.(check int) "outer peak" 9 outer.Trace.net_max_load;
      Alcotest.(check int) "inner peak only its own" 4 inner.Trace.net_max_load;
      Alcotest.(check (list int))
        "events carry per-primitive loads" [ 9; 4 ]
        (List.map (fun (e : Trace.event) -> e.Trace.max_load) (Trace.events t))
  | roots -> Alcotest.failf "expected one root, got %d" (List.length roots)

let test_chrome_export_escapes_args () =
  (* Span args are user/caller data: quotes, control characters, and
     non-BMP text must all survive into parseable Chrome JSON. *)
  let quote = {|say "hi"|} and ctl = "a\x01\tb" and emoji = "\xf0\x9f\x98\x80" in
  let t = Trace.create ~clock:(counter_clock ()) () in
  Trace.with_trace t (fun () ->
      Trace.with_span "phase"
        ~args:[ ("quote", quote); ("ctl", ctl); ("emoji", emoji) ]
        (fun () -> ()));
  let out = Trace.to_chrome_json t in
  match Json.of_string out with
  | Error e -> Alcotest.failf "chrome json must reparse: %s" e
  | Ok doc ->
      let evs =
        Option.value ~default:[]
          (Option.bind (Json.member "traceEvents" doc) Json.to_list_opt)
      in
      let span =
        List.find
          (fun e -> Json.member "name" e = Some (Json.String "phase"))
          evs
      in
      let arg k =
        Option.bind
          (Option.bind (Json.member "args" span) (Json.member k))
          Json.to_string_opt
      in
      Alcotest.(check (option string)) "quotes survive" (Some quote)
        (arg "quote");
      Alcotest.(check (option string)) "control chars survive" (Some ctl)
        (arg "ctl");
      Alcotest.(check (option string)) "non-BMP text survives" (Some emoji)
        (arg "emoji")

(* --- Critical path ------------------------------------------------------ *)

module CP = Cc_obs.Critical_path

let test_critical_path_crosses_lanes () =
  let t = Trace.create ~clock:(fun () -> 0.0) () in
  (* Local lane: run [0,10] with child a [1,3]. Shard lane: w [4,9]. The
     chain must be run / a / run / w / run — self time, never inclusive. *)
  Trace.add_remote_span t ~pid:Trace.local_pid
    (mkspan ~id:0 ~name:"run" ~start:0.0 ~stop:10.0
       ~children:[ mkspan ~id:1 ~name:"a" ~depth:1 ~start:1.0 ~stop:3.0 () ]
       ());
  Trace.add_remote_span t ~pid:2 ~process:"shard 0"
    (mkspan ~id:(1 lsl 30) ~name:"w" ~start:4.0 ~stop:9.0 ());
  match CP.compute t with
  | None -> Alcotest.fail "expected a chain"
  | Some cp ->
      Alcotest.(check (float 1e-9)) "total" 10.0 cp.CP.total_s;
      Alcotest.(check (float 1e-9)) "fully covered" 10.0 cp.CP.covered_s;
      Alcotest.(check (float 1e-9)) "no gaps" 0.0 cp.CP.gap_s;
      Alcotest.(check (list string))
        "chain order"
        [ "run"; "a"; "run"; "w"; "run" ]
        (List.map (fun (s : CP.segment) -> s.name) cp.CP.chain);
      let row name = List.find (fun (r : CP.row) -> r.phase = name) cp.CP.rows in
      Alcotest.(check (float 1e-9)) "run self" 3.0 (row "run").CP.self_s;
      Alcotest.(check (float 1e-9)) "a self" 2.0 (row "a").CP.self_s;
      Alcotest.(check (float 1e-9)) "w self" 5.0 (row "w").CP.self_s;
      (match cp.CP.rows with
      | top :: _ -> Alcotest.(check string) "largest first" "w" top.CP.phase
      | [] -> Alcotest.fail "no rows");
      Alcotest.(check (float 1e-9)) "share sums lanes" 0.3
        (CP.share cp.CP.rows ~phase:"run");
      Alcotest.(check int) "shard lane pid" 2 (row "w").CP.pid;
      Alcotest.(check string) "shard lane name" "shard 0" (row "w").CP.process;
      (* self-rounds: run's 2.5 are all inside child a, so a carries them *)
      Alcotest.(check (float 1e-9)) "run self-rounds" 0.0 (row "run").CP.rounds;
      Alcotest.(check (float 1e-9)) "a self-rounds" 2.5 (row "a").CP.rounds

let test_critical_path_gap_and_empty () =
  let t = Trace.create ~clock:(fun () -> 0.0) () in
  Alcotest.(check bool) "no spans -> None" true (CP.compute t = None);
  Trace.add_remote_span t ~pid:Trace.local_pid
    (mkspan ~id:0 ~name:"a" ~start:0.0 ~stop:2.0 ());
  Trace.add_remote_span t ~pid:Trace.local_pid
    (mkspan ~id:1 ~name:"b" ~start:5.0 ~stop:8.0 ());
  match CP.compute t with
  | None -> Alcotest.fail "chain expected"
  | Some cp ->
      Alcotest.(check (float 1e-9)) "total spans idle time" 8.0 cp.CP.total_s;
      Alcotest.(check (float 1e-9)) "covered" 5.0 cp.CP.covered_s;
      Alcotest.(check (float 1e-9)) "gap accounted" 3.0 cp.CP.gap_s;
      Alcotest.(check (list string))
        "chain skips the gap" [ "a"; "b" ]
        (List.map (fun (s : CP.segment) -> s.name) cp.CP.chain)

(* --- Json -------------------------------------------------------------- *)

let test_json_serialization () =
  let v =
    Json.Obj
      [
        ("a", Json.Int 1);
        ("b", Json.List [ Json.Bool true; Json.Null ]);
        ("s", Json.String "q\"uote\nline");
        ("nan", Json.float_opt Float.nan);
        ("inf", Json.float_opt Float.infinity);
        ("f", Json.float_opt 0.5);
      ]
  in
  let s = Json.to_string v in
  Alcotest.(check string) "compact form"
    "{\"a\":1,\"b\":[true,null],\"s\":\"q\\\"uote\\nline\",\"nan\":null,\"inf\":null,\"f\":0.5}"
    s;
  let pretty = Json.to_string_pretty v in
  Alcotest.(check bool) "pretty is indented" true
    (contains_substring ~needle:"\n  " pretty)

let test_json_parse_roundtrip () =
  let v =
    Json.Obj
      [
        ("a", Json.Int 1);
        ("b", Json.List [ Json.Bool true; Json.Null ]);
        ("s", Json.String "q\"uote\nline");
        ("f", Json.Float 0.5);
      ]
  in
  match Json.of_string (Json.to_string v) with
  | Ok v' -> Alcotest.(check bool) "parse inverts serialize" true (v = v')
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_json_parse_numbers () =
  let parse s =
    match Json.of_string s with
    | Ok v -> v
    | Error e -> Alcotest.failf "parse %S failed: %s" s e
  in
  Alcotest.(check bool) "bare int stays Int" true (parse "42" = Json.Int 42);
  Alcotest.(check bool) "negative int" true (parse "-7" = Json.Int (-7));
  Alcotest.(check bool) "fraction is Float" true (parse "42.0" = Json.Float 42.0);
  Alcotest.(check bool) "exponent is Float" true (parse "1e3" = Json.Float 1000.0);
  (match parse "123456789012345678901234567890" with
  | Json.Float _ -> ()
  | _ -> Alcotest.fail "out-of-range literal should fall back to Float")

let test_json_parse_escapes () =
  let parse s =
    match Json.of_string s with
    | Ok v -> v
    | Error e -> Alcotest.failf "parse %S failed: %s" s e
  in
  Alcotest.(check bool) "simple escapes" true
    (parse {|"q\"uote\nline\ttab"|} = Json.String "q\"uote\nline\ttab");
  Alcotest.(check bool) "\\u BMP decodes to UTF-8" true
    (parse "\"A\\u00e9\"" = Json.String "A\xc3\xa9");
  Alcotest.(check bool) "surrogate pair decodes" true
    (parse "\"\\ud83d\\ude00\"" = Json.String "\xf0\x9f\x98\x80");
  Alcotest.(check bool) "unpaired surrogate replaced" true
    (parse {|"\ud83dx"|} = Json.String "\xef\xbf\xbdx")

let test_json_parse_errors () =
  let fails s =
    match Json.of_string s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected %S to fail" s
  in
  fails "";
  fails "{\"a\":}";
  fails "[1,]";
  fails "1 x" (* trailing garbage *);
  fails "\"unterminated";
  fails "nul"

(* --- Profile ------------------------------------------------------------ *)

let two_hot_profile () =
  Profile.create ~machines:4
    [
      { Profile.label = "a"; sent = [| 6; 2; 2; 2 |]; recv = [| 2; 6; 2; 2 |] };
    ]

let test_profile_stats () =
  let p = two_hot_profile () in
  (* Loads are max(sent, recv): [6; 6; 2; 2]; total_words = 12, mean 3. *)
  Alcotest.(check int) "max load" 6 (Profile.max_load p);
  Alcotest.(check (float 1e-9)) "mean is balanced ideal" 3.0
    (Profile.mean_load p);
  Alcotest.(check (float 1e-9)) "imbalance" 2.0 (Profile.imbalance p);
  Alcotest.(check (float 1e-9)) "p50 interpolates" 4.0 (Profile.quantile p 0.5);
  Alcotest.(check (float 1e-9)) "p0 is min" 2.0 (Profile.quantile p 0.0);
  Alcotest.(check (list (pair int int)))
    "hot machines, ties by index" [ (0, 6); (1, 6); (2, 2) ]
    (Profile.hot p)

let test_profile_create_validates () =
  let bad = { Profile.label = "x"; sent = [| 1 |]; recv = [| 1; 2 |] } in
  (try
     ignore (Profile.create ~machines:2 [ bad ]);
     Alcotest.fail "short arrays accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Profile.create ~machines:0 []);
    Alcotest.fail "zero machines accepted"
  with Invalid_argument _ -> ()

let test_profile_render_buckets () =
  let sent = Array.make 10 0 and recv = Array.make 10 1 in
  sent.(9) <- 40;
  let p = Profile.create ~machines:10 [ { Profile.label = "skew"; sent; recv } ] in
  let s = Profile.render ~max_width:5 p in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " rendered") true
        (contains_substring ~needle s))
    [ "(2 per column)"; "TOTAL"; "^ machine 9"; "imbalance" ]

let test_profile_jsonl_roundtrip () =
  let p =
    Profile.create ~machines:3 ~total_words:20
      [
        { Profile.label = "a"; sent = [| 5; 0; 0 |]; recv = [| 0; 5; 0 |] };
        { Profile.label = "b"; sent = [| 1; 1; 1 |]; recv = [| 1; 1; 1 |] };
      ]
  in
  match Profile.of_jsonl (Profile.to_jsonl p) with
  | Error e -> Alcotest.failf "reload failed: %s" e
  | Ok q ->
      Alcotest.(check int) "machines" p.Profile.machines q.Profile.machines;
      Alcotest.(check int) "total_words" p.Profile.total_words
        q.Profile.total_words;
      Alcotest.(check int) "max load" (Profile.max_load p) (Profile.max_load q);
      Alcotest.(check (float 1e-9))
        "imbalance" (Profile.imbalance p) (Profile.imbalance q);
      Alcotest.(check (list string))
        "rows and order survive"
        (List.map (fun (r : Profile.row) -> r.Profile.label) p.Profile.rows)
        (List.map (fun (r : Profile.row) -> r.Profile.label) q.Profile.rows);
      Alcotest.(check string) "render identical" (Profile.render p)
        (Profile.render q)

let test_profile_of_jsonl_rejects_garbage () =
  (match Profile.of_jsonl "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty input accepted");
  match Profile.of_jsonl "{\"type\":\"label\",\"label\":\"x\"}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "label without arrays accepted"

(* --- Benchdata ---------------------------------------------------------- *)

let synthetic_bench =
  {|{
  "schema": "cc-bench/2",
  "fast": true,
  "experiments": [
    {"id": "E1", "title": "first", "wall_s": 1.5, "max_load": 10, "imbalance": 2.0}
  ],
  "records": [
    {"experiment": "E1", "params": {"n": 8}, "measured": 4.0, "bound": 4.0, "ratio": 1.0},
    {"experiment": "E1", "params": {"n": 16}, "measured": 8.0, "bound": 4.0, "ratio": 2.0},
    {"experiment": "X", "params": {}, "measured": 3.0}
  ]
}|}

let test_benchdata_of_string () =
  match Benchdata.of_string synthetic_bench with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok doc ->
      Alcotest.(check string) "schema" "cc-bench/2" doc.Benchdata.schema;
      Alcotest.(check bool) "fast" true doc.Benchdata.fast;
      (match doc.Benchdata.experiments with
      | [ e ] ->
          Alcotest.(check string) "id" "E1" e.Benchdata.id;
          Alcotest.(check (option int)) "max_load" (Some 10) e.Benchdata.max_load;
          Alcotest.(check (option (float 0.0)))
            "imbalance" (Some 2.0) e.Benchdata.imbalance
      | es -> Alcotest.failf "expected one experiment, got %d" (List.length es));
      Alcotest.(check int) "records" 3 (List.length doc.Benchdata.records);
      let aggs = Benchdata.aggregate doc in
      (match aggs with
      | [ e1; x ] ->
          Alcotest.(check string) "E1 listed first" "E1" e1.Benchdata.exp.Benchdata.id;
          Alcotest.(check int) "E1 rows" 2 e1.Benchdata.rows;
          Alcotest.(check (option (float 1e-9)))
            "E1 mean ratio" (Some 1.5) e1.Benchdata.mean_ratio;
          Alcotest.(check (option (float 1e-9)))
            "E1 worst ratio" (Some 2.0) e1.Benchdata.worst_ratio;
          Alcotest.(check string) "record-only id appended" "X"
            x.Benchdata.exp.Benchdata.id;
          Alcotest.(check (option reject))
            "no ratio -> no mean" None x.Benchdata.mean_ratio
      | _ -> Alcotest.failf "expected 2 aggregates, got %d" (List.length aggs));
      (* First-parsed param stringification matches the printed tables. *)
      let r = List.hd doc.Benchdata.records in
      Alcotest.(check (list (pair string string)))
        "params stringified" [ ("n", "8") ] r.Benchdata.params

let test_benchdata_rejects_wrong_schema () =
  (match Benchdata.of_string "{\"schema\": \"other/1\"}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "foreign schema accepted");
  match Benchdata.of_string "{\"records\": []}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "schema-less document accepted"

(* A doc with one ratio-bearing record per (id, ratio) pair. *)
let doc_of_ratios pairs =
  {
    Benchdata.schema = "cc-bench/2";
    fast = true;
    engine = None;
    experiments =
      List.map
        (fun (id, _) ->
          {
            Benchdata.id;
            title = id;
            wall_s = None;
            max_load = None;
            imbalance = None;
          })
        pairs;
    records =
      List.map
        (fun (id, ratio) ->
          {
            Benchdata.experiment = id;
            params = [];
            measured = Some ratio;
            bound = Some 1.0;
            ratio = Some ratio;
            quality = [];
          })
        pairs;
  }

let delta_ids = List.map (fun (d : Benchdata.delta) -> d.Benchdata.id)

let test_benchdata_diff_partitions () =
  let baseline =
    doc_of_ratios [ ("A", 1.0); ("B", 1.0); ("C", 1.0); ("D", 1.0) ]
  in
  let current =
    doc_of_ratios [ ("A", 1.2); ("B", 0.8); ("C", 1.05); ("E", 1.0) ]
  in
  let d = Benchdata.diff ~baseline current in
  Alcotest.(check (list string)) "regressions" [ "A" ] (delta_ids d.Benchdata.regressions);
  Alcotest.(check (list string)) "improvements" [ "B" ] (delta_ids d.Benchdata.improvements);
  Alcotest.(check (list string)) "unchanged" [ "C" ] (delta_ids d.Benchdata.unchanged);
  Alcotest.(check (list string)) "dropped experiments reported" [ "D" ]
    d.Benchdata.only_old;
  Alcotest.(check (list string)) "new experiments reported" [ "E" ]
    d.Benchdata.only_new;
  (match d.Benchdata.regressions with
  | [ a ] ->
      Alcotest.(check (float 1e-9)) "relative change" 0.2 a.Benchdata.change
  | _ -> Alcotest.fail "expected exactly one regression");
  (* A looser threshold absorbs the 20% drift. *)
  let loose = Benchdata.diff ~threshold:0.25 ~baseline current in
  Alcotest.(check (list string)) "loose threshold: no regressions" []
    (delta_ids loose.Benchdata.regressions);
  Alcotest.(check (list string))
    "loose threshold: all within band" [ "A"; "B"; "C" ]
    (delta_ids loose.Benchdata.unchanged)

let test_benchdata_diff_self_is_clean () =
  let doc = doc_of_ratios [ ("A", 1.37); ("B", 0.92) ] in
  let d = Benchdata.diff ~baseline:doc doc in
  Alcotest.(check (list string)) "no regressions" [] (delta_ids d.Benchdata.regressions);
  Alcotest.(check (list string)) "no improvements" [] (delta_ids d.Benchdata.improvements);
  Alcotest.(check int) "all unchanged" 2 (List.length d.Benchdata.unchanged);
  List.iter
    (fun (dl : Benchdata.delta) ->
      Alcotest.(check (float 0.0)) "zero change" 0.0 dl.Benchdata.change)
    d.Benchdata.unchanged

(* --- Metrics ----------------------------------------------------------- *)

let test_metrics_counters_gauges_histograms () =
  Metrics.reset ();
  Metrics.incr "c";
  Metrics.incr ~by:4 "c";
  Metrics.set_gauge "g" 1.5;
  Metrics.set_gauge "g" 2.5;
  Metrics.observe "h" 1.0;
  Metrics.observe "h" 3.0;
  (match Metrics.get "c" with
  | Some (Metrics.Counter 5) -> ()
  | _ -> Alcotest.fail "counter c <> 5");
  (match Metrics.get "g" with
  | Some (Metrics.Gauge x) -> Alcotest.(check (float 0.0)) "gauge" 2.5 x
  | _ -> Alcotest.fail "gauge g missing");
  (match Metrics.get "h" with
  | Some (Metrics.Histogram h) ->
      Alcotest.(check int) "count" 2 h.Metrics.count;
      Alcotest.(check (float 0.0)) "sum" 4.0 h.Metrics.sum;
      Alcotest.(check (float 0.0)) "min" 1.0 h.Metrics.min;
      Alcotest.(check (float 0.0)) "max" 3.0 h.Metrics.max
  | _ -> Alcotest.fail "histogram h missing");
  Alcotest.(check (list string))
    "snapshot sorted" [ "c"; "g"; "h" ]
    (List.map fst (Metrics.snapshot ()));
  Metrics.reset ();
  Alcotest.(check (option reject)) "reset clears" None (Metrics.get "c")

let test_metrics_kind_conflict () =
  Metrics.reset ();
  Metrics.incr "x";
  Alcotest.check_raises "gauge on a counter name"
    (Invalid_argument "Metrics: \"x\" is already bound to another instrument kind")
    (fun () -> Metrics.set_gauge "x" 1.0);
  Alcotest.check_raises "histogram on a counter name"
    (Invalid_argument "Metrics: \"x\" is already bound to another instrument kind")
    (fun () -> Metrics.observe "x" 1.0);
  Metrics.reset ()

let test_metrics_json () =
  Metrics.reset ();
  Metrics.incr ~by:2 "runs";
  Metrics.observe "err" 0.5;
  let s = Json.to_string (Metrics.to_json ()) in
  Alcotest.(check bool) "counter exported" true
    (contains_substring ~needle:"\"runs\":{\"type\":\"counter\",\"value\":2}" s);
  Alcotest.(check bool) "histogram exported" true
    (contains_substring ~needle:"\"err\"" s && contains_substring ~needle:"\"count\"" s);
  Metrics.reset ()

let test_metrics_percentiles () =
  Metrics.reset ();
  (* 100 observations 1..100: p50 falls in the bucket [32, 64), p95 and p99
     in [64, 128) — the estimate is the bucket's upper bound clamped to the
     observed max. Deterministic: same stream, same summary. *)
  for i = 1 to 100 do
    Metrics.observe "lat" (Float.of_int i)
  done;
  (match Metrics.get "lat" with
  | Some (Metrics.Histogram h) ->
      Alcotest.(check int) "count" 100 h.Metrics.count;
      Alcotest.(check (float 0.0)) "p50 = bucket upper bound" 64.0 h.Metrics.p50;
      Alcotest.(check (float 0.0)) "p95 clamped to max" 100.0 h.Metrics.p95;
      Alcotest.(check (float 0.0)) "p99 clamped to max" 100.0 h.Metrics.p99;
      (* percentile re-derivation from the sparse buckets agrees *)
      Alcotest.(check (float 0.0))
        "re-derived p50" h.Metrics.p50
        (Metrics.percentile h 0.50);
      (* rank 1 is the value 1.0, in bucket [1, 2): upper bound 2.0 *)
      Alcotest.(check (float 0.0)) "p1 bucket bound" 2.0
        (Metrics.percentile h 0.01)
  | _ -> Alcotest.fail "histogram missing");
  (* Degenerate: a single observation pins every percentile to it. *)
  Metrics.observe "one" 42.0;
  (match Metrics.get "one" with
  | Some (Metrics.Histogram h) ->
      Alcotest.(check (float 0.0)) "single p50" 42.0 h.Metrics.p50;
      Alcotest.(check (float 0.0)) "single p99" 42.0 h.Metrics.p99
  | _ -> Alcotest.fail "histogram missing");
  (* Non-positive observations land in bucket 0 and report min. *)
  Metrics.observe "neg" (-5.0);
  Metrics.observe "neg" 0.0;
  (match Metrics.get "neg" with
  | Some (Metrics.Histogram h) ->
      Alcotest.(check (float 0.0)) "non-positive p50" (-5.0) h.Metrics.p50
  | _ -> Alcotest.fail "histogram missing");
  Metrics.reset ()

let test_metrics_bucket_of () =
  Alcotest.(check int) "zero -> 0" 0 (Metrics.bucket_of 0.0);
  Alcotest.(check int) "negative -> 0" 0 (Metrics.bucket_of (-3.0));
  Alcotest.(check int) "nan -> 0" 0 (Metrics.bucket_of Float.nan);
  Alcotest.(check int) "1.0 -> 64" 64 (Metrics.bucket_of 1.0);
  Alcotest.(check int) "1.5 stays in [1,2)" 64 (Metrics.bucket_of 1.5);
  Alcotest.(check int) "2.0 -> 65" 65 (Metrics.bucket_of 2.0);
  Alcotest.(check int) "0.5 -> 63" 63 (Metrics.bucket_of 0.5);
  Alcotest.(check int) "underflow clamps" 0 (Metrics.bucket_of 1e-30);
  Alcotest.(check int)
    "infinity clamps to last"
    (Metrics.n_buckets - 1)
    (Metrics.bucket_of Float.infinity)

let test_metrics_merge () =
  (* counters add *)
  (match Metrics.merge (Metrics.Counter 3) (Metrics.Counter 4) with
  | Some (Metrics.Counter 7) -> ()
  | _ -> Alcotest.fail "counters must add");
  (* gauges take the later report *)
  (match Metrics.merge (Metrics.Gauge 1.0) (Metrics.Gauge 9.0) with
  | Some (Metrics.Gauge g) -> Alcotest.(check (float 0.0)) "gauge" 9.0 g
  | _ -> Alcotest.fail "gauges must take b");
  (* kind mismatch refuses *)
  Alcotest.(check bool) "mismatch" true
    (Metrics.merge (Metrics.Counter 1) (Metrics.Gauge 1.0) = None);
  (* histograms merge bucket-wise: build two, merge, compare against the
     histogram of the concatenated stream *)
  Metrics.reset ();
  for i = 1 to 50 do
    Metrics.observe "a" (Float.of_int i)
  done;
  for i = 51 to 100 do
    Metrics.observe "b" (Float.of_int i)
  done;
  for i = 1 to 100 do
    Metrics.observe "ab" (Float.of_int i)
  done;
  (match (Metrics.get "a", Metrics.get "b", Metrics.get "ab") with
  | Some va, Some vb, Some (Metrics.Histogram want) -> (
      match Metrics.merge va vb with
      | Some (Metrics.Histogram got) ->
          Alcotest.(check int) "count" want.Metrics.count got.Metrics.count;
          Alcotest.(check (float 1e-9)) "sum" want.Metrics.sum got.Metrics.sum;
          Alcotest.(check (float 0.0)) "min" want.Metrics.min got.Metrics.min;
          Alcotest.(check (float 0.0)) "max" want.Metrics.max got.Metrics.max;
          Alcotest.(check (float 0.0)) "p50" want.Metrics.p50 got.Metrics.p50;
          Alcotest.(check (float 0.0)) "p99" want.Metrics.p99 got.Metrics.p99
      | _ -> Alcotest.fail "histogram merge failed")
  | _ -> Alcotest.fail "setup failed");
  Metrics.reset ()

let test_metrics_value_json_roundtrip () =
  Metrics.reset ();
  for i = 1 to 30 do
    Metrics.observe "h" (Float.of_int (i * i))
  done;
  Metrics.incr ~by:17 "c";
  Metrics.set_gauge "g" 2.75;
  List.iter
    (fun name ->
      match Metrics.get name with
      | None -> Alcotest.failf "%s missing" name
      | Some v -> (
          match Metrics.value_of_json (Metrics.value_to_json v) with
          | Error e -> Alcotest.failf "%s roundtrip: %s" name e
          | Ok v' -> (
              match (v, v') with
              | Metrics.Counter a, Metrics.Counter b ->
                  Alcotest.(check int) "counter" a b
              | Metrics.Gauge a, Metrics.Gauge b ->
                  Alcotest.(check (float 0.0)) "gauge" a b
              | Metrics.Histogram a, Metrics.Histogram b ->
                  Alcotest.(check int) "count" a.Metrics.count b.Metrics.count;
                  Alcotest.(check (float 0.0)) "p50" a.Metrics.p50
                    b.Metrics.p50;
                  Alcotest.(check bool) "buckets" true
                    (a.Metrics.buckets = b.Metrics.buckets)
              | _ -> Alcotest.fail "kind changed in roundtrip")))
    [ "h"; "c"; "g" ];
  Metrics.reset ()

(* --- Telemetry --------------------------------------------------------- *)

module Telemetry = Cc_obs.Telemetry

let wire ?(books = 0) ?(gaps = 0) ?(bytes_in = 0) ?(installs = 0) shard =
  { Telemetry.shard; books; gaps; bytes_in; installs }

let test_telemetry_capture_and_roundtrip () =
  Metrics.reset ();
  Metrics.incr ~by:3 "wire.frames_in";
  Metrics.observe "apply_ms" 1.5;
  (* pre-merged worker.* entries must not be re-captured (no recursion) *)
  Metrics.set "worker.0.wire.books" (Metrics.Counter 99);
  let r = Telemetry.capture ~shards:[ wire ~books:5 ~bytes_in:640 0 ] () in
  Alcotest.(check bool) "gc captured" true (r.Telemetry.gc.heap_words > 0);
  Alcotest.(check bool) "registry captured" true
    (List.mem_assoc "wire.frames_in" r.Telemetry.registry);
  Alcotest.(check bool) "worker.* excluded" false
    (List.mem_assoc "worker.0.wire.books" r.Telemetry.registry);
  (match Telemetry.of_json (Telemetry.to_json r) with
  | Error e -> Alcotest.failf "roundtrip: %s" e
  | Ok r' ->
      Alcotest.(check int) "shards" 1 (List.length r'.Telemetry.shards);
      Alcotest.(check int) "books" 5
        (List.hd r'.Telemetry.shards).Telemetry.books;
      Alcotest.(check int) "registry size"
        (List.length r.Telemetry.registry)
        (List.length r'.Telemetry.registry));
  Metrics.reset ()

let get_counter name =
  match Metrics.get name with
  | Some (Metrics.Counter c) -> c
  | _ -> Alcotest.failf "counter %s missing" name

let test_telemetry_merge_epochs () =
  Metrics.reset ();
  let m = Telemetry.Merge.create () in
  let report ?(registry = []) books =
    {
      Telemetry.gc =
        {
          minor_words = 0.;
          major_words = 0.;
          heap_words = 1;
          minor_collections = 0;
          major_collections = 0;
          compactions = 0;
        };
      registry;
      spans = [];
      shards = [ wire ~books 0 ];
      ts = Float.nan;
      trees = [];
      events = [];
    }
  in
  (* Within one epoch reports are cumulative: observing 5 then 8 publishes
     8, not 13. *)
  Telemetry.Merge.observe m (report 5);
  Telemetry.Merge.observe m (report 8);
  Alcotest.(check int) "cumulative within epoch" 8
    (get_counter "worker.0.wire.books");
  (* A commit closes the epoch; the next epoch's reports add on top. *)
  Telemetry.Merge.commit m ~shard:0;
  Alcotest.(check int) "commit leaves published value" 8
    (get_counter "worker.0.wire.books");
  Telemetry.Merge.observe m (report 3);
  Alcotest.(check int) "epochs sum" 11 (get_counter "worker.0.wire.books");
  (* Double commit must not double-count. *)
  Telemetry.Merge.commit m ~shard:0;
  Telemetry.Merge.commit m ~shard:0;
  Telemetry.Merge.observe m (report 0);
  Alcotest.(check int) "no double count" 11
    (get_counter "worker.0.wire.books");
  (* Worker registry entries ride under worker.<shard>.m.* *)
  Telemetry.Merge.observe m
    (report ~registry:[ ("wire.frames_in", Metrics.Counter 4) ] 0);
  Alcotest.(check int) "registry namespaced" 4
    (get_counter "worker.0.m.wire.frames_in");
  Metrics.reset ()

let test_telemetry_ships_trees () =
  Metrics.reset ();
  let tree =
    mkspan ~id:(1 lsl 30) ~name:"phase_walk"
      ~args:[ ("level", "3") ]
      ~start:0x1.8p10 ~stop:0x1.9p10
      ~children:[ mkspan ~id:((1 lsl 30) + 1) ~name:"level" ~depth:1
                    ~start:0x1.84p10 ~stop:0x1.88p10 () ]
      ()
  in
  let ev =
    { Trace.ts = 0x1.85p10; span_id = Some (1 lsl 30); kind = "exchange";
      label = "walk"; rounds = 1.0; messages = 4; words = 16; max_load = 4;
      round_clock = 7.0 }
  in
  let r = Telemetry.capture ~trees:[ tree ] ~events:[ ev ] ~shards:[] () in
  Alcotest.(check bool) "ts stamped" true (Float.is_finite r.Telemetry.ts);
  (match Telemetry.of_json (Telemetry.to_json r) with
  | Error e -> Alcotest.failf "roundtrip: %s" e
  | Ok r' -> (
      (match r'.Telemetry.trees with
      | [ t ] ->
          Alcotest.(check bool) "tree timestamps exact" true
            (t.Trace.start_ts = 0x1.8p10 && t.Trace.stop_ts = 0x1.9p10);
          Alcotest.(check int) "tree ids survive" (1 lsl 30) t.Trace.id;
          Alcotest.(check int) "children survive" 1
            (List.length t.Trace.children)
      | l -> Alcotest.failf "expected 1 tree, got %d" (List.length l));
      match r'.Telemetry.events with
      | [ e ] ->
          Alcotest.(check bool) "event ts exact" true (e.Trace.ts = 0x1.85p10);
          Alcotest.(check (option int)) "event span link" (Some (1 lsl 30))
            e.Trace.span_id
      | l -> Alcotest.failf "expected 1 event, got %d" (List.length l)));
  Metrics.reset ()

(* --- Journal ----------------------------------------------------------- *)

module Journal = Cc_obs.Journal

let test_journal_record_and_roundtrip () =
  let t = ref 0.0 in
  let clock () =
    t := !t +. 0.5;
    !t
  in
  let j = Journal.create ~clock () in
  Journal.record j ~worker:0 ~cause:"spawn" "worker_start";
  Journal.record j ~worker:1 ~shard:1 ~attempt:2 ~budget:1 ~round:12.5
    ~cause:"status poll timeout" "heartbeat_timeout";
  Journal.record j ~worker:1 "respawn";
  Alcotest.(check int) "length" 3 (Journal.length j);
  Alcotest.(check bool) "not clean" false (Journal.is_clean j);
  (match Journal.events j with
  | [ e0; e1; e2 ] ->
      Alcotest.(check int) "seq monotone" 0 e0.Journal.seq;
      Alcotest.(check int) "seq monotone" 2 e2.Journal.seq;
      Alcotest.(check bool) "time monotone" true (e1.Journal.t_s > e0.Journal.t_s);
      Alcotest.(check (option int)) "shard" (Some 1) e1.Journal.shard;
      Alcotest.(check (float 0.0)) "round" 12.5 e1.Journal.round
  | _ -> Alcotest.fail "wrong event count");
  match Journal.of_jsonl (Journal.to_jsonl j) with
  | Error e -> Alcotest.failf "roundtrip: %s" e
  | Ok evs ->
      Alcotest.(check int) "roundtrip count" 3 (List.length evs);
      let e1 = List.nth evs 1 in
      Alcotest.(check string) "kind" "heartbeat_timeout" e1.Journal.kind;
      Alcotest.(check (option int)) "attempt" (Some 2) e1.Journal.attempt;
      Alcotest.(check (option int)) "budget" (Some 1) e1.Journal.budget;
      Alcotest.(check string) "cause" "status poll timeout" e1.Journal.cause

let test_journal_bounded () =
  let j = Journal.create ~cap:4 ~clock:(fun () -> 0.0) () in
  for i = 1 to 10 do
    Journal.record j ~worker:i "worker_start"
  done;
  Alcotest.(check int) "capped" 4 (Journal.length j);
  Alcotest.(check int) "dropped counted" 6 (Journal.dropped j);
  (match Journal.events j with
  | e :: _ -> Alcotest.(check int) "oldest dropped first" 6 e.Journal.seq
  | [] -> Alcotest.fail "empty");
  Alcotest.(check bool) "clean (only starts)" true (Journal.is_clean j)

let test_journal_drop_oldest_boundary () =
  (* Exercise the capacity edge exactly: nothing drops at cap, the single
     oldest event drops at cap+1. *)
  let j = Journal.create ~cap:4 ~clock:(fun () -> 0.0) () in
  for i = 0 to 3 do
    Journal.record j ~worker:i "worker_start"
  done;
  Alcotest.(check int) "full, nothing dropped" 0 (Journal.dropped j);
  Alcotest.(check int) "length at cap" 4 (Journal.length j);
  (match Journal.events j with
  | e :: _ -> Alcotest.(check int) "seq 0 still present" 0 e.Journal.seq
  | [] -> Alcotest.fail "empty");
  Journal.record j ~worker:4 "worker_start";
  Alcotest.(check int) "one over cap drops one" 1 (Journal.dropped j);
  Alcotest.(check int) "length still cap" 4 (Journal.length j);
  match Journal.events j with
  | first :: _ as evs ->
      Alcotest.(check int) "head advanced to seq 1" 1 first.Journal.seq;
      let last = List.nth evs (List.length evs - 1) in
      Alcotest.(check int) "newest retained" 4 last.Journal.seq
  | [] -> Alcotest.fail "empty"

let test_journal_reload_torn_tail () =
  (* A crash mid-write leaves a truncated final line; reload must salvage
     the intact prefix. A line that parses as JSON but has the wrong shape
     is corruption, not a torn tail, and must still error. *)
  let j = Journal.create ~clock:(fun () -> 1.0) () in
  Journal.record j ~worker:0 ~cause:"spawn" "worker_start";
  Journal.record j ~worker:1 ~cause:"spawn" "worker_start";
  Journal.record j ~worker:1 ~cause:"status poll timeout" "heartbeat_timeout";
  let whole = Journal.to_jsonl j in
  let torn = String.sub whole 0 (String.length whole - 15) in
  (match Journal.of_jsonl torn with
  | Error e -> Alcotest.failf "torn tail must salvage: %s" e
  | Ok evs ->
      Alcotest.(check int) "intact prefix kept" 2 (List.length evs);
      Alcotest.(check string) "last intact event" "worker_start"
        (List.nth evs 1).Journal.kind);
  match Journal.of_jsonl (whole ^ "{\"x\":0}\n") with
  | Ok _ -> Alcotest.fail "well-formed wrong-shape line must error"
  | Error e ->
      Alcotest.(check bool) "error names the line" true
        (contains_substring ~needle:"line 4" e)

(* --- Json emitter escaping (round-trips through the parser) ------------ *)

let emit_parse s =
  let out = Json.to_string (Json.String s) in
  match Json.of_string out with
  | Ok (Json.String s') -> (out, s')
  | Ok _ -> Alcotest.failf "emitted %S reparsed as a non-string" out
  | Error e -> Alcotest.failf "emitted %S does not reparse: %s" out e

let test_json_emit_control_chars () =
  let s = "a\x01b\x1fc" in
  let out, back = emit_parse s in
  Alcotest.(check bool) "C0 controls become \\u00xx" true
    (contains_substring ~needle:{|\u0001|} out
    && contains_substring ~needle:{|\u001f|} out);
  Alcotest.(check string) "round-trip" s back

let test_json_emit_quote_backslash () =
  let s = {|say "hi" \ done|} in
  let out, back = emit_parse s in
  Alcotest.(check bool) "quote and backslash escaped" true
    (contains_substring ~needle:{|\"hi\"|} out
    && contains_substring ~needle:{|\\|} out);
  Alcotest.(check string) "round-trip" s back

let test_json_emit_non_bmp () =
  (* The emitter passes non-ASCII bytes through raw; a non-BMP code point
     (U+1F600, 4 UTF-8 bytes) must survive emit -> parse unchanged, and
     agree with the parser's own \u surrogate-pair decoding. *)
  let s = "\xf0\x9f\x98\x80" in
  let out, back = emit_parse s in
  Alcotest.(check string) "raw UTF-8 preserved" ("\"" ^ s ^ "\"") out;
  Alcotest.(check string) "round-trip" s back;
  match Json.of_string "\"\\ud83d\\ude00\"" with
  | Ok (Json.String s') ->
      Alcotest.(check string) "agrees with surrogate-pair decoding" s s'
  | _ -> Alcotest.fail "surrogate pair did not parse"

(* --- Recorder ----------------------------------------------------------- *)

(* A two-machine exchange record with overridable fields. *)
let radd r ?(kind = "exchange") ?(label = "x") ?(rounds = 1.0) ~round_end
    ?(messages = 1) ?(words = 2) ?(max_load = 2) ?(sent = [| 2; 0 |])
    ?(recv = [| 0; 2 |]) () =
  Recorder.add r ~kind ~label ~rounds ~round_end ~messages ~words ~max_load
    ~sent ~recv ~retransmits:0 ~dropped:0

let test_recorder_digest_determinism () =
  let mk labels =
    let r = Recorder.create ~machines:2 () in
    List.iteri
      (fun i label -> radd r ~label ~round_end:(float_of_int (i + 1)) ())
      labels;
    r
  in
  let a = mk [ "p"; "q" ] and b = mk [ "p"; "q" ] and c = mk [ "q"; "p" ] in
  Alcotest.(check string) "identical streams agree"
    (Recorder.digest_hex a) (Recorder.digest_hex b);
  Alcotest.(check bool) "reordered stream disagrees" false
    (String.equal (Recorder.digest_hex a) (Recorder.digest_hex c));
  Alcotest.(check bool) "digest is fnv64-tagged hex" true
    (String.length (Recorder.digest_hex a) = 22
    && String.sub (Recorder.digest_hex a) 0 6 = "fnv64:")

let test_recorder_jsonl_roundtrip () =
  let r = Recorder.create ~machines:2 () in
  radd r ~label:"walk" ~round_end:1.5 ~rounds:1.5 ();
  radd r ~kind:"charge" ~label:"free" ~rounds:0.25 ~round_end:1.75 ~messages:0
    ~words:0 ~max_load:0 ~sent:[||] ~recv:[||] ();
  radd r ~kind:"broadcast" ~label:"bc" ~round_end:2.75 ~words:2 ~max_load:2
    ~sent:[| 2; 0 |] ~recv:[| 0; 2 |] ();
  match Recorder.of_jsonl (Recorder.to_jsonl r) with
  | Error e -> Alcotest.failf "reload failed: %s" e
  | Ok l ->
      (match Recorder.verify l with
      | Ok d ->
          Alcotest.(check string) "verified digest matches the live one"
            (Recorder.digest_hex r) d
      | Error e -> Alcotest.failf "verify failed: %s" e);
      Alcotest.(check (option reject)) "no divergence vs the original" None
        (Recorder.diff r l.Recorder.log);
      Alcotest.(check int) "all records reloaded" 3
        (List.length (Recorder.records l.Recorder.log))

let test_recorder_truncation () =
  let r = Recorder.create ~max_records:2 ~machines:2 () in
  for i = 1 to 4 do
    radd r ~round_end:(float_of_int i) ()
  done;
  Alcotest.(check int) "total counts every add" 4 (Recorder.total r);
  Alcotest.(check int) "stored is capped" 2 (Recorder.stored r);
  Alcotest.(check int) "overflow counted" 2 (Recorder.dropped_records r);
  match Recorder.of_jsonl (Recorder.to_jsonl r) with
  | Error e -> Alcotest.failf "reload failed: %s" e
  | Ok l -> (
      match Recorder.verify l with
      | Ok _ -> Alcotest.fail "truncated log must not verify"
      | Error msg ->
          Alcotest.(check bool) "error names truncation" true
            (contains_substring ~needle:"truncat" msg))

let test_recorder_diff_first_divergence () =
  let mk words =
    let r = Recorder.create ~machines:2 () in
    radd r ~round_end:1.0 ();
    radd r ~round_end:2.0 ~words
      ~sent:[| words; 0 |]
      ~recv:[| 0; words |]
      ~max_load:words ();
    r
  in
  let a = mk 2 and b = mk 3 in
  match Recorder.diff a b with
  | Some d ->
      Alcotest.(check int) "first divergent event" 1 d.Recorder.seq;
      Alcotest.(check string) "first divergent field" "words" d.Recorder.field;
      Alcotest.(check string) "left rendering" "2" d.Recorder.a;
      Alcotest.(check string) "right rendering" "3" d.Recorder.b
  | None -> Alcotest.fail "expected a divergence"

let test_recorder_timeline () =
  let r = Recorder.create ~machines:2 () in
  radd r ~label:"alpha" ~round_end:1.0 ();
  radd r ~label:"beta" ~round_end:2.0 ();
  radd r ~label:"alpha" ~round_end:3.0 ();
  let s = Recorder.timeline ~width:8 r in
  Alcotest.(check bool) "lanes named after labels" true
    (contains_substring ~needle:"alpha" s
    && contains_substring ~needle:"beta" s);
  Alcotest.(check bool) "axis present" true (contains_substring ~needle:"0" s)

let test_recorder_shape_validation () =
  let r = Recorder.create ~machines:2 () in
  Alcotest.check_raises "wrong-length arrays rejected"
    (Invalid_argument
       "Recorder.add: per-machine arrays must be empty or one slot per machine")
    (fun () -> radd r ~round_end:1.0 ~sent:[| 1; 2; 3 |] ())

(* --- Invariant ---------------------------------------------------------- *)

(* Literal four-machine records for the synthetic checks. *)
let mk_record ~seq ~kind ~label ~round_start ~rounds ~messages ~words ~max_load
    ~sent ~recv =
  {
    Recorder.seq;
    kind;
    label;
    round_start;
    round_end = round_start +. rounds;
    rounds;
    messages;
    words;
    max_load;
    sent;
    recv;
    retransmits = 0;
    dropped = 0;
  }

let clean_exchange ~seq ~round_start =
  mk_record ~seq ~kind:"exchange" ~label:"x" ~round_start ~rounds:1.0
    ~messages:2 ~words:4 ~max_load:2
    ~sent:[| 2; 0; 2; 0 |]
    ~recv:[| 0; 2; 0; 2 |]

let test_invariant_clean_synthetic () =
  let inv = Invariant.create ~machines:4 () in
  Alcotest.(check int) "clean exchange" 0
    (List.length (Invariant.observe inv (clean_exchange ~seq:0 ~round_start:0.0)));
  let bc =
    mk_record ~seq:1 ~kind:"broadcast" ~label:"b" ~round_start:1.0 ~rounds:1.0
      ~messages:3 ~words:6 ~max_load:2
      ~sent:[| 0; 2; 0; 0 |]
      ~recv:[| 2; 0; 2; 2 |]
  in
  Alcotest.(check int) "clean broadcast" 0
    (List.length (Invariant.observe inv bc));
  let ch =
    mk_record ~seq:2 ~kind:"charge" ~label:"c" ~round_start:2.0 ~rounds:0.5
      ~messages:0 ~words:0 ~max_load:0 ~sent:[||] ~recv:[||]
  in
  Alcotest.(check int) "clean charge" 0 (List.length (Invariant.observe inv ch));
  Alcotest.(check int) "monitor stayed clean" 0 (Invariant.count inv)

let test_invariant_lenzen_cap () =
  (* One round on four machines budgets 4 words per machine; machine 0
     sending 8 must be flagged with the offending machine/round/label. *)
  let inv = Invariant.create ~machines:4 () in
  let r =
    mk_record ~seq:0 ~kind:"exchange" ~label:"hot" ~round_start:0.0 ~rounds:1.0
      ~messages:1 ~words:8 ~max_load:8
      ~sent:[| 8; 0; 0; 0 |]
      ~recv:[| 0; 8; 0; 0 |]
  in
  let vs = Invariant.observe inv r in
  let caps =
    List.filter (fun v -> v.Invariant.invariant = "lenzen_cap") vs
  in
  Alcotest.(check int) "both endpoints over budget" 2 (List.length caps);
  match caps with
  | v :: _ ->
      Alcotest.(check (option int)) "offending machine" (Some 0)
        v.Invariant.machine;
      Alcotest.(check string) "offending label" "hot" v.Invariant.label;
      Alcotest.(check (option (float 1e-9))) "offending round" (Some 1.0)
        v.Invariant.round
  | [] -> Alcotest.fail "no lenzen_cap violation"

let test_invariant_conservation () =
  let inv = Invariant.create ~machines:4 () in
  let r =
    (* 5 words routed but only 4 booked; loads stay inside the 2-round
       budget so only conservation fires. *)
    mk_record ~seq:0 ~kind:"exchange" ~label:"leak" ~round_start:0.0
      ~rounds:2.0 ~messages:1 ~words:4 ~max_load:5
      ~sent:[| 5; 0; 0; 0 |]
      ~recv:[| 0; 5; 0; 0 |]
  in
  let vs = Invariant.observe inv r in
  Alcotest.(check bool) "conservation violation reported" true
    (List.exists (fun v -> v.Invariant.invariant = "conservation") vs)

let test_invariant_monotonic () =
  let inv = Invariant.create ~machines:4 () in
  ignore (Invariant.observe inv (clean_exchange ~seq:0 ~round_start:0.0));
  (* The next record claims to start at round 3 though the clock is at 1. *)
  let vs = Invariant.observe inv (clean_exchange ~seq:1 ~round_start:3.0) in
  Alcotest.(check bool) "clock jump reported" true
    (List.exists (fun v -> v.Invariant.invariant = "monotonic") vs)

let test_invariant_metrics_mirroring () =
  Metrics.reset ();
  let inv = Invariant.create ~machines:4 () in
  ignore (Invariant.observe inv (clean_exchange ~seq:0 ~round_start:3.0));
  (match Metrics.get "invariant.violations" with
  | Some (Metrics.Counter c) ->
      Alcotest.(check int) "total counter incremented" 1 c
  | _ -> Alcotest.fail "invariant.violations counter missing");
  match Metrics.get "invariant.monotonic" with
  | Some (Metrics.Counter c) ->
      Alcotest.(check int) "per-invariant counter incremented" 1 c
  | _ -> Alcotest.fail "invariant.monotonic counter missing"

let test_invariant_algorithms_clean () =
  (* End to end: the sampler (which exercises the matching/placement
     pipeline internally) and the doubling sampler must both produce event
     streams that satisfy every online invariant and reconcile with the
     ledger. *)
  let check_algo name run =
    let prng = Prng.create ~seed:9 in
    let g = run prng in
    let n = Graph.n g in
    let net = Net.create ~n in
    let inv = Invariant.create ~machines:n () in
    ignore (Net.attach_invariant net inv);
    (match name with
    | "sampler" -> ignore (Sampler.sample net prng g)
    | _ -> ignore (Doubling.sample_tree net prng g ~tau0:n));
    Alcotest.(check int) (name ^ ": online invariants clean") 0
      (Invariant.count inv);
    Alcotest.(check int)
      (name ^ ": ledger reconciles")
      0
      (List.length (Net.ledger_violations net inv))
  in
  check_algo "sampler" (fun prng -> Gen.build prng Gen.Lollipop ~n:12);
  check_algo "doubling" (fun _ -> Gen.cycle 12)

let () =
  Alcotest.run "cc_obs"
    [
      ( "trace",
        [
          Alcotest.test_case "span tree shape" `Quick test_span_tree_shape;
          Alcotest.test_case "injected clock determinism" `Quick
            test_injected_clock_is_deterministic;
          Alcotest.test_case "spans close on exception" `Quick
            test_with_span_closes_on_exception;
          Alcotest.test_case "disabled tracing is transparent" `Quick
            test_disabled_is_transparent;
          Alcotest.test_case "drain ships each tree exactly once" `Quick
            test_trace_drain_exactly_once;
          Alcotest.test_case "lanes and timestamp rebase" `Quick
            test_trace_lanes_and_rebase;
          Alcotest.test_case "span wire codec is lossless" `Quick
            test_trace_span_codec_exact;
          Alcotest.test_case "artifact of_jsonl roundtrip" `Quick
            test_trace_of_jsonl_roundtrip;
        ] );
      ( "critical-path",
        [
          Alcotest.test_case "chain crosses process lanes" `Quick
            test_critical_path_crosses_lanes;
          Alcotest.test_case "gaps and empty traces" `Quick
            test_critical_path_gap_and_empty;
        ] );
      ( "net",
        [
          Alcotest.test_case "span attribution matches Net totals" `Quick
            test_net_events_attributed_to_open_spans;
          Alcotest.test_case "event timeline kinds and clock" `Quick
            test_event_timeline_and_kinds;
          Alcotest.test_case "set_sink delivers and detaches" `Quick
            test_set_sink_receives_events;
          Alcotest.test_case "sampler root spans sum to Net.rounds" `Quick
            test_sampler_root_span_matches_ledger;
          Alcotest.test_case "tracing does not perturb the ledger" `Quick
            test_tracing_does_not_perturb_run;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome trace_event" `Quick test_chrome_export;
          Alcotest.test_case "jsonl" `Quick test_jsonl_export;
          Alcotest.test_case "span tree pretty-printer" `Quick test_pp_tree;
          Alcotest.test_case "event overflow keeps span totals" `Quick
            test_event_overflow_keeps_span_totals;
          Alcotest.test_case "spans track peak per-machine load" `Quick
            test_span_tracks_max_load;
          Alcotest.test_case "chrome args escaping" `Quick
            test_chrome_export_escapes_args;
        ] );
      ( "json",
        [
          Alcotest.test_case "serialization and escaping" `Quick
            test_json_serialization;
          Alcotest.test_case "parse inverts serialize" `Quick
            test_json_parse_roundtrip;
          Alcotest.test_case "number literals" `Quick test_json_parse_numbers;
          Alcotest.test_case "string escapes and \\u" `Quick
            test_json_parse_escapes;
          Alcotest.test_case "malformed input rejected" `Quick
            test_json_parse_errors;
          Alcotest.test_case "emit control chars" `Quick
            test_json_emit_control_chars;
          Alcotest.test_case "emit quote and backslash" `Quick
            test_json_emit_quote_backslash;
          Alcotest.test_case "emit non-BMP code points" `Quick
            test_json_emit_non_bmp;
        ] );
      ( "recorder",
        [
          Alcotest.test_case "digest determinism and order" `Quick
            test_recorder_digest_determinism;
          Alcotest.test_case "jsonl round-trip verifies" `Quick
            test_recorder_jsonl_roundtrip;
          Alcotest.test_case "bounded log truncation" `Quick
            test_recorder_truncation;
          Alcotest.test_case "diff names first divergence" `Quick
            test_recorder_diff_first_divergence;
          Alcotest.test_case "timeline lanes" `Quick test_recorder_timeline;
          Alcotest.test_case "shape validation raises" `Quick
            test_recorder_shape_validation;
        ] );
      ( "invariant",
        [
          Alcotest.test_case "clean synthetic records" `Quick
            test_invariant_clean_synthetic;
          Alcotest.test_case "lenzen cap violation" `Quick
            test_invariant_lenzen_cap;
          Alcotest.test_case "conservation violation" `Quick
            test_invariant_conservation;
          Alcotest.test_case "monotonicity violation" `Quick
            test_invariant_monotonic;
          Alcotest.test_case "metrics mirroring" `Quick
            test_invariant_metrics_mirroring;
          Alcotest.test_case "sampler and doubling run clean" `Quick
            test_invariant_algorithms_clean;
        ] );
      ( "profile",
        [
          Alcotest.test_case "summary statistics" `Quick test_profile_stats;
          Alcotest.test_case "create validates shapes" `Quick
            test_profile_create_validates;
          Alcotest.test_case "heatmap buckets wide profiles" `Quick
            test_profile_render_buckets;
          Alcotest.test_case "jsonl round-trip" `Quick
            test_profile_jsonl_roundtrip;
          Alcotest.test_case "of_jsonl rejects garbage" `Quick
            test_profile_of_jsonl_rejects_garbage;
        ] );
      ( "benchdata",
        [
          Alcotest.test_case "parse and aggregate" `Quick
            test_benchdata_of_string;
          Alcotest.test_case "schema gate" `Quick
            test_benchdata_rejects_wrong_schema;
          Alcotest.test_case "diff partitions by threshold" `Quick
            test_benchdata_diff_partitions;
          Alcotest.test_case "self-diff is clean" `Quick
            test_benchdata_diff_self_is_clean;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters, gauges, histograms" `Quick
            test_metrics_counters_gauges_histograms;
          Alcotest.test_case "kind conflicts raise" `Quick
            test_metrics_kind_conflict;
          Alcotest.test_case "json export" `Quick test_metrics_json;
          Alcotest.test_case "log-bucket percentiles" `Quick
            test_metrics_percentiles;
          Alcotest.test_case "bucket_of" `Quick test_metrics_bucket_of;
          Alcotest.test_case "merge" `Quick test_metrics_merge;
          Alcotest.test_case "value json roundtrip" `Quick
            test_metrics_value_json_roundtrip;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "capture and roundtrip" `Quick
            test_telemetry_capture_and_roundtrip;
          Alcotest.test_case "epoch-aware merge" `Quick
            test_telemetry_merge_epochs;
          Alcotest.test_case "span trees and events ride reports" `Quick
            test_telemetry_ships_trees;
        ] );
      ( "journal",
        [
          Alcotest.test_case "record and roundtrip" `Quick
            test_journal_record_and_roundtrip;
          Alcotest.test_case "bounded drop-oldest" `Quick test_journal_bounded;
          Alcotest.test_case "drop-oldest capacity boundary" `Quick
            test_journal_drop_oldest_boundary;
          Alcotest.test_case "torn-tail reload" `Quick
            test_journal_reload_torn_tail;
        ] );
    ]
