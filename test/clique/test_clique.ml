(* Tests for Cc_clique: Lenzen-routing round accounting, broadcast,
   aggregation, and the two matrix-multiplication backends. *)

module Net = Cc_clique.Net
module Fault = Cc_clique.Fault
module Matmul = Cc_clique.Matmul
module Mat = Cc_linalg.Mat
module Prng = Cc_util.Prng

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let check_rounds msg expected net =
  if not (feq expected (Net.rounds net)) then
    Alcotest.failf "%s: expected %.1f rounds, got %.1f" msg expected
      (Net.rounds net)

(* --- exchange --- *)

let test_single_message_one_round () =
  let net = Net.create ~n:8 in
  Net.exchange net ~label:"t" [ { Net.src = 0; dst = 1; words = 1 } ];
  check_rounds "single word" 1.0 net

let test_full_lenzen_load_one_round () =
  (* Every machine sends exactly n words spread over all destinations:
     Lenzen says O(1) rounds; our accounting books exactly 1. *)
  let n = 8 in
  let net = Net.create ~n in
  let packets = ref [] in
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      if src <> dst then packets := { Net.src; dst; words = 1 } :: !packets
    done
  done;
  Net.exchange net ~label:"t" !packets;
  check_rounds "balanced all-to-all" 1.0 net

let test_hotspot_costs_linear_rounds () =
  (* Everyone sends n words to machine 0: machine 0 receives n*(n-1) words,
     needing ceil(n(n-1)/n) = n-1 rounds. This is the receiver bottleneck the
     doubling load balancer exists to avoid. *)
  let n = 8 in
  let net = Net.create ~n in
  let packets =
    List.init (n - 1) (fun i -> { Net.src = i + 1; dst = 0; words = n })
  in
  Net.exchange net ~label:"t" packets;
  check_rounds "hotspot" (float_of_int (n - 1)) net

let test_self_messages_free () =
  let net = Net.create ~n:4 in
  Net.exchange net ~label:"t" [ { Net.src = 2; dst = 2; words = 100 } ];
  check_rounds "self message" 0.0 net;
  Alcotest.(check int) "no words" 0 (Net.words net)

let test_exchange_validation () =
  let net = Net.create ~n:4 in
  Alcotest.check_raises "bad id"
    (Invalid_argument "Net.exchange: machine ID out of range") (fun () ->
      Net.exchange net ~label:"t" [ { Net.src = 0; dst = 9; words = 1 } ]);
  Alcotest.check_raises "negative"
    (Invalid_argument "Net.exchange: negative payload") (fun () ->
      Net.exchange net ~label:"t" [ { Net.src = 0; dst = 1; words = -1 } ])

let test_ledger_breakdown () =
  let net = Net.create ~n:4 in
  Net.exchange net ~label:"a" [ { Net.src = 0; dst = 1; words = 1 } ];
  Net.exchange net ~label:"b" [ { Net.src = 0; dst = 1; words = 8 } ];
  let ledger = Net.ledger net in
  Alcotest.(check int) "two labels" 2 (List.length ledger);
  let b_rounds =
    List.find_map (fun (l, r, _, _) -> if l = "b" then Some r else None) ledger
  in
  Alcotest.(check (option (float 0.001))) "b cost" (Some 2.0) b_rounds

let test_ledger_tie_order () =
  (* Equal-round labels must come out sorted by label, not Hashtbl order. *)
  let net = Net.create ~n:4 in
  List.iter
    (fun label -> Net.exchange net ~label [ { Net.src = 0; dst = 1; words = 1 } ])
    [ "zeta"; "alpha"; "mid" ];
  Alcotest.(check (list string)) "ties sorted by label"
    [ "alpha"; "mid"; "zeta" ]
    (List.map (fun (l, _, _, _) -> l) (Net.ledger net));
  (* Rounds still dominate the order. *)
  Net.exchange net ~label:"alpha" [ { Net.src = 0; dst = 1; words = 8 } ];
  Alcotest.(check string) "highest rounds first" "alpha"
    (match Net.ledger net with (l, _, _, _) :: _ -> l | [] -> "")

let test_reset () =
  let net = Net.create ~n:4 in
  Net.exchange net ~label:"t" [ { Net.src = 0; dst = 1; words = 5 } ];
  Net.reset net;
  check_rounds "after reset" 0.0 net;
  Alcotest.(check int) "messages" 0 (Net.messages net);
  Alcotest.(check int) "words" 0 (Net.words net);
  (* The per-label entries are dropped too, not just the totals. *)
  Alcotest.(check int) "per-label ledger empty" 0 (List.length (Net.ledger net));
  Net.exchange net ~label:"t" [ { Net.src = 0; dst = 1; words = 5 } ];
  Alcotest.(check int) "usable after reset" 1 (List.length (Net.ledger net))

(* --- broadcast / all_to_all / aggregate --- *)

let test_broadcast_small_payload () =
  let net = Net.create ~n:16 in
  Net.broadcast net ~label:"t" ~src:3 ~words:1;
  check_rounds "1 word broadcast" 1.0 net

let test_broadcast_large_payload () =
  let net = Net.create ~n:16 in
  Net.broadcast net ~label:"t" ~src:3 ~words:160;
  check_rounds "160 words over n=16" 10.0 net

let test_all_to_all () =
  let net = Net.create ~n:8 in
  Net.all_to_all net ~label:"t" ~words_each:3;
  check_rounds "3 words each" 3.0 net;
  Alcotest.(check int) "messages" (8 * 7) (Net.messages net)

let test_aggregate_combinable () =
  let net = Net.create ~n:8 in
  Net.aggregate net ~label:"t" ~contributors:(List.init 8 (fun i -> i)) ~dst:0 1;
  check_rounds "combinable sum" 1.0 net

let test_aggregate_not_combinable () =
  let net = Net.create ~n:8 in
  Net.aggregate net ~label:"t" ~combinable:false
    ~contributors:(List.init 8 (fun i -> i))
    ~dst:0 8;
  (* 7 contributors * 8 words = 56 words to one machine = ceil(56/8) = 7. *)
  check_rounds "gather" 7.0 net

(* --- per-machine load profile --- *)

let test_skewed_exchange_imbalance () =
  (* One machine sends n words to each of the n-1 others and nothing flows
     back: its load is the whole run's traffic, so the imbalance factor must
     hit n (the worst case Lenzen routing can be handed). *)
  let n = 8 in
  let net = Net.create ~n in
  Net.exchange net ~label:"skew"
    (List.init (n - 1) (fun i -> { Net.src = 0; dst = i + 1; words = n }));
  let p = Net.load_profile net in
  Alcotest.(check int) "hot machine carries everything" (n * (n - 1))
    p.Net.max_load;
  Alcotest.(check (float 1e-9)) "imbalance = n" (float_of_int n) p.Net.imbalance;
  (match p.Net.hot with
  | (m, load) :: _ ->
      Alcotest.(check int) "hot machine id" 0 m;
      Alcotest.(check int) "hot machine load" (n * (n - 1)) load
  | [] -> Alcotest.fail "no hot machine");
  Alcotest.(check int) "sender words" (n * (n - 1))
    p.Net.per_machine.(0).Net.sent_words;
  Alcotest.(check int) "sender messages" (n - 1)
    p.Net.per_machine.(0).Net.sent_messages;
  Alcotest.(check int) "receiver words" n p.Net.per_machine.(1).Net.recv_words;
  (* The heatmap marks the hot machine's column. *)
  let rendered = Format.asprintf "%a" Net.pp_profile net in
  Alcotest.(check bool) "heatmap marks machine 0" true
    (let marker = "^ machine 0" in
     let rec contains i =
       i + String.length marker <= String.length rendered
       && (String.sub rendered i (String.length marker) = marker
          || contains (i + 1))
     in
     contains 0)

let test_balanced_all_to_all_imbalance () =
  (* Every machine carries exactly the mean: imbalance is exactly 1. *)
  let n = 8 in
  let net = Net.create ~n in
  Net.all_to_all net ~label:"dense" ~words_each:3;
  let p = Net.load_profile net in
  Alcotest.(check int) "per-machine load" (3 * (n - 1)) p.Net.max_load;
  Alcotest.(check (float 1e-9)) "imbalance = 1" 1.0 p.Net.imbalance;
  Alcotest.(check (float 1e-9)) "p50 = max (flat profile)"
    (float_of_int p.Net.max_load) p.Net.p50_load

let test_broadcast_attributes_source () =
  (* The source emits the payload once, every other machine takes a copy —
     so sends concentrate at the source while receive load is flat. *)
  let n = 16 in
  let net = Net.create ~n in
  Net.broadcast net ~label:"bc" ~src:3 ~words:160;
  let p = Net.load_profile net in
  Alcotest.(check int) "source sends the payload" 160
    p.Net.per_machine.(3).Net.sent_words;
  Alcotest.(check int) "source receives nothing" 0
    p.Net.per_machine.(3).Net.recv_words;
  Alcotest.(check int) "others send nothing" 0
    p.Net.per_machine.(0).Net.sent_words;
  Alcotest.(check int) "receiver load" 160 p.Net.per_machine.(0).Net.recv_words;
  Alcotest.(check int) "max load = payload" 160 p.Net.max_load

let test_aggregate_attributes_destination () =
  let n = 8 in
  let net = Net.create ~n in
  Net.aggregate net ~label:"agg" ~combinable:false
    ~contributors:(List.init n (fun i -> i))
    ~dst:0 8;
  let p = Net.load_profile net in
  (match p.Net.hot with
  | (m, load) :: _ ->
      Alcotest.(check int) "gather destination is hot" 0 m;
      Alcotest.(check int) "destination receives everything" ((n - 1) * 8) load
  | [] -> Alcotest.fail "no hot machine")

let test_sink_sees_max_load () =
  let n = 8 in
  let net = Net.create ~n in
  let seen = ref [] in
  Net.set_sink net (Some (fun ev -> seen := ev.Net.max_load :: !seen));
  Net.exchange net ~label:"t"
    (List.init (n - 1) (fun i -> { Net.src = i + 1; dst = 0; words = n }));
  Net.charge net ~label:"free" 2.0;
  Alcotest.(check (list int)) "per-primitive loads (charge books none)"
    [ 0; n * (n - 1) ] !seen

let test_reset_clears_profile () =
  let net = Net.create ~n:4 in
  Net.exchange net ~label:"t" [ { Net.src = 0; dst = 1; words = 5 } ];
  Net.reset net;
  let p = Net.load_profile net in
  Alcotest.(check int) "max load" 0 p.Net.max_load;
  Alcotest.(check (float 1e-9)) "imbalance of empty profile" 1.0 p.Net.imbalance;
  Alcotest.(check (list (pair int int))) "no hot machines" [] p.Net.hot;
  Array.iter
    (fun m -> Alcotest.(check int) "per-machine zero" 0 m.Net.load)
    p.Net.per_machine

let test_reset_keeps_sink () =
  (* The sink is observability wiring, not ledger state: a reset must leave
     an installed callback active. *)
  let net = Net.create ~n:4 in
  let count = ref 0 in
  Net.set_sink net (Some (fun _ -> incr count));
  Net.exchange net ~label:"t" [ { Net.src = 0; dst = 1; words = 1 } ];
  Alcotest.(check int) "sink saw the first booking" 1 !count;
  Net.reset net;
  Net.exchange net ~label:"t" [ { Net.src = 0; dst = 1; words = 1 } ];
  Alcotest.(check int) "sink survived the reset" 2 !count

let test_profile_does_not_perturb () =
  (* Reading the profile mid-run must leave the ledger bit-identical to a
     run that never looked. *)
  let drive peek =
    let n = 8 in
    let net = Net.create ~n in
    Net.exchange net ~label:"a"
      (List.init (n - 1) (fun i -> { Net.src = 0; dst = i + 1; words = 3 }));
    if peek then begin
      ignore (Net.load_profile net);
      ignore (Net.obs_profile net);
      ignore (Format.asprintf "%a" Net.pp_profile net)
    end;
    Net.broadcast net ~label:"b" ~src:2 ~words:40;
    Net.aggregate net ~label:"c" ~contributors:[ 1; 2; 3 ] ~dst:0 4;
    if peek then ignore (Net.load_profile net);
    (Net.rounds net, Net.messages net, Net.words net, Net.ledger net)
  in
  let bare = drive false and observed = drive true in
  Alcotest.(check bool) "ledger bit-identical" true (bare = observed)

(* --- words_for_bits --- *)

let test_words_for_bits () =
  let net = Net.create ~n:256 in
  (* word size = 8 bits at n=256. *)
  Alcotest.(check int) "0 bits" 0 (Net.words_for_bits net 0);
  Alcotest.(check int) "1 bit" 1 (Net.words_for_bits net 1);
  Alcotest.(check int) "8 bits" 1 (Net.words_for_bits net 8);
  Alcotest.(check int) "9 bits" 2 (Net.words_for_bits net 9);
  (* entry = log^2 n = 64 bits = 8 words. *)
  Alcotest.(check int) "entry words" 8 (Net.entry_words net)

(* --- Matmul --- *)

let random_stochastic prng n =
  Mat.normalize_rows (Mat.init ~rows:n ~cols:n (fun _ _ -> Prng.float prng 1.0 +. 0.01))

let test_matmul_backends_agree () =
  let prng = Prng.create ~seed:1 in
  let n = 8 in
  let a = random_stochastic prng n and b = random_stochastic prng n in
  let net1 = Net.create ~n and net2 = Net.create ~n in
  let c1 = Matmul.mul net1 (Matmul.charged ()) a b in
  let c2 = Matmul.mul net2 Matmul.Routed_broadcast a b in
  Alcotest.(check bool) "products equal" true (Mat.equal ~tol:1e-12 c1 c2);
  Alcotest.(check bool) "charged is cheaper" true (Net.rounds net1 < Net.rounds net2)

let test_matmul_charged_cost_scaling () =
  (* Charged cost must scale like n^alpha * entry_words. *)
  let cost n =
    let net = Net.create ~n in
    Matmul.rounds_estimate net (Matmul.charged ())
  in
  let c64 = cost 64 and c256 = cost 256 in
  Alcotest.(check bool) "cost grows" true (c256 > c64);
  (* ratio = (256/64)^0.158 * (entry_words 256 / entry_words 64)
     = 4^0.158 * (8 / 5): at n=64 an entry is ceil(36/8) = 5 words,
     at n=256 it is ceil(64/8) = 8. *)
  let expected = ((256.0 /. 64.0) ** 0.158) *. (8.0 /. 5.0) in
  let ratio = c256 /. c64 in
  Alcotest.(check bool)
    (Printf.sprintf "ratio %.3f ~ %.3f" ratio expected)
    true
    (Float.abs (ratio -. expected) < 0.2)

let test_matmul_routed_cost_linear () =
  let n = 16 in
  let net = Net.create ~n in
  let prng = Prng.create ~seed:2 in
  let a = random_stochastic prng n and b = random_stochastic prng n in
  ignore (Matmul.mul net Matmul.Routed_broadcast a b);
  (* Each machine sends/receives (n-1) * n * entry_words words:
     rounds = ceil((n-1) * n * ew / n) = (n-1) * ew. *)
  let ew = Net.entry_words net in
  check_rounds "routed cost" (float_of_int ((n - 1) * ew)) net

let test_power_table_values () =
  let prng = Prng.create ~seed:3 in
  let n = 8 in
  let m = random_stochastic prng n in
  let net = Net.create ~n in
  let table = Matmul.power_table net (Matmul.charged ()) m ~levels:3 in
  Alcotest.(check int) "length" 4 (Array.length table);
  Alcotest.(check bool) "m^8" true
    (Mat.equal ~tol:1e-9 table.(3) (Mat.power m 8))

let test_power_table_books_rounds () =
  let prng = Prng.create ~seed:4 in
  let n = 8 in
  let m = random_stochastic prng n in
  let net = Net.create ~n in
  ignore (Matmul.power_table net (Matmul.charged ()) m ~levels:5);
  (* 5 multiplications plus 6 transposes: rounds > 0 and at least 5 * charge. *)
  let per_mul = Matmul.rounds_estimate net (Matmul.charged ()) in
  Alcotest.(check bool) "booked at least the muls" true
    (Net.rounds net >= 5.0 *. per_mul)

let test_power_table_reuse_books_identically () =
  (* Replaying a cached table (the ccserve warm-plan path) must book the
     exact same event stream as computing it: recorder digests equal. *)
  let prng = Prng.create ~seed:6 in
  let n = 8 in
  let m = random_stochastic prng n in
  let record f =
    let net = Net.create ~n in
    let r = Cc_obs.Recorder.create ~machines:n () in
    ignore (Net.attach_recorder net r);
    let v = f net in
    (v, Cc_obs.Recorder.digest_hex r, Net.rounds net)
  in
  let cold, d_cold, r_cold =
    record (fun net -> Matmul.power_table net (Matmul.charged ()) m ~levels:4)
  in
  let pure = Matmul.power_table_pure m ~levels:4 in
  let warm, d_warm, r_warm =
    record (fun net ->
        Matmul.power_table net (Matmul.charged ()) ~reuse:pure m ~levels:4)
  in
  Alcotest.(check string) "digest" d_cold d_warm;
  Alcotest.(check (float 1e-9)) "rounds" r_cold r_warm;
  Alcotest.(check bool) "returns the cached table" true (warm == pure);
  Array.iteri
    (fun i p ->
      Alcotest.(check bool)
        (Printf.sprintf "level %d values" i)
        true
        (Mat.equal ~tol:1e-12 p cold.(i)))
    warm;
  Alcotest.check_raises "length mismatch rejected"
    (Invalid_argument "Matmul.power_table: reuse table has wrong length")
    (fun () ->
      ignore
        (Matmul.power_table (Net.create ~n) (Matmul.charged ())
           ~reuse:(Array.sub pure 0 3) m ~levels:4))

let test_semiring_backend () =
  let prng = Prng.create ~seed:5 in
  let n = 27 in
  let a = random_stochastic prng n and b = random_stochastic prng n in
  let net_c = Net.create ~n and net_s = Net.create ~n and net_r = Net.create ~n in
  let pc = Matmul.mul net_c (Matmul.charged ()) a b in
  let ps = Matmul.mul net_s Matmul.Routed_semiring a b in
  Alcotest.(check bool) "same product" true (Mat.equal ~tol:1e-12 pc ps);
  ignore (Matmul.mul net_r Matmul.Routed_broadcast a b);
  (* Cost ordering: charged (n^0.158) < semiring (n^1/3) < broadcast (n). *)
  Alcotest.(check bool)
    (Printf.sprintf "ordering %.0f < %.0f < %.0f" (Net.rounds net_c)
       (Net.rounds net_s) (Net.rounds net_r))
    true
    (Net.rounds net_c < Net.rounds net_s && Net.rounds net_s < Net.rounds net_r)

let test_mul_cost_off_size () =
  let net = Net.create ~n:16 in
  let base = Matmul.mul_cost net (Matmul.charged ()) ~dim:16 in
  let double = Matmul.mul_cost net (Matmul.charged ()) ~dim:32 in
  Alcotest.(check (float 1e-9)) "2n costs 4x" (4.0 *. base) double;
  let small = Matmul.mul_cost net (Matmul.charged ()) ~dim:8 in
  Alcotest.(check (float 1e-9)) "small clamps to base" base small

(* --- qcheck --- *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"exchange rounds = ceil(max load / n)" ~count:200
      (make
         Gen.(
           pair (int_range 2 16)
             (list_size (int_range 1 50)
                (triple (int_range 0 15) (int_range 0 15) (int_range 0 20)))))
      (fun (n, raw) ->
        let packets =
          List.filter_map
            (fun (s, d, w) ->
              if s < n && d < n then Some { Net.src = s; dst = d; words = w }
              else None)
          raw
        in
        (* Force the free-packet edge cases into every instance: src = dst
           traffic (local memory) and zero-word packets cost nothing and
           count nothing. *)
        let packets =
          { Net.src = 0; dst = 0; words = 17 }
          :: { Net.src = 0; dst = n - 1; words = 0 }
          :: { Net.src = n - 1; dst = n - 1; words = 0 }
          :: packets
        in
        let net = Net.create ~n in
        Net.exchange net ~label:"t" packets;
        let sent = Array.make n 0 and recv = Array.make n 0 in
        let msgs = ref 0 and wtotal = ref 0 in
        List.iter
          (fun { Net.src; dst; words } ->
            if src <> dst && words > 0 then begin
              sent.(src) <- sent.(src) + words;
              recv.(dst) <- recv.(dst) + words;
              incr msgs;
              wtotal := !wtotal + words
            end)
          packets;
        let load = Array.fold_left max 0 (Array.append sent recv) in
        let expected = if load = 0 then 0.0 else float_of_int ((load + n - 1) / n) in
        feq expected (Net.rounds net)
        && Net.messages net = !msgs
        && Net.words net = !wtotal);
    Test.make ~name:"matmul backends compute the same product" ~count:20
      (make Gen.(pair (int_range 2 10) (int_range 0 1000)))
      (fun (n, seed) ->
        let prng = Prng.create ~seed in
        let a = random_stochastic prng n and b = random_stochastic prng n in
        let net = Net.create ~n in
        Mat.equal ~tol:1e-12
          (Matmul.mul net (Matmul.charged ()) a b)
          (Matmul.mul net Matmul.Routed_broadcast a b));
  ]

(* --- event bus (add_sink / remove_sink / set_sink compat) --- *)

let test_add_sink_ordering () =
  let net = Net.create ~n:4 in
  let order = ref [] in
  let a = Net.add_sink net (fun _ -> order := "a" :: !order) in
  let _b = Net.add_sink net (fun _ -> order := "b" :: !order) in
  Net.exchange net ~label:"t" [ { Net.src = 0; dst = 1; words = 1 } ];
  Alcotest.(check (list string))
    "subscription order preserved" [ "a"; "b" ] (List.rev !order);
  Net.remove_sink net a;
  Net.remove_sink net a;
  (* idempotent *)
  order := [];
  Net.exchange net ~label:"t" [ { Net.src = 0; dst = 1; words = 1 } ];
  Alcotest.(check (list string)) "removed sink is silent" [ "b" ] !order

let test_set_sink_coexists_with_add_sink () =
  (* The legacy set_sink slot is one subscription among many: installing or
     clearing it must not disturb add_sink subscribers. *)
  let net = Net.create ~n:4 in
  let order = ref [] in
  ignore (Net.add_sink net (fun _ -> order := "bus" :: !order));
  Net.set_sink net (Some (fun _ -> order := "compat" :: !order));
  Net.exchange net ~label:"t" [ { Net.src = 0; dst = 1; words = 1 } ];
  Alcotest.(check (list string))
    "both fire, earlier subscription first" [ "bus"; "compat" ]
    (List.rev !order);
  (* Replacing the compat sink re-subscribes it (moves to the back), and
     clearing it leaves the bus subscriber alone. *)
  Net.set_sink net (Some (fun _ -> order := "compat2" :: !order));
  Net.set_sink net None;
  order := [];
  Net.exchange net ~label:"t" [ { Net.src = 0; dst = 1; words = 1 } ];
  Alcotest.(check (list string)) "compat slot cleared" [ "bus" ] !order

let test_reset_keeps_all_sinks () =
  let net = Net.create ~n:4 in
  let hits = ref 0 in
  ignore (Net.add_sink net (fun _ -> incr hits));
  ignore (Net.add_sink net (fun _ -> incr hits));
  Net.set_sink net (Some (fun _ -> incr hits));
  Net.reset net;
  Net.exchange net ~label:"t" [ { Net.src = 0; dst = 1; words = 1 } ];
  Alcotest.(check int) "all three subscriptions survive reset" 3 !hits

let test_event_per_machine_words () =
  let n = 4 in
  let net = Net.create ~n in
  let events = ref [] in
  ignore
    (Net.add_sink net (fun (e : Net.event) ->
         (* sent/recv are shared with the booking layer: copy. *)
         events :=
           (e.Net.kind, Array.copy e.Net.sent, Array.copy e.Net.recv)
           :: !events));
  Net.exchange net ~label:"x"
    [ { Net.src = 0; dst = 1; words = 3 }; { Net.src = 2; dst = 1; words = 5 } ];
  Net.broadcast net ~label:"b" ~src:2 ~words:4;
  Net.charge net ~label:"free" 1.0;
  match List.rev !events with
  | [ (k1, s1, r1); (k2, s2, r2); (k3, s3, r3) ] ->
      Alcotest.(check bool) "exchange kind" true (k1 = Net.Exchange);
      Alcotest.(check (array int)) "exchange sent" [| 3; 0; 5; 0 |] s1;
      Alcotest.(check (array int)) "exchange recv" [| 0; 8; 0; 0 |] r1;
      Alcotest.(check bool) "broadcast kind" true (k2 = Net.Broadcast);
      Alcotest.(check (array int)) "broadcast sent" [| 0; 0; 4; 0 |] s2;
      Alcotest.(check (array int)) "broadcast recv" [| 4; 4; 0; 4 |] r2;
      Alcotest.(check bool) "charge kind" true (k3 = Net.Charge);
      Alcotest.(check (array int)) "charge books no traffic" [||] s3;
      Alcotest.(check (array int)) "charge receives none" [||] r3
  | evs -> Alcotest.failf "expected 3 events, got %d" (List.length evs)

let test_invariant_clean_on_primitives () =
  let n = 6 in
  let net = Net.create ~n in
  let inv = Cc_obs.Invariant.create ~machines:n () in
  ignore (Net.attach_invariant net inv);
  Net.exchange net ~label:"x"
    (List.init (n - 1) (fun i -> { Net.src = i; dst = i + 1; words = 2 }));
  Net.broadcast net ~label:"b" ~src:0 ~words:10;
  Net.all_to_all net ~label:"a" ~words_each:3;
  Net.aggregate net ~label:"g" ~contributors:[ 1; 2; 3 ] ~dst:0 4;
  Net.charge net ~label:"c" 2.5;
  Alcotest.(check int) "no online violations" 0 (Cc_obs.Invariant.count inv);
  Alcotest.(check int) "ledger reconciles" 0
    (List.length (Net.ledger_violations net inv))

let test_invariant_clean_under_faults () =
  (* Reliable delivery heals drops with booked retransmissions; the
     invariant monitor must see every retry as an ordinary conserved
     exchange and the ledger must still reconcile. *)
  let n = 8 in
  let net =
    Net.with_faults
      (Fault.create (Fault.spec ~drop_prob:0.2 ~seed:13 ()))
      (Net.create ~n)
  in
  let inv = Cc_obs.Invariant.create ~machines:n () in
  ignore (Net.attach_invariant net inv);
  for i = 0 to 19 do
    ignore
      (Net.reliable_exchange net ~label:"flaky"
         [ { Net.src = i mod n; dst = (i + 1) mod n; words = 4 } ])
  done;
  Alcotest.(check bool) "faults actually fired" true (Net.dropped net > 0);
  Alcotest.(check int) "no online violations under faults" 0
    (Cc_obs.Invariant.count inv);
  Alcotest.(check int) "ledger reconciles under faults" 0
    (List.length (Net.ledger_violations net inv))

let test_invariant_ledger_mismatch_detected () =
  (* An invariant attached after traffic has already been booked missed
     those events, so the end-of-run reconciliation must flag the gap. *)
  let n = 4 in
  let net = Net.create ~n in
  Net.exchange net ~label:"early" [ { Net.src = 0; dst = 1; words = 7 } ];
  let inv = Cc_obs.Invariant.create ~machines:n () in
  ignore (Net.attach_invariant net inv);
  Net.exchange net ~label:"late" [ { Net.src = 2; dst = 3; words = 1 } ];
  let vs = Net.ledger_violations net inv in
  Alcotest.(check bool) "missed traffic detected" true (vs <> []);
  Alcotest.(check bool) "named a ledger violation" true
    (List.exists (fun v -> v.Cc_obs.Invariant.invariant = "ledger") vs)

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest qcheck_tests in
  Alcotest.run "cc_clique"
    [
      ( "exchange",
        [
          Alcotest.test_case "single message" `Quick test_single_message_one_round;
          Alcotest.test_case "balanced all-to-all" `Quick test_full_lenzen_load_one_round;
          Alcotest.test_case "hotspot" `Quick test_hotspot_costs_linear_rounds;
          Alcotest.test_case "self messages" `Quick test_self_messages_free;
          Alcotest.test_case "validation" `Quick test_exchange_validation;
          Alcotest.test_case "ledger" `Quick test_ledger_breakdown;
          Alcotest.test_case "ledger tie order" `Quick test_ledger_tie_order;
          Alcotest.test_case "reset" `Quick test_reset;
        ] );
      ( "collectives",
        [
          Alcotest.test_case "broadcast small" `Quick test_broadcast_small_payload;
          Alcotest.test_case "broadcast large" `Quick test_broadcast_large_payload;
          Alcotest.test_case "all-to-all" `Quick test_all_to_all;
          Alcotest.test_case "aggregate combinable" `Quick test_aggregate_combinable;
          Alcotest.test_case "aggregate gather" `Quick test_aggregate_not_combinable;
          Alcotest.test_case "words_for_bits" `Quick test_words_for_bits;
        ] );
      ( "profile",
        [
          Alcotest.test_case "skewed exchange" `Quick
            test_skewed_exchange_imbalance;
          Alcotest.test_case "balanced all-to-all" `Quick
            test_balanced_all_to_all_imbalance;
          Alcotest.test_case "broadcast source" `Quick
            test_broadcast_attributes_source;
          Alcotest.test_case "aggregate destination" `Quick
            test_aggregate_attributes_destination;
          Alcotest.test_case "sink max_load" `Quick test_sink_sees_max_load;
          Alcotest.test_case "reset clears profile" `Quick
            test_reset_clears_profile;
          Alcotest.test_case "reset keeps sink" `Quick test_reset_keeps_sink;
          Alcotest.test_case "profile does not perturb" `Quick
            test_profile_does_not_perturb;
        ] );
      ( "event bus",
        [
          Alcotest.test_case "add_sink ordering + remove" `Quick
            test_add_sink_ordering;
          Alcotest.test_case "set_sink compat slot" `Quick
            test_set_sink_coexists_with_add_sink;
          Alcotest.test_case "all sinks survive reset" `Quick
            test_reset_keeps_all_sinks;
          Alcotest.test_case "per-machine words on events" `Quick
            test_event_per_machine_words;
          Alcotest.test_case "invariants clean on primitives" `Quick
            test_invariant_clean_on_primitives;
          Alcotest.test_case "invariants clean under faults" `Quick
            test_invariant_clean_under_faults;
          Alcotest.test_case "ledger mismatch detected" `Quick
            test_invariant_ledger_mismatch_detected;
        ] );
      ( "matmul",
        [
          Alcotest.test_case "backends agree" `Quick test_matmul_backends_agree;
          Alcotest.test_case "charged scaling" `Quick test_matmul_charged_cost_scaling;
          Alcotest.test_case "routed cost" `Quick test_matmul_routed_cost_linear;
          Alcotest.test_case "power table values" `Quick test_power_table_values;
          Alcotest.test_case "power table rounds" `Quick test_power_table_books_rounds;
          Alcotest.test_case "power table reuse" `Quick
            test_power_table_reuse_books_identically;
          Alcotest.test_case "off-size cost" `Quick test_mul_cost_off_size;
          Alcotest.test_case "semiring backend" `Quick test_semiring_backend;
        ] );
      ("properties", qsuite);
    ]
