(* Tests for the fault-injection subsystem: deterministic seeded schedules,
   the reliable-delivery layer (ack + bounded retransmission), crash-stop
   semantics, and the recovery accounting. Runs under the @faults alias
   (wired into the default runtest). *)

module Net = Cc_clique.Net
module Fault = Cc_clique.Fault

let mk ?(n = 8) spec = Net.with_faults (Fault.create spec) (Net.create ~n)

let ring n words =
  List.init n (fun i -> { Net.src = i; dst = (i + 1) mod n; words })

let delivery = Alcotest.testable
    (Fmt.of_to_string (function
      | Net.Delivered -> "Delivered"
      | Net.Corrupted -> "Corrupted"
      | Net.Lost -> "Lost"))
    ( = )

(* --- determinism --- *)

let run_once ~seed =
  let net = mk (Fault.spec ~drop_prob:0.2 ~corrupt_prob:0.05 ~seed ()) in
  let dv = ref [] in
  for _ = 1 to 5 do
    dv := Array.to_list (Net.reliable_exchange net ~label:"x" (ring 8 3)) @ !dv
  done;
  (!dv, Net.ledger net, Net.retransmits net, Net.dropped net, Net.rounds net)

let test_same_seed_identical () =
  let a = run_once ~seed:42 and b = run_once ~seed:42 in
  let dv_a, ledger_a, rt_a, dr_a, r_a = a and dv_b, ledger_b, rt_b, dr_b, r_b = b in
  Alcotest.(check (list delivery)) "verdicts" dv_a dv_b;
  Alcotest.(check int) "retransmits" rt_a rt_b;
  Alcotest.(check int) "dropped" dr_a dr_b;
  Alcotest.(check (float 0.0)) "rounds" r_a r_b;
  Alcotest.(check bool) "ledger" true (ledger_a = ledger_b)

let test_different_seed_differs () =
  (* Not a guarantee for every pair, but seeds 42/43 at these rates diverge;
     a regression that ignores the seed would make them collide. *)
  let dv_a, _, _, _, _ = run_once ~seed:42 and dv_b, _, _, _, _ = run_once ~seed:43 in
  Alcotest.(check bool) "some verdict differs" true (dv_a <> dv_b)

(* --- reliable delivery under drops --- *)

let test_drops_are_retransmitted () =
  let net = mk (Fault.spec ~drop_prob:0.3 ~seed:1 ()) in
  let dv = Net.reliable_exchange net ~label:"place" (ring 8 4) in
  Array.iter (Alcotest.check delivery "delivered" Net.Delivered) dv;
  Alcotest.(check bool) "some packet was dropped" true (Net.dropped net > 0);
  Alcotest.(check bool) "and retransmitted" true (Net.retransmits net > 0);
  Alcotest.(check bool) "overhead metered" true (Net.overhead_rounds net > 0.0);
  let labels = List.map (fun (l, _, _, _) -> l) (Net.ledger net) in
  Alcotest.(check bool) "retry label present" true
    (List.mem "place:retry" labels)

let test_retry_budget_exhaustion () =
  (* With 0 retries every dropped packet is immediately Lost. *)
  let net = mk (Fault.spec ~drop_prob:0.5 ~max_retries:0 ~seed:3 ()) in
  let dv = Net.reliable_exchange net ~label:"x" (ring 8 2) in
  let lost = Array.exists (( = ) Net.Lost) dv in
  Alcotest.(check bool) "some packet lost at budget 0" true lost;
  Alcotest.(check int) "nothing retransmitted" 0 (Net.retransmits net)

let test_fault_free_net_is_reliable () =
  let net = Net.create ~n:4 in
  let dv = Net.reliable_exchange net ~label:"x" (ring 4 2) in
  Array.iter (Alcotest.check delivery "delivered" Net.Delivered) dv;
  Alcotest.(check int) "no retransmits" 0 (Net.retransmits net)

let test_free_packets_always_delivered () =
  (* src = dst and zero-word packets bypass the injector entirely. *)
  let net = mk (Fault.spec ~drop_prob:0.9 ~max_retries:0 ~seed:5 ()) in
  let dv =
    Net.reliable_exchange net ~label:"x"
      [ { Net.src = 2; dst = 2; words = 50 }; { Net.src = 0; dst = 1; words = 0 } ]
  in
  Array.iter (Alcotest.check delivery "delivered" Net.Delivered) dv;
  Alcotest.(check int) "no drops" 0 (Net.dropped net)

(* --- crash-stop --- *)

let test_crash_loses_packets_no_exception () =
  let f = Fault.create (Fault.spec ()) in
  let net = Net.with_faults f (Net.create ~n:8) in
  Fault.crash_now f 3;
  let dv = Net.reliable_exchange net ~label:"x" (ring 8 2) in
  (* Ring packets 2->3 and 3->4 touch the crashed machine. *)
  Alcotest.check delivery "into crashed" Net.Lost dv.(2);
  Alcotest.check delivery "out of crashed" Net.Lost dv.(3);
  Alcotest.check delivery "unrelated" Net.Delivered dv.(0);
  Alcotest.(check int) "both counted dropped" 2 (Net.dropped net)

let test_scheduled_crash_fires_at_round_boundary () =
  let f = Fault.create (Fault.spec ~crashes:[ (2, 5.0) ] ()) in
  let net = Net.with_faults f (Net.create ~n:4) in
  Alcotest.(check bool) "alive initially" false (Fault.is_crashed f 2);
  Net.exchange net ~label:"x" [ { Net.src = 0; dst = 1; words = 4 * 4 } ];
  (* 16 words to one machine over n=4: 4 rounds booked, still < 5. *)
  Alcotest.(check bool) "alive at round 4" false (Fault.is_crashed f 2);
  Net.exchange net ~label:"x" [ { Net.src = 0; dst = 1; words = 4 * 4 } ];
  Alcotest.(check bool) "crashed at round 8" true (Fault.is_crashed f 2);
  Alcotest.(check (list int)) "crash list" [ 2 ] (Fault.crashed f)

let test_reliable_broadcast_crashed_source () =
  let f = Fault.create (Fault.spec ()) in
  let net = Net.with_faults f (Net.create ~n:4) in
  Fault.crash_now f 1;
  let dv = Net.reliable_broadcast net ~label:"seed" ~src:1 ~words:3 in
  Alcotest.check delivery "own slot" Net.Delivered dv.(1);
  List.iter
    (fun d -> Alcotest.check delivery "recipient lost" Net.Lost dv.(d))
    [ 0; 2; 3 ]

let test_reliable_broadcast_heals_drops () =
  let net = mk ~n:8 (Fault.spec ~drop_prob:0.3 ~seed:9 ()) in
  let dv = Net.reliable_broadcast net ~label:"seed" ~src:0 ~words:5 in
  Array.iter (Alcotest.check delivery "delivered" Net.Delivered) dv

let test_next_live () =
  let f = Fault.create (Fault.spec ()) in
  Fault.crash_now f 2;
  Fault.crash_now f 3;
  Alcotest.(check (option int)) "skips crashed" (Some 4) (Fault.next_live f ~n:5 2);
  Alcotest.(check (option int)) "wraps" (Some 0) (Fault.next_live f ~n:4 2);
  for m = 0 to 4 do Fault.crash_now f m done;
  Alcotest.(check (option int)) "all dead" None (Fault.next_live f ~n:5 0)

(* The documented contract: with every machine of [0, n) crashed, next_live
   is None for *every* start index — in range, negative, or past n — and
   out-of-range machines in the crash set must not fool the early exit. *)
let test_next_live_all_crashed_all_starts () =
  let n = 5 in
  let f = Fault.create (Fault.spec ()) in
  for m = 0 to n - 1 do
    Fault.crash_now f m
  done;
  for from = -2 * n to 2 * n do
    Alcotest.(check (option int))
      (Printf.sprintf "all crashed, from=%d" from)
      None
      (Fault.next_live f ~n from)
  done;
  (* Crashing a machine outside [0, n) must not change the verdict at a
     smaller n where the rest are live. *)
  let g = Fault.create (Fault.spec ()) in
  Fault.crash_now g 7;
  (* out of range for n=4 *)
  Fault.crash_now g 1;
  for from = -4 to 8 do
    Alcotest.(check bool)
      (Printf.sprintf "survivors remain, from=%d" from)
      true
      (Fault.next_live g ~n:4 from <> None)
  done;
  Alcotest.check_raises "n = 0 rejected"
    (Invalid_argument "Fault.next_live: n must be positive") (fun () ->
      ignore (Fault.next_live f ~n:0 0))

(* --- corruption and stragglers --- *)

let test_corrupt_word_flips_one_bit () =
  let f = Fault.create (Fault.spec ~seed:7 ()) in
  for _ = 1 to 100 do
    let w = 0x123456789 in
    let c = Fault.corrupt_word f w in
    let diff = w lxor c in
    Alcotest.(check bool) "exactly one bit" true
      (diff <> 0 && diff land (diff - 1) = 0)
  done

let test_corruption_surfaces_not_retried () =
  let net = mk (Fault.spec ~corrupt_prob:0.5 ~seed:2 ()) in
  let dv = Net.reliable_exchange net ~label:"x" (ring 8 6) in
  Alcotest.(check bool) "some corruption" true
    (Array.exists (( = ) Net.Corrupted) dv);
  (* Corruption is undetectable at the transport: no retransmissions. *)
  Alcotest.(check int) "no transport retries" 0 (Net.retransmits net)

let test_straggler_label () =
  let net = mk (Fault.spec ~straggle_prob:0.9 ~seed:4 ()) in
  for _ = 1 to 10 do
    ignore (Net.reliable_exchange net ~label:"x" (ring 8 2))
  done;
  let labels = List.map (fun (l, _, _, _) -> l) (Net.ledger net) in
  Alcotest.(check bool) "straggle label" true (List.mem "x:straggle" labels);
  Alcotest.(check bool) "straggle is overhead" true (Net.overhead_rounds net > 0.0)

(* --- accounting --- *)

let test_reset_zeroes_fault_counters () =
  let net = mk (Fault.spec ~drop_prob:0.3 ~straggle_prob:0.3 ~seed:6 ()) in
  ignore (Net.reliable_exchange net ~label:"x" (ring 8 4));
  Net.reset net;
  Alcotest.(check int) "retransmits" 0 (Net.retransmits net);
  Alcotest.(check int) "dropped" 0 (Net.dropped net);
  Alcotest.(check (float 0.0)) "overhead" 0.0 (Net.overhead_rounds net);
  Alcotest.(check int) "per-label ledger empty" 0 (List.length (Net.ledger net))

let test_charge_overhead () =
  let net = Net.create ~n:4 in
  Net.charge_overhead net ~label:"recover:retry" 3.0;
  Alcotest.(check (float 0.0)) "booked" 3.0 (Net.rounds net);
  Alcotest.(check (float 0.0)) "counted" 3.0 (Net.overhead_rounds net)

let test_health_classification () =
  let f = Fault.create (Fault.spec ()) in
  let before = Fault.snapshot f in
  Alcotest.(check bool) "healthy" true (Fault.health_of f ~before = Fault.Healthy);
  Fault.note_retransmit f 3;
  Fault.note_rerun f;
  (match Fault.health_of f ~before with
  | Fault.Healed { retransmits = 3; reroutes = 0; reruns = 1 } -> ()
  | h -> Alcotest.failf "unexpected health: %a" Fault.pp_health h);
  (* Counters before the snapshot don't leak into the next run's health. *)
  let before2 = Fault.snapshot f in
  Alcotest.(check bool) "healthy again" true
    (Fault.health_of f ~before:before2 = Fault.Healthy)

let test_spec_validation () =
  Alcotest.check_raises "drop prob 1"
    (Invalid_argument "Fault.create: drop_prob must be in [0, 1)") (fun () ->
      ignore (Fault.create (Fault.spec ~drop_prob:1.0 ())));
  Alcotest.check_raises "negative retries"
    (Invalid_argument "Fault.create: max_retries < 0") (fun () ->
      ignore (Fault.create (Fault.spec ~max_retries:(-1) ())))

(* --- qcheck: the reliable layer never loses a packet while any retry
   budget remains and no machine is crashed --- *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"no Lost without crashes (ample retry budget)" ~count:100
      (make Gen.(triple (int_range 2 12) (int_range 0 60) (int_range 0 9999)))
      (fun (n, pct, seed) ->
        let drop_prob = float_of_int pct /. 100.0 in
        (* P(lost) = drop^(retries+1) <= 0.6^31 ~ 1e-7 per packet. *)
        let net = mk ~n (Fault.spec ~drop_prob ~max_retries:30 ~seed ()) in
        let packets =
          List.init (3 * n) (fun i ->
              { Net.src = i mod n; dst = (i + 1 + (i / n)) mod n; words = 1 + (i mod 3) })
        in
        let dv = Net.reliable_exchange net ~label:"q" packets in
        Array.for_all (fun d -> d <> Net.Lost) dv);
    Test.make ~name:"fault verdicts deterministic in the seed" ~count:50
      (make Gen.(pair (int_range 2 10) (int_range 0 9999)))
      (fun (n, seed) ->
        let go () =
          let net = mk ~n (Fault.spec ~drop_prob:0.25 ~corrupt_prob:0.1 ~seed ()) in
          ( Array.to_list (Net.reliable_exchange net ~label:"q" (ring n 2)),
            Net.rounds net, Net.retransmits net )
        in
        go () = go ());
  ]

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest qcheck_tests in
  Alcotest.run "cc_fault"
    [
      ( "determinism",
        [
          Alcotest.test_case "same seed identical" `Quick test_same_seed_identical;
          Alcotest.test_case "different seed differs" `Quick test_different_seed_differs;
        ] );
      ( "reliable",
        [
          Alcotest.test_case "drops retransmitted" `Quick test_drops_are_retransmitted;
          Alcotest.test_case "budget exhaustion" `Quick test_retry_budget_exhaustion;
          Alcotest.test_case "fault-free net" `Quick test_fault_free_net_is_reliable;
          Alcotest.test_case "free packets" `Quick test_free_packets_always_delivered;
          Alcotest.test_case "broadcast heals drops" `Quick test_reliable_broadcast_heals_drops;
        ] );
      ( "crash",
        [
          Alcotest.test_case "crash loses packets" `Quick test_crash_loses_packets_no_exception;
          Alcotest.test_case "scheduled crash" `Quick test_scheduled_crash_fires_at_round_boundary;
          Alcotest.test_case "crashed broadcast source" `Quick test_reliable_broadcast_crashed_source;
          Alcotest.test_case "next_live" `Quick test_next_live;
          Alcotest.test_case "next_live all crashed, any start" `Quick
            test_next_live_all_crashed_all_starts;
        ] );
      ( "corruption",
        [
          Alcotest.test_case "corrupt_word one bit" `Quick test_corrupt_word_flips_one_bit;
          Alcotest.test_case "corruption surfaces" `Quick test_corruption_surfaces_not_retried;
          Alcotest.test_case "straggler label" `Quick test_straggler_label;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "reset zeroes counters" `Quick test_reset_zeroes_fault_counters;
          Alcotest.test_case "charge_overhead" `Quick test_charge_overhead;
          Alcotest.test_case "health classification" `Quick test_health_classification;
          Alcotest.test_case "spec validation" `Quick test_spec_validation;
        ] );
      ("properties", qsuite);
    ]
