(* Tests for Cc_serve — the sampling-as-a-service plane.

   The server is single-threaded and cooperative (Server.step), so every
   test drives it in-process: connect plain Unix sockets as clients, write
   request lines, and alternate stepping the server with draining the
   client sockets. No forks, no sleeps, no races. *)

module Graph = Cc_graph.Graph
module Tree = Cc_graph.Tree
module Gen = Cc_graph.Gen
module Net = Cc_clique.Net
module Prng = Cc_util.Prng
module Sampler = Cc_sampler.Sampler
module Protocol = Cc_serve.Protocol
module Plan_cache = Cc_serve.Plan_cache
module Server = Cc_serve.Server

let test_graph = Gen.build (Prng.create ~seed:1) Gen.Complete ~n:8

let fresh_sock =
  let c = ref 0 in
  fun () ->
    incr c;
    Printf.sprintf "%s/cc-serve-test-%d-%d.sock"
      (Filename.get_temp_dir_name ())
      (Unix.getpid ()) !c

let make_server ?(cache_cap = 4) ?max_requests () =
  let sock = fresh_sock () in
  Server.create
    { (Server.default_config ~sock) with cache_cap; max_requests }

(* --- a cooperative test client --- *)

type client = { fd : Unix.file_descr; rbuf : Buffer.t }

let connect srv =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX (Server.sock_path srv));
  Unix.set_nonblock fd;
  { fd; rbuf = Buffer.create 256 }

let send srv c s =
  let off = ref 0 in
  while !off < String.length s do
    match Unix.write_substring c.fd s !off (String.length s - !off) with
    | n -> off := !off + n
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        ignore (Server.step srv)
  done

(* Drain available bytes; return complete lines (remainder stays buffered). *)
let drain c =
  let chunk = Bytes.create 65536 in
  let rec fill () =
    match Unix.read c.fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes c.rbuf chunk 0 n;
        fill ()
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        ()
  in
  fill ();
  let s = Buffer.contents c.rbuf in
  let rec split acc start =
    match String.index_from_opt s start '\n' with
    | Some nl -> split (String.sub s start (nl - start) :: acc) (nl + 1)
    | None ->
        Buffer.clear c.rbuf;
        Buffer.add_substring c.rbuf s start (String.length s - start);
        List.rev acc
  in
  split [] 0

let parse line =
  match Protocol.parse_response line with
  | Ok r -> r
  | Error m -> Alcotest.failf "bad response %S: %s" line m

(* Step the server until [client] has received [n] response lines (the
   responses parsed so far are threaded through). *)
let collect srv c ~n =
  let got = ref [] in
  let steps = ref 0 in
  while List.length !got < n && !steps < 200_000 do
    ignore (Server.step srv);
    got := !got @ List.map parse (drain c);
    incr steps
  done;
  Alcotest.(check int) "response count" n (List.length !got);
  !got

let req ?id ?(k = 1) ?(seed = 0) ?(meth = Protocol.Cc) () =
  Protocol.request_line ?id ~graph:test_graph ~k ~seed ~meth ()

let check_trees_then_done ~g ~k responses =
  let rec go i = function
    | [ Protocol.Done d ] ->
        Alcotest.(check int) "done k" k d.k;
        (d.cache_hit, d.digest)
    | Protocol.Tree t :: rest ->
        Alcotest.(check int) "tree index" i t.index;
        let tree = Tree.of_edges ~n:(Graph.n g) t.edges in
        Alcotest.(check bool) "spanning tree" true
          (Tree.is_spanning_tree g tree);
        let prefix = Printf.sprintf "# tree %d:" (i + 1) in
        Alcotest.(check bool) "header names the 1-based tree" true
          (String.length t.header >= String.length prefix
          && String.sub t.header 0 (String.length prefix) = prefix);
        go (i + 1) rest
    | _ -> Alcotest.fail "unexpected response shape"
  in
  go 0 responses

(* The digest a one-shot [cctree sample --count k] run would report: one
   net + recorder, tree i drawn from the i-th sequential split. *)
let oneshot_digest ~k ~seed =
  let g = test_graph in
  let n = Graph.n g in
  let net = Net.create ~n in
  let r = Cc_obs.Recorder.create ~machines:n () in
  ignore (Net.attach_recorder net r);
  let plan = Sampler.prepare g in
  let master = Prng.create ~seed in
  for _ = 1 to k do
    ignore (Sampler.draw plan net (Prng.split master))
  done;
  Cc_obs.Recorder.digest_hex r

(* --- plan cache --- *)

let test_cache_lru () =
  let calls = ref [] in
  let cache = Plan_cache.create ~cap:2 in
  let get key =
    Plan_cache.find_or_add cache key ~make:(fun () ->
        calls := key :: !calls;
        key ^ "!")
  in
  Alcotest.(check (pair string bool)) "miss a" ("a!", false) (get "a");
  Alcotest.(check (pair string bool)) "miss b" ("b!", false) (get "b");
  Alcotest.(check (pair string bool)) "hit a" ("a!", true) (get "a");
  (* b is now least-recently-used: c evicts it. *)
  Alcotest.(check (pair string bool)) "miss c" ("c!", false) (get "c");
  Alcotest.(check bool) "a retained" true (Plan_cache.mem cache "a");
  Alcotest.(check bool) "b evicted" false (Plan_cache.mem cache "b");
  Alcotest.(check (pair string bool)) "b remade" ("b!", false) (get "b");
  Alcotest.(check int) "capacity respected" 2 (Plan_cache.length cache);
  let hits, misses, evictions = Plan_cache.stats cache in
  Alcotest.(check (list int)) "stats" [ 1; 4; 2 ] [ hits; misses; evictions ];
  Alcotest.(check (list string)) "make called once per miss"
    [ "a"; "b"; "c"; "b" ] (List.rev !calls);
  Alcotest.check_raises "cap >= 1" (Invalid_argument "Plan_cache.create: cap < 1")
    (fun () -> ignore (Plan_cache.create ~cap:0))

(* --- protocol --- *)

let test_protocol_roundtrip () =
  let line =
    Protocol.request_line ~id:"r1" ~graph:test_graph ~k:3 ~seed:9
      ~meth:Protocol.Sequential ()
  in
  (match Protocol.parse_request line with
  | Error m -> Alcotest.failf "parse_request: %s" m
  | Ok r ->
      Alcotest.(check (option string)) "id" (Some "r1") r.Protocol.id;
      Alcotest.(check int) "k" 3 r.Protocol.k;
      Alcotest.(check int) "seed" 9 r.Protocol.seed;
      Alcotest.(check string) "method" "sequential"
        (Protocol.method_name r.Protocol.meth);
      Alcotest.(check string) "graph survives the round trip"
        (Graph.fingerprint test_graph)
        (Graph.fingerprint r.Protocol.graph));
  (* Object-form graphs parse too. *)
  (match
     Protocol.parse_request
       {|{"graph": {"n": 3, "edges": [[0,1],[1,2],[0,2,2.5]]}}|}
   with
  | Error m -> Alcotest.failf "object graph: %s" m
  | Ok r ->
      Alcotest.(check int) "n" 3 (Graph.n r.Protocol.graph);
      Alcotest.(check (float 1e-9)) "weight" 2.5
        (Graph.edge_weight r.Protocol.graph 0 2);
      Alcotest.(check int) "default k" 1 r.Protocol.k;
      Alcotest.(check string) "default method" "cc"
        (Protocol.method_name r.Protocol.meth));
  List.iter
    (fun bad ->
      match Protocol.parse_request bad with
      | Ok _ -> Alcotest.failf "accepted %S" bad
      | Error _ -> ())
    [
      "not json";
      "[1,2]";
      {|{"k": 1}|};
      {|{"graph": "n 2", "k": 0}|};
      {|{"graph": "garbage"}|};
      {|{"graph": "n 3\ne 0 1 1\ne 1 2 1", "method": "wilson"}|};
      {|{"graph": {"n": 2, "edges": [[0]]}}|};
    ];
  let tree =
    parse (Protocol.tree_line ~id:"x" ~index:1 ~header:"# tree 2: hi\n"
             ~edges:[ (0, 1); (1, 2) ] ())
  in
  (match tree with
  | Protocol.Tree t ->
      Alcotest.(check int) "index" 1 t.index;
      Alcotest.(check string) "header" "# tree 2: hi\n" t.header;
      Alcotest.(check (list (pair int int))) "edges" [ (0, 1); (1, 2) ]
        t.edges
  | _ -> Alcotest.fail "expected tree");
  match
    parse (Protocol.done_line ~k:2 ~cache_hit:true ~digest:"fnv64:0" ~rounds:4.5 ())
  with
  | Protocol.Done d ->
      Alcotest.(check bool) "cache" true d.cache_hit;
      Alcotest.(check (float 0.0)) "rounds" 4.5 d.rounds
  | _ -> Alcotest.fail "expected done"

(* --- server end-to-end (in-process) --- *)

let test_serve_cold_then_warm () =
  let srv = make_server () in
  let c = connect srv in
  send srv c (req ~k:2 ~seed:5 ());
  let hit_cold, d_cold =
    check_trees_then_done ~g:test_graph ~k:2 (collect srv c ~n:3)
  in
  Alcotest.(check bool) "cold request misses" false hit_cold;
  send srv c (req ~k:2 ~seed:5 ());
  let hit_warm, d_warm =
    check_trees_then_done ~g:test_graph ~k:2 (collect srv c ~n:3)
  in
  Alcotest.(check bool) "warm request hits" true hit_warm;
  Alcotest.(check string) "warm digest = cold digest" d_cold d_warm;
  Alcotest.(check string) "digest = one-shot digest"
    (oneshot_digest ~k:2 ~seed:5) d_cold;
  let hits, misses, _ = Server.cache_stats srv in
  Alcotest.(check (pair int int)) "cache counters" (1, 1) (hits, misses);
  Alcotest.(check int) "served" 2 (Server.served srv);
  Server.request_stop srv;
  while Server.step srv do () done;
  Alcotest.(check bool) "socket unlinked after drain" false
    (Sys.file_exists (Server.sock_path srv));
  Unix.close c.fd

let test_serve_concurrent_clients () =
  let srv = make_server () in
  let c1 = connect srv and c2 = connect srv in
  (* Both requests are in flight at once; the round-robin scheduler
     interleaves their draws on one loop. *)
  send srv c1 (req ~id:"a" ~k:3 ~seed:1 ());
  send srv c2 (req ~id:"b" ~k:3 ~seed:2 ());
  let r1 = ref [] and r2 = ref [] in
  let steps = ref 0 in
  while (List.length !r1 < 4 || List.length !r2 < 4) && !steps < 200_000 do
    ignore (Server.step srv);
    r1 := !r1 @ List.map parse (drain c1);
    r2 := !r2 @ List.map parse (drain c2);
    incr steps
  done;
  let _, d1 = check_trees_then_done ~g:test_graph ~k:3 !r1 in
  let _, d2 = check_trees_then_done ~g:test_graph ~k:3 !r2 in
  List.iter
    (fun r ->
      match r with
      | Protocol.Tree t -> Alcotest.(check (option string)) "id a" (Some "a") t.id
      | Protocol.Done d -> Alcotest.(check (option string)) "id a" (Some "a") d.id
      | _ -> ())
    !r1;
  Alcotest.(check string) "client 1 digest deterministic"
    (oneshot_digest ~k:3 ~seed:1) d1;
  Alcotest.(check string) "client 2 digest deterministic"
    (oneshot_digest ~k:3 ~seed:2) d2;
  (* Same graph: one prepare served both. *)
  let hits, misses, _ = Server.cache_stats srv in
  Alcotest.(check (pair int int)) "one miss, one hit" (1, 1) (hits, misses);
  Server.request_stop srv;
  while Server.step srv do () done;
  Unix.close c1.fd;
  Unix.close c2.fd

let test_serve_malformed_and_torn_lines () =
  let srv = make_server () in
  let c = connect srv in
  (* Malformed JSON: structured error, connection survives. *)
  send srv c "this is not json\n";
  (match collect srv c ~n:1 with
  | [ Protocol.Error e ] ->
      Alcotest.(check bool) "mentions JSON" true
        (String.length e.message > 0)
  | _ -> Alcotest.fail "expected error response");
  (* Valid JSON, invalid request: still an error, still alive. *)
  send srv c "{\"k\": 1}\n";
  (match collect srv c ~n:1 with
  | [ Protocol.Error _ ] -> ()
  | _ -> Alcotest.fail "expected error response");
  (* A torn request line: half now, half later — served once complete. *)
  let line = req ~k:1 ~seed:3 () in
  let half = String.length line / 2 in
  send srv c (String.sub line 0 half);
  for _ = 1 to 50 do
    ignore (Server.step srv)
  done;
  Alcotest.(check (list string)) "no response for a torn line" []
    (List.map (fun _ -> "x") (drain c));
  send srv c (String.sub line half (String.length line - half));
  ignore (check_trees_then_done ~g:test_graph ~k:1 (collect srv c ~n:2));
  Alcotest.(check int) "only the valid request counts as served" 1
    (Server.served srv);
  Server.request_stop srv;
  while Server.step srv do () done;
  Unix.close c.fd

let test_serve_stale_socket_cleanup () =
  let path = fresh_sock () in
  (* Fake a crashed server: a socket file nobody is accepting on. *)
  let dead = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind dead (Unix.ADDR_UNIX path);
  Unix.close dead;
  Alcotest.(check bool) "stale file exists" true (Sys.file_exists path);
  let srv = Server.create (Server.default_config ~sock:path) in
  let c = connect srv in
  send srv c (req ());
  ignore (check_trees_then_done ~g:test_graph ~k:1 (collect srv c ~n:2));
  (* A live server on the path must be detected, not clobbered. *)
  Alcotest.(check bool) "second server refused" true
    (match Server.create (Server.default_config ~sock:path) with
    | _ -> false
    | exception Failure _ -> true);
  Alcotest.(check bool) "first server still bound" true
    (Sys.file_exists path);
  Server.request_stop srv;
  while Server.step srv do () done;
  Unix.close c.fd

let test_serve_drain_finishes_active_job () =
  let srv = make_server () in
  let c = connect srv in
  send srv c (req ~k:3 ~seed:4 ());
  (* Let the job start, then ask for a stop mid-request: the drain must
     still deliver all three trees and the done line. *)
  for _ = 1 to 3 do
    ignore (Server.step srv)
  done;
  Server.request_stop srv;
  let got = ref [] in
  let continue = ref true in
  while !continue do
    continue := Server.step srv;
    got := !got @ List.map parse (drain c)
  done;
  got := !got @ List.map parse (drain c);
  ignore (check_trees_then_done ~g:test_graph ~k:3 !got);
  Alcotest.(check bool) "socket gone" false
    (Sys.file_exists (Server.sock_path srv));
  Alcotest.(check bool) "new connections refused" true
    (match connect srv with
    | _ -> false
    | exception Unix.Unix_error _ -> true);
  Unix.close c.fd

let test_serve_max_requests_and_methods () =
  let srv = make_server ~max_requests:3 () in
  let c = connect srv in
  send srv c (req ~seed:1 ~meth:Protocol.Cc ());
  ignore (check_trees_then_done ~g:test_graph ~k:1 (collect srv c ~n:2));
  send srv c (req ~seed:1 ~meth:Protocol.Sequential ());
  ignore (check_trees_then_done ~g:test_graph ~k:1 (collect srv c ~n:2));
  send srv c (req ~seed:1 ~meth:Protocol.Doubling ());
  ignore (check_trees_then_done ~g:test_graph ~k:1 (collect srv c ~n:2));
  (* Three requests served: the server drains itself. *)
  let steps = ref 0 in
  while Server.step srv && !steps < 200_000 do
    incr steps
  done;
  Alcotest.(check int) "served" 3 (Server.served srv);
  Alcotest.(check bool) "drained" false
    (Sys.file_exists (Server.sock_path srv));
  (* Distinct methods prepare distinct plans: all three were cold. *)
  let hits, misses, _ = Server.cache_stats srv in
  Alcotest.(check (pair int int)) "three method-keyed misses" (0, 3)
    (hits, misses);
  Unix.close c.fd

let () =
  Alcotest.run "cc_serve"
    [
      ( "plan_cache",
        [ Alcotest.test_case "lru semantics" `Quick test_cache_lru ] );
      ( "protocol",
        [ Alcotest.test_case "roundtrip" `Quick test_protocol_roundtrip ] );
      ( "server",
        [
          Alcotest.test_case "cold then warm" `Quick test_serve_cold_then_warm;
          Alcotest.test_case "concurrent clients" `Quick
            test_serve_concurrent_clients;
          Alcotest.test_case "malformed and torn lines" `Quick
            test_serve_malformed_and_torn_lines;
          Alcotest.test_case "stale socket cleanup" `Quick
            test_serve_stale_socket_cleanup;
          Alcotest.test_case "drain finishes active job" `Quick
            test_serve_drain_finishes_active_job;
          Alcotest.test_case "max requests + methods" `Quick
            test_serve_max_requests_and_methods;
        ] );
    ]
