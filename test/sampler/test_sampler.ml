(* Tests for Cc_sampler — the paper's main contribution (Theorem 2).

   Correctness is checked at three granularities:
   1. Phase_walk alone, against the sequential truncated walk (Lemma 2).
   2. The full multi-phase sampler's trees, against exact enumeration
      (Matrix-Tree) on several small graphs, in multiple configurations
      (matching resampling vs magical, exact vs powering Schur, exact vs
      fixed-point arithmetic).
   3. Structural invariants and round accounting on larger graphs. *)

module Graph = Cc_graph.Graph
module Gen = Cc_graph.Gen
module Tree = Cc_graph.Tree
module Walk = Cc_walks.Walk
module Net = Cc_clique.Net
module Fault = Cc_clique.Fault
module Matmul = Cc_clique.Matmul
module Prng = Cc_util.Prng
module Dist = Cc_util.Dist
module Stats = Cc_util.Stats
module Mat = Cc_linalg.Mat
module Sampler = Cc_sampler.Sampler
module Phase_walk = Cc_sampler.Phase_walk
module Sequential = Cc_sampler.Sequential

let default = Sampler.default_config

(* --- Phase_walk vs the sequential reference (Lemma 2) --- *)

let phase_walk_once ?(matching = Phase_walk.Resample { mcmc_steps = None }) g
    ~rho ~target_len prng =
  let n = Graph.n g in
  let net = Net.create ~n in
  let trans = Graph.transition_matrix g in
  fst
    (Phase_walk.run net prng ~backend:(Matmul.charged ()) ~trans
       ~machine_of:(fun i -> i)
       ~start:0 ~rho ~target_len ~matching ())

let test_phase_walk_is_valid_walk () =
  let g = Gen.complete 6 in
  let prng = Prng.create ~seed:1 in
  for _ = 1 to 20 do
    let w = phase_walk_once g ~rho:3 ~target_len:256 prng in
    for i = 1 to Array.length w - 1 do
      if not (Graph.has_edge g w.(i - 1) w.(i)) then
        Alcotest.failf "invalid step %d -> %d" w.(i - 1) w.(i)
    done;
    Alcotest.(check bool) "<= rho distinct" true (Walk.distinct_count w <= 3)
  done

let test_phase_walk_ends_at_fresh_vertex () =
  let g = Gen.complete 6 in
  let prng = Prng.create ~seed:2 in
  for _ = 1 to 30 do
    let w = phase_walk_once g ~rho:4 ~target_len:256 prng in
    if Walk.distinct_count w = 4 then begin
      let last = w.(Array.length w - 1) in
      let first = ref (-1) in
      Array.iteri (fun i v -> if !first < 0 && v = last then first := i) w;
      Alcotest.(check int) "last vertex is fresh" (Array.length w - 1) !first
    end
  done

(* Distribution cross-check: tau and the identity of the final vertex against
   the sequential Lemma 2 reference. *)
let test_phase_walk_tau_matches_sequential () =
  let g = Gen.cycle 6 in
  let rho = 3 and target_len = 256 and trials = 6000 in
  let histo f seed =
    let prng = Prng.create ~seed in
    let h = Hashtbl.create 64 in
    for _ = 1 to trials do
      let key = f prng in
      Hashtbl.replace h key (1 + Option.value ~default:0 (Hashtbl.find_opt h key))
    done;
    h
  in
  let tv h1 h2 =
    let keys =
      List.sort_uniq compare
        (Hashtbl.fold (fun k _ a -> k :: a) h1 []
        @ Hashtbl.fold (fun k _ a -> k :: a) h2 [])
    in
    0.5
    *. List.fold_left
         (fun acc k ->
           let c1 = float_of_int (Option.value ~default:0 (Hashtbl.find_opt h1 k)) in
           let c2 = float_of_int (Option.value ~default:0 (Hashtbl.find_opt h2 k)) in
           acc +. Float.abs ((c1 -. c2) /. float_of_int trials))
         0.0 keys
  in
  let distributed prng =
    let w = phase_walk_once g ~rho ~target_len prng in
    (Array.length w - 1, w.(Array.length w - 1))
  in
  let sequential prng =
    let w =
      Cc_walks.Topdown.sample_truncated g prng ~start:0 ~target_len ~rho ()
    in
    (Array.length w - 1, w.(Array.length w - 1))
  in
  let d = tv (histo distributed 3) (histo sequential 4) in
  Alcotest.(check bool) (Printf.sprintf "(tau, end) tv %.4f" d) true (d < 0.05)

let test_phase_walk_magical_equals_resampled_in_law () =
  (* Theorem 3: the multiset + matching placement has the same law as the
     magical assignment. Compare full-walk histograms on a tiny instance. *)
  let g = Gen.complete 4 in
  let rho = 3 and target_len = 64 and trials = 8000 in
  let histo matching seed =
    let prng = Prng.create ~seed in
    let h = Hashtbl.create 64 in
    for _ = 1 to trials do
      let w = phase_walk_once ~matching g ~rho ~target_len prng in
      let key = Array.to_list w in
      Hashtbl.replace h key (1 + Option.value ~default:0 (Hashtbl.find_opt h key))
    done;
    h
  in
  let h1 = histo (Phase_walk.Resample { mcmc_steps = None }) 5 in
  let h2 = histo Phase_walk.Magical 6 in
  let keys =
    List.sort_uniq compare
      (Hashtbl.fold (fun k _ a -> k :: a) h1 []
      @ Hashtbl.fold (fun k _ a -> k :: a) h2 [])
  in
  let tv =
    0.5
    *. List.fold_left
         (fun acc k ->
           let c1 = float_of_int (Option.value ~default:0 (Hashtbl.find_opt h1 k)) in
           let c2 = float_of_int (Option.value ~default:0 (Hashtbl.find_opt h2 k)) in
           acc +. Float.abs ((c1 -. c2) /. float_of_int trials))
         0.0 keys
  in
  (* Walk space is larger than tree space; allow a looser statistical bar. *)
  Alcotest.(check bool) (Printf.sprintf "walk tv %.4f" tv) true (tv < 0.1)

(* --- Full sampler: structural checks --- *)

let test_sampler_produces_spanning_trees () =
  let prng = Prng.create ~seed:7 in
  List.iter
    (fun g ->
      let n = Graph.n g in
      let net = Net.create ~n in
      for _ = 1 to 5 do
        let r = Sampler.sample net prng g in
        Alcotest.(check bool) "spanning tree" true
          (Tree.is_spanning_tree g r.Sampler.tree);
        Alcotest.(check bool) "rounds positive" true (r.Sampler.rounds > 0.0)
      done)
    [ Gen.complete 6; Gen.cycle 9; Gen.lollipop ~clique:4 ~tail:4;
      Gen.grid ~rows:3 ~cols:3; Gen.star 8 ]

let test_sampler_rejects_bad_input () =
  let g = Graph.of_unweighted_edges ~n:4 [ (0, 1); (2, 3) ] in
  let net = Net.create ~n:4 in
  let prng = Prng.create ~seed:8 in
  Alcotest.check_raises "disconnected"
    (Invalid_argument "Sampler.sample: graph must be connected") (fun () ->
      ignore (Sampler.sample net prng g));
  let net_wrong = Net.create ~n:5 in
  Alcotest.check_raises "size mismatch"
    (Invalid_argument "Sampler.sample: net size must equal n") (fun () ->
      ignore (Sampler.sample net_wrong prng (Gen.cycle 4)))

let test_sampler_phase_count_scales_with_rho () =
  let g = Gen.complete 16 in
  let net = Net.create ~n:16 in
  let prng = Prng.create ~seed:9 in
  let r = Sampler.sample net prng g in
  (* rho = 4, 15 vertices to visit: at least 4 phases. *)
  Alcotest.(check bool)
    (Printf.sprintf "phases %d in [4, 16]" r.Sampler.phases)
    true
    (r.Sampler.phases >= 4 && r.Sampler.phases <= 16)

let test_sampler_deterministic_given_seed () =
  let g = Gen.lollipop ~clique:4 ~tail:3 in
  let sample seed =
    let net = Net.create ~n:7 in
    (Sampler.sample net (Prng.create ~seed) g).Sampler.tree
  in
  Alcotest.(check bool) "same seed same tree" true
    (Tree.equal (sample 42) (sample 42));
  let differs = ref false in
  for seed = 0 to 9 do
    if not (Tree.equal (sample seed) (sample (seed + 100))) then differs := true
  done;
  Alcotest.(check bool) "different seeds eventually differ" true !differs

(* --- Prepared plans: the ccserve prepare/draw contract --- *)

let record_run ~n f =
  let net = Net.create ~n in
  let r = Cc_obs.Recorder.create ~machines:n () in
  ignore (Net.attach_recorder net r);
  let v = f net in
  (v, Cc_obs.Recorder.digest_hex r)

let test_plan_draw_matches_sample () =
  let g = Gen.build (Prng.create ~seed:1) Cc_graph.Gen.Complete ~n:8 in
  let n = Graph.n g in
  let seed = 11 in
  let r1, d1 =
    record_run ~n (fun net -> Sampler.sample net (Prng.create ~seed) g)
  in
  let plan = Sampler.prepare g in
  let r2, d2 =
    record_run ~n (fun net -> Sampler.draw plan net (Prng.create ~seed))
  in
  Alcotest.(check bool) "same tree" true
    (Tree.equal r1.Sampler.tree r2.Sampler.tree);
  Alcotest.(check string) "same digest" d1 d2;
  Alcotest.(check string) "fingerprint" (Graph.fingerprint g)
    (Sampler.plan_fingerprint plan)

let span_names roots =
  let rec go acc s =
    List.fold_left go (s.Cc_obs.Trace.name :: acc) s.Cc_obs.Trace.children
  in
  List.fold_left go [] roots

let test_plan_reuse_skips_compute () =
  let g = Gen.build (Prng.create ~seed:1) Cc_graph.Gen.Complete ~n:8 in
  let n = Graph.n g in
  let seed = 5 in
  let plan = Sampler.prepare g in
  let draw () =
    record_run ~n (fun net -> Sampler.draw plan net (Prng.create ~seed))
  in
  let r1, d1 = draw () in
  (* Warm draw: same seed hits the per-S memo, so the Schur/shortcut
     solves are skipped entirely — no schur.* / shortcut.* spans — while
     the booked event stream stays byte-identical. *)
  let tr = Cc_obs.Trace.create () in
  let r2, d2 = Cc_obs.Trace.with_trace tr draw in
  Alcotest.(check bool) "same tree" true
    (Tree.equal r1.Sampler.tree r2.Sampler.tree);
  Alcotest.(check string) "same digest" d1 d2;
  Alcotest.(check bool) "multi-phase run" true (r2.Sampler.phases > 1);
  let draws, hits, misses = Sampler.plan_stats plan in
  Alcotest.(check int) "draws" 2 draws;
  Alcotest.(check bool) "memo hits on the warm draw" true (hits >= misses);
  Alcotest.(check bool) "memo was exercised" true (misses > 0);
  let offenders =
    List.filter
      (fun name ->
        String.length name >= 5
        && (String.sub name 0 5 = "schur" || String.sub name 0 5 = "short"))
      (span_names (Cc_obs.Trace.roots tr))
  in
  Alcotest.(check (list string)) "no schur/shortcut spans when warm" []
    offenders

let test_plan_validation () =
  let disconnected = Graph.of_unweighted_edges ~n:4 [ (0, 1); (2, 3) ] in
  Alcotest.check_raises "prepare rejects disconnected"
    (Invalid_argument "Sampler.prepare: graph must be connected") (fun () ->
      ignore (Sampler.prepare disconnected));
  let g = Gen.lollipop ~clique:4 ~tail:3 in
  let plan = Sampler.prepare g in
  Alcotest.check_raises "draw rejects wrong net size"
    (Invalid_argument "Sampler.draw: net size must equal n") (fun () ->
      ignore (Sampler.draw plan (Net.create ~n:3) (Prng.create ~seed:0)))

let test_sequential_plan_matches_sample () =
  let g = Gen.build (Prng.create ~seed:2) Cc_graph.Gen.Complete ~n:8 in
  let seed = 3 in
  let r1 = Sequential.sample g (Prng.create ~seed) in
  let plan = Sequential.prepare g in
  let r2 = Sequential.draw plan (Prng.create ~seed) in
  let r3 = Sequential.draw plan (Prng.create ~seed) in
  Alcotest.(check bool) "plan tree = sample tree" true
    (Tree.equal r1.Sequential.tree r2.Sequential.tree);
  Alcotest.(check bool) "warm draw identical" true
    (Tree.equal r2.Sequential.tree r3.Sequential.tree);
  Alcotest.(check int) "same phase count" r1.Sequential.phases
    r2.Sequential.phases

(* --- Full sampler: distributional checks (E5 in miniature) --- *)

let sampler_tree_tv ?(config = default) g trials seed =
  let n = Graph.n g in
  let trees, lookup = Tree.index g in
  let target = Tree.weighted_distribution g trees in
  let counts = Array.make (Array.length trees) 0 in
  let net = Net.create ~n in
  let prng = Prng.create ~seed in
  for _ = 1 to trials do
    let r = Sampler.sample ~config net prng g in
    counts.(lookup r.Sampler.tree) <- counts.(lookup r.Sampler.tree) + 1
  done;
  (Dist.tv_counts ~counts target, Array.length trees)

let check_uniform ?(config = default) ?(slack = 0.01) g trials seed name =
  let tv, support = sampler_tree_tv ~config g trials seed in
  let floor = 3.0 *. Stats.tv_noise_floor ~samples:trials ~support +. slack in
  Alcotest.(check bool)
    (Printf.sprintf "%s: tv %.4f < %.4f" name tv floor)
    true (tv < floor)

let test_uniform_k4 () = check_uniform (Gen.complete 4) 16_000 10 "K4"

let test_uniform_cycle_chord () =
  let g = Graph.of_unweighted_edges ~n:4 [ (0, 1); (1, 2); (2, 3); (3, 0); (0, 2) ] in
  check_uniform g 16_000 11 "C4+chord"

let test_uniform_grid_2x3 () =
  check_uniform (Gen.grid ~rows:2 ~cols:3) 10_000 12 "grid 2x3"

let test_uniform_k4_magical () =
  check_uniform
    ~config:{ default with matching = Phase_walk.Magical }
    (Gen.complete 4) 16_000 13 "K4 magical"

let test_uniform_k4_powering_schur () =
  check_uniform
    ~config:{ default with schur = Sampler.Powering { k = None } }
    (Gen.complete 4) 8_000 14 "K4 powering"

let test_uniform_k4_fixed_point () =
  (* Section 3.5: with enough fractional bits the truncated-arithmetic
     sampler is statistically indistinguishable from the exact one. *)
  check_uniform
    ~config:{ default with bits = Some 40 }
    (Gen.complete 4) 8_000 15 "K4 40-bit"

let test_uniform_k4_nonlazy () =
  check_uniform
    ~config:{ default with lazy_walk = false }
    (Gen.complete 4) 8_000 16 "K4 non-lazy"

let test_uniform_weighted_triangle () =
  (* Footnote 1: integer weights; tree mass proportional to weight product. *)
  let g = Graph.of_edges ~n:3 [ (0, 1, 1.0); (1, 2, 2.0); (0, 2, 4.0) ] in
  check_uniform g 16_000 17 "weighted triangle"

let test_coarse_bits_degrade_gracefully () =
  (* With very few bits the sampler must still return valid spanning trees
     (the distribution may be off — that is the Lemma 3 trade-off). *)
  let g = Gen.complete 5 in
  let net = Net.create ~n:5 in
  let prng = Prng.create ~seed:18 in
  let config = { default with bits = Some 12 } in
  for _ = 1 to 20 do
    let r = Sampler.sample ~config net prng g in
    Alcotest.(check bool) "still a spanning tree" true
      (Tree.is_spanning_tree g r.Sampler.tree)
  done

let test_phase_walk_stats_sanity () =
  let g = Gen.complete 6 in
  let net = Net.create ~n:6 in
  let prng = Prng.create ~seed:60 in
  let trans = Graph.transition_matrix g in
  let _, stats =
    Phase_walk.run net prng ~backend:(Matmul.charged ()) ~trans
      ~machine_of:(fun i -> i)
      ~start:0 ~rho:3 ~target_len:256
      ~matching:(Phase_walk.Resample { mcmc_steps = None })
      ()
  in
  Alcotest.(check int) "levels = log2 256" 8 stats.Phase_walk.levels;
  Alcotest.(check bool) "binary search probed" true (stats.Phase_walk.checks > 0);
  Alcotest.(check bool) "placements recorded" true
    (stats.Phase_walk.matchings_exact + stats.Phase_walk.matchings_mcmc >= 0)

(* --- failure injection / argument validation --- *)

let test_phase_walk_argument_validation () =
  let net = Net.create ~n:4 in
  let prng = Prng.create ~seed:26 in
  let trans = Graph.transition_matrix (Gen.complete 4) in
  let run ?(rho = 2) ?(target_len = 8) ?(start = 0) () =
    ignore
      (Phase_walk.run net prng ~backend:(Matmul.charged ()) ~trans
         ~machine_of:(fun i -> i)
         ~start ~rho ~target_len
         ~matching:(Phase_walk.Resample { mcmc_steps = None })
         ())
  in
  Alcotest.check_raises "rho < 2" (Invalid_argument "Phase_walk.run: rho < 2")
    (fun () -> run ~rho:1 ());
  Alcotest.check_raises "target_len < 2"
    (Invalid_argument "Phase_walk.run: target_len < 2") (fun () ->
      run ~target_len:1 ());
  Alcotest.check_raises "bad start" (Invalid_argument "Phase_walk.run: bad start")
    (fun () -> run ~start:7 ())

let test_tiny_target_len_still_terminates () =
  (* A tiny per-phase target length forces many short phases; the sampler
     must still terminate with a valid tree (more phases, same law). *)
  let g = Gen.lollipop ~clique:5 ~tail:4 in
  let net = Net.create ~n:9 in
  let prng = Prng.create ~seed:27 in
  let config = { default with target_len = Some 8 } in
  let r = Sampler.sample ~config net prng g in
  Alcotest.(check bool) "valid" true (Tree.is_spanning_tree g r.Sampler.tree);
  Alcotest.(check bool) "more phases than default" true (r.Sampler.phases >= 3)

let test_max_phases_exhaustion_raises () =
  let g = Gen.lollipop ~clique:5 ~tail:4 in
  let net = Net.create ~n:9 in
  let prng = Prng.create ~seed:28 in
  let config = { default with target_len = Some 2; max_phases = 2 } in
  (match Sampler.sample ~config net prng g with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure _ -> ())

let test_weighted_marginals_match_leverage () =
  (* Footnote 1 end-to-end at a non-enumerable size: integer-weighted graph,
     CC sampler marginals vs exact (weighted) leverage scores. *)
  let prng = Prng.create ~seed:29 in
  let g0 = Gen.random_connected prng ~n:9 ~extra_edges:5 in
  let g = Gen.random_weights prng g0 ~max_weight:4 in
  let trials = 800 in
  let net = Net.create ~n:9 in
  let gap =
    Cc_walks.Determinantal.max_marginal_gap g ~trials (fun g ->
        (Sampler.sample net (Prng.split prng) g).Sampler.tree)
  in
  let tol = 4.0 *. Stats.binomial_confidence ~n:trials ~p:0.5 +. 0.015 in
  Alcotest.(check bool) (Printf.sprintf "weighted marginal gap %.4f" gap) true
    (gap < tol)

(* --- fault tolerance --- *)

let test_faulty_sampler_heals_drops () =
  let g = Gen.complete 6 in
  let f = Fault.create (Fault.spec ~drop_prob:0.1 ~seed:31 ()) in
  let net = Net.with_faults f (Net.create ~n:6) in
  let prng = Prng.create ~seed:31 in
  let healed = ref false in
  for _ = 1 to 5 do
    let r = Sampler.sample net prng g in
    Alcotest.(check bool) "spanning tree under drops" true
      (Tree.is_spanning_tree g r.Sampler.tree);
    match r.Sampler.health with
    | Fault.Healthy -> ()
    | Fault.Healed _ -> healed := true
    | Fault.Unrecoverable _ as h ->
        Alcotest.failf "drops alone degraded the sampler: %a" Fault.pp_health h
  done;
  Alcotest.(check bool) "at least one run actually healed" true !healed;
  let labels = List.map (fun (l, _, _, _) -> l) (Net.ledger net) in
  Alcotest.(check bool) "retry labels in ledger" true
    (List.exists (fun l -> Filename.check_suffix l ":retry") labels)

let test_faulty_sampler_heals_corruption () =
  let g = Gen.complete 6 in
  let f = Fault.create (Fault.spec ~corrupt_prob:0.05 ~seed:32 ()) in
  let net = Net.with_faults f (Net.create ~n:6) in
  let prng = Prng.create ~seed:32 in
  let r = Sampler.sample net prng g in
  Alcotest.(check bool) "spanning tree under corruption" true
    (Tree.is_spanning_tree g r.Sampler.tree);
  (match r.Sampler.health with
  | Fault.Healthy | Fault.Healed _ -> ()
  | Fault.Unrecoverable _ as h ->
      Alcotest.failf "corruption alone degraded the sampler: %a" Fault.pp_health h)

let test_crash_degrades_to_sequential () =
  let g = Gen.complete 8 in
  let f = Fault.create (Fault.spec ~crashes:[ (3, 1.0) ] ()) in
  let net = Net.with_faults f (Net.create ~n:8) in
  let prng = Prng.create ~seed:33 in
  (* Never an exception: a structured Unrecoverable plus a valid tree from
     the sequential fallback. *)
  let r = Sampler.sample net prng g in
  Alcotest.(check bool) "fallback tree is spanning" true
    (Tree.is_spanning_tree g r.Sampler.tree);
  (match r.Sampler.health with
  | Fault.Unrecoverable { crashed; _ } ->
      Alcotest.(check (list int)) "names the crash" [ 3 ] crashed
  | h -> Alcotest.failf "expected Unrecoverable, got %a" Fault.pp_health h);
  Alcotest.(check bool) "fallback metered as overhead" true
    (Net.overhead_rounds net > 0.0)

let test_faulty_sampler_deterministic () =
  let g = Gen.lollipop ~clique:4 ~tail:3 in
  let go () =
    let f = Fault.create (Fault.spec ~drop_prob:0.1 ~corrupt_prob:0.02 ~seed:7 ()) in
    let net = Net.with_faults f (Net.create ~n:7) in
    let r = Sampler.sample net (Prng.create ~seed:42) g in
    (Tree.edges r.Sampler.tree, r.Sampler.health, Net.ledger net,
     Net.retransmits net, Net.dropped net)
  in
  Alcotest.(check bool) "bit-identical tree, ledger, counters" true
    (go () = go ())

let test_faulty_uniform_k4 () =
  (* Acceptance bar: healing must not bias the tree law. Same tolerance as
     the fault-free uniformity checks. *)
  let g = Gen.complete 4 in
  let trees, lookup = Tree.index g in
  let counts = Array.make (Array.length trees) 0 in
  let f = Fault.create (Fault.spec ~drop_prob:0.1 ~corrupt_prob:0.01 ~seed:34 ()) in
  let net = Net.with_faults f (Net.create ~n:4) in
  let prng = Prng.create ~seed:34 in
  let trials = 4_000 in
  for _ = 1 to trials do
    let r = Sampler.sample net prng g in
    counts.(lookup r.Sampler.tree) <- counts.(lookup r.Sampler.tree) + 1
  done;
  let tv = Dist.tv_counts ~counts (Dist.uniform 16) in
  let floor = 3.0 *. Stats.tv_noise_floor ~samples:trials ~support:16 +. 0.01 in
  Alcotest.(check bool)
    (Printf.sprintf "faulty K4 tv %.4f < %.4f" tv floor)
    true (tv < floor)

(* --- Sequential phased sampler (Section 1.2) --- *)

let test_sequential_produces_spanning_trees () =
  let prng = Prng.create ~seed:21 in
  List.iter
    (fun g ->
      for _ = 1 to 10 do
        let r = Sequential.sample g prng in
        Alcotest.(check bool) "spanning tree" true
          (Tree.is_spanning_tree g r.Sequential.tree);
        Alcotest.(check bool) "phases >= 1" true (r.Sequential.phases >= 1)
      done)
    [ Gen.complete 8; Gen.lollipop ~clique:5 ~tail:5; Gen.grid ~rows:3 ~cols:4 ]

let test_sequential_uniform_k4 () =
  let g = Gen.complete 4 in
  let trees, lookup = Tree.index g in
  let counts = Array.make (Array.length trees) 0 in
  let prng = Prng.create ~seed:22 in
  let trials = 16_000 in
  for _ = 1 to trials do
    let t = Sequential.sample_tree g prng in
    counts.(lookup t) <- counts.(lookup t) + 1
  done;
  let tv = Dist.tv_counts ~counts (Dist.uniform 16) in
  let floor = 3.0 *. Stats.tv_noise_floor ~samples:trials ~support:16 +. 0.01 in
  Alcotest.(check bool) (Printf.sprintf "tv %.4f < %.4f" tv floor) true (tv < floor)

let test_sequential_uniform_cycle_chord () =
  let g = Graph.of_unweighted_edges ~n:4 [ (0, 1); (1, 2); (2, 3); (3, 0); (0, 2) ] in
  let trees, lookup = Tree.index g in
  let counts = Array.make (Array.length trees) 0 in
  let prng = Prng.create ~seed:23 in
  let trials = 16_000 in
  for _ = 1 to trials do
    let t = Sequential.sample_tree g prng in
    counts.(lookup t) <- counts.(lookup t) + 1
  done;
  let tv = Dist.tv_counts ~counts (Dist.uniform (Array.length trees)) in
  let floor =
    3.0 *. Stats.tv_noise_floor ~samples:trials ~support:(Array.length trees) +. 0.01
  in
  Alcotest.(check bool) (Printf.sprintf "tv %.4f < %.4f" tv floor) true (tv < floor)

let test_sequential_marginals_match_leverage () =
  (* Validate at a size where enumeration is infeasible: edge marginals
     against exact leverage scores. *)
  let prng = Prng.create ~seed:24 in
  let g = Gen.random_connected prng ~n:12 ~extra_edges:8 in
  let trials = 1500 in
  let gap =
    Cc_walks.Determinantal.max_marginal_gap g ~trials (fun g ->
        Sequential.sample_tree g (Prng.split prng))
  in
  let tol = 4.0 *. Stats.binomial_confidence ~n:trials ~p:0.5 +. 0.01 in
  Alcotest.(check bool) (Printf.sprintf "marginal gap %.4f" gap) true (gap < tol)

let test_distributed_marginals_match_leverage () =
  (* The same cross-validation for the full distributed sampler. *)
  let prng = Prng.create ~seed:25 in
  let g = Gen.random_connected prng ~n:10 ~extra_edges:6 in
  let trials = 800 in
  let net = Net.create ~n:10 in
  let gap =
    Cc_walks.Determinantal.max_marginal_gap g ~trials (fun g ->
        (Sampler.sample net (Prng.split prng) g).Sampler.tree)
  in
  let tol = 4.0 *. Stats.binomial_confidence ~n:trials ~p:0.5 +. 0.015 in
  Alcotest.(check bool) (Printf.sprintf "marginal gap %.4f" gap) true (gap < tol)

(* --- Round accounting --- *)

let test_rounds_scale_sublinearly_in_theory_mode () =
  (* Sanity check on shape (full sweep is bench E3): measured rounds per
     sqrt(n) phase stay near the n^alpha * polylog budget, i.e. the total is
     far below the naive step-by-step cover-time simulation ~ m*n. *)
  let prng = Prng.create ~seed:19 in
  let rounds_at n =
    let g = Gen.erdos_renyi_connected prng ~n
        ~p:(Float.min 1.0 (6.0 *. Float.log (float_of_int n) /. float_of_int n))
    in
    let net = Net.create ~n in
    let r = Sampler.sample net prng g in
    (r.Sampler.rounds, float_of_int (Graph.num_edges g * n))
  in
  (* The advantage needs n past the polylog constants; n=48 suffices. *)
  List.iter
    (fun n ->
      let rounds, naive = rounds_at n in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d: %.0f rounds << naive %.0f" n rounds naive)
        true
        (rounds < naive /. 2.0))
    [ 48; 64 ]

let test_ledger_has_expected_components () =
  let g = Gen.complete 12 in
  let net = Net.create ~n:12 in
  let prng = Prng.create ~seed:20 in
  ignore (Sampler.sample net prng g);
  let labels = List.map (fun (l, _, _, _) -> l) (Net.ledger net) in
  List.iter
    (fun expected ->
      Alcotest.(check bool) (expected ^ " booked") true (List.mem expected labels))
    [ "matmul"; "power-table transpose"; "binary-search check";
      "midpoint distributions"; "shortcut powering"; "first-visit edges" ]

(* --- qcheck --- *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"sampler returns spanning trees on random graphs"
      ~count:20
      (make Gen.(pair (int_range 4 12) (int_range 0 10_000)))
      (fun (n, seed) ->
        let prng = Prng.create ~seed in
        let g = Cc_graph.Gen.random_connected prng ~n ~extra_edges:n in
        let net = Net.create ~n in
        let r = Sampler.sample net prng g in
        Tree.is_spanning_tree g r.Sampler.tree);
    Test.make ~name:"phase walk has at most rho distinct vertices" ~count:20
      (make Gen.(pair (int_range 4 10) (int_range 0 10_000)))
      (fun (n, seed) ->
        let prng = Prng.create ~seed in
        let g = Cc_graph.Gen.random_connected prng ~n ~extra_edges:2 in
        let rho = max 2 (n / 2) in
        let w = phase_walk_once g ~rho ~target_len:512 prng in
        Walk.distinct_count w <= rho);
    Test.make ~name:"walk_total >= n - 1" ~count:20
      (make Gen.(pair (int_range 4 10) (int_range 0 10_000)))
      (fun (n, seed) ->
        let prng = Prng.create ~seed in
        let g = Cc_graph.Gen.random_connected prng ~n ~extra_edges:2 in
        let net = Net.create ~n in
        let r = Sampler.sample net prng g in
        r.Sampler.walk_total >= n - 1);
  ]

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest qcheck_tests in
  Alcotest.run "cc_sampler"
    [
      ( "phase_walk",
        [
          Alcotest.test_case "valid walk" `Quick test_phase_walk_is_valid_walk;
          Alcotest.test_case "ends fresh" `Quick test_phase_walk_ends_at_fresh_vertex;
          Alcotest.test_case "tau law vs sequential" `Slow test_phase_walk_tau_matches_sequential;
          Alcotest.test_case "magical = resampled" `Slow test_phase_walk_magical_equals_resampled_in_law;
        ] );
      ( "structure",
        [
          Alcotest.test_case "spanning trees" `Quick test_sampler_produces_spanning_trees;
          Alcotest.test_case "input validation" `Quick test_sampler_rejects_bad_input;
          Alcotest.test_case "phase count" `Quick test_sampler_phase_count_scales_with_rho;
          Alcotest.test_case "determinism" `Quick test_sampler_deterministic_given_seed;
          Alcotest.test_case "plan draw = sample" `Quick test_plan_draw_matches_sample;
          Alcotest.test_case "plan reuse skips compute" `Quick test_plan_reuse_skips_compute;
          Alcotest.test_case "plan validation" `Quick test_plan_validation;
          Alcotest.test_case "sequential plan" `Quick test_sequential_plan_matches_sample;
        ] );
      ( "distribution",
        [
          Alcotest.test_case "K4 uniform" `Slow test_uniform_k4;
          Alcotest.test_case "C4+chord uniform" `Slow test_uniform_cycle_chord;
          Alcotest.test_case "grid 2x3 uniform" `Slow test_uniform_grid_2x3;
          Alcotest.test_case "K4 magical" `Slow test_uniform_k4_magical;
          Alcotest.test_case "K4 powering Schur" `Slow test_uniform_k4_powering_schur;
          Alcotest.test_case "K4 fixed point" `Slow test_uniform_k4_fixed_point;
          Alcotest.test_case "K4 non-lazy" `Slow test_uniform_k4_nonlazy;
          Alcotest.test_case "weighted triangle" `Slow test_uniform_weighted_triangle;
          Alcotest.test_case "coarse bits valid" `Quick test_coarse_bits_degrade_gracefully;
        ] );
      ( "failure_injection",
        [
          Alcotest.test_case "phase walk validation" `Quick test_phase_walk_argument_validation;
          Alcotest.test_case "phase walk stats" `Quick test_phase_walk_stats_sanity;
          Alcotest.test_case "tiny target_len" `Quick test_tiny_target_len_still_terminates;
          Alcotest.test_case "max_phases raises" `Quick test_max_phases_exhaustion_raises;
          Alcotest.test_case "weighted marginals" `Slow test_weighted_marginals_match_leverage;
        ] );
      ( "faults",
        [
          Alcotest.test_case "heals drops" `Quick test_faulty_sampler_heals_drops;
          Alcotest.test_case "heals corruption" `Quick test_faulty_sampler_heals_corruption;
          Alcotest.test_case "crash degrades to sequential" `Quick test_crash_degrades_to_sequential;
          Alcotest.test_case "fault-seed determinism" `Quick test_faulty_sampler_deterministic;
          Alcotest.test_case "K4 uniform under faults" `Slow test_faulty_uniform_k4;
        ] );
      ( "sequential",
        [
          Alcotest.test_case "spanning trees" `Quick test_sequential_produces_spanning_trees;
          Alcotest.test_case "K4 uniform" `Slow test_sequential_uniform_k4;
          Alcotest.test_case "C4+chord uniform" `Slow test_sequential_uniform_cycle_chord;
          Alcotest.test_case "marginals vs leverage" `Slow test_sequential_marginals_match_leverage;
          Alcotest.test_case "distributed marginals" `Slow test_distributed_marginals_match_leverage;
        ] );
      ( "rounds",
        [
          Alcotest.test_case "sublinear vs naive" `Slow test_rounds_scale_sublinearly_in_theory_mode;
          Alcotest.test_case "ledger components" `Quick test_ledger_has_expected_components;
        ] );
      ("properties", qsuite);
    ]
