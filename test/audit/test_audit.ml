(* Statistical audit plane (lib/audit).

   The seeds and trial counts here are fixed, so every check is
   deterministic: the honest runs must pass their gates and the biased
   fixture must breach them on every machine. *)

module Graph = Cc_graph.Graph
module Gen = Cc_graph.Gen
module Tree = Cc_graph.Tree
module Prng = Cc_util.Prng
module Audit = Cc_audit.Audit

let check_float ?(eps = 1e-9) what expected got =
  Alcotest.(check (float eps)) what expected got

let feed ?(seed = 7) ~trials draw g =
  let aud = Audit.create g in
  let prng = Prng.create ~seed in
  for _ = 1 to trials do
    Audit.observe aud (draw g prng)
  done;
  aud

let gate aud name =
  match
    List.find_opt (fun g -> g.Audit.gate = name) (Audit.verdict aud).Audit.gates
  with
  | Some g -> g
  | None -> Alcotest.failf "gate %s missing from verdict" name

(* --- oracle --- *)

let test_oracle_k4 () =
  (* K4 is edge-transitive: every leverage score is (n-1)/m = 1/2. *)
  let aud = Audit.create (Gen.complete 4) in
  List.iter
    (fun e -> check_float ~eps:1e-7 "leverage" 0.5 e.Audit.leverage)
    (Audit.edge_stats aud);
  Alcotest.(check int) "six edges" 6 (List.length (Audit.edge_stats aud))

let test_oracle_sums_to_tree_size () =
  (* Foster: leverage scores sum to n-1 on any connected graph. *)
  List.iter
    (fun g ->
      let aud = Audit.create g in
      let sum =
        List.fold_left
          (fun acc e -> acc +. e.Audit.leverage)
          0.0 (Audit.edge_stats aud)
      in
      check_float ~eps:1e-6 "sum = n-1" (float_of_int (Graph.n g - 1)) sum)
    [ Gen.complete 5; Gen.cycle 6; Gen.grid ~rows:2 ~cols:3 ]

let test_bridges_on_path () =
  (* Every edge of a tree-shaped graph is a bridge: the bonferroni gate has
     nothing to test and must abstain while bridge-exact applies. *)
  let aud = feed ~trials:64 (fun g p -> Cc_walks.Wilson.sample_tree g p) (Gen.path 5) in
  List.iter
    (fun e -> Alcotest.(check bool) "bridge" true e.Audit.bridge)
    (Audit.edge_stats aud);
  Alcotest.(check bool) "bonferroni abstains" false (gate aud "bonferroni-z").Audit.applied;
  let b = gate aud "bridge-exact" in
  Alcotest.(check bool) "bridge-exact applied, ok" true
    (b.Audit.applied && not b.Audit.breached);
  Alcotest.(check bool) "verdict pass" true (Audit.verdict aud).Audit.pass

(* --- honest vs biased --- *)

let test_honest_wilson_passes () =
  let aud = feed ~trials:400 (fun g p -> Cc_walks.Wilson.sample_tree g p) (Gen.complete 4) in
  let v = Audit.verdict aud in
  Alcotest.(check bool) "pass" true v.Audit.pass;
  Alcotest.(check int) "trials" 400 v.Audit.at_trials;
  Alcotest.(check bool) "max z under threshold" true
    (Audit.max_z aud < Audit.z_threshold aud);
  Alcotest.(check int) "no invalid trees" 0 (Audit.invalid_trees aud)

let test_honest_sequential_passes () =
  let aud =
    feed ~trials:400 (fun g p -> Cc_sampler.Sequential.sample_tree g p) (Gen.cycle 6)
  in
  Alcotest.(check bool) "pass" true (Audit.verdict aud).Audit.pass

let test_biased_fixture_rejected () =
  let aud = feed ~trials:300 (fun g p -> Cc_walks.Wilson.sample_biased g p) (Gen.cycle 6) in
  let v = Audit.verdict aud in
  Alcotest.(check bool) "fail" false v.Audit.pass;
  let z = gate aud "bonferroni-z" in
  Alcotest.(check bool) "z gate breached" true (z.Audit.applied && z.Audit.breached);
  Alcotest.(check bool) "statistic clears threshold" true
    (z.Audit.statistic > z.Audit.threshold)

(* --- small-instance exact distribution --- *)

let test_small_distribution () =
  let aud = feed ~trials:500 (fun g p -> Cc_walks.Wilson.sample_tree g p) (Gen.complete 4) in
  (match Audit.small_tv aud with
  | None -> Alcotest.fail "K4 should be small enough to enumerate"
  | Some tv -> Alcotest.(check bool) "tv small" true (tv < 0.15));
  match Audit.small_kl aud with
  | None -> Alcotest.fail "small kl missing"
  | Some kl -> Alcotest.(check bool) "kl finite and small" true (kl >= 0.0 && kl < 0.2)

let test_small_skipped_on_large () =
  (* n > small_limit: the exact-distribution layer must switch itself off. *)
  let aud = Audit.create (Gen.cycle 12) in
  Alcotest.(check bool) "no small state" true (Audit.small_tv aud = None)

(* --- diagnostics --- *)

let test_features_star () =
  (* A star graph has exactly one spanning tree (itself): the max-degree
     histogram must be a point mass at n-1. *)
  let n = 6 in
  let aud = feed ~trials:20 (fun g p -> Cc_walks.Wilson.sample_tree g p) (Gen.star n) in
  let report =
    match Audit.of_jsonl (Audit.to_jsonl aud) with
    | Ok r -> r
    | Error e -> Alcotest.failf "roundtrip: %s" e
  in
  let feat name =
    match
      List.find_opt (fun f -> f.Audit.feature = name) report.Audit.r_features
    with
    | Some f -> f.Audit.histogram
    | None -> Alcotest.failf "feature %s missing" name
  in
  Alcotest.(check (list (pair int int))) "max degree" [ (n - 1, 20) ] (feat "max_degree");
  Alcotest.(check (list (pair int int))) "leaves" [ (n - 1, 20) ] (feat "leaf_count")

let test_ess_bounds () =
  let trials = 200 in
  let aud =
    feed ~trials (fun g p -> Cc_walks.Aldous_broder.sample_tree g p) (Gen.complete 5)
  in
  let ess = Audit.ess aud in
  Alcotest.(check bool) "1 <= ess <= trials" true
    (ess >= 1.0 && ess <= float_of_int trials)

(* --- sink and robustness --- *)

let test_sink_mismatch_skipped () =
  let g = Gen.complete 4 in
  let other = Gen.cycle 5 in
  (* Draw the trees before installing: the samplers themselves report
     through the sink, and this test wants to count its own calls only. *)
  let t = Cc_walks.Wilson.sample_tree other (Prng.create ~seed:3) in
  let t4 = Cc_walks.Wilson.sample_tree g (Prng.create ~seed:3) in
  let aud = Audit.create g in
  Audit.install aud;
  Fun.protect ~finally:Audit.uninstall (fun () ->
      Audit.observe_sink other t;
      Alcotest.(check int) "skipped" 1 (Audit.skipped aud);
      Alcotest.(check int) "no trials" 0 (Audit.trials aud);
      Audit.observe_sink g t4;
      Alcotest.(check int) "matching graph counted" 1 (Audit.trials aud));
  Alcotest.(check bool) "uninstalled" true (Audit.installed () = None)

let test_invalid_tree_breaches () =
  (* A star is not a subgraph of the path, so observing it must land in the
     invalid count and flip the valid-trees gate. *)
  let aud = Audit.create (Gen.path 4) in
  Audit.observe aud (Tree.of_edges ~n:4 [ (0, 1); (0, 2); (0, 3) ]);
  Alcotest.(check int) "invalid counted" 1 (Audit.invalid_trees aud);
  Alcotest.(check int) "not a trial" 0 (Audit.trials aud);
  let v = gate aud "valid-trees" in
  Alcotest.(check bool) "valid-trees breached" true
    (v.Audit.applied && v.Audit.breached);
  Alcotest.(check bool) "verdict fail" false (Audit.verdict aud).Audit.pass

let test_create_rejects_bad_input () =
  let disconnected = Graph.of_unweighted_edges ~n:4 [ (0, 1); (2, 3) ] in
  Alcotest.(check bool) "disconnected rejected" true
    (match Audit.create disconnected with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "alpha out of range rejected" true
    (match Audit.create ~alpha:1.5 (Gen.complete 4) with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- artifact --- *)

let test_artifact_roundtrip () =
  let g = Gen.complete 4 in
  let aud = feed ~trials:256 (fun g p -> Cc_walks.Wilson.sample_tree g p) g in
  match Audit.of_jsonl (Audit.to_jsonl aud) with
  | Error e -> Alcotest.failf "roundtrip: %s" e
  | Ok r ->
      Alcotest.(check int) "n" 4 r.Audit.r_n;
      Alcotest.(check int) "m" 6 r.Audit.r_m;
      Alcotest.(check int) "trials" 256 r.Audit.r_trials;
      Alcotest.(check int) "edges" 6 (List.length r.Audit.r_edges);
      Alcotest.(check bool) "snapshots at powers of two" true
        (List.exists (fun s -> s.Audit.at = 256) r.Audit.r_snapshots);
      (match r.Audit.r_verdict with
      | None -> Alcotest.fail "verdict line missing"
      | Some v ->
          Alcotest.(check bool) "verdict agrees" (Audit.verdict aud).Audit.pass
            v.Audit.pass);
      (match r.Audit.r_small with
      | None -> Alcotest.fail "small line missing on K4"
      | Some s -> Alcotest.(check int) "support" 16 s.Audit.support)

let test_artifact_rejects_garbage () =
  (match Audit.of_jsonl "not json at all" with
  | Ok _ -> Alcotest.fail "garbage accepted"
  | Error _ -> ());
  match Audit.of_jsonl "{\"type\":\"edge\"}\n" with
  | Ok _ -> Alcotest.fail "missing header accepted"
  | Error _ -> ()

(* --- zero perturbation --- *)

let test_zero_perturbation_digest () =
  (* The full distributed sampler, same seed, with and without an installed
     auditor: the recorder digest and the sampled tree must be identical —
     observation draws no randomness and books no rounds. *)
  let g = Gen.lollipop ~clique:5 ~tail:3 in
  let run ~audited =
    let net = Cc_clique.Net.create ~n:(Graph.n g) in
    let rec_ = Cc_obs.Recorder.create ~machines:(Graph.n g) () in
    ignore (Cc_clique.Net.attach_recorder net rec_);
    let prng = Prng.create ~seed:41 in
    let aud = if audited then Some (Audit.create g) else None in
    Option.iter Audit.install aud;
    Fun.protect ~finally:Audit.uninstall (fun () ->
        let r = Cc_sampler.Sampler.sample net prng g in
        (Cc_obs.Recorder.digest_hex rec_, r.Cc_sampler.Sampler.tree, aud))
  in
  let d0, t0, _ = run ~audited:false in
  let d1, t1, aud = run ~audited:true in
  Alcotest.(check string) "digest identical" d0 d1;
  Alcotest.(check bool) "tree identical" true (Tree.equal t0 t1);
  match aud with
  | None -> Alcotest.fail "auditor missing"
  | Some aud -> Alcotest.(check int) "auditor saw the tree" 1 (Audit.trials aud)

let () =
  Alcotest.run "cc_audit"
    [
      ( "oracle",
        [
          Alcotest.test_case "K4 leverage" `Quick test_oracle_k4;
          Alcotest.test_case "Foster sum" `Quick test_oracle_sums_to_tree_size;
          Alcotest.test_case "bridges on path" `Quick test_bridges_on_path;
        ] );
      ( "gates",
        [
          Alcotest.test_case "honest Wilson passes" `Quick test_honest_wilson_passes;
          Alcotest.test_case "honest Sequential passes" `Quick
            test_honest_sequential_passes;
          Alcotest.test_case "biased fixture rejected" `Quick
            test_biased_fixture_rejected;
          Alcotest.test_case "invalid tree breaches" `Quick test_invalid_tree_breaches;
        ] );
      ( "small",
        [
          Alcotest.test_case "exact distribution" `Quick test_small_distribution;
          Alcotest.test_case "switched off when large" `Quick
            test_small_skipped_on_large;
        ] );
      ( "diagnostics",
        [
          Alcotest.test_case "star features" `Quick test_features_star;
          Alcotest.test_case "ess bounds" `Quick test_ess_bounds;
        ] );
      ( "sink",
        [
          Alcotest.test_case "mismatch skipped" `Quick test_sink_mismatch_skipped;
          Alcotest.test_case "rejects bad input" `Quick test_create_rejects_bad_input;
          Alcotest.test_case "zero perturbation" `Quick test_zero_perturbation_digest;
        ] );
      ( "artifact",
        [
          Alcotest.test_case "roundtrip" `Quick test_artifact_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_artifact_rejects_garbage;
        ] );
    ]
