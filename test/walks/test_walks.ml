(* Tests for Cc_walks: walk primitives, Aldous-Broder, Wilson, and the
   sequential top-down filling algorithms (Lemmas 1-2). The statistical tests
   compare empirical distributions against exact ground truth (matrix powers,
   Matrix-Tree enumeration). *)

module Graph = Cc_graph.Graph
module Gen = Cc_graph.Gen
module Tree = Cc_graph.Tree
module Walk = Cc_walks.Walk
module Aldous_broder = Cc_walks.Aldous_broder
module Wilson = Cc_walks.Wilson
module Topdown = Cc_walks.Topdown
module Updown = Cc_walks.Updown
module Determinantal = Cc_walks.Determinantal
module Prng = Cc_util.Prng
module Dist = Cc_util.Dist
module Stats = Cc_util.Stats
module Mat = Cc_linalg.Mat

(* --- walk primitives --- *)

let test_walk_follows_edges () =
  let prng = Prng.create ~seed:1 in
  let g = Gen.cycle 8 in
  let w = Walk.walk g prng ~start:0 ~len:100 in
  Alcotest.(check int) "length" 101 (Array.length w);
  Alcotest.(check int) "start" 0 w.(0);
  for i = 1 to 100 do
    if not (Graph.has_edge g w.(i - 1) w.(i)) then
      Alcotest.failf "step %d not an edge: %d -> %d" i w.(i - 1) w.(i)
  done

let test_step_distribution_weighted () =
  (* Vertex 0 has neighbors 1 (weight 1) and 2 (weight 3). *)
  let g = Graph.of_edges ~n:3 [ (0, 1, 1.0); (0, 2, 3.0) ] in
  let prng = Prng.create ~seed:2 in
  let counts = Array.make 3 0 in
  let trials = 40_000 in
  for _ = 1 to trials do
    let v = Walk.step g prng 0 in
    counts.(v) <- counts.(v) + 1
  done;
  let expected = Dist.of_weights [| 0.0; 1.0; 3.0 |] in
  let tv = Dist.tv_counts ~counts expected in
  Alcotest.(check bool) (Printf.sprintf "tv %.4f" tv) true (tv < 0.01)

let test_first_visit_edges () =
  let w = [| 0; 1; 0; 2; 1; 3 |] in
  Alcotest.(check (list (pair int int)))
    "edges" [ (0, 1); (0, 2); (1, 3) ]
    (Walk.first_visit_edges w)

let test_distinct_count () =
  Alcotest.(check int) "distinct" 3 (Walk.distinct_count [| 5; 5; 2; 9; 2 |])

let test_truncate_at_distinct () =
  let w = [| 0; 1; 0; 2; 1; 3; 4 |] in
  Alcotest.(check bool) "rho=3" true (Walk.truncate_at_distinct w ~rho:3 = [| 0; 1; 0; 2 |]);
  Alcotest.(check bool) "rho=1" true (Walk.truncate_at_distinct w ~rho:1 = [| 0 |]);
  Alcotest.(check bool) "rho too big" true (Walk.truncate_at_distinct w ~rho:10 == w)

let test_cover_time_path_scaling () =
  (* Path cover time is Theta(n^2); check monotone growth and rough order. *)
  let prng = Prng.create ~seed:3 in
  let mean n = Walk.mean_cover_time (Gen.path n) prng ~trials:100 in
  let c8 = mean 8 and c16 = mean 16 in
  Alcotest.(check bool)
    (Printf.sprintf "c8=%.0f c16=%.0f quadratic-ish" c8 c16)
    true
    (c16 /. c8 > 2.5 && c16 /. c8 < 6.5)

let test_time_to_distinct () =
  let prng = Prng.create ~seed:4 in
  let g = Gen.path 16 in
  Alcotest.(check int) "rho=1 is free" 0 (Walk.time_to_distinct g prng ~start:0 ~rho:1);
  let t = Walk.time_to_distinct g prng ~start:0 ~rho:4 in
  Alcotest.(check bool) "at least rho-1 steps" true (t >= 3)

let test_stationary_distribution () =
  let g = Gen.star 5 in
  let pi = Walk.stationary g in
  (* Star: center degree 4, leaves degree 1, total weight 2m = 8. *)
  Alcotest.(check (float 1e-9)) "center" 0.5 (Dist.prob pi 0);
  Alcotest.(check (float 1e-9)) "leaf" 0.125 (Dist.prob pi 1)

let test_endpoint_distribution_matches_empirical () =
  let prng = Prng.create ~seed:5 in
  let g = Gen.cycle 6 in
  let len = 5 in
  let exact = Walk.endpoint_distribution g ~start:0 ~len in
  let counts = Array.make 6 0 in
  let trials = 30_000 in
  for _ = 1 to trials do
    let w = Walk.walk g prng ~start:0 ~len in
    counts.(w.(len)) <- counts.(w.(len)) + 1
  done;
  let tv = Dist.tv_counts ~counts exact in
  Alcotest.(check bool) (Printf.sprintf "tv %.4f" tv) true (tv < 0.015)

(* --- exact tree samplers vs Matrix-Tree --- *)

let tree_sampler_tv g sampler trials seed =
  let trees, lookup = Tree.index g in
  let target = Tree.weighted_distribution g trees in
  let counts = Array.make (Array.length trees) 0 in
  let prng = Prng.create ~seed in
  for _ = 1 to trials do
    let t = sampler g prng in
    let i = lookup t in
    counts.(i) <- counts.(i) + 1
  done;
  (Dist.tv_counts ~counts target, Array.length trees)

let test_aldous_broder_uniform_k4 () =
  let g = Gen.complete 4 in
  let trials = 32_000 in
  let tv, support = tree_sampler_tv g Aldous_broder.sample_tree trials 6 in
  let floor = 3.0 *. Stats.tv_noise_floor ~samples:trials ~support in
  Alcotest.(check bool)
    (Printf.sprintf "tv %.4f < %.4f" tv floor)
    true (tv < floor)

let test_aldous_broder_uniform_cycle_chord () =
  let g = Graph.of_unweighted_edges ~n:4 [ (0, 1); (1, 2); (2, 3); (3, 0); (0, 2) ] in
  let trials = 32_000 in
  let tv, support = tree_sampler_tv g Aldous_broder.sample_tree trials 7 in
  let floor = 3.0 *. Stats.tv_noise_floor ~samples:trials ~support in
  Alcotest.(check bool) (Printf.sprintf "tv %.4f < %.4f" tv floor) true (tv < floor)

let test_wilson_uniform_k4 () =
  let g = Gen.complete 4 in
  let trials = 32_000 in
  let tv, support = tree_sampler_tv g Wilson.sample_tree trials 8 in
  let floor = 3.0 *. Stats.tv_noise_floor ~samples:trials ~support in
  Alcotest.(check bool) (Printf.sprintf "tv %.4f < %.4f" tv floor) true (tv < floor)

let test_wilson_weighted () =
  (* Weighted triangle: trees = pairs of edges, P(tree) prop to w1*w2. *)
  let g = Graph.of_edges ~n:3 [ (0, 1, 1.0); (1, 2, 2.0); (0, 2, 4.0) ] in
  let trials = 32_000 in
  let tv, support = tree_sampler_tv g Wilson.sample_tree trials 9 in
  let floor = 3.0 *. Stats.tv_noise_floor ~samples:trials ~support +. 0.01 in
  Alcotest.(check bool) (Printf.sprintf "tv %.4f < %.4f" tv floor) true (tv < floor)

let test_aldous_broder_weighted () =
  let g = Graph.of_edges ~n:3 [ (0, 1, 1.0); (1, 2, 2.0); (0, 2, 4.0) ] in
  let trials = 32_000 in
  let tv, support = tree_sampler_tv g Aldous_broder.sample_tree trials 10 in
  let floor = 3.0 *. Stats.tv_noise_floor ~samples:trials ~support +. 0.01 in
  Alcotest.(check bool) (Printf.sprintf "tv %.4f < %.4f" tv floor) true (tv < floor)

let test_samplers_always_valid () =
  let prng = Prng.create ~seed:11 in
  let g = Gen.lollipop ~clique:4 ~tail:3 in
  for _ = 1 to 50 do
    let t1 = Aldous_broder.sample_tree g prng in
    let t2 = Wilson.sample_tree g prng in
    Alcotest.(check bool) "AB valid" true (Tree.is_spanning_tree g t1);
    Alcotest.(check bool) "Wilson valid" true (Tree.is_spanning_tree g t2)
  done

(* --- top-down filling (Lemmas 1-2) --- *)

let test_topdown_is_valid_walk () =
  let prng = Prng.create ~seed:12 in
  let g = Gen.cycle 9 in
  let w = Topdown.sample_walk g prng ~start:0 ~len:64 in
  Alcotest.(check int) "length" 65 (Array.length w);
  Alcotest.(check int) "start" 0 w.(0);
  for i = 1 to 64 do
    if not (Graph.has_edge g w.(i - 1) w.(i)) then
      Alcotest.failf "position %d: %d -> %d not an edge" i w.(i - 1) w.(i)
  done

let test_topdown_endpoint_distribution () =
  (* Lemma 1: the top-down walk must have exactly the P^len endpoint law. *)
  let prng = Prng.create ~seed:13 in
  let g = Gen.complete 5 in
  let len = 8 in
  let exact = Walk.endpoint_distribution g ~start:0 ~len in
  let counts = Array.make 5 0 in
  let trials = 30_000 in
  for _ = 1 to trials do
    let w = Topdown.sample_walk g prng ~start:0 ~len in
    counts.(w.(len)) <- counts.(w.(len)) + 1
  done;
  let tv = Dist.tv_counts ~counts exact in
  Alcotest.(check bool) (Printf.sprintf "endpoint tv %.4f" tv) true (tv < 0.015)

let test_topdown_midpoint_distribution () =
  (* The interior marginal must match P^k[start,*] too (chain rule check at
     position len/2). *)
  let prng = Prng.create ~seed:14 in
  let g = Gen.cycle 7 in
  let len = 16 in
  let exact = Walk.endpoint_distribution g ~start:0 ~len:(len / 2) in
  let counts = Array.make 7 0 in
  let trials = 30_000 in
  for _ = 1 to trials do
    let w = Topdown.sample_walk g prng ~start:0 ~len in
    counts.(w.(len / 2)) <- counts.(w.(len / 2)) + 1
  done;
  let tv = Dist.tv_counts ~counts exact in
  Alcotest.(check bool) (Printf.sprintf "midpoint tv %.4f" tv) true (tv < 0.015)

let test_topdown_transition_frequencies () =
  (* Every consecutive pair in the filled walk is a single P-step; pooled
     transition frequencies from a fixed vertex must match P's row. *)
  let prng = Prng.create ~seed:15 in
  let g = Graph.of_unweighted_edges ~n:4 [ (0, 1); (1, 2); (2, 3); (3, 0); (0, 2) ] in
  let p = Graph.transition_matrix g in
  let counts = Array.make 4 0 in
  let trials = 4000 in
  for _ = 1 to trials do
    let w = Topdown.sample_walk g prng ~start:0 ~len:16 in
    for i = 0 to 15 do
      if w.(i) = 0 then counts.(w.(i + 1)) <- counts.(w.(i + 1)) + 1
    done
  done;
  let tv = Dist.tv_counts ~counts (Dist.of_weights (Mat.row p 0)) in
  Alcotest.(check bool) (Printf.sprintf "transition tv %.4f" tv) true (tv < 0.02)

let test_truncated_ends_at_rho_distinct () =
  let prng = Prng.create ~seed:16 in
  let g = Gen.path 20 in
  for _ = 1 to 30 do
    let w = Topdown.sample_truncated g prng ~start:0 ~target_len:1024 ~rho:5 () in
    let d = Walk.distinct_count w in
    Alcotest.(check bool) "at most rho distinct" true (d <= 5);
    if d = 5 then begin
      (* The final vertex must be the 5th distinct one: appears exactly once
         at the end... more precisely its first occurrence is the last index. *)
      let last = w.(Array.length w - 1) in
      let first_occurrence = ref (-1) in
      Array.iteri (fun i v -> if !first_occurrence < 0 && v = last then first_occurrence := i) w;
      Alcotest.(check int) "last is fresh" (Array.length w - 1) !first_occurrence
    end
  done

let test_truncated_walk_is_valid () =
  let prng = Prng.create ~seed:17 in
  let g = Gen.lollipop ~clique:5 ~tail:5 in
  for _ = 1 to 20 do
    let w = Topdown.sample_truncated g prng ~start:0 ~target_len:4096 ~rho:4 () in
    for i = 1 to Array.length w - 1 do
      if not (Graph.has_edge g w.(i - 1) w.(i)) then
        Alcotest.failf "invalid transition %d -> %d" w.(i - 1) w.(i)
    done
  done

let test_truncated_tau_distribution () =
  (* Lemma 2: the truncated top-down walk has the same law as a direct walk
     stopped at the rho-th distinct vertex. Compare tau's distribution. *)
  let g = Gen.cycle 6 in
  let rho = 3 in
  let trials = 8000 in
  let sample_tau_direct prng =
    Walk.time_to_distinct g prng ~start:0 ~rho
  in
  let sample_tau_topdown prng =
    Array.length (Topdown.sample_truncated g prng ~start:0 ~target_len:256 ~rho ()) - 1
  in
  let histo f seed =
    let prng = Prng.create ~seed in
    let counts = Hashtbl.create 32 in
    for _ = 1 to trials do
      let t = f prng in
      Hashtbl.replace counts t (1 + Option.value ~default:0 (Hashtbl.find_opt counts t))
    done;
    counts
  in
  let h1 = histo sample_tau_direct 18 and h2 = histo sample_tau_topdown 19 in
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) h1 [] in
  let keys =
    List.sort_uniq compare (keys @ Hashtbl.fold (fun k _ acc -> k :: acc) h2 [])
  in
  let tv =
    0.5
    *. List.fold_left
         (fun acc k ->
           let c1 = float_of_int (Option.value ~default:0 (Hashtbl.find_opt h1 k)) in
           let c2 = float_of_int (Option.value ~default:0 (Hashtbl.find_opt h2 k)) in
           acc +. Float.abs ((c1 /. float_of_int trials) -. (c2 /. float_of_int trials)))
         0.0 keys
  in
  Alcotest.(check bool) (Printf.sprintf "tau tv %.4f" tv) true (tv < 0.05)

let test_topdown_first_visit_tree_uniform () =
  (* End-to-end phase-1 style check: top-down walk truncated at rho = n gives
     first-visit-edge trees that are uniform (this is Aldous-Broder driven by
     the Lemma 2 walk). *)
  let g = Gen.complete 4 in
  let trials = 12_000 in
  let sampler g prng =
    let w = Topdown.sample_truncated g prng ~start:0 ~target_len:4096 ~rho:4 () in
    Tree.of_edges ~n:4 (Walk.first_visit_edges w)
  in
  let tv, support = tree_sampler_tv g sampler trials 20 in
  let floor = 3.0 *. Stats.tv_noise_floor ~samples:trials ~support +. 0.01 in
  Alcotest.(check bool) (Printf.sprintf "tree tv %.4f < %.4f" tv floor) true (tv < floor)

let test_midpoint_weights_formula () =
  let g = Gen.cycle 5 in
  let p = Graph.transition_matrix g in
  let powers = Mat.power_table p ~max_exp:3 in
  let w = Topdown.midpoint_weights powers ~gap_exp:2 ~a:0 ~b:1 in
  Array.iteri
    (fun v expected ->
      Alcotest.(check (float 1e-12))
        "formula 1" expected
        (Mat.get powers.(1) 0 v *. Mat.get powers.(1) v 1))
    (Array.init 5 (fun v -> w.(v)))

(* --- hitting times --- *)

let test_hitting_path_endpoints () =
  (* Path 0..n-1: H(0, n-1) = (n-1)^2. *)
  let n = 6 in
  let g = Gen.path n in
  let h = Cc_walks.Hitting.to_target g (n - 1) in
  Alcotest.(check (float 1e-7)) "H(0,end)" (float_of_int ((n - 1) * (n - 1))) h.(0);
  Alcotest.(check (float 1e-7)) "H(end,end)" 0.0 h.(n - 1)

let test_hitting_complete_graph () =
  (* K_n: H(u,v) = n - 1 for u <> v. *)
  let n = 7 in
  let h = Cc_walks.Hitting.matrix (Gen.complete n) in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      let expected = if u = v then 0.0 else float_of_int (n - 1) in
      Alcotest.(check (float 1e-7)) "K7 hitting" expected (Mat.get h u v)
    done
  done

let test_commute_time_identity () =
  (* Chandra et al.: commute(u,v) = 2 W R_eff(u,v). *)
  let prng = Prng.create ~seed:50 in
  let g = Gen.random_connected prng ~n:9 ~extra_edges:6 in
  let total = Graph.total_weight g in
  List.iter
    (fun (u, v, _) ->
      let expected = 2.0 *. total *. Graph.effective_resistance g u v in
      Alcotest.(check (float 1e-6)) "commute identity" expected
        (Cc_walks.Hitting.commute g u v))
    (Graph.edges g)

let test_hitting_empirical () =
  let prng = Prng.create ~seed:51 in
  let g = Gen.lollipop ~clique:4 ~tail:2 in
  let target = 5 in
  let exact = (Cc_walks.Hitting.to_target g target).(0) in
  let trials = 4000 in
  let acc = ref 0 in
  for _ = 1 to trials do
    let c = ref 0 and steps = ref 0 in
    while !c <> target do
      c := Walk.step g prng !c;
      incr steps
    done;
    acc := !acc + !steps
  done;
  let mean = float_of_int !acc /. float_of_int trials in
  Alcotest.(check bool)
    (Printf.sprintf "empirical %.1f vs exact %.1f" mean exact)
    true
    (Float.abs (mean -. exact) /. exact < 0.1)

let test_mean_hitting_positive () =
  let g = Gen.cycle 6 in
  let m = Cc_walks.Hitting.mean_hitting_time g in
  Alcotest.(check bool) "positive" true (m > 0.0)

(* --- up-down walk (the paper's future-work MCMC route) --- *)

let test_updown_step_preserves_treeness () =
  let prng = Prng.create ~seed:30 in
  let g = Gen.lollipop ~clique:4 ~tail:3 in
  let t = ref (Updown.bfs_tree g) in
  for _ = 1 to 200 do
    t := Updown.step g prng !t;
    if not (Tree.is_spanning_tree g !t) then Alcotest.fail "lost treeness"
  done

let test_updown_uniform_k4 () =
  let g = Gen.complete 4 in
  let trials = 20_000 in
  let sampler g prng = Updown.sample g prng ~steps:40 ~init:(Updown.bfs_tree g) in
  let tv, support = tree_sampler_tv g sampler trials 31 in
  let floor = 3.0 *. Stats.tv_noise_floor ~samples:trials ~support +. 0.01 in
  Alcotest.(check bool) (Printf.sprintf "tv %.4f < %.4f" tv floor) true (tv < floor)

let test_updown_weighted_triangle () =
  let g = Graph.of_edges ~n:3 [ (0, 1, 1.0); (1, 2, 2.0); (0, 2, 4.0) ] in
  let trials = 20_000 in
  let sampler g prng = Updown.sample g prng ~steps:30 ~init:(Updown.bfs_tree g) in
  let tv, support = tree_sampler_tv g sampler trials 32 in
  let floor = 3.0 *. Stats.tv_noise_floor ~samples:trials ~support +. 0.015 in
  Alcotest.(check bool) (Printf.sprintf "tv %.4f < %.4f" tv floor) true (tv < floor)

let test_updown_default_budget () =
  let g = Gen.cycle 8 in
  Alcotest.(check bool) "budget >= 4m" true
    (Updown.default_steps g >= 4 * Graph.num_edges g)

let test_bfs_tree_is_spanning () =
  let prng = Prng.create ~seed:33 in
  for _ = 1 to 20 do
    let g = Gen.random_connected prng ~n:12 ~extra_edges:6 in
    Alcotest.(check bool) "bfs tree valid" true
      (Tree.is_spanning_tree g (Updown.bfs_tree g))
  done

(* --- determinantal sampler --- *)

let test_leverage_known_values () =
  (* Triangle: every edge has leverage 2/3 (R_eff = 2/3 for unit weights). *)
  let g = Gen.cycle 3 in
  List.iter
    (fun (u, v, _) ->
      Alcotest.(check (float 1e-9)) "triangle leverage" (2.0 /. 3.0)
        (Determinantal.leverage g u v))
    (Graph.edges g);
  (* Tree edges (bridges) have leverage exactly 1. *)
  let p = Gen.path 5 in
  List.iter
    (fun (u, v, _) ->
      Alcotest.(check (float 1e-9)) "bridge leverage" 1.0
        (Determinantal.leverage p u v))
    (Graph.edges p)

let test_fosters_theorem () =
  (* Sum of leverages = n - 1 on any connected graph. *)
  let prng = Prng.create ~seed:34 in
  for _ = 1 to 10 do
    let g = Gen.random_connected prng ~n:10 ~extra_edges:8 in
    let total = List.fold_left (fun acc (_, l) -> acc +. l) 0.0 (Determinantal.marginals g) in
    Alcotest.(check (float 1e-6)) "Foster" (float_of_int (Graph.n g - 1)) total
  done

let test_determinantal_always_tree () =
  let prng = Prng.create ~seed:35 in
  for _ = 1 to 30 do
    let g = Gen.random_connected prng ~n:9 ~extra_edges:5 in
    Alcotest.(check bool) "valid tree" true
      (Tree.is_spanning_tree g (Determinantal.sample_tree g prng))
  done

let test_determinantal_uniform_k4 () =
  let g = Gen.complete 4 in
  let trials = 20_000 in
  let tv, support = tree_sampler_tv g Determinantal.sample_tree trials 36 in
  let floor = 3.0 *. Stats.tv_noise_floor ~samples:trials ~support +. 0.01 in
  Alcotest.(check bool) (Printf.sprintf "tv %.4f < %.4f" tv floor) true (tv < floor)

let test_determinantal_weighted () =
  let g = Graph.of_edges ~n:3 [ (0, 1, 1.0); (1, 2, 2.0); (0, 2, 4.0) ] in
  let trials = 20_000 in
  let tv, support = tree_sampler_tv g Determinantal.sample_tree trials 37 in
  let floor = 3.0 *. Stats.tv_noise_floor ~samples:trials ~support +. 0.015 in
  Alcotest.(check bool) (Printf.sprintf "tv %.4f < %.4f" tv floor) true (tv < floor)

let test_marginal_cross_validation () =
  (* At n = 12 the tree space is astronomically large; validate AB and Wilson
     against the exact leverage scores via edge marginals instead. *)
  let prng = Prng.create ~seed:38 in
  let g = Gen.random_connected prng ~n:12 ~extra_edges:10 in
  let trials = 4000 in
  let gap_ab =
    Determinantal.max_marginal_gap g ~trials (fun g ->
        Aldous_broder.sample_tree g (Prng.split prng))
  in
  let gap_wilson =
    Determinantal.max_marginal_gap g ~trials (fun g ->
        Wilson.sample_tree g (Prng.split prng))
  in
  let tol = 4.0 *. Stats.binomial_confidence ~n:trials ~p:0.5 +. 0.01 in
  Alcotest.(check bool) (Printf.sprintf "AB gap %.4f" gap_ab) true (gap_ab < tol);
  Alcotest.(check bool) (Printf.sprintf "Wilson gap %.4f" gap_wilson) true
    (gap_wilson < tol)

(* --- qcheck --- *)

let qcheck_tests =
  let open QCheck in
  let params = make Gen.(pair (int_range 4 10) (int_range 0 10_000)) in
  [
    Test.make ~name:"AB trees are spanning trees" ~count:50 params
      (fun (n, seed) ->
        let prng = Prng.create ~seed in
        let g = Cc_graph.Gen.random_connected prng ~n ~extra_edges:3 in
        Tree.is_spanning_tree g (Aldous_broder.sample_tree g prng));
    Test.make ~name:"Wilson trees are spanning trees" ~count:50 params
      (fun (n, seed) ->
        let prng = Prng.create ~seed in
        let g = Cc_graph.Gen.random_connected prng ~n ~extra_edges:3 in
        Tree.is_spanning_tree g (Wilson.sample_tree g prng));
    Test.make ~name:"topdown walks use only edges" ~count:30 params
      (fun (n, seed) ->
        let prng = Prng.create ~seed in
        let g = Cc_graph.Gen.random_connected prng ~n ~extra_edges:3 in
        let w = Topdown.sample_walk g prng ~start:0 ~len:32 in
        let ok = ref true in
        for i = 1 to Array.length w - 1 do
          if not (Graph.has_edge g w.(i - 1) w.(i)) then ok := false
        done;
        !ok);
    Test.make ~name:"truncated walks have at most rho distinct vertices"
      ~count:30 params (fun (n, seed) ->
        let prng = Prng.create ~seed in
        let g = Cc_graph.Gen.random_connected prng ~n ~extra_edges:2 in
        let rho = max 2 (n / 2) in
        let w = Topdown.sample_truncated g prng ~start:0 ~target_len:1024 ~rho () in
        Walk.distinct_count w <= rho);
    Test.make ~name:"first_visit_edges covers all distinct vertices" ~count:50
      params (fun (n, seed) ->
        let prng = Prng.create ~seed in
        let g = Cc_graph.Gen.random_connected prng ~n ~extra_edges:3 in
        let w = Walk.walk g prng ~start:0 ~len:(4 * n) in
        List.length (Walk.first_visit_edges w) = Walk.distinct_count w - 1);
  ]

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest qcheck_tests in
  Alcotest.run "cc_walks"
    [
      ( "primitives",
        [
          Alcotest.test_case "walk follows edges" `Quick test_walk_follows_edges;
          Alcotest.test_case "weighted step" `Slow test_step_distribution_weighted;
          Alcotest.test_case "first visit edges" `Quick test_first_visit_edges;
          Alcotest.test_case "distinct count" `Quick test_distinct_count;
          Alcotest.test_case "truncate at distinct" `Quick test_truncate_at_distinct;
          Alcotest.test_case "cover time scaling" `Slow test_cover_time_path_scaling;
          Alcotest.test_case "time to distinct" `Quick test_time_to_distinct;
          Alcotest.test_case "stationary" `Quick test_stationary_distribution;
          Alcotest.test_case "endpoint law" `Slow test_endpoint_distribution_matches_empirical;
        ] );
      ( "tree_samplers",
        [
          Alcotest.test_case "AB uniform on K4" `Slow test_aldous_broder_uniform_k4;
          Alcotest.test_case "AB uniform on C4+chord" `Slow test_aldous_broder_uniform_cycle_chord;
          Alcotest.test_case "Wilson uniform on K4" `Slow test_wilson_uniform_k4;
          Alcotest.test_case "Wilson weighted" `Slow test_wilson_weighted;
          Alcotest.test_case "AB weighted" `Slow test_aldous_broder_weighted;
          Alcotest.test_case "always valid" `Quick test_samplers_always_valid;
        ] );
      ( "topdown",
        [
          Alcotest.test_case "valid walk" `Quick test_topdown_is_valid_walk;
          Alcotest.test_case "endpoint law" `Slow test_topdown_endpoint_distribution;
          Alcotest.test_case "midpoint law" `Slow test_topdown_midpoint_distribution;
          Alcotest.test_case "transition frequencies" `Slow test_topdown_transition_frequencies;
          Alcotest.test_case "truncation semantics" `Quick test_truncated_ends_at_rho_distinct;
          Alcotest.test_case "truncated valid" `Quick test_truncated_walk_is_valid;
          Alcotest.test_case "tau distribution" `Slow test_truncated_tau_distribution;
          Alcotest.test_case "phase-1 trees uniform" `Slow test_topdown_first_visit_tree_uniform;
          Alcotest.test_case "formula 1" `Quick test_midpoint_weights_formula;
        ] );
      ( "hitting",
        [
          Alcotest.test_case "path endpoints" `Quick test_hitting_path_endpoints;
          Alcotest.test_case "complete graph" `Quick test_hitting_complete_graph;
          Alcotest.test_case "commute identity" `Quick test_commute_time_identity;
          Alcotest.test_case "empirical" `Slow test_hitting_empirical;
          Alcotest.test_case "mean positive" `Quick test_mean_hitting_positive;
        ] );
      ( "updown",
        [
          Alcotest.test_case "steps preserve treeness" `Quick test_updown_step_preserves_treeness;
          Alcotest.test_case "uniform on K4" `Slow test_updown_uniform_k4;
          Alcotest.test_case "weighted triangle" `Slow test_updown_weighted_triangle;
          Alcotest.test_case "default budget" `Quick test_updown_default_budget;
          Alcotest.test_case "bfs tree" `Quick test_bfs_tree_is_spanning;
        ] );
      ( "determinantal",
        [
          Alcotest.test_case "known leverages" `Quick test_leverage_known_values;
          Alcotest.test_case "Foster's theorem" `Quick test_fosters_theorem;
          Alcotest.test_case "always a tree" `Quick test_determinantal_always_tree;
          Alcotest.test_case "uniform on K4" `Slow test_determinantal_uniform_k4;
          Alcotest.test_case "weighted" `Slow test_determinantal_weighted;
          Alcotest.test_case "marginal cross-validation" `Slow test_marginal_cross_validation;
        ] );
      ("properties", qsuite);
    ]
