(** Deterministic multicore execution backend.

    The Congested Clique algorithms in this repository are embarrassingly
    parallel {e across machines}: every round is [n] independent local
    computations (dense row kernels, Schur elimination, per-machine walk
    extension) followed by an [exchange]. [Cc_engine] exploits exactly that
    structure with a fixed-size pool of OCaml 5 domains and chunked
    [parallel_for] / [parallel_map] over machine (or row) indices.

    {b Determinism is a hard contract}, enforced by the replay/CI pipeline:
    for any domain count the observable results are bit-identical to the
    sequential engine. The scheduler guarantees this by construction —

    - every index writes only its own output slot, so results are committed
      in index order regardless of completion order;
    - the loop body receives exactly the same arguments as the sequential
      loop would pass (callers that draw randomness must split one
      {!Cc_util.Prng} stream per index {e up front}, in index order, before
      entering the parallel region — see [Doubling]);
    - an exception raised by any chunk is captured and re-raised in the
      calling domain after the region completes, and when several chunks
      fail the one with the {e smallest} starting index wins, so failure
      behaviour does not depend on scheduling either.

    The pool reports [engine.*] metrics (jobs, tasks/chunks, queue depth,
    per-domain busy time) into {!Cc_obs.Metrics} and opens an [engine.job]
    span per parallel region — recorded only from the submitting domain, so
    observability stays race-free and never perturbs the simulation.

    {!sequential} is the zero-dependency fallback: no domains are spawned,
    [parallel_for] is a plain [for] loop, and it is the default until a
    caller installs something else (or [CC_DOMAINS] says otherwise). *)

type t

(** The no-pool engine: runs everything inline in the calling domain. *)
val sequential : t

(** [create ?domains ()] builds an engine. [domains] counts {e participating}
    domains including the caller (default {!default_domains}); [domains = 1]
    returns {!sequential} without spawning anything, larger values spawn
    [domains - 1] worker domains that live until {!shutdown}.
    @raise Invalid_argument if [domains < 1]. *)
val create : ?domains:int -> unit -> t

(** [domains t] is the number of participating domains ([1] for
    {!sequential}). *)
val domains : t -> int

(** [is_parallel t] is [domains t > 1] and [t] not yet shut down. *)
val is_parallel : t -> bool

(** [shutdown t] joins the worker domains. Idempotent; a shut-down pool
    degrades every subsequent parallel call to the inline sequential path,
    so late callers still compute the same results. No-op on
    {!sequential}. *)
val shutdown : t -> unit

(** {1 Domain-count resolution} *)

(** Name of the environment variable consulted by {!default_domains}
    ("CC_DOMAINS"). *)
val env_var : string

(** [parse_domains s] validates a user-supplied domain count: an integer
    [>= 1]; empty (after trimming) and non-numeric values are errors with a
    one-line message. Shared by the [--domains] flags of
    cctree/ccreplay/bench and the environment fallback. *)
val parse_domains : string -> (int, string) result

(** [default_domains ()] is the domain count used when none is given
    explicitly: [$CC_DOMAINS] when set and valid, otherwise
    [Domain.recommended_domain_count ()].
    @raise Invalid_argument if [CC_DOMAINS] is set but not a valid count —
    set-but-empty included (the CLIs reject such values up front with exit
    code 2). *)
val default_domains : unit -> int

(** {1 The process default engine} *)

(** [get ()] is the process-wide default engine. Lazily initialized on first
    use from {!default_domains} — so [CC_DOMAINS=4 dune runtest] exercises
    every instrumented kernel on a 4-domain pool with no code changes. *)
val get : unit -> t

(** [set_default e] installs [e] as the process default. The previous
    default is {e not} shut down — the caller that created it owns its
    lifetime. *)
val set_default : t -> unit

(** [with_engine e f] runs [f] with [e] as the default engine, restoring the
    previous default afterwards (exceptions included). *)
val with_engine : t -> (unit -> 'a) -> 'a

(** {1 Parallel loops} *)

(** [parallel_for ?chunk t ~lo ~hi f] runs [f i] for every [lo <= i < hi].
    On a pool engine, indices are dispatched in contiguous chunks of [chunk]
    (default: enough chunks for ~4 per domain) to the calling domain plus
    the workers; the call returns only when every index has run. Nested
    calls (from inside a running region) and calls on a shut-down pool
    execute inline. [f] must be safe to run concurrently for distinct
    indices; with the sequential engine the call is exactly
    [for i = lo to hi - 1 do f i done]. *)
val parallel_for : ?chunk:int -> t -> lo:int -> hi:int -> (int -> unit) -> unit

(** [parallel_map t n f] is [Array.init n f] computed with {!parallel_for}:
    slot [i] always holds [f i], in index order, whatever the completion
    order was. *)
val parallel_map : t -> int -> (int -> 'a) -> 'a array
