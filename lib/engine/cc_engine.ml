(* A fixed-size domain pool with chunked work dispatch.

   One job runs at a time (the caller blocks until it completes), so the
   whole scheduler is a single mutable [current] slot guarded by a mutex,
   plus two atomics inside the job: [next] hands out chunk start indices,
   [unfinished] counts chunks still running. Workers poll generations: a
   worker that has finished job [g] sleeps until [generation > g], which
   also makes completed jobs safe to observe late (their [next] is already
   exhausted, so a stale worker grabs nothing).

   Determinism does not depend on the dispatch order: every index writes
   only its own slot and the first-failing chunk is chosen by smallest
   start index, not by wall-clock arrival. *)

type job = {
  body : int -> unit;
  hi : int;
  chunk : int;
  next : int Atomic.t; (* next chunk start index *)
  unfinished : int Atomic.t; (* chunks not yet completed *)
  mutable failure : (int * exn * Printexc.raw_backtrace) option;
      (* smallest-start-index failing chunk, for deterministic re-raise *)
}

type pool = {
  n_domains : int; (* participants, including the calling domain *)
  mutable workers : unit Domain.t array;
  m : Mutex.t;
  cv : Condition.t;
  mutable current : job option;
  mutable generation : int;
  mutable stop : bool;
  active : bool Atomic.t; (* a region is running: nested calls go inline *)
  busy : float array; (* cumulative busy seconds per slot (0 = caller) *)
}

type t = Sequential | Pool of pool

let sequential = Sequential

let env_var = "CC_DOMAINS"

let parse_domains s =
  let trimmed = String.trim s in
  if trimmed = "" then
    Error "domain count must not be empty (expected an integer >= 1)"
  else
    match int_of_string_opt trimmed with
    | Some d when d >= 1 -> Ok d
    | Some d -> Error (Printf.sprintf "domain count must be >= 1 (got %d)" d)
    | None -> Error (Printf.sprintf "invalid domain count %S" s)

let default_domains () =
  match Sys.getenv_opt env_var with
  | None -> max 1 (Domain.recommended_domain_count ())
  | Some s -> (
      match parse_domains s with
      | Ok d -> d
      | Error msg -> invalid_arg (env_var ^ ": " ^ msg))

let domains = function Sequential -> 1 | Pool p -> p.n_domains

let is_parallel = function
  | Sequential -> false
  | Pool p -> (not p.stop) && p.n_domains > 1

(* Grab chunks until the job is drained; called by workers and the
   submitting domain alike. Bodies never leak exceptions: they are recorded
   on the job and re-raised by the submitter after the barrier. *)
let run_chunks pool slot job =
  let t0 = Unix.gettimeofday () in
  let running = ref true in
  while !running do
    let lo = Atomic.fetch_and_add job.next job.chunk in
    if lo >= job.hi then running := false
    else begin
      let hi = min job.hi (lo + job.chunk) in
      (try
         for i = lo to hi - 1 do
           job.body i
         done
       with e ->
         let bt = Printexc.get_raw_backtrace () in
         Mutex.lock pool.m;
         (match job.failure with
         | Some (lo0, _, _) when lo0 <= lo -> ()
         | _ -> job.failure <- Some (lo, e, bt));
         Mutex.unlock pool.m);
      if Atomic.fetch_and_add job.unfinished (-1) = 1 then begin
        (* Last chunk: wake the submitter blocked on the barrier. *)
        Mutex.lock pool.m;
        Condition.broadcast pool.cv;
        Mutex.unlock pool.m
      end
    end
  done;
  pool.busy.(slot) <- pool.busy.(slot) +. (Unix.gettimeofday () -. t0)

let rec worker_loop pool slot seen =
  Mutex.lock pool.m;
  let rec await () =
    if pool.stop then None
    else
      match pool.current with
      | Some job when pool.generation > seen -> Some (pool.generation, job)
      | _ ->
          Condition.wait pool.cv pool.m;
          await ()
  in
  let claimed = await () in
  Mutex.unlock pool.m;
  match claimed with
  | None -> ()
  | Some (gen, job) ->
      run_chunks pool slot job;
      worker_loop pool slot gen

let create ?domains () =
  let d = match domains with Some d -> d | None -> default_domains () in
  if d < 1 then invalid_arg "Cc_engine.create: domains must be >= 1";
  if d = 1 then Sequential
  else begin
    let pool =
      {
        n_domains = d;
        workers = [||];
        m = Mutex.create ();
        cv = Condition.create ();
        current = None;
        generation = 0;
        stop = false;
        active = Atomic.make false;
        busy = Array.make d 0.0;
      }
    in
    pool.workers <-
      Array.init (d - 1) (fun i ->
          Domain.spawn (fun () -> worker_loop pool (i + 1) 0));
    Cc_obs.Metrics.set_gauge "engine.domains" (float_of_int d);
    Pool pool
  end

let shutdown = function
  | Sequential -> ()
  | Pool pool ->
      Mutex.lock pool.m;
      if not pool.stop then begin
        pool.stop <- true;
        Condition.broadcast pool.cv
      end;
      Mutex.unlock pool.m;
      let ws = pool.workers in
      pool.workers <- [||];
      Array.iter Domain.join ws

(* --- default engine ----------------------------------------------------- *)

let installed : t option ref = ref None

let get () =
  match !installed with
  | Some e -> e
  | None ->
      let e = create () in
      installed := Some e;
      e

let set_default e = installed := Some e

let with_engine e f =
  let prev = !installed in
  installed := Some e;
  Fun.protect ~finally:(fun () -> installed := prev) f

(* --- parallel loops ----------------------------------------------------- *)

let seq_for ~lo ~hi body =
  for i = lo to hi - 1 do
    body i
  done

let run_pool pool ?chunk ~lo ~hi body =
  let count = hi - lo in
  let chunk =
    match chunk with
    | Some c -> max 1 c
    | None -> max 1 ((count + (4 * pool.n_domains) - 1) / (4 * pool.n_domains))
  in
  let nchunks = (count + chunk - 1) / chunk in
  let job =
    {
      body;
      hi;
      chunk;
      next = Atomic.make lo;
      unfinished = Atomic.make nchunks;
      failure = None;
    }
  in
  Cc_obs.Trace.with_span "engine.job"
    ~args:
      [
        ("items", string_of_int count);
        ("chunks", string_of_int nchunks);
        ("domains", string_of_int pool.n_domains);
      ]
  @@ fun () ->
  Mutex.lock pool.m;
  pool.generation <- pool.generation + 1;
  pool.current <- Some job;
  Condition.broadcast pool.cv;
  Mutex.unlock pool.m;
  run_chunks pool 0 job;
  Mutex.lock pool.m;
  while Atomic.get job.unfinished > 0 do
    Condition.wait pool.cv pool.m
  done;
  pool.current <- None;
  Mutex.unlock pool.m;
  (* Observability, from the submitting domain only (the registry is not
     domain-safe): job shape plus the cumulative per-domain busy clocks. *)
  Cc_obs.Metrics.incr "engine.jobs";
  Cc_obs.Metrics.incr ~by:nchunks "engine.tasks";
  Cc_obs.Metrics.observe "engine.queue_depth" (float_of_int nchunks);
  Cc_obs.Metrics.observe "engine.chunk_items" (float_of_int chunk);
  Array.iteri
    (fun slot s ->
      Cc_obs.Metrics.set_gauge
        (Printf.sprintf "engine.domain%d.busy_s" slot)
        s)
    pool.busy;
  match job.failure with
  | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

let parallel_for ?chunk t ~lo ~hi body =
  if hi > lo then
    match t with
    | Sequential -> seq_for ~lo ~hi body
    | Pool pool ->
        if pool.stop || not (Atomic.compare_and_set pool.active false true)
        then
          (* Shut down, or nested inside a running region (e.g. a worker's
             body reached another instrumented kernel): run inline. *)
          seq_for ~lo ~hi body
        else
          Fun.protect
            ~finally:(fun () -> Atomic.set pool.active false)
            (fun () -> run_pool pool ?chunk ~lo ~hi body)

let parallel_map t n f =
  if n < 0 then invalid_arg "Cc_engine.parallel_map: negative size";
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    parallel_for t ~lo:0 ~hi:n (fun i -> out.(i) <- Some (f i));
    Array.map (function Some x -> x | None -> assert false) out
  end
