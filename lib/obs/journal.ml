type event = {
  seq : int;
  t_s : float;
  kind : string;
  worker : int option;
  shard : int option;
  attempt : int option;
  budget : int option;
  round : float;
  cause : string;
}

type t = {
  cap : int;
  clock : unit -> float;
  t0 : float;
  q : event Queue.t;
  mutable next_seq : int;
  mutable n_dropped : int;
}

let create ?(cap = 4096) ?(clock = Unix.gettimeofday) () =
  { cap = max 1 cap; clock; t0 = clock (); q = Queue.create (); next_seq = 0; n_dropped = 0 }

let record t ?worker ?shard ?attempt ?budget ?(round = 0.) ?(cause = "") kind =
  let e =
    {
      seq = t.next_seq;
      t_s = t.clock () -. t.t0;
      kind;
      worker;
      shard;
      attempt;
      budget;
      round;
      cause;
    }
  in
  t.next_seq <- t.next_seq + 1;
  Queue.push e t.q;
  while Queue.length t.q > t.cap do
    ignore (Queue.pop t.q);
    t.n_dropped <- t.n_dropped + 1
  done

let events t = List.of_seq (Queue.to_seq t.q)
let length t = Queue.length t.q
let dropped t = t.n_dropped

let is_clean t =
  Queue.fold
    (fun acc e -> acc && (e.kind = "worker_start" || e.kind = "worker_stop"))
    true t.q

(* --- serialization --- *)

let event_to_json e =
  let opt name = function None -> [] | Some i -> [ (name, Json.Int i) ] in
  Json.Obj
    ([
       ("seq", Json.Int e.seq);
       ("t_s", Json.float_opt e.t_s);
       ("kind", Json.String e.kind);
     ]
    @ opt "worker" e.worker
    @ opt "shard" e.shard
    @ opt "attempt" e.attempt
    @ opt "budget" e.budget
    @ [ ("round", Json.float_opt e.round) ]
    @ (if e.cause = "" then [] else [ ("cause", Json.String e.cause) ]))

let event_of_json v =
  let ( let* ) = Result.bind in
  let int_field name =
    match Json.member name v with
    | Some (Json.Int i) -> Ok i
    | _ -> Error (Printf.sprintf "field %S: expected int" name)
  in
  let int_opt name =
    match Json.member name v with Some (Json.Int i) -> Some i | _ -> None
  in
  let float_field name =
    match Option.bind (Json.member name v) Json.to_float_opt with
    | Some f -> f
    | None -> 0.
  in
  let* seq = int_field "seq" in
  let* kind =
    match Option.bind (Json.member "kind" v) Json.to_string_opt with
    | Some k -> Ok k
    | None -> Error "field \"kind\": expected string"
  in
  let cause =
    Option.value ~default:""
      (Option.bind (Json.member "cause" v) Json.to_string_opt)
  in
  Ok
    {
      seq;
      t_s = float_field "t_s";
      kind;
      worker = int_opt "worker";
      shard = int_opt "shard";
      attempt = int_opt "attempt";
      budget = int_opt "budget";
      round = float_field "round";
      cause;
    }

let to_jsonl t =
  let buf = Buffer.create 1024 in
  Queue.iter
    (fun e ->
      Buffer.add_string buf (Json.to_string (event_to_json e));
      Buffer.add_char buf '\n')
    t.q;
  Buffer.contents buf

let of_jsonl s =
  let ( let* ) = Result.bind in
  let lines =
    String.split_on_char '\n' s
    |> List.filter (fun l -> String.trim l <> "")
  in
  let rec go acc lineno = function
    | [] -> Ok (List.rev acc)
    | [ l ] when Result.is_error (Json.of_string l) && acc <> [] ->
        (* Torn tail: a journal whose writer was killed mid-append ends in a
           truncated line that isn't JSON at all. Salvage the clean prefix.
           A *parseable* line of the wrong shape still errors below — that
           distinguishes truncation from feeding a non-journal file. *)
        Ok (List.rev acc)
    | l :: rest ->
        let* v =
          match Json.of_string l with
          | Ok v -> Ok v
          | Error e -> Error (Printf.sprintf "line %d: %s" lineno e)
        in
        let* e =
          match event_of_json v with
          | Ok e -> Ok e
          | Error e -> Error (Printf.sprintf "line %d: %s" lineno e)
        in
        go (e :: acc) (lineno + 1) rest
  in
  go [] 1 lines
