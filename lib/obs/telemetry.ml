type gc_stats = {
  minor_words : float;
  major_words : float;
  heap_words : int;
  minor_collections : int;
  major_collections : int;
  compactions : int;
}

type span_agg = { name : string; calls : int; wall_s : float }

type shard_wire = {
  shard : int;
  books : int;
  gaps : int;
  bytes_in : int;
  installs : int;
}

type report = {
  ts : float;
  gc : gc_stats;
  registry : (string * Metrics.value) list;
  spans : span_agg list;
  shards : shard_wire list;
  trees : Trace.span list;
  events : Trace.event list;
}

let capture_gc () =
  let s = Gc.quick_stat () in
  {
    minor_words = s.Gc.minor_words;
    major_words = s.Gc.major_words;
    heap_words = s.Gc.heap_words;
    minor_collections = s.Gc.minor_collections;
    major_collections = s.Gc.major_collections;
    compactions = s.Gc.compactions;
  }

let capture_spans () =
  match Trace.current () with
  | None -> []
  | Some t ->
      (* fold completed top-level spans by name, preserving first-seen order *)
      let order = ref [] in
      let tbl : (string, span_agg ref) Hashtbl.t = Hashtbl.create 16 in
      List.iter
        (fun (s : Trace.span) ->
          let wall = s.Trace.stop_ts -. s.Trace.start_ts in
          match Hashtbl.find_opt tbl s.Trace.name with
          | Some r ->
              r := { !r with calls = !r.calls + 1; wall_s = !r.wall_s +. wall }
          | None ->
              Hashtbl.replace tbl s.Trace.name
                (ref { name = s.Trace.name; calls = 1; wall_s = wall });
              order := s.Trace.name :: !order)
        (Trace.roots t);
      List.rev_map (fun n -> !(Hashtbl.find tbl n)) !order

let capture ?spans ?(trees = []) ?(events = []) ~shards () =
  {
    ts = Unix.gettimeofday ();
    gc = capture_gc ();
    registry =
      List.filter
        (fun (name, _) ->
          not (String.length name >= 7 && String.sub name 0 7 = "worker."))
        (Metrics.snapshot ());
    spans = (match spans with Some s -> s | None -> capture_spans ());
    shards;
    trees;
    events;
  }

(* --- wire form --- *)

let to_json r =
  Json.Obj
    ([
      (* hex-float so the parent's offset estimator sees the exact bits the
         worker stamped (the emitter's decimal floats quantize epoch-scale
         timestamps). *)
      ("ts", Json.String (Printf.sprintf "%h" r.ts));
      ( "gc",
        Json.Obj
          [
            ("minor_words", Json.float_opt r.gc.minor_words);
            ("major_words", Json.float_opt r.gc.major_words);
            ("heap_words", Json.Int r.gc.heap_words);
            ("minor_collections", Json.Int r.gc.minor_collections);
            ("major_collections", Json.Int r.gc.major_collections);
            ("compactions", Json.Int r.gc.compactions);
          ] );
      ( "metrics",
        Json.Obj
          (List.map (fun (n, v) -> (n, Metrics.value_to_json v)) r.registry) );
      ( "spans",
        Json.List
          (List.map
             (fun s ->
               Json.Obj
                 [
                   ("name", Json.String s.name);
                   ("calls", Json.Int s.calls);
                   ("wall_s", Json.float_opt s.wall_s);
                 ])
             r.spans) );
      ( "shards",
        Json.List
          (List.map
             (fun s ->
               Json.Obj
                 [
                   ("shard", Json.Int s.shard);
                   ("books", Json.Int s.books);
                   ("gaps", Json.Int s.gaps);
                   ("bytes_in", Json.Int s.bytes_in);
                   ("installs", Json.Int s.installs);
                 ])
             r.shards) );
    ]
    @ (match r.trees with
      | [] -> []
      | trees -> [ ("trees", Json.List (List.map Trace.span_to_json trees)) ])
    @
    match r.events with
    | [] -> []
    | events ->
        [ ("events", Json.List (List.map Trace.event_to_json events)) ])

let of_json v =
  let ( let* ) = Result.bind in
  let int_in obj name =
    match Json.member name obj with Some (Json.Int i) -> Some i | _ -> None
  in
  let float_in obj name =
    Option.bind (Json.member name obj) Json.to_float_opt
  in
  let* gc =
    match Json.member "gc" v with
    | Some g ->
        Ok
          {
            minor_words = Option.value ~default:0. (float_in g "minor_words");
            major_words = Option.value ~default:0. (float_in g "major_words");
            heap_words = Option.value ~default:0 (int_in g "heap_words");
            minor_collections =
              Option.value ~default:0 (int_in g "minor_collections");
            major_collections =
              Option.value ~default:0 (int_in g "major_collections");
            compactions = Option.value ~default:0 (int_in g "compactions");
          }
    | None -> Error "telemetry: missing field \"gc\""
  in
  let* registry =
    match Json.member "metrics" v with
    | Some (Json.Obj fields) ->
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | (n, mv) :: rest -> (
              match Metrics.value_of_json mv with
              | Ok value -> go ((n, value) :: acc) rest
              | Error e -> Error (Printf.sprintf "telemetry: metric %S: %s" n e)
              )
        in
        go [] fields
    | _ -> Error "telemetry: missing field \"metrics\""
  in
  let* spans =
    match Option.bind (Json.member "spans" v) Json.to_list_opt with
    | None -> Error "telemetry: missing field \"spans\""
    | Some l ->
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | s :: rest -> (
              match
                ( Option.bind (Json.member "name" s) Json.to_string_opt,
                  int_in s "calls" )
              with
              | Some name, Some calls ->
                  go
                    ({
                       name;
                       calls;
                       wall_s = Option.value ~default:0. (float_in s "wall_s");
                     }
                    :: acc)
                    rest
              | _ -> Error "telemetry: malformed span aggregate")
        in
        go [] l
  in
  let* shards =
    match Option.bind (Json.member "shards" v) Json.to_list_opt with
    | None -> Error "telemetry: missing field \"shards\""
    | Some l ->
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | s :: rest -> (
              match int_in s "shard" with
              | Some shard ->
                  go
                    ({
                       shard;
                       books = Option.value ~default:0 (int_in s "books");
                       gaps = Option.value ~default:0 (int_in s "gaps");
                       bytes_in = Option.value ~default:0 (int_in s "bytes_in");
                       installs = Option.value ~default:0 (int_in s "installs");
                     }
                    :: acc)
                    rest
              | None -> Error "telemetry: malformed shard wire record")
        in
        go [] l
  in
  (* "ts"/"trees"/"events" postdate the first wire revision: default when
     absent so old frames still decode. *)
  let ts =
    match Json.member "ts" v with
    | Some (Json.String s) -> ( try float_of_string s with _ -> Float.nan)
    | Some j -> Option.value ~default:Float.nan (Json.to_float_opt j)
    | None -> Float.nan
  in
  let* trees =
    match Option.bind (Json.member "trees" v) Json.to_list_opt with
    | None -> Ok []
    | Some l ->
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | s :: rest -> (
              match Trace.span_of_json s with
              | Ok sp -> go (sp :: acc) rest
              | Error e -> Error ("telemetry: " ^ e))
        in
        go [] l
  in
  let* events =
    match Option.bind (Json.member "events" v) Json.to_list_opt with
    | None -> Ok []
    | Some l ->
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | s :: rest -> (
              match Trace.event_of_json s with
              | Ok ev -> go (ev :: acc) rest
              | Error e -> Error ("telemetry: " ^ e))
        in
        go [] l
  in
  Ok { ts; gc; registry; spans; shards; trees; events }

(* --- parent-side merge --- *)

module Merge = struct
  type cell = {
    mutable committed : Metrics.value option;
    mutable current : Metrics.value option;
  }

  type t = (string, cell) Hashtbl.t

  let create () : t = Hashtbl.create 64

  let combine committed current =
    match (committed, current) with
    | Some a, Some b -> (
        match Metrics.merge a b with Some v -> Some v | None -> Some b)
    | Some a, None -> Some a
    | None, c -> c

  (* Flatten one report into the derived [worker.<shard>.*] key space. *)
  let derive (r : report) =
    List.concat_map
      (fun sw ->
        let p suffix = Printf.sprintf "worker.%d.%s" sw.shard suffix in
        [
          (p "wire.books", Metrics.Counter sw.books);
          (p "wire.gaps", Metrics.Counter sw.gaps);
          (p "wire.bytes_in", Metrics.Counter sw.bytes_in);
          (p "wire.installs", Metrics.Counter sw.installs);
          (p "gc.minor_words", Metrics.Gauge r.gc.minor_words);
          (p "gc.major_words", Metrics.Gauge r.gc.major_words);
          (p "gc.heap_words", Metrics.Gauge (float_of_int r.gc.heap_words));
          ( p "gc.minor_collections",
            Metrics.Gauge (float_of_int r.gc.minor_collections) );
          ( p "gc.major_collections",
            Metrics.Gauge (float_of_int r.gc.major_collections) );
          (p "gc.compactions", Metrics.Gauge (float_of_int r.gc.compactions));
        ]
        @ List.map (fun (n, v) -> (p ("m." ^ n), v)) r.registry
        @ List.concat_map
            (fun s ->
              [
                (p ("span." ^ s.name ^ ".calls"), Metrics.Counter s.calls);
                ( p ("span." ^ s.name ^ ".wall_ms"),
                  Metrics.Counter
                    (int_of_float (Float.round (s.wall_s *. 1000.))) );
              ])
            r.spans)
      r.shards

  let observe t r =
    List.iter
      (fun (key, v) ->
        let cell =
          match Hashtbl.find_opt t key with
          | Some c -> c
          | None ->
              let c = { committed = None; current = None } in
              Hashtbl.replace t key c;
              c
        in
        cell.current <- Some v;
        match combine cell.committed cell.current with
        | Some published -> Metrics.set key published
        | None -> ())
      (derive r)

  let commit t ~shard =
    let prefix = Printf.sprintf "worker.%d." shard in
    let plen = String.length prefix in
    Hashtbl.iter
      (fun key cell ->
        if String.length key >= plen && String.sub key 0 plen = prefix then begin
          cell.committed <- combine cell.committed cell.current;
          cell.current <- None
        end)
      t
end
