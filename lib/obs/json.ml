type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let float_opt x = if Float.is_finite x then Float x else Null

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let add_float buf x =
  if not (Float.is_finite x) then Buffer.add_string buf "null"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.1f" x)
  else Buffer.add_string buf (Printf.sprintf "%.12g" x)

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x -> add_float buf x
  | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

let rec pretty buf indent = function
  | (Null | Bool _ | Int _ | Float _ | String _) as v -> to_buffer buf v
  | List [] -> Buffer.add_string buf "[]"
  | List xs ->
      let pad = String.make (indent + 2) ' ' in
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf pad;
          pretty buf (indent + 2) x)
        xs;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make indent ' ');
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      let pad = String.make (indent + 2) ' ' in
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf pad;
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\": ";
          pretty buf (indent + 2) v)
        fields;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make indent ' ');
      Buffer.add_char buf '}'

let to_string_pretty v =
  let buf = Buffer.create 1024 in
  pretty buf 0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf
