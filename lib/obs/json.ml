type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let float_opt x = if Float.is_finite x then Float x else Null

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let add_float buf x =
  if not (Float.is_finite x) then Buffer.add_string buf "null"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.1f" x)
  else Buffer.add_string buf (Printf.sprintf "%.12g" x)

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x -> add_float buf x
  | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

let rec pretty buf indent = function
  | (Null | Bool _ | Int _ | Float _ | String _) as v -> to_buffer buf v
  | List [] -> Buffer.add_string buf "[]"
  | List xs ->
      let pad = String.make (indent + 2) ' ' in
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf pad;
          pretty buf (indent + 2) x)
        xs;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make indent ' ');
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      let pad = String.make (indent + 2) ' ' in
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf pad;
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\": ";
          pretty buf (indent + 2) v)
        fields;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make indent ' ');
      Buffer.add_char buf '}'

let to_string_pretty v =
  let buf = Buffer.create 1024 in
  pretty buf 0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* --- parsing ----------------------------------------------------------- *)

exception Parse_error of string

let parse_error pos msg =
  raise (Parse_error (Printf.sprintf "at offset %d: %s" pos msg))

(* A plain recursive-descent parser over the string; [pos] is a cursor. *)
let of_string s =
  let len = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < len
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | Some x -> parse_error !pos (Printf.sprintf "expected %c, found %c" c x)
    | None -> parse_error !pos (Printf.sprintf "expected %c, found end" c)
  in
  let literal word v =
    let n = String.length word in
    if !pos + n <= len && String.sub s !pos n = word then begin
      pos := !pos + n;
      v
    end
    else parse_error !pos ("expected " ^ word)
  in
  let hex_digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> parse_error !pos "invalid \\u escape"
  in
  let add_utf8 buf u =
    (* Encode one scalar value; unpaired surrogates degrade to U+FFFD. *)
    let u = if u >= 0xD800 && u <= 0xDFFF then 0xFFFD else u in
    if u < 0x80 then Buffer.add_char buf (Char.chr u)
    else if u < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
    else if u < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (u lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= len then parse_error !pos "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          if !pos >= len then parse_error !pos "unterminated escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char buf '"'; advance ()
          | '\\' -> Buffer.add_char buf '\\'; advance ()
          | '/' -> Buffer.add_char buf '/'; advance ()
          | 'b' -> Buffer.add_char buf '\b'; advance ()
          | 'f' -> Buffer.add_char buf '\012'; advance ()
          | 'n' -> Buffer.add_char buf '\n'; advance ()
          | 'r' -> Buffer.add_char buf '\r'; advance ()
          | 't' -> Buffer.add_char buf '\t'; advance ()
          | 'u' ->
              advance ();
              let hex4 () =
                if !pos + 4 > len then parse_error !pos "truncated \\u escape";
                let u =
                  (hex_digit s.[!pos] lsl 12)
                  lor (hex_digit s.[!pos + 1] lsl 8)
                  lor (hex_digit s.[!pos + 2] lsl 4)
                  lor hex_digit s.[!pos + 3]
                in
                pos := !pos + 4;
                u
              in
              let u = hex4 () in
              (* A high surrogate followed by \uDC00..\uDFFF is one scalar. *)
              if
                u >= 0xD800 && u <= 0xDBFF
                && !pos + 6 <= len
                && s.[!pos] = '\\'
                && s.[!pos + 1] = 'u'
              then begin
                let save = !pos in
                pos := !pos + 2;
                let lo = hex4 () in
                if lo >= 0xDC00 && lo <= 0xDFFF then
                  add_utf8 buf
                    (0x10000 + ((u - 0xD800) lsl 10) + (lo - 0xDC00))
                else begin
                  (* Not a low surrogate: emit U+FFFD, keep [lo] separate. *)
                  add_utf8 buf u;
                  pos := save
                end
              end
              else add_utf8 buf u
          | c -> parse_error !pos (Printf.sprintf "bad escape \\%c" c));
          go ()
      | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < len && is_num_char s.[!pos] do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    let is_float =
      String.exists (fun c -> c = '.' || c = 'e' || c = 'E') lit
    in
    if is_float then
      match float_of_string_opt lit with
      | Some x -> Float x
      | None -> parse_error start ("invalid number " ^ lit)
    else
      match int_of_string_opt lit with
      | Some i -> Int i
      | None -> (
          (* Integer literal too large for a native int: keep the value. *)
          match float_of_string_opt lit with
          | Some x -> Float x
          | None -> parse_error start ("invalid number " ^ lit))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> parse_error !pos "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (Stdlib.List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (Stdlib.List.rev !fields)
        end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> parse_error !pos (Printf.sprintf "unexpected character %c" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> len then parse_error !pos "trailing content after value";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* --- accessors --------------------------------------------------------- *)

let member key = function
  | Obj fields -> Stdlib.List.assoc_opt key fields
  | _ -> None

let to_float_opt = function
  | Int i -> Some (float_of_int i)
  | Float x -> Some x
  | _ -> None

let to_string_opt = function String s -> Some s | _ -> None
let to_list_opt = function List xs -> Some xs | _ -> None
let to_bool_opt = function Bool b -> Some b | _ -> None
