(** Parsed [cc-bench/*] benchmark documents and baseline diffing.

    The bench harness's [--json FILE] flag writes one JSON document per run
    (schema [cc-bench/1]; [cc-bench/2] adds per-experiment load fields;
    [cc-bench/3] adds the top-level engine object; [cc-bench/4] adds
    per-record statistical-quality columns from the audit plane).
    This module reads those documents back, aggregates the per-row records
    into per-experiment summaries, and diffs two runs by their measured/bound
    ratios — the seed-deterministic quantity a regression gate can pin. The
    [ccprof] CLI is a thin shell over these functions. *)

type record = {
  experiment : string;  (** experiment id the row belongs to. *)
  params : (string * string) list;  (** row parameters, values stringified. *)
  measured : float option;
  bound : float option;  (** the paper bound, when the row has one. *)
  ratio : float option;  (** [measured /. bound]; [None] without a bound. *)
  quality : (string * float) list;
      (** cc-bench/4: flat numeric quality measurements (audit TV, KL,
          max |z|, ESS, ...); [[]] in earlier schemas. *)
}

type experiment = {
  id : string;
  title : string;
  wall_s : float option;
  max_load : int option;  (** cc-bench/2: hottest per-machine word load. *)
  imbalance : float option;  (** cc-bench/2: max over the run's nets. *)
}

type engine_info = {
  domains : int;  (** domain count the run executed with. *)
  speedup : float option;
      (** strong-scaling speedup at that count (P1); [None] when unmeasured. *)
}

type doc = {
  schema : string;  (** ["cc-bench/1"], ["cc-bench/2"], or ["cc-bench/3"]. *)
  fast : bool;
  engine : engine_info option;  (** cc-bench/3 only; [None] in /1 and /2. *)
  experiments : experiment list;  (** in run order. *)
  records : record list;  (** in emission order. *)
}

(** [of_json v] interprets an already-parsed JSON document. *)
val of_json : Json.t -> (doc, string) result

(** [of_string s] parses and interprets a document. *)
val of_string : string -> (doc, string) result

(** [load file] reads and parses [file]. I/O errors become [Error _]. *)
val load : string -> (doc, string) result

(** {1 Aggregation} *)

type agg = {
  exp : experiment;
  rows : int;  (** records under this experiment id. *)
  mean_ratio : float option;  (** mean over rows carrying a ratio. *)
  worst_ratio : float option;  (** max over rows carrying a ratio. *)
  quality : (string * float) list;
      (** per-key means over rows carrying that quality key, first-seen key
          order; [[]] when no row carried quality data. *)
}

(** [aggregate doc] summarizes each experiment: its row count plus the mean
    and worst measured/bound ratio. Experiments appear in run order;
    experiment ids found only in records are appended (with an empty
    title). *)
val aggregate : doc -> agg list

(** {1 Baseline diff} *)

type delta = {
  id : string;
  old_ratio : float;
  new_ratio : float;
  change : float;
      (** relative change [(new - old) / max (abs old) eps]; positive means
          the ratio — and so the gap to the paper bound — worsened. *)
}

type diff = {
  threshold : float;
  regressions : delta list;  (** [change > threshold], worst first. *)
  improvements : delta list;  (** [change < -. threshold], best first. *)
  unchanged : delta list;  (** within [±threshold], run order. *)
  only_old : string list;  (** experiments the new run dropped. *)
  only_new : string list;  (** experiments the old run lacked. *)
}

(** [diff ?threshold ~baseline current] compares per-experiment mean ratios
    ([threshold] defaults to [0.10], i.e. a 10% relative worsening is a
    regression). Experiments without a ratio on either side are ignored;
    experiments present on only one side are reported but never count as
    regressions. *)
val diff : ?threshold:float -> baseline:doc -> doc -> diff
