(** Online invariant checking over the Net event stream.

    A monitor consumes the canonical {!Recorder.record} stream and checks,
    as each record arrives, that the simulator respected the Congested
    Clique model. The catalogue:

    - [lenzen_cap] — no machine sent or received more than [rounds * n]
      words in a primitive booked at [rounds] rounds (Lenzen's routing
      budget, the substrate assumption behind every round count we
      reproduce);
    - [conservation] — per-kind flow balance: an exchange / all-to-all
      delivers exactly the words it sends, a broadcast delivers [n - 1]
      copies of its payload, an aggregate delivers at most what was
      contributed, an analytic charge moves nothing. Injected drops never
      unbalance a booked record — the metering layer books retransmission
      waves as ordinary [:retry] exchanges;
    - [monotonic] — the round clock never runs backwards and each record
      advances it by exactly its own rounds;
    - [ledger] — end-of-run reconciliation ({!check_ledger}): per-label and
      total rounds/messages/words accumulated from events must equal the
      net's ledger;
    - [shape] — structural sanity (array lengths, negative costs,
      [max_load] consistency, unknown kinds).

    Every violation is recorded in the monitor, counted in the Metrics
    registry ([invariant.violations] plus one counter per catalogue entry),
    and emitted as a Trace instant event when a collector is installed.
    Checking is pure observation and never perturbs the run.

    Glue a monitor to a live net with [Cc_clique.Net.attach_invariant] and
    reconcile with [Cc_clique.Net.ledger_violations]. *)

type violation = {
  invariant : string;  (** catalogue entry, e.g. ["lenzen_cap"]. *)
  seq : int option;  (** offending event, when tied to one. *)
  label : string;  (** ledger label ([<totals>] for run totals). *)
  machine : int option;  (** offending machine, for per-machine checks. *)
  round : float option;  (** round clock at the offending event. *)
  detail : string;  (** human-readable specifics. *)
}

type t

(** [create ~machines ()] builds a monitor for a [machines]-machine clique
    whose round clock starts at 0. *)
val create : machines:int -> unit -> t

(** [observe t r] checks one record, returning (and recording) the new
    violations — [[]] when the record is clean. *)
val observe : t -> Recorder.record -> violation list

(** [check_ledger t ~ledger ~rounds ~messages ~words] reconciles the
    accumulated event stream against a net's per-label ledger and totals;
    call once at end of run. *)
val check_ledger :
  t ->
  ledger:(string * float * int * int) list ->
  rounds:float ->
  messages:int ->
  words:int ->
  violation list

(** [violations t] is every violation recorded so far, in detection order. *)
val violations : t -> violation list

val count : t -> int

(** [check_log ~machines records] runs a fresh monitor over a full record
    list (e.g. a reloaded {!Recorder} log) and returns its violations. The
    ledger check needs the live net and is not included. *)
val check_log : machines:int -> Recorder.record list -> violation list

val pp_violation : Format.formatter -> violation -> unit
