type histogram = {
  count : int;
  sum : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
  buckets : (int * int) list;
}

type value = Counter of int | Gauge of float | Histogram of histogram

(* Internal mutable instrument state. Counters and gauges are single mutable
   cells; histogram scalar moments live in a flat float array (sum/min/max)
   so [observe] never boxes a float — the hot path is field stores only. *)
type hstate = {
  mutable hcount : int;
  moments : float array; (* [| sum; min; max |] *)
  hbuckets : int array;
}

type entry =
  | C of { mutable c : int }
  | G of { mutable g : float }
  | H of hstate

let n_buckets = 128

(* Bucket i (1 <= i <= 127) covers [2^(i-64), 2^(i-63)); bucket 0 catches
   non-positive, non-finite-negative, and underflowing observations. The
   index is exact arithmetic on the float exponent: deterministic, and
   [Float.log2] stays in float registers (no allocation). *)
let bucket_of x =
  if x <= 0.0 || Float.is_nan x then 0
  else if x = Float.infinity then n_buckets - 1
  else begin
    let e = int_of_float (Float.floor (Float.log2 x)) in
    let i = e + 64 in
    if i < 1 then 0 else if i > n_buckets - 1 then n_buckets - 1 else i
  end

let registry : (string, entry) Hashtbl.t = Hashtbl.create 64

let kind_error name =
  invalid_arg
    (Printf.sprintf "Metrics: %S is already bound to another instrument kind"
       name)

let incr ?(by = 1) name =
  match Hashtbl.find_opt registry name with
  | None -> Hashtbl.replace registry name (C { c = by })
  | Some (C r) -> r.c <- r.c + by
  | Some _ -> kind_error name

let set_gauge name x =
  match Hashtbl.find_opt registry name with
  | None -> Hashtbl.replace registry name (G { g = x })
  | Some (G r) -> r.g <- x
  | Some _ -> kind_error name

let fresh_hstate () =
  {
    hcount = 0;
    moments = [| 0.0; Float.infinity; Float.neg_infinity |];
    hbuckets = Array.make n_buckets 0;
  }

let hstate_observe st x =
  st.hcount <- st.hcount + 1;
  st.moments.(0) <- st.moments.(0) +. x;
  if x < st.moments.(1) then st.moments.(1) <- x;
  if x > st.moments.(2) then st.moments.(2) <- x;
  let b = bucket_of x in
  st.hbuckets.(b) <- st.hbuckets.(b) + 1

let observe name x =
  match Hashtbl.find_opt registry name with
  | None ->
      let st = fresh_hstate () in
      hstate_observe st x;
      Hashtbl.replace registry name (H st)
  | Some (H st) -> hstate_observe st x
  | Some _ -> kind_error name

(* --- percentiles and summaries --- *)

let percentile_dense ~count ~min ~max dense q =
  if count = 0 then Float.nan
  else begin
    let rank = int_of_float (Float.ceil (q *. Float.of_int count)) in
    let rank = if rank < 1 then 1 else if rank > count then count else rank in
    let idx = ref (-1) and cum = ref 0 in
    (try
       for i = 0 to Array.length dense - 1 do
         cum := !cum + dense.(i);
         if !cum >= rank then begin
           idx := i;
           raise Exit
         end
       done
     with Exit -> ());
    if !idx <= 0 then min
    else
      (* upper bound of the bucket, clamped into the observed range *)
      let upper = Float.ldexp 1.0 (!idx - 63) in
      Float.min max (Float.max min upper)
  end

let sparse_of_dense dense =
  let acc = ref [] in
  for i = Array.length dense - 1 downto 0 do
    if dense.(i) > 0 then acc := (i, dense.(i)) :: !acc
  done;
  !acc

let dense_of_sparse sparse =
  let dense = Array.make n_buckets 0 in
  List.iter
    (fun (i, c) -> if i >= 0 && i < n_buckets then dense.(i) <- dense.(i) + c)
    sparse;
  dense

let summary_of_dense ~count ~sum ~min ~max dense =
  {
    count;
    sum;
    min;
    max;
    p50 = percentile_dense ~count ~min ~max dense 0.50;
    p95 = percentile_dense ~count ~min ~max dense 0.95;
    p99 = percentile_dense ~count ~min ~max dense 0.99;
    buckets = sparse_of_dense dense;
  }

let summary_of_hstate st =
  summary_of_dense ~count:st.hcount ~sum:st.moments.(0) ~min:st.moments.(1)
    ~max:st.moments.(2) st.hbuckets

let percentile h q =
  percentile_dense ~count:h.count ~min:h.min ~max:h.max
    (dense_of_sparse h.buckets) q

let value_of_entry = function
  | C r -> Counter r.c
  | G r -> Gauge r.g
  | H st -> Histogram (summary_of_hstate st)

let entry_of_value = function
  | Counter c -> C { c }
  | Gauge g -> G { g }
  | Histogram h ->
      H
        {
          hcount = h.count;
          moments = [| h.sum; h.min; h.max |];
          hbuckets = dense_of_sparse h.buckets;
        }

let get name = Option.map value_of_entry (Hashtbl.find_opt registry name)

let snapshot () =
  Hashtbl.fold (fun name e acc -> (name, value_of_entry e) :: acc) registry []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let reset () = Hashtbl.reset registry

(* --- merge API --- *)

let set name v = Hashtbl.replace registry name (entry_of_value v)

let merge a b =
  match (a, b) with
  | Counter x, Counter y -> Some (Counter (x + y))
  | Gauge _, Gauge y -> Some (Gauge y)
  | Histogram x, Histogram y ->
      let dense = dense_of_sparse (x.buckets @ y.buckets) in
      Some
        (Histogram
           (summary_of_dense ~count:(x.count + y.count) ~sum:(x.sum +. y.sum)
              ~min:(Float.min x.min y.min) ~max:(Float.max x.max y.max) dense))
  | _ -> None

(* --- rendering --- *)

let pp fmt () =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun (name, v) ->
      match v with
      | Counter c -> Format.fprintf fmt "%-36s counter %12d@," name c
      | Gauge g -> Format.fprintf fmt "%-36s gauge   %12g@," name g
      | Histogram h ->
          Format.fprintf fmt
            "%-36s hist    %12d obs  mean %.4g  min %.4g  max %.4g  p50 \
             %.4g  p95 %.4g  p99 %.4g@,"
            name h.count
            (h.sum /. Float.of_int (max 1 h.count))
            h.min h.max h.p50 h.p95 h.p99)
    (snapshot ());
  Format.fprintf fmt "@]"

(* --- JSON --- *)

let value_to_json = function
  | Counter c -> Json.Obj [ ("type", Json.String "counter"); ("value", Json.Int c) ]
  | Gauge g -> Json.Obj [ ("type", Json.String "gauge"); ("value", Json.float_opt g) ]
  | Histogram h ->
      Json.Obj
        [
          ("type", Json.String "histogram");
          ("count", Json.Int h.count);
          ("sum", Json.float_opt h.sum);
          ("min", Json.float_opt h.min);
          ("max", Json.float_opt h.max);
          ("mean", Json.float_opt (h.sum /. Float.of_int (max 1 h.count)));
          ("p50", Json.float_opt h.p50);
          ("p95", Json.float_opt h.p95);
          ("p99", Json.float_opt h.p99);
          ( "buckets",
            Json.List
              (List.map
                 (fun (i, c) -> Json.List [ Json.Int i; Json.Int c ])
                 h.buckets) );
        ]

let value_of_json v =
  let ( let* ) = Result.bind in
  let str_field name =
    match Option.bind (Json.member name v) Json.to_string_opt with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "missing field %S" name)
  in
  let int_field name =
    match Json.member name v with
    | Some (Json.Int i) -> Ok i
    | _ -> Error (Printf.sprintf "field %S: expected int" name)
  in
  let float_field name =
    match Option.bind (Json.member name v) Json.to_float_opt with
    | Some f -> Ok f
    | None -> (
        (* non-finite floats serialize as null *)
        match Json.member name v with
        | Some Json.Null -> Ok Float.nan
        | _ -> Error (Printf.sprintf "field %S: expected number" name))
  in
  let* ty = str_field "type" in
  match ty with
  | "counter" ->
      let* c = int_field "value" in
      Ok (Counter c)
  | "gauge" ->
      let* g = float_field "value" in
      Ok (Gauge g)
  | "histogram" ->
      let* count = int_field "count" in
      let* sum = float_field "sum" in
      let* mn = float_field "min" in
      let* mx = float_field "max" in
      let* buckets =
        match Option.bind (Json.member "buckets" v) Json.to_list_opt with
        | None -> Ok [] (* tolerated: summary-only histogram *)
        | Some l ->
            let rec go acc = function
              | [] -> Ok (List.rev acc)
              | Json.List [ Json.Int i; Json.Int c ] :: rest ->
                  go ((i, c) :: acc) rest
              | _ -> Error "field \"buckets\": expected [index, count] pairs"
            in
            go [] l
      in
      let dense = dense_of_sparse buckets in
      Ok (Histogram (summary_of_dense ~count ~sum ~min:mn ~max:mx dense))
  | t -> Error (Printf.sprintf "unknown instrument type %S" t)

let to_json () =
  Json.Obj (List.map (fun (name, v) -> (name, value_to_json v)) (snapshot ()))
