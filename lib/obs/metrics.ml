type histogram = { count : int; sum : float; min : float; max : float }

type value = Counter of int | Gauge of float | Histogram of histogram

let registry : (string, value) Hashtbl.t = Hashtbl.create 64

let kind_error name =
  invalid_arg
    (Printf.sprintf "Metrics: %S is already bound to another instrument kind"
       name)

let incr ?(by = 1) name =
  match Hashtbl.find_opt registry name with
  | None -> Hashtbl.replace registry name (Counter by)
  | Some (Counter c) -> Hashtbl.replace registry name (Counter (c + by))
  | Some _ -> kind_error name

let set_gauge name x =
  match Hashtbl.find_opt registry name with
  | None | Some (Gauge _) -> Hashtbl.replace registry name (Gauge x)
  | Some _ -> kind_error name

let observe name x =
  match Hashtbl.find_opt registry name with
  | None ->
      Hashtbl.replace registry name
        (Histogram { count = 1; sum = x; min = x; max = x })
  | Some (Histogram h) ->
      Hashtbl.replace registry name
        (Histogram
           {
             count = h.count + 1;
             sum = h.sum +. x;
             min = Float.min h.min x;
             max = Float.max h.max x;
           })
  | Some _ -> kind_error name

let get name = Hashtbl.find_opt registry name

let snapshot () =
  Hashtbl.fold (fun name v acc -> (name, v) :: acc) registry []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let reset () = Hashtbl.reset registry

let pp fmt () =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun (name, v) ->
      match v with
      | Counter c -> Format.fprintf fmt "%-36s counter %12d@," name c
      | Gauge g -> Format.fprintf fmt "%-36s gauge   %12g@," name g
      | Histogram h ->
          Format.fprintf fmt
            "%-36s hist    %12d obs  mean %.4g  min %.4g  max %.4g@," name
            h.count
            (h.sum /. Float.of_int (max 1 h.count))
            h.min h.max)
    (snapshot ());
  Format.fprintf fmt "@]"

let to_json () =
  Json.Obj
    (List.map
       (fun (name, v) ->
         ( name,
           match v with
           | Counter c -> Json.Obj [ ("type", Json.String "counter"); ("value", Json.Int c) ]
           | Gauge g -> Json.Obj [ ("type", Json.String "gauge"); ("value", Json.float_opt g) ]
           | Histogram h ->
               Json.Obj
                 [
                   ("type", Json.String "histogram");
                   ("count", Json.Int h.count);
                   ("sum", Json.float_opt h.sum);
                   ("min", Json.float_opt h.min);
                   ("max", Json.float_opt h.max);
                   ( "mean",
                     Json.float_opt (h.sum /. Float.of_int (max 1 h.count)) );
                 ] ))
       (snapshot ()))
