(** Hierarchical tracing for the Congested Clique stack.

    A trace is a tree of {e spans} (named, timed regions of execution) plus a
    flat, time-ordered list of {e net events} (one per metered {!Cc_clique.Net}
    primitive — exchanges, broadcasts, analytic charges). Spans record three
    kinds of cost:

    - wall-clock time, from an injectable clock (deterministic in tests);
    - GC allocation (minor + major words allocated while the span was open);
    - simulated network cost — the rounds / messages / words booked by the
      metering layer while the span was open, attributed to {e every} open
      span on the stack. Per-phase round attribution therefore nests: a
      phase span's rounds include its children's, and the round totals of a
      run's top-level spans sum to [Net.rounds].

    Tracing is {b off by default and zero-cost when off}: [with_span] without
    an installed collector is a single [ref] read plus the wrapped call, and
    no event is recorded. Observability never perturbs the simulation — it
    draws no randomness and never touches the ledger, so an instrumented run
    is bit-identical to a bare one.

    Exporters: a human-readable span tree ({!pp_tree}), JSON-lines
    ({!to_jsonl}), and Chrome [trace_event] JSON ({!to_chrome_json}) loadable
    in [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}.

    {b Process-locality.} The active collector is per-OS-process: spans
    opened inside an [Mpproc] transport worker land in {e that worker's}
    collector, not the parent's. Workers ship completed top-level span
    aggregates (name, call count, wall seconds) to the parent inside their
    telemetry report, merged under [worker.<shard>.span.*]; see
    {!Cc_obs.Telemetry}. Full remote span trees are not reconstructed. *)

type span = {
  id : int;
  name : string;
  args : (string * string) list;  (** static key/value annotations. *)
  depth : int;  (** 0 for top-level spans. *)
  start_ts : float;  (** clock seconds at open. *)
  mutable stop_ts : float;  (** clock seconds at close. *)
  mutable alloc_words : float;  (** GC words allocated inside the span. *)
  mutable net_rounds : float;  (** rounds booked while the span was open. *)
  mutable net_messages : int;
  mutable net_words : int;
  mutable net_max_load : int;
      (** largest single-primitive per-machine load (words) booked while the
          span was open — the congestion that drove the span's rounds. *)
  mutable children : span list;  (** completed children, in start order. *)
}

type event = {
  ts : float;  (** clock seconds. *)
  span_id : int option;  (** innermost open span, if any. *)
  kind : string;  (** primitive: ["exchange"], ["broadcast"], ... *)
  label : string;  (** the ledger label the cost was booked under. *)
  rounds : float;
  messages : int;
  words : int;
  max_load : int;
      (** maximum words any one machine sent or received in this primitive
          (0 for analytic charges). *)
  round_clock : float;  (** [Net.rounds] immediately after booking. *)
}

type t

(** [create ?clock ?max_events ()] builds an empty collector. [clock] returns
    seconds (default [Unix.gettimeofday]; inject a counter for deterministic
    tests). At most [max_events] net events are kept (default [200_000]);
    excess events still update span totals but are dropped from the timeline
    and counted in {!dropped_events}. *)
val create : ?clock:(unit -> float) -> ?max_events:int -> unit -> t

(** [install t] makes [t] the process-wide active collector. *)
val install : t -> unit

(** [uninstall ()] deactivates tracing (spans become no-ops again). *)
val uninstall : unit -> unit

val enabled : unit -> bool
val current : unit -> t option

(** [with_trace t f] installs [t] for the duration of [f], restoring the
    previously active collector (if any) afterwards, exceptions included. *)
val with_trace : t -> (unit -> 'a) -> 'a

(** [with_span ?args name f] runs [f] inside a span named [name]. Without an
    active collector this is just [f ()]. The span is closed (and recorded)
    even if [f] raises. *)
val with_span : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a

(** [instant ?args name] records a zero-duration marker event attributed to
    the innermost open span. No-op without an active collector. *)
val instant : ?args:(string * string) list -> string -> unit

(** [net_event ~kind ~label ~rounds ~messages ~words ?max_load ~round_clock ()]
    feeds one metered primitive into the active collector: the cost is added
    to every open span (with [max_load], default 0, folded into each span's
    running maximum) and appended to the event timeline. Called by the
    {!Cc_clique.Net} booking layer; no-op without an active collector. *)
val net_event :
  kind:string ->
  label:string ->
  rounds:float ->
  messages:int ->
  words:int ->
  ?max_load:int ->
  round_clock:float ->
  unit ->
  unit

(** {1 Inspection} *)

(** [roots t] is the completed top-level spans, in start order. Spans still
    open are not included. *)
val roots : t -> span list

(** [events t] is the recorded net-event timeline, in order. *)
val events : t -> event list

(** [dropped_events t] counts events beyond [max_events] that were dropped
    from the timeline (span totals still include them). *)
val dropped_events : t -> int

(** [total_rounds t] sums [net_rounds] over the top-level spans. *)
val total_rounds : t -> float

(** {1 Exporters} *)

(** [pp_tree fmt t] renders the span tree with per-span wall-clock,
    allocation, and rounds/messages/words. *)
val pp_tree : Format.formatter -> t -> unit

(** [to_chrome_json t] is Chrome [trace_event] JSON ([{"traceEvents": ...}]):
    spans as complete (["ph":"X"]) events with microsecond timestamps
    relative to the trace start, net events as instant (["ph":"i"]) events
    carrying rounds/words in [args]. *)
val to_chrome_json : t -> string

(** [to_jsonl t] is one JSON object per line: every span (depth-first, in
    start order) then every net event. *)
val to_jsonl : t -> string
