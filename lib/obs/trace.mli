(** Hierarchical tracing for the Congested Clique stack.

    A trace is a tree of {e spans} (named, timed regions of execution) plus a
    flat, time-ordered list of {e net events} (one per metered {!Cc_clique.Net}
    primitive — exchanges, broadcasts, analytic charges). Spans record three
    kinds of cost:

    - wall-clock time, from an injectable clock (deterministic in tests);
    - GC allocation (minor + major words allocated while the span was open);
    - simulated network cost — the rounds / messages / words booked by the
      metering layer while the span was open, attributed to {e every} open
      span on the stack. Per-phase round attribution therefore nests: a
      phase span's rounds include its children's, and the round totals of a
      run's top-level spans sum to [Net.rounds].

    Tracing is {b off by default and zero-cost when off}: [with_span] without
    an installed collector is a single [ref] read plus the wrapped call, and
    no event is recorded. Observability never perturbs the simulation — it
    draws no randomness and never touches the ledger, so an instrumented run
    is bit-identical to a bare one.

    Exporters: a human-readable span tree ({!pp_tree}), JSON-lines
    ({!to_jsonl}, reloadable with {!of_jsonl}), and Chrome [trace_event] JSON
    ({!to_chrome_json}) loadable in [chrome://tracing] or
    {{:https://ui.perfetto.dev}Perfetto}.

    {b Process-locality and distributed reconstruction.} The active collector
    is per-OS-process: spans opened inside an [Mpproc] transport worker land
    in {e that worker's} collector, not the parent's. Workers ship their
    {b complete} span trees and events incrementally ({!drain_roots} /
    {!drain_events}) inside their telemetry reports on [Status] heartbeats
    and the final pre-[Shutdown] flush; the supervisor rebases the remote
    timestamps into its own clock (offset estimated from the heartbeat round
    trip, see DESIGN.md §13) and merges them into the parent collector as
    per-shard {e process lanes} ({!add_remote_span}). Span ids never collide
    across processes because every worker's collector starts at a
    parent-assigned id base ([?first_id]). One merged collector therefore
    holds the whole system — supervisor plus every shard — and the exporters
    render each lane as its own process. Flattened top-level span aggregates
    additionally flow through {!Cc_obs.Telemetry} as [worker.<shard>.span.*]
    metrics. *)

type span = {
  id : int;
  name : string;
  mutable args : (string * string) list;
      (** key/value annotations; set at open, optionally extended at close. *)
  depth : int;  (** 0 for top-level spans. *)
  start_ts : float;  (** clock seconds at open. *)
  mutable stop_ts : float;  (** clock seconds at close. *)
  mutable alloc_words : float;  (** GC words allocated inside the span. *)
  mutable net_rounds : float;  (** rounds booked while the span was open. *)
  mutable net_messages : int;
  mutable net_words : int;
  mutable net_max_load : int;
      (** largest single-primitive per-machine load (words) booked while the
          span was open — the congestion that drove the span's rounds. *)
  mutable children : span list;  (** completed children, in start order. *)
}

type event = {
  ts : float;  (** clock seconds. *)
  span_id : int option;  (** innermost open span, if any. *)
  kind : string;  (** primitive: ["exchange"], ["broadcast"], ... *)
  label : string;  (** the ledger label the cost was booked under. *)
  rounds : float;
  messages : int;
  words : int;
  max_load : int;
      (** maximum words any one machine sent or received in this primitive
          (0 for analytic charges). *)
  round_clock : float;  (** [Net.rounds] immediately after booking. *)
}

type t

(** [create ?clock ?max_events ?first_id ()] builds an empty collector.
    [clock] returns seconds (default [Unix.gettimeofday]; inject a counter
    for deterministic tests). At most [max_events] net events are kept
    (default [200_000]); excess events still update span totals but are
    dropped from the timeline and counted in {!dropped_events}. [first_id]
    (default 0) is the id of the first span — transport workers receive a
    disjoint id base from the supervisor so merged traces never collide. *)
val create : ?clock:(unit -> float) -> ?max_events:int -> ?first_id:int -> unit -> t

(** [install t] makes [t] the process-wide active collector. *)
val install : t -> unit

(** [uninstall ()] deactivates tracing (spans become no-ops again). *)
val uninstall : unit -> unit

val enabled : unit -> bool
val current : unit -> t option

(** [with_trace t f] installs [t] for the duration of [f], restoring the
    previously active collector (if any) afterwards, exceptions included. *)
val with_trace : t -> (unit -> 'a) -> 'a

(** [with_span ?args name f] runs [f] inside a span named [name]. Without an
    active collector this is just [f ()]. The span is closed (and recorded)
    even if [f] raises. *)
val with_span : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a

(** [open_span t ?args name] pushes an open span by hand — for callers whose
    span boundaries are message-driven rather than lexically scoped (the
    transport worker's per-shard book batches). Pair with {!close_span}. *)
val open_span : t -> ?args:(string * string) list -> string -> unit

(** [close_span ?args t] closes the innermost open span, appending [args]
    (default none) to its annotations — how a batch span records its final
    count. Ignored when no span is open. *)
val close_span : ?args:(string * string) list -> t -> unit

(** [instant ?args name] records a zero-duration marker event attributed to
    the innermost open span. No-op without an active collector. *)
val instant : ?args:(string * string) list -> string -> unit

(** [net_event ~kind ~label ~rounds ~messages ~words ?max_load ~round_clock ()]
    feeds one metered primitive into the active collector: the cost is added
    to every open span (with [max_load], default 0, folded into each span's
    running maximum) and appended to the event timeline. Called by the
    {!Cc_clique.Net} booking layer; no-op without an active collector. *)
val net_event :
  kind:string ->
  label:string ->
  rounds:float ->
  messages:int ->
  words:int ->
  ?max_load:int ->
  round_clock:float ->
  unit ->
  unit

(** {1 Inspection} *)

(** [roots t] is the completed local top-level spans, in start order. Spans
    still open are not included. *)
val roots : t -> span list

(** [events t] is the recorded local net-event timeline, in order. *)
val events : t -> event list

(** [dropped_events t] counts events beyond [max_events] that were dropped
    from the timeline (span totals still include them). *)
val dropped_events : t -> int

(** [total_rounds t] sums [net_rounds] over the local top-level spans. *)
val total_rounds : t -> float

(** {1 Incremental shipping (worker side)} *)

(** [drain_roots t] removes and returns the completed local top-level spans,
    in start order. Each completed span is returned by exactly one drain —
    the exactly-once contract the worker's heartbeat shipping relies on.
    Spans still open stay and complete later. *)
val drain_roots : t -> span list

(** [drain_events t] removes and returns the recorded net events, in order
    (same exactly-once contract). The dropped-events counter is kept. *)
val drain_events : t -> event list

(** {1 Process lanes (supervisor side)} *)

(** The merged collector renders as one process per lane. The local lane —
    the collector's own spans and events — always has pid {!local_pid}. *)
val local_pid : int

(** [set_process_name t name] names the local lane (default ["main"]). *)
val set_process_name : t -> string -> unit

(** [add_remote_span t ~pid ?process span] appends a completed root [span]
    (its subtree included) to the lane [pid], creating the lane (named
    [process], default ["pid <pid>"]) on first use. The caller is
    responsible for rebasing timestamps ({!rebase_span}) and for id
    uniqueness (parent-assigned [first_id] bases). *)
val add_remote_span : t -> pid:int -> ?process:string -> span -> unit

(** [add_remote_event t ~pid ?process event] appends an event to lane
    [pid]. *)
val add_remote_event : t -> pid:int -> ?process:string -> event -> unit

(** [lanes t] is every lane — the local one (pid {!local_pid}) first, then
    remote lanes sorted by pid — as [(pid, process name, completed roots,
    events)]. *)
val lanes : t -> (int * string * span list * event list) list

(** [rebase_span ~offset span] is a copy of [span] (subtree included) with
    every timestamp shifted by [offset] seconds — how the supervisor maps a
    worker's clock into its own. *)
val rebase_span : offset:float -> span -> span

val rebase_event : offset:float -> event -> event

(** {1 Wire codec}

    Lossless JSON forms for shipping spans and events across the transport:
    timestamps serialize as hex-float strings so rebasing works on exact
    bits. Used by {!Cc_obs.Telemetry}. *)

val span_to_json : span -> Json.t
val span_of_json : Json.t -> (span, string) result
val event_to_json : event -> Json.t
val event_of_json : Json.t -> (event, string) result

(** {1 Exporters} *)

(** [pp_tree fmt t] renders the local span tree with per-span wall-clock,
    allocation, and rounds/messages/words. *)
val pp_tree : Format.formatter -> t -> unit

(** [to_chrome_json t] is Chrome [trace_event] JSON ([{"traceEvents": ...}]):
    one process per lane (named by [process_name] metadata events), spans as
    complete (["ph":"X"]) events with microsecond timestamps relative to the
    trace start, net events as instant (["ph":"i"]) events carrying
    rounds/words in [args]. *)
val to_chrome_json : t -> string

(** [to_jsonl t] is one JSON object per line: a [process] line per lane,
    then every span (depth-first, in start order) and every net event, each
    carrying its lane [pid]. Timestamps are seconds relative to the trace
    origin. The format {!of_jsonl} reloads. *)
val to_jsonl : t -> string

(** [of_jsonl s] reconstructs a merged collector from a {!to_jsonl} artifact
    — lanes, span trees (rebuilt from the depth-first flattening), and
    events — for offline analysis ([ccprof timeline] / [critical-path]).
    The error names the first offending line. *)
val of_jsonl : string -> (t, string) result
