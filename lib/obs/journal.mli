(** Bounded, structured supervision-event journal.

    Every health transition in the multi-process transport — worker start and
    stop, kill detected, heartbeat timeout, respawn attempt, checkpoint
    install, reroute, degrade — is appended here as one timestamped record
    carrying the cause, the worker/shard involved, the recovery attempt and
    its remaining budget, and the simulated round clock at the time. The log
    is bounded (drop-oldest beyond [cap], with a counter of what was lost) so
    a long-running supervisor can keep one without unbounded growth.

    The journal is pure observability: recording draws no randomness and
    never touches transport or model state, so runs with and without a
    journal are bit-identical.

    Export is JSONL, one event per line ([cctree --health-log],
    [ccreplay record --health-log]); [ccprof events] renders and gates on
    the same format. *)

type event = {
  seq : int;  (** global append index, monotone even across drops. *)
  t_s : float;  (** seconds since the journal was created. *)
  kind : string;
      (** ["worker_start"], ["worker_stop"], ["kill"],
          ["heartbeat_timeout"], ["respawn"], ["install"], ["reroute"],
          ["degrade"]. *)
  worker : int option;  (** worker slot id, when one is involved. *)
  shard : int option;  (** shard id, when one is involved. *)
  attempt : int option;  (** recovery attempt number (1-based). *)
  budget : int option;  (** attempts remaining after this one. *)
  round : float;  (** simulated round clock at record time. *)
  cause : string;  (** free-form detail (["sigkill"], ["status timeout"]). *)
}

type t

(** [create ?cap ?clock ()] builds an empty journal holding at most [cap]
    events (default [4096]; oldest dropped first). [clock] returns seconds
    (default [Unix.gettimeofday]; inject a counter for deterministic
    tests). *)
val create : ?cap:int -> ?clock:(unit -> float) -> unit -> t

(** [record t ?worker ?shard ?attempt ?budget ?round ?cause kind] appends one
    event ([round] defaults to [0.], [cause] to [""]). *)
val record :
  t ->
  ?worker:int ->
  ?shard:int ->
  ?attempt:int ->
  ?budget:int ->
  ?round:float ->
  ?cause:string ->
  string ->
  unit

(** [events t] is the retained events, oldest first. *)
val events : t -> event list

(** [length t] is the number of retained events. *)
val length : t -> int

(** [dropped t] counts events evicted by the [cap] bound. *)
val dropped : t -> int

(** [is_clean t] is [true] when every retained event is a plain
    ["worker_start"] / ["worker_stop"] — i.e. the run needed no recovery.
    The clean-run CI gate hard-fails on [false]. *)
val is_clean : t -> bool

(** {1 Serialization} *)

val event_to_json : event -> Json.t
val event_of_json : Json.t -> (event, string) result

(** [to_jsonl t] is one JSON object per line, oldest first. *)
val to_jsonl : t -> string

(** [of_jsonl s] parses a journal export back into events. The error names
    the first offending line — except a final line that is not JSON at all,
    which is treated as a torn tail (the writer died mid-append) and
    dropped, provided at least one clean event precedes it. A parseable
    line of the wrong shape still errors, wherever it sits. *)
val of_jsonl : string -> (event list, string) result
