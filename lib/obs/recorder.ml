(* Flight recorder: a canonical, bounded, digest-chained log of every
   primitive a Net books.

   Each record is serialized to one compact JSON line the moment it is
   added, and the running digest is an FNV-1a 64-bit fold over those exact
   line bytes (header line first, then every record line, in order). Two
   runs therefore agree on the digest iff they agree on every serialized
   byte of every event — and a reloaded log can re-fold the raw lines it
   read and verify the trailer without ever re-serializing a float. *)

type record = {
  seq : int;
  kind : string;
  label : string;
  round_start : float;
  round_end : float;
  rounds : float;
  messages : int;
  words : int;
  max_load : int;
  sent : int array;
  recv : int array;
  retransmits : int;
  dropped : int;
}

type t = {
  machines : int;
  max_records : int;
  mutable rev_records : record list;
  mutable stored : int;
  mutable total : int;
  mutable digest : int64;
}

(* --- FNV-1a, 64-bit --- *)

let fnv_basis = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv64 h s =
  let h = ref h in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  !h

(* --- canonical serialization --- *)

let header_line ~machines =
  Json.to_string
    (Json.Obj
       [
         ("type", Json.String "recorder");
         ("version", Json.Int 1);
         ("machines", Json.Int machines);
       ])

let json_of_record r =
  let ints a =
    Json.List (Array.to_list (Array.map (fun i -> Json.Int i) a))
  in
  Json.Obj
    [
      ("type", Json.String "record");
      ("seq", Json.Int r.seq);
      ("kind", Json.String r.kind);
      ("label", Json.String r.label);
      ("round_start", Json.float_opt r.round_start);
      ("round_end", Json.float_opt r.round_end);
      ("rounds", Json.float_opt r.rounds);
      ("messages", Json.Int r.messages);
      ("words", Json.Int r.words);
      ("max_load", Json.Int r.max_load);
      ("sent", ints r.sent);
      ("recv", ints r.recv);
      ("retransmits", Json.Int r.retransmits);
      ("dropped", Json.Int r.dropped);
    ]

let line_of_record r = Json.to_string (json_of_record r)

(* --- construction --- *)

let create ?(max_records = 200_000) ~machines () =
  if machines < 1 then invalid_arg "Recorder.create: machines must be >= 1";
  if max_records < 0 then invalid_arg "Recorder.create: negative max_records";
  let t =
    {
      machines;
      max_records;
      rev_records = [];
      stored = 0;
      total = 0;
      digest = fnv_basis;
    }
  in
  t.digest <- fnv64 t.digest (header_line ~machines);
  t

let add t ~kind ~label ~rounds ~round_end ~messages ~words ~max_load ~sent
    ~recv ~retransmits ~dropped =
  if
    Array.length sent <> Array.length recv
    || (Array.length sent <> 0 && Array.length sent <> t.machines)
  then
    invalid_arg
      "Recorder.add: per-machine arrays must be empty or one slot per machine";
  let r =
    {
      seq = t.total;
      kind;
      label;
      round_start = round_end -. rounds;
      round_end;
      rounds;
      messages;
      words;
      max_load;
      sent = Array.copy sent;
      recv = Array.copy recv;
      retransmits;
      dropped;
    }
  in
  t.digest <- fnv64 t.digest (line_of_record r);
  t.total <- t.total + 1;
  if t.stored < t.max_records then begin
    t.rev_records <- r :: t.rev_records;
    t.stored <- t.stored + 1
  end

(* --- inspection --- *)

let machines t = t.machines
let records t = List.rev t.rev_records
let total t = t.total
let stored t = t.stored
let dropped_records t = t.total - t.stored
let digest_hex t = Printf.sprintf "fnv64:%016Lx" t.digest

(* --- JSONL export / reload --- *)

let to_jsonl t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (header_line ~machines:t.machines);
  Buffer.add_char buf '\n';
  List.iter
    (fun r ->
      Buffer.add_string buf (line_of_record r);
      Buffer.add_char buf '\n')
    (records t);
  Buffer.add_string buf
    (Json.to_string
       (Json.Obj
          [
            ("type", Json.String "digest");
            ("digest", Json.String (digest_hex t));
            ("records", Json.Int t.total);
            ("stored", Json.Int t.stored);
          ]));
  Buffer.add_char buf '\n';
  Buffer.contents buf

type loaded = {
  log : t;
  trailer_digest : string option;
  trailer_records : int option;
}

let member_int key v =
  match Json.member key v with
  | Some (Json.Int i) -> Some i
  | Some (Json.Float f) when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let member_float key v = Option.bind (Json.member key v) Json.to_float_opt
let member_str key v = Option.bind (Json.member key v) Json.to_string_opt

let member_ints key v =
  match Json.member key v with
  | Some (Json.List xs) ->
      let ok = ref true in
      let arr =
        Array.of_list
          (List.map
             (function
               | Json.Int i -> i
               | Json.Float f when Float.is_integer f -> int_of_float f
               | _ ->
                   ok := false;
                   0)
             xs)
      in
      if !ok then Some arr else None
  | _ -> None

let of_jsonl s =
  let ( let* ) = Result.bind in
  let lines =
    String.split_on_char '\n' s |> List.filter (fun l -> String.trim l <> "")
  in
  let parse_line i l =
    match Json.of_string l with
    | Ok v -> Ok v
    | Error msg -> Error (Printf.sprintf "line %d: %s" (i + 1) msg)
  in
  match lines with
  | [] -> Error "empty recorder log"
  | header :: rest ->
      let* hv = parse_line 0 header in
      if member_str "type" hv <> Some "recorder" then
        Error "not a recorder log (missing recorder header)"
      else if member_int "version" hv <> Some 1 then
        Error "unsupported recorder log version"
      else
        let* machines =
          match member_int "machines" hv with
          | Some m when m >= 1 -> Ok m
          | _ -> Error "recorder header: bad machines field"
        in
        let t =
          {
            machines;
            max_records = List.length rest;
            rev_records = [];
            stored = 0;
            total = 0;
            digest = fnv64 fnv_basis header;
          }
        in
        let trailer_digest = ref None and trailer_records = ref None in
        let parse_record i line v =
          let req name = function
            | Some x -> Ok x
            | None ->
                Error
                  (Printf.sprintf "line %d: record missing field %s" (i + 1)
                     name)
          in
          let* seq = req "seq" (member_int "seq" v) in
          let* kind = req "kind" (member_str "kind" v) in
          let* label = req "label" (member_str "label" v) in
          let* round_start = req "round_start" (member_float "round_start" v) in
          let* round_end = req "round_end" (member_float "round_end" v) in
          let* rounds = req "rounds" (member_float "rounds" v) in
          let* messages = req "messages" (member_int "messages" v) in
          let* words = req "words" (member_int "words" v) in
          let* max_load = req "max_load" (member_int "max_load" v) in
          let* sent = req "sent" (member_ints "sent" v) in
          let* recv = req "recv" (member_ints "recv" v) in
          let* retransmits = req "retransmits" (member_int "retransmits" v) in
          let* dropped = req "dropped" (member_int "dropped" v) in
          t.rev_records <-
            {
              seq;
              kind;
              label;
              round_start;
              round_end;
              rounds;
              messages;
              words;
              max_load;
              sent;
              recv;
              retransmits;
              dropped;
            }
            :: t.rev_records;
          t.stored <- t.stored + 1;
          t.total <- t.total + 1;
          (* The digest chain folds the raw line bytes exactly as read, so
             verification is immune to float re-serialization drift. *)
          t.digest <- fnv64 t.digest line;
          Ok ()
        in
        let rec go i = function
          | [] -> Ok ()
          | line :: rest -> (
              let* v = parse_line i line in
              match member_str "type" v with
              | Some "record" ->
                  let* () = parse_record i line v in
                  go (i + 1) rest
              | Some "digest" ->
                  trailer_digest := member_str "digest" v;
                  trailer_records := member_int "records" v;
                  if rest <> [] then
                    Error
                      (Printf.sprintf "line %d: lines after digest trailer"
                         (i + 2))
                  else Ok ()
              | _ -> Error (Printf.sprintf "line %d: unknown line type" (i + 1))
              )
        in
        let* () = go 1 rest in
        Ok
          {
            log = t;
            trailer_digest = !trailer_digest;
            trailer_records = !trailer_records;
          }

let verify { log; trailer_digest; trailer_records } =
  match trailer_digest with
  | None -> Error "missing digest trailer"
  | Some d ->
      if trailer_records <> Some log.total then
        Error
          (Printf.sprintf
             "log is truncated (%d of %s records stored); digest not \
              verifiable"
             log.total
             (match trailer_records with
             | Some r -> string_of_int r
             | None -> "?"))
      else if String.equal (digest_hex log) d then Ok d
      else
        Error
          (Printf.sprintf "digest mismatch: trailer says %s, recomputed %s" d
             (digest_hex log))

(* --- divergence diffing --- *)

type divergence = { seq : int; field : string; a : string; b : string }

let pp_ints a =
  "["
  ^ String.concat " " (Array.to_list (Array.map string_of_int a))
  ^ "]"

let diff_record ra rb =
  let fields =
    [
      ("kind", ra.kind, rb.kind);
      ("label", ra.label, rb.label);
      ( "rounds",
        Printf.sprintf "%.17g" ra.rounds,
        Printf.sprintf "%.17g" rb.rounds );
      ( "round_start",
        Printf.sprintf "%.17g" ra.round_start,
        Printf.sprintf "%.17g" rb.round_start );
      ( "round_end",
        Printf.sprintf "%.17g" ra.round_end,
        Printf.sprintf "%.17g" rb.round_end );
      ("messages", string_of_int ra.messages, string_of_int rb.messages);
      ("words", string_of_int ra.words, string_of_int rb.words);
      ("max_load", string_of_int ra.max_load, string_of_int rb.max_load);
      ("sent", pp_ints ra.sent, pp_ints rb.sent);
      ("recv", pp_ints ra.recv, pp_ints rb.recv);
      ( "retransmits",
        string_of_int ra.retransmits,
        string_of_int rb.retransmits );
      ("dropped", string_of_int ra.dropped, string_of_int rb.dropped);
    ]
  in
  List.find_map
    (fun (field, a, b) ->
      if String.equal a b then None else Some { seq = ra.seq; field; a; b })
    fields

let diff ta tb =
  if ta.machines <> tb.machines then
    Some
      {
        seq = -1;
        field = "machines";
        a = string_of_int ta.machines;
        b = string_of_int tb.machines;
      }
  else
    let rec go ra rb =
      match (ra, rb) with
      | [], [] -> None
      | (r : record) :: _, [] ->
          Some
            {
              seq = r.seq;
              field = "presence";
              a = r.kind ^ " " ^ r.label;
              b = "absent";
            }
      | [], (r : record) :: _ ->
          Some
            {
              seq = r.seq;
              field = "presence";
              a = "absent";
              b = r.kind ^ " " ^ r.label;
            }
      | r1 :: rest1, r2 :: rest2 -> (
          match diff_record r1 r2 with
          | Some d -> Some d
          | None -> go rest1 rest2)
    in
    go (records ta) (records tb)

(* --- ASCII per-round timeline --- *)

let intensity = [| '.'; ':'; '-'; '='; '+'; '*'; '#'; '%'; '@' |]

let timeline ?(width = 64) t =
  let width = max 8 width in
  let rs = records t in
  let span = List.fold_left (fun acc r -> Float.max acc r.round_end) 0.0 rs in
  if rs = [] || span <= 0.0 then "recorder timeline: no rounds booked\n"
  else begin
    let bucket = span /. float_of_int width in
    (* Per label (in first-appearance order): rounds of overlap with each
       of the [width] equal buckets of the run's round interval. *)
    let order = ref [] in
    let mass : (string, float array) Hashtbl.t = Hashtbl.create 16 in
    let lane label =
      match Hashtbl.find_opt mass label with
      | Some m -> m
      | None ->
          let m = Array.make width 0.0 in
          Hashtbl.add mass label m;
          order := label :: !order;
          m
    in
    List.iter
      (fun r ->
        if r.rounds > 0.0 then begin
          let m = lane r.label in
          let b0 = max 0 (int_of_float (r.round_start /. bucket)) in
          let b1 =
            min (width - 1)
              (int_of_float ((r.round_end -. (bucket *. 1e-9)) /. bucket))
          in
          for b = b0 to b1 do
            let lo = Float.max r.round_start (float_of_int b *. bucket)
            and hi = Float.min r.round_end (float_of_int (b + 1) *. bucket) in
            if hi > lo then m.(b) <- m.(b) +. (hi -. lo)
          done
        end)
      rs;
    let labels = List.rev !order in
    let name_w =
      List.fold_left (fun acc l -> max acc (String.length l)) 5 labels
      |> min 28
    in
    let buf = Buffer.create 1024 in
    Buffer.add_string buf
      (Printf.sprintf
         "per-round timeline: %.1f rounds, %d records, %d buckets of %.2f \
          rounds\n"
         span t.total width bucket);
    List.iter
      (fun label ->
        let m = Hashtbl.find mass label in
        let short =
          if String.length label <= name_w then label
          else String.sub label 0 (name_w - 1) ^ "~"
        in
        Buffer.add_string buf (Printf.sprintf "%-*s |" name_w short);
        Array.iter
          (fun v ->
            if v <= 0.0 then Buffer.add_char buf ' '
            else begin
              let frac = Float.min 1.0 (v /. bucket) in
              let i =
                min
                  (Array.length intensity - 1)
                  (int_of_float (frac *. float_of_int (Array.length intensity)))
              in
              Buffer.add_char buf intensity.(i)
            end)
          m;
        Buffer.add_string buf "|\n")
      labels;
    Buffer.add_string buf
      (Printf.sprintf "%-*s |%s|\n" name_w "round"
         (let axis = Bytes.make width '-' in
          Bytes.set axis 0 '0';
          let last = Printf.sprintf "%.0f" span in
          if String.length last < width - 2 then
            Bytes.blit_string last 0 axis (width - String.length last)
              (String.length last);
          Bytes.to_string axis));
    Buffer.contents buf
  end
