(* Online invariant checking over the Net event stream.

   The monitor consumes the same canonical records the flight recorder
   captures and checks, record by record, that the simulator respected the
   model: Lenzen's O(n)-words-per-machine-per-round routing budget, flow
   conservation per primitive kind, and a monotone round clock; at the end
   of a run the accumulated per-label costs are reconciled against the
   net's ledger. Violations are structured reports, mirrored into the
   Metrics registry and (when a collector is installed) the active Trace
   as instant events. *)

type violation = {
  invariant : string;
  seq : int option;
  label : string;
  machine : int option;
  round : float option;
  detail : string;
}

type acc = { mutable a_rounds : float; mutable a_messages : int; mutable a_words : int }

type t = {
  machines : int;
  mutable expected_round : float;
  mutable rev_violations : violation list;
  mutable count : int;
  by_label : (string, acc) Hashtbl.t;
  mutable acc_rounds : float;
  mutable acc_messages : int;
  mutable acc_words : int;
}

let eps = 1e-6

let create ~machines () =
  if machines < 1 then invalid_arg "Invariant.create: machines must be >= 1";
  {
    machines;
    expected_round = 0.0;
    rev_violations = [];
    count = 0;
    by_label = Hashtbl.create 16;
    acc_rounds = 0.0;
    acc_messages = 0;
    acc_words = 0;
  }

let acc_for t label =
  match Hashtbl.find_opt t.by_label label with
  | Some a -> a
  | None ->
      let a = { a_rounds = 0.0; a_messages = 0; a_words = 0 } in
      Hashtbl.add t.by_label label a;
      a

(* Register [vs] (in order): store, count, and mirror each into Metrics
   counters and a Trace instant event. *)
let report t vs =
  List.iter
    (fun v ->
      t.rev_violations <- v :: t.rev_violations;
      t.count <- t.count + 1;
      Metrics.incr "invariant.violations";
      Metrics.incr ("invariant." ^ v.invariant);
      Trace.instant
        ("invariant:" ^ v.invariant)
        ~args:
          ([ ("label", v.label); ("detail", v.detail) ]
          @ (match v.seq with
            | Some s -> [ ("seq", string_of_int s) ]
            | None -> [])
          @
          match v.machine with
          | Some m -> [ ("machine", string_of_int m) ]
          | None -> []))
    vs;
  vs

let sum = Array.fold_left ( + ) 0

let observe t (r : Recorder.record) =
  let vs = ref [] in
  let add ?machine invariant detail =
    vs :=
      {
        invariant;
        seq = Some r.Recorder.seq;
        label = r.Recorder.label;
        machine;
        round = Some r.Recorder.round_end;
        detail;
      }
      :: !vs
  in
  let n = t.machines in
  let { Recorder.kind; rounds; messages; words; max_load; sent; recv; _ } =
    r
  in
  let len = Array.length sent in
  let shaped = Array.length recv = len && (len = 0 || len = n) in
  if not shaped then
    add "shape"
      (Printf.sprintf
         "per-machine arrays have lengths %d/%d (expected 0 or %d)" len
         (Array.length recv) n);
  if rounds < -.eps || messages < 0 || words < 0 || max_load < 0 then
    add "shape" "negative cost field";
  (* Round clock: each record starts where the previous one ended and
     advances by exactly its own rounds. *)
  if Float.abs (r.Recorder.round_start -. t.expected_round) > eps then
    add "monotonic"
      (Printf.sprintf "round_start %g but previous record ended at %g"
         r.Recorder.round_start t.expected_round);
  if Float.abs (r.Recorder.round_end -. (r.Recorder.round_start +. rounds)) > eps
  then
    add "monotonic"
      (Printf.sprintf "round_end %g <> round_start %g + rounds %g"
         r.Recorder.round_end r.Recorder.round_start rounds);
  t.expected_round <- r.Recorder.round_end;
  if shaped && len = n then begin
    let sum_sent = sum sent and sum_recv = sum recv in
    (* Lenzen cap: in [rounds] rounds no machine may send or receive more
       than [rounds * n] words. *)
    let budget = rounds *. float_of_int n in
    let max_l = ref 0 in
    for i = 0 to n - 1 do
      let load = max sent.(i) recv.(i) in
      if load > !max_l then max_l := load;
      if float_of_int load > budget +. eps then
        add ~machine:i "lenzen_cap"
          (Printf.sprintf
             "machine %d moved %d words in %g rounds (budget %g = rounds x n)"
             i load rounds budget)
    done;
    if !max_l <> max_load then
      add "shape"
        (Printf.sprintf "max_load %d <> per-machine maximum %d" max_load !max_l);
    (* Flow conservation, per primitive kind (the metering layer books
       retransmission waves as ordinary exchanges, so drops never unbalance
       a booked record — they only add later [:retry] records). *)
    match kind with
    | "exchange" | "all_to_all" ->
        if sum_sent <> words || sum_recv <> words then
          add "conservation"
            (Printf.sprintf "sent %d / received %d words, booked %d" sum_sent
               sum_recv words)
    | "broadcast" ->
        if sum_recv <> words || sum_sent * (n - 1) <> words then
          add "conservation"
            (Printf.sprintf
               "broadcast payload %d, receipts %d, booked %d (n = %d)"
               sum_sent sum_recv words n)
    | "aggregate" ->
        if sum_sent <> words || sum_recv > sum_sent || sum_recv <= 0 then
          add "conservation"
            (Printf.sprintf
               "aggregate contributions %d (booked %d), delivered %d" sum_sent
               words sum_recv)
    | "charge" ->
        if sum_sent <> 0 || sum_recv <> 0 || words <> 0 then
          add "conservation" "analytic charge moved words"
    | k -> add "shape" (Printf.sprintf "unknown primitive kind %S" k)
  end
  else if len = 0 && String.equal kind "charge" && words <> 0 then
    add "conservation" "analytic charge booked words";
  (* Per-label accumulation for the end-of-run ledger reconciliation. *)
  let a = acc_for t r.Recorder.label in
  a.a_rounds <- a.a_rounds +. rounds;
  a.a_messages <- a.a_messages + messages;
  a.a_words <- a.a_words + words;
  t.acc_rounds <- t.acc_rounds +. rounds;
  t.acc_messages <- t.acc_messages + messages;
  t.acc_words <- t.acc_words + words;
  report t (List.rev !vs)

let check_ledger t ~ledger ~rounds ~messages ~words =
  let vs = ref [] in
  let add label detail =
    vs :=
      {
        invariant = "ledger";
        seq = None;
        label;
        machine = None;
        round = None;
        detail;
      }
      :: !vs
  in
  if
    Float.abs (t.acc_rounds -. rounds) > eps
    || t.acc_messages <> messages || t.acc_words <> words
  then
    add "<totals>"
      (Printf.sprintf
         "event stream saw %g rounds / %d messages / %d words, net totals \
          are %g / %d / %d"
         t.acc_rounds t.acc_messages t.acc_words rounds messages words);
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (label, l_rounds, l_messages, l_words) ->
      Hashtbl.replace seen label ();
      match Hashtbl.find_opt t.by_label label with
      | None ->
          add label
            (Printf.sprintf
               "ledger books %g rounds under a label the event stream never \
                saw"
               l_rounds)
      | Some a ->
          if
            Float.abs (a.a_rounds -. l_rounds) > eps
            || a.a_messages <> l_messages || a.a_words <> l_words
          then
            add label
              (Printf.sprintf
                 "events sum to %g rounds / %d messages / %d words, ledger \
                  says %g / %d / %d"
                 a.a_rounds a.a_messages a.a_words l_rounds l_messages l_words))
    ledger;
  Hashtbl.iter
    (fun label _ ->
      if not (Hashtbl.mem seen label) then
        add label "event stream booked under a label missing from the ledger")
    t.by_label;
  report t (List.rev !vs)

let violations t = List.rev t.rev_violations
let count t = t.count

let check_log ~machines records =
  let t = create ~machines () in
  List.iter (fun r -> ignore (observe t r)) records;
  violations t

let pp_violation fmt v =
  Format.fprintf fmt "[%s]%s%s label=%S%s: %s" v.invariant
    (match v.seq with
    | Some s -> Printf.sprintf " seq=%d" s
    | None -> "")
    (match v.round with
    | Some r -> Printf.sprintf " round=%g" r
    | None -> "")
    v.label
    (match v.machine with
    | Some m -> Printf.sprintf " machine=%d" m
    | None -> "")
    v.detail
