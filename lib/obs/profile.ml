type row = { label : string; sent : int array; recv : int array }

type t = {
  machines : int;
  rows : row list;
  total_sent : int array;
  total_recv : int array;
  total_words : int;
}

let peak_load row =
  let m = ref 0 in
  Array.iteri (fun i s -> m := max !m (max s row.recv.(i))) row.sent;
  !m

let create ~machines ?total_words rows =
  if machines < 1 then invalid_arg "Profile.create: need at least one machine";
  List.iter
    (fun r ->
      if Array.length r.sent <> machines || Array.length r.recv <> machines
      then
        invalid_arg
          (Printf.sprintf "Profile.create: row %S arrays must have length %d"
             r.label machines))
    rows;
  let total_sent = Array.make machines 0 and total_recv = Array.make machines 0 in
  List.iter
    (fun r ->
      Array.iteri
        (fun i s ->
          total_sent.(i) <- total_sent.(i) + s;
          total_recv.(i) <- total_recv.(i) + r.recv.(i))
        r.sent)
    rows;
  let sum = Array.fold_left ( + ) 0 in
  let total_words =
    match total_words with
    | Some w -> w
    | None -> max (sum total_sent) (sum total_recv)
  in
  let rows =
    List.sort
      (fun a b ->
        match compare (peak_load b) (peak_load a) with
        | 0 -> compare a.label b.label
        | c -> c)
      rows
  in
  { machines; rows; total_sent; total_recv; total_words }

let machine_load t i = max t.total_sent.(i) t.total_recv.(i)

let max_load t =
  let m = ref 0 in
  for i = 0 to t.machines - 1 do
    m := max !m (machine_load t i)
  done;
  !m

let mean_load t = float_of_int t.total_words /. float_of_int t.machines

let imbalance t =
  let mean = mean_load t in
  if mean <= 0.0 then 1.0 else float_of_int (max_load t) /. mean

let quantile t q =
  let loads =
    Array.init t.machines (fun i -> float_of_int (machine_load t i))
  in
  Array.sort compare loads;
  let q = Float.min 1.0 (Float.max 0.0 q) in
  let pos = q *. float_of_int (t.machines - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = int_of_float (Float.ceil pos) in
  let frac = pos -. float_of_int lo in
  (loads.(lo) *. (1.0 -. frac)) +. (loads.(hi) *. frac)

let hot ?(k = 3) t =
  let all = List.init t.machines (fun i -> (i, machine_load t i)) in
  let sorted =
    List.sort
      (fun (i, a) (j, b) -> match compare b a with 0 -> compare i j | c -> c)
      all
  in
  List.filteri (fun rank _ -> rank < k) sorted
  |> List.filter (fun (_, load) -> load > 0)

let summary_line t =
  Printf.sprintf
    "load: max %d  mean %.1f  p50 %.1f  p95 %.1f  imbalance %.2f%s"
    (max_load t) (mean_load t) (quantile t 0.5) (quantile t 0.95)
    (imbalance t)
    (match hot ~k:1 t with
    | (m, load) :: _ -> Printf.sprintf "  hot machine %d (%d words)" m load
    | [] -> "")

(* --- heatmap ----------------------------------------------------------- *)

let ramp = " .:-=+*#%@"

let intensity ~scale v =
  if v <= 0 then ramp.[0]
  else if scale <= 0 then ramp.[0]
  else
    let levels = String.length ramp - 1 in
    (* Any nonzero load is at least level 1 so traffic never disappears. *)
    let lvl = max 1 (v * levels / scale) in
    ramp.[min levels lvl]

let render ?(max_width = 64) t =
  let max_width = max 1 max_width in
  let bucket = (t.machines + max_width - 1) / max_width in
  let cols = (t.machines + bucket - 1) / bucket in
  let cell_of arr c =
    let m = ref 0 in
    for i = c * bucket to min (t.machines - 1) ((c + 1) * bucket - 1) do
      m := max !m arr.(i)
    done;
    !m
  in
  let row_cells row =
    Array.init cols (fun c -> max (cell_of row.sent c) (cell_of row.recv c))
  in
  let total_cells =
    Array.init cols (fun c -> max (cell_of t.total_sent c) (cell_of t.total_recv c))
  in
  let scale = Array.fold_left max 0 total_cells in
  let scale =
    List.fold_left
      (fun acc row -> Array.fold_left max acc (row_cells row))
      scale t.rows
  in
  let label_w =
    List.fold_left (fun acc r -> max acc (String.length r.label)) 5 t.rows
  in
  let label_w = min 32 label_w in
  let clip s = if String.length s > label_w then String.sub s 0 label_w else s in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "machine x label congestion heatmap — words, max(sent, recv)\n\
        %d machines%s; ramp %S scaled to max cell %d\n"
       t.machines
       (if bucket > 1 then Printf.sprintf " (%d per column)" bucket else "")
       ramp scale);
  let line label cells peak =
    Buffer.add_string buf (Printf.sprintf "%-*s |" label_w (clip label));
    Array.iter (fun v -> Buffer.add_char buf (intensity ~scale v)) cells;
    Buffer.add_string buf (Printf.sprintf "| %8d\n" peak)
  in
  Buffer.add_string buf
    (Printf.sprintf "%-*s |%s| %8s\n" label_w "label" (String.make cols '-')
       "peak");
  List.iter (fun row -> line row.label (row_cells row) (peak_load row)) t.rows;
  line "TOTAL" total_cells (max_load t);
  (match hot ~k:1 t with
  | (m, _) :: _ ->
      let col = m / bucket in
      Buffer.add_string buf
        (Printf.sprintf "%-*s  %s^ machine %d\n" label_w "" (String.make col ' ')
           m)
  | [] -> ());
  Buffer.add_string buf (summary_line t);
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* --- JSONL ------------------------------------------------------------- *)

let int_array arr = Json.List (Array.to_list (Array.map (fun i -> Json.Int i) arr))

let to_jsonl t =
  let buf = Buffer.create 1024 in
  let line v =
    Buffer.add_string buf (Json.to_string v);
    Buffer.add_char buf '\n'
  in
  line
    (Json.Obj
       [
         ("type", Json.String "profile");
         ("machines", Json.Int t.machines);
         ("labels", Json.Int (List.length t.rows));
         ("total_words", Json.Int t.total_words);
       ]);
  List.iter
    (fun row ->
      line
        (Json.Obj
           [
             ("type", Json.String "label");
             ("label", Json.String row.label);
             ("sent", int_array row.sent);
             ("recv", int_array row.recv);
           ]))
    t.rows;
  line
    (Json.Obj
       [
         ("type", Json.String "summary");
         ("max_load", Json.Int (max_load t));
         ("mean_load", Json.float_opt (mean_load t));
         ("p50", Json.float_opt (quantile t 0.5));
         ("p95", Json.float_opt (quantile t 0.95));
         ("imbalance", Json.float_opt (imbalance t));
         ( "hot",
           Json.List
             (List.map
                (fun (m, load) -> Json.List [ Json.Int m; Json.Int load ])
                (hot t)) );
       ]);
  Buffer.contents buf

let of_jsonl s =
  let ( let* ) = Result.bind in
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  let parse_int_array v =
    match Json.to_list_opt v with
    | None -> Error "expected an array of integers"
    | Some xs ->
        let arr = Array.make (List.length xs) 0 in
        let rec go i = function
          | [] -> Ok arr
          | Json.Int n :: rest ->
              arr.(i) <- n;
              go (i + 1) rest
          | _ -> Error "expected an array of integers"
        in
        go 0 xs
  in
  let rec go machines total_words rows = function
    | [] -> (
        match machines with
        | None -> Error "no profile header line"
        | Some machines ->
            Ok (create ~machines ?total_words (List.rev rows)))
    | line :: rest -> (
        let* v = Json.of_string line in
        match Option.bind (Json.member "type" v) Json.to_string_opt with
        | Some "profile" ->
            let int_field key =
              Option.bind (Json.member key v) (fun x ->
                  match x with Json.Int i -> Some i | _ -> None)
            in
            go (int_field "machines") (int_field "total_words") rows rest
        | Some "label" -> (
            match
              ( Option.bind (Json.member "label" v) Json.to_string_opt,
                Json.member "sent" v,
                Json.member "recv" v )
            with
            | Some label, Some sent, Some recv ->
                let* sent = parse_int_array sent in
                let* recv = parse_int_array recv in
                go machines total_words ({ label; sent; recv } :: rows) rest
            | _ -> Error "malformed label line")
        | Some "summary" -> go machines total_words rows rest
        | _ -> Error "line is not a profile/label/summary record")
  in
  match go None None [] lines with
  | exception Invalid_argument msg -> Error msg
  | r -> r
