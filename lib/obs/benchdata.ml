type record = {
  experiment : string;
  params : (string * string) list;
  measured : float option;
  bound : float option;
  ratio : float option;
  quality : (string * float) list;
}

type experiment = {
  id : string;
  title : string;
  wall_s : float option;
  max_load : int option;
  imbalance : float option;
}

type engine_info = { domains : int; speedup : float option }

type doc = {
  schema : string;
  fast : bool;
  engine : engine_info option;
  experiments : experiment list;
  records : record list;
}

let ( let* ) = Result.bind

(* Param values arrive as arbitrary JSON scalars; stringify them the way the
   printed tables do so the two presentations line up. *)
let scalar_to_string = function
  | Json.Null -> "null"
  | Json.Bool b -> string_of_bool b
  | Json.Int i -> string_of_int i
  | Json.Float x -> Printf.sprintf "%g" x
  | Json.String s -> s
  | (Json.List _ | Json.Obj _) as v -> Json.to_string v

let float_field key v = Option.bind (Json.member key v) Json.to_float_opt

let int_field key v =
  Option.bind (Json.member key v) (function Json.Int i -> Some i | _ -> None)

let string_field key v = Option.bind (Json.member key v) Json.to_string_opt

let parse_record v =
  match string_field "experiment" v with
  | None -> Error "record without an \"experiment\" id"
  | Some experiment ->
      let params =
        match Json.member "params" v with
        | Some (Json.Obj fields) ->
            List.map (fun (k, pv) -> (k, scalar_to_string pv)) fields
        | _ -> []
      in
      (* cc-bench/4: statistical-quality measurements (audit-plane TV, KL,
         max |z|, ESS, ...) ride along as a flat numeric object; non-numeric
         members are ignored rather than rejected. *)
      let quality =
        match Json.member "quality" v with
        | Some (Json.Obj fields) ->
            List.filter_map
              (fun (k, qv) ->
                Option.map (fun x -> (k, x)) (Json.to_float_opt qv))
              fields
        | _ -> []
      in
      Ok
        {
          experiment;
          params;
          measured = float_field "measured" v;
          bound = float_field "bound" v;
          ratio = float_field "ratio" v;
          quality;
        }

let parse_experiment v =
  match string_field "id" v with
  | None -> Error "experiment without an \"id\""
  | Some id ->
      Ok
        {
          id;
          title = Option.value ~default:"" (string_field "title" v);
          wall_s = float_field "wall_s" v;
          max_load = int_field "max_load" v;
          imbalance = float_field "imbalance" v;
        }

let parse_all parse = function
  | None -> Ok []
  | Some v -> (
      match Json.to_list_opt v with
      | None -> Error "expected an array"
      | Some xs ->
          let rec go acc = function
            | [] -> Ok (List.rev acc)
            | x :: rest ->
                let* p = parse x in
                go (p :: acc) rest
          in
          go [] xs)

let of_json v =
  match string_field "schema" v with
  | None -> Error "not a cc-bench document: missing \"schema\""
  | Some schema when not (String.length schema >= 9
                          && String.sub schema 0 9 = "cc-bench/") ->
      Error (Printf.sprintf "unsupported schema %S (want cc-bench/*)" schema)
  | Some schema ->
      let fast =
        Option.value ~default:false
          (Option.bind (Json.member "fast" v) Json.to_bool_opt)
      in
      (* cc-bench/3 adds the engine object; absent in /1 and /2. *)
      let engine =
        match Json.member "engine" v with
        | Some (Json.Obj _ as e) ->
            Option.map
              (fun domains -> { domains; speedup = float_field "speedup" e })
              (int_field "domains" e)
        | _ -> None
      in
      let* experiments =
        parse_all parse_experiment (Json.member "experiments" v)
      in
      let* records = parse_all parse_record (Json.member "records" v) in
      Ok { schema; fast; engine; experiments; records }

let of_string s =
  let* v = Json.of_string s in
  of_json v

let load file =
  match
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | s -> of_string s

(* --- aggregation ------------------------------------------------------- *)

type agg = {
  exp : experiment;
  rows : int;
  mean_ratio : float option;
  worst_ratio : float option;
  quality : (string * float) list;
}

let aggregate doc =
  (* id -> (row count, ratio sum, ratio count, worst ratio) *)
  let stats : (string, int * float * int * float) Hashtbl.t =
    Hashtbl.create 16
  in
  (* id -> quality key -> (sum, count); keys in first-seen order. *)
  let qstats : (string, (string, float * int) Hashtbl.t * string list ref)
      Hashtbl.t =
    Hashtbl.create 16
  in
  let order = ref [] in
  List.iter
    (fun r ->
      let rows, sum, n, worst =
        match Hashtbl.find_opt stats r.experiment with
        | Some s -> s
        | None ->
            order := r.experiment :: !order;
            (0, 0.0, 0, Float.neg_infinity)
      in
      let sum, n, worst =
        match r.ratio with
        | Some x when Float.is_finite x -> (sum +. x, n + 1, Float.max worst x)
        | _ -> (sum, n, worst)
      in
      Hashtbl.replace stats r.experiment (rows + 1, sum, n, worst);
      if r.quality <> [] then begin
        let tbl, keys =
          match Hashtbl.find_opt qstats r.experiment with
          | Some s -> s
          | None ->
              let s = (Hashtbl.create 4, ref []) in
              Hashtbl.replace qstats r.experiment s;
              s
        in
        List.iter
          (fun (k, x) ->
            if Float.is_finite x then begin
              let s, c =
                match Hashtbl.find_opt tbl k with
                | Some s -> s
                | None ->
                    keys := k :: !keys;
                    (0.0, 0)
              in
              Hashtbl.replace tbl k (s +. x, c + 1)
            end)
          r.quality
      end)
    doc.records;
  let quality_of id =
    match Hashtbl.find_opt qstats id with
    | None -> []
    | Some (tbl, keys) ->
        List.rev_map
          (fun k ->
            let s, c = Hashtbl.find tbl k in
            (k, s /. float_of_int (max 1 c)))
          !keys
  in
  let agg_of exp =
    match Hashtbl.find_opt stats exp.id with
    | None ->
        { exp; rows = 0; mean_ratio = None; worst_ratio = None; quality = [] }
    | Some (rows, sum, n, worst) ->
        {
          exp;
          rows;
          mean_ratio = (if n = 0 then None else Some (sum /. float_of_int n));
          worst_ratio = (if n = 0 then None else Some worst);
          quality = quality_of exp.id;
        }
  in
  let listed = List.map (fun e -> e.id) doc.experiments in
  let extras =
    List.rev !order
    |> List.filter (fun id -> not (List.mem id listed))
    |> List.map (fun id ->
           { id; title = ""; wall_s = None; max_load = None; imbalance = None })
  in
  List.map agg_of (doc.experiments @ extras)

(* --- diff -------------------------------------------------------------- *)

type delta = {
  id : string;
  old_ratio : float;
  new_ratio : float;
  change : float;
}

type diff = {
  threshold : float;
  regressions : delta list;
  improvements : delta list;
  unchanged : delta list;
  only_old : string list;
  only_new : string list;
}

let diff ?(threshold = 0.10) ~baseline current =
  let ratios doc =
    aggregate doc
    |> List.filter_map (fun a ->
           match a.mean_ratio with
           | Some r -> Some (a.exp.id, r)
           | None -> None)
  in
  let old_r = ratios baseline and new_r = ratios current in
  let deltas =
    List.filter_map
      (fun (id, new_ratio) ->
        match List.assoc_opt id old_r with
        | None -> None
        | Some old_ratio ->
            let change =
              (new_ratio -. old_ratio) /. Float.max (Float.abs old_ratio) 1e-9
            in
            Some { id; old_ratio; new_ratio; change })
      new_r
  in
  let regressions =
    List.filter (fun d -> d.change > threshold) deltas
    |> List.sort (fun a b -> compare b.change a.change)
  in
  let improvements =
    List.filter (fun d -> d.change < -.threshold) deltas
    |> List.sort (fun a b -> compare a.change b.change)
  in
  let unchanged =
    List.filter (fun d -> Float.abs d.change <= threshold) deltas
  in
  let ids xs = List.map fst xs in
  let only_old =
    List.filter (fun id -> not (List.mem_assoc id new_r)) (ids old_r)
  in
  let only_new =
    List.filter (fun id -> not (List.mem_assoc id old_r)) (ids new_r)
  in
  { threshold; regressions; improvements; unchanged; only_old; only_new }
