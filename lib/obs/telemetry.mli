(** Cross-process telemetry: worker-side observability reports and their
    epoch-aware merge into the parent registry.

    {!Metrics} and {!Trace} registries are per-OS-process, so everything a
    multi-process transport worker records is invisible to the parent unless
    shipped over the wire. A {!report} is one worker's self-snapshot — GC
    stats, its local metrics registry, completed top-level trace-span
    aggregates, per-shard wire health, and (when tracing is active) the
    complete span trees and net events drained from the worker's collector
    since the previous report — piggybacked on the transport's [Status]
    heartbeat reply (see {!Cc_transport.Wire}). The supervisor rebases the
    drained trees into its own clock and merges them as process lanes (see
    {!Trace}); the flattened aggregates additionally feed the metric
    namespace below.

    {b Epoch semantics.} A worker resets its registry and wire stats at every
    [Install] (initial spawn, respawn-from-checkpoint, reroute), so each
    report is cumulative {e since the worker's last install} — an epoch. The
    parent-side {!Merge} keeps, per derived metric key, a [committed] value
    (the fold of all closed epochs) and a [current] value (the latest report
    of the open epoch), publishing [committed ⊕ current] into the parent
    registry under a [worker.<shard>.] namespace. When the parent installs a
    shard it {!Merge.commit}s that shard's keys — folding the open epoch into
    [committed] — so counts are monotone across respawn/reroute and are never
    double-counted. Work a worker performed after its last heartbeat but
    before a crash is lost (the merged value is a monotone lower bound).

    {b Namespace.} For each shard [s] carried by a report:
    - [worker.s.wire.{books,gaps,bytes_in,installs}] — per-shard wire
      counters from the report's {!shard_wire} records;
    - [worker.s.gc.*] — process GC gauges (latest report wins);
    - [worker.s.m.<name>] — the worker's own registry entries, native kind;
    - [worker.s.span.<name>.{calls,wall_ms}] — trace-span aggregates.

    Process-scope entries (gc, m, span) describe the whole worker process and
    are attributed to {e every} shard the process owns, so after a reroute a
    surviving worker's process stats appear under each adopted shard's
    namespace.

    Telemetry is zero-perturbation: capture and merge draw no randomness and
    never touch transport mirrors, the ledger, or model state, so runs with
    telemetry on and off are bit-identical. *)

type gc_stats = {
  minor_words : float;
  major_words : float;
  heap_words : int;
  minor_collections : int;
  major_collections : int;
  compactions : int;
}

(** Aggregate of completed top-level trace spans sharing a name. *)
type span_agg = { name : string; calls : int; wall_s : float }

(** Per-shard wire health as counted by the worker since its last install. *)
type shard_wire = {
  shard : int;
  books : int;  (** [Book] frames applied. *)
  gaps : int;  (** out-of-sequence [Book] frames refused (go-back-N). *)
  bytes_in : int;  (** payload bytes received for this shard. *)
  installs : int;  (** [Install]s accepted (0 or 1 within an epoch). *)
}

type report = {
  ts : float;
      (** sender's [Unix.gettimeofday] at capture — the sample the parent's
          clock-offset estimator works from (NaN when absent on the wire). *)
  gc : gc_stats;
  registry : (string * Metrics.value) list;  (** local registry snapshot. *)
  spans : span_agg list;
  shards : shard_wire list;
  trees : Trace.span list;
      (** complete span trees drained since the previous report
          ({!Trace.drain_roots}) — the distributed-trace payload. Worker
          timestamps; the parent rebases them. *)
  events : Trace.event list;
      (** net events drained since the previous report
          ({!Trace.drain_events}). *)
}

(** [capture ~shards ()] snapshots the calling process: [Gc.quick_stat], the
    {!Metrics} registry (entries already under [worker.] are excluded), and
    the active {!Trace} collector's completed root spans, combined with the
    caller-supplied per-shard wire stats. [ts] is stamped from
    [Unix.gettimeofday].

    [?spans] overrides the span-aggregate capture — a worker that {e drains}
    its collector for tree shipping keeps its own cumulative aggregates
    (draining would otherwise make each report's aggregates partial, and the
    parent merge treats them as cumulative-within-epoch). [?trees] and
    [?events] (default empty) attach drained trace payloads. *)
val capture :
  ?spans:span_agg list ->
  ?trees:Trace.span list ->
  ?events:Trace.event list ->
  shards:shard_wire list ->
  unit ->
  report

(** {1 Wire form} *)

val to_json : report -> Json.t
val of_json : Json.t -> (report, string) result

(** {1 Parent-side merge} *)

module Merge : sig
  type t

  val create : unit -> t

  (** [observe t report] records [report] as the open-epoch value for every
      derived [worker.<shard>.*] key and publishes [committed ⊕ current]
      for each into the process {!Metrics} registry. *)
  val observe : t -> report -> unit

  (** [commit t ~shard] closes the open epoch for every key under
      [worker.<shard>.]: folds [current] into [committed] and clears
      [current]. Call at the moment the parent installs [shard] into a
      worker — the next report for [shard] starts a fresh epoch. Published
      registry values do not change. *)
  val commit : t -> shard:int -> unit
end
