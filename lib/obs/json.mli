(** Minimal JSON construction, serialization, and parsing.

    The observability exporters (Chrome traces, JSONL event logs, the bench
    harness's [--json] trajectory files) emit JSON, and the offline [ccprof]
    analyzer reads those artifacts back, so this module is a value type plus
    a serializer and a small recursive-descent parser — no external
    dependency. Non-finite floats serialize as [null] (JSON has no NaN). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** [float_opt x] is [Float x], or [Null] when [x] is not finite. *)
val float_opt : float -> t

(** [escape s] is [s] with JSON string escapes applied (no surrounding
    quotes). *)
val escape : string -> string

(** [to_buffer buf v] appends the compact serialization of [v]. *)
val to_buffer : Buffer.t -> t -> unit

(** [to_string v] is the compact one-line serialization of [v]. *)
val to_string : t -> string

(** [to_string_pretty v] is an indented serialization (2-space indent),
    for artifacts meant to be read and diffed by humans. *)
val to_string_pretty : t -> string

(** {1 Parsing} *)

(** [of_string s] parses one JSON value spanning the whole of [s]. Integer
    literals without a fraction or exponent become [Int] (falling back to
    [Float] beyond native-int range); [\u] escapes decode to UTF-8, with
    unpaired surrogates replaced by U+FFFD. The error carries the byte
    offset of the failure. *)
val of_string : string -> (t, string) result

(** {1 Accessors}

    Shape-tolerant lookups for reading parsed documents: each returns [None]
    when the value has a different constructor. *)

(** [member key v] is field [key] of object [v]. *)
val member : string -> t -> t option

(** [to_float_opt v] is the numeric value of an [Int] or [Float]. *)
val to_float_opt : t -> float option

val to_string_opt : t -> string option
val to_list_opt : t -> t list option
val to_bool_opt : t -> bool option
