(** Minimal JSON construction and serialization.

    The observability exporters (Chrome traces, JSONL event logs, the bench
    harness's [--json] trajectory files) need to *emit* JSON but never parse
    it, so this module is a value type plus a serializer — no external
    dependency. Non-finite floats serialize as [null] (JSON has no NaN). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** [float_opt x] is [Float x], or [Null] when [x] is not finite. *)
val float_opt : float -> t

(** [escape s] is [s] with JSON string escapes applied (no surrounding
    quotes). *)
val escape : string -> string

(** [to_buffer buf v] appends the compact serialization of [v]. *)
val to_buffer : Buffer.t -> t -> unit

(** [to_string v] is the compact one-line serialization of [v]. *)
val to_string : t -> string

(** [to_string_pretty v] is an indented serialization (2-space indent),
    for artifacts meant to be read and diffed by humans. *)
val to_string_pretty : t -> string
