(** Process-wide registry of named counters, gauges, and histograms.

    Instrumented code reports by name ([Metrics.incr "doubling.iterations"]);
    the registry lazily creates the instrument on first use. Recording is
    cheap (one hashtable lookup and a field update), draws no randomness,
    and never touches the simulation state, so instrumented runs are
    bit-identical to bare ones. The registry is global: benchmarks and tests
    that need isolation call {!reset} first.

    Conventions: dotted lowercase names, [subsystem.metric] (e.g.
    ["net.retransmits"], ["sampler.phases"], ["fixed.round_error"]). A name
    is permanently bound to its first-used instrument kind; mixing kinds
    under one name raises [Invalid_argument]. *)

type histogram = {
  count : int;
  sum : float;
  min : float;
  max : float;
}

type value =
  | Counter of int
  | Gauge of float
  | Histogram of histogram

(** [incr ?by name] adds [by] (default 1) to counter [name]. *)
val incr : ?by:int -> string -> unit

(** [set_gauge name x] sets gauge [name] to [x]. *)
val set_gauge : string -> float -> unit

(** [observe name x] folds [x] into histogram [name] (count/sum/min/max). *)
val observe : string -> float -> unit

(** [get name] is the current value bound to [name], if any. *)
val get : string -> value option

(** [snapshot ()] is every instrument, sorted by name. *)
val snapshot : unit -> (string * value) list

(** [reset ()] empties the registry. *)
val reset : unit -> unit

(** [pp fmt ()] renders the registry, one instrument per line. *)
val pp : Format.formatter -> unit -> unit

(** [to_json ()] is the registry as a JSON object keyed by name. *)
val to_json : unit -> Json.t
