(** Process-wide registry of named counters, gauges, and histograms.

    Instrumented code reports by name ([Metrics.incr "doubling.iterations"]);
    the registry lazily creates the instrument on first use. Recording is
    cheap (one hashtable lookup and an in-place field update — no allocation
    on the hot path), draws no randomness, and never touches the simulation
    state, so instrumented runs are bit-identical to bare ones. The registry
    is global: benchmarks and tests that need isolation call {!reset} first.

    {b Process-locality.} The registry is per-OS-process. Code running inside
    an [Mpproc] transport worker (see {!Cc_transport.Worker}) records into
    {e that worker's} registry, not the parent's: before the telemetry plane
    existed those counts were silently invisible. Workers now snapshot their
    registry into the [Status] heartbeat and the supervisor merges the
    reports into the parent registry under a [worker.<shard>.] namespace via
    {!Cc_obs.Telemetry} — with epoch-aware monotone merge, so counts survive
    respawn/reroute without double-counting. A worker's registry is reset at
    every [Install] (checkpoint restore) so a restored worker never reports
    stale pre-checkpoint counts on top of the epoch the parent already
    committed.

    Conventions: dotted lowercase names, [subsystem.metric] (e.g.
    ["net.retransmits"], ["sampler.phases"], ["fixed.round_error"]). A name
    is permanently bound to its first-used instrument kind; mixing kinds
    under one name raises [Invalid_argument]. *)

(** Exported summary of a histogram. Beyond count/sum/min/max, observations
    are folded into fixed power-of-two log buckets (bucket [i] covers
    [[2^(i-64), 2^(i-63))]; bucket 0 is everything non-positive or below
    [2^-63]), from which deterministic percentile estimates are derived:
    [p50]/[p95]/[p99] are the upper bound of the bucket where the cumulative
    count crosses the rank, clamped into [[min, max]]. Bucketing is exact
    arithmetic on the float exponent — no randomness, no sampling — so equal
    observation streams give equal summaries. *)
type histogram = {
  count : int;
  sum : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
  buckets : (int * int) list;
      (** sparse [(bucket index, count)] pairs, ascending, zeros omitted. *)
}

type value =
  | Counter of int
  | Gauge of float
  | Histogram of histogram

(** Number of log buckets (indices [0 .. n_buckets - 1]). *)
val n_buckets : int

(** [bucket_of x] is the log-bucket index observations of [x] fold into. *)
val bucket_of : float -> int

(** [percentile h q] re-derives the [q]-quantile ([0 < q <= 1]) of [h] from
    its buckets; [nan] when [h] is empty. *)
val percentile : histogram -> float -> float

(** [incr ?by name] adds [by] (default 1) to counter [name]. *)
val incr : ?by:int -> string -> unit

(** [set_gauge name x] sets gauge [name] to [x]. *)
val set_gauge : string -> float -> unit

(** [observe name x] folds [x] into histogram [name] (count/sum/min/max and
    the log bucket of [x]). Allocation-free after the instrument exists. *)
val observe : string -> float -> unit

(** [get name] is the current value bound to [name], if any. *)
val get : string -> value option

(** [snapshot ()] is every instrument, sorted by name. *)
val snapshot : unit -> (string * value) list

(** [reset ()] empties the registry. *)
val reset : unit -> unit

(** {1 Merge API}

    Used by the telemetry plane to fold a remote (worker) registry into this
    process's registry; see {!Cc_obs.Telemetry}. *)

(** [set name v] binds [name] to exactly [v], replacing any existing binding
    regardless of kind. For merge layers — instrumented code should use the
    incremental operations above. *)
val set : string -> value -> unit

(** [merge a b] combines two values of the same kind: counters add, gauges
    take [b] (the later report), histograms merge bucket-wise (percentiles
    re-derived). [None] on a kind mismatch. *)
val merge : value -> value -> value option

(** {1 Serialization} *)

(** [value_to_json v] / [value_of_json j] round-trip one instrument value —
    the wire form telemetry reports use. Histogram buckets serialize as
    sparse [[index, count]] pairs. *)
val value_to_json : value -> Json.t

val value_of_json : Json.t -> (value, string) result

(** [pp fmt ()] renders the registry, one instrument per line (histograms
    with mean, min/max, and p50/p95/p99). *)
val pp : Format.formatter -> unit -> unit

(** [to_json ()] is the registry as a JSON object keyed by name. *)
val to_json : unit -> Json.t
