type span = {
  id : int;
  name : string;
  mutable args : (string * string) list;
  depth : int;
  start_ts : float;
  mutable stop_ts : float;
  mutable alloc_words : float;
  mutable net_rounds : float;
  mutable net_messages : int;
  mutable net_words : int;
  mutable net_max_load : int;
  mutable children : span list;
}

type event = {
  ts : float;
  span_id : int option;
  kind : string;
  label : string;
  rounds : float;
  messages : int;
  words : int;
  max_load : int;
  round_clock : float;
}

(* An open span carries its GC snapshot; the exported [span] record is filled
   in at close time. *)
type open_span = { span : span; alloc_at_open : float }

(* A remote process lane: completed root spans and events shipped from
   another OS process (an mpproc worker), already rebased into this
   collector's clock by the supervisor. *)
type lane = {
  lane_pid : int;
  mutable lane_name : string;
  mutable lane_roots : span list; (* reversed *)
  mutable lane_events : event list; (* reversed *)
}

type t = {
  clock : unit -> float;
  max_events : int;
  mutable next_id : int;
  mutable stack : open_span list; (* innermost first *)
  mutable roots : span list; (* completed, reversed *)
  mutable events : event list; (* reversed *)
  mutable n_events : int;
  mutable n_dropped : int;
  mutable local_name : string;
  mutable remote : lane list; (* unordered *)
}

let local_pid = 1

let create ?(clock = Unix.gettimeofday) ?(max_events = 200_000) ?(first_id = 0)
    () =
  {
    clock;
    max_events;
    next_id = first_id;
    stack = [];
    roots = [];
    events = [];
    n_events = 0;
    n_dropped = 0;
    local_name = "main";
    remote = [];
  }

let active : t option ref = ref None
let install t = active := Some t
let uninstall () = active := None
let enabled () = !active <> None
let current () = !active

let with_trace t f =
  let prev = !active in
  active := Some t;
  Fun.protect ~finally:(fun () -> active := prev) f

let allocated_words () =
  let s = Gc.quick_stat () in
  s.Gc.minor_words +. s.Gc.major_words -. s.Gc.promoted_words

let push_span t ~name ~args =
  let id = t.next_id in
  t.next_id <- id + 1;
  let sp =
    {
      id;
      name;
      args;
      depth = List.length t.stack;
      start_ts = t.clock ();
      stop_ts = Float.nan;
      alloc_words = 0.0;
      net_rounds = 0.0;
      net_messages = 0;
      net_words = 0;
      net_max_load = 0;
      children = [];
    }
  in
  t.stack <- { span = sp; alloc_at_open = allocated_words () } :: t.stack

let pop_span ~extra t =
  match t.stack with
  | [] -> () (* unbalanced close: collector was swapped mid-span; ignore *)
  | { span = sp; alloc_at_open } :: rest ->
      sp.stop_ts <- t.clock ();
      sp.alloc_words <- allocated_words () -. alloc_at_open;
      sp.children <- List.rev sp.children;
      if extra <> [] then sp.args <- sp.args @ extra;
      t.stack <- rest;
      (match rest with
      | { span = parent; _ } :: _ -> parent.children <- sp :: parent.children
      | [] -> t.roots <- sp :: t.roots)

let open_span t ?(args = []) name = push_span t ~name ~args
let close_span ?(args = []) t = pop_span ~extra:args t

let with_span ?(args = []) name f =
  match !active with
  | None -> f ()
  | Some t ->
      push_span t ~name ~args;
      Fun.protect ~finally:(fun () -> pop_span ~extra:[] t) f

let record_event t ev =
  if t.n_events < t.max_events then begin
    t.events <- ev :: t.events;
    t.n_events <- t.n_events + 1
  end
  else t.n_dropped <- t.n_dropped + 1

let innermost t =
  match t.stack with [] -> None | { span; _ } :: _ -> Some span.id

let instant ?(args = []) name =
  match !active with
  | None -> ()
  | Some t ->
      let label =
        match args with
        | [] -> ""
        | args -> String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) args)
      in
      record_event t
        {
          ts = t.clock ();
          span_id = innermost t;
          kind = "instant";
          label = (if label = "" then name else name ^ " " ^ label);
          rounds = 0.0;
          messages = 0;
          words = 0;
          max_load = 0;
          round_clock = Float.nan;
        }

let net_event ~kind ~label ~rounds ~messages ~words ?(max_load = 0) ~round_clock
    () =
  match !active with
  | None -> ()
  | Some t ->
      List.iter
        (fun { span = sp; _ } ->
          sp.net_rounds <- sp.net_rounds +. rounds;
          sp.net_messages <- sp.net_messages + messages;
          sp.net_words <- sp.net_words + words;
          sp.net_max_load <- max sp.net_max_load max_load)
        t.stack;
      record_event t
        {
          ts = t.clock ();
          span_id = innermost t;
          kind;
          label;
          rounds;
          messages;
          words;
          max_load;
          round_clock;
        }

let roots t = List.rev t.roots
let events t = List.rev t.events
let dropped_events t = t.n_dropped

let total_rounds t =
  List.fold_left (fun acc sp -> acc +. sp.net_rounds) 0.0 t.roots

(* --- incremental shipping --- *)

let drain_roots t =
  let r = List.rev t.roots in
  t.roots <- [];
  r

let drain_events t =
  let e = List.rev t.events in
  t.events <- [];
  t.n_events <- 0;
  e

(* --- process lanes --- *)

let set_process_name t name = t.local_name <- name

let find_lane t ~pid ~process =
  match List.find_opt (fun l -> l.lane_pid = pid) t.remote with
  | Some l ->
      (match process with Some n -> l.lane_name <- n | None -> ());
      l
  | None ->
      let l =
        {
          lane_pid = pid;
          lane_name =
            (match process with
            | Some n -> n
            | None -> Printf.sprintf "pid %d" pid);
          lane_roots = [];
          lane_events = [];
        }
      in
      t.remote <- l :: t.remote;
      l

let add_remote_span t ~pid ?process sp =
  if pid = local_pid then begin
    (match process with Some n -> t.local_name <- n | None -> ());
    t.roots <- sp :: t.roots
  end
  else begin
    let l = find_lane t ~pid ~process in
    l.lane_roots <- sp :: l.lane_roots
  end

let add_remote_event t ~pid ?process ev =
  if pid = local_pid then begin
    (match process with Some n -> t.local_name <- n | None -> ());
    record_event t ev
  end
  else begin
    let l = find_lane t ~pid ~process in
    l.lane_events <- ev :: l.lane_events
  end

let lanes t =
  let remote =
    List.sort (fun a b -> compare a.lane_pid b.lane_pid) t.remote
  in
  (local_pid, t.local_name, roots t, events t)
  :: List.map
       (fun l ->
         (l.lane_pid, l.lane_name, List.rev l.lane_roots,
          List.rev l.lane_events))
       remote

let rec rebase_span ~offset sp =
  {
    sp with
    start_ts = sp.start_ts +. offset;
    stop_ts = sp.stop_ts +. offset;
    children = List.map (rebase_span ~offset) sp.children;
  }

let rebase_event ~offset ev = { ev with ts = ev.ts +. offset }

(* --- wire codec ---

   Timestamps travel as hex-float strings ("%h") so the supervisor rebases
   the exact bits the worker measured — the Json emitter's decimal floats
   would quantize epoch-scale timestamps to ~microseconds. *)

let hexf x = Json.String (Printf.sprintf "%h" x)

let ( let* ) = Result.bind

let get name conv j what =
  match Json.member name j with
  | None -> Error (Printf.sprintf "%s: missing %S" what name)
  | Some v -> (
      match conv v with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "%s: bad %S" what name))

let to_int = function
  | Json.Int i -> Some i
  | Json.Float f -> Some (int_of_float f)
  | _ -> None

let to_hexf = function
  | Json.String s -> ( try Some (float_of_string s) with _ -> None)
  | Json.Int i -> Some (float_of_int i)
  | Json.Float f -> Some f
  | _ -> None

let to_args = function
  | Json.Obj kvs ->
      let rec go acc = function
        | [] -> Some (List.rev acc)
        | (k, Json.String v) :: rest -> go ((k, v) :: acc) rest
        | _ -> None
      in
      go [] kvs
  | _ -> None

let rec span_to_json sp =
  Json.Obj
    [
      ("id", Json.Int sp.id);
      ("name", Json.String sp.name);
      ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) sp.args));
      ("depth", Json.Int sp.depth);
      ("start", hexf sp.start_ts);
      ("stop", hexf sp.stop_ts);
      ("alloc", hexf sp.alloc_words);
      ("rounds", hexf sp.net_rounds);
      ("messages", Json.Int sp.net_messages);
      ("words", Json.Int sp.net_words);
      ("max_load", Json.Int sp.net_max_load);
      ("children", Json.List (List.map span_to_json sp.children));
    ]

let rec span_of_json j =
  let* id = get "id" to_int j "span" in
  let* name = get "name" Json.to_string_opt j "span" in
  let* args = get "args" to_args j "span" in
  let* depth = get "depth" to_int j "span" in
  let* start_ts = get "start" to_hexf j "span" in
  let* stop_ts = get "stop" to_hexf j "span" in
  let* alloc_words = get "alloc" to_hexf j "span" in
  let* net_rounds = get "rounds" to_hexf j "span" in
  let* net_messages = get "messages" to_int j "span" in
  let* net_words = get "words" to_int j "span" in
  let* net_max_load = get "max_load" to_int j "span" in
  let* kids = get "children" Json.to_list_opt j "span" in
  let rec decode acc = function
    | [] -> Ok (List.rev acc)
    | k :: rest ->
        let* c = span_of_json k in
        decode (c :: acc) rest
  in
  let* children = decode [] kids in
  Ok
    {
      id;
      name;
      args;
      depth;
      start_ts;
      stop_ts;
      alloc_words;
      net_rounds;
      net_messages;
      net_words;
      net_max_load;
      children;
    }

let event_to_json ev =
  Json.Obj
    [
      ("ts", hexf ev.ts);
      ( "span",
        match ev.span_id with None -> Json.Null | Some i -> Json.Int i );
      ("kind", Json.String ev.kind);
      ("label", Json.String ev.label);
      ("rounds", hexf ev.rounds);
      ("messages", Json.Int ev.messages);
      ("words", Json.Int ev.words);
      ("max_load", Json.Int ev.max_load);
      ("round_clock", hexf ev.round_clock);
    ]

let event_of_json j =
  let* ts = get "ts" to_hexf j "event" in
  let span_id =
    match Json.member "span" j with
    | Some (Json.Int i) -> Some i
    | _ -> None
  in
  let* kind = get "kind" Json.to_string_opt j "event" in
  let* label = get "label" Json.to_string_opt j "event" in
  let* rounds = get "rounds" to_hexf j "event" in
  let* messages = get "messages" to_int j "event" in
  let* words = get "words" to_int j "event" in
  let* max_load = get "max_load" to_int j "event" in
  let* round_clock = get "round_clock" to_hexf j "event" in
  Ok { ts; span_id; kind; label; rounds; messages; words; max_load; round_clock }

(* --- exporters --- *)

let span_wall sp =
  if Float.is_nan sp.stop_ts then 0.0 else sp.stop_ts -. sp.start_ts

let human_words w =
  if w >= 1e9 then Printf.sprintf "%.2fGw" (w /. 1e9)
  else if w >= 1e6 then Printf.sprintf "%.2fMw" (w /. 1e6)
  else if w >= 1e3 then Printf.sprintf "%.1fkw" (w /. 1e3)
  else Printf.sprintf "%.0fw" w

let human_time s =
  if s >= 1.0 then Printf.sprintf "%.2fs" s
  else if s >= 1e-3 then Printf.sprintf "%.2fms" (s *. 1e3)
  else Printf.sprintf "%.0fus" (s *. 1e6)

let pp_tree fmt t =
  let rec pp sp =
    let pad = String.make (2 * sp.depth) ' ' in
    let args =
      match sp.args with
      | [] -> ""
      | args ->
          "[" ^ String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) args)
          ^ "]"
    in
    Format.fprintf fmt
      "%s%-*s %s %8s %9s %10.1f rounds %8d msgs %10d words %8d peak@," pad
      (max 1 (36 - (2 * sp.depth)))
      sp.name args
      (human_time (span_wall sp))
      (human_words sp.alloc_words)
      sp.net_rounds sp.net_messages sp.net_words sp.net_max_load;
    List.iter pp sp.children
  in
  Format.fprintf fmt "@[<v>";
  List.iter pp (roots t);
  if t.n_dropped > 0 then
    Format.fprintf fmt "(%d timeline events dropped beyond cap)@," t.n_dropped;
  Format.fprintf fmt "@]"

(* Chrome trace_event timestamps are microseconds; use the earliest span or
   event timestamp across every lane as the origin so traces start near 0. *)
let origin t =
  let cands =
    List.concat_map
      (fun (_, _, roots, events) ->
        List.filter_map
          (fun x -> if Float.is_nan x then None else Some x)
          (List.map (fun sp -> sp.start_ts) roots
          @ List.map (fun (ev : event) -> ev.ts) events))
      (lanes t)
  in
  match cands with [] -> 0.0 | x :: rest -> List.fold_left Float.min x rest

let to_chrome_json t =
  let t0 = origin t in
  let us x = (x -. t0) *. 1e6 in
  let acc = ref [] in
  let emit_lane (pid, pname, roots, events) =
    acc :=
      Json.Obj
        [
          ("name", Json.String "process_name");
          ("ph", Json.String "M");
          ("pid", Json.Int pid);
          ("tid", Json.Int 1);
          ("args", Json.Obj [ ("name", Json.String pname) ]);
        ]
      :: !acc;
    let rec span_events sp =
      acc :=
        Json.Obj
          [
            ("name", Json.String sp.name);
            ("cat", Json.String "span");
            ("ph", Json.String "X");
            ("ts", Json.float_opt (us sp.start_ts));
            ("dur", Json.float_opt (Float.max 0.01 (span_wall sp *. 1e6)));
            ("pid", Json.Int pid);
            ("tid", Json.Int 1);
            ( "args",
              Json.Obj
                (List.map (fun (k, v) -> (k, Json.String v)) sp.args
                @ [
                    ("id", Json.Int sp.id);
                    ("rounds", Json.float_opt sp.net_rounds);
                    ("messages", Json.Int sp.net_messages);
                    ("words", Json.Int sp.net_words);
                    ("max_load", Json.Int sp.net_max_load);
                    ("alloc_words", Json.float_opt sp.alloc_words);
                  ]) );
          ]
        :: !acc;
      List.iter span_events sp.children
    in
    List.iter span_events roots;
    List.iter
      (fun ev ->
        acc :=
          Json.Obj
            [
              ("name", Json.String (ev.kind ^ ":" ^ ev.label));
              ("cat", Json.String "net");
              ("ph", Json.String "i");
              ("s", Json.String "t");
              ("ts", Json.float_opt (us ev.ts));
              ("pid", Json.Int pid);
              ("tid", Json.Int 1);
              ( "args",
                Json.Obj
                  [
                    ("rounds", Json.float_opt ev.rounds);
                    ("messages", Json.Int ev.messages);
                    ("words", Json.Int ev.words);
                    ("max_load", Json.Int ev.max_load);
                    ("round_clock", Json.float_opt ev.round_clock);
                  ] );
            ]
          :: !acc)
      events
  in
  List.iter emit_lane (lanes t);
  Json.to_string
    (Json.Obj
       [
         ("traceEvents", Json.List (List.rev !acc));
         ("displayTimeUnit", Json.String "ms");
       ])

let to_jsonl t =
  let t0 = origin t in
  let buf = Buffer.create 4096 in
  let line v =
    Buffer.add_string buf (Json.to_string v);
    Buffer.add_char buf '\n'
  in
  let all = lanes t in
  List.iter
    (fun (pid, pname, _, _) ->
      line
        (Json.Obj
           [
             ("type", Json.String "process");
             ("pid", Json.Int pid);
             ("name", Json.String pname);
           ]))
    all;
  List.iter
    (fun (pid, _, roots, events) ->
      let rec span_lines sp =
        line
          (Json.Obj
             [
               ("type", Json.String "span");
               ("pid", Json.Int pid);
               ("id", Json.Int sp.id);
               ("name", Json.String sp.name);
               ("depth", Json.Int sp.depth);
               ( "args",
                 Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) sp.args)
               );
               ("start_s", Json.float_opt (sp.start_ts -. t0));
               ("wall_s", Json.float_opt (span_wall sp));
               ("alloc_words", Json.float_opt sp.alloc_words);
               ("rounds", Json.float_opt sp.net_rounds);
               ("messages", Json.Int sp.net_messages);
               ("words", Json.Int sp.net_words);
               ("max_load", Json.Int sp.net_max_load);
             ]);
        List.iter span_lines sp.children
      in
      List.iter span_lines roots;
      List.iter
        (fun ev ->
          line
            (Json.Obj
               [
                 ("type", Json.String "event");
                 ("pid", Json.Int pid);
                 ("ts_s", Json.float_opt (ev.ts -. t0));
                 ( "span",
                   match ev.span_id with
                   | None -> Json.Null
                   | Some i -> Json.Int i );
                 ("kind", Json.String ev.kind);
                 ("label", Json.String ev.label);
                 ("rounds", Json.float_opt ev.rounds);
                 ("messages", Json.Int ev.messages);
                 ("words", Json.Int ev.words);
                 ("max_load", Json.Int ev.max_load);
                 ("round_clock", Json.float_opt ev.round_clock);
               ]))
        events)
    all;
  Buffer.contents buf

let of_jsonl s =
  let t = create ~max_events:max_int () in
  (* Per-lane stack of open ancestors, innermost first, for rebuilding the
     tree from the depth-first flattening. Children are accumulated reversed
     and flipped once the whole artifact is read. *)
  let stacks : (int, span list ref) Hashtbl.t = Hashtbl.create 8 in
  let stack_for pid =
    match Hashtbl.find_opt stacks pid with
    | Some r -> r
    | None ->
        let r = ref [] in
        Hashtbl.add stacks pid r;
        r
  in
  let float_field name j what =
    match Json.member name j with
    | Some v -> (
        match Json.to_float_opt v with
        | Some f -> Ok f
        | None -> (
            match v with
            | Json.Null -> Ok Float.nan
            | _ -> Error (Printf.sprintf "%s: bad %S" what name)))
    | None -> Error (Printf.sprintf "%s: missing %S" what name)
  in
  let pid_of j = match Json.member "pid" j with
    | Some v -> ( match to_int v with Some p -> p | None -> local_pid)
    | None -> local_pid
  in
  let add_line j =
    match Json.member "type" j with
    | Some (Json.String "process") ->
        let pid = pid_of j in
        let* name = get "name" Json.to_string_opt j "process" in
        if pid = local_pid then t.local_name <- name
        else ignore (find_lane t ~pid ~process:(Some name));
        Ok ()
    | Some (Json.String "span") ->
        let pid = pid_of j in
        let* id = get "id" to_int j "span" in
        let* name = get "name" Json.to_string_opt j "span" in
        let* depth = get "depth" to_int j "span" in
        let* args = get "args" to_args j "span" in
        let* start_ts = float_field "start_s" j "span" in
        let* wall = float_field "wall_s" j "span" in
        let* alloc_words = float_field "alloc_words" j "span" in
        let* net_rounds = float_field "rounds" j "span" in
        let* net_messages = get "messages" to_int j "span" in
        let* net_words = get "words" to_int j "span" in
        let* net_max_load = get "max_load" to_int j "span" in
        let sp =
          {
            id;
            name;
            args;
            depth;
            start_ts;
            stop_ts = start_ts +. wall;
            alloc_words;
            net_rounds;
            net_messages;
            net_words;
            net_max_load;
            children = [];
          }
        in
        t.next_id <- max t.next_id (id + 1);
        let stack = stack_for pid in
        let rec unwind = function
          | top :: rest when top.depth >= depth -> unwind rest
          | st -> st
        in
        stack := unwind !stack;
        (match !stack with
        | parent :: _ -> parent.children <- sp :: parent.children
        | [] -> add_remote_span t ~pid sp);
        stack := sp :: !stack;
        Ok ()
    | Some (Json.String "event") ->
        let pid = pid_of j in
        let* ts = float_field "ts_s" j "event" in
        let span_id =
          match Json.member "span" j with
          | Some (Json.Int i) -> Some i
          | _ -> None
        in
        let* kind = get "kind" Json.to_string_opt j "event" in
        let* label = get "label" Json.to_string_opt j "event" in
        let* rounds = float_field "rounds" j "event" in
        let* messages = get "messages" to_int j "event" in
        let* words = get "words" to_int j "event" in
        let* max_load = get "max_load" to_int j "event" in
        let* round_clock = float_field "round_clock" j "event" in
        add_remote_event t ~pid
          { ts; span_id; kind; label; rounds; messages; words; max_load;
            round_clock };
        Ok ()
    | Some (Json.String other) ->
        Error (Printf.sprintf "unknown line type %S" other)
    | _ -> Error "line has no \"type\" field"
  in
  let lines = String.split_on_char '\n' s in
  let rec go i = function
    | [] -> Ok ()
    | l :: rest when String.trim l = "" -> go (i + 1) rest
    | l :: rest -> (
        match Json.of_string l with
        | Error e -> Error (Printf.sprintf "line %d: %s" i e)
        | Ok j -> (
            match add_line j with
            | Error e -> Error (Printf.sprintf "line %d: %s" i e)
            | Ok () -> go (i + 1) rest))
  in
  let rec fix sp =
    sp.children <- List.rev sp.children;
    List.iter fix sp.children
  in
  match go 1 lines with
  | Error _ as e -> e
  | Ok () ->
      List.iter fix t.roots;
      List.iter (fun l -> List.iter fix l.lane_roots) t.remote;
      Ok t
