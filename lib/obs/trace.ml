type span = {
  id : int;
  name : string;
  args : (string * string) list;
  depth : int;
  start_ts : float;
  mutable stop_ts : float;
  mutable alloc_words : float;
  mutable net_rounds : float;
  mutable net_messages : int;
  mutable net_words : int;
  mutable net_max_load : int;
  mutable children : span list;
}

type event = {
  ts : float;
  span_id : int option;
  kind : string;
  label : string;
  rounds : float;
  messages : int;
  words : int;
  max_load : int;
  round_clock : float;
}

(* An open span carries its GC snapshot; the exported [span] record is filled
   in at close time. *)
type open_span = { span : span; alloc_at_open : float }

type t = {
  clock : unit -> float;
  max_events : int;
  mutable next_id : int;
  mutable stack : open_span list; (* innermost first *)
  mutable roots : span list; (* completed, reversed *)
  mutable events : event list; (* reversed *)
  mutable n_events : int;
  mutable n_dropped : int;
}

let create ?(clock = Unix.gettimeofday) ?(max_events = 200_000) () =
  {
    clock;
    max_events;
    next_id = 0;
    stack = [];
    roots = [];
    events = [];
    n_events = 0;
    n_dropped = 0;
  }

let active : t option ref = ref None
let install t = active := Some t
let uninstall () = active := None
let enabled () = !active <> None
let current () = !active

let with_trace t f =
  let prev = !active in
  active := Some t;
  Fun.protect ~finally:(fun () -> active := prev) f

let allocated_words () =
  let s = Gc.quick_stat () in
  s.Gc.minor_words +. s.Gc.major_words -. s.Gc.promoted_words

let open_span t ~name ~args =
  let id = t.next_id in
  t.next_id <- id + 1;
  let sp =
    {
      id;
      name;
      args;
      depth = List.length t.stack;
      start_ts = t.clock ();
      stop_ts = Float.nan;
      alloc_words = 0.0;
      net_rounds = 0.0;
      net_messages = 0;
      net_words = 0;
      net_max_load = 0;
      children = [];
    }
  in
  t.stack <- { span = sp; alloc_at_open = allocated_words () } :: t.stack

let close_span t =
  match t.stack with
  | [] -> () (* unbalanced close: collector was swapped mid-span; ignore *)
  | { span = sp; alloc_at_open } :: rest ->
      sp.stop_ts <- t.clock ();
      sp.alloc_words <- allocated_words () -. alloc_at_open;
      sp.children <- List.rev sp.children;
      t.stack <- rest;
      (match rest with
      | { span = parent; _ } :: _ -> parent.children <- sp :: parent.children
      | [] -> t.roots <- sp :: t.roots)

let with_span ?(args = []) name f =
  match !active with
  | None -> f ()
  | Some t ->
      open_span t ~name ~args;
      Fun.protect ~finally:(fun () -> close_span t) f

let record_event t ev =
  if t.n_events < t.max_events then begin
    t.events <- ev :: t.events;
    t.n_events <- t.n_events + 1
  end
  else t.n_dropped <- t.n_dropped + 1

let innermost t =
  match t.stack with [] -> None | { span; _ } :: _ -> Some span.id

let instant ?(args = []) name =
  match !active with
  | None -> ()
  | Some t ->
      let label =
        match args with
        | [] -> ""
        | args -> String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) args)
      in
      record_event t
        {
          ts = t.clock ();
          span_id = innermost t;
          kind = "instant";
          label = (if label = "" then name else name ^ " " ^ label);
          rounds = 0.0;
          messages = 0;
          words = 0;
          max_load = 0;
          round_clock = Float.nan;
        }

let net_event ~kind ~label ~rounds ~messages ~words ?(max_load = 0) ~round_clock
    () =
  match !active with
  | None -> ()
  | Some t ->
      List.iter
        (fun { span = sp; _ } ->
          sp.net_rounds <- sp.net_rounds +. rounds;
          sp.net_messages <- sp.net_messages + messages;
          sp.net_words <- sp.net_words + words;
          sp.net_max_load <- max sp.net_max_load max_load)
        t.stack;
      record_event t
        {
          ts = t.clock ();
          span_id = innermost t;
          kind;
          label;
          rounds;
          messages;
          words;
          max_load;
          round_clock;
        }

let roots t = List.rev t.roots
let events t = List.rev t.events
let dropped_events t = t.n_dropped

let total_rounds t =
  List.fold_left (fun acc sp -> acc +. sp.net_rounds) 0.0 t.roots

(* --- exporters --- *)

let span_wall sp =
  if Float.is_nan sp.stop_ts then 0.0 else sp.stop_ts -. sp.start_ts

let human_words w =
  if w >= 1e9 then Printf.sprintf "%.2fGw" (w /. 1e9)
  else if w >= 1e6 then Printf.sprintf "%.2fMw" (w /. 1e6)
  else if w >= 1e3 then Printf.sprintf "%.1fkw" (w /. 1e3)
  else Printf.sprintf "%.0fw" w

let human_time s =
  if s >= 1.0 then Printf.sprintf "%.2fs" s
  else if s >= 1e-3 then Printf.sprintf "%.2fms" (s *. 1e3)
  else Printf.sprintf "%.0fus" (s *. 1e6)

let pp_tree fmt t =
  let rec pp sp =
    let pad = String.make (2 * sp.depth) ' ' in
    let args =
      match sp.args with
      | [] -> ""
      | args ->
          "[" ^ String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) args)
          ^ "]"
    in
    Format.fprintf fmt
      "%s%-*s %s %8s %9s %10.1f rounds %8d msgs %10d words %8d peak@," pad
      (max 1 (36 - (2 * sp.depth)))
      sp.name args
      (human_time (span_wall sp))
      (human_words sp.alloc_words)
      sp.net_rounds sp.net_messages sp.net_words sp.net_max_load;
    List.iter pp sp.children
  in
  Format.fprintf fmt "@[<v>";
  List.iter pp (roots t);
  if t.n_dropped > 0 then
    Format.fprintf fmt "(%d timeline events dropped beyond cap)@," t.n_dropped;
  Format.fprintf fmt "@]"

(* Chrome trace_event timestamps are microseconds; use the earliest span or
   event timestamp as the origin so traces start near 0. *)
let origin t =
  let cands =
    List.filter_map
      (fun x -> if Float.is_nan x then None else Some x)
      (List.map (fun sp -> sp.start_ts) (roots t)
      @ List.map (fun ev -> ev.ts) (events t))
  in
  match cands with [] -> 0.0 | x :: rest -> List.fold_left Float.min x rest

let to_chrome_json t =
  let t0 = origin t in
  let us x = (x -. t0) *. 1e6 in
  let acc = ref [] in
  let rec span_events sp =
    acc :=
      Json.Obj
        [
          ("name", Json.String sp.name);
          ("cat", Json.String "span");
          ("ph", Json.String "X");
          ("ts", Json.float_opt (us sp.start_ts));
          ( "dur",
            Json.float_opt
              (Float.max 0.01 (span_wall sp *. 1e6)) );
          ("pid", Json.Int 1);
          ("tid", Json.Int 1);
          ( "args",
            Json.Obj
              (List.map (fun (k, v) -> (k, Json.String v)) sp.args
              @ [
                  ("rounds", Json.float_opt sp.net_rounds);
                  ("messages", Json.Int sp.net_messages);
                  ("words", Json.Int sp.net_words);
                  ("max_load", Json.Int sp.net_max_load);
                  ("alloc_words", Json.float_opt sp.alloc_words);
                ]) );
        ]
      :: !acc;
    List.iter span_events sp.children
  in
  List.iter span_events (roots t);
  List.iter
    (fun ev ->
      acc :=
        Json.Obj
          [
            ("name", Json.String (ev.kind ^ ":" ^ ev.label));
            ("cat", Json.String "net");
            ("ph", Json.String "i");
            ("s", Json.String "t");
            ("ts", Json.float_opt (us ev.ts));
            ("pid", Json.Int 1);
            ("tid", Json.Int 1);
            ( "args",
              Json.Obj
                [
                  ("rounds", Json.float_opt ev.rounds);
                  ("messages", Json.Int ev.messages);
                  ("words", Json.Int ev.words);
                  ("max_load", Json.Int ev.max_load);
                  ("round_clock", Json.float_opt ev.round_clock);
                ] );
          ]
        :: !acc)
    (events t);
  Json.to_string
    (Json.Obj
       [
         ("traceEvents", Json.List (List.rev !acc));
         ("displayTimeUnit", Json.String "ms");
       ])

let to_jsonl t =
  let buf = Buffer.create 4096 in
  let line v =
    Buffer.add_string buf (Json.to_string v);
    Buffer.add_char buf '\n'
  in
  let rec span_lines sp =
    line
      (Json.Obj
         [
           ("type", Json.String "span");
           ("id", Json.Int sp.id);
           ("name", Json.String sp.name);
           ("depth", Json.Int sp.depth);
           ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) sp.args));
           ("start_s", Json.float_opt sp.start_ts);
           ("wall_s", Json.float_opt (span_wall sp));
           ("alloc_words", Json.float_opt sp.alloc_words);
           ("rounds", Json.float_opt sp.net_rounds);
           ("messages", Json.Int sp.net_messages);
           ("words", Json.Int sp.net_words);
           ("max_load", Json.Int sp.net_max_load);
         ]);
    List.iter span_lines sp.children
  in
  List.iter span_lines (roots t);
  List.iter
    (fun ev ->
      line
        (Json.Obj
           [
             ("type", Json.String "event");
             ("ts_s", Json.float_opt ev.ts);
             ( "span",
               match ev.span_id with None -> Json.Null | Some i -> Json.Int i );
             ("kind", Json.String ev.kind);
             ("label", Json.String ev.label);
             ("rounds", Json.float_opt ev.rounds);
             ("messages", Json.Int ev.messages);
             ("words", Json.Int ev.words);
             ("max_load", Json.Int ev.max_load);
             ("round_clock", Json.float_opt ev.round_clock);
           ]))
    (events t);
  Buffer.contents buf
