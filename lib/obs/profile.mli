(** Per-machine communication load profiles.

    A profile is the machine × label congestion matrix of one simulated run:
    for every ledger label, how many words each machine sent and received
    under it. The metering layer ({!Cc_clique.Net}) builds one from its
    per-machine ledger; this module only aggregates and renders, so it can
    also reload a profile from its JSONL export ({!of_jsonl}) for offline
    analysis with [ccprof].

    The load of a machine is [max (sent, received)] words — the quantity
    Lenzen routing charges rounds for. The {e imbalance factor} compares the
    hottest machine against the perfectly balanced ideal:
    [imbalance = max_load / (total_words / machines)]. An imbalance of 1
    means the traffic pattern already spreads evenly (an all-to-all); an
    imbalance of [k] means the run pays [k] times the rounds a perfectly
    rebalanced schedule would. *)

type row = {
  label : string;  (** ledger label the traffic was booked under. *)
  sent : int array;  (** words sent per machine (length [machines]). *)
  recv : int array;  (** words received per machine. *)
}

type t = {
  machines : int;
  rows : row list;  (** descending by peak load, ties by label. *)
  total_sent : int array;  (** per-machine totals across all labels. *)
  total_recv : int array;
  total_words : int;
      (** words booked by the metering layer — the denominator of the
          balanced ideal. At least [max (sum sent, sum recv)]. *)
}

(** [create ~machines ?total_words rows] assembles a profile, computing the
    per-machine totals and sorting rows by descending peak load. When
    [total_words] is omitted it defaults to
    [max (sum total_sent, sum total_recv)].
    @raise Invalid_argument if a row's arrays are not [machines] long. *)
val create : machines:int -> ?total_words:int -> row list -> t

(** {1 Summary statistics} *)

(** [machine_load t i] is [max sent recv] total words at machine [i]. *)
val machine_load : t -> int -> int

(** [max_load t] is the hottest machine's load. *)
val max_load : t -> int

(** [mean_load t] is the balanced ideal [total_words / machines]. *)
val mean_load : t -> float

(** [imbalance t] is [max_load /. mean_load] — how many times more rounds
    the run's hottest machine costs than a perfectly balanced schedule.
    [1.0] when the profile carries no traffic. *)
val imbalance : t -> float

(** [quantile t q] is the [q]-quantile (linear interpolation) of the
    per-machine loads, e.g. [quantile t 0.95]. *)
val quantile : t -> float -> float

(** [hot ?k t] is the [k] (default 3) hottest machines as
    [(machine, load)], descending, zero-load machines omitted. *)
val hot : ?k:int -> t -> (int * int) list

(** {1 Rendering} *)

(** [render ?max_width t] is an ASCII machine × label heatmap: one row per
    label plus a totals row, one column per machine (machines are bucketed
    when there are more than [max_width], default 64, each cell then showing
    the bucket maximum). Cell intensity uses the ramp [" .:-=+*#%@"] scaled
    to the global maximum; a [^] marker under the totals row points at the
    hottest machine. A summary line reports max/mean/p50/p95 load and the
    imbalance factor. *)
val render : ?max_width:int -> t -> string

(** [summary_line t] is the one-line max/mean/p50/p95/imbalance summary. *)
val summary_line : t -> string

(** [to_jsonl t] is the profile as JSON lines: one [profile] header, one
    [label] line per row, one [summary] trailer. *)
val to_jsonl : t -> string

(** [of_jsonl s] reloads a profile written by {!to_jsonl} (the summary
    trailer is ignored and recomputed). *)
val of_jsonl : string -> (t, string) result
