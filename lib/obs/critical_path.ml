type segment = {
  span_id : int;
  name : string;
  pid : int;
  process : string;
  start_s : float;
  stop_s : float;
}

type row = {
  phase : string;
  pid : int;
  process : string;
  self_s : float;
  rounds : float;
  share : float;
}

type t = {
  total_s : float;
  covered_s : float;
  gap_s : float;
  chain : segment list;
  rows : row list;
}

(* One completed span with its lane identity and pre-computed self-rounds. *)
type node = {
  sp : Trace.span;
  n_pid : int;
  n_process : string;
  self_rounds : float;
}

let completed sp =
  (not (Float.is_nan sp.Trace.stop_ts)) && sp.Trace.stop_ts >= sp.Trace.start_ts

let flatten trace =
  List.concat_map
    (fun (pid, pname, roots, _) ->
      let rec go acc sp =
        let acc =
          if completed sp then
            let child_rounds =
              List.fold_left
                (fun a (c : Trace.span) -> a +. c.Trace.net_rounds)
                0.0 sp.Trace.children
            in
            {
              sp;
              n_pid = pid;
              n_process = pname;
              self_rounds = Float.max 0.0 (sp.Trace.net_rounds -. child_rounds);
            }
            :: acc
          else acc
        in
        List.fold_left go acc sp.Trace.children
      in
      List.fold_left go [] roots)
    (Trace.lanes trace)

let compute trace =
  match flatten trace with
  | [] -> None
  | nodes ->
      let t_start =
        List.fold_left
          (fun a n -> Float.min a n.sp.Trace.start_ts)
          Float.infinity nodes
      in
      let t_end =
        List.fold_left
          (fun a n -> Float.max a n.sp.Trace.stop_ts)
          Float.neg_infinity nodes
      in
      let total_s = t_end -. t_start in
      (* Backward sweep: at cursor [c], the chain step is the active span
         (start < c <= stop) whose start is latest — the innermost work the
         system was waiting on. The segment extends backward only until a
         {e later-started} span's end (below which that span wins the same
         selection) or the chosen span's own start, whichever comes last —
         so an enclosing phase is charged only the slices where none of its
         children (on any lane) were running. With no active span the
         interval back to the nearest earlier span end is a gap (nothing was
         running anywhere). *)
      let chain = ref [] in
      let cursor = ref t_end in
      let gap = ref 0.0 in
      let deadline = (2 * List.length nodes) + 8 in
      let steps = ref 0 in
      while !cursor > t_start && !steps < deadline do
        incr steps;
        let c = !cursor in
        let active =
          List.fold_left
            (fun best n ->
              if n.sp.Trace.start_ts < c && n.sp.Trace.stop_ts >= c then
                match best with
                | None -> Some n
                | Some b ->
                    if
                      n.sp.Trace.start_ts > b.sp.Trace.start_ts
                      || (n.sp.Trace.start_ts = b.sp.Trace.start_ts
                         && n.sp.Trace.depth > b.sp.Trace.depth)
                    then Some n
                    else best
              else best)
            None nodes
        in
        match active with
        | Some n ->
            let lo =
              List.fold_left
                (fun a m ->
                  if
                    m.sp.Trace.stop_ts < c
                    && (m.sp.Trace.start_ts > n.sp.Trace.start_ts
                       || (m.sp.Trace.start_ts = n.sp.Trace.start_ts
                          && m.sp.Trace.depth > n.sp.Trace.depth))
                  then Float.max a m.sp.Trace.stop_ts
                  else a)
                n.sp.Trace.start_ts nodes
            in
            chain :=
              {
                span_id = n.sp.Trace.id;
                name = n.sp.Trace.name;
                pid = n.n_pid;
                process = n.n_process;
                start_s = lo -. t_start;
                stop_s = c -. t_start;
              }
              :: !chain;
            cursor := lo
        | None ->
            (* nearest span end strictly before the cursor, or done *)
            let prev =
              List.fold_left
                (fun a n ->
                  if n.sp.Trace.stop_ts < c then
                    Float.max a n.sp.Trace.stop_ts
                  else a)
                Float.neg_infinity nodes
            in
            if prev <= t_start || prev = Float.neg_infinity then begin
              gap := !gap +. (c -. t_start);
              cursor := t_start
            end
            else begin
              gap := !gap +. (c -. prev);
              cursor := prev
            end
      done;
      let chain = !chain in
      let covered_s =
        List.fold_left (fun a s -> a +. (s.stop_s -. s.start_s)) 0.0 chain
      in
      (* Attribution rows: chain time by (phase, lane); a span's self-rounds
         are charged once, on its first chain segment. *)
      let by_id : (int, unit) Hashtbl.t = Hashtbl.create 64 in
      let tbl : (string * int, row ref) Hashtbl.t = Hashtbl.create 32 in
      let order = ref [] in
      List.iter
        (fun s ->
          let key = (s.name, s.pid) in
          let rounds =
            if Hashtbl.mem by_id s.span_id then 0.0
            else begin
              Hashtbl.replace by_id s.span_id ();
              match
                List.find_opt (fun n -> n.sp.Trace.id = s.span_id) nodes
              with
              | Some n -> n.self_rounds
              | None -> 0.0
            end
          in
          match Hashtbl.find_opt tbl key with
          | Some r ->
              r :=
                {
                  !r with
                  self_s = !r.self_s +. (s.stop_s -. s.start_s);
                  rounds = !r.rounds +. rounds;
                }
          | None ->
              Hashtbl.replace tbl key
                (ref
                   {
                     phase = s.name;
                     pid = s.pid;
                     process = s.process;
                     self_s = s.stop_s -. s.start_s;
                     rounds;
                     share = 0.0;
                   });
              order := key :: !order)
        chain;
      let rows =
        List.rev_map (fun key -> !(Hashtbl.find tbl key)) !order
        |> List.map (fun r ->
               {
                 r with
                 share = (if total_s > 0.0 then r.self_s /. total_s else 0.0);
               })
        |> List.sort (fun a b -> compare b.self_s a.self_s)
      in
      Some { total_s; covered_s; gap_s = total_s -. covered_s; chain; rows }

let share rows ~phase =
  List.fold_left
    (fun a r -> if r.phase = phase then a +. r.share else a)
    0.0 rows
