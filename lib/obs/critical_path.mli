(** Critical-path extraction over a merged multi-process trace.

    Given a {!Trace.t} holding the supervisor plus every worker shard as
    process lanes, the analysis asks: {e which span, on which process, was
    the system waiting on at each instant of the run?} It answers with the
    longest dependent chain — a backward sweep from the last span end, at
    each step attributing the interval to the {b innermost most-recently
    started} span active across {e any} lane, back to the point where a
    later-started span (a child, or concurrent work on another lane) last
    ended and takes over. An enclosing phase is therefore charged only the
    slices where none of its descendants were running — self time, not
    inclusive time. Span begin/end are the synchronization edges; exchange barriers
    appear implicitly because the metering layer books each primitive into
    every lane's open spans at the barrier instant, so lanes' span
    boundaries line up at exchanges and the chain hops to whichever process
    bounded the barrier.

    The chain tiles the run: the sum of segment walls plus uncovered gaps
    equals end-to-end wall. With a root span wrapping the workload (the
    binaries' [--trace-out] paths install one), the chain covers end-to-end
    wall exactly up to clock-alignment error (DESIGN.md §13).

    Attribution is {e self}-based so nested phases don't double-count: a
    segment belongs to the innermost active span, and a span's rounds are
    its own minus its children's. *)

type segment = {
  span_id : int;
  name : string;
  pid : int;  (** lane pid ({!Trace.local_pid} = supervisor). *)
  process : string;  (** lane name ("main", "shard 0", ...). *)
  start_s : float;  (** seconds from the trace origin. *)
  stop_s : float;
}

(** One (phase name × lane) attribution row. *)
type row = {
  phase : string;
  pid : int;
  process : string;
  self_s : float;  (** chain time attributed to this phase on this lane. *)
  rounds : float;  (** self-rounds (span rounds minus children's). *)
  share : float;  (** [self_s /. total_s]. *)
}

type t = {
  total_s : float;  (** end-to-end wall: last span end − first span start. *)
  covered_s : float;  (** chain time (sum of segment walls). *)
  gap_s : float;  (** [total_s -. covered_s]: instants with no open span. *)
  chain : segment list;  (** the critical path, in time order. *)
  rows : row list;  (** attribution, largest [self_s] first. *)
}

(** [compute trace] is [None] when [trace] holds no completed span. *)
val compute : Trace.t -> t option

(** [share rows ~phase] sums {!row.share} over rows whose phase is [phase]
    — the quantity [ccprof critical-path --budget phase=frac] gates on. *)
val share : row list -> phase:string -> float
