(** Flight recorder for the Net event stream.

    A recorder captures one canonical {!record} per booked Net primitive —
    kind, label, round interval, per-machine sent/received words, and the
    fault-layer outcome counters at booking time — into a bounded in-memory
    log with a running {e chain digest}: an FNV-1a 64-bit fold over the
    compact JSON serialization of the header and of every record, in order.
    Two runs produce the same digest iff they booked byte-identical event
    streams, which makes the digest a cheap determinism check (same seed →
    same digest) and the log a replay artifact that {!diff} can compare to
    the first divergent event.

    The recorder is glued to a net with [Cc_clique.Net.attach_recorder]
    (this module cannot depend on [Cc_clique], which sits above it). Like
    every observability layer here it is pure observation: it copies what
    the sink hands it and never touches the ledger or draws randomness. *)

type record = {
  seq : int;  (** 0-based position in the event stream. *)
  kind : string;  (** primitive wire name: ["exchange"], ["broadcast"], … *)
  label : string;  (** ledger label the cost was booked under. *)
  round_start : float;  (** round clock when the primitive began. *)
  round_end : float;  (** round clock after booking ([round_start + rounds]). *)
  rounds : float;
  messages : int;
  words : int;
  max_load : int;
  sent : int array;
      (** words each machine sent in this primitive — one slot per machine,
          or [[||]] for analytic charges that route no traffic. *)
  recv : int array;  (** words each machine received; same shape as [sent]. *)
  retransmits : int;  (** net-wide retransmitted packets so far (running). *)
  dropped : int;  (** net-wide dropped transmission attempts so far. *)
}

type t

(** [create ~machines ()] builds an empty recorder for a [machines]-machine
    clique. At most [max_records] records (default [200_000]) are kept in
    memory; excess records still extend the digest chain but are dropped
    from the log and counted in {!dropped_records}. *)
val create : ?max_records:int -> machines:int -> unit -> t

(** [add t ~kind ~label ~rounds ~round_end …] appends one record
    ([round_start] is derived as [round_end - rounds]; [seq] is assigned).
    The per-machine arrays are copied.
    @raise Invalid_argument if [sent]/[recv] are not both empty or both of
    length [machines]. *)
val add :
  t ->
  kind:string ->
  label:string ->
  rounds:float ->
  round_end:float ->
  messages:int ->
  words:int ->
  max_load:int ->
  sent:int array ->
  recv:int array ->
  retransmits:int ->
  dropped:int ->
  unit

val machines : t -> int

(** [records t] is the stored log, in event order. *)
val records : t -> record list

(** [total t] counts every record ever added (stored or not). *)
val total : t -> int

val stored : t -> int

(** [dropped_records t] is [total - stored]: records beyond [max_records]
    that extended the digest but were not kept. *)
val dropped_records : t -> int

(** [digest_hex t] is the running chain digest as ["fnv64:<16 hex digits>"].
    Byte-identical event streams — and only those — agree on it. *)
val digest_hex : t -> string

(** {1 JSONL export / reload}

    The export is one JSON object per line: a header
    [{"type":"recorder","version":1,"machines":n}], one
    [{"type":"record",…}] line per stored record, and a trailer
    [{"type":"digest","digest":…,"records":total,"stored":stored}]. The
    digest chain folds the header line and every record line exactly as
    written, so a reloaded log re-folds the raw lines it read and can
    verify the trailer without re-serializing. *)

val to_jsonl : t -> string

type loaded = {
  log : t;
  trailer_digest : string option;  (** digest claimed by the trailer. *)
  trailer_records : int option;  (** total records claimed by the trailer. *)
}

(** [of_jsonl s] parses an export. [Error] on structural problems (bad
    header, missing record fields, lines after the trailer). *)
val of_jsonl : string -> (loaded, string) result

(** [verify l] checks the reloaded digest chain against the trailer:
    [Ok digest] when they agree, [Error] when the trailer is missing, the
    log was truncated by the record cap (digest not verifiable), or the
    recomputed digest disagrees (the file was altered). *)
val verify : loaded -> (string, string) result

(** {1 Divergence diffing} *)

type divergence = {
  seq : int;  (** event position, or [-1] for a header mismatch. *)
  field : string;  (** first differing field (["presence"] for a missing event). *)
  a : string;  (** rendering of the field in the first log. *)
  b : string;
}

(** [diff a b] is the first divergent event between two logs, comparing
    records field by field in stream order ([None] when identical). *)
val diff : t -> t -> divergence option

(** [timeline ?width t] renders an ASCII per-round timeline: one lane per
    label (first-appearance order), the run's round interval bucketed into
    [width] (default 64) columns, cell intensity = the fraction of that
    bucket's rounds booked under the lane's label. *)
val timeline : ?width:int -> t -> string
