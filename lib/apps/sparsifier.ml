module Graph = Cc_graph.Graph
module Tree = Cc_graph.Tree
module Prng = Cc_util.Prng
module Mat = Cc_linalg.Mat
module Determinantal = Cc_walks.Determinantal

type sampler = Graph.t -> Prng.t -> Tree.t

let union prng sampler g ~trees ~reweight =
  if trees < 1 then invalid_arg "Sparsifier.union: trees < 1";
  let multiplicity = Hashtbl.create 64 in
  for _ = 1 to trees do
    let t = sampler g prng in
    List.iter
      (fun e ->
        Hashtbl.replace multiplicity e
          (1 + Option.value ~default:0 (Hashtbl.find_opt multiplicity e)))
      (Tree.edges t)
  done;
  let leverage =
    if reweight then
      let table = Hashtbl.create 64 in
      List.iter (fun (e, l) -> Hashtbl.add table e l) (Determinantal.marginals g);
      fun e -> Hashtbl.find table e
    else fun _ -> 1.0
  in
  let edges =
    Hashtbl.fold
      (fun (u, v) count acc ->
        let w =
          if reweight then
            Graph.edge_weight g u v *. float_of_int count
            /. (float_of_int trees *. leverage (u, v))
          else float_of_int count
        in
        (u, v, w) :: acc)
      multiplicity []
  in
  Graph.of_edges ~n:(Graph.n g) edges

type quality = {
  edges_kept : int;
  edge_fraction : float;
  cut_ratio_min : float;
  cut_ratio_max : float;
  rayleigh_min : float;
  rayleigh_max : float;
}

(* x^T L x = sum over edges w(u,v) (x_u - x_v)^2. *)
let quadratic_form g x =
  List.fold_left
    (fun acc (u, v, w) ->
      let d = x.(u) -. x.(v) in
      acc +. (w *. d *. d))
    0.0 (Graph.edges g)

let evaluate prng g h ~probes =
  if Graph.n g <> Graph.n h then invalid_arg "Sparsifier.evaluate: vertex sets differ";
  if probes < 1 then invalid_arg "Sparsifier.evaluate: probes < 1";
  let n = Graph.n g in
  let cut_min = ref infinity and cut_max = ref neg_infinity in
  let ray_min = ref infinity and ray_max = ref neg_infinity in
  let record mn mx x =
    let qg = quadratic_form g x in
    if qg > 1e-12 then begin
      let ratio = quadratic_form h x /. qg in
      mn := Float.min !mn ratio;
      mx := Float.max !mx ratio
    end
  in
  for _ = 1 to probes do
    (* Random bipartition probe: indicator +-1, nonconstant. *)
    let x = Array.init n (fun _ -> if Prng.bool prng then 1.0 else -1.0) in
    x.(Prng.int prng n) <- -.x.(Prng.int prng n);
    record cut_min cut_max x;
    (* Gaussian-ish probe (sum of uniforms), centered. *)
    let y = Array.init n (fun _ -> Prng.float prng 2.0 -. 1.0) in
    let mean = Array.fold_left ( +. ) 0.0 y /. float_of_int n in
    record ray_min ray_max (Array.map (fun v -> v -. mean) y)
  done;
  {
    edges_kept = Graph.num_edges h;
    edge_fraction = float_of_int (Graph.num_edges h) /. float_of_int (Graph.num_edges g);
    cut_ratio_min = !cut_min;
    cut_ratio_max = !cut_max;
    rayleigh_min = !ray_min;
    rayleigh_max = !ray_max;
  }
