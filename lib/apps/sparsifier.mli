(** Graph sparsification by unions of random spanning trees.

    One of the applications motivating the paper (its introduction cites
    Goyal–Rademacher–Vempala and Fung et al.): the union of a few independent
    uniform random spanning trees is a good cut/spectral sparsifier. This
    module builds tree-union sparsifiers from any tree sampler and measures
    their quality, providing the end-to-end "why you'd want a distributed
    tree sampler" demo (example + bench A1).

    Quality is reported as the range of the ratio
    [x^T L_H x / x^T L_G x] over probe directions x ⊥ 1 — for cut probes
    (x = ±1 indicator vectors) this is exactly the cut-weight ratio. *)

type sampler = Cc_graph.Graph.t -> Cc_util.Prng.t -> Cc_graph.Tree.t

(** [union prng sampler g ~trees ~reweight] samples [trees] independent
    spanning trees and returns their union. With [reweight = true] each tree
    edge contributes weight [1 / (trees * leverage)] — the unbiased
    estimator of its weight in G (E[L_H] = L_G); with [false] each distinct
    edge simply gets its multiplicity (the GRV unweighted union). *)
val union :
  Cc_util.Prng.t ->
  sampler ->
  Cc_graph.Graph.t ->
  trees:int ->
  reweight:bool ->
  Cc_graph.Graph.t

type quality = {
  edges_kept : int;
  edge_fraction : float;  (** |E_H| / |E_G| *)
  cut_ratio_min : float;
  cut_ratio_max : float;  (** over random cut probes *)
  rayleigh_min : float;
  rayleigh_max : float;  (** over random Gaussian probes *)
}

(** [evaluate prng g h ~probes] measures how well [h] approximates [g]:
    random-bipartition cut ratios plus Gaussian Rayleigh-quotient ratios
    ([probes] of each). [h] must be on the same vertex set. *)
val evaluate :
  Cc_util.Prng.t -> Cc_graph.Graph.t -> Cc_graph.Graph.t -> probes:int -> quality
