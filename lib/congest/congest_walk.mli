(** Random-walk spanning-tree sampling in the CONGEST model.

    Two baselines bracketing the related-work landscape:

    - [step_by_step]: the naive token walk — one round per step, so a cover
      walk costs cover-time rounds (the Θ(mn)-round strawman the paper's
      clique algorithms beat).
    - [das_sarma]: a metered implementation of the Das Sarma–Nanongkai–
      Pandurangan–Tetali speed-up: every vertex pre-builds [eta] independent
      short walks of length [lambda] (tokens advance one edge per round;
      per-round cost = the worst per-edge congestion), and the long walk is
      then assembled by stitching — each stitch consumes an unused short
      walk of the current endpoint and teleports the walk token there by
      BFS-tree routing (<= 2D rounds). Exhausted vertices fall back to
      single steps. With lambda ~ sqrt(L D) this reproduces their
      Õ(sqrt(L D)) round bound for a length-L walk, and spanning-tree
      sampling lands at Õ(sqrt(m) D)-scale — the bench E11 comparison
      point against the clique algorithms.

    Both produce exact Aldous-Broder trees: stitching pre-sampled
    independent short walks is a faithful walk by the Markov property, and
    each short walk is consumed at most once. *)

type result = {
  tree : Cc_graph.Tree.t;
  rounds : float;
  walk_length : int;  (** steps of the underlying covering walk *)
  stitches : int;  (** shortcut jumps used (0 for step-by-step) *)
}

(** [step_by_step net prng] runs Aldous-Broder with a token moving one edge
    per round, starting at vertex 0. *)
val step_by_step : Cnet.t -> Cc_util.Prng.t -> result

(** [das_sarma net prng ~lambda ~eta] pre-builds [eta] length-[lambda] walks
    per vertex and covers the graph by stitching (rebuilding batches as
    needed). [lambda] defaults to [sqrt(cover-scale * depth)] heuristics via
    [auto_lambda]. *)
val das_sarma : Cnet.t -> Cc_util.Prng.t -> lambda:int -> eta:int -> result

(** [auto_lambda net ~walk_estimate] is the balancing choice
    sqrt(walk_estimate * depth), at least 1. *)
val auto_lambda : Cnet.t -> walk_estimate:int -> int
