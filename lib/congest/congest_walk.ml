module Graph = Cc_graph.Graph
module Tree = Cc_graph.Tree
module Walk = Cc_walks.Walk
module Prng = Cc_util.Prng

type result = {
  tree : Cc_graph.Tree.t;
  rounds : float;
  walk_length : int;
  stitches : int;
}

(* Aldous-Broder bookkeeping shared by both baselines. *)
type cover_state = {
  visited : bool array;
  mutable remaining : int;
  mutable tree_edges : (int * int) list;
}

let cover_start n =
  let visited = Array.make n false in
  visited.(0) <- true;
  { visited; remaining = n - 1; tree_edges = [] }

let consume_step st ~from ~to_ =
  if not st.visited.(to_) then begin
    st.visited.(to_) <- true;
    st.remaining <- st.remaining - 1;
    st.tree_edges <- (from, to_) :: st.tree_edges
  end

let step_by_step net prng =
  let g = Cnet.graph net in
  let before = Cnet.rounds net in
  let st = cover_start (Graph.n g) in
  let current = ref 0 and steps = ref 0 in
  while st.remaining > 0 do
    let next = Walk.step g prng !current in
    Cnet.exchange net ~label:"token step"
      [ { Cnet.src = !current; dst = next; words = 1 } ];
    consume_step st ~from:!current ~to_:next;
    current := next;
    incr steps
  done;
  {
    tree = Tree.of_edges ~n:(Graph.n g) st.tree_edges;
    rounds = Cnet.rounds net -. before;
    walk_length = !steps;
    stitches = 0;
  }

let auto_lambda net ~walk_estimate =
  max 1
    (int_of_float
       (Float.sqrt (Float.of_int (max 1 walk_estimate * max 1 (Cnet.depth net)))))

(* Phase 1 of Das Sarma et al.: every vertex grows [eta] walks of length
   [lambda], one edge per token per round; the per-round cost is the worst
   per-edge congestion, which is exactly how CONGEST serializes messages. *)
let build_short_walks net prng ~lambda ~eta =
  let g = Cnet.graph net in
  let n = Graph.n g in
  let walks = Array.init n (fun v -> Array.init eta (fun _ -> [ v ])) in
  for _ = 1 to lambda do
    let congestion = Hashtbl.create (4 * n) in
    Array.iter
      (fun per_vertex ->
        Array.iteri
          (fun i trail ->
            match trail with
            | [] -> assert false
            | head :: _ ->
                let next = Walk.step g prng head in
                per_vertex.(i) <- next :: trail;
                Hashtbl.replace congestion (head, next)
                  (1 + Option.value ~default:0 (Hashtbl.find_opt congestion (head, next))))
          per_vertex)
      walks;
    let worst = Hashtbl.fold (fun _ c acc -> max c acc) congestion 0 in
    Cnet.charge net ~label:"short-walk phase" (Float.of_int worst)
  done;
  (* Stacks of unused walks per vertex, oldest first; trails are reversed. *)
  Array.map
    (fun per_vertex ->
      let stack = Stack.create () in
      Array.iter (fun trail -> Stack.push (Array.of_list (List.rev trail)) stack) per_vertex;
      stack)
    walks

let das_sarma net prng ~lambda ~eta =
  if lambda < 1 || eta < 1 then invalid_arg "Congest_walk.das_sarma: bad params";
  let g = Cnet.graph net in
  let n = Graph.n g in
  let before = Cnet.rounds net in
  let st = cover_start n in
  let stock = ref (build_short_walks net prng ~lambda ~eta) in
  let current = ref 0 and steps = ref 0 and stitches = ref 0 in
  (* Rebuild a fresh batch at most this often; past the cap, fall back to
     single steps (keeps adversarial inputs from looping on phase 1). *)
  let rebuilds_left = ref 64 in
  while st.remaining > 0 do
    let stack = !stock.(!current) in
    if Stack.is_empty stack && !rebuilds_left > 0 then begin
      decr rebuilds_left;
      stock := build_short_walks net prng ~lambda ~eta
    end;
    if Stack.is_empty !stock.(!current) then begin
      (* Fallback: one token step, one round. *)
      let next = Walk.step g prng !current in
      Cnet.exchange net ~label:"token step"
        [ { Cnet.src = !current; dst = next; words = 1 } ];
      consume_step st ~from:!current ~to_:next;
      current := next;
      incr steps
    end
    else begin
      let trail = Stack.pop !stock.(!current) in
      (* The trail starts at !current; replay it for first-visit edges. *)
      for i = 1 to Array.length trail - 1 do
        consume_step st ~from:trail.(i - 1) ~to_:trail.(i)
      done;
      steps := !steps + Array.length trail - 1;
      incr stitches;
      let endpoint = trail.(Array.length trail - 1) in
      ignore
        (Cnet.token_route net ~label:"stitch" ~src:!current ~dst:endpoint ~words:1);
      current := endpoint
    end
  done;
  {
    tree = Tree.of_edges ~n st.tree_edges;
    rounds = Cnet.rounds net -. before;
    walk_length = !steps;
    stitches = !stitches;
  }
