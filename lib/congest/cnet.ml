module Graph = Cc_graph.Graph

type t = {
  graph : Graph.t;
  parent : int array; (* BFS tree toward vertex 0 *)
  dist : int array; (* BFS depth of each vertex *)
  depth : int;
  mutable total_rounds : float;
  by_label : (string, float) Hashtbl.t;
}

let create g =
  if not (Graph.is_connected g) then invalid_arg "Cnet.create: disconnected";
  let n = Graph.n g in
  let parent = Array.make n (-1) in
  let dist = Array.make n max_int in
  dist.(0) <- 0;
  let queue = Queue.create () in
  Queue.add 0 queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Array.iter
      (fun (v, _) ->
        if dist.(v) = max_int then begin
          dist.(v) <- dist.(u) + 1;
          parent.(v) <- u;
          Queue.add v queue
        end)
      (Graph.neighbors g u)
  done;
  let depth = Array.fold_left max 0 dist in
  {
    graph = g;
    parent;
    dist;
    depth;
    total_rounds = 0.0;
    by_label = Hashtbl.create 16;
  }

let graph t = t.graph
let rounds t = t.total_rounds

let reset t =
  t.total_rounds <- 0.0;
  Hashtbl.reset t.by_label

let book t ~label r =
  t.total_rounds <- t.total_rounds +. r;
  Hashtbl.replace t.by_label label
    (r +. Option.value ~default:0.0 (Hashtbl.find_opt t.by_label label))

type packet = { src : int; dst : int; words : int }

let exchange t ~label packets =
  let load = Hashtbl.create 64 in
  List.iter
    (fun { src; dst; words } ->
      if words < 0 then invalid_arg "Cnet.exchange: negative payload";
      if src <> dst && words > 0 then begin
        if not (Graph.has_edge t.graph src dst) then
          invalid_arg "Cnet.exchange: endpoints not adjacent";
        Hashtbl.replace load (src, dst)
          (words + Option.value ~default:0 (Hashtbl.find_opt load (src, dst)))
      end)
    packets;
  let max_load = Hashtbl.fold (fun _ w acc -> max w acc) load 0 in
  if max_load > 0 then book t ~label (Float.of_int max_load)

let depth t = t.depth

let token_route t ~label ~src ~dst ~words =
  if src < 0 || src >= Graph.n t.graph || dst < 0 || dst >= Graph.n t.graph then
    invalid_arg "Cnet.token_route: bad endpoint";
  if words < 0 then invalid_arg "Cnet.token_route: negative payload";
  if src = dst || words = 0 then 0.0
  else begin
    (* Route src -> root -> dst over the BFS tree; hop count is an upper
       bound on the shortest path, and every hop carries [words] words. *)
    let hops = t.dist.(src) + t.dist.(dst) in
    let r = Float.of_int (hops * words) in
    book t ~label r;
    r
  end

let charge t ~label r =
  if r < 0.0 then invalid_arg "Cnet.charge: negative rounds";
  book t ~label r

let ledger t =
  Hashtbl.fold (fun label r acc -> (label, r) :: acc) t.by_label []
  |> List.sort (fun (_, a) (_, b) -> compare b a)
