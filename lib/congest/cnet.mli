(** The CONGEST model: the related-work point of comparison.

    The paper contrasts its Congested Clique results with the much weaker
    CONGEST model (Das Sarma, Nanongkai, Pandurangan, Tetali: spanning-tree
    sampling in Õ(sqrt(m) D) rounds): machines are the graph's vertices and
    in each synchronous round one O(log n)-bit message crosses each edge in
    each direction. This simulator meters CONGEST algorithms the same way
    {!Cc_clique.Net} meters clique algorithms: all data movement goes
    through [exchange]/[token_route], and rounds are charged by the maximal
    per-edge directed load. *)

type t

(** [create g] builds a CONGEST network over the connected communication
    graph [g]. *)
val create : Cc_graph.Graph.t -> t

val graph : t -> Cc_graph.Graph.t
val rounds : t -> float

(** [reset t] zeroes the round counter. *)
val reset : t -> unit

type packet = { src : int; dst : int; words : int }

(** [exchange t ~label packets] delivers packets between {e adjacent}
    vertices; rounds = max over directed edges of the words crossing it.
    @raise Invalid_argument if some packet's endpoints are not adjacent. *)
val exchange : t -> label:string -> packet list -> unit

(** [depth t] is the BFS depth from vertex 0 — the diameter proxy D used by
    tree-routing costs. *)
val depth : t -> int

(** [token_route t ~label ~src ~dst ~words] moves a [words]-word token
    between two arbitrary vertices by routing over the BFS tree:
    charges [words * (dist to root + dist from root)] upper-bounded rounds
    (<= 2 * depth * words). Returns the charged rounds. *)
val token_route : t -> label:string -> src:int -> dst:int -> words:int -> float

(** [charge t ~label rounds] books analytic rounds (e.g. the flooding cost
    of the initial BFS construction, = depth). *)
val charge : t -> label:string -> float -> unit

(** [ledger t] is the per-label round breakdown, descending. *)
val ledger : t -> (string * float) list
