(** Wire protocol of the multi-process ([Mpproc]) transport.

    The supervisor (parent) and its shard workers (child processes) speak a
    framed message protocol over a Unix-domain socket pair. A frame is

    {v
      "CCW1"  magic            (4 bytes)
      length  big-endian       (4 bytes, payload bytes)
      payload one JSON message (length bytes)
      check   big-endian       (8 bytes, FNV-1a 64 of the payload)
    v}

    so a receiver can always resynchronize after a payload-level corruption
    (the length was read before the bad bytes) and detect it by checksum —
    the property the wire-level fault injector relies on: it only ever
    flips payload bytes, never the header, turning an injected corruption
    into a detectable, retransmittable loss instead of a protocol desync.

    Messages are JSON objects (via {!Cc_obs.Json}) tagged by a ["t"] field.
    The parent drives the conversation: workers only write in response to
    [Status_req] (and never initiate), which keeps the protocol deadlock-free
    with blocking writes on both sides. *)

(** One booked {!Cc_clique.Net} primitive as shipped to a shard: the scalar
    ledger fields plus {e this shard's slice} of the per-machine word
    vectors. Empty arrays mean an all-zero slice (analytic charges). *)
type book = {
  kind : string;  (** ["exchange"], ["broadcast"], ... — {!Cc_clique.Net.kind_name}. *)
  label : string;
  rounds : float;
  messages : int;
  words : int;
  max_load : int;
  sent : int array;
  recv : int array;
}

(** Serializable shard state: the checkpoint a worker is (re)started from
    and the snapshot the parent keeps as its authoritative mirror. *)
type shard_state = {
  shard : int;  (** shard id. *)
  lo : int;  (** first machine of the shard. *)
  hi : int;  (** one past the last machine. *)
  applied : int;  (** books applied so far. *)
  digest : int64;  (** running FNV-1a fold over the applied books. *)
  sent : int array;  (** per-machine words sent, length [hi - lo]. *)
  recv : int array;
}

type msg =
  | Hello of { worker : int; telemetry : bool; span_base : int }
      (** parent -> worker: identity, sent once. [telemetry] tells the worker
          whether to attach a {!Cc_obs.Telemetry} report to its [Status]
          replies (absent on the wire decodes as [true]). [span_base >= 0]
          tells a telemetry-enabled worker to install a local {!Cc_obs.Trace}
          collector whose span ids start there — the parent hands every
          spawn a disjoint base so merged distributed traces never collide —
          and to ship its drained span trees in each report; [-1] (the
          decode default when absent, i.e. an older parent) disables worker
          tracing. *)
  | Install of shard_state
      (** parent -> worker: create, restore (respawn) or adopt (reroute) a
          shard from a checkpoint. Replaces any existing state for the id.
          Also resets the worker's local metrics/trace registries and wire
          stats — each install opens a fresh telemetry epoch. *)
  | Book of { shard : int; seq : int; book : book }
      (** parent -> worker: apply book [seq] to [shard]. A worker only
          applies [seq = applied + 1]; anything else is a gap (a lost or
          corrupted predecessor) and is ignored — go-back-N retransmission
          is the parent's job, triggered by the next status poll. *)
  | Status_req  (** parent -> worker: report all shards. *)
  | Status of {
      shards : (int * int * int64) list;
      tele : Cc_obs.Telemetry.report option;
    }
      (** worker -> parent: [(shard, applied, digest)] per shard, ascending
          by shard id — the ack/heartbeat the supervisor syncs against —
          plus, when telemetry is enabled, the worker's self-snapshot
          (metrics registry, GC, span aggregates, per-shard wire health). *)
  | Shutdown  (** parent -> worker: exit cleanly. *)

val encode : msg -> string
val decode : string -> (msg, string) result

(** {1 Framing} *)

type read_error =
  | Timeout  (** deadline passed with the frame incomplete. *)
  | Eof  (** peer closed (a SIGKILLed worker surfaces here). *)
  | Bad_frame of string
      (** checksum mismatch or malformed header; the stream is resynced past
          the bad payload when the header was intact. *)

(** [write_frame fd payload] writes one complete frame (loops on short
    writes). Raises [Unix.Unix_error] — e.g. [EPIPE] on a dead peer; the
    caller treats that as a crashed worker. *)
val write_frame : Unix.file_descr -> string -> unit

(** [write_frame_corrupted fd payload] writes a frame whose payload bytes
    were flipped {e after} the checksum was computed — the wire-level fault
    injector's "real corruption": the receiver reads a full frame, fails the
    checksum, and must recover through retransmission. *)
val write_frame_corrupted : Unix.file_descr -> string -> unit

(** [read_frame ?deadline fd] reads one frame, blocking until [deadline]
    (absolute [Unix.gettimeofday] time; omitted = block forever). *)
val read_frame : ?deadline:float -> Unix.file_descr -> (string, read_error) result

(** {1 Digest}

    The shard digest is an FNV-1a 64-bit fold over the canonical line of
    every applied book — computed identically by the worker and by the
    parent's mirror, so equal digests prove the distributed metering agreed
    byte for byte. *)

val fnv_basis : int64
val fnv64 : int64 -> string -> int64

(** [book_line ~shard ~seq book] is the canonical serialization folded into
    the shard digest. *)
val book_line : shard:int -> seq:int -> book -> string
