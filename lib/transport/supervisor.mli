(** Supervision layer of the multi-process transport.

    The supervisor shards the clique's [machines] into contiguous blocks,
    spawns one OS worker process per block (the current executable re-exec'd
    under {!Worker.argv_marker}, connected by a Unix-domain socket pair), and
    mirrors every booked {!Wire.book} to the shard owners. It keeps an
    authoritative {!Shard.t} mirror per shard; workers are periodically
    cross-checked against it by status polls (the heartbeat), and the
    protocol heals real failures:

    - {b lost / corrupted frames} (including the wire-level fault injector's
      deliberate drops): the worker's sequence check leaves a gap, the next
      status poll reveals [applied < mirror], and the pending tail is
      retransmitted — go-back-N with bounded, exponentially backed-off
      status timeouts;
    - {b crashed workers} (SIGKILLed by {!crash_machines} per the fault
      schedule, or dead by any other cause — detected via EOF, [EPIPE],
      timeout exhaustion, or a digest mismatch): the worker is respawned and
      restored from the mirror checkpoint, up to [max_respawns] times;
    - {b unrespawnable workers}: their shards are {e rerouted} — adopted by
      another live worker via an [Install] of the checkpoint;
    - {b no live workers left}: the supervisor {e degrades} to in-process
      operation (the mirror was authoritative all along, so the run
      continues unperturbed), reported as {!health} [Degraded] — the
      transport-level analogue of the sampler's degrade-to-[Sequential]
      policy.

    None of this touches the model: rounds, ledger, and recorder digests are
    booked by the caller ({!Cc_clique.Net}) before the mirror ever sees a
    book, and the supervisor draws its wire-fault randomness from a private
    seeded stream — so same seeds give the same ledger and chain digest on
    both transports, which is the contract the cross-transport CI diff
    enforces.

    {b Distributed tracing.} When telemetry is on and the parent process has
    an active {!Cc_obs.Trace} collector at spawn time, each worker's [Hello]
    carries a disjoint span-id base and the worker ships its complete span
    trees on every heartbeat (see {!Worker}). The supervisor estimates each
    worker's clock offset from the heartbeat round trip (offset = poll
    midpoint − worker report stamp, EWMA-smoothed, re-estimated after a
    respawn; error bound ±RTT/2 — DESIGN.md §13), rebases remote timestamps
    into its own clock, and merges the trees into the parent collector as
    one process lane per shard — so a single merged trace holds the whole
    system, ready for [ccprof timeline] / [critical-path]. All of it is
    observability-only: no randomness, no ledger, no transport state. *)

type config = {
  workers : int;  (** worker processes to shard the machines across. *)
  status_timeout : float;  (** first status-poll timeout, seconds. *)
  max_attempts : int;
      (** status polls per sync (timeout doubling each attempt) before the
          worker is declared dead. *)
  max_respawns : int;  (** respawn budget per worker slot before reroute. *)
  sync_every : int;  (** books per shard between forced syncs. *)
  wire_drop_prob : float;
      (** probability a [Book] frame is really not written — exercises
          retransmission end to end. In [0, 1). *)
  wire_corrupt_prob : float;
      (** probability a [Book] frame is written with flipped payload bytes —
          the checksum catches it at the worker. In [0, 1). *)
  wire_seed : int;  (** seed of the private wire-fault stream. *)
  telemetry : bool;
      (** ship worker self-snapshots on [Status] replies and merge them into
          the parent registry under [worker.<shard>.*] (see
          {!Cc_obs.Telemetry}). Zero-perturbation either way: ledger,
          rounds, and recorder digests are identical on and off. *)
  stats_sock : string option;
      (** when set, a Unix-domain listen socket at this path serves one live
          JSON status snapshot per connection — the endpoint
          [ccprof watch] polls. Unusable paths are ignored, never fatal. *)
  journal_cap : int;
      (** max retained supervision-journal events (drop-oldest). *)
}

val default_config : config

type health =
  | All_healthy  (** no fault touched the transport. *)
  | Recovered of { respawns : int; reroutes : int; wire_retries : int }
      (** failures occurred and were fully healed; every shard digest
          matches the mirror. *)
  | Degraded of { reason : string }
      (** no live worker remains; the run continued on the in-process
          mirror. *)

val pp_health : Format.formatter -> health -> unit

(** Monotone counters over the supervisor's lifetime. *)
type snapshot = {
  books : int;  (** primitives mirrored to the workers. *)
  kills : int;  (** SIGKILLs delivered by {!crash_machines}. *)
  respawns : int;
  reroutes : int;  (** shards adopted by another worker. *)
  wire_drops : int;  (** frames deliberately lost by the injector. *)
  wire_corrupts : int;
  wire_retries : int;  (** frames retransmitted after a status poll. *)
  syncs : int;  (** successful shard syncs (digest verified). *)
  recovery_s : float;  (** total wall-clock seconds spent recovering. *)
}

type t

(** [create ?config ~machines ()] spawns the workers and installs empty
    shards. A failed spawn degrades rather than raising.
    @raise Invalid_argument if [machines < 1] or a config field is out of
    range. *)
val create : ?config:config -> machines:int -> unit -> t

val machines : t -> int

(** [workers_alive t] is the number of worker processes currently live. *)
val workers_alive : t -> int

(** [pids t] is the live worker PIDs (for tests that kill out-of-band). *)
val pids : t -> int list

(** [emit t book] mirrors one booked primitive ([book.sent]/[book.recv] are
    the full per-machine vectors; the supervisor slices per shard). Never
    raises and never blocks beyond a bounded sync. No-op when degraded. *)
val emit : t -> Wire.book -> unit

(** [crash_machines t ms] fires the fault schedule for machines [ms]: each
    owning worker is SIGKILLed mid-round — a real crash-stop — and then
    recovered (respawn-or-reroute). No-op when degraded. *)
val crash_machines : t -> int list -> unit

(** [sync t] brings every worker up to date and cross-checks every shard
    digest against the mirror, healing as needed. Call at phase boundaries
    and at end of run, before reading {!health}. *)
val sync : t -> unit

val health : t -> health
val snapshot : t -> snapshot

(** [journal t] is the bounded supervision-event journal: one structured
    record per health transition (worker start/stop, kill, heartbeat
    timeout, respawn, checkpoint install, reroute, degrade), each stamped
    with the simulated round clock. A clean run's journal holds only
    [worker_start]/[worker_stop] — the property the clean-run CI gate
    asserts via [ccprof events --assert-clean]. *)
val journal : t -> Cc_obs.Journal.t

(** [owner_of t m] is the worker slot currently serving machine [m]'s shard
    (per-process attribution for the load profile). *)
val owner_of : t -> int -> int

(** [shutdown t] asks live workers to exit, then reaps them (SIGKILL after
    a grace period). Idempotent. *)
val shutdown : t -> unit
