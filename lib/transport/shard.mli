(** Shard state machine of the multi-process transport.

    A shard is a contiguous block of clique machines [\[lo, hi)] together
    with the per-machine word counters booked against them and a running
    digest over every applied {!Wire.book}. The same module runs on both
    sides of the socket: each worker process holds the shards it serves, and
    the supervisor holds an authoritative {e mirror} of every shard — the
    checkpoint a killed worker is restored from, and the reference the
    worker's digest is cross-checked against at every sync.

    Applying a book is deterministic and order-sensitive (the digest folds
    the canonical line of every book in sequence), so equal
    [(applied, digest)] pairs prove the worker saw exactly the bytes the
    mirror did — the cross-process half of the repo's determinism
    contract. *)

type t = {
  id : int;
  lo : int;
  hi : int;  (** exclusive. *)
  sent : int array;  (** words sent per machine of the shard ([hi - lo]). *)
  recv : int array;
  mutable applied : int;
  mutable digest : int64;
}

(** [create ~id ~lo ~hi] is an empty shard.
    @raise Invalid_argument unless [0 <= lo < hi]. *)
val create : id:int -> lo:int -> hi:int -> t

val width : t -> int

type apply_result =
  | Applied
  | Gap
      (** [seq <> applied + 1]: a predecessor was lost or corrupted on the
          wire. The book is ignored; the supervisor retransmits from
          [applied + 1] after the next status poll (go-back-N). *)

(** [apply t ~seq book] folds book [seq] into the shard iff it is the next
    expected one. [book.sent]/[book.recv] are this shard's slices ([[||]]
    means all-zero). *)
val apply : t -> seq:int -> Wire.book -> apply_result

val to_state : t -> Wire.shard_state
val of_state : Wire.shard_state -> t

val digest_hex : t -> string
