module Metrics = Cc_obs.Metrics
module Telemetry = Cc_obs.Telemetry

let argv_marker = "__cc-transport-worker"

(* Per-shard wire health, counted since the last [Install] (the telemetry
   epoch boundary). *)
type wstats = {
  mutable books : int;
  mutable gaps : int;
  mutable bytes_in : int;
  mutable installs : int;
}

let serve ~input ~output =
  let shards : (int, Shard.t) Hashtbl.t = Hashtbl.create 4 in
  let stats : (int, wstats) Hashtbl.t = Hashtbl.create 4 in
  let telemetry = ref true in
  let stat shard =
    match Hashtbl.find_opt stats shard with
    | Some s -> s
    | None ->
        let s = { books = 0; gaps = 0; bytes_in = 0; installs = 0 } in
        Hashtbl.replace stats shard s;
        s
  in
  let wire_report () =
    Hashtbl.fold
      (fun id (s : wstats) acc ->
        {
          Telemetry.shard = id;
          books = s.books;
          gaps = s.gaps;
          bytes_in = s.bytes_in;
          installs = s.installs;
        }
        :: acc)
      stats []
    |> List.sort (fun a b -> compare a.Telemetry.shard b.Telemetry.shard)
  in
  let running = ref true in
  while !running do
    match Wire.read_frame input with
    | Error Wire.Eof -> running := false
    | Error Wire.Timeout -> running := false (* no deadline set: unreachable *)
    | Error (Wire.Bad_frame _) ->
        (* A corrupted payload: the frame was consumed (length-prefixed), so
           the stream is still in sync. Drop it — the parent's go-back-N
           retransmission repairs the sequence gap it leaves behind. *)
        Metrics.incr "wire.bad_frames"
    | Ok payload -> (
        Metrics.incr "wire.frames_in";
        Metrics.incr ~by:(String.length payload) "wire.bytes_in";
        match Wire.decode payload with
        | Error _ -> () (* undecodable payload: same story as a bad frame *)
        | Ok (Wire.Hello h) -> telemetry := h.telemetry
        | Ok (Wire.Install st) ->
            (* An install opens a fresh telemetry epoch: the parent commits
               everything this worker reported so far, so the local registry
               and wire stats restart from zero — a respawned or rerouted
               worker never re-reports pre-checkpoint counts. *)
            Metrics.reset ();
            Hashtbl.iter
              (fun _ (s : wstats) ->
                s.books <- 0;
                s.gaps <- 0;
                s.bytes_in <- 0;
                s.installs <- 0)
              stats;
            Hashtbl.replace shards st.Wire.shard (Shard.of_state st);
            (stat st.Wire.shard).installs <- 1
        | Ok (Wire.Book { shard; seq; book }) -> (
            match Hashtbl.find_opt shards shard with
            | Some s -> (
                let w = stat shard in
                match Shard.apply s ~seq book with
                | Shard.Applied ->
                    w.books <- w.books + 1;
                    w.bytes_in <- w.bytes_in + String.length payload
                | Shard.Gap -> w.gaps <- w.gaps + 1)
            | None -> () (* not installed yet: parent will resync *))
        | Ok Wire.Status_req ->
            Metrics.incr "wire.status_reqs";
            let report =
              Hashtbl.fold
                (fun id (s : Shard.t) acc -> (id, s.applied, s.digest) :: acc)
                shards []
              |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
            in
            let tele =
              if !telemetry then
                Some (Telemetry.capture ~shards:(wire_report ()) ())
              else None
            in
            let encoded = Wire.encode (Wire.Status { shards = report; tele }) in
            Metrics.incr ~by:(String.length encoded) "wire.bytes_out";
            Wire.write_frame output encoded
        | Ok (Wire.Status _) -> () (* parent-bound only *)
        | Ok Wire.Shutdown -> running := false)
  done

let maybe_run_as_worker () =
  if Array.length Sys.argv >= 2 && Sys.argv.(1) = argv_marker then begin
    (* The parent may die while we block on read; EPIPE/EOF both end the
       loop, so no special signal handling is needed beyond ignoring
       SIGPIPE for the status writes. *)
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
    (try serve ~input:Unix.stdin ~output:Unix.stdout
     with Unix.Unix_error _ -> ());
    exit 0
  end
