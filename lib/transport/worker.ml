let argv_marker = "__cc-transport-worker"

let serve ~input ~output =
  let shards : (int, Shard.t) Hashtbl.t = Hashtbl.create 4 in
  let running = ref true in
  while !running do
    match Wire.read_frame input with
    | Error Wire.Eof -> running := false
    | Error Wire.Timeout -> running := false (* no deadline set: unreachable *)
    | Error (Wire.Bad_frame _) ->
        (* A corrupted payload: the frame was consumed (length-prefixed), so
           the stream is still in sync. Drop it — the parent's go-back-N
           retransmission repairs the sequence gap it leaves behind. *)
        ()
    | Ok payload -> (
        match Wire.decode payload with
        | Error _ -> () (* undecodable payload: same story as a bad frame *)
        | Ok (Wire.Hello _) -> ()
        | Ok (Wire.Install st) ->
            Hashtbl.replace shards st.Wire.shard (Shard.of_state st)
        | Ok (Wire.Book { shard; seq; book }) -> (
            match Hashtbl.find_opt shards shard with
            | Some s -> ignore (Shard.apply s ~seq book)
            | None -> () (* not installed yet: parent will resync *))
        | Ok Wire.Status_req ->
            let report =
              Hashtbl.fold
                (fun id (s : Shard.t) acc -> (id, s.applied, s.digest) :: acc)
                shards []
              |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
            in
            Wire.write_frame output (Wire.encode (Wire.Status { shards = report }))
        | Ok (Wire.Status _) -> () (* parent-bound only *)
        | Ok Wire.Shutdown -> running := false)
  done

let maybe_run_as_worker () =
  if Array.length Sys.argv >= 2 && Sys.argv.(1) = argv_marker then begin
    (* The parent may die while we block on read; EPIPE/EOF both end the
       loop, so no special signal handling is needed beyond ignoring
       SIGPIPE for the status writes. *)
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
    (try serve ~input:Unix.stdin ~output:Unix.stdout
     with Unix.Unix_error _ -> ());
    exit 0
  end
