module Metrics = Cc_obs.Metrics
module Telemetry = Cc_obs.Telemetry
module Trace = Cc_obs.Trace

let argv_marker = "__cc-transport-worker"

(* Close a [worker.books] batch after this many applied books even if the
   shard hasn't changed, so long phases still ship incrementally sized
   spans on each heartbeat. *)
let batch_cap = 1024

(* Per-shard wire health, counted since the last [Install] (the telemetry
   epoch boundary). *)
type wstats = {
  mutable books : int;
  mutable gaps : int;
  mutable bytes_in : int;
  mutable installs : int;
}

let serve ~input ~output =
  let shards : (int, Shard.t) Hashtbl.t = Hashtbl.create 4 in
  let stats : (int, wstats) Hashtbl.t = Hashtbl.create 4 in
  let telemetry = ref true in
  let stat shard =
    match Hashtbl.find_opt stats shard with
    | Some s -> s
    | None ->
        let s = { books = 0; gaps = 0; bytes_in = 0; installs = 0 } in
        Hashtbl.replace stats shard s;
        s
  in
  let wire_report () =
    Hashtbl.fold
      (fun id (s : wstats) acc ->
        {
          Telemetry.shard = id;
          books = s.books;
          gaps = s.gaps;
          bytes_in = s.bytes_in;
          installs = s.installs;
        }
        :: acc)
      stats []
    |> List.sort (fun a b -> compare a.Telemetry.shard b.Telemetry.shard)
  in
  (* Distributed tracing (Hello span_base >= 0): a local collector whose
     span ids start at the parent-assigned base. [worker.books] batch spans
     are message-driven — opened on the first applied book, closed on shard
     change / batch cap / the next heartbeat — so span boundaries are
     manual, not lexical. *)
  let tracer = ref None in
  let batch = ref None (* (shard, count ref) of the open batch span *) in
  let close_batch () =
    match (!tracer, !batch) with
    | Some tr, Some (_, count) ->
        Trace.close_span ~args:[ ("books", string_of_int !count) ] tr;
        batch := None
    | _ -> ()
  in
  let batch_book shard =
    match !tracer with
    | None -> ()
    | Some tr -> (
        (match !batch with
        | Some (s, count) when s = shard && !count < batch_cap ->
            incr count
        | Some _ ->
            close_batch ();
            Trace.open_span tr
              ~args:[ ("shard", string_of_int shard) ]
              "worker.books";
            batch := Some (shard, ref 1)
        | None ->
            Trace.open_span tr
              ~args:[ ("shard", string_of_int shard) ]
              "worker.books";
            batch := Some (shard, ref 1)))
  in
  (* Cumulative span aggregates for the telemetry report: draining the
     collector for tree shipping would make [Telemetry.capture]'s own
     root-span fold partial per report, and the parent epoch merge needs
     cumulative-within-epoch values. Reset at [Install] (epoch boundary). *)
  let agg : (string, (int * float) ref) Hashtbl.t = Hashtbl.create 16 in
  let agg_order = ref [] in
  let fold_spans trees =
    List.iter
      (fun (sp : Trace.span) ->
        let wall = sp.Trace.stop_ts -. sp.Trace.start_ts in
        match Hashtbl.find_opt agg sp.Trace.name with
        | Some r ->
            let calls, w = !r in
            r := (calls + 1, w +. wall)
        | None ->
            Hashtbl.replace agg sp.Trace.name (ref (1, wall));
            agg_order := sp.Trace.name :: !agg_order)
      trees
  in
  let agg_report () =
    List.rev_map
      (fun n ->
        let calls, wall_s = !(Hashtbl.find agg n) in
        { Telemetry.name = n; calls; wall_s })
      !agg_order
  in
  let running = ref true in
  while !running do
    match Wire.read_frame input with
    | Error Wire.Eof -> running := false
    | Error Wire.Timeout -> running := false (* no deadline set: unreachable *)
    | Error (Wire.Bad_frame _) ->
        (* A corrupted payload: the frame was consumed (length-prefixed), so
           the stream is still in sync. Drop it — the parent's go-back-N
           retransmission repairs the sequence gap it leaves behind. *)
        Metrics.incr "wire.bad_frames"
    | Ok payload -> (
        Metrics.incr "wire.frames_in";
        Metrics.incr ~by:(String.length payload) "wire.bytes_in";
        match Wire.decode payload with
        | Error _ -> () (* undecodable payload: same story as a bad frame *)
        | Ok (Wire.Hello h) ->
            telemetry := h.telemetry;
            if h.telemetry && h.span_base >= 0 && !tracer = None then begin
              let tr = Trace.create ~first_id:h.span_base () in
              Trace.install tr;
              tracer := Some tr
            end
        | Ok (Wire.Install st) ->
            (* An install opens a fresh telemetry epoch: the parent commits
               everything this worker reported so far, so the local registry
               and wire stats restart from zero — a respawned or rerouted
               worker never re-reports pre-checkpoint counts. *)
            close_batch ();
            (match !tracer with
            | Some tr ->
                Trace.open_span tr
                  ~args:[ ("shard", string_of_int st.Wire.shard) ]
                  "worker.install"
            | None -> ());
            Metrics.reset ();
            Hashtbl.reset agg;
            agg_order := [];
            Hashtbl.iter
              (fun _ (s : wstats) ->
                s.books <- 0;
                s.gaps <- 0;
                s.bytes_in <- 0;
                s.installs <- 0)
              stats;
            Hashtbl.replace shards st.Wire.shard (Shard.of_state st);
            (stat st.Wire.shard).installs <- 1;
            (match !tracer with
            | Some tr -> Trace.close_span tr
            | None -> ())
        | Ok (Wire.Book { shard; seq; book }) -> (
            match Hashtbl.find_opt shards shard with
            | Some s -> (
                let w = stat shard in
                match Shard.apply s ~seq book with
                | Shard.Applied ->
                    batch_book shard;
                    w.books <- w.books + 1;
                    w.bytes_in <- w.bytes_in + String.length payload
                | Shard.Gap -> w.gaps <- w.gaps + 1)
            | None -> () (* not installed yet: parent will resync *))
        | Ok Wire.Status_req ->
            Metrics.incr "wire.status_reqs";
            let report =
              Hashtbl.fold
                (fun id (s : Shard.t) acc -> (id, s.applied, s.digest) :: acc)
                shards []
              |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
            in
            let tele =
              if !telemetry then begin
                let spans, trees, events =
                  match !tracer with
                  | None -> (None, [], [])
                  | Some tr ->
                      close_batch ();
                      let trees = Trace.drain_roots tr in
                      let events = Trace.drain_events tr in
                      fold_spans trees;
                      (Some (agg_report ()), trees, events)
                in
                Some
                  (Telemetry.capture ?spans ~trees ~events
                     ~shards:(wire_report ()) ())
              end
              else None
            in
            let encoded = Wire.encode (Wire.Status { shards = report; tele }) in
            Metrics.incr ~by:(String.length encoded) "wire.bytes_out";
            Wire.write_frame output encoded
        | Ok (Wire.Status _) -> () (* parent-bound only *)
        | Ok Wire.Shutdown -> running := false)
  done

let maybe_run_as_worker () =
  if Array.length Sys.argv >= 2 && Sys.argv.(1) = argv_marker then begin
    (* The parent may die while we block on read; EPIPE/EOF both end the
       loop, so no special signal handling is needed beyond ignoring
       SIGPIPE for the status writes. *)
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
    (try serve ~input:Unix.stdin ~output:Unix.stdout
     with Unix.Unix_error _ -> ());
    exit 0
  end
