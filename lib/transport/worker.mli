(** Shard worker process: the child side of the multi-process transport.

    A worker is the same executable as its parent, re-exec'd with
    {!argv_marker} as its first argument; its stdin/stdout are the two ends
    of the supervisor's socket pair. It owns a set of {!Shard.t}s (installed
    and re-installed by the parent), applies [Book] messages in sequence,
    and answers [Status_req] with its per-shard [(applied, digest)] pairs.
    It never initiates a write, so the protocol cannot deadlock.

    Malformed or checksum-failing frames are skipped (the parent's
    retransmission heals the resulting gap); EOF or [Shutdown] ends the
    process.

    {b Telemetry.} Unless the parent's [Hello] turned it off, every [Status]
    reply carries a {!Cc_obs.Telemetry} self-snapshot: the worker's local
    metrics registry (frame/byte/status counters under [wire.*], plus
    whatever the serving code records), GC stats, completed trace-span
    aggregates, and per-shard wire health. The registry and wire stats are
    reset at every [Install] — each install opens a fresh telemetry epoch,
    which is what lets the parent's monotone merge survive respawn/reroute
    without double-counting (see {!Cc_obs.Telemetry.Merge}).

    {b Distributed tracing.} When the [Hello] additionally carries a
    non-negative [span_base], the worker installs a local {!Cc_obs.Trace}
    collector whose span ids start at that base (parent-assigned, disjoint
    per spawn, so merged ids never collide) and records its work as spans:
    [worker.books] batches of applied [Book]s (one batch per contiguous run
    on a shard, closed at shard change, batch cap, or the next status poll;
    args carry the shard and final count) and [worker.install] for each
    checkpoint install. Every [Status] reply then ships the collector's
    {e complete} drained span trees and net events inside the telemetry
    report — each completed span leaves the worker exactly once — while the
    report's flattened span aggregates come from a worker-kept cumulative
    accumulator (reset at [Install]) so the epoch merge still sees
    cumulative values. The supervisor's final pre-[Shutdown] status poll is
    the flush that collects whatever the last heartbeat missed. *)

(** [serve ~input ~output] runs the message loop until EOF or [Shutdown].
    Returns normally on a clean shutdown. *)
val serve : input:Unix.file_descr -> output:Unix.file_descr -> unit

(** The reserved [argv.(1)] marker under which every transport-capable
    binary re-execs itself as a worker. *)
val argv_marker : string

(** [maybe_run_as_worker ()] must be the first statement of [main] in every
    binary that can create an [Mpproc] transport (it is the worker
    entrypoint): when [argv.(1)] is {!argv_marker} it serves on
    stdin/stdout and exits, never returning; otherwise it is a no-op. *)
val maybe_run_as_worker : unit -> unit
