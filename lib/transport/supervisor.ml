module Prng = Cc_util.Prng
module Metrics = Cc_obs.Metrics
module Trace = Cc_obs.Trace
module Telemetry = Cc_obs.Telemetry
module Journal = Cc_obs.Journal
module Json = Cc_obs.Json

type config = {
  workers : int;
  status_timeout : float;
  max_attempts : int;
  max_respawns : int;
  sync_every : int;
  wire_drop_prob : float;
  wire_corrupt_prob : float;
  wire_seed : int;
  telemetry : bool;
  stats_sock : string option;
  journal_cap : int;
}

let default_config =
  {
    workers = 4;
    status_timeout = 2.0;
    max_attempts = 3;
    max_respawns = 2;
    sync_every = 512;
    wire_drop_prob = 0.0;
    wire_corrupt_prob = 0.0;
    wire_seed = 0;
    telemetry = true;
    stats_sock = None;
    journal_cap = 4096;
  }

type health =
  | All_healthy
  | Recovered of { respawns : int; reroutes : int; wire_retries : int }
  | Degraded of { reason : string }

let pp_health fmt = function
  | All_healthy -> Format.fprintf fmt "all healthy"
  | Recovered { respawns; reroutes; wire_retries } ->
      Format.fprintf fmt "recovered (respawns=%d, reroutes=%d, wire retries=%d)"
        respawns reroutes wire_retries
  | Degraded { reason } -> Format.fprintf fmt "degraded to inproc: %s" reason

type snapshot = {
  books : int;
  kills : int;
  respawns : int;
  reroutes : int;
  wire_drops : int;
  wire_corrupts : int;
  wire_retries : int;
  syncs : int;
  recovery_s : float;
}

type conn = { pid : int; fd : Unix.file_descr }

type wslot = {
  wid : int;
  mutable conn : conn option;
  mutable respawns_used : int;
  mutable last_rtt_ms : float;  (* last status-poll round trip; nan = none *)
  (* Estimated worker-clock -> parent-clock offset (seconds), EWMA-smoothed
     over heartbeat samples: offset = poll midpoint - worker report stamp,
     good to +-RTT/2 (DESIGN.md section 13). NaN until the first telemetry
     reply; reset on respawn (a new process, a new estimate). *)
  mutable clock_offset : float;
}

type shardrec = {
  mirror : Shard.t;
  mutable owner : int;
  (* Unacked books, newest first: (seq, encoded Book payload). Cleared when
     a status poll confirms the worker caught up, or when a respawn/reroute
     restores the shard from the mirror checkpoint. *)
  mutable pending : (int * string) list;
  mutable since_sync : int;
}

type t = {
  n_machines : int;
  config : config;
  exe : string;
  slots : wslot array;
  shards : shardrec array;
  wire_prng : Prng.t option;
  journal : Journal.t;
  merge : Telemetry.Merge.t;
  (* Next parent-assigned span-id base. Every spawn (respawns included) gets
     a disjoint [span_stride]-wide namespace, so ids in the merged trace
     never collide across processes or process generations. *)
  mutable next_span_base : int;
  mutable stats_fd : Unix.file_descr option;
  mutable s_rounds : float;
  mutable s_books : int;
  mutable s_kills : int;
  mutable s_respawns : int;
  mutable s_reroutes : int;
  mutable s_wire_drops : int;
  mutable s_wire_corrupts : int;
  mutable s_wire_retries : int;
  mutable s_syncs : int;
  mutable s_recovery : float;
  mutable degraded : string option;
  mutable shut : bool;
}

let machines t = t.n_machines

let snapshot t =
  {
    books = t.s_books;
    kills = t.s_kills;
    respawns = t.s_respawns;
    reroutes = t.s_reroutes;
    wire_drops = t.s_wire_drops;
    wire_corrupts = t.s_wire_corrupts;
    wire_retries = t.s_wire_retries;
    syncs = t.s_syncs;
    recovery_s = t.s_recovery;
  }

let health t =
  match t.degraded with
  | Some reason -> Degraded { reason }
  | None ->
      if t.s_respawns + t.s_reroutes + t.s_wire_retries + t.s_kills > 0 then
        Recovered
          {
            respawns = t.s_respawns;
            reroutes = t.s_reroutes;
            wire_retries = t.s_wire_retries;
          }
      else All_healthy

let journal t = t.journal

(* Journal shorthand: every event carries the simulated round clock. *)
let jrecord t ?worker ?shard ?attempt ?budget ?cause kind =
  Journal.record t.journal ?worker ?shard ?attempt ?budget ?cause
    ~round:t.s_rounds kind

let workers_alive t =
  Array.fold_left
    (fun acc s -> if s.conn <> None then acc + 1 else acc)
    0 t.slots

let pids t =
  Array.to_list t.slots
  |> List.filter_map (fun s -> Option.map (fun c -> c.pid) s.conn)

let owner_of t m =
  if m < 0 || m >= t.n_machines then invalid_arg "Supervisor.owner_of";
  let sr =
    Array.to_list t.shards
    |> List.find (fun sr -> sr.mirror.Shard.lo <= m && m < sr.mirror.Shard.hi)
  in
  sr.owner

(* --- process plumbing --- *)

let reap pid =
  (* SIGKILLed or exited children are collected promptly; a blocking waitpid
     on a killed pid cannot hang. *)
  try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()

let close_conn c =
  (try Unix.close c.fd with Unix.Unix_error _ -> ())

let kill_conn c =
  (try Unix.kill c.pid Sys.sigkill with Unix.Unix_error _ -> ());
  close_conn c;
  reap c.pid

let span_stride = 1 lsl 30

let spawn t wid =
  let parent_fd, child_fd =
    Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0
  in
  Unix.set_close_on_exec parent_fd;
  match
    Unix.create_process t.exe
      [| t.exe; Worker.argv_marker |]
      child_fd child_fd Unix.stderr
  with
  | pid ->
      Unix.close child_fd;
      let c = { pid; fd = parent_fd } in
      (* Worker tracing only pays off when the parent has a collector to
         merge into; without one, don't ask for trees (span_base = -1). *)
      let span_base =
        if t.config.telemetry && Trace.enabled () then begin
          let b = t.next_span_base in
          t.next_span_base <- b + span_stride;
          b
        end
        else -1
      in
      Wire.write_frame c.fd
        (Wire.encode
           (Wire.Hello
              { worker = wid; telemetry = t.config.telemetry; span_base }));
      c
  | exception e ->
      (try Unix.close parent_fd with Unix.Unix_error _ -> ());
      (try Unix.close child_fd with Unix.Unix_error _ -> ());
      raise e

let mark_dead slot =
  match slot.conn with
  | None -> ()
  | Some c ->
      kill_conn c;
      slot.conn <- None

let degrade t reason =
  if t.degraded = None then begin
    t.degraded <- Some reason;
    Metrics.incr "transport.degraded";
    jrecord t ~cause:reason "degrade";
    Array.iter mark_dead t.slots
  end

(* Write a control frame (Hello/Install/Status_req/Shutdown) — never subject
   to wire-fault injection, so supervision stays live under any drop rate. *)
let send_ctl slot payload =
  match slot.conn with
  | None -> false
  | Some c -> (
      try
        Wire.write_frame c.fd payload;
        true
      with Unix.Unix_error _ | Sys_error _ ->
        mark_dead slot;
        false)

(* Write one Book frame through the wire-fault injector. Returns false when
   the worker died under us (EPIPE). [inject] is false on retransmissions:
   faults hit first transmissions only, so the go-back-N healing path always
   converges — a lossy wire costs retries, never respawns. *)
let send_book ?(inject = true) t slot payload =
  match slot.conn with
  | None -> false
  | Some c -> (
      let verdict =
        match t.wire_prng with
        | None -> `Send
        | Some _ when not inject -> `Send
        | Some p ->
            let x = Prng.float p 1.0 in
            if x < t.config.wire_drop_prob then `Drop
            else if x < t.config.wire_drop_prob +. t.config.wire_corrupt_prob
            then `Corrupt
            else `Send
      in
      try
        (match verdict with
        | `Drop ->
            t.s_wire_drops <- t.s_wire_drops + 1;
            Metrics.incr "transport.wire_drops"
        | `Corrupt ->
            t.s_wire_corrupts <- t.s_wire_corrupts + 1;
            Metrics.incr "transport.wire_corrupts";
            Wire.write_frame_corrupted c.fd payload
        | `Send -> Wire.write_frame c.fd payload);
        true
      with Unix.Unix_error _ | Sys_error _ ->
        mark_dead slot;
        false)

let shards_owned t wid =
  Array.to_list t.shards |> List.filter (fun sr -> sr.owner = wid)

(* (Re)install a shard from its mirror checkpoint. The worker resets its
   whole registry and wire stats on ANY Install, so the telemetry epoch of
   every shard the slot serves closes here — commit them all, or the next
   report would re-add counts the parent already holds. [why] is the
   recovery cause; empty for the routine creation-time installs, which are
   not journal-worthy (the clean-run gate wants start/stop only). *)
let install_shard ?(why = "") t slot sr =
  sr.pending <- [];
  sr.since_sync <- 0;
  List.iter
    (fun o -> Telemetry.Merge.commit t.merge ~shard:o.mirror.Shard.id)
    (shards_owned t slot.wid);
  Telemetry.Merge.commit t.merge ~shard:sr.mirror.Shard.id;
  if why <> "" then
    jrecord t ~worker:slot.wid ~shard:sr.mirror.Shard.id ~cause:why "install";
  ignore (send_ctl slot (Wire.encode (Wire.Install (Shard.to_state sr.mirror))))

(* Respawn-or-reroute recovery for one worker slot. The mirror is the
   checkpoint: a respawned worker is restored with one Install per shard
   (pending retransmission buffers become redundant and are cleared). *)
let recover_slot t slot =
  if t.degraded = None then begin
    let t0 = Unix.gettimeofday () in
    Trace.instant "transport.recover"
      ~args:[ ("worker", string_of_int slot.wid) ];
    mark_dead slot;
    let restored =
      if slot.respawns_used < t.config.max_respawns then (
        match spawn t slot.wid with
        | c ->
            slot.conn <- Some c;
            slot.clock_offset <- Float.nan (* new process, new clock *);
            slot.respawns_used <- slot.respawns_used + 1;
            t.s_respawns <- t.s_respawns + 1;
            Metrics.incr "transport.respawns";
            jrecord t ~worker:slot.wid ~attempt:slot.respawns_used
              ~budget:(t.config.max_respawns - slot.respawns_used)
              "respawn";
            List.iter
              (install_shard ~why:"respawn restore" t slot)
              (shards_owned t slot.wid);
            true
        | exception _ -> false)
      else false
    in
    if not restored then begin
      (* Reroute: hand the dead slot's shards to any live worker. *)
      match
        Array.to_list t.slots |> List.find_opt (fun s -> s.conn <> None)
      with
      | Some adopter ->
          List.iter
            (fun sr ->
              sr.owner <- adopter.wid;
              t.s_reroutes <- t.s_reroutes + 1;
              Metrics.incr "transport.reroutes";
              jrecord t ~worker:adopter.wid ~shard:sr.mirror.Shard.id
                ~cause:
                  (Printf.sprintf "adopted from dead worker %d" slot.wid)
                "reroute";
              install_shard ~why:"reroute adoption" t adopter sr)
            (shards_owned t slot.wid)
      | None ->
          degrade t
            (Printf.sprintf
               "worker %d unrecoverable and no live worker left to adopt \
                its shard"
               slot.wid)
    end;
    let dt = Unix.gettimeofday () -. t0 in
    t.s_recovery <- t.s_recovery +. dt;
    Metrics.observe "transport.recovery_ms" (1000.0 *. dt)
  end

(* Deliver a worker report's drained span trees and events into the parent
   collector as per-shard process lanes, rebased by the slot's clock-offset
   estimate. A tree lands in the lane of the shard named in its root span's
   args; trees without one (and all events) go to the report's first shard.
   Pure observability: only the parent collector is touched. *)
let merge_remote_trace slot shards (r : Telemetry.report) =
  match Trace.current () with
  | None -> ()
  | Some parent_tr ->
      let offset =
        if Float.is_nan slot.clock_offset then 0.0 else slot.clock_offset
      in
      let fallback =
        match r.Telemetry.shards with
        | sw :: _ -> Some sw.Telemetry.shard
        | [] -> ( match shards with (id, _, _) :: _ -> Some id | [] -> None)
      in
      let lane_of (sp : Trace.span) =
        match
          Option.bind
            (List.assoc_opt "shard" sp.Trace.args)
            int_of_string_opt
        with
        | Some s -> Some s
        | None -> fallback
      in
      let deliver ~shard add =
        match shard with
        | None -> ()
        | Some s ->
            add ~pid:(Trace.local_pid + 1 + s)
              ~process:(Printf.sprintf "shard %d" s)
      in
      List.iter
        (fun sp ->
          deliver ~shard:(lane_of sp) (fun ~pid ~process ->
              Trace.add_remote_span parent_tr ~pid ~process
                (Trace.rebase_span ~offset sp)))
        r.Telemetry.trees;
      List.iter
        (fun ev ->
          deliver ~shard:fallback (fun ~pid ~process ->
              Trace.add_remote_event parent_tr ~pid ~process
                (Trace.rebase_event ~offset ev)))
        r.Telemetry.events

(* One status poll with an absolute deadline. [`Status shards] on success.
   When telemetry is on, a successful poll also feeds the parent registry:
   the poll round trip becomes a [worker.<shard>.wire.rtt_ms] observation
   for every shard the worker reported, the report's capture stamp updates
   the slot's clock-offset estimate (offset = poll midpoint - worker stamp,
   smoothed; error bound +-RTT/2), the attached worker report goes through
   the epoch-aware merge, and any shipped span trees are rebased into the
   parent clock and merged as process lanes. *)
let poll_status t slot ~timeout =
  let t0 = Unix.gettimeofday () in
  if not (send_ctl slot (Wire.encode Wire.Status_req)) then `Dead
  else
    match slot.conn with
    | None -> `Dead
    | Some c -> (
        let deadline = t0 +. timeout in
        let rec read () =
          match Wire.read_frame ~deadline c.fd with
          | Error Wire.Timeout -> `Timeout
          | Error Wire.Eof -> `Dead
          | Error (Wire.Bad_frame _) -> read ()
          | Ok payload -> (
              match Wire.decode payload with
              | Ok (Wire.Status { shards; tele }) ->
                  if t.config.telemetry then begin
                    let now = Unix.gettimeofday () in
                    let rtt_ms = 1000.0 *. (now -. t0) in
                    slot.last_rtt_ms <- rtt_ms;
                    List.iter
                      (fun (id, _, _) ->
                        Metrics.observe
                          (Printf.sprintf "worker.%d.wire.rtt_ms" id)
                          rtt_ms)
                      shards;
                    Option.iter
                      (fun (r : Telemetry.report) ->
                        if not (Float.is_nan r.Telemetry.ts) then begin
                          (* The worker stamped its report somewhere inside
                             our [t0, now] window; the midpoint estimator is
                             off by at most RTT/2. *)
                          let sample =
                            ((t0 +. now) /. 2.0) -. r.Telemetry.ts
                          in
                          slot.clock_offset <-
                            (if Float.is_nan slot.clock_offset then sample
                             else
                               (0.7 *. slot.clock_offset) +. (0.3 *. sample));
                          List.iter
                            (fun (id, _, _) ->
                              Metrics.observe
                                (Printf.sprintf
                                   "worker.%d.wire.clock_offset_ms" id)
                                (1000.0 *. slot.clock_offset))
                            shards
                        end;
                        Telemetry.Merge.observe t.merge r;
                        merge_remote_trace slot shards r)
                      tele
                  end;
                  `Status shards
              | Ok _ | Error _ -> read ())
        in
        read ())

(* Retransmit the pending tail above [applied] (go-back-N), oldest first. *)
let retransmit t sr ~applied =
  sr.pending <- List.filter (fun (seq, _) -> seq > applied) sr.pending;
  let slot = t.slots.(sr.owner) in
  List.iter
    (fun (_, payload) ->
      t.s_wire_retries <- t.s_wire_retries + 1;
      Metrics.incr "transport.wire_retries";
      if t.config.telemetry then
        Metrics.incr
          (Printf.sprintf "worker.%d.wire.retransmits" sr.mirror.Shard.id);
      ignore (send_book ~inject:false t slot payload))
    (List.rev sr.pending)

(* Bring one shard's worker in sync with the mirror: bounded status polls
   with exponential backoff, retransmission on gaps, respawn-or-reroute on
   death or digest mismatch. [budget] bounds recovery rounds so a worker
   that dies faster than we can respawn it ends in degradation, not a
   loop. *)
let rec sync_shard ?(budget = 2) t sr =
  if t.degraded = None then begin
    let slot = t.slots.(sr.owner) in
    if slot.conn = None then begin
      recover_slot t slot;
      if budget > 0 then sync_shard ~budget:(budget - 1) t sr
      else degrade t "sync: worker kept dying during recovery"
    end
    else begin
      let ok = ref false and attempt = ref 0 in
      (* [max_attempts] bounds consecutive polls WITHOUT progress; a status
         reply showing [applied] advancing resets the budget, so a lossy
         wire that is healing through retransmission is never mistaken for
         a dead worker (progress is bounded by the mirror, so this still
         terminates). *)
      let last_applied = ref (-1) in
      while (not !ok) && !attempt < t.config.max_attempts && t.degraded = None
      do
        let timeout =
          t.config.status_timeout *. Float.of_int (1 lsl !attempt)
        in
        incr attempt;
        if t.config.telemetry then
          Metrics.set_gauge
            (Printf.sprintf "worker.%d.wire.queue_depth" sr.mirror.Shard.id)
            (Float.of_int (List.length sr.pending));
        match poll_status t t.slots.(sr.owner) ~timeout with
        | `Dead ->
            mark_dead t.slots.(sr.owner);
            attempt := t.config.max_attempts (* leave the loop; recover below *)
        | `Timeout ->
            jrecord t ~worker:sr.owner ~shard:sr.mirror.Shard.id
              ~attempt:!attempt
              ~budget:(t.config.max_attempts - !attempt)
              ~cause:(Printf.sprintf "status poll timeout (%.2fs)" timeout)
              "heartbeat_timeout"
        | `Status shards -> (
            match
              List.find_opt (fun (id, _, _) -> id = sr.mirror.Shard.id) shards
            with
            | None ->
                (* Shard not installed (lost Install): restore it. *)
                install_shard ~why:"lost install restored" t
                  t.slots.(sr.owner) sr;
                ok := true
            | Some (_, applied, digest) ->
                if
                  applied = sr.mirror.Shard.applied
                  && digest = sr.mirror.Shard.digest
                then begin
                  sr.pending <- [];
                  sr.since_sync <- 0;
                  t.s_syncs <- t.s_syncs + 1;
                  ok := true
                end
                else if applied < sr.mirror.Shard.applied then begin
                  if applied > !last_applied then begin
                    last_applied := applied;
                    attempt := 0
                  end;
                  retransmit t sr ~applied
                end
                else begin
                  (* applied ran ahead of the mirror or the digest diverged:
                     integrity failure — restore from the checkpoint. *)
                  mark_dead t.slots.(sr.owner);
                  attempt := t.config.max_attempts
                end)
      done;
      if (not !ok) && t.degraded = None then begin
        recover_slot t t.slots.(sr.owner);
        if budget > 0 then sync_shard ~budget:(budget - 1) t sr
        else degrade t "sync: status polls exhausted after recovery"
      end
    end
  end

(* --- live stats socket ---

   One JSON snapshot per accepted connection (connect, read to EOF, done) —
   the contract [ccprof watch] polls against. Serving is zero-perturbation:
   a zero-timeout select on the listen socket from the emit/sync paths, no
   randomness, no transport state touched. *)

let last_n n l =
  let len = List.length l in
  if len <= n then l else List.filteri (fun i _ -> i >= len - n) l

let stats_json t =
  Json.Obj
    [
      ("ts", Json.float_opt (Unix.gettimeofday ()));
      ("machines", Json.Int t.n_machines);
      ("health", Json.String (Format.asprintf "%a" pp_health (health t)));
      ("rounds", Json.float_opt t.s_rounds);
      ( "counters",
        Json.Obj
          [
            ("books", Json.Int t.s_books);
            ("kills", Json.Int t.s_kills);
            ("respawns", Json.Int t.s_respawns);
            ("reroutes", Json.Int t.s_reroutes);
            ("wire_drops", Json.Int t.s_wire_drops);
            ("wire_corrupts", Json.Int t.s_wire_corrupts);
            ("wire_retries", Json.Int t.s_wire_retries);
            ("syncs", Json.Int t.s_syncs);
            ("recovery_s", Json.float_opt t.s_recovery);
          ] );
      ( "workers",
        Json.List
          (Array.to_list t.slots
          |> List.map (fun s ->
                 Json.Obj
                   [
                     ("wid", Json.Int s.wid);
                     ("alive", Json.Bool (s.conn <> None));
                     ( "pid",
                       match s.conn with
                       | Some c -> Json.Int c.pid
                       | None -> Json.Null );
                     ("respawns_used", Json.Int s.respawns_used);
                     ("rtt_ms", Json.float_opt s.last_rtt_ms);
                     ( "clock_offset_ms",
                       Json.float_opt (1000.0 *. s.clock_offset) );
                     ( "shards",
                       Json.List
                         (shards_owned t s.wid
                         |> List.map (fun sr -> Json.Int sr.mirror.Shard.id))
                     );
                   ])) );
      ( "shards",
        Json.List
          (Array.to_list t.shards
          |> List.map (fun sr ->
                 Json.Obj
                   [
                     ("shard", Json.Int sr.mirror.Shard.id);
                     ("owner", Json.Int sr.owner);
                     ("applied", Json.Int sr.mirror.Shard.applied);
                     ("pending", Json.Int (List.length sr.pending));
                   ])) );
      ( "events",
        Json.List
          (last_n 8 (Journal.events t.journal)
          |> List.map Journal.event_to_json) );
    ]

let write_string fd s =
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write_substring fd s !off (len - !off)
  done

let service_stats t =
  match t.stats_fd with
  | None -> ()
  | Some fd ->
      let rec drain budget =
        if budget > 0 then
          match Unix.select [ fd ] [] [] 0.0 with
          | [], _, _ -> ()
          | _ ->
              (match Unix.accept fd with
              | client, _ ->
                  (try
                     write_string client
                       (Json.to_string (stats_json t) ^ "\n")
                   with Unix.Unix_error _ | Sys_error _ -> ());
                  (try Unix.close client with Unix.Unix_error _ -> ())
              | exception Unix.Unix_error _ -> ());
              drain (budget - 1)
          | exception Unix.Unix_error _ -> ()
      in
      drain 4

let sync t =
  if t.degraded = None && not t.shut then
    Trace.with_span "transport.sync" (fun () ->
        Array.iter (fun sr -> sync_shard t sr) t.shards;
        service_stats t)

let emit t (book : Wire.book) =
  if t.degraded = None && not t.shut then begin
    t.s_books <- t.s_books + 1;
    t.s_rounds <- t.s_rounds +. book.rounds;
    service_stats t;
    Array.iter
      (fun sr ->
        let m = sr.mirror in
        let slice a =
          if Array.length a = 0 then [||]
          else Array.sub a m.Shard.lo (Shard.width m)
        in
        let b = { book with Wire.sent = slice book.sent; recv = slice book.recv } in
        let seq = m.Shard.applied + 1 in
        (match Shard.apply m ~seq b with
        | Shard.Applied -> ()
        | Shard.Gap -> assert false);
        let payload = Wire.encode (Wire.Book { shard = m.Shard.id; seq; book = b }) in
        sr.pending <- (seq, payload) :: sr.pending;
        ignore (send_book t t.slots.(sr.owner) payload);
        sr.since_sync <- sr.since_sync + 1;
        if sr.since_sync >= t.config.sync_every then sync_shard t sr)
      t.shards
  end

let crash_machines t ms =
  if t.degraded = None && not t.shut then
    List.iter
      (fun m ->
        if m >= 0 && m < t.n_machines then begin
          let sr =
            Array.to_list t.shards
            |> List.find (fun sr ->
                   sr.mirror.Shard.lo <= m && m < sr.mirror.Shard.hi)
          in
          let slot = t.slots.(sr.owner) in
          match slot.conn with
          | Some c ->
              (* The real crash-stop: SIGKILL the owning worker mid-round,
                 then run the respawn-or-reroute recovery path. *)
              t.s_kills <- t.s_kills + 1;
              Metrics.incr "transport.kills";
              jrecord t ~worker:slot.wid ~shard:sr.mirror.Shard.id
                ~cause:(Printf.sprintf "sigkill (crash schedule, machine %d)" m)
                "kill";
              (try Unix.kill c.pid Sys.sigkill with Unix.Unix_error _ -> ());
              recover_slot t slot
          | None -> ()
        end)
      ms

let shutdown t =
  if not t.shut then begin
    t.shut <- true;
    (* Final telemetry flush: one last short poll per live worker so counts
       recorded since the previous heartbeat reach the parent merge before
       the workers exit. *)
    if t.config.telemetry && t.degraded = None then
      Array.iter
        (fun slot ->
          if slot.conn <> None then
            ignore
              (poll_status t slot
                 ~timeout:(Float.min t.config.status_timeout 0.5)))
        t.slots;
    Array.iter
      (fun slot ->
        match slot.conn with
        | None -> ()
        | Some c ->
            jrecord t ~worker:slot.wid ~cause:"shutdown" "worker_stop";
            (try Wire.write_frame c.fd (Wire.encode Wire.Shutdown)
             with Unix.Unix_error _ | Sys_error _ -> ());
            close_conn c;
            (* Shutdown (or the EOF from our close) ends the worker loop;
               give it a moment, then force the issue. *)
            let rec wait tries =
              match Unix.waitpid [ Unix.WNOHANG ] c.pid with
              | 0, _ ->
                  if tries > 0 then begin
                    ignore (Unix.select [] [] [] 0.02);
                    wait (tries - 1)
                  end
                  else begin
                    (try Unix.kill c.pid Sys.sigkill
                     with Unix.Unix_error _ -> ());
                    reap c.pid
                  end
              | _ -> ()
              | exception Unix.Unix_error _ -> ()
            in
            wait 50;
            slot.conn <- None)
      t.slots;
    (match (t.stats_fd, t.config.stats_sock) with
    | Some fd, path ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        t.stats_fd <- None;
        Option.iter
          (fun p -> try Unix.unlink p with Unix.Unix_error _ | Sys_error _ -> ())
          path
    | None, _ -> ())
  end

let check_prob name p =
  if p < 0.0 || p >= 1.0 then
    invalid_arg (Printf.sprintf "Supervisor.create: %s must be in [0, 1)" name)

let create ?(config = default_config) ~machines () =
  if machines < 1 then invalid_arg "Supervisor.create: machines < 1";
  if config.workers < 1 then invalid_arg "Supervisor.create: workers < 1";
  if config.max_attempts < 1 then
    invalid_arg "Supervisor.create: max_attempts < 1";
  if config.max_respawns < 0 then
    invalid_arg "Supervisor.create: max_respawns < 0";
  if config.sync_every < 1 then invalid_arg "Supervisor.create: sync_every < 1";
  if config.journal_cap < 1 then
    invalid_arg "Supervisor.create: journal_cap < 1";
  check_prob "wire_drop_prob" config.wire_drop_prob;
  check_prob "wire_corrupt_prob" config.wire_corrupt_prob;
  (* A SIGKILLed worker turns parent writes into EPIPE; we want the error,
     not the signal. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let workers = min config.workers machines in
  let t =
    {
      n_machines = machines;
      config = { config with workers };
      exe = Sys.executable_name;
      slots =
        Array.init workers (fun wid ->
            {
              wid;
              conn = None;
              respawns_used = 0;
              last_rtt_ms = Float.nan;
              clock_offset = Float.nan;
            });
      shards =
        Array.init workers (fun i ->
            let lo = i * machines / workers
            and hi = (i + 1) * machines / workers in
            {
              mirror = Shard.create ~id:i ~lo ~hi;
              owner = i;
              pending = [];
              since_sync = 0;
            });
      wire_prng =
        (if config.wire_drop_prob > 0.0 || config.wire_corrupt_prob > 0.0 then
           (* Decorrelated from the model fault stream: the wire layer may
              never consume (nor influence) model randomness. *)
           Some (Prng.create ~seed:(config.wire_seed lxor 0x3157))
         else None);
      journal = Journal.create ~cap:config.journal_cap ();
      merge = Telemetry.Merge.create ();
      (* Base 1: the parent's own collector starts at [first_id] 0 and is
         confined below [span_stride] in any practical run. *)
      next_span_base = span_stride;
      stats_fd = None;
      s_rounds = 0.0;
      s_books = 0;
      s_kills = 0;
      s_respawns = 0;
      s_reroutes = 0;
      s_wire_drops = 0;
      s_wire_corrupts = 0;
      s_wire_retries = 0;
      s_syncs = 0;
      s_recovery = 0.0;
      degraded = None;
      shut = false;
    }
  in
  (match config.stats_sock with
  | None -> ()
  | Some path -> (
      try
        (try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ());
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.set_close_on_exec fd;
        Unix.bind fd (Unix.ADDR_UNIX path);
        Unix.listen fd 8;
        t.stats_fd <- Some fd
      with Unix.Unix_error _ | Sys_error _ | Invalid_argument _ ->
        (* An unusable stats path never blocks the run — watch just sees
           nothing to connect to. *)
        t.stats_fd <- None));
  Array.iter
    (fun slot ->
      match spawn t slot.wid with
      | c ->
          slot.conn <- Some c;
          jrecord t ~worker:slot.wid ~cause:"spawn" "worker_start"
      | exception _ -> ())
    t.slots;
  if workers_alive t = 0 then
    degrade t "could not spawn any worker process"
  else
    Array.iter
      (fun sr ->
        let slot = t.slots.(sr.owner) in
        if slot.conn = None then begin
          (* The intended owner failed to spawn: adopt at creation time. *)
          match
            Array.to_list t.slots |> List.find_opt (fun s -> s.conn <> None)
          with
          | Some adopter ->
              sr.owner <- adopter.wid;
              t.s_reroutes <- t.s_reroutes + 1;
              jrecord t ~worker:adopter.wid ~shard:sr.mirror.Shard.id
                ~cause:"owner failed to spawn" "reroute";
              install_shard t adopter sr
          | None -> ()
        end
        else install_shard t slot sr)
      t.shards;
  t
