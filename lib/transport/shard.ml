type t = {
  id : int;
  lo : int;
  hi : int;
  sent : int array;
  recv : int array;
  mutable applied : int;
  mutable digest : int64;
}

let create ~id ~lo ~hi =
  if lo < 0 || hi <= lo then invalid_arg "Shard.create: need 0 <= lo < hi";
  {
    id;
    lo;
    hi;
    sent = Array.make (hi - lo) 0;
    recv = Array.make (hi - lo) 0;
    applied = 0;
    digest = Wire.fnv_basis;
  }

let width t = t.hi - t.lo

type apply_result = Applied | Gap

let add_slice dst slice =
  Array.iteri (fun i w -> dst.(i) <- dst.(i) + w) slice

let apply t ~seq (book : Wire.book) =
  if seq <> t.applied + 1 then Gap
  else begin
    add_slice t.sent book.sent;
    add_slice t.recv book.recv;
    t.digest <- Wire.fnv64 t.digest (Wire.book_line ~shard:t.id ~seq book);
    t.applied <- seq;
    Applied
  end

let to_state t =
  {
    Wire.shard = t.id;
    lo = t.lo;
    hi = t.hi;
    applied = t.applied;
    digest = t.digest;
    sent = Array.copy t.sent;
    recv = Array.copy t.recv;
  }

let of_state (s : Wire.shard_state) =
  if s.lo < 0 || s.hi <= s.lo then invalid_arg "Shard.of_state: bad range";
  let w = s.hi - s.lo in
  let take a = if Array.length a = w then Array.copy a else Array.make w 0 in
  {
    id = s.shard;
    lo = s.lo;
    hi = s.hi;
    sent = take s.sent;
    recv = take s.recv;
    applied = s.applied;
    digest = s.digest;
  }

let digest_hex t = Printf.sprintf "fnv64:%016Lx" t.digest
