(** Pluggable execution transport behind {!Cc_clique.Net}.

    A transport receives a copy of every booked communication primitive and
    may distribute the metering plane across OS processes; it never carries
    model state, so the ledger and the recorder chain digest are identical
    on every transport by construction — the cross-transport determinism
    contract CI enforces with [ccreplay diff].

    Two implementations:

    - {!inproc} — the classic single-process simulator. Every operation is
      a no-op; semantics, ledger and digests are byte-for-byte those of the
      pre-transport code.
    - {!mpproc} — machines sharded across worker processes under a
      {!Supervisor}, with real fault injection (SIGKILL, dropped and
      corrupted frames), heartbeats, bounded-backoff retries, and
      respawn-or-reroute recovery; degrades to in-process operation when
      unrecoverable. *)

type kind = Inproc | Mpproc

val kind_name : kind -> string

(** [kind_of_string s] parses a user-supplied transport name
    (case-insensitive, surrounding whitespace ignored). Empty and unknown
    values are errors carrying a one-line message. *)
val kind_of_string : string -> (kind, string) result

(** Environment variable consulted when no [--transport] flag is given. *)
val env_var : string

(** [kind_from_env ()] reads {!env_var}: [Ok None] when unset, [Error _] on
    an empty or unknown value (set-but-empty is an error, not "unset"). *)
val kind_from_env : unit -> (kind option, string) result

(** A transport instance, as a record of closures so {!Cc_clique.Net} does
    not depend on this library's internals. *)
type t = {
  name : string;
  emit : Wire.book -> unit;
      (** mirror one booked primitive (full per-machine vectors). *)
  crash : int list -> unit;
      (** fault schedule fired for these machines: SIGKILL their workers. *)
  sync : unit -> unit;  (** barrier: heal and digest-check every shard. *)
  health : unit -> Supervisor.health;
  snapshot : unit -> Supervisor.snapshot option;
      (** [None] on {!inproc} (it has no counters). *)
  owner_of : int -> int option;
      (** worker slot serving a machine's shard; [None] on {!inproc}. *)
  journal : unit -> Cc_obs.Journal.t option;
      (** the supervision-event journal; [None] on {!inproc} (no
          supervision happens, so there is nothing to record). *)
  shutdown : unit -> unit;  (** idempotent. *)
}

(** The in-process transport: every operation a no-op, [health] always
    [All_healthy]. *)
val inproc : unit -> t

(** [mpproc ?config ~machines ()] spawns a supervised worker pool. A total
    spawn failure yields a transport whose [health] is [Degraded] — the run
    proceeds in-process — rather than raising. *)
val mpproc : ?config:Supervisor.config -> machines:int -> unit -> t

val is_mpproc : t -> bool

val pp_health : Format.formatter -> Supervisor.health -> unit

(** [health_summary h] is a one-line form for CLI "# transport:" trailers. *)
val health_summary : Supervisor.health -> string
