type kind = Inproc | Mpproc

let kind_name = function Inproc -> "inproc" | Mpproc -> "mpproc"

let kind_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "inproc" -> Ok Inproc
  | "mpproc" -> Ok Mpproc
  | "" -> Error "transport must not be empty (expected 'inproc' or 'mpproc')"
  | other ->
      Error
        (Printf.sprintf "unknown transport '%s' (expected 'inproc' or 'mpproc')"
           other)

let env_var = "CC_TRANSPORT"

let kind_from_env () =
  match Sys.getenv_opt env_var with
  | None -> Ok None
  | Some s -> (
      match kind_of_string s with
      | Ok k -> Ok (Some k)
      | Error e -> Error (Printf.sprintf "%s: %s" env_var e))

type t = {
  name : string;
  emit : Wire.book -> unit;
  crash : int list -> unit;
  sync : unit -> unit;
  health : unit -> Supervisor.health;
  snapshot : unit -> Supervisor.snapshot option;
  owner_of : int -> int option;
  journal : unit -> Cc_obs.Journal.t option;
  shutdown : unit -> unit;
}

let inproc () =
  {
    name = kind_name Inproc;
    emit = (fun _ -> ());
    crash = (fun _ -> ());
    sync = (fun () -> ());
    health = (fun () -> Supervisor.All_healthy);
    snapshot = (fun () -> None);
    owner_of = (fun _ -> None);
    journal = (fun () -> None);
    shutdown = (fun () -> ());
  }

let mpproc ?config ~machines () =
  let sup = Supervisor.create ?config ~machines () in
  {
    name = kind_name Mpproc;
    emit = Supervisor.emit sup;
    crash = Supervisor.crash_machines sup;
    sync = (fun () -> Supervisor.sync sup);
    health = (fun () -> Supervisor.health sup);
    snapshot = (fun () -> Some (Supervisor.snapshot sup));
    owner_of = (fun m -> Some (Supervisor.owner_of sup m));
    journal = (fun () -> Some (Supervisor.journal sup));
    shutdown = (fun () -> Supervisor.shutdown sup);
  }

let is_mpproc t = String.equal t.name (kind_name Mpproc)

let pp_health = Supervisor.pp_health

let health_summary h = Format.asprintf "%a" Supervisor.pp_health h
