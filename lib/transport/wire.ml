module Json = Cc_obs.Json

type book = {
  kind : string;
  label : string;
  rounds : float;
  messages : int;
  words : int;
  max_load : int;
  sent : int array;
  recv : int array;
}

type shard_state = {
  shard : int;
  lo : int;
  hi : int;
  applied : int;
  digest : int64;
  sent : int array;
  recv : int array;
}

type msg =
  | Hello of { worker : int; telemetry : bool; span_base : int }
  | Install of shard_state
  | Book of { shard : int; seq : int; book : book }
  | Status_req
  | Status of {
      shards : (int * int * int64) list;
      tele : Cc_obs.Telemetry.report option;
    }
  | Shutdown

(* --- digest --- *)

let fnv_basis = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv64 h s =
  let h = ref h in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  !h

let csv a =
  String.concat "," (Array.to_list (Array.map string_of_int a))

let book_line ~shard ~seq b =
  Printf.sprintf "%d|%d|%s|%s|%.17g|%d|%d|%d|s:%s|r:%s" shard seq b.kind
    b.label b.rounds b.messages b.words b.max_load (csv b.sent) (csv b.recv)

(* --- JSON codec --- *)

let ints a = Json.List (Array.to_list (Array.map (fun i -> Json.Int i) a))

let json_of_book b =
  Json.Obj
    [
      ("kind", Json.String b.kind);
      ("label", Json.String b.label);
      (* Hex float: the JSON float printer is %.12g, which is lossy for the
         fractional rounds analytic charges book — and the digest folds the
         exact bits, so the wire must round-trip them exactly. *)
      ("rounds", Json.String (Printf.sprintf "%h" b.rounds));
      ("messages", Json.Int b.messages);
      ("words", Json.Int b.words);
      ("max_load", Json.Int b.max_load);
      ("sent", ints b.sent);
      ("recv", ints b.recv);
    ]

let json_of_state s =
  Json.Obj
    [
      ("t", Json.String "install");
      ("shard", Json.Int s.shard);
      ("lo", Json.Int s.lo);
      ("hi", Json.Int s.hi);
      ("applied", Json.Int s.applied);
      ("digest", Json.String (Printf.sprintf "%016Lx" s.digest));
      ("sent", ints s.sent);
      ("recv", ints s.recv);
    ]

let encode = function
  | Hello { worker; telemetry; span_base } ->
      Json.to_string
        (Json.Obj
           [
             ("t", Json.String "hello");
             ("worker", Json.Int worker);
             ("telemetry", Json.Bool telemetry);
             ("span_base", Json.Int span_base);
           ])
  | Install s -> Json.to_string (json_of_state s)
  | Book { shard; seq; book } ->
      Json.to_string
        (Json.Obj
           [
             ("t", Json.String "book");
             ("shard", Json.Int shard);
             ("seq", Json.Int seq);
             ("book", json_of_book book);
           ])
  | Status_req -> Json.to_string (Json.Obj [ ("t", Json.String "status?") ])
  | Status { shards; tele } ->
      Json.to_string
        (Json.Obj
           ([
              ("t", Json.String "status");
              ( "shards",
                Json.List
                  (List.map
                     (fun (id, applied, digest) ->
                       Json.Obj
                         [
                           ("shard", Json.Int id);
                           ("applied", Json.Int applied);
                           ( "digest",
                             Json.String (Printf.sprintf "%016Lx" digest) );
                         ])
                     shards) );
            ]
           @
           match tele with
           | None -> []
           | Some r -> [ ("tele", Cc_obs.Telemetry.to_json r) ]))
  | Shutdown -> Json.to_string (Json.Obj [ ("t", Json.String "shutdown") ])

(* Shape-checked field accessors: a decode error names the missing field. *)
let field name v =
  match Json.member name v with
  | Some x -> Ok x
  | None -> Error (Printf.sprintf "missing field %S" name)

let ( let* ) = Result.bind

let int_field name v =
  let* x = field name v in
  match x with
  | Json.Int i -> Ok i
  | _ -> Error (Printf.sprintf "field %S: expected int" name)

let str_field name v =
  let* x = field name v in
  match Json.to_string_opt x with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "field %S: expected string" name)

let float_field name v =
  let* x = field name v in
  match x with
  | Json.String s -> (
      match float_of_string_opt s with
      | Some f -> Ok f
      | None -> Error (Printf.sprintf "field %S: bad float %S" name s))
  | _ -> (
      match Json.to_float_opt x with
      | Some f -> Ok f
      | None -> Error (Printf.sprintf "field %S: expected number" name))

let ints_field name v =
  let* x = field name v in
  match Json.to_list_opt x with
  | None -> Error (Printf.sprintf "field %S: expected list" name)
  | Some l ->
      let rec go acc = function
        | [] -> Ok (Array.of_list (List.rev acc))
        | Json.Int i :: rest -> go (i :: acc) rest
        | _ -> Error (Printf.sprintf "field %S: expected int list" name)
      in
      go [] l

let digest_field name v =
  let* s = str_field name v in
  match Int64.of_string_opt ("0x" ^ s) with
  | Some d -> Ok d
  | None -> Error (Printf.sprintf "field %S: bad digest %S" name s)

let book_of_json v =
  let* kind = str_field "kind" v in
  let* label = str_field "label" v in
  let* rounds = float_field "rounds" v in
  let* messages = int_field "messages" v in
  let* words = int_field "words" v in
  let* max_load = int_field "max_load" v in
  let* sent = ints_field "sent" v in
  let* recv = ints_field "recv" v in
  Ok { kind; label; rounds; messages; words; max_load; sent; recv }

let state_of_json v =
  let* shard = int_field "shard" v in
  let* lo = int_field "lo" v in
  let* hi = int_field "hi" v in
  let* applied = int_field "applied" v in
  let* digest = digest_field "digest" v in
  let* sent = ints_field "sent" v in
  let* recv = ints_field "recv" v in
  Ok { shard; lo; hi; applied; digest; sent; recv }

let decode s =
  let* v = Json.of_string s in
  let* tag = str_field "t" v in
  match tag with
  | "hello" ->
      let* worker = int_field "worker" v in
      (* Missing flag (older peer) means telemetry on — the default. *)
      let telemetry =
        match Json.member "telemetry" v with
        | Some (Json.Bool b) -> b
        | _ -> true
      in
      (* Missing base (older parent) means no worker-side tracing. *)
      let span_base =
        match Json.member "span_base" v with
        | Some (Json.Int i) -> i
        | _ -> -1
      in
      Ok (Hello { worker; telemetry; span_base })
  | "install" ->
      let* st = state_of_json v in
      Ok (Install st)
  | "book" ->
      let* shard = int_field "shard" v in
      let* seq = int_field "seq" v in
      let* bv = field "book" v in
      let* book = book_of_json bv in
      Ok (Book { shard; seq; book })
  | "status?" -> Ok Status_req
  | "status" ->
      let* x = field "shards" v in
      let* l =
        match Json.to_list_opt x with
        | Some l -> Ok l
        | None -> Error "field \"shards\": expected list"
      in
      let* tele =
        match Json.member "tele" v with
        | None -> Ok None
        | Some tv -> (
            match Cc_obs.Telemetry.of_json tv with
            | Ok r -> Ok (Some r)
            | Error e -> Error (Printf.sprintf "field \"tele\": %s" e))
      in
      let rec go acc = function
        | [] -> Ok (Status { shards = List.rev acc; tele })
        | sv :: rest ->
            let* id = int_field "shard" sv in
            let* applied = int_field "applied" sv in
            let* digest = digest_field "digest" sv in
            go ((id, applied, digest) :: acc) rest
      in
      go [] l
  | "shutdown" -> Ok Shutdown
  | t -> Error (Printf.sprintf "unknown message tag %S" t)

(* --- framing --- *)

type read_error = Timeout | Eof | Bad_frame of string

let magic = "CCW1"

let be32 buf n =
  Buffer.add_char buf (Char.chr ((n lsr 24) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (n land 0xff))

let be64 buf (n : int64) =
  for i = 7 downto 0 do
    Buffer.add_char buf
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical n (8 * i)) 0xffL)))
  done

let frame_bytes ?(corrupt = false) payload =
  let buf = Buffer.create (String.length payload + 16) in
  Buffer.add_string buf magic;
  be32 buf (String.length payload);
  let payload =
    if not corrupt then payload
    else begin
      (* Flip one byte mid-payload, after the checksum below was computed on
         the original: the frame arrives complete but fails verification. *)
      let b = Bytes.of_string payload in
      let i = Bytes.length b / 2 in
      if Bytes.length b > 0 then
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x5a));
      Bytes.to_string b
    end
  in
  Buffer.add_string buf payload;
  buf

let write_all fd s =
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write_substring fd s !off (len - !off)
  done

let write_frame fd payload =
  let buf = frame_bytes payload in
  be64 buf (fnv64 fnv_basis payload);
  write_all fd (Buffer.contents buf)

let write_frame_corrupted fd payload =
  let check = fnv64 fnv_basis payload in
  let buf = frame_bytes ~corrupt:true payload in
  be64 buf check;
  write_all fd (Buffer.contents buf)

(* Read exactly [len] bytes into a fresh string, honoring the deadline via
   select before every read. *)
let read_exact ?deadline fd len =
  let b = Bytes.create len in
  let off = ref 0 in
  let result = ref (Ok ()) in
  (try
     while !off < len && !result = Ok () do
       (match deadline with
       | None -> ()
       | Some d ->
           let remaining = d -. Unix.gettimeofday () in
           if remaining <= 0.0 then begin
             result := Error Timeout;
             raise Exit
           end
           else begin
             let r, _, _ = Unix.select [ fd ] [] [] remaining in
             if r = [] then begin
               result := Error Timeout;
               raise Exit
             end
           end);
       match Unix.read fd b !off (len - !off) with
       | 0 ->
           result := Error Eof;
           raise Exit
       | k -> off := !off + k
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
       | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
           result := Error Eof;
           raise Exit
     done
   with Exit -> ());
  match !result with Ok () -> Ok (Bytes.to_string b) | Error e -> Error e

let ( let* ) = Result.bind

let read_frame ?deadline fd =
  let* hdr = read_exact ?deadline fd 8 in
  if String.sub hdr 0 4 <> magic then Error (Bad_frame "bad magic")
  else begin
    let len =
      (Char.code hdr.[4] lsl 24)
      lor (Char.code hdr.[5] lsl 16)
      lor (Char.code hdr.[6] lsl 8)
      lor Char.code hdr.[7]
    in
    if len < 0 || len > 1 lsl 26 then Error (Bad_frame "absurd frame length")
    else
      let* payload = read_exact ?deadline fd len in
      let* check = read_exact ?deadline fd 8 in
      let expect = ref 0L in
      String.iter
        (fun c ->
          expect := Int64.logor (Int64.shift_left !expect 8)
              (Int64.of_int (Char.code c)))
        check;
      if fnv64 fnv_basis payload <> !expect then
        Error (Bad_frame "checksum mismatch")
      else Ok payload
  end
