(** Fixed-precision truncation, reproducing the paper's [round] operator.

    Section 3.5 and Lemma 3 analyze the algorithm when every matrix entry is
    truncated to O(log^2 n) bits, yielding one-sided ("subtractive") error:
    every approximate entry under-approximates the exact one. [round_down]
    truncates a nonnegative float to [bits] fractional bits, exactly the
    paper's [round]. [rounded_power] computes M'(k) = round([M'(k/2)]^2) as in
    the proof of Lemma 3 and is compared against exact powers in bench E6. *)

(** [round_down ~bits x] truncates nonnegative [x] to [bits] fractional
    binary digits (floor to a multiple of 2^-bits). Subtractive error is in
    [0, 2^-bits). @raise Invalid_argument on negative input or bits < 1. *)
val round_down : bits:int -> float -> float

(** [round_mat ~bits m] truncates every entry. *)
val round_mat : bits:int -> Mat.t -> Mat.t

(** [rounded_power ~bits m k] is M'(k) of Lemma 3: round after every
    squaring step. [k] must be a power of two (as in the paper). *)
val rounded_power : bits:int -> Mat.t -> int -> Mat.t

(** [lemma3_bits ~n ~k ~beta] is the number of fractional bits sufficient for
    subtractive error at most [beta] after computing a k-th power of an n x n
    transition matrix, following the recurrence E(k) <= (n+1) E(k/2) + delta
    from the proof of Lemma 3. *)
val lemma3_bits : n:int -> k:int -> beta:float -> int

(** [lemma3_error_bound ~n ~k ~bits] is the error budget the Lemma 3
    recurrence guarantees for the given precision: E(k) with
    delta = 2^-bits. *)
val lemma3_error_bound : n:int -> k:int -> bits:int -> float
