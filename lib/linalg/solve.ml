type lu = {
  lu_mat : Mat.t; (* L below diagonal (unit diag implicit), U on and above *)
  perm : int array; (* row permutation *)
  swaps : int; (* number of row swaps, for the determinant sign *)
}

let pivot_tol = 1e-13

let lu m =
  let n = Mat.rows m in
  if Mat.cols m <> n then invalid_arg "Solve.lu: not square";
  let a = Mat.copy m in
  let perm = Array.init n (fun i -> i) in
  let swaps = ref 0 in
  for k = 0 to n - 1 do
    (* Partial pivoting: pick the largest magnitude in column k at/below k. *)
    let best = ref k in
    for i = k + 1 to n - 1 do
      if Float.abs (Mat.get a i k) > Float.abs (Mat.get a !best k) then best := i
    done;
    if !best <> k then begin
      for j = 0 to n - 1 do
        let tmp = Mat.get a k j in
        Mat.set a k j (Mat.get a !best j);
        Mat.set a !best j tmp
      done;
      let tmp = perm.(k) in
      perm.(k) <- perm.(!best);
      perm.(!best) <- tmp;
      incr swaps
    end;
    let pivot = Mat.get a k k in
    if Float.abs pivot > pivot_tol then
      for i = k + 1 to n - 1 do
        let factor = Mat.get a i k /. pivot in
        Mat.set a i k factor;
        for j = k + 1 to n - 1 do
          Mat.set a i j (Mat.get a i j -. (factor *. Mat.get a k j))
        done
      done
  done;
  { lu_mat = a; perm; swaps = !swaps }

let is_singular f =
  let n = Mat.rows f.lu_mat in
  let rec go k =
    k < n && (Float.abs (Mat.get f.lu_mat k k) <= pivot_tol || go (k + 1))
  in
  go 0

let lu_solve f b =
  let n = Mat.rows f.lu_mat in
  if Array.length b <> n then invalid_arg "Solve.lu_solve: dimension mismatch";
  if is_singular f then failwith "Solve.lu_solve: singular matrix";
  let y = Array.init n (fun i -> b.(f.perm.(i))) in
  (* Forward substitution with unit lower-triangular L. *)
  for i = 1 to n - 1 do
    for j = 0 to i - 1 do
      y.(i) <- y.(i) -. (Mat.get f.lu_mat i j *. y.(j))
    done
  done;
  (* Back substitution with U. *)
  for i = n - 1 downto 0 do
    for j = i + 1 to n - 1 do
      y.(i) <- y.(i) -. (Mat.get f.lu_mat i j *. y.(j))
    done;
    y.(i) <- y.(i) /. Mat.get f.lu_mat i i
  done;
  y

let solve m b = lu_solve (lu m) b

(* The LU factorisation is sequential (loop-carried pivoting), but the [k]
   right-hand sides are independent: each column solve reads the shared
   factors and writes only its own column of [out], so large systems fan the
   column loop out over the engine with bit-identical results. *)
let solve_mat m b =
  let f = lu m in
  let n = Mat.rows b and k = Mat.cols b in
  let out = Mat.create ~rows:n ~cols:k 0.0 in
  let solve_col j =
    let x = lu_solve f (Mat.col b j) in
    for i = 0 to n - 1 do
      Mat.set out i j x.(i)
    done
  in
  let engine = Cc_engine.get () in
  if n * n * k >= Mat.par_threshold && Cc_engine.is_parallel engine then
    Cc_engine.parallel_for engine ~lo:0 ~hi:k solve_col
  else
    for j = 0 to k - 1 do
      solve_col j
    done;
  out

let inverse m = solve_mat m (Mat.identity (Mat.rows m))

let log_determinant m =
  let f = lu m in
  let n = Mat.rows f.lu_mat in
  let sign = ref (if f.swaps land 1 = 1 then -1 else 1) in
  let acc = ref 0.0 in
  (try
     for k = 0 to n - 1 do
       let d = Mat.get f.lu_mat k k in
       if Float.abs d <= pivot_tol then begin
         sign := 0;
         raise Exit
       end;
       if d < 0.0 then sign := - !sign;
       acc := !acc +. Float.log (Float.abs d)
     done
   with Exit -> ());
  if !sign = 0 then (0, neg_infinity) else (!sign, !acc)

let determinant m =
  match log_determinant m with
  | 0, _ -> 0.0
  | sign, logdet -> float_of_int sign *. Float.exp logdet

let schur_complement m ~keep =
  let n = Mat.rows m in
  if Mat.cols m <> n then invalid_arg "Solve.schur_complement: not square";
  let in_keep = Array.make n false in
  Array.iter
    (fun i ->
      if i < 0 || i >= n then invalid_arg "Solve.schur_complement: bad index";
      if in_keep.(i) then invalid_arg "Solve.schur_complement: duplicate index";
      in_keep.(i) <- true)
    keep;
  let elim =
    Array.of_list
      (List.filter (fun i -> not in_keep.(i)) (List.init n (fun i -> i)))
  in
  if Array.length elim = 0 then Mat.submatrix m ~row_idx:keep ~col_idx:keep
  else begin
    let m_ss = Mat.submatrix m ~row_idx:keep ~col_idx:keep in
    let m_se = Mat.submatrix m ~row_idx:keep ~col_idx:elim in
    let m_es = Mat.submatrix m ~row_idx:elim ~col_idx:keep in
    let m_ee = Mat.submatrix m ~row_idx:elim ~col_idx:elim in
    (* M_SS - M_S,E (M_EE)^{-1} M_E,S, via a solve rather than an explicit
       inverse for stability. *)
    let x = solve_mat m_ee m_es in
    Mat.sub m_ss (Mat.mul m_se x)
  end
