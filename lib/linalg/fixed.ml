let round_down ~bits x =
  if bits < 1 then invalid_arg "Fixed.round_down: bits < 1";
  if x < 0.0 then invalid_arg "Fixed.round_down: negative input";
  if bits >= 52 then x
  else
    let scale = Float.of_int (1 lsl bits) in
    Float.floor (x *. scale) /. scale

let round_mat ~bits m =
  let max_delta = ref 0.0 in
  let rounded =
    Mat.init ~rows:(Mat.rows m) ~cols:(Mat.cols m) (fun i j ->
        let x = Mat.get m i j in
        let r = round_down ~bits x in
        max_delta := Float.max !max_delta (x -. r);
        r)
  in
  Cc_obs.Metrics.observe "fixed.round_error" !max_delta;
  rounded

let rounded_power ~bits m k =
  if k <= 0 || k land (k - 1) <> 0 then
    invalid_arg "Fixed.rounded_power: k must be a positive power of two";
  let rec go acc k = if k = 1 then acc else go (round_mat ~bits (Mat.mul acc acc)) (k / 2) in
  go (round_mat ~bits m) k

(* E(1) = delta, E(k) = (n+1) E(k/2) + delta with delta = 2^-bits. *)
let lemma3_error_bound ~n ~k ~bits =
  if k <= 0 || k land (k - 1) <> 0 then
    invalid_arg "Fixed.lemma3_error_bound: k must be a positive power of two";
  let delta = Float.pow 2.0 (Float.of_int (-bits)) in
  let rec go k = if k = 1 then delta else ((Float.of_int (n + 1)) *. go (k / 2)) +. delta in
  go k

let lemma3_bits ~n ~k ~beta =
  if beta <= 0.0 then invalid_arg "Fixed.lemma3_bits: beta <= 0";
  (* Smallest b with E(k; delta = 2^-b) <= beta. E scales linearly in delta,
     so solve directly: E(k) = delta * sum_{i=0}^{log2 k} (n+1)^i. *)
  let rec amplification k =
    if k = 1 then 1.0 else 1.0 +. ((Float.of_int (n + 1)) *. amplification (k / 2))
  in
  let amp = amplification k in
  let b = int_of_float (Float.ceil (Float.log2 (amp /. beta))) in
  max 1 b
