type t = { rows : int; cols : int; data : float array }

(* Row kernels below this much work run inline: the engine's dispatch cost
   only pays for itself on large operands. The cutoff gates the execution
   strategy, never the arithmetic, so results are bit-identical either way. *)
let par_threshold = 1 lsl 15

let create ~rows ~cols v =
  if rows <= 0 || cols <= 0 then invalid_arg "Mat.create: nonpositive dims";
  { rows; cols; data = Array.make (rows * cols) v }

let init ~rows ~cols f =
  let m = create ~rows ~cols 0.0 in
  let fill_row i =
    for j = 0 to cols - 1 do
      m.data.((i * cols) + j) <- f i j
    done
  in
  let engine = Cc_engine.get () in
  if rows * cols >= par_threshold && Cc_engine.is_parallel engine then
    Cc_engine.parallel_for engine ~lo:0 ~hi:rows fill_row
  else
    for i = 0 to rows - 1 do
      fill_row i
    done;
  m

let identity n = init ~rows:n ~cols:n (fun i j -> if i = j then 1.0 else 0.0)
let copy m = { m with data = Array.copy m.data }
let rows m = m.rows
let cols m = m.cols

let get m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg "Mat.get: index out of bounds";
  m.data.((i * m.cols) + j)

let set m i j v =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg "Mat.set: index out of bounds";
  m.data.((i * m.cols) + j) <- v

let of_arrays a =
  let r = Array.length a in
  if r = 0 then invalid_arg "Mat.of_arrays: empty";
  let c = Array.length a.(0) in
  Array.iter
    (fun row ->
      if Array.length row <> c then invalid_arg "Mat.of_arrays: ragged rows")
    a;
  init ~rows:r ~cols:c (fun i j -> a.(i).(j))

let to_arrays m =
  Array.init m.rows (fun i -> Array.sub m.data (i * m.cols) m.cols)

let row m i =
  if i < 0 || i >= m.rows then invalid_arg "Mat.row";
  Array.sub m.data (i * m.cols) m.cols

let col m j =
  if j < 0 || j >= m.cols then invalid_arg "Mat.col";
  Array.init m.rows (fun i -> m.data.((i * m.cols) + j))

let dims_must_match a b name =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg (name ^ ": dimension mismatch")

let add a b =
  dims_must_match a b "Mat.add";
  { a with data = Array.mapi (fun k x -> x +. b.data.(k)) a.data }

let sub a b =
  dims_must_match a b "Mat.sub";
  { a with data = Array.mapi (fun k x -> x -. b.data.(k)) a.data }

let scale s m = { m with data = Array.map (fun x -> s *. x) m.data }

let transpose m = init ~rows:m.cols ~cols:m.rows (fun i j -> get m j i)

(* i-k-j loop order: the inner loop walks both [b] and [out] row-contiguously.
   Rows of [out] are independent, so large products fan the row loop out over
   the engine; each row's k-j accumulation order is unchanged, keeping the
   floating-point result bit-identical at every domain count. *)
let mul a b =
  if a.cols <> b.rows then invalid_arg "Mat.mul: dimension mismatch";
  let out = create ~rows:a.rows ~cols:b.cols 0.0 in
  let row i =
    for k = 0 to a.cols - 1 do
      let aik = a.data.((i * a.cols) + k) in
      if aik <> 0.0 then
        let brow = k * b.cols and orow = i * b.cols in
        for j = 0 to b.cols - 1 do
          out.data.(orow + j) <- out.data.(orow + j) +. (aik *. b.data.(brow + j))
        done
    done
  in
  let engine = Cc_engine.get () in
  if a.rows * a.cols * b.cols >= par_threshold && Cc_engine.is_parallel engine
  then Cc_engine.parallel_for engine ~lo:0 ~hi:a.rows row
  else
    for i = 0 to a.rows - 1 do
      row i
    done;
  out

let mul_vec m v =
  if Array.length v <> m.cols then invalid_arg "Mat.mul_vec: dimension mismatch";
  Array.init m.rows (fun i ->
      let acc = ref 0.0 in
      let base = i * m.cols in
      for j = 0 to m.cols - 1 do
        acc := !acc +. (m.data.(base + j) *. v.(j))
      done;
      !acc)

let vec_mul v m =
  if Array.length v <> m.rows then invalid_arg "Mat.vec_mul: dimension mismatch";
  let out = Array.make m.cols 0.0 in
  for i = 0 to m.rows - 1 do
    let vi = v.(i) in
    if vi <> 0.0 then
      let base = i * m.cols in
      for j = 0 to m.cols - 1 do
        out.(j) <- out.(j) +. (vi *. m.data.(base + j))
      done
  done;
  out

let power m k =
  if m.rows <> m.cols then invalid_arg "Mat.power: not square";
  if k < 0 then invalid_arg "Mat.power: negative exponent";
  let rec go acc base k =
    if k = 0 then acc
    else
      let acc = if k land 1 = 1 then mul acc base else acc in
      if k = 1 then acc else go acc (mul base base) (k lsr 1)
  in
  go (identity m.rows) m k

let half_lazy m =
  if m.rows <> m.cols then invalid_arg "Mat.half_lazy: not square";
  init ~rows:m.rows ~cols:m.cols (fun i j ->
      (0.5 *. get m i j) +. if i = j then 0.5 else 0.0)

let power_table m ~max_exp =
  if m.rows <> m.cols then invalid_arg "Mat.power_table: not square";
  if max_exp < 0 then invalid_arg "Mat.power_table: negative exponent";
  let table = Array.make (max_exp + 1) m in
  for i = 1 to max_exp do
    table.(i) <- mul table.(i - 1) table.(i - 1)
  done;
  table

let submatrix m ~row_idx ~col_idx =
  init ~rows:(Array.length row_idx) ~cols:(Array.length col_idx) (fun i j ->
      get m row_idx.(i) col_idx.(j))

let max_abs_diff a b =
  dims_must_match a b "Mat.max_abs_diff";
  let acc = ref 0.0 in
  Array.iteri
    (fun k x -> acc := Float.max !acc (Float.abs (x -. b.data.(k))))
    a.data;
  !acc

let equal ?(tol = 1e-12) a b =
  a.rows = b.rows && a.cols = b.cols && max_abs_diff a b <= tol

let max_subtractive_error ~exact ~approx =
  dims_must_match exact approx "Mat.max_subtractive_error";
  let acc = ref 0.0 in
  Array.iteri
    (fun k x -> acc := Float.max !acc (x -. approx.data.(k)))
    exact.data;
  Float.max !acc 0.0

let row_sums m =
  Array.init m.rows (fun i ->
      let acc = ref 0.0 in
      for j = 0 to m.cols - 1 do
        acc := !acc +. m.data.((i * m.cols) + j)
      done;
      !acc)

let is_row_stochastic ?(tol = 1e-9) m =
  Array.for_all (fun x -> x >= -.tol) m.data
  && Array.for_all (fun s -> Float.abs (s -. 1.0) <= tol) (row_sums m)

let is_symmetric ?(tol = 1e-9) m =
  m.rows = m.cols
  &&
  try
    for i = 0 to m.rows - 1 do
      for j = i + 1 to m.cols - 1 do
        if Float.abs (get m i j -. get m j i) > tol then raise Exit
      done
    done;
    true
  with Exit -> false

let normalize_rows m =
  let out = copy m in
  for i = 0 to m.rows - 1 do
    let s = ref 0.0 in
    for j = 0 to m.cols - 1 do
      s := !s +. out.data.((i * m.cols) + j)
    done;
    if !s <> 0.0 then
      for j = 0 to m.cols - 1 do
        out.data.((i * m.cols) + j) <- out.data.((i * m.cols) + j) /. !s
      done
  done;
  out

let pp fmt m =
  Format.fprintf fmt "@[<v>";
  for i = 0 to m.rows - 1 do
    Format.fprintf fmt "[";
    for j = 0 to m.cols - 1 do
      if j > 0 then Format.fprintf fmt " ";
      Format.fprintf fmt "%8.5f" (get m i j)
    done;
    Format.fprintf fmt "]@,"
  done;
  Format.fprintf fmt "@]"
