(** Linear solvers: LU decomposition, inversion, determinants.

    Used for (i) the exact Schur complement
    [M_SS - M_S,Sbar (M_Sbar,Sbar)^{-1} M_Sbar,S] (Section 2.2), (ii) the
    Matrix–Tree theorem (determinant of a Laplacian minor counts spanning
    trees), and (iii) exact absorbing-chain limits for the shortcut graph. *)

type lu
(** An LU factorization with partial pivoting. *)

(** [lu m] factors a square matrix. @raise Failure if singular to working
    precision. *)
val lu : Mat.t -> lu

(** [lu_solve f b] solves [m x = b]. *)
val lu_solve : lu -> float array -> float array

(** [solve m b] = [lu_solve (lu m) b]. *)
val solve : Mat.t -> float array -> float array

(** [solve_mat m b] solves [m X = B] column by column. *)
val solve_mat : Mat.t -> Mat.t -> Mat.t

(** [inverse m]. @raise Failure if singular. *)
val inverse : Mat.t -> Mat.t

(** [determinant m]; 0 for singular matrices. *)
val determinant : Mat.t -> float

(** [log_determinant m] returns [(sign, log |det|)]; robust for the large
    spanning-tree counts of Matrix–Tree. [sign] is 0 for singular input. *)
val log_determinant : Mat.t -> int * float

(** [schur_complement m ~keep] is SCHUR(M, S) for S = [keep] (Section 2.2):
    [M_SS - M_S,Sbar (M_Sbar,Sbar)^{-1} M_Sbar,S]. The result is indexed in
    the order of [keep]. @raise Failure if [M_Sbar,Sbar] is singular. *)
val schur_complement : Mat.t -> keep:int array -> Mat.t
