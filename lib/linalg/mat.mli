(** Dense row-major matrices over [float].

    This is the numeric substrate for transition matrices [P], their powers
    [P^2, P^4, ..., P^l] (Algorithm 1), Laplacians, and Schur complements.
    Matrices are mutable; all derived operations allocate fresh results unless
    the name says otherwise. *)

type t

(** Minimum work estimate (entries touched) before a row kernel dispatches
    through {!Cc_engine.parallel_for}. The cutoff picks the execution
    strategy only — results are bit-identical on either path — and is shared
    by the other dense kernels ([Solve], [Shortcut]) so the whole linalg
    layer flips to parallel at a consistent operand size. *)
val par_threshold : int

(** {1 Construction and access} *)

val create : rows:int -> cols:int -> float -> t
val init : rows:int -> cols:int -> (int -> int -> float) -> t
val identity : int -> t
val copy : t -> t
val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit

(** [of_arrays a] builds a matrix from a rectangular array of rows. *)
val of_arrays : float array array -> t

val to_arrays : t -> float array array

(** [row m i] is a fresh copy of row [i]. *)
val row : t -> int -> float array

(** [col m j] is a fresh copy of column [j]. *)
val col : t -> int -> float array

(** {1 Arithmetic} *)

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val transpose : t -> t

(** [mul a b] is the matrix product; O(n^3) with a cache-friendly loop
    order. *)
val mul : t -> t -> t

(** [mul_vec m v] is [m v]. *)
val mul_vec : t -> float array -> float array

(** [vec_mul v m] is [v^T m] (row vector times matrix). *)
val vec_mul : float array -> t -> float array

(** [power m k] is [m^k] by repeated squaring, [k >= 0]. *)
val power : t -> int -> t

(** [half_lazy m] is [(I + m) / 2] — the lazy version of a transition
    matrix, which kills the periodicity of bipartite chains. *)
val half_lazy : t -> t

(** [power_table m ~max_exp] returns [[m; m^2; m^4; ...]] up to the largest
    power of two <= 2^max_exp — the table built by the Initialization Step. *)
val power_table : t -> max_exp:int -> t array

(** {1 Submatrices} *)

(** [submatrix m ~row_idx ~col_idx] extracts the (possibly permuted)
    submatrix with the given row and column index arrays. *)
val submatrix : t -> row_idx:int array -> col_idx:int array -> t

(** {1 Predicates and norms} *)

val equal : ?tol:float -> t -> t -> bool

(** [max_abs_diff a b] is the entrywise l-infinity distance. *)
val max_abs_diff : t -> t -> float

(** [max_subtractive_error ~exact ~approx] is the largest amount by which
    [approx] falls below [exact]; negative entries of [exact - approx] do not
    contribute (Lemma 3 speaks of one-sided, subtractive error). *)
val max_subtractive_error : exact:t -> approx:t -> float

(** [row_sums m] is the vector of row sums. *)
val row_sums : t -> float array

(** [is_row_stochastic ?tol m] checks nonnegativity and unit row sums. *)
val is_row_stochastic : ?tol:float -> t -> bool

(** [is_symmetric ?tol m] *)
val is_symmetric : ?tol:float -> t -> bool

(** [normalize_rows m] divides each row by its sum; rows summing to zero are
    left untouched. *)
val normalize_rows : t -> t

val pp : Format.formatter -> t -> unit
