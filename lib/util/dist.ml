type t = { probs : float array; cdf : float array }

let check_weights w =
  Array.iter
    (fun x ->
      if x < 0.0 || not (Float.is_finite x) then
        invalid_arg "Dist: weights must be finite and nonnegative")
    w

let of_weights w =
  check_weights w;
  let total = Array.fold_left ( +. ) 0.0 w in
  if total <= 0.0 then invalid_arg "Dist.of_weights: all weights are zero";
  let probs = Array.map (fun x -> x /. total) w in
  let cdf = Array.make (Array.length w) 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i p ->
      acc := !acc +. p;
      cdf.(i) <- !acc)
    probs;
  cdf.(Array.length cdf - 1) <- 1.0;
  { probs; cdf }

let uniform n =
  if n <= 0 then invalid_arg "Dist.uniform";
  of_weights (Array.make n 1.0)

let point ~support_size i =
  if i < 0 || i >= support_size then invalid_arg "Dist.point";
  let w = Array.make support_size 0.0 in
  w.(i) <- 1.0;
  of_weights w

let support_size d = Array.length d.probs
let prob d i = d.probs.(i)
let probs d = Array.copy d.probs

let sample d prng =
  let u = Prng.float prng 1.0 in
  (* Smallest index with cdf.(i) > u. *)
  let lo = ref 0 and hi = ref (Array.length d.cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if d.cdf.(mid) > u then hi := mid else lo := mid + 1
  done;
  !lo

let sample_weights w prng =
  check_weights w;
  let total = Array.fold_left ( +. ) 0.0 w in
  if total <= 0.0 then invalid_arg "Dist.sample_weights: all weights are zero";
  let u = Prng.float prng total in
  let n = Array.length w in
  let rec go i acc =
    if i = n - 1 then i
    else
      let acc = acc +. w.(i) in
      if u < acc then i else go (i + 1) acc
  in
  go 0 0.0

type alias = { alias_prob : float array; alias_idx : int array }

let alias_of d =
  let n = support_size d in
  let scaled = Array.map (fun p -> p *. float_of_int n) d.probs in
  let alias_prob = Array.make n 1.0 in
  let alias_idx = Array.init n (fun i -> i) in
  let small = Queue.create () and large = Queue.create () in
  Array.iteri
    (fun i p -> if p < 1.0 then Queue.add i small else Queue.add i large)
    scaled;
  while (not (Queue.is_empty small)) && not (Queue.is_empty large) do
    let s = Queue.pop small and l = Queue.pop large in
    alias_prob.(s) <- scaled.(s);
    alias_idx.(s) <- l;
    scaled.(l) <- scaled.(l) -. (1.0 -. scaled.(s));
    if scaled.(l) < 1.0 then Queue.add l small else Queue.add l large
  done;
  { alias_prob; alias_idx }

let alias_sample a prng =
  let n = Array.length a.alias_prob in
  let i = Prng.int prng n in
  if Prng.float prng 1.0 < a.alias_prob.(i) then i else a.alias_idx.(i)

let same_support a b =
  if support_size a <> support_size b then
    invalid_arg "Dist: support sizes differ"

let tv a b =
  same_support a b;
  let acc = ref 0.0 in
  Array.iteri (fun i p -> acc := !acc +. Float.abs (p -. b.probs.(i))) a.probs;
  0.5 *. !acc

let empirical counts =
  of_weights (Array.map float_of_int counts)

let tv_counts ~counts d =
  if Array.length counts <> support_size d then
    invalid_arg "Dist.tv_counts: support sizes differ";
  tv (empirical counts) d

(* The divergence's two degenerate directions are deliberately asymmetric
   (see dist.mli): mass of [a] where [b] has none makes the whole divergence
   [infinity] (the distributions are mutually singular on that outcome and
   no finite penalty is faithful), while mass of [b] where [a] has none
   contributes nothing (the 0 * log 0 = 0 convention). We short-circuit on
   the first infinite term so no NaN can arise from later arithmetic. *)
let kl a b =
  same_support a b;
  let n = support_size a in
  let exception Disjoint in
  try
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      let p = a.probs.(i) in
      if p > 0.0 then
        if b.probs.(i) <= 0.0 then raise Disjoint
        else acc := !acc +. (p *. Float.log (p /. b.probs.(i)))
    done;
    !acc
  with Disjoint -> infinity

let chi_square_stat ~counts d =
  if Array.length counts <> support_size d then
    invalid_arg "Dist.chi_square_stat: support sizes differ";
  let total = Array.fold_left ( + ) 0 counts in
  let acc = ref 0.0 in
  Array.iteri
    (fun i c ->
      let expected = d.probs.(i) *. float_of_int total in
      if expected > 0.0 then
        let diff = float_of_int c -. expected in
        acc := !acc +. (diff *. diff /. expected)
      else if c > 0 then acc := infinity)
    counts;
  !acc
