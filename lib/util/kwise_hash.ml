type t = {
  coeffs : int array; (* degree-(t-1) polynomial coefficients in F_p *)
  range : int;
}

let field_prime = 0x7fffffff (* 2^31 - 1, Mersenne prime *)

let create prng ~independence ~domain ~range =
  if independence <= 0 then invalid_arg "Kwise_hash.create: independence <= 0";
  if domain <= 0 || domain >= field_prime then
    invalid_arg "Kwise_hash.create: domain must fit in the field";
  if range <= 0 then invalid_arg "Kwise_hash.create: range <= 0";
  let coeffs =
    Array.init independence (fun _ -> Prng.int prng field_prime)
  in
  { coeffs; range }

(* Horner evaluation in F_p. Operands are < 2^31 so the product fits in the
   62 value bits of a native int. *)
let apply h x =
  let p = field_prime in
  let acc = ref 0 in
  for i = Array.length h.coeffs - 1 downto 0 do
    acc := ((!acc * x) + h.coeffs.(i)) mod p
  done;
  !acc mod h.range

let apply2 h ~encode_bound x y =
  let encoded = (x * encode_bound) + y in
  if encoded >= field_prime then
    invalid_arg "Kwise_hash.apply2: encoded pair exceeds field";
  apply h encoded

let description_bits h = Array.length h.coeffs * 31
