type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

let mean xs =
  if Array.length xs = 0 then invalid_arg "Stats.mean: empty input";
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let variance xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.variance: empty input";
  (* A single observation has no spread; the n-1 denominator would give
     0/0, so the singleton case is defined as 0 rather than NaN. *)
  if n = 1 then 0.0
  else
    let m = mean xs in
    let acc = ref 0.0 in
    Array.iter
      (fun x ->
        let d = x -. m in
        acc := !acc +. (d *. d))
      xs;
    !acc /. float_of_int (n - 1)

let stddev xs =
  if Array.length xs = 0 then invalid_arg "Stats.stddev: empty input";
  sqrt (variance xs)

let quantile q xs =
  if Array.length xs = 0 then invalid_arg "Stats.quantile: empty input";
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.quantile: q out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = min (lo + 1) (n - 1) in
  let frac = pos -. float_of_int lo in
  (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)

let summarize xs =
  if Array.length xs = 0 then invalid_arg "Stats.summarize: empty input";
  {
    count = Array.length xs;
    mean = mean xs;
    stddev = stddev xs;
    min = Array.fold_left Float.min infinity xs;
    max = Array.fold_left Float.max neg_infinity xs;
    median = quantile 0.5 xs;
  }

let linear_fit xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Stats.linear_fit: length mismatch";
  if n < 2 then invalid_arg "Stats.linear_fit: need at least two points";
  let mx = mean xs and my = mean ys in
  let sxy = ref 0.0 and sxx = ref 0.0 in
  for i = 0 to n - 1 do
    sxy := !sxy +. ((xs.(i) -. mx) *. (ys.(i) -. my));
    sxx := !sxx +. ((xs.(i) -. mx) *. (xs.(i) -. mx))
  done;
  if !sxx = 0.0 then invalid_arg "Stats.linear_fit: degenerate x values";
  let slope = !sxy /. !sxx in
  (slope, my -. (slope *. mx))

let fit_power xs ys =
  Array.iter
    (fun x -> if x <= 0.0 then invalid_arg "Stats.fit_power: nonpositive x")
    xs;
  Array.iter
    (fun y -> if y <= 0.0 then invalid_arg "Stats.fit_power: nonpositive y")
    ys;
  let lx = Array.map Float.log xs and ly = Array.map Float.log ys in
  let slope, intercept = linear_fit lx ly in
  (slope, Float.exp intercept)

let r_squared xs ys (slope, intercept) =
  let my = mean ys in
  let ss_res = ref 0.0 and ss_tot = ref 0.0 in
  Array.iteri
    (fun i x ->
      let pred = (slope *. x) +. intercept in
      let res = ys.(i) -. pred and dev = ys.(i) -. my in
      ss_res := !ss_res +. (res *. res);
      ss_tot := !ss_tot +. (dev *. dev))
    xs;
  if !ss_tot = 0.0 then 1.0 else 1.0 -. (!ss_res /. !ss_tot)

let binomial_confidence ~n ~p =
  if n <= 0 then invalid_arg "Stats.binomial_confidence";
  2.0 *. sqrt (p *. (1.0 -. p) /. float_of_int n)

let tv_noise_floor ~samples ~support =
  if samples <= 0 || support <= 0 then invalid_arg "Stats.tv_noise_floor";
  sqrt (float_of_int support /. (2.0 *. Float.pi *. float_of_int samples))
