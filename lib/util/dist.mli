(** Finite discrete probability distributions.

    Every sampling step of the paper's algorithms — midpoint selection
    (Formula 1), first-visit-edge resampling (Algorithm 4), walk transitions —
    draws from an explicitly represented, usually unnormalized, weight vector.
    This module provides normalization, exact sampling (inverse-CDF and alias
    method), and the distance measures used to validate output distributions
    (total variation, KL, chi-square). *)

type t
(** A normalized distribution over [0 .. support_size - 1]. *)

(** {1 Construction} *)

(** [of_weights w] normalizes nonnegative weights into a distribution.
    @raise Invalid_argument if any weight is negative, not finite, or if all
    weights are zero. *)
val of_weights : float array -> t

(** [uniform n] is the uniform distribution on [0..n-1]. *)
val uniform : int -> t

(** [point ~support_size i] puts all mass on outcome [i]. *)
val point : support_size:int -> int -> t

val support_size : t -> int

(** [prob d i] is the probability of outcome [i]. *)
val prob : t -> int -> float

(** [probs d] is a fresh copy of the probability vector. *)
val probs : t -> float array

(** {1 Sampling} *)

(** [sample d prng] draws one outcome by inverse-CDF binary search,
    O(log support). *)
val sample : t -> Prng.t -> int

(** [sample_weights w prng] draws directly from unnormalized weights without
    building a [t]; linear scan, for one-shot draws. *)
val sample_weights : float array -> Prng.t -> int

type alias
(** Preprocessed constant-time sampler (Walker alias method). *)

val alias_of : t -> alias
val alias_sample : alias -> Prng.t -> int

(** {1 Distances and statistics} *)

(** [tv a b] is the total variation distance
    [1/2 * sum_i |a_i - b_i|]; both must share a support size. *)
val tv : t -> t -> float

(** [tv_counts ~counts d] is the TV distance between the empirical
    distribution of [counts] and [d]. *)
val tv_counts : counts:int array -> t -> float

(** [kl a b] is the Kullback–Leibler divergence D(a || b).

    Zero-mass contract (the two degenerate directions are asymmetric, and
    both are defined — neither raises):
    - if [a] has mass on an outcome where [b] has none, the result is exactly
      [infinity] (never NaN): [a] is not absolutely continuous w.r.t. [b] and
      no finite value is faithful;
    - outcomes where [b] has mass but [a] has none contribute [0.0]
      (the [0 * log 0 = 0] convention), so [kl] stays finite in that
      direction.

    @raise Invalid_argument only when the support sizes differ. *)
val kl : t -> t -> float

(** [chi_square_stat ~counts d] is the chi-square goodness-of-fit statistic of
    observed [counts] against expected [d]; outcomes with zero expected mass
    must have zero counts. *)
val chi_square_stat : counts:int array -> t -> float

(** [empirical counts] turns a histogram into a distribution. *)
val empirical : int array -> t
