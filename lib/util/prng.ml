type t = Random.State.t

let create ~seed = Random.State.make [| seed; 0x5eed; seed lxor 0x9e3779b9 |]

let split t = Random.State.split t
let streams t n = Array.init n (fun _ -> split t)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* full_int, unlike int, accepts bounds up to 2^62 - 1 (needed for the
     2^31-sized hash field). *)
  Random.State.full_int t bound

let float t bound = Random.State.float t bound

let bool t = Random.State.bool t

let bits t ~width =
  if width <= 0 || width > 62 then invalid_arg "Prng.bits: width out of range";
  Random.State.int64 t (Int64.shift_left 1L width) |> Int64.to_int

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Prng.choose: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let permutation t n =
  let arr = Array.init n (fun i -> i) in
  shuffle t arr;
  arr

let subset t ~size arr =
  let n = Array.length arr in
  if size > n then invalid_arg "Prng.subset: size exceeds array length";
  let copy = Array.copy arr in
  (* Partial Fisher–Yates: only the first [size] slots need to be finalized. *)
  for i = 0 to size - 1 do
    let j = i + int t (n - i) in
    let tmp = copy.(i) in
    copy.(i) <- copy.(j);
    copy.(j) <- tmp
  done;
  Array.sub copy 0 size
