(** t-wise independent hash families.

    Section 4 (step 1) of the paper requires a family of [8c log n]-wise
    independent hash functions [h : [n] x [k] -> [n]] that can be sampled with
    O(log^2 n) random bits and evaluated in polylog time. The standard
    construction is a degree-(t-1) polynomial with uniform coefficients over a
    prime field, reduced to the target range. *)

type t

(** The prime modulus of the field used by the construction (2^31 - 1). *)
val field_prime : int

(** [create prng ~independence ~domain ~range] samples a hash function from a
    family that is [independence]-wise independent on inputs in
    [0, domain) mapped to [0, range). Requires [0 < domain < field_prime],
    [independence > 0], and [range > 0]; [range] may exceed [domain].
    @raise Invalid_argument when any requirement fails. *)
val create : Prng.t -> independence:int -> domain:int -> range:int -> t

(** [apply h x] evaluates the hash at [x] (0 <= x < domain). *)
val apply : t -> int -> int

(** [apply2 h ~encode_bound x y] evaluates the hash on the pair [(x, y)]
    encoded as [x * encode_bound + y], matching the paper's
    [h : [n] x [k] -> [n]] signature. *)
val apply2 : t -> encode_bound:int -> int -> int -> int

(** Number of random bits consumed to describe the function:
    [independence * bits_per_coefficient]. Exposed so benches can report the
    seed-length claim (O(t log N) bits). *)
val description_bits : t -> int
