(** Plain-text table rendering for the benchmark harness.

    Every experiment in EXPERIMENTS.md is printed as one of these tables so
    the paper-vs-measured comparison is a single, diffable artifact. *)

type t

(** [create ~title ~columns] starts an empty table. *)
val create : title:string -> columns:string list -> t

(** [add_row t cells] appends a row; must match the column count. *)
val add_row : t -> string list -> unit

(** Convenience cell formatters. *)
val cell_int : int -> string
val cell_float : ?decimals:int -> float -> string
val cell_sci : float -> string

(** [render t] returns the table as an aligned, boxed string. *)
val render : t -> string

(** [print t] renders to stdout followed by a newline. *)
val print : t -> unit

(** [to_csv t] renders as CSV (title as a comment line). *)
val to_csv : t -> string
