(** Summary statistics and regression helpers for the benchmark harness.

    The paper's claims are asymptotic; the benches verify them by fitting
    exponents over a ladder of problem sizes ([fit_power]) or checking that a
    polylog-normalized series is flat. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

(** {1 Edge cases}

    Every summary function below rejects an empty input by raising
    [Invalid_argument "Stats.<fn>: empty input"] — never by silently
    returning NaN or an infinity. A singleton input is well-defined:
    [mean [|x|] = x], [variance]/[stddev] are [0.] (a single observation
    has no spread; the [n-1] denominator would otherwise give 0/0), every
    [quantile] is [x], and [summarize] reports [min = max = median = x]
    with [stddev = 0.]. *)

(** [summarize xs] is the count/mean/stddev/min/max/median of [xs].
    @raise Invalid_argument on an empty input. *)
val summarize : float array -> summary

(** @raise Invalid_argument on an empty input. *)
val mean : float array -> float

(** Sample variance ([n-1] denominator); [0.] for a singleton.
    @raise Invalid_argument on an empty input. *)
val variance : float array -> float

(** [sqrt (variance xs)]; [0.] for a singleton.
    @raise Invalid_argument on an empty input. *)
val stddev : float array -> float

(** [quantile q xs] with [0 <= q <= 1]; linear interpolation between order
    statistics. A singleton's every quantile is its sole element.
    @raise Invalid_argument on an empty input or [q] outside [0, 1]. *)
val quantile : float -> float array -> float

(** [linear_fit xs ys] returns [(slope, intercept)] of the least-squares line.
    @raise Invalid_argument on mismatched lengths or fewer than two points. *)
val linear_fit : float array -> float array -> float * float

(** [fit_power xs ys] fits [y = c * x^e] by regressing log y on log x and
    returns [(e, c)]. All inputs must be positive. *)
val fit_power : float array -> float array -> float * float

(** [r_squared xs ys (slope, intercept)] is the coefficient of determination
    of the fitted line. *)
val r_squared : float array -> float array -> float * float -> float

(** [binomial_confidence ~n ~p] is a ~2-sigma half-width for an empirical
    frequency estimated from [n] samples of a Bernoulli(p): used to set
    thresholds on empirical TV tests. *)
val binomial_confidence : n:int -> p:float -> float

(** [tv_noise_floor ~samples ~support] estimates the expected TV distance
    between the empirical distribution of [samples] iid draws from a uniform
    distribution on [support] outcomes and that distribution itself —
    roughly [sqrt (support / (2 pi samples))] per the CLT. Used as the
    baseline in E5. *)
val tv_noise_floor : samples:int -> support:int -> float
