(** Deterministic, splittable pseudo-random number generation.

    All randomized algorithms in this repository take an explicit [Prng.t] so
    that every experiment and test is reproducible from a single integer seed.
    The generator wraps [Random.State] (OCaml 5 splitmix-based) and adds the
    handful of sampling helpers the algorithms need. *)

type t

(** [create ~seed] builds a generator deterministically from [seed]. *)
val create : seed:int -> t

(** [split t] derives a fresh, statistically independent generator. The parent
    generator advances; repeated splits yield distinct streams. *)
val split : t -> t

(** [streams t n] is [n] independent generators split off [t] in index order.
    This is the idiom for deterministic parallelism: split one stream per
    machine {e before} entering a parallel region, so each machine's draws
    are the same whatever the domain count or scheduling order. *)
val streams : t -> int -> t array

(** [int t bound] is uniform on [0, bound). [bound] must be positive. *)
val int : t -> int -> int

(** [float t bound] is uniform on [0, bound). *)
val float : t -> float -> float

(** [bool t] is a fair coin flip. *)
val bool : t -> bool

(** [bits t ~width] is a uniform integer with [width] random bits
    (0 < width <= 62). *)
val bits : t -> width:int -> int

(** [choose t arr] picks a uniform element of [arr].
    @raise Invalid_argument on an empty array. *)
val choose : t -> 'a array -> 'a

(** [shuffle t arr] permutes [arr] in place uniformly (Fisher–Yates). *)
val shuffle : t -> 'a array -> unit

(** [permutation t n] is a uniform permutation of [0..n-1]. *)
val permutation : t -> int -> int array

(** [subset t ~size arr] samples [size] distinct elements of [arr] uniformly
    without replacement. @raise Invalid_argument if [size > Array.length arr]. *)
val subset : t -> size:int -> 'a array -> 'a array
