type t = {
  title : string;
  columns : string list;
  mutable rows : string list list; (* reversed *)
}

let create ~title ~columns = { title; columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg "Table.add_row: cell count does not match columns";
  t.rows <- cells :: t.rows

let cell_int = string_of_int

let cell_float ?(decimals = 3) x = Printf.sprintf "%.*f" decimals x

let cell_sci x = Printf.sprintf "%.3e" x

let render t =
  let rows = List.rev t.rows in
  let all = t.columns :: rows in
  let ncols = List.length t.columns in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> widths.(i) <- max widths.(i) (String.length cell))
        row)
    all;
  let buf = Buffer.create 1024 in
  let hline () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let render_row row =
    Buffer.add_char buf '|';
    List.iteri
      (fun i cell ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf cell;
        Buffer.add_string buf (String.make (widths.(i) - String.length cell) ' ');
        Buffer.add_string buf " |")
      row;
    Buffer.add_char buf '\n'
  in
  Buffer.add_string buf t.title;
  Buffer.add_char buf '\n';
  hline ();
  render_row t.columns;
  hline ();
  List.iter render_row rows;
  hline ();
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()

let escape_csv cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let to_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf ("# " ^ t.title ^ "\n");
  let line row =
    Buffer.add_string buf (String.concat "," (List.map escape_csv row));
    Buffer.add_char buf '\n'
  in
  line t.columns;
  List.iter line (List.rev t.rows);
  Buffer.contents buf
