module Graph = Cc_graph.Graph
module Tree = Cc_graph.Tree
module Dist = Cc_util.Dist
module Json = Cc_obs.Json
module Metrics = Cc_obs.Metrics

(* Edges with leverage within [bridge_eps] of 1 are in every spanning tree
   (graph bridges); their inclusion count has zero variance, so they get an
   exactness gate instead of a z-score. *)
let bridge_eps = 1e-9

(* Leverage bounds for the ESS estimate: edges with marginals this close to
   0 or 1 carry almost no information per sample and their autocorrelation
   estimate is dominated by noise. *)
let ess_info_lo = 0.01
let ess_info_hi = 0.99

type edge_stat = {
  u : int;
  v : int;
  leverage : float;
  count : int;
  z : float;
  bridge : bool;
}

type gate = {
  gate : string;
  applied : bool;
  breached : bool;
  statistic : float;
  threshold : float;
  detail : string;
}

type verdict = { pass : bool; at_trials : int; gates : gate list }

type snapshot = {
  at : int;
  s_max_z : float;
  s_tv : float;
  s_kl : float;
  s_ess : float;
  s_small_tv : float option;
}

type small_state = {
  trees : Tree.t array;
  lookup : Tree.t -> int;
  target : Dist.t;
  counts : int array;
  mutable foreign : int;
}

let feature_names = [| "max_degree"; "leaf_count"; "diameter"; "root_depth" |]

type t = {
  graph : Graph.t;
  fingerprint : string; (* Graph.fingerprint, cached for the sink's fast path *)
  n : int;
  m : int;
  alpha : float;
  min_trials : int;
  edge_u : int array;
  edge_v : int array;
  leverage : float array;
  is_bridge : bool array;
  counts : int array;
  (* Lag-1 machinery: [prev] is the previous tree's inclusion bit per edge,
     [lag1] the number of consecutive-tree pairs where both included. *)
  prev : Bytes.t;
  lag1 : int array;
  mutable trials : int;
  mutable invalid : int;
  mutable skipped : int;
  (* Feature histograms, indexed as [feature_names]; values are in [0, n]. *)
  feat_hist : int array array;
  feat_expected : (int * float) list array;
  small : small_state option;
  mutable snapshots : snapshot list; (* reverse chronological *)
}

(* ------------------------------------------------------------------ *)
(* Tree features                                                       *)

let bfs_farthest adj n s =
  let dist = Array.make n (-1) in
  dist.(s) <- 0;
  let q = Queue.create () in
  Queue.add s q;
  let far = ref s in
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun v ->
        if dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          if dist.(v) > dist.(!far) then far := v;
          Queue.add v q
        end)
      adj.(u)
  done;
  (!far, dist.(!far))

(* [max degree; leaf count; diameter; root depth (ecc. of vertex 0)]. *)
let features_of ~n tree =
  if n <= 1 then [| 0; 0; 0; 0 |]
  else begin
    let adj = Array.make n [] in
    List.iter
      (fun (u, v) ->
        adj.(u) <- v :: adj.(u);
        adj.(v) <- u :: adj.(v))
      (Tree.edges tree);
    let maxdeg = ref 0 and leaves = ref 0 in
    Array.iter
      (fun l ->
        let d = List.length l in
        if d > !maxdeg then maxdeg := d;
        if d = 1 then incr leaves)
      adj;
    let far, depth = bfs_farthest adj n 0 in
    let _, diameter = bfs_farthest adj n far in
    [| !maxdeg; !leaves; diameter; depth |]
  end

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)

let create ?(alpha = 1e-3) ?(min_trials = 32) ?(small_limit = 8)
    ?(small_support = 20_000) g =
  if not (alpha > 0.0 && alpha < 1.0) then
    invalid_arg "Audit.create: alpha must lie in (0, 1)";
  if not (Graph.is_connected g) then
    invalid_arg "Audit.create: graph must be connected";
  let n = Graph.n g in
  let edges = Array.of_list (Graph.edges g) in
  let m = Array.length edges in
  let edge_u = Array.map (fun (u, _, _) -> u) edges in
  let edge_v = Array.map (fun (_, v, _) -> v) edges in
  let leverage =
    Array.map
      (fun (u, v, w) ->
        let r = Graph.effective_resistance g u v in
        Float.min 1.0 (Float.max 0.0 (w *. r)))
      edges
  in
  let is_bridge = Array.map (fun p -> p >= 1.0 -. bridge_eps) leverage in
  let small =
    if n > small_limit then None
    else
      match Tree.index ~limit:small_support g with
      | trees, lookup ->
          let target = Tree.weighted_distribution g trees in
          Some
            { trees; lookup; target; counts = Array.make (Array.length trees) 0;
              foreign = 0 }
      | exception Invalid_argument _ -> None
  in
  let feat_expected =
    match small with
    | None -> Array.make (Array.length feature_names) []
    | Some s ->
        let acc =
          Array.init (Array.length feature_names) (fun _ ->
              Array.make (n + 1) 0.0)
        in
        Array.iteri
          (fun i tree ->
            let p = Dist.prob s.target i in
            let fs = features_of ~n tree in
            Array.iteri (fun k v -> acc.(k).(v) <- acc.(k).(v) +. p) fs)
          s.trees;
        Array.map
          (fun dist ->
            let out = ref [] in
            for v = n downto 0 do
              if dist.(v) > 0.0 then out := (v, dist.(v)) :: !out
            done;
            !out)
          acc
  in
  {
    graph = g;
    fingerprint = Graph.fingerprint g;
    n;
    m;
    alpha;
    min_trials;
    edge_u;
    edge_v;
    leverage;
    is_bridge;
    counts = Array.make m 0;
    prev = Bytes.make m '\000';
    lag1 = Array.make m 0;
    trials = 0;
    invalid = 0;
    skipped = 0;
    feat_hist =
      Array.init (Array.length feature_names) (fun _ -> Array.make (n + 1) 0);
    feat_expected;
    small;
    snapshots = [];
  }

(* ------------------------------------------------------------------ *)
(* Statistics                                                          *)

let trials t = t.trials
let alpha t = t.alpha
let invalid_trees t = t.invalid
let skipped t = t.skipped

let z_of t i =
  if t.is_bridge.(i) || t.trials = 0 then 0.0
  else
    let p = t.leverage.(i) in
    let nf = float_of_int t.trials in
    let sd = Float.sqrt (nf *. p *. (1.0 -. p)) in
    if sd <= 0.0 then 0.0 else (float_of_int t.counts.(i) -. (nf *. p)) /. sd

let edge_stats t =
  List.init t.m (fun i ->
      {
        u = t.edge_u.(i);
        v = t.edge_v.(i);
        leverage = t.leverage.(i);
        count = t.counts.(i);
        z = z_of t i;
        bridge = t.is_bridge.(i);
      })

let nonbridge_count t =
  Array.fold_left (fun acc b -> if b then acc else acc + 1) 0 t.is_bridge

let z_threshold t =
  let m' = max 1 (nonbridge_count t) in
  Float.sqrt (2.0 *. Float.log (2.0 *. float_of_int m' /. t.alpha))

let max_z t =
  let acc = ref 0.0 in
  for i = 0 to t.m - 1 do
    if not t.is_bridge.(i) then acc := Float.max !acc (Float.abs (z_of t i))
  done;
  !acc

let sum_z2 t =
  let acc = ref 0.0 in
  for i = 0 to t.m - 1 do
    if not t.is_bridge.(i) then
      let z = z_of t i in
      acc := !acc +. (z *. z)
  done;
  !acc

let tv_edges t =
  if t.trials = 0 then Float.nan
  else
    let emp = Array.map float_of_int t.counts in
    let oracle = Array.map (fun p -> Float.max p 1e-300) t.leverage in
    match Dist.of_weights emp with
    | d -> Dist.tv d (Dist.of_weights oracle)
    | exception Invalid_argument _ -> Float.nan

let kl_edges t =
  if t.trials = 0 then Float.nan
  else
    let emp = Array.map float_of_int t.counts in
    let oracle = Array.map (fun p -> Float.max p 1e-300) t.leverage in
    match Dist.of_weights emp with
    | d -> Dist.kl d (Dist.of_weights oracle)
    | exception Invalid_argument _ -> Float.nan

let ess t =
  let nf = float_of_int t.trials in
  if t.trials < 2 then Float.max 1.0 nf
  else begin
    let best = ref nf in
    let pairs = float_of_int (t.trials - 1) in
    for i = 0 to t.m - 1 do
      let p = float_of_int t.counts.(i) /. nf in
      if p > ess_info_lo && p < ess_info_hi then begin
        let var = p *. (1.0 -. p) in
        let rho = ((float_of_int t.lag1.(i) /. pairs) -. (p *. p)) /. var in
        let rho = Float.min 0.99 (Float.max (-0.99) rho) in
        let e = nf *. (1.0 -. rho) /. (1.0 +. rho) in
        let e = Float.min nf (Float.max 1.0 e) in
        if e < !best then best := e
      end
    done;
    !best
  end

let small_tv t =
  match t.small with
  | None -> None
  | Some s ->
      if t.trials = 0 then Some Float.nan
      else Some (Dist.tv_counts ~counts:s.counts s.target)

let small_kl t =
  match t.small with
  | None -> None
  | Some s ->
      if t.trials = 0 then Some Float.nan
      else
        Some
          (match Dist.empirical s.counts with
          | d -> Dist.kl d s.target
          | exception Invalid_argument _ -> Float.nan)

(* ------------------------------------------------------------------ *)
(* Verdict                                                             *)

(* Laurent–Massart (2000): for X ~ chi-square with [df] degrees of freedom,
   P(X >= df + 2 sqrt(df x) + 2x) <= e^-x. With x = ln(1/alpha) this gives a
   level-alpha upper tail without an inverse-CDF table. *)
let chi2_upper ~df ~alpha =
  let df = float_of_int df in
  let x = Float.log (1.0 /. alpha) in
  df +. (2.0 *. Float.sqrt (df *. x)) +. (2.0 *. x)

let verdict t =
  let asymptotic_ready = t.trials >= t.min_trials in
  let nb = nonbridge_count t in
  let bridges = t.m - nb in
  let gates = ref [] in
  let add gate applied breached statistic threshold detail =
    gates := { gate; applied; breached; statistic; threshold; detail } :: !gates
  in
  add "valid-trees" true (t.invalid > 0) (float_of_int t.invalid) 0.0
    (Printf.sprintf "%d observed tree(s) were not spanning trees" t.invalid);
  let bridge_viol = ref 0 in
  for i = 0 to t.m - 1 do
    if t.is_bridge.(i) && t.counts.(i) <> t.trials then incr bridge_viol
  done;
  add "bridge-exact"
    (t.trials > 0 && bridges > 0)
    (!bridge_viol > 0)
    (float_of_int !bridge_viol) 0.0
    (Printf.sprintf "%d of %d bridge edge(s) missing from some tree"
       !bridge_viol bridges);
  let zt = z_threshold t in
  let mz = max_z t in
  add "bonferroni-z"
    (asymptotic_ready && nb > 0)
    (mz > zt) mz zt
    (Printf.sprintf "max |z| over %d non-bridge edge(s), alpha=%g" nb t.alpha);
  let chi2 = sum_z2 t in
  let chi2_t = chi2_upper ~df:(max 1 nb) ~alpha:t.alpha in
  add "chi2-edges"
    (asymptotic_ready && nb > 0)
    (chi2 > chi2_t) chi2 chi2_t
    (Printf.sprintf "sum z^2 vs Laurent-Massart tail at df=%d" nb);
  (match t.small with
  | None -> ()
  | Some s ->
      let support = Array.length s.trees in
      let stat = Dist.chi_square_stat ~counts:s.counts s.target in
      let thr = chi2_upper ~df:(max 1 (support - 1)) ~alpha:t.alpha in
      add "small-chi2" asymptotic_ready (stat > thr) stat thr
        (Printf.sprintf "exact-support chi-square, %d enumerated trees" support);
      add "small-support" (t.trials > 0)
        (s.foreign > 0)
        (float_of_int s.foreign) 0.0
        "observed trees outside the enumerated support");
  let gates = List.rev !gates in
  let pass =
    not (List.exists (fun g -> g.applied && g.breached) gates)
  in
  { pass; at_trials = t.trials; gates }

(* ------------------------------------------------------------------ *)
(* Accumulation                                                        *)

let take_snapshot t =
  let snap =
    {
      at = t.trials;
      s_max_z = max_z t;
      s_tv = tv_edges t;
      s_kl = kl_edges t;
      s_ess = ess t;
      s_small_tv = small_tv t;
    }
  in
  t.snapshots <- snap :: t.snapshots;
  Metrics.set_gauge "audit.max_z" snap.s_max_z;
  Metrics.set_gauge "audit.tv_edges" snap.s_tv;
  Metrics.set_gauge "audit.ess" snap.s_ess

let observe t tree =
  if not (Tree.is_spanning_tree t.graph tree) then begin
    t.invalid <- t.invalid + 1;
    Metrics.incr "audit.invalid"
  end
  else begin
    t.trials <- t.trials + 1;
    let first = t.trials = 1 in
    for i = 0 to t.m - 1 do
      let x = Tree.mem tree t.edge_u.(i) t.edge_v.(i) in
      if x then begin
        t.counts.(i) <- t.counts.(i) + 1;
        if (not first) && Bytes.get t.prev i = '\001' then
          t.lag1.(i) <- t.lag1.(i) + 1
      end;
      Bytes.set t.prev i (if x then '\001' else '\000')
    done;
    let fs = features_of ~n:t.n tree in
    Array.iteri (fun k v -> t.feat_hist.(k).(v) <- t.feat_hist.(k).(v) + 1) fs;
    (match t.small with
    | None -> ()
    | Some s -> (
        match s.lookup tree with
        | i -> s.counts.(i) <- s.counts.(i) + 1
        | exception Invalid_argument _ -> s.foreign <- s.foreign + 1));
    Metrics.incr "audit.trees";
    (* Heavier derived statistics (TV over m edges, ESS scan) are refreshed
       only at power-of-two trial counts so observation stays O(n + m). *)
    if t.trials land (t.trials - 1) = 0 then take_snapshot t
  end

(* ------------------------------------------------------------------ *)
(* Global sink                                                         *)

let current : t option ref = ref None

let install t = current := Some t
let uninstall () = current := None
let installed () = !current

(* Physical equality is the fast path; otherwise the canonical digest decides,
   so two structurally identical graphs built independently (e.g. one parsed
   off the ccserve wire) feed the same audit. *)
let same_graph t g =
  t.graph == g
  || (Graph.n g = t.n
     && Graph.num_edges g = t.m
     && String.equal (Graph.fingerprint g) t.fingerprint)

let observe_sink g tree =
  match !current with
  | None -> ()
  | Some t ->
      if same_graph t g then observe t tree
      else begin
        t.skipped <- t.skipped + 1;
        Metrics.incr "audit.skipped"
      end

(* ------------------------------------------------------------------ *)
(* Artifact                                                            *)

type feature = {
  feature : string;
  histogram : (int * int) list;
  expected : (int * float) list;
}

type small_report = {
  support : int;
  observed_support : int;
  foreign : int;
  r_small_tv : float;
  r_small_kl : float;
  r_small_chi2 : float;
}

type report = {
  r_n : int;
  r_m : int;
  r_alpha : float;
  r_trials : int;
  r_invalid : int;
  r_skipped : int;
  r_ess : float;
  r_tv_edges : float;
  r_kl_edges : float;
  r_edges : edge_stat list;
  r_features : feature list;
  r_snapshots : snapshot list;
  r_small : small_report option;
  r_verdict : verdict option;
}

let features t =
  List.init (Array.length feature_names) (fun k ->
      let hist = ref [] in
      for v = t.n downto 0 do
        if t.feat_hist.(k).(v) > 0 then
          hist := (v, t.feat_hist.(k).(v)) :: !hist
      done;
      { feature = feature_names.(k); histogram = !hist;
        expected = t.feat_expected.(k) })

let gate_to_json (g : gate) =
  Json.Obj
    [
      ("gate", Json.String g.gate);
      ("applied", Json.Bool g.applied);
      ("breached", Json.Bool g.breached);
      ("statistic", Json.float_opt g.statistic);
      ("threshold", Json.float_opt g.threshold);
      ("detail", Json.String g.detail);
    ]

let verdict_to_json (v : verdict) =
  Json.Obj
    [
      ("type", Json.String "verdict");
      ("pass", Json.Bool v.pass);
      ("at_trials", Json.Int v.at_trials);
      ("gates", Json.List (List.map gate_to_json v.gates));
    ]

let to_jsonl t =
  let buf = Buffer.create 4096 in
  let line j =
    Buffer.add_string buf (Json.to_string j);
    Buffer.add_char buf '\n'
  in
  line
    (Json.Obj
       [
         ("type", Json.String "audit-header");
         ("n", Json.Int t.n);
         ("m", Json.Int t.m);
         ("alpha", Json.Float t.alpha);
         ("min_trials", Json.Int t.min_trials);
         ("trials", Json.Int t.trials);
         ("invalid", Json.Int t.invalid);
         ("skipped", Json.Int t.skipped);
         ("ess", Json.float_opt (ess t));
         ("tv_edges", Json.float_opt (tv_edges t));
         ("kl_edges", Json.float_opt (kl_edges t));
         ("max_z", Json.float_opt (max_z t));
         ("z_threshold", Json.float_opt (z_threshold t));
       ]);
  List.iter
    (fun e ->
      line
        (Json.Obj
           [
             ("type", Json.String "edge");
             ("u", Json.Int e.u);
             ("v", Json.Int e.v);
             ("leverage", Json.Float e.leverage);
             ("count", Json.Int e.count);
             ("z", Json.float_opt e.z);
             ("bridge", Json.Bool e.bridge);
           ]))
    (edge_stats t);
  List.iter
    (fun f ->
      line
        (Json.Obj
           [
             ("type", Json.String "feature");
             ("name", Json.String f.feature);
             ( "histogram",
               Json.List
                 (List.map
                    (fun (v, c) -> Json.List [ Json.Int v; Json.Int c ])
                    f.histogram) );
             ( "expected",
               Json.List
                 (List.map
                    (fun (v, p) -> Json.List [ Json.Int v; Json.Float p ])
                    f.expected) );
           ]))
    (features t);
  List.iter
    (fun s ->
      line
        (Json.Obj
           [
             ("type", Json.String "snapshot");
             ("at", Json.Int s.at);
             ("max_z", Json.float_opt s.s_max_z);
             ("tv", Json.float_opt s.s_tv);
             ("kl", Json.float_opt s.s_kl);
             ("ess", Json.float_opt s.s_ess);
             ( "small_tv",
               match s.s_small_tv with
               | None -> Json.Null
               | Some x -> Json.float_opt x );
           ]))
    (List.rev t.snapshots);
  (match t.small with
  | None -> ()
  | Some s ->
      let observed =
        Array.fold_left (fun acc c -> if c > 0 then acc + 1 else acc) 0 s.counts
      in
      line
        (Json.Obj
           [
             ("type", Json.String "small");
             ("support", Json.Int (Array.length s.trees));
             ("observed_support", Json.Int observed);
             ("foreign", Json.Int s.foreign);
             ( "tv",
               Json.float_opt
                 (match small_tv t with Some x -> x | None -> Float.nan) );
             ( "kl",
               Json.float_opt
                 (match small_kl t with Some x -> x | None -> Float.nan) );
             ( "chi2",
               Json.float_opt (Dist.chi_square_stat ~counts:s.counts s.target)
             );
           ]));
  line (verdict_to_json (verdict t));
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Artifact parsing                                                    *)

let j_int ?default key obj =
  match Option.bind (Json.member key obj) Json.to_float_opt with
  | Some x -> Ok (int_of_float x)
  | None -> (
      match default with
      | Some d -> Ok d
      | None -> Error (Printf.sprintf "missing integer field %S" key))

let j_float ?default key obj =
  match Json.member key obj with
  | Some Json.Null -> Ok Float.nan
  | Some v -> (
      match Json.to_float_opt v with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "field %S is not a number" key))
  | None -> (
      match default with
      | Some d -> Ok d
      | None -> Error (Printf.sprintf "missing float field %S" key))

let j_bool key obj =
  match Option.bind (Json.member key obj) Json.to_bool_opt with
  | Some b -> Ok b
  | None -> Error (Printf.sprintf "missing boolean field %S" key)

let j_string key obj =
  match Option.bind (Json.member key obj) Json.to_string_opt with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "missing string field %S" key)

let ( let* ) = Result.bind

let pairs_of key obj of_snd =
  match Option.bind (Json.member key obj) Json.to_list_opt with
  | None -> Ok []
  | Some items ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | Json.List [ a; b ] :: rest -> (
            match (Json.to_float_opt a, of_snd b) with
            | Some v, Some s -> go ((int_of_float v, s) :: acc) rest
            | _ -> Error (Printf.sprintf "malformed pair in %S" key))
        | _ -> Error (Printf.sprintf "malformed pair in %S" key)
      in
      go [] items

let parse_gate obj =
  let* gate = j_string "gate" obj in
  let* applied = j_bool "applied" obj in
  let* breached = j_bool "breached" obj in
  let* statistic = j_float "statistic" obj in
  let* threshold = j_float "threshold" obj in
  let* detail = j_string "detail" obj in
  Ok { gate; applied; breached; statistic; threshold; detail }

let of_jsonl s =
  let header = ref None in
  let edges = ref [] in
  let feats = ref [] in
  let snaps = ref [] in
  let small = ref None in
  let verd = ref None in
  let parse_line lineno raw =
    let raw = String.trim raw in
    if raw = "" then Ok ()
    else
      match Json.of_string raw with
      | Error e -> Error (Printf.sprintf "line %d: %s" lineno e)
      | Ok obj -> (
          let tag =
            Option.bind (Json.member "type" obj) Json.to_string_opt
          in
          match tag with
          | Some "audit-header" ->
              let* n = j_int "n" obj in
              let* m = j_int "m" obj in
              let* al = j_float "alpha" obj in
              let* trials = j_int "trials" obj in
              let* invalid = j_int ~default:0 "invalid" obj in
              let* skipped = j_int ~default:0 "skipped" obj in
              let* ess = j_float ~default:Float.nan "ess" obj in
              let* tv = j_float ~default:Float.nan "tv_edges" obj in
              let* kl = j_float ~default:Float.nan "kl_edges" obj in
              header := Some (n, m, al, trials, invalid, skipped, ess, tv, kl);
              Ok ()
          | Some "edge" ->
              let* u = j_int "u" obj in
              let* v = j_int "v" obj in
              let* leverage = j_float "leverage" obj in
              let* count = j_int "count" obj in
              let* z = j_float ~default:0.0 "z" obj in
              let* bridge = j_bool "bridge" obj in
              edges := { u; v; leverage; count; z; bridge } :: !edges;
              Ok ()
          | Some "feature" ->
              let* name = j_string "name" obj in
              let* histogram =
                pairs_of "histogram" obj (fun v ->
                    Option.map int_of_float (Json.to_float_opt v))
              in
              let* expected = pairs_of "expected" obj Json.to_float_opt in
              feats := { feature = name; histogram; expected } :: !feats;
              Ok ()
          | Some "snapshot" ->
              let* at = j_int "at" obj in
              let* s_max_z = j_float ~default:Float.nan "max_z" obj in
              let* s_tv = j_float ~default:Float.nan "tv" obj in
              let* s_kl = j_float ~default:Float.nan "kl" obj in
              let* s_ess = j_float ~default:Float.nan "ess" obj in
              let s_small_tv =
                match Json.member "small_tv" obj with
                | Some Json.Null | None -> None
                | Some v -> Json.to_float_opt v
              in
              snaps := { at; s_max_z; s_tv; s_kl; s_ess; s_small_tv } :: !snaps;
              Ok ()
          | Some "small" ->
              let* support = j_int "support" obj in
              let* observed_support = j_int "observed_support" obj in
              let* foreign = j_int ~default:0 "foreign" obj in
              let* r_small_tv = j_float ~default:Float.nan "tv" obj in
              let* r_small_kl = j_float ~default:Float.nan "kl" obj in
              let* r_small_chi2 = j_float ~default:Float.nan "chi2" obj in
              small :=
                Some
                  { support; observed_support; foreign; r_small_tv; r_small_kl;
                    r_small_chi2 };
              Ok ()
          | Some "verdict" ->
              let* pass = j_bool "pass" obj in
              let* at_trials = j_int "at_trials" obj in
              let* gates =
                match
                  Option.bind (Json.member "gates" obj) Json.to_list_opt
                with
                | None -> Ok []
                | Some gs ->
                    let rec go acc = function
                      | [] -> Ok (List.rev acc)
                      | g :: rest ->
                          let* g = parse_gate g in
                          go (g :: acc) rest
                    in
                    go [] gs
              in
              verd := Some { pass; at_trials; gates };
              Ok ()
          | Some _ | None -> Ok () (* forward compatibility *))
  in
  let rec lines acc lineno = function
    | [] -> Ok acc
    | l :: rest -> (
        match parse_line lineno l with
        | Ok () -> lines acc (lineno + 1) rest
        | Error e -> Error e)
  in
  let* () =
    Result.map (fun _ -> ()) (lines () 1 (String.split_on_char '\n' s))
  in
  match !header with
  | None -> Error "no audit-header line"
  | Some (r_n, r_m, r_alpha, r_trials, r_invalid, r_skipped, r_ess, r_tv, r_kl)
    ->
      Ok
        {
          r_n;
          r_m;
          r_alpha;
          r_trials;
          r_invalid;
          r_skipped;
          r_ess;
          r_tv_edges = r_tv;
          r_kl_edges = r_kl;
          r_edges = List.rev !edges;
          r_features = List.rev !feats;
          r_snapshots = List.rev !snaps;
          r_small = !small;
          r_verdict = !verd;
        }
