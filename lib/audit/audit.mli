(** Online statistical auditing of spanning-tree samplers.

    The paper's headline claim is distributional: the algorithm outputs a tree
    drawn from the (weighted) uniform spanning-tree distribution. The systems
    planes (traces, telemetry, replay) say nothing about whether that claim
    holds, so this module watches the {e statistical} plane. By Kirchhoff's
    theorem the marginal inclusion probability of edge [e] under the UST
    distribution is exactly its leverage score [w_e * R_eff(e)], which
    {!Cc_graph.Graph.effective_resistance} computes — an exact online oracle
    available for every instance, not just enumerable ones.

    An auditor accumulates, tree by tree:
    - per-edge inclusion counts, compared against the leverage oracle with
      per-edge z-scores under a Bonferroni-corrected gate and a chi-square
      aggregate gate;
    - tree-feature histograms (max degree, leaf count, diameter, root depth) —
      report-only diagnostics that catch bias the marginals can miss;
    - an effective-sample-size estimate from lag-1 autocorrelation of the
      per-edge inclusion sequences (≈ trials for iid samplers, collapses for
      slowly-mixing chains);
    - running TV/KL estimates between the empirical edge-marginal vector and
      the oracle, via {!Cc_util.Dist};
    - on small instances (n ≤ [small_limit] and an enumerable tree support),
      the full empirical distribution over spanning trees against the exact
      Matrix–Tree one: TV, KL, and a chi-square gate over the enumerated
      support.

    Observation is zero-perturbation by construction: it draws no randomness,
    touches no [Net], and never mutates the graph or tree, so audited and
    unaudited runs produce byte-identical recorder digests. Samplers report
    through the process-global sink ({!install} / {!observe_sink}), mirroring
    [Trace.install]: when no auditor is installed the sink is a no-op. *)

type t

(** {1 Construction} *)

(** [create g] precomputes the leverage-score oracle (one Laplacian solve per
    edge) and, when [n <= small_limit] and the spanning-tree count is at most
    [small_support], the enumerated support and exact tree distribution.

    - [alpha] is the false-positive budget shared by every gate
      (default [1e-3]);
    - [min_trials] is the sample size below which the asymptotic gates
      abstain rather than fire (default [32]);
    - [small_limit] bounds the vertex count for exact-distribution checking
      (default [8]);
    - [small_support] bounds the enumerated support size (default [20_000]).

    @raise Invalid_argument if [g] is disconnected or [alpha] is outside
    (0, 1). *)
val create :
  ?alpha:float ->
  ?min_trials:int ->
  ?small_limit:int ->
  ?small_support:int ->
  Cc_graph.Graph.t ->
  t

(** {1 Accumulation} *)

(** [observe t tree] folds one sampled tree into the audit state: O(n + m)
    per call, no randomness, no I/O. Trees that are not spanning trees of the
    audited graph are counted ([invalid_trees]) and excluded from the
    statistics; a nonzero invalid count breaches the verdict. *)
val observe : t -> Cc_graph.Tree.t -> unit

(** {1 Global sink}

    Sampler entry points report through a process-global optional auditor so
    instrumentation can be switched on without threading a handle through
    every call site — the same pattern as [Trace.install]. *)

(** [install t] makes [t] the process auditor. *)
val install : t -> unit

(** [uninstall ()] removes the process auditor (idempotent). *)
val uninstall : unit -> unit

val installed : unit -> t option

(** [observe_sink g tree] forwards to the installed auditor when its audited
    graph matches [g] (physical equality, else an (n, edges, total-weight)
    fingerprint); mismatches are counted as [skipped] and otherwise ignored.
    No-op when no auditor is installed. *)
val observe_sink : Cc_graph.Graph.t -> Cc_graph.Tree.t -> unit

(** {1 Statistics} *)

type edge_stat = {
  u : int;
  v : int;
  leverage : float;  (** exact marginal: [w_e * R_eff(e)], clamped to [0,1] *)
  count : int;  (** trees containing the edge *)
  z : float;  (** standardized deviation; [0.] for bridges *)
  bridge : bool;  (** leverage ≈ 1: the edge is in every spanning tree *)
}

val trials : t -> int
val alpha : t -> float
val invalid_trees : t -> int
val skipped : t -> int

(** [edge_stats t] is one entry per graph edge, in {!Cc_graph.Graph.edges}
    order. *)
val edge_stats : t -> edge_stat list

(** [z_threshold t] is the Bonferroni-corrected per-edge threshold
    [sqrt (2 ln (2 m' / alpha))] over the [m'] non-bridge edges (subgaussian
    tail bound, conservative for binomials). *)
val z_threshold : t -> float

(** [max_z t] is the largest absolute z-score over non-bridge edges
    ([0.] when every edge is a bridge). *)
val max_z : t -> float

(** [tv_edges t] / [kl_edges t] compare the normalized empirical edge-marginal
    vector against the normalized oracle vector (both sum to n-1 before
    normalization) via {!Cc_util.Dist}; [nan] before the first observation. *)
val tv_edges : t -> float

val kl_edges : t -> float

(** [ess t] is the minimum over informative edges (leverage bounded away from
    0 and 1) of the lag-1 autocorrelation ESS estimate
    [trials * (1 - rho) / (1 + rho)], clamped to [[1, trials]]; equals
    [trials] when there is no informative edge or fewer than two trials. *)
val ess : t -> float

(** [small_tv t] is the running TV distance between the empirical tree
    distribution and the exact Matrix–Tree one; [None] when the instance is
    not small enough for enumeration. Likewise [small_kl]. *)
val small_tv : t -> float option

val small_kl : t -> float option

(** {1 Verdict} *)

type gate = {
  gate : string;  (** stable identifier, e.g. ["bonferroni-z"] *)
  applied : bool;  (** [false] when the gate abstained (e.g. too few trials) *)
  breached : bool;
  statistic : float;
  threshold : float;
  detail : string;
}

type verdict = {
  pass : bool;  (** no applied gate breached *)
  at_trials : int;
  gates : gate list;
}

(** [verdict t] evaluates every gate at the current trial count:
    ["valid-trees"] (every observed tree is a spanning tree),
    ["bridge-exact"] (bridge edges appear in every valid tree),
    ["bonferroni-z"] (max |z| against {!z_threshold}),
    ["chi2-edges"] (sum of z² against the Laurent–Massart upper tail at
    level [alpha]), and on small instances ["small-chi2"] (chi-square over
    the enumerated support against the same tail bound) and
    ["small-support"] (no observed tree outside the enumerated support).
    Features, ESS, TV and KL are diagnostics, not gates. *)
val verdict : t -> verdict

(** {1 Artifact}

    A line-oriented JSONL artifact: one [audit-header] line, one [edge] line
    per graph edge, one [feature] line per tree feature, [snapshot] lines
    taken at power-of-two trial counts, an optional [small] line, and a
    final [verdict] line. *)

(** [to_jsonl t] serializes the full audit state, ending with the current
    {!verdict}. *)
val to_jsonl : t -> string

type snapshot = {
  at : int;
  s_max_z : float;
  s_tv : float;
  s_kl : float;
  s_ess : float;
  s_small_tv : float option;
}

type feature = {
  feature : string;
  histogram : (int * int) list;  (** sparse [value, count], ascending *)
  expected : (int * float) list;
      (** exact distribution on small instances; [[]] otherwise *)
}

type small_report = {
  support : int;
  observed_support : int;
  foreign : int;  (** valid spanning trees outside the enumerated support *)
  r_small_tv : float;
  r_small_kl : float;
  r_small_chi2 : float;
}

type report = {
  r_n : int;
  r_m : int;
  r_alpha : float;
  r_trials : int;
  r_invalid : int;
  r_skipped : int;
  r_ess : float;
  r_tv_edges : float;
  r_kl_edges : float;
  r_edges : edge_stat list;
  r_features : feature list;
  r_snapshots : snapshot list;
  r_small : small_report option;
  r_verdict : verdict option;
}

(** [of_jsonl s] parses an artifact produced by {!to_jsonl} (unknown line
    types are ignored, for forward compatibility). [Error] describes the
    first malformed line. *)
val of_jsonl : string -> (report, string) result
