(** The load-balanced Doubling random-walk algorithm (Section 4).

    Every vertex v ends up holding a length-tau random walk originating at v,
    built in O(log tau) merging iterations: starting from k length-1 walks
    per vertex, each iteration matches walks of the first half of each
    vertex's index range with the continuation walks [W_v^{k-i}] and stitches
    them, halving k while doubling the length.

    Two placement schemes:
    - [Load_balanced]: the paper's contribution — tuples are routed through
      an [8c log n]-wise independent hash [h : [n] x [k] -> [n]]
      (Kwise_hash), so by Lemma 4 no machine receives more than
      [16 c k log n] tuples w.h.p., and each iteration completes in
      [O(max(k eta / n * log n, 1))] rounds.
    - [Unbalanced]: the original Bahmani–Chakrabarti–Xin placement, in which
      walks are sent directly to the vertex they end at — exhibits the
      Omega(n)-round hot spot (e.g. a star center) the paper fixes.

    All communication is metered through the {!Cc_clique.Net} ledger; the
    per-iteration receiver loads are also returned so bench E2 can compare
    them against the Lemma 4 bound.

    As in the paper, walks originating at different vertices share randomness
    (they are individually — not jointly — true random walks).

    {2 Fault tolerance}

    When the net carries a {!Cc_clique.Fault.t} (or one is passed via
    [?faults]), every iteration self-heals: the walks array acts as a
    checkpoint that is only replaced once an iteration fully commits; tuples
    lost to message drops or crash-stop failures are re-routed to the next
    live machine (metered under [":retry"] ledger labels); payload corruption
    is detected by application checksums and forces a re-run of the affected
    iteration from the checkpoint; a crashed machine's state is adopted by
    the next live machine from the replicated checkpoint. Re-running an
    iteration is statistically safe because only the placement hash seed is
    re-drawn — the walk randomness was fixed at initialization. If the
    coordinator (machine 0) crashes, every machine crashes, or the recovery
    budgets are exhausted, the run degrades gracefully: the returned walks
    are regenerated with the step-by-step baseline (still exact random
    walks, just slow) and [health] reports
    {!Cc_clique.Fault.Unrecoverable} — no exception ever escapes. *)

type scheme =
  | Load_balanced of { independence : int }
      (** hash-family independence; the paper uses [8c log n]. *)
  | Unbalanced

type result = {
  walks : int array array;
      (** [walks.(v)] = the length-tau walk from v: tau+1 vertices. *)
  iterations : int;
  max_tuples_received : int array;
      (** per iteration, the largest number of tuples any machine received in
          the placement steps (2-3) — the Lemma 4 observable. *)
  rounds : float;  (** total rounds booked on the net by this run. *)
  health : Cc_clique.Fault.health;
      (** fault-recovery outcome: [Healthy] on a clean run, [Healed] when
          every injected fault was recovered (the walks are exactly as
          trustworthy as a fault-free run), [Unrecoverable] when the run
          degraded to the sequential baseline walks. *)
}

(** [run ?faults net prng g ~tau ~scheme] builds length-tau walks for every
    vertex. [Net.n net] must equal the vertex count. [?faults] overrides the
    injector the net was armed with ({!Cc_clique.Net.with_faults}); by
    default the net's own injector (if any) is used. *)
val run :
  ?faults:Cc_clique.Fault.t ->
  Cc_clique.Net.t ->
  Cc_util.Prng.t ->
  Cc_graph.Graph.t ->
  tau:int ->
  scheme:scheme ->
  result

(** [default_scheme ~n] is [Load_balanced] with the paper's [8c log n]
    independence at c = 1. *)
val default_scheme : n:int -> scheme

(** [lemma4_bound ~n ~k ~c] = [16 c k log2 n], the w.h.p. receiver-load bound
    of Lemma 4. *)
val lemma4_bound : n:int -> k:int -> c:float -> float

(** [sample_tree net prng g ~tau0] samples a uniform spanning tree via
    Corollary 1: build a length-tau walk by doubling and apply Aldous–Broder
    first-visit edges; if the walk does not cover the graph, double tau and
    retry (fresh randomness), starting from [tau0]. Returns the tree and the
    total number of walk steps consumed. Under fault injection each doubling
    run self-heals (see {!run}); a degraded run still yields exact walks, so
    the returned tree remains a valid Aldous–Broder sample. *)
val sample_tree :
  ?faults:Cc_clique.Fault.t ->
  Cc_clique.Net.t ->
  Cc_util.Prng.t ->
  Cc_graph.Graph.t ->
  tau0:int ->
  Cc_graph.Tree.t * int

(** {2 Prepared plans}

    The uniform prepare/draw interface the ccserve plan cache expects. The
    doubling pipeline has no reusable graph-only factorization (walks are
    built by local stepping, re-randomized per draw), so the plan is thin:
    the validated graph, its {!Cc_graph.Graph.fingerprint}, and [tau0].
    [draw plan net prng] is exactly [sample_tree net prng g ~tau0]. *)

type plan

(** @raise Invalid_argument if [tau0 < 1] or the graph is disconnected. *)
val prepare : Cc_graph.Graph.t -> tau0:int -> plan

val plan_fingerprint : plan -> string
val plan_graph : plan -> Cc_graph.Graph.t

val draw :
  plan ->
  ?faults:Cc_clique.Fault.t ->
  Cc_clique.Net.t ->
  Cc_util.Prng.t ->
  Cc_graph.Tree.t * int

(** [pagerank net prng g ~walks_per_node ~epsilon] estimates the PageRank
    vector with restart probability [epsilon] from the endpoints of
    geometrically-stopped walks (the Section 1.1 / BCX application): builds
    length-[O(log n / epsilon)] walks by doubling and histograms the
    geometric-time positions. Returns the normalized estimate. *)
val pagerank :
  ?faults:Cc_clique.Fault.t ->
  Cc_clique.Net.t ->
  Cc_util.Prng.t ->
  Cc_graph.Graph.t ->
  walks_per_node:int ->
  epsilon:float ->
  float array

(** [pagerank_exact g ~epsilon] is the reference PageRank by power iteration
    to fixed point (used by bench E10). *)
val pagerank_exact : Cc_graph.Graph.t -> epsilon:float -> float array
