module Graph = Cc_graph.Graph
module Tree = Cc_graph.Tree
module Walk = Cc_walks.Walk
module Net = Cc_clique.Net
module Prng = Cc_util.Prng
module Kwise_hash = Cc_util.Kwise_hash
module Mat = Cc_linalg.Mat

type scheme =
  | Load_balanced of { independence : int }
  | Unbalanced

type result = {
  walks : int array array;
  iterations : int;
  max_tuples_received : int array;
  rounds : float;
}

let default_scheme ~n =
  let log_n = max 1 (int_of_float (Float.ceil (Float.log2 (Float.of_int n)))) in
  Load_balanced { independence = 8 * log_n }

let lemma4_bound ~n ~k ~c =
  16.0 *. c *. Float.of_int k *. Float.log2 (Float.of_int n)

let next_pow2 x =
  let rec go p = if p >= x then p else go (2 * p) in
  go 1

(* Concatenate two walk segments sharing the junction vertex. *)
let stitch w1 w2 =
  assert (w1.(Array.length w1 - 1) = w2.(0));
  Array.append w1 (Array.sub w2 1 (Array.length w2 - 1))

(* One doubling run producing [walks_per_node] length-tau_pow walks per
   vertex; tau_pow = next power of two >= tau. *)
let run_multi net prng g ~tau ~walks_per_node ~scheme =
  let n = Graph.n g in
  if Net.n net <> n then invalid_arg "Doubling.run: net size must equal n";
  if tau < 1 then invalid_arg "Doubling.run: tau < 1";
  if walks_per_node < 1 then invalid_arg "Doubling.run: walks_per_node < 1";
  let tau_pow = next_pow2 tau in
  let k_init = walks_per_node * tau_pow in
  (* walks.(v) is vertex v's current sequence of walks. *)
  let walks =
    Array.init n (fun v ->
        Array.init k_init (fun _ -> [| v; Walk.step g prng v |]))
  in
  let k = ref k_init in
  let iterations = ref 0 in
  let loads = ref [] in
  while !k > walks_per_node do
    incr iterations;
    let kk = !k in
    let half = kk / 2 in
    (* Step 1: machine 0 broadcasts the O(log^2 n)-bit hash seed. *)
    let log_n = max 1 (int_of_float (Float.ceil (Float.log2 (Float.of_int n)))) in
    let route =
      match scheme with
      | Load_balanced { independence } ->
          Net.broadcast net ~label:"doubling seed" ~src:0
            ~words:(Net.words_for_bits net (independence * 31));
          let h =
            Kwise_hash.create prng ~independence ~domain:(n * (k_init + 1))
              ~range:n
          in
          fun vertex idx -> Kwise_hash.apply2 h ~encode_bound:(k_init + 1) vertex idx
      | Unbalanced -> fun vertex _idx -> vertex
    in
    ignore log_n;
    (* Steps 2-3: placement. first_half.(w) collects (origin, i, walk) whose
       continuation key hashes to machine w; second_half.(w) collects
       (owner, j, walk). *)
    let first_half = Array.make n [] in
    let second_half = Array.make n [] in
    let packets = ref [] in
    let eta_words = Array.length walks.(0).(0) + 1 in
    let tuples_received = Array.make n 0 in
    for v = 0 to n - 1 do
      for i = 0 to half - 1 do
        let w = walks.(v).(i) in
        let partner = i + half in
        let dest = route w.(Array.length w - 1) partner in
        first_half.(dest) <- (v, i, w) :: first_half.(dest);
        packets := { Net.src = v; dst = dest; words = eta_words } :: !packets;
        if dest <> v then tuples_received.(dest) <- tuples_received.(dest) + 1
      done;
      for j = half to kk - 1 do
        let w = walks.(v).(j) in
        let dest = route v j in
        second_half.(dest) <- (v, j, w) :: second_half.(dest);
        packets := { Net.src = v; dst = dest; words = eta_words } :: !packets;
        if dest <> v then tuples_received.(dest) <- tuples_received.(dest) + 1
      done
    done;
    Net.exchange net ~label:"doubling place" !packets;
    loads := Array.fold_left max 0 tuples_received :: !loads;
    (* Step 4: merge and return. Index continuations by (owner, j). *)
    let continuations = Hashtbl.create (n * half) in
    Array.iter
      (List.iter (fun (owner, j, w) -> Hashtbl.replace continuations (owner, j) w))
      second_half;
    let merged = Array.init n (fun _ -> Array.make half [||]) in
    let return_packets = ref [] in
    Array.iteri
      (fun dest bucket ->
        List.iter
          (fun (origin, i, w) ->
            let endv = w.(Array.length w - 1) in
            let partner = i + half in
            match Hashtbl.find_opt continuations (endv, partner) with
            | None ->
                (* The continuation lives at the same hash machine by
                   construction; its absence is a programming error. *)
                assert false
            | Some cont ->
                merged.(origin).(i) <- stitch w cont;
                return_packets :=
                  { Net.src = dest; dst = origin; words = (2 * eta_words) - 1 }
                  :: !return_packets)
          bucket)
      first_half;
    Net.exchange net ~label:"doubling return" !return_packets;
    (* Step 5. *)
    Array.iteri (fun v m -> walks.(v) <- m) merged;
    k := half
  done;
  (walks, !iterations, Array.of_list (List.rev !loads), tau_pow)

let run net prng g ~tau ~scheme =
  let before = Net.rounds net in
  let walks, iterations, loads, tau_pow =
    run_multi net prng g ~tau ~walks_per_node:1 ~scheme
  in
  ignore tau_pow;
  {
    walks = Array.map (fun ws -> ws.(0)) walks;
    iterations;
    max_tuples_received = loads;
    rounds = Net.rounds net -. before;
  }

let sample_tree net prng g ~tau0 =
  if tau0 < 1 then invalid_arg "Doubling.sample_tree: tau0 < 1";
  let n = Graph.n g in
  let scheme = default_scheme ~n in
  (* Build the walk by stitching independent doubling runs; never resample a
     prefix, so the overall walk is an exact random walk and Aldous-Broder
     applies without conditioning bias. *)
  let visited = Array.make n false in
  visited.(0) <- true;
  let remaining = ref (n - 1) in
  let tree_edges = ref [] in
  let consume walk =
    Array.iteri
      (fun idx v ->
        if idx > 0 && not visited.(v) then begin
          visited.(v) <- true;
          decr remaining;
          tree_edges := (walk.(idx - 1), v) :: !tree_edges
        end)
      walk
  in
  let current_end = ref 0 in
  let tau = ref tau0 and total = ref 0 in
  while !remaining > 0 do
    let r = run net prng g ~tau:!tau ~scheme in
    let segment = r.walks.(!current_end) in
    consume segment;
    current_end := segment.(Array.length segment - 1);
    total := !total + Array.length segment - 1;
    tau := 2 * !tau
  done;
  (Tree.of_edges ~n !tree_edges, !total)

let pagerank net prng g ~walks_per_node ~epsilon =
  if epsilon <= 0.0 || epsilon >= 1.0 then
    invalid_arg "Doubling.pagerank: epsilon out of range";
  let n = Graph.n g in
  let scheme = default_scheme ~n in
  (* Walk length such that a Geometric(epsilon) stop exceeds it with
     probability <= 1/n^3. *)
  let len =
    max 1
      (int_of_float
         (Float.ceil (3.0 *. Float.log (Float.of_int n) /. epsilon)))
  in
  let walks, _, _, _ =
    run_multi net prng g ~tau:len ~walks_per_node ~scheme
  in
  let counts = Array.make n 0 in
  Array.iter
    (fun per_vertex ->
      Array.iter
        (fun w ->
          (* Geometric(epsilon) number of steps before restart, capped. *)
          let rec stop t =
            if t >= Array.length w - 1 then t
            else if Prng.float prng 1.0 < epsilon then t
            else stop (t + 1)
          in
          let t = stop 0 in
          counts.(w.(t)) <- counts.(w.(t)) + 1)
        per_vertex)
    walks;
  let total = Array.fold_left ( + ) 0 counts in
  Array.map (fun c -> Float.of_int c /. Float.of_int total) counts

let pagerank_exact g ~epsilon =
  let n = Graph.n g in
  let p = Graph.transition_matrix g in
  let pi = ref (Array.make n (1.0 /. Float.of_int n)) in
  let jump = epsilon /. Float.of_int n in
  let rec iterate remaining =
    if remaining = 0 then ()
    else begin
      let stepped = Mat.vec_mul !pi p in
      let next = Array.map (fun x -> jump +. ((1.0 -. epsilon) *. x)) stepped in
      let diff =
        Array.fold_left Float.max 0.0
          (Array.mapi (fun i x -> Float.abs (x -. !pi.(i))) next)
      in
      pi := next;
      if diff > 1e-14 then iterate (remaining - 1)
    end
  in
  iterate 100_000;
  !pi
