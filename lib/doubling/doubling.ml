module Graph = Cc_graph.Graph
module Tree = Cc_graph.Tree
module Walk = Cc_walks.Walk
module Net = Cc_clique.Net
module Fault = Cc_clique.Fault
module Prng = Cc_util.Prng
module Kwise_hash = Cc_util.Kwise_hash
module Mat = Cc_linalg.Mat

type scheme =
  | Load_balanced of { independence : int }
  | Unbalanced

type result = {
  walks : int array array;
  iterations : int;
  max_tuples_received : int array;
  rounds : float;
  health : Fault.health;
}

let default_scheme ~n =
  let log_n = max 1 (int_of_float (Float.ceil (Float.log2 (Float.of_int n)))) in
  Load_balanced { independence = 8 * log_n }

let lemma4_bound ~n ~k ~c =
  16.0 *. c *. Float.of_int k *. Float.log2 (Float.of_int n)

let next_pow2 x =
  let rec go p = if p >= x then p else go (2 * p) in
  go 1

(* Concatenate two walk segments sharing the junction vertex. *)
let stitch w1 w2 =
  assert (w1.(Array.length w1 - 1) = w2.(0));
  Array.append w1 (Array.sub w2 1 (Array.length w2 - 1))

(* Corruption is detected when a merged payload fails its checksum; the
   whole iteration re-runs from the checkpoint (the walks array is only
   replaced once an iteration fully succeeds). The budget bounds pathological
   corruption rates. *)
exception Rerun_iteration of string

exception Degrade of Fault.failure

let max_reruns = 16

(* One doubling run producing [walks_per_node] length-tau_pow walks per
   vertex; tau_pow = next power of two >= tau.

   Self-healing (only when a fault injector is armed): each merging
   iteration acts as a checkpoint — [walks] is replaced only after the
   iteration fully succeeds. Tuples lost to drops or crash-stop failures are
   re-routed to the next live machine (metered under [":retry"] labels);
   corrupted tuples force a re-run of the whole iteration from the
   checkpoint; a crashed machine's per-vertex state is adopted by the next
   live machine from the replicated checkpoint (a metered restore). The
   coordinator (machine 0) holds the hash-seed/leader role, so its crash —
   or exhaustion of the re-run budget — degrades the run to the local
   step-by-step baseline behind [Fault.Unrecoverable]. *)
let scheme_name = function
  | Load_balanced _ -> "load-balanced"
  | Unbalanced -> "unbalanced"

let run_multi ?faults net prng g ~tau ~walks_per_node ~scheme =
  let n = Graph.n g in
  if Net.n net <> n then invalid_arg "Doubling.run: net size must equal n";
  if tau < 1 then invalid_arg "Doubling.run: tau < 1";
  if walks_per_node < 1 then invalid_arg "Doubling.run: walks_per_node < 1";
  Cc_obs.Trace.with_span "doubling.run"
    ~args:
      [
        ("tau", string_of_int tau);
        ("walks_per_node", string_of_int walks_per_node);
        ("scheme", scheme_name scheme);
      ]
  @@ fun () ->
  let faults = match faults with Some _ as f -> f | None -> Net.faults net in
  let before_stats =
    match faults with Some f -> Fault.snapshot f | None -> (0, 0, 0)
  in
  let tau_pow = next_pow2 tau in
  let k_init = walks_per_node * tau_pow in
  (* walks.(v) is vertex v's current sequence of walks. The initial one-step
     segments are each machine's local work: split one stream per vertex up
     front (in vertex order), then extend all segments through the engine.
     Pre-splitting pins every machine's draws regardless of the domain count
     or scheduling order, so the sampled walks are identical at domains=1
     and domains=N. *)
  let streams = Prng.streams prng n in
  let walks =
    Cc_engine.parallel_map (Cc_engine.get ()) n (fun v ->
        let s = streams.(v) in
        Array.init k_init (fun _ -> [| v; Walk.step g s v |]))
  in
  let k = ref k_init in
  let iterations = ref 0 in
  let loads = ref [] in
  (* --- fault-healing helpers --- *)
  let all_dead f = Degrade { reason = "all machines crashed"; crashed = Fault.crashed f } in
  let live_dest =
    match faults with
    | None -> fun d -> d
    | Some f ->
        fun d ->
          if Fault.is_crashed f d then
            match Fault.next_live f ~n (d + 1) with
            | Some a -> a
            | None -> raise (all_dead f)
          else d
  in
  let handled_crashes = Hashtbl.create 4 in
  (* Adopt the replicated checkpoint of newly crashed machines: the next
     live machine restores the k walks (eta words each) and takes over the
     dead machine's vertex. Machine 0 is the coordinator; losing it is
     unrecoverable. *)
  let absorb_crashes () =
    match faults with
    | None -> ()
    | Some f ->
        List.iter
          (fun m ->
            if not (Hashtbl.mem handled_crashes m) then begin
              Hashtbl.add handled_crashes m ();
              if m = 0 then
                raise
                  (Degrade
                     {
                       reason = "coordinator (machine 0) crashed";
                       crashed = Fault.crashed f;
                     });
              if Fault.next_live f ~n (m + 1) = None then raise (all_dead f);
              let eta_words =
                if Array.length walks.(m) = 0 then 2
                else Array.length walks.(m).(0) + 1
              in
              Net.charge_overhead net ~label:"doubling recover:retry"
                (Float.of_int (max 1 (((!k * eta_words) + n - 1) / n)));
              Fault.note_reroute f !k
            end)
          (Fault.crashed f)
  in
  (* Deliver [pkts], re-routing Lost packets to the next live machine under
     [label ^ ":retry"]; corruption aborts the iteration. Returns the final
     destination of every packet. *)
  let heal_exchange ~label (pkts : Net.packet array) =
    let dst = Array.map (fun p -> p.Net.dst) pkts in
    match faults with
    | None ->
        Net.exchange net ~label (Array.to_list pkts);
        dst
    | Some f ->
        let dv = Net.reliable_exchange net ~label (Array.to_list pkts) in
        if Array.exists (( = ) Net.Corrupted) dv then
          raise (Rerun_iteration label);
        let lost =
          ref
            (List.filter
               (fun i -> dv.(i) = Net.Lost)
               (List.init (Array.length pkts) (fun i -> i)))
        in
        let attempt = ref 0 in
        while !lost <> [] do
          incr attempt;
          if !attempt > n then
            raise
              (Degrade
                 {
                   reason = label ^ ": re-route budget exhausted";
                   crashed = Fault.crashed f;
                 });
          List.iter
            (fun i ->
              match Fault.next_live f ~n (dst.(i) + 1) with
              | Some d -> dst.(i) <- d
              | None -> raise (all_dead f))
            !lost;
          Fault.note_reroute f (List.length !lost);
          let wave =
            List.map
              (fun i ->
                {
                  Net.src = live_dest pkts.(i).Net.src;
                  dst = dst.(i);
                  words = pkts.(i).Net.words;
                })
              !lost
          in
          let before = Net.rounds net in
          let dvr = Net.reliable_exchange net ~label:(label ^ ":retry") wave in
          Net.note_overhead net (Net.rounds net -. before);
          if Array.exists (( = ) Net.Corrupted) dvr then
            raise (Rerun_iteration label);
          lost := List.filteri (fun j _ -> dvr.(j) = Net.Lost) !lost
        done;
        dst
  in
  (* --- one merging iteration; raises Rerun_iteration / Degrade --- *)
  let iterate kk half =
    absorb_crashes ();
    (* Step 1: machine 0 broadcasts the O(log^2 n)-bit hash seed. *)
    let route =
      match scheme with
      | Load_balanced { independence } ->
          let seed_words = Net.words_for_bits net (independence * 31) in
          (match faults with
          | None ->
              Net.broadcast net ~label:"doubling seed" ~src:0 ~words:seed_words
          | Some f ->
              let dv =
                Net.reliable_broadcast net ~label:"doubling seed" ~src:0
                  ~words:seed_words
              in
              (* A corrupted seed share fails its checksum; the recipient
                 re-requests it from the coordinator. Lost shares belong to
                 crashed machines, whose state is adopted anyway. *)
              Array.iter
                (fun d ->
                  if d = Net.Corrupted then begin
                    Net.charge_overhead net ~label:"doubling seed:retry" 1.0;
                    Fault.note_retransmit f 1
                  end)
                dv);
          let h =
            Kwise_hash.create prng ~independence ~domain:(n * (k_init + 1))
              ~range:n
          in
          fun vertex idx -> Kwise_hash.apply2 h ~encode_bound:(k_init + 1) vertex idx
      | Unbalanced -> fun vertex _idx -> vertex
    in
    (* Steps 2-3: placement. Tuples are built in a fixed order so fault
       verdicts are reproducible; first_half collects (origin, i, walk) whose
       continuation key hashes to the destination machine; second_half
       collects (owner, j, walk). *)
    let eta_words = Array.length walks.(0).(0) + 1 in
    let tuples = ref [] in
    for v = 0 to n - 1 do
      for i = 0 to half - 1 do
        let w = walks.(v).(i) in
        let partner = i + half in
        let dest = live_dest (route w.(Array.length w - 1) partner) in
        tuples := (true, v, i, w, dest) :: !tuples
      done;
      for j = half to kk - 1 do
        let w = walks.(v).(j) in
        let dest = live_dest (route v j) in
        tuples := (false, v, j, w, dest) :: !tuples
      done
    done;
    let tuples = Array.of_list (List.rev !tuples) in
    let packets =
      Array.map
        (fun (_, v, _, _, dest) ->
          { Net.src = live_dest v; dst = dest; words = eta_words })
        tuples
    in
    let dests = heal_exchange ~label:"doubling place" packets in
    let first_half = Array.make n [] in
    let second_half = Array.make n [] in
    let tuples_received = Array.make n 0 in
    Array.iteri
      (fun t (is_first, v, idx, w, _) ->
        let dest = dests.(t) in
        if is_first then first_half.(dest) <- (v, idx, w) :: first_half.(dest)
        else second_half.(dest) <- (v, idx, w) :: second_half.(dest);
        if dest <> v then tuples_received.(dest) <- tuples_received.(dest) + 1)
      tuples;
    (* Step 4: merge and return. Index continuations by (owner, j). *)
    let continuations = Hashtbl.create (n * half) in
    Array.iter
      (List.iter (fun (owner, j, w) -> Hashtbl.replace continuations (owner, j) w))
      second_half;
    let merged = Array.init n (fun _ -> Array.make half [||]) in
    let return_packets = ref [] in
    Array.iteri
      (fun dest bucket ->
        List.iter
          (fun (origin, i, w) ->
            let endv = w.(Array.length w - 1) in
            let partner = i + half in
            match Hashtbl.find_opt continuations (endv, partner) with
            | None ->
                (* The continuation lives at the same hash machine by
                   construction; with faults armed its absence means the
                   placement lost data — redo the iteration. Otherwise it is
                   a programming error. *)
                if faults <> None then
                  raise (Rerun_iteration "doubling merge: missing continuation")
                else assert false
            | Some cont ->
                merged.(origin).(i) <- stitch w cont;
                return_packets :=
                  {
                    Net.src = dest;
                    dst = live_dest origin;
                    words = (2 * eta_words) - 1;
                  }
                  :: !return_packets)
          bucket)
      first_half;
    ignore
      (heal_exchange ~label:"doubling return"
         (Array.of_list (List.rev !return_packets)));
    (merged, Array.fold_left max 0 tuples_received)
  in
  try
    while !k > walks_per_node do
      incr iterations;
      Cc_obs.Metrics.incr "doubling.iterations";
      let kk = !k in
      let half = kk / 2 in
      let budget = ref max_reruns in
      let merged = ref None in
      while !merged = None do
        match
          Cc_obs.Trace.with_span "doubling.iteration"
            ~args:[ ("k", string_of_int kk) ]
            (fun () -> iterate kk half)
        with
        | m -> merged := Some m
        | exception Rerun_iteration why ->
            Cc_obs.Metrics.incr "doubling.reruns";
            (match faults with Some f -> Fault.note_rerun f | None -> ());
            decr budget;
            if !budget <= 0 then
              raise
                (Degrade
                   {
                     reason = "iteration re-run budget exhausted: " ^ why;
                     crashed =
                       (match faults with Some f -> Fault.crashed f | None -> []);
                   })
      done;
      let merged, max_load = Option.get !merged in
      Cc_obs.Metrics.observe "doubling.max_tuples" (Float.of_int max_load);
      loads := max_load :: !loads;
      (* Step 5: the iteration committed; this is the next checkpoint. *)
      Array.iteri (fun v m -> walks.(v) <- m) merged;
      k := half
    done;
    let health =
      match faults with
      | None -> Fault.Healthy
      | Some f -> Fault.health_of f ~before:before_stats
    in
    (walks, !iterations, Array.of_list (List.rev !loads), tau_pow, health)
  with Degrade failure ->
    Cc_obs.Metrics.incr "doubling.degraded";
    (* Graceful degradation: regenerate every walk with the step-by-step
       baseline (one exchange per step, tau_pow rounds) so the caller still
       receives valid random walks, and report the failure structurally. *)
    let fallback =
      Array.init n (fun v ->
          Array.init walks_per_node (fun _ ->
              Walk.walk g prng ~start:v ~len:tau_pow))
    in
    Net.charge_overhead net ~label:"doubling fallback:retry"
      (Float.of_int tau_pow);
    ( fallback,
      !iterations,
      Array.of_list (List.rev !loads),
      tau_pow,
      Fault.Unrecoverable failure )

let run ?faults net prng g ~tau ~scheme =
  let before = Net.rounds net in
  let walks, iterations, loads, tau_pow, health =
    run_multi ?faults net prng g ~tau ~walks_per_node:1 ~scheme
  in
  ignore tau_pow;
  {
    walks = Array.map (fun ws -> ws.(0)) walks;
    iterations;
    max_tuples_received = loads;
    rounds = Net.rounds net -. before;
    health;
  }

let sample_tree ?faults net prng g ~tau0 =
  if tau0 < 1 then invalid_arg "Doubling.sample_tree: tau0 < 1";
  let n = Graph.n g in
  let scheme = default_scheme ~n in
  (* Build the walk by stitching independent doubling runs; never resample a
     prefix, so the overall walk is an exact random walk and Aldous-Broder
     applies without conditioning bias. *)
  let visited = Array.make n false in
  visited.(0) <- true;
  let remaining = ref (n - 1) in
  let tree_edges = ref [] in
  let consume walk =
    Array.iteri
      (fun idx v ->
        if idx > 0 && not visited.(v) then begin
          visited.(v) <- true;
          decr remaining;
          tree_edges := (walk.(idx - 1), v) :: !tree_edges
        end)
      walk
  in
  let current_end = ref 0 in
  let tau = ref tau0 and total = ref 0 in
  while !remaining > 0 do
    let r = run ?faults net prng g ~tau:!tau ~scheme in
    let segment = r.walks.(!current_end) in
    consume segment;
    current_end := segment.(Array.length segment - 1);
    total := !total + Array.length segment - 1;
    tau := 2 * !tau
  done;
  let tree = Tree.of_edges ~n !tree_edges in
  Cc_audit.Audit.observe_sink g tree;
  (tree, !total)

(* Prepared plans, mirroring Sampler/Sequential for the ccserve cache. The
   doubling pipeline has no reusable graph-only factorization — walks are
   built by local neighbor stepping, re-randomized per draw — so the plan is
   thin: it pins the validated graph, its canonical fingerprint, and tau0.
   Caching one still saves the server re-parsing and re-validating the graph
   per request, and gives the three methods a uniform plan interface. *)
type plan = { plan_graph : Graph.t; plan_fingerprint : string; plan_tau0 : int }

let prepare g ~tau0 =
  if tau0 < 1 then invalid_arg "Doubling.prepare: tau0 < 1";
  if not (Graph.is_connected g) then
    invalid_arg "Doubling.prepare: graph must be connected";
  {
    plan_graph = g;
    plan_fingerprint = Cc_graph.Graph.fingerprint g;
    plan_tau0 = tau0;
  }

let plan_fingerprint plan = plan.plan_fingerprint
let plan_graph plan = plan.plan_graph

let draw plan ?faults net prng =
  sample_tree ?faults net prng plan.plan_graph ~tau0:plan.plan_tau0

let pagerank ?faults net prng g ~walks_per_node ~epsilon =
  if epsilon <= 0.0 || epsilon >= 1.0 then
    invalid_arg "Doubling.pagerank: epsilon out of range";
  let n = Graph.n g in
  let scheme = default_scheme ~n in
  (* Walk length such that a Geometric(epsilon) stop exceeds it with
     probability <= 1/n^3. *)
  let len =
    max 1
      (int_of_float
         (Float.ceil (3.0 *. Float.log (Float.of_int n) /. epsilon)))
  in
  let walks, _, _, _, _ =
    run_multi ?faults net prng g ~tau:len ~walks_per_node ~scheme
  in
  let counts = Array.make n 0 in
  Array.iter
    (fun per_vertex ->
      Array.iter
        (fun w ->
          (* Geometric(epsilon) number of steps before restart, capped. *)
          let rec stop t =
            if t >= Array.length w - 1 then t
            else if Prng.float prng 1.0 < epsilon then t
            else stop (t + 1)
          in
          let t = stop 0 in
          counts.(w.(t)) <- counts.(w.(t)) + 1)
        per_vertex)
    walks;
  let total = Array.fold_left ( + ) 0 counts in
  Array.map (fun c -> Float.of_int c /. Float.of_int total) counts

let pagerank_exact g ~epsilon =
  let n = Graph.n g in
  let p = Graph.transition_matrix g in
  let pi = ref (Array.make n (1.0 /. Float.of_int n)) in
  let jump = epsilon /. Float.of_int n in
  let rec iterate remaining =
    if remaining = 0 then ()
    else begin
      let stepped = Mat.vec_mul !pi p in
      let next = Array.map (fun x -> jump +. ((1.0 -. epsilon) *. x)) stepped in
      let diff =
        Array.fold_left Float.max 0.0
          (Array.mapi (fun i x -> Float.abs (x -. !pi.(i))) next)
      in
      pi := next;
      if diff > 1e-14 then iterate (remaining - 1)
    end
  in
  iterate 100_000;
  !pi
