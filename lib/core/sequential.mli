(** The paper's {e sequential} phased sampler (Section 1.2).

    Section 1.2 introduces the algorithm in a sequential form before porting
    it to the Congested Clique: in each phase, build a truncated top-down
    walk (Lemma 2) on the Schur complement of the not-yet-visited vertices,
    recover first-visit edges in G through the shortcut graph, and repeat
    until the tree is complete. This module is that algorithm verbatim — no
    simulator, no communication accounting — and serves two roles:

    - a mid-fidelity reference: it exercises the phase structure,
      Schur/shortcut machinery and Algorithm 4 exactly as the distributed
      sampler does, while replacing the distributed walk internals
      (binary-search truncation, multiset compression, matching placement)
      with the sequential Lemma 2 walk, isolating where a distributional bug
      would live;
    - a practical standalone sampler whose per-phase work is one linear
      solve + one truncated walk, i.e. the Kelner–Madry-style shortcutting
      idea in its simplest executable form. *)

type result = {
  tree : Cc_graph.Tree.t;
  phases : int;
  walk_total : int;  (** total truncated-walk length across phases *)
}

(** {1 Prepared plans}

    The same prepare/draw split as {!Sampler}: [prepare] computes the
    phase-1 transition matrix and its power table once and memoizes later
    phases' Schur/shortcut state as draws encounter them; [draw] consumes
    exactly the prng stream [sample] would, so a cached plan and a fresh
    run produce identical trees for the same seed. Plans are not
    thread-safe. *)

type plan

(** @raise Invalid_argument on disconnected input. *)
val prepare :
  ?rho:int -> ?target_len:int -> ?lazy_walk:bool -> Cc_graph.Graph.t -> plan

val draw : plan -> Cc_util.Prng.t -> result

(** {1 One-shot sampling} *)

(** [sample ?rho ?target_len ?lazy_walk g prng] draws a spanning tree of the
    connected graph [g], starting the underlying walk at vertex 0.
    Defaults mirror {!Sampler.default_config}: rho = ceil(sqrt n),
    target_len = next_pow2(n^3 log2 n), lazy_walk = true.
    Equivalent to [draw (prepare ?rho ?target_len ?lazy_walk g) prng]. *)
val sample :
  ?rho:int ->
  ?target_len:int ->
  ?lazy_walk:bool ->
  Cc_graph.Graph.t ->
  Cc_util.Prng.t ->
  result

(** [sample_tree g prng] is [sample] discarding statistics. *)
val sample_tree : Cc_graph.Graph.t -> Cc_util.Prng.t -> Cc_graph.Tree.t
