module Graph = Cc_graph.Graph
module Tree = Cc_graph.Tree
module Net = Cc_clique.Net
module Fault = Cc_clique.Fault
module Matmul = Cc_clique.Matmul
module Mat = Cc_linalg.Mat
module Prng = Cc_util.Prng
module Dist = Cc_util.Dist
module Schur = Cc_schur.Schur
module Shortcut = Cc_schur.Shortcut

let log_src = Logs.Src.create "cc.sampler" ~doc:"phase driver"

module Log = (val Logs.src_log log_src : Logs.LOG)

type schur_mode = Exact_solve | Powering of { k : int option }

type config = {
  backend : Matmul.backend;
  bits : int option;
  rho : int option;
  target_len : int option;
  schur : schur_mode;
  matching : Phase_walk.matching_mode;
  max_phases : int;
  lazy_walk : bool;
}

let default_config =
  {
    backend = Matmul.charged ();
    bits = None;
    rho = None;
    target_len = None;
    schur = Exact_solve;
    matching = Phase_walk.Resample { mcmc_steps = None };
    max_phases = 0 (* resolved against n at sample time *);
    lazy_walk = true;
  }

type result = {
  tree : Tree.t;
  phases : int;
  rounds : float;
  walk_total : int;
  phase_stats : Phase_walk.stats list;
  health : Fault.health;
}

let next_pow2 x =
  let rec go p = if p >= x then p else go (2 * p) in
  go 1

let log2_ceil x = (* for x a power of two this is exact *)
  let rec go p e = if p >= x then e else go (2 * p) (e + 1) in
  go 1 0

(* Lazy mixing (I + P) / 2: kills the periodicity of bipartite (sub)graphs
   so that coarse-level truncation can fire; self-loop steps never produce
   first-visit edges, and the embedded non-lazy walk is exactly the original
   walk, so the sampled tree's law is unchanged. *)
let lazy_mix m =
  let n = Mat.rows m in
  Mat.init ~rows:n ~cols:n (fun i j ->
      (0.5 *. Mat.get m i j) +. if i = j then 0.5 else 0.0)

(* Numeric cleanup: clamp dust and renormalize rows so Phase_walk receives a
   proper stochastic matrix. *)
let sanitize_stochastic m =
  Mat.normalize_rows
    (Mat.init ~rows:(Mat.rows m) ~cols:(Mat.cols m) (fun i j ->
         Float.max 0.0 (Mat.get m i j)))

let default_schur_k n = next_pow2 (16 * n * n * n)

(* Rounds for computing SHORTCUT + SCHUR via the paper's powering pipeline:
   log2 k squarings of the 2n x 2n auxiliary chain plus the QR product. *)
let charge_schur_pipeline net backend ~k =
  let n = Net.n net in
  let squarings = log2_ceil k in
  Net.charge net ~label:"shortcut powering"
    (Float.of_int squarings *. Matmul.mul_cost net backend ~dim:(2 * n));
  Net.charge net ~label:"schur normalize" (Matmul.mul_cost net backend ~dim:n)

exception Degrade of Fault.failure

(* ------------------------------------------------------------------ *)
(* Prepared plans: the graph-only half of the pipeline, computed once   *)
(* and shared across draws (Section "prepare/draw" of DESIGN.md §15).   *)

(* Per-phase memo entry for one vertex set S of a later phase: the
   shortcut matrix Q, the sanitized (and lazy-mixed) Schur transition, and
   the power-table slot Phase_walk fills on first use. All of it is pure
   compute — the clique's charges for the Schur pipeline and the power
   table are booked by [draw] on every draw, hit or miss, so the recorder
   digest never depends on the memo state. *)
type phase_entry = {
  e_q : Mat.t;
  e_trans : Mat.t;
  e_powers : Mat.t array option ref;
}

type plan = {
  plan_graph : Graph.t;
  plan_fingerprint : string;
  plan_config : config;
  plan_rho : int;
  plan_target_len : int;
  plan_max_phases : int;
  plan_trans1 : Mat.t; (* phase-1 (lazy-mixed) transition matrix of G *)
  plan_powers1 : Mat.t array option ref; (* its power table, filled eagerly *)
  plan_memo : (string, phase_entry) Hashtbl.t; (* S-array -> entry *)
  mutable plan_draws : int;
  mutable plan_memo_hits : int;
  mutable plan_memo_misses : int;
}

(* Later-phase vertex sets are seed-dependent, so the memo is bounded:
   beyond [memo_cap] distinct sets, fresh entries are computed but not
   retained (replaying one seed stays fully memoized; a cap overflow only
   costs recompute, never correctness). *)
let memo_cap = 128

let resolve_rho config n =
  match config.rho with
  | Some r -> max 2 (min r n)
  | None -> max 2 (int_of_float (Float.ceil (sqrt (Float.of_int n))))

let resolve_target_len config n =
  match config.target_len with
  | Some l -> next_pow2 (max 2 l)
  | None ->
      let lg = max 1 (int_of_float (Float.ceil (Float.log2 (Float.of_int n)))) in
      next_pow2 (max 2 (n * n * n * lg))

let resolve_max_phases config n =
  if config.max_phases > 0 then config.max_phases
  else 64 * (1 + int_of_float (sqrt (Float.of_int n)))

let prepare ?(config = default_config) g =
  if not (Graph.is_connected g) then
    invalid_arg "Sampler.prepare: graph must be connected";
  let n = Graph.n g in
  Cc_obs.Metrics.incr "sampler.prepares";
  Cc_obs.Trace.with_span "sampler.prepare"
    ~args:
      [
        ("n", string_of_int n);
        ("backend", Matmul.backend_name config.backend);
      ]
  @@ fun () ->
  let target_len = resolve_target_len config n in
  let trans1 = Graph.transition_matrix g in
  let trans1 = if config.lazy_walk then lazy_mix trans1 else trans1 in
  (* The phase-1 power table is the dominant graph-only cost; computing it
     pure here and replaying its bookings at draw time (Matmul.power_table
     ~reuse) yields bit-identical matrices and bookings to a cold run. *)
  let levels = log2_ceil target_len in
  let powers1 = Matmul.power_table_pure ?bits:config.bits trans1 ~levels in
  {
    plan_graph = g;
    plan_fingerprint = Graph.fingerprint g;
    plan_config = config;
    plan_rho = resolve_rho config n;
    plan_target_len = target_len;
    plan_max_phases = resolve_max_phases config n;
    plan_trans1 = trans1;
    plan_powers1 = ref (Some powers1);
    plan_memo = Hashtbl.create 32;
    plan_draws = 0;
    plan_memo_hits = 0;
    plan_memo_misses = 0;
  }

let plan_fingerprint plan = plan.plan_fingerprint
let plan_config plan = plan.plan_config
let plan_graph plan = plan.plan_graph

let plan_stats plan =
  (plan.plan_draws, plan.plan_memo_hits, plan.plan_memo_misses)

let memo_key s =
  let buf = Buffer.create (4 * Array.length s) in
  Array.iter
    (fun v ->
      Buffer.add_string buf (string_of_int v);
      Buffer.add_char buf ',')
    s;
  Buffer.contents buf

(* The pure per-S computation of a later phase, memoized on the plan. A hit
   skips the Shortcut/Schur work (and its trace spans) entirely. *)
let phase_entry plan ~s =
  let key = memo_key s in
  match Hashtbl.find_opt plan.plan_memo key with
  | Some e ->
      plan.plan_memo_hits <- plan.plan_memo_hits + 1;
      Cc_obs.Metrics.incr "sampler.plan.memo_hit";
      e
  | None ->
      plan.plan_memo_misses <- plan.plan_memo_misses + 1;
      Cc_obs.Metrics.incr "sampler.plan.memo_miss";
      let g = plan.plan_graph in
      let n = Graph.n g in
      let config = plan.plan_config in
      let in_s = Schur.members ~n ~s in
      let q =
        match config.schur with
        | Exact_solve -> Shortcut.exact g ~in_s
        | Powering { k } ->
            let k = Option.value ~default:(default_schur_k n) k in
            Shortcut.approx ?bits:config.bits g ~in_s ~k
      in
      let trans = sanitize_stochastic (Schur.transition_via_shortcut g q ~s) in
      let trans = if config.lazy_walk then lazy_mix trans else trans in
      let e = { e_q = q; e_trans = trans; e_powers = ref None } in
      if Hashtbl.length plan.plan_memo < memo_cap then
        Hashtbl.add plan.plan_memo key e;
      e

let draw plan ?faults net prng =
  let g = plan.plan_graph in
  let config = plan.plan_config in
  let n = Graph.n g in
  if Net.n net <> n then invalid_arg "Sampler.draw: net size must equal n";
  plan.plan_draws <- plan.plan_draws + 1;
  let faults = match faults with Some _ as f -> f | None -> Net.faults net in
  Cc_obs.Trace.with_span "sampler.draw"
    ~args:
      [
        ("n", string_of_int n);
        ("backend", Matmul.backend_name config.backend);
        ( "schur",
          match config.schur with
          | Exact_solve -> "exact-solve"
          | Powering _ -> "powering" );
        ( "matching",
          match config.matching with
          | Phase_walk.Resample _ -> "resample"
          | Phase_walk.Magical -> "magical" );
      ]
  @@ fun () ->
  let before_stats =
    match faults with Some f -> Fault.snapshot f | None -> (0, 0, 0)
  in
  let rounds_before = Net.rounds net in
  (* The Schur powering pipeline needs every machine's row block, so a
     crash-stop failure anywhere is unrecoverable for the distributed
     pipeline; the run degrades to the sequential baseline instead. *)
  let check_alive () =
    match faults with
    | Some f when Fault.any_crashed f ->
        raise
          (Degrade
             {
               reason = "machine crashed: the Schur pipeline needs every machine";
               crashed = Fault.crashed f;
             })
    | _ -> ()
  in
  (* Deliver [packets] through the retransmitting transport. Corrupted
     payloads are caught by the application checksum: the holder recomputes
     the piece from its local state and re-sends, metered under [:retry].
     [Lost] means an endpoint crashed (transport retries exhaust only at
     astronomically unlikely drop streaks) — degrade. *)
  let heal ~label ~recompute_rounds packets =
    match faults with
    | None -> Net.exchange net ~label packets
    | Some f ->
        let dv = Net.reliable_exchange net ~label packets in
        let corrupted =
          Array.fold_left
            (fun acc d -> if d = Net.Corrupted then acc + 1 else acc)
            0 dv
        in
        if corrupted > 0 then begin
          Net.charge_overhead net ~label:(label ^ ":retry")
            (Float.of_int corrupted *. recompute_rounds);
          Fault.note_retransmit f corrupted
        end;
        if Array.exists (( = ) Net.Lost) dv then begin
          check_alive ();
          raise
            (Degrade
               {
                 reason = label ^ ": delivery failed after retries";
                 crashed = Fault.crashed f;
               })
        end
  in
  (* Simulated pipeline traffic, only materialized under fault injection
     (the fault-free cost is already folded into the analytic charges):
     [matrix shares] is the ring exchange of row-block shares feeding each
     squaring; [walk segments] collects the filled walk chunks at the
     leader. Both give the injector concrete packets to break. *)
  let heal_matrix_shares () =
    match faults with
    | None -> ()
    | Some _ ->
        check_alive ();
        let words = Net.entry_words net in
        heal ~label:"matrix shares" ~recompute_rounds:1.0
          (List.init n (fun i -> { Net.src = i; dst = (i + 1) mod n; words }))
  in
  let heal_walk_segments walk_len =
    match faults with
    | None -> ()
    | Some _ ->
        check_alive ();
        let chunk = max 1 ((walk_len + n - 1) / n) in
        heal ~label:"walk segments"
          ~recompute_rounds:(Float.of_int (max 1 (chunk / n)))
          (List.init (n - 1) (fun i ->
               { Net.src = i + 1; dst = 0; words = chunk }))
  in
  let rho = plan.plan_rho in
  let target_len = plan.plan_target_len in
  let max_phases = plan.plan_max_phases in
  let visited = Array.make n false in
  visited.(0) <- true;
  let remaining = ref (n - 1) in
  let tree_edges = ref [] in
  let current = ref 0 in
  let phases = ref 0 in
  let walk_total = ref 0 in
  let stats_acc = ref [] in

  (* Record a first-visit edge (u, v) for newly visited v. *)
  let claim u v =
    assert (not visited.(v));
    visited.(v) <- true;
    decr remaining;
    tree_edges := (u, v) :: !tree_edges
  in

  try
  while !remaining > 0 do
    incr phases;
    Cc_obs.Metrics.incr "sampler.phases";
    Cc_obs.Trace.with_span "sampler.phase"
      ~args:
        [
          ("phase", string_of_int !phases);
          ("unvisited", string_of_int !remaining);
        ]
    @@ fun () ->
    check_alive ();
    Log.debug (fun m ->
        m "phase %d: %d unvisited, walk at vertex %d" !phases !remaining !current);
    if !phases > max_phases then
      failwith "Sampler.sample: max_phases exceeded (target_len too small?)";
    if !phases = 1 then begin
      (* Phase 1: walk on G itself; first-visit edges read off directly.
         When fewer than rho vertices exist, truncate at full coverage
         instead (the walk past cover time adds no first-visit edges). The
         transition matrix and its power table come from the plan; the
         bookings are replayed inside Phase_walk either way. *)
      let walk, stats =
        Phase_walk.run net prng ~backend:config.backend ?bits:config.bits
          ~powers_slot:plan.plan_powers1 ~trans:plan.plan_trans1
          ~machine_of:(fun i -> i)
          ~start:0 ~rho:(min rho n) ~target_len ~matching:config.matching ()
      in
      stats_acc := stats :: !stats_acc;
      walk_total := !walk_total + Array.length walk - 1;
      heal_walk_segments (Array.length walk);
      let fresh = ref [] in
      Array.iteri
        (fun idx v ->
          if idx > 0 && not visited.(v) then begin
            claim walk.(idx - 1) v;
            fresh := v :: !fresh
          end)
        walk;
      (* M distributes the first-visit edges to the vertices' machines. *)
      heal ~label:"first-visit edges" ~recompute_rounds:1.0
        (List.map (fun v -> { Net.src = 0; dst = v; words = 2 }) !fresh);
      current := walk.(Array.length walk - 1)
    end
    else begin
      (* Later phases: walk on SCHUR(G, S) with S = {current} + unvisited. *)
      let s =
        Array.of_list
          (List.filter
             (fun v -> v = !current || not visited.(v))
             (List.init n (fun v -> v)))
      in
      let in_s = Schur.members ~n ~s in
      (* Pure Schur/shortcut state comes through the plan memo (a hit skips
         the compute); the clique still pays the paper's pipeline rounds on
         every draw, so hit and miss book identical Net events. *)
      let entry = phase_entry plan ~s in
      let q = entry.e_q in
      let k_charge =
        match config.schur with
        | Exact_solve -> default_schur_k n
        | Powering { k } -> Option.value ~default:(default_schur_k n) k
      in
      charge_schur_pipeline net config.backend ~k:k_charge;
      heal_matrix_shares ();
      let trans = entry.e_trans in
      let local_of = Hashtbl.create (Array.length s) in
      Array.iteri (fun i v -> Hashtbl.add local_of v i) s;
      let start_local = Hashtbl.find local_of !current in
      if Array.length s = 2 then begin
        (* Degenerate two-vertex phase: the Schur walk is a single forced
           transition; sample the entry edge directly via Algorithm 4. *)
        let v = if s.(0) = !current then s.(1) else s.(0) in
        let weights =
          Shortcut.first_visit_weights g q ~in_s ~prev:!current ~target:v
        in
        let idx = Dist.sample_weights (Array.map snd weights) prng in
        claim (fst weights.(idx)) v;
        heal ~label:"first-visit edges" ~recompute_rounds:1.0
          ({ Net.src = 0; dst = v; words = 2 }
          :: Array.to_list
               (Array.map
                  (fun (u, _) -> { Net.src = u; dst = v; words = 2 })
                  weights));
        walk_total := !walk_total + 1;
        current := v
      end
      else begin
        (* Cap rho at |S|: the final phases have fewer than rho unvisited
           vertices, and truncating at the |S|-th distinct vertex stops the
           walk exactly at coverage of S (beyond it no first-visit edge can
           appear), keeping the materialized walk near the phase cover time. *)
        let walk_local, stats =
          Phase_walk.run net prng ~backend:config.backend ?bits:config.bits
            ~powers_slot:entry.e_powers ~trans
            ~machine_of:(fun i -> s.(i))
            ~start:start_local ~rho:(min rho (Array.length s)) ~target_len
            ~matching:config.matching ()
        in
        stats_acc := stats :: !stats_acc;
        walk_total := !walk_total + Array.length walk_local - 1;
        heal_walk_segments (Array.length walk_local);
        let walk = Array.map (fun i -> s.(i)) walk_local in
        (* Algorithm 4: sample the G-entry edge of every newly visited
           vertex from Q[w_{i-1}, u] * w(u,v) / w_S(u) over neighbors u. *)
        let packets = ref [] in
        Array.iteri
          (fun idx v ->
            if idx > 0 && not visited.(v) then begin
              let prev = walk.(idx - 1) in
              let weights =
                Shortcut.first_visit_weights g q ~in_s ~prev ~target:v
              in
              let widx = Dist.sample_weights (Array.map snd weights) prng in
              claim (fst weights.(widx)) v;
              packets := { Net.src = 0; dst = v; words = 2 } :: !packets;
              Array.iter
                (fun (u, _) ->
                  packets := { Net.src = u; dst = v; words = 2 } :: !packets)
                weights
            end)
          walk;
        heal ~label:"first-visit edges" ~recompute_rounds:1.0 !packets;
        current := walk.(Array.length walk - 1)
      end
    end
  done;
  let tree = Tree.of_edges ~n !tree_edges in
  assert (Tree.is_spanning_tree g tree);
  (* The Degrade path below must NOT also report: its Sequential.sample call
     already reaches the audit sink, and reporting twice would double-count
     the degraded tree. *)
  Cc_audit.Audit.observe_sink g tree;
  Cc_obs.Metrics.observe "sampler.walk_total" (Float.of_int !walk_total);
  let health =
    match faults with
    | None -> Fault.Healthy
    | Some f -> Fault.health_of f ~before:before_stats
  in
  {
    tree;
    phases = !phases;
    rounds = Net.rounds net -. rounds_before;
    walk_total = !walk_total;
    phase_stats = List.rev !stats_acc;
    health;
  }
  with Degrade failure ->
    Cc_obs.Metrics.incr "sampler.degraded";
    (* Graceful degradation: the live machines ship the graph to the leader,
       which runs the sequential phased sampler locally and distributes the
       result — metered as a gather + broadcast of O(n^2) words. The tree is
       still an exact sample; only the round complexity is lost. *)
    Log.warn (fun m -> m "degrading to sequential sampler: %a" Fault.pp_health
        (Fault.Unrecoverable failure));
    let seq = Sequential.sample ?rho:config.rho ?target_len:config.target_len
        ~lazy_walk:config.lazy_walk g prng
    in
    Net.charge_overhead net ~label:"sequential fallback:retry" (Float.of_int n);
    {
      tree = seq.Sequential.tree;
      phases = !phases + seq.Sequential.phases;
      rounds = Net.rounds net -. rounds_before;
      walk_total = !walk_total + seq.Sequential.walk_total;
      phase_stats = List.rev !stats_acc;
      health = Fault.Unrecoverable failure;
    }

(* One-shot convenience: prepare then draw. Byte-identical to drawing from a
   cached plan — the plan only relocates pure compute, never bookings or
   prng draws. *)
let sample ?(config = default_config) ?faults net prng g =
  if Net.n net <> Graph.n g then
    invalid_arg "Sampler.sample: net size must equal n";
  if not (Graph.is_connected g) then
    invalid_arg "Sampler.sample: graph must be connected";
  Cc_obs.Trace.with_span "sampler.sample"
    ~args:[ ("n", string_of_int (Graph.n g)) ]
  @@ fun () ->
  let plan = prepare ~config g in
  draw plan ?faults net prng

let sample_tree ?config ?faults ?(seed = 0) g =
  let net = Net.create ~n:(Graph.n g) in
  let net =
    match faults with Some f -> Net.with_faults f net | None -> net
  in
  let prng = Prng.create ~seed in
  (sample ?config net prng g).tree
