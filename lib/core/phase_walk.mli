(** The distributed truncated random walk of one phase (Section 3.1.3).

    Given the transition matrix of the phase graph (G in phase 1, a Schur
    complement in later phases), this module runs the full Congested Clique
    pipeline on the simulator:

    - {b Initialization} (Algorithm 1): distributed power table
      P, P^2, ..., P^l and sampling of the endpoint w_l from P^l[w_0, *].
    - {b Midpoint Request and Generation} (Algorithm 2): count (start,end)
      pairs, route requests to per-pair machines, acquire the Formula 1
      distribution, sample midpoint sequences.
    - {b Check / distributed binary search} (Algorithm 3): find the
      truncation point t — the first index at which the rho-th distinct
      vertex appears in the "magical" filled walk — by binary search with
      each probe exchanging real packets.
    - {b Midpoint Placement}: collect only the multiset of midpoints, place
      the final midpoint exactly, and re-place the rest by sampling a
      weighted perfect matching between midpoint identities and
      (start,end)-pair positions (class-compressed exact DP with MCMC
      fallback, or the "magical" assignment for the ablation mode — by
      Theorem 3 both induce the same walk law).

    All data movement is metered through the [Net] ledger; matrix powers use
    the configured [Matmul] backend and optional Lemma 3 fixed-point
    truncation. *)

type matching_mode =
  | Resample of { mcmc_steps : int option }
      (** the paper's pipeline: multiset + perfect matching; [mcmc_steps]
          overrides the fallback chain length. *)
  | Magical
      (** ablation: keep the original per-pair ordering (never communicated
          in the real algorithm; same distribution by Theorem 3). *)

type stats = {
  levels : int;
  checks : int;  (** total binary-search probes across levels *)
  midpoints_placed : int;
  matchings_exact : int;  (** placements solved by the exact DP *)
  matchings_mcmc : int;  (** placements that fell back to the swap chain *)
}

(** [run net prng ~backend ?bits ~trans ~machine_of ~start ~rho ~target_len
    ~matching ()] returns the walk (as indices into the phase graph) ending
    at time tau = min(target_len rounded up to a power of two, first
    occurrence of the rho-th distinct vertex), together with statistics.

    [machine_of i] is the clique machine hosting phase-vertex [i] (identity
    in phase 1, the S-array in later phases).

    [powers_slot] is the factorization-reuse hook for prepared plans: a
    filled slot supplies the power table of [trans] (the draws replay its
    bookings via [Matmul.power_table ~reuse] instead of recomputing), an
    empty slot is populated on first use. The caller guarantees the slot
    belongs to this exact [trans]/[bits]/[target_len] combination.
    @raise Invalid_argument if [trans] is not square/stochastic-ish, [rho]
    < 2, or [target_len] < 2. *)
val run :
  Cc_clique.Net.t ->
  Cc_util.Prng.t ->
  backend:Cc_clique.Matmul.backend ->
  ?bits:int ->
  ?powers_slot:Cc_linalg.Mat.t array option ref ->
  trans:Cc_linalg.Mat.t ->
  machine_of:(int -> int) ->
  start:int ->
  rho:int ->
  target_len:int ->
  matching:matching_mode ->
  unit ->
  int array * stats
