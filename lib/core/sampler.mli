(** The sublinear-round spanning-tree sampler (Theorem 2, Section 3).

    The algorithm implements Aldous–Broder on the Congested Clique in
    O(sqrt n) phases. Each phase extends the underlying random walk until
    rho = ceil(sqrt n) additional distinct vertices have been visited,
    using the distributed top-down filling machinery of {!Phase_walk}; later
    phases walk on the Schur complement SCHUR(G, S) of the not-yet-visited
    vertex set (skipping everything already visited) and recover first-visit
    edges in G through the shortcut graph (Algorithm 4). The union of
    first-visit edges is the sampled spanning tree.

    Every communication and matrix multiplication is metered on the supplied
    {!Cc_clique.Net}; with the [Charged] matmul backend at alpha = 0.158 the
    measured rounds reproduce the paper's Õ(n^(1/2+alpha)) bound (bench E3).

    Input graphs must be connected; weighted graphs are supported per
    footnote 1 (positive integer-ish weights), with the Algorithm 4 factors
    generalized to [w(u,v)/w_S(u)]. *)

type schur_mode =
  | Exact_solve
      (** compute SCHUR/SHORTCUT by exact linear algebra; rounds are still
          charged as the paper's powering pipeline (the solve is a simulator
          shortcut, not a different distributed algorithm). *)
  | Powering of { k : int option }
      (** the paper's route (Corollaries 3-4): k-step powering of the
          absorbing chain; [None] picks the O(n^3 log)-scale default. *)

type config = {
  backend : Cc_clique.Matmul.backend;
  bits : int option;
      (** fixed-point fractional bits for every matrix pipeline (Section 3.5);
          [None] = IEEE double ("exact") arithmetic. *)
  rho : int option;  (** distinct-vertex budget per phase; default ceil(sqrt n). *)
  target_len : int option;
      (** per-phase target walk length l; default next_pow2(n^3 log2 n),
          the Theta(n^3 log c_2) of Section 3.1. Smaller values trade more
          phases for less materialized walk. *)
  schur : schur_mode;
  matching : Phase_walk.matching_mode;
  max_phases : int;  (** safety bound; exceeded only if target_len is tiny. *)
  lazy_walk : bool;
      (** run each phase on the lazy chain (I+P)/2. Default true: on
          bipartite (sub)graphs the plain chain is periodic, so entries at
          power-of-two spacings all share one parity class and the rho-th
          distinct vertex cannot appear before the final level — the leader's
          partial walk then materializes to the full Theta(n^3) target
          length. The paper's leader stores that for free (local space is
          unbounded in the model); the simulator avoids it. Self-loop steps
          never create first-visit edges and the embedded non-lazy walk is
          exactly the original walk, so the sampled tree's distribution is
          unchanged. *)
}

(** [default_config]: Charged matmul at alpha 0.158, exact arithmetic,
    Exact_solve Schur, Resample matching, max_phases = 64 * sqrt n. *)
val default_config : config

type result = {
  tree : Cc_graph.Tree.t;
  phases : int;
  rounds : float;  (** rounds booked on the net by this sample. *)
  walk_total : int;  (** total length of the underlying walk across phases. *)
  phase_stats : Phase_walk.stats list;  (** chronological, one per phase. *)
  health : Cc_clique.Fault.health;
      (** fault-recovery outcome. [Healthy] on a clean run. [Healed]: drops
          were retransmitted and corrupted matrix shares / walk segments
          recomputed — the tree is exactly as trustworthy as a fault-free
          sample. [Unrecoverable]: a machine crashed (the Schur pipeline
          needs every machine), so the run degraded to {!Sequential.sample}
          at the leader — the tree is still an exact sample, but the
          sublinear round bound is lost. *)
}

(** {1 Prepared plans}

    The pipeline splits into a graph-only half and a seed-dependent half:
    [prepare] computes everything that depends on the graph alone — the
    (lazy-mixed) phase-1 transition matrix and its full power table, plus a
    memo that accumulates later phases' Schur/shortcut state as draws
    encounter them — and [draw] runs the walk + matching phases against a
    plan. The contract, relied on by the ccserve plan cache:

    - [draw (prepare g) net prng] consumes exactly the same prng stream and
      books exactly the same Net events as [sample net prng g]; recorder
      digests are byte-identical whether a plan is fresh or reused.
    - A reused plan skips the pure compute (matrix powers, Schur solves —
      no [shortcut.*]/[schur.*] trace spans on a memo hit) but never the
      communication: the clique pays the paper's rounds on every draw.
    - Plans are not thread-safe; confine each to one domain at a time. *)

type plan

(** [prepare ?config g] runs the graph-only phases.
    @raise Invalid_argument on disconnected input. *)
val prepare : ?config:config -> Cc_graph.Graph.t -> plan

(** [draw plan ?faults net prng] draws one tree from a prepared plan; see
    {!sample} for the walk and fault semantics.
    @raise Invalid_argument if [Net.n net] differs from the plan's vertex
    count. *)
val draw :
  plan ->
  ?faults:Cc_clique.Fault.t ->
  Cc_clique.Net.t ->
  Cc_util.Prng.t ->
  result

(** [plan_fingerprint plan] is {!Cc_graph.Graph.fingerprint} of the prepared
    graph — the plan cache's key material. *)
val plan_fingerprint : plan -> string

val plan_config : plan -> config
val plan_graph : plan -> Cc_graph.Graph.t

(** [plan_stats plan] is [(draws, memo_hits, memo_misses)] — cumulative
    draws served and later-phase memo traffic. *)
val plan_stats : plan -> int * int * int

(** {1 One-shot sampling} *)

(** [sample ?config ?faults net prng g] draws one spanning tree of the
    connected graph [g]. [Net.n net] must equal the vertex count; the walk
    starts at vertex 0 (the leader's vertex, as in Algorithm 1).
    Equivalent to [draw (prepare ?config g) ?faults net prng].

    Under fault injection ([?faults], or a net armed via
    {!Cc_clique.Net.with_faults}) the sampler self-heals: lost packets are
    retransmitted by the transport, corrupted matrix shares and walk
    segments are detected by checksums and recomputed (metered under
    [":retry"] labels), and crash-stop failures degrade the run to the
    sequential baseline with [health = Unrecoverable] — no exception
    escapes for injected faults.
    @raise Invalid_argument on disconnected input or clique size mismatch.
    @raise Failure if [max_phases] is exhausted (a configuration error, not
    an injected fault). *)
val sample :
  ?config:config ->
  ?faults:Cc_clique.Fault.t ->
  Cc_clique.Net.t ->
  Cc_util.Prng.t ->
  Cc_graph.Graph.t ->
  result

(** [sample_tree ?config ?faults ?seed g] is a self-contained convenience
    wrapper: builds the net (armed with [?faults] if given), samples,
    returns just the tree. *)
val sample_tree :
  ?config:config ->
  ?faults:Cc_clique.Fault.t ->
  ?seed:int ->
  Cc_graph.Graph.t ->
  Cc_graph.Tree.t
